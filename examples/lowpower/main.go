// Low-power deployment tour: the LiteView toolkit on a duty-cycled
// (low-power listening) network.
//
// Real deployments ship with LPL because an always-on CC2420 drains a
// 2×AA pack in under a week. Every management exchange then pays a
// wake-up latency — which LiteView's own RTT readings make visible —
// while the energy command shows what the duty cycle buys: a projected
// lifetime measured in months instead of days.
package main

import (
	"fmt"
	"log"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

func main() {
	build := func(lpl bool) (*testbed.Testbed, *core.Workstation) {
		opt := testbed.DefaultOptions(9)
		opt.LPL = lpl
		opt.BeaconPeriod = 10 * time.Second // broadcasts cost a full sleep interval under LPL
		tb, err := testbed.Line(3, 15, opt)
		if err != nil {
			log.Fatal(err)
		}
		if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
			log.Fatal(err)
		}
		if _, err := tb.InstallLiteView(); err != nil {
			log.Fatal(err)
		}
		tb.WarmUp(2 * time.Minute)
		ws, err := tb.NewWorkstation(phys.Position{X: -2})
		if err != nil {
			log.Fatal(err)
		}
		return tb, ws
	}

	for _, mode := range []struct {
		name string
		lpl  bool
	}{{"always-on", false}, {"low-power listening", true}} {
		_, ws := build(mode.lpl)
		fmt.Printf("== %s deployment (after 2 min of virtual uptime) ==\n", mode.name)

		// A few cold pings: under LPL each pays a fresh wake-up.
		var rtts []float64
		for i := 0; i < 3; i++ {
			out, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 1, Length: 32, Timeout: time.Second})
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range out.Results {
				if !r.Lost {
					rtts = append(rtts, float64(r.RTT)/1000)
				}
			}
		}
		fmt.Printf("cold one-hop ping RTTs:")
		for _, v := range rtts {
			fmt.Printf(" %.1f ms", v)
		}
		fmt.Println()

		es, err := ws.Energy(2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node 192.168.0.2 battery: %.1f%% left; tx %.1f mJ, rx %.1f mJ, off %.3f mJ\n",
			float64(es.RemainingPermille)/10,
			float64(es.TXuJ)/1000, float64(es.RXuJ)/1000, float64(es.OffuJ)/1000)
		if es.HasLifetime {
			fmt.Printf("projected lifetime at this draw: %d hours (%.1f days)\n",
				es.EstimatedLifetimeHours, float64(es.EstimatedLifetimeHours)/24)
		}
		fmt.Println()
	}
	fmt.Println("same toolkit, same commands — the duty cycle trades per-hop latency for a month-scale lifetime")
}
