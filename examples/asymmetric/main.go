// Asymmetric-link diagnosis — the abstract's first promise: "it allows
// users to identify broken links or asymmetric links, which are likely
// to become traffic bottlenecks".
//
// This deployment has a deliberately skewed radio map (large
// per-direction asymmetry). The operator walks the path with
// traceroute, compares forward and backward readings hop by hop, flags
// the most asymmetric link, blacklists its far end on the node that
// would otherwise relay through it, and re-runs traceroute to confirm
// the route diverted.
package main

import (
	"fmt"
	"log"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

func main() {
	opt := testbed.DefaultOptions(5)
	opt.ShadowSigma = 1.0
	opt.AsymSigma = 4.0 // an unkind RF environment: strongly directional links
	tb, err := testbed.Line(6, 18, opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		log.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		log.Fatal(err)
	}
	tb.WarmUp(20 * time.Second)

	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== first pass: traceroute 192.168.0.1 → 192.168.0.6 ==")
	tr, err := ws.Traceroute(1, core.TrOptions{Dst: 6, Length: 32, RouterPort: routing.GeographicPort})
	if err != nil {
		log.Fatal(err)
	}
	// The walked path, starting at the source.
	path := []phys.NodeID{1}
	worstIdx := -1
	worstSkew := 0
	for _, rep := range tr.Reports {
		if rep.Lost {
			fmt.Printf("hop %d: LOST — candidate broken link\n", rep.Hop)
			continue
		}
		skew := int(rep.RSSIFwd) - int(rep.RSSIBwd)
		if skew < 0 {
			skew = -skew
		}
		fmt.Printf("hop %d via 192.168.0.%d: RSSI fwd/bwd = %d/%d (skew %d dB), LQI %d/%d\n",
			rep.Hop, rep.From, rep.RSSIFwd, rep.RSSIBwd, skew, rep.LQIFwd, rep.LQIBwd)
		path = append(path, rep.From)
		if skew > worstSkew {
			worstSkew, worstIdx = skew, len(path)-1
		}
	}
	if worstIdx < 1 {
		fmt.Println("no usable hops — nothing to diagnose")
		return
	}
	worstFrom := path[worstIdx]
	prev := path[worstIdx-1]
	fmt.Printf("\nmost asymmetric link: 192.168.0.%d → 192.168.0.%d, %d dB of skew\n",
		prev, worstFrom, worstSkew)

	// Blacklist the asymmetric far end on the node before it, so that
	// relay stops using the link when constructing routes. The
	// management protocol is one-hop: the operator walks over to the
	// relay with the workstation first.
	prevNode, _ := tb.ByID(prev)
	ws.MoveTo(prevNode.Position())
	fmt.Printf("blacklisting 192.168.0.%d on 192.168.0.%d...\n", worstFrom, prev)
	if err := ws.Blacklist(prev, worstFrom, true); err != nil {
		log.Fatal(err)
	}
	// Walk back to node 1 for the second traceroute.
	ws.MoveTo(phys.Position{X: -2})

	fmt.Println("\n== second pass: the route must avoid the blacklisted link ==")
	tr2, err := ws.Traceroute(1, core.TrOptions{Dst: 6, Length: 32, RouterPort: routing.GeographicPort})
	if err != nil {
		log.Fatal(err)
	}
	path2 := []phys.NodeID{1}
	for _, rep := range tr2.Reports {
		if rep.Lost {
			fmt.Printf("hop %d: lost\n", rep.Hop)
			continue
		}
		fmt.Printf("hop %d via 192.168.0.%d: RSSI fwd/bwd = %d/%d\n",
			rep.Hop, rep.From, rep.RSSIFwd, rep.RSSIBwd)
		path2 = append(path2, rep.From)
	}
	diverted := true
	for i := 1; i < len(path2); i++ {
		if path2[i-1] == prev && path2[i] == worstFrom {
			diverted = false
		}
	}
	if diverted {
		fmt.Println("\nroute no longer crosses the blacklisted link — bottleneck bypassed")
	} else {
		fmt.Println("\nroute unchanged (no alternative relay exists at this spacing)")
	}
	// Clean up: walk back and remove the blacklist entry again.
	ws.MoveTo(prevNode.Position())
	if err := ws.Blacklist(prev, worstFrom, false); err != nil {
		log.Fatal(err)
	}
}
