// Deployment tuning survey — the workflow from the paper's
// introduction: probe the instantaneous communication environment and
// optimise the deployment "much like the way network administrators
// configure router settings".
//
// For each candidate power level the operator measures a reference link
// with ping (RTT, LQI, loss), then picks the lowest power whose link
// quality still clears a target — transmitting louder than needed
// wastes energy and creates interference. Finally the survey moves the
// pair to a different 802.15.4 channel and verifies the link there.
package main

import (
	"fmt"
	"log"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

func main() {
	opt := testbed.DefaultOptions(3)
	tb, err := testbed.Line(2, 18, opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		log.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		log.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		log.Fatal(err)
	}

	const (
		rounds    = 5
		targetLQI = 95 // quality bar for a production link
	)
	fmt.Println("power survey of the 192.168.0.1 ↔ 192.168.0.2 link (18 m):")
	fmt.Println("level  dBm    recv  meanLQI  meanRSSI  verdict")
	node1, _ := tb.ByID(1)
	node2, _ := tb.ByID(2)
	chosen := -1
	for _, level := range []int{31, 27, 23, 19, 15, 11, 7, 3} {
		// Both ends must transmit at the candidate level. Management is
		// one-hop, so the operator walks to each node to configure it —
		// at the lowest levels the nodes can only be reached up close.
		ws.MoveTo(node1.Position())
		if err := ws.SetPower(1, level); err != nil {
			log.Fatal(err)
		}
		ws.MoveTo(node2.Position())
		if err := ws.SetPower(2, level); err != nil {
			log.Fatal(err)
		}
		ws.MoveTo(node1.Position())
		out, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: rounds, Length: 32})
		if err != nil {
			log.Fatal(err)
		}
		lqi, rssi, n := 0, 0, 0
		for _, r := range out.Results {
			if r.Lost {
				continue
			}
			lqi += int(r.LQIFwd+r.LQIBwd) / 2
			rssi += int(r.RSSIFwd+r.RSSIBwd) / 2
			n++
		}
		verdict := "too weak"
		if n > 0 {
			lqi /= n
			rssi /= n
			if out.Lost == 0 && lqi >= targetLQI {
				verdict = "ok"
				chosen = level // keep lowering; the last ok wins
			}
		}
		fmt.Printf("%5d  %5.1f  %d/%d   %7d  %8d  %s\n",
			level, radio.PowerDBm(level), out.Received, rounds, lqi, rssi, verdict)
	}
	if chosen < 0 {
		fmt.Println("\nno power level met the quality bar; keep full power")
		chosen = radio.MaxPowerLevel
	} else {
		fmt.Printf("\nlowest power meeting LQI ≥ %d with zero loss: level %d (%.1f dBm)\n",
			targetLQI, chosen, radio.PowerDBm(chosen))
	}
	for _, target := range []phys.NodeID{1, 2} {
		n, _ := tb.ByID(target)
		ws.MoveTo(n.Position())
		if err := ws.SetPower(target, chosen); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nchannel check: moving the pair to channel 26...")
	// Retune each node up close, then follow with the workstation radio.
	ws.MoveTo(node2.Position())
	if err := ws.SetChannel(2, 26); err != nil {
		log.Fatal(err)
	}
	ws.MoveTo(node1.Position())
	if err := ws.SetChannel(1, 26); err != nil {
		log.Fatal(err)
	}
	if err := ws.Radio().SetChannel(26); err != nil {
		log.Fatal(err)
	}
	out, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 3, Length: 32})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on channel 26 at level %d: received %d/3, lost %d\n", chosen, out.Received, out.Lost)
	if len(out.Results) > 0 && !out.Results[0].Lost {
		r := out.Results[0]
		fmt.Printf("sample: RTT = %.1f ms, LQI = %d/%d, RSSI = %d/%d, Channel = %d\n",
			float64(r.RTT)/1000, r.LQIFwd, r.LQIBwd, r.RSSIFwd, r.RSSIBwd, r.Channel)
	}
}
