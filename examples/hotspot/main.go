// Hotspot hunting — the use case from the paper's abstract: "identify
// traffic hotspots by collecting round-trip delays of arbitrary pairs
// of nodes".
//
// A 4×4 grid runs a collection workload: every node periodically sends
// a sample toward the sink at a corner, so traffic converges on the
// sink's neighborhood. The operator then pings representative pairs and
// compares round-trip delays and remote queue occupancy: relays near
// the sink answer noticeably more slowly than leaf-side nodes.
package main

import (
	"fmt"
	"log"
	"time"

	"liteview/internal/app"
	"liteview/internal/diagnose"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

func main() {
	opt := testbed.DefaultOptions(11)
	tb, err := testbed.Grid(4, 4, 15, opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		log.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		log.Fatal(err)
	}

	// The collection application: node 1 (grid corner) is the sink,
	// every other node samples every ~400 ms — traffic converges on the
	// sink's neighborhood.
	tb.WarmUp(15 * time.Second)
	sink, _, err := app.DeployCollection(tb.Nodes, func(id phys.NodeID) *routing.Router {
		r, _ := tb.Router(routing.GeographicPort, id)
		return r
	}, 1, 400*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	tb.Run(30 * time.Second)

	ws, err := tb.NewWorkstation(phys.Position{X: 22, Y: 22}) // mid-grid
	if err != nil {
		log.Fatal(err)
	}

	// Probe pairs at three distances from the sink: its direct relays,
	// mid-grid nodes, and far-corner leaves. The workstation walks to
	// each probing node (management is one-hop).
	target := func(id phys.NodeID) diagnose.Target {
		n, _ := tb.ByID(id)
		return diagnose.Target{ID: id, Name: n.Name(), Pos: n.Position()}
	}
	pairs := []diagnose.Pair{
		{From: target(6), To: 2}, {From: target(6), To: 5}, // next to the sink
		{From: target(11), To: 7}, {From: target(11), To: 10}, // mid-grid
		{From: target(16), To: 12}, {From: target(16), To: 15}, // far corner
	}
	results, err := diagnose.RTTSurvey(ws, pairs, 5)
	if err != nil {
		log.Fatal(err)
	}
	st := sink.Stats()
	fmt.Printf("collection workload absorbed %d samples at the sink (mean latency %v)\n\n",
		st.Received, st.MeanLatency().Round(time.Millisecond))
	fmt.Println("pairwise RTT survey under the converging workload")
	fmt.Println("(higher RTT / queue / loss marks the hotspot near the sink):")
	for _, p := range results {
		fmt.Printf("  %s→192.168.0.%d  mean RTT %6.1f ms   remote queue %d   lost %d\n",
			p.Pair.From.Name, p.Pair.To, p.MeanRTTMs, p.MaxQueue, p.Lost)
	}
}
