// Quickstart: build a five-node simulated deployment, install LiteView,
// and run the paper's three core diagnosis workflows through the public
// API — a single-hop ping, a multi-hop traceroute, and a neighbor-table
// listing.
package main

import (
	"fmt"
	"log"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

func main() {
	// A 5-node line, 20 m apart: adjacent links are strong, two-span
	// links are marginal, so multi-hop routing is real.
	opt := testbed.DefaultOptions(7)
	tb, err := testbed.Line(5, 20, opt)
	if err != nil {
		log.Fatal(err)
	}
	// Geographic forwarding on port 10, as in the paper's examples.
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		log.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		log.Fatal(err)
	}
	// Let beacons populate the kernel neighbor tables.
	tb.WarmUp(20 * time.Second)

	// The management workstation stands next to node 1.
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== single-hop ping: 192.168.0.1 → 192.168.0.2 ==")
	ping, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 3, Length: 32})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range ping.Results {
		if r.Lost {
			fmt.Printf("round %d: lost\n", r.Seq+1)
			continue
		}
		fmt.Printf("round %d: RTT = %.1f ms, LQI = %d/%d, RSSI = %d/%d, Queue = %d/%d\n",
			r.Seq+1, float64(r.RTT)/1000, r.LQIFwd, r.LQIBwd, r.RSSIFwd, r.RSSIBwd, r.QFwd, r.QBwd)
	}
	fmt.Printf("statistics: sent=%d received=%d lost=%d (window %.0f ms)\n\n",
		ping.Sent, ping.Received, ping.Lost, float64(ping.ResponseDelay)/float64(time.Millisecond))

	fmt.Println("== traceroute: 192.168.0.1 → 192.168.0.5 over geographic forwarding ==")
	tr, err := ws.Traceroute(1, core.TrOptions{Dst: 5, Length: 32, RouterPort: routing.GeographicPort})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol: %s\n", tr.Protocol)
	for _, rep := range tr.Reports {
		if rep.Lost {
			fmt.Printf("hop %d: no reply\n", rep.Hop)
			continue
		}
		fmt.Printf("hop %d via 192.168.0.%d: RTT = %.1f ms, LQI = %d/%d, RSSI = %d/%d (arrived +%.1f ms)\n",
			rep.Hop, rep.From, float64(rep.RTT)/1000,
			rep.LQIFwd, rep.LQIBwd, rep.RSSIFwd, rep.RSSIBwd,
			float64(rep.Delay)/float64(time.Millisecond))
	}
	fmt.Println()

	fmt.Println("== neighbor table of 192.168.0.3 (middle node) ==")
	nbrs, err := ws.NeighborList(3, true)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range nbrs.Entries {
		fmt.Printf("  %-14s LQI=%-4d RSSI=%-4d PRR=%d%%\n", e.Name, e.LQI, e.RSSI, e.PRRPercent)
	}
}
