// Package liteview is a full reproduction, in pure Go, of "End-User
// Diagnosis of Communication Paths in Sensor Network Systems" (Cao,
// Wang, Abdelzaher — ICPP 2009): the LiteView interactive toolkit for
// diagnosing communication paths in wireless sensor networks, together
// with every substrate it needs — a discrete-event simulator, a CC2420
// radio and RF propagation model, an 802.15.4 CSMA/CA MAC, a port-based
// communication stack with link-quality padding, a LiteOS-like node OS,
// three routing protocols, and the testbeds and benchmark harness that
// regenerate the paper's evaluation.
//
// Start with the README, run the quickstart example, or explore:
//
//	go run ./cmd/liteview -topo line -nodes 9 -spacing 20   # interactive shell
//	go run ./cmd/lvbench                                    # regenerate the paper's figures
//	go run ./cmd/lvtopo -nodes 9 -spacing 20                # radio map of a deployment
package liteview

// Version identifies this reproduction release.
const Version = "1.0.0"
