module liteview

go 1.22
