package liteview

// End-to-end smoke tests: every example and command-line tool must
// build and run to completion on a fresh checkout. These use `go run`,
// so they exercise exactly what the README tells a new user to type.

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runTool(t *testing.T, timeout time.Duration, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		t.Fatalf("go %s timed out after %v", strings.Join(args, " "), timeout)
	}
	if err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	cases := []struct {
		path string
		want string
	}{
		{"./examples/quickstart", "statistics: sent=3"},
		{"./examples/hotspot", "pairwise RTT survey"},
		{"./examples/asymmetric", "most asymmetric link"},
		{"./examples/channelsurvey", "lowest power meeting"},
		{"./examples/lowpower", "projected lifetime"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.path, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out := runTool(t, 3*time.Minute, "run", c.path)
			if !strings.Contains(out, c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}

func TestToolsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("tools are skipped in -short mode")
	}
	t.Run("lvbench-one", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, 3*time.Minute, "run", "./cmd/lvbench", "-exp", "t3")
		if !strings.Contains(out, "check [PASS]") {
			t.Fatalf("output:\n%s", out)
		}
	})
	t.Run("lvtopo", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, 3*time.Minute, "run", "./cmd/lvtopo", "-nodes", "3", "-spacing", "20")
		if !strings.Contains(out, "audible directed links") {
			t.Fatalf("output:\n%s", out)
		}
	})
	t.Run("liteview-batch", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, 3*time.Minute, "run", "./cmd/liteview",
			"-nodes", "2", "-spacing", "5", "-warmup", "5s",
			"-c", "cd 192.168.0.1; ping 192.168.0.2 round=1")
		if !strings.Contains(out, "Received = 1") {
			t.Fatalf("output:\n%s", out)
		}
	})
	t.Run("lvdiag", func(t *testing.T) {
		t.Parallel()
		out := runTool(t, 3*time.Minute, "run", "./cmd/lvdiag",
			"-nodes", "3", "-spacing", "20", "-shadow", "0", "-asym", "0")
		if !strings.Contains(out, "no problems found") {
			t.Fatalf("output:\n%s", out)
		}
	})
}
