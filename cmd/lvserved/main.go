// Command lvserved is the LiteView control-plane daemon: a long-lived
// multi-tenant service that owns a pool of simulated testbeds (one
// goroutine-confined simulation per tenant) and exposes the workstation
// command set over a newline-delimited JSON protocol to many concurrent
// operator sessions (see cmd/lvctl).
//
//	lvserved -listen 127.0.0.1:7117 -topo line -nodes 9 -spacing 20
//
// Each tenant named in a client hello gets its own deployment built
// from the topology flags, with a seed derived deterministically from
// the base seed and the tenant name — the same tenant name always
// replays the same testbed, so service output is reproducible
// per tenant. SIGTERM (or SIGINT) drains gracefully: stop accepting,
// finish or cancel in-flight commands, stop every simulation, flush the
// service metrics, exit 0.
//
// With -journal <dir> the daemon write-ahead journals every accepted
// command and supervises crashing tenants back to life by replay; after
// a crash or kill -9 of the whole daemon, restarting with the same
// -journal plus -recover resurrects every tenant exactly where its
// journal left off.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"liteview/internal/cli"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/serve"
	"liteview/internal/shell"
	"liteview/internal/telemetry"
)

func main() {
	var dep cli.DeploymentFlags
	dep.Register(flag.CommandLine)
	var (
		listen     = flag.String("listen", "127.0.0.1:7117", "wire-protocol listen address")
		admin      = flag.String("admin", "", "HTTP admin address for /healthz, /readyz, /metricz (empty disables)")
		root       = flag.Int("root", 1, "collection tree root node id (per tenant)")
		maxTenants = flag.Int("max-tenants", 64, "live tenant cap")
		queue      = flag.Int("queue", 16, "per-tenant command queue depth")
		cmdTimeout = flag.Duration("cmd-timeout", 30*time.Second, "per-command wall-clock deadline")
		idle       = flag.Duration("idle", 5*time.Minute, "session idle timeout")
		tenantIdle = flag.Duration("tenant-idle", 15*time.Minute, "reap tenants unused for this long")
		drain      = flag.Duration("drain", 30*time.Second, "graceful drain deadline on SIGTERM")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the admin address")
		rate       = flag.Float64("rate", 50, "per-tenant commands per second (negative disables)")
		burst      = flag.Float64("burst", 0, "per-tenant admission burst (0 = 2x rate)")
		brkN       = flag.Int("breaker-threshold", 0, "consecutive service failures that open a tenant's breaker (0 = default)")
		brkCool    = flag.Duration("breaker-cooldown", 0, "open-breaker cooldown (0 = default)")
		quiet      = flag.Bool("quiet", false, "suppress service event log lines")

		journalDir = flag.String("journal", "", "write-ahead command journal directory (empty disables crash recovery)")
		recoverOn  = flag.Bool("recover", false, "resurrect tenants from their journals at startup (needs -journal)")
		jnlSegment = flag.Int64("journal-segment", 1<<20, "journal segment rotation size in bytes")
		jnlFsync   = flag.Int("journal-fsync", 8, "fsync the journal every N appends (1 = every append)")
		budget     = flag.Int("restart-budget", 3, "supervised restarts before a crashing tenant is quarantined")
		backoff    = flag.Duration("restart-backoff", 100*time.Millisecond, "initial supervised-restart backoff (doubles, capped)")
	)
	flag.Parse()

	// Validate before anything listens: a daemon with a zero-capacity
	// queue or a negative deadline would start, then wedge on its first
	// command. Usage errors exit 2 like flag parse failures do.
	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "lvserved: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case *queue <= 0:
		usage("-queue must be positive, got %d", *queue)
	case *cmdTimeout <= 0:
		usage("-cmd-timeout must be positive, got %v", *cmdTimeout)
	case *idle <= 0:
		usage("-idle must be positive, got %v", *idle)
	case *drain <= 0:
		usage("-drain must be positive, got %v", *drain)
	case *maxTenants <= 0:
		usage("-max-tenants must be positive, got %d", *maxTenants)
	case *journalDir != "" && *jnlSegment <= 0:
		usage("-journal-segment must be positive, got %d", *jnlSegment)
	case *journalDir != "" && *jnlFsync <= 0:
		usage("-journal-fsync must be positive, got %d", *jnlFsync)
	case *budget < 1:
		usage("-restart-budget must be at least 1, got %d", *budget)
	case *backoff <= 0:
		usage("-restart-backoff must be positive, got %v", *backoff)
	case *recoverOn && *journalDir == "":
		usage("-recover needs -journal")
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = func(string, ...any) {}
	}

	srv, err := serve.New(serve.Config{
		NewRunner:         newRunner(dep, *root),
		SeedFor:           func(tenant string) uint64 { return serve.TenantSeed(dep.Seed, tenant) },
		MaxTenants:        *maxTenants,
		QueueDepth:        *queue,
		CmdTimeout:        *cmdTimeout,
		IdleTimeout:       *idle,
		TenantIdle:        *tenantIdle,
		RatePerSec:        *rate,
		Burst:             *burst,
		BreakerThreshold:  *brkN,
		BreakerCooldown:   *brkCool,
		JournalDir:        *journalDir,
		JournalSegmentCap: *jnlSegment,
		JournalFsyncEvery: *jnlFsync,
		RestartBudget:     *budget,
		RestartBackoff:    *backoff,
		Logf:              logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvserved:", err)
		os.Exit(1)
	}
	if *recoverOn {
		n, err := srv.RecoverJournals()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvserved: recover:", err)
			os.Exit(1)
		}
		logf("lvserved: recovering %d tenant(s) from %s", n, *journalDir)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvserved:", err)
		os.Exit(1)
	}
	if *admin != "" {
		adminLn, err := net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvserved:", err)
			os.Exit(1)
		}
		handler := srv.AdminHandler()
		endpoints := "/healthz /readyz /metricz /streamz"
		if *pprofOn {
			// Profiling is opt-in: the handlers only exist behind -pprof,
			// and only on the (normally loopback) admin listener.
			mux := http.NewServeMux()
			mux.Handle("/", handler)
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			handler = mux
			endpoints += " /debug/pprof/"
		}
		go http.Serve(adminLn, handler)
		logf("lvserved: admin on http://%s (%s)", adminLn.Addr(), endpoints)
	}
	logf("lvserved: listening on %s (topo=%s)", ln.Addr(), dep.Topo)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case got := <-sig:
		logf("lvserved: %v received, draining (deadline %v)", got, *drain)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "lvserved: accept:", err)
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = srv.Shutdown(ctx)
	// Flush telemetry: the final service metrics snapshot is the drain's
	// last act, so a scraped daemon never exits with unreported counts.
	fmt.Fprint(os.Stderr, telemetry.FormatSnapshot(srv.MetricsSnapshot()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvserved: drain:", err)
		os.Exit(1)
	}
	logf("lvserved: clean drain, goodbye")
}

// newRunner builds the per-tenant simulation factory: each tenant gets
// a full deployment (all four routing protocols, LiteView installed,
// warmed up) from the seed the service hands it (Config.SeedFor, i.e.
// serve.TenantSeed over the base seed and tenant name — or, under
// recovery, the seed its journal recorded). The factory runs on the
// tenant's own goroutine — the testbed is born and dies there.
func newRunner(dep cli.DeploymentFlags, root int) func(string, uint64) (serve.Runner, error) {
	return func(tenant string, seed uint64) (serve.Runner, error) {
		d := dep
		d.Seed = seed
		tb, err := d.Build()
		if err != nil {
			return nil, err
		}
		for _, attach := range []func() error{
			func() error { return tb.AttachGeographic(routing.DefaultConfig()) },
			func() error { return tb.AttachFlooding(routing.DefaultConfig()) },
			func() error { return tb.AttachTree(phys.NodeID(root), routing.DefaultConfig()) },
			func() error { return tb.AttachOnDemand(routing.DefaultConfig()) },
		} {
			if err := attach(); err != nil {
				return nil, err
			}
		}
		if _, err := tb.InstallLiteView(); err != nil {
			return nil, err
		}
		tb.WarmUp(d.Warmup)
		ws, err := tb.NewWorkstation(tb.Node(0).Position())
		if err != nil {
			return nil, err
		}
		sh, err := shell.NewForTestbed(tb, ws, io.Discard)
		if err != nil {
			return nil, err
		}
		return serve.NewShellRunner(sh)
	}
}
