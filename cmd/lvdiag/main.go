// Command lvdiag runs an automated end-user health check over a
// simulated deployment: the operator's workstation walks from node to
// node, interrogates each one with the LiteView commands (radio
// configuration, stats, energy, neighbor table), cross-checks what the
// nodes report about each other, and prints the findings — unreachable
// or isolated nodes, asymmetric links, loss hotspots, low batteries.
//
//	lvdiag -topo line -nodes 9 -spacing 20
//	lvdiag -topo random -nodes 20 -field 70 -kill 7     # with a dead node
package main

import (
	"flag"
	"fmt"
	"os"

	"liteview/internal/cli"
	"liteview/internal/diagnose"
	"liteview/internal/radio"
)

func main() {
	var dep cli.DeploymentFlags
	dep.Register(flag.CommandLine)
	var (
		kill    = flag.Int("kill", 0, "turn this node's radio off before the check (0 = none)")
		asymLQI = flag.Int("asymlqi", 15, "flag links whose LQI differs by at least this across directions")
	)
	flag.Parse()

	tb, err := dep.BuildManaged()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvdiag:", err)
		os.Exit(1)
	}
	if *kill > 0 && *kill <= len(tb.Nodes) {
		tb.Node(*kill - 1).Radio().SetState(radio.Off)
		fmt.Printf("(injected failure: node %d radio off)\n", *kill)
	}

	ws, err := tb.NewWorkstation(tb.Node(0).Position())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvdiag:", err)
		os.Exit(1)
	}
	rep, err := diagnose.HealthCheck(ws, cli.Targets(tb), diagnose.Options{AsymmetryLQI: *asymLQI})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvdiag:", err)
		os.Exit(1)
	}
	fmt.Print(rep)
	if rep.Critical() {
		os.Exit(2)
	}
}
