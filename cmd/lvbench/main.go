// Command lvbench regenerates the paper's evaluation: every table and
// figure plus the design-choice ablations, printed as aligned tables
// with shape checks.
//
//	lvbench                  # run everything, one worker per CPU
//	lvbench -exp f5          # one experiment
//	lvbench -seed 7 -csv     # alternate seed, CSV output
//	lvbench -parallel 1      # legacy sequential baseline
//	lvbench -json out.json   # machine-readable summary
//
// Output is byte-identical for every -parallel value (wall-clock
// readings aside; add -nowall to suppress those too): experiments fan
// out over a bounded worker pool but results are printed in experiment
// order, and every simulation owns its engine, medium, and RNG streams.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"liteview/internal/bench"
)

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment id (e1,f5,f6,f7,t1,t2,t3,d2..d7,chaos,recover,scale) or all")
		seed     = flag.Uint64("seed", 42, "simulation seed")
		csv      = flag.Bool("csv", false, "emit CSV tables instead of aligned text")
		list     = flag.Bool("list", false, "list experiments and exit")
		trace    = flag.String("trace", "", "write per-scenario telemetry artifacts (JSONL + Chrome trace) into this directory")
		short    = flag.Bool("short", false, "run reduced-size experiment variants (smoke-test mode)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size (1 = sequential baseline, <=0 = GOMAXPROCS)")
		jsonPath = flag.String("json", "", "write a machine-readable run summary to this file")
		nowall   = flag.Bool("nowall", false, "suppress wall-clock readings inside experiment output (for byte-exact comparisons)")
		profile  = flag.String("profile", "", "write per-experiment CPU and heap profiles into this directory (forces -parallel 1)")
		medWork  = flag.Int("medium-workers", 1, "sharded-medium assessment lanes inside the scale experiments (>1 shards the radio medium; output is byte-identical at any value)")
	)
	flag.Parse()
	opt := bench.Options{
		TraceDir:      *trace,
		Short:         *short,
		NoWallClock:   *nowall,
		Workers:       *parallel,
		ProfileDir:    *profile,
		MediumWorkers: *medWork,
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	var exps []bench.Experiment
	if *expID == "all" {
		exps = bench.All()
	} else {
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "lvbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}

	start := time.Now()
	outs := bench.RunAll(exps, *seed, opt)
	total := time.Since(start)

	failed := 0
	for _, o := range outs {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "lvbench: %s: %v\n", o.Exp.ID, o.Err)
			failed++
			continue
		}
		if *csv {
			fmt.Printf("# %s: %s\n", o.Res.ID, o.Res.Title)
			if o.Res.Table != nil {
				fmt.Print(o.Res.Table.CSV())
			}
		} else {
			fmt.Println(o.Res)
		}
		if !o.Res.Passed() {
			failed++
		}
	}

	if *jsonPath != "" {
		rep := bench.NewJSONReport(outs, *seed, opt, total)
		if err := rep.WriteJSONFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "lvbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lvbench: %d experiment(s) failed their shape checks\n", failed)
		os.Exit(1)
	}
}
