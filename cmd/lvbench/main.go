// Command lvbench regenerates the paper's evaluation: every table and
// figure plus the design-choice ablations, printed as aligned tables
// with shape checks.
//
//	lvbench                  # run everything
//	lvbench -exp f5          # one experiment
//	lvbench -seed 7 -csv     # alternate seed, CSV output
package main

import (
	"flag"
	"fmt"
	"os"

	"liteview/internal/bench"
)

func main() {
	var (
		expID = flag.String("exp", "all", "experiment id (e1,f5,f6,f7,t1,t2,t3,d2..d7,chaos,recover,scale) or all")
		seed  = flag.Uint64("seed", 42, "simulation seed")
		csv   = flag.Bool("csv", false, "emit CSV tables instead of aligned text")
		list  = flag.Bool("list", false, "list experiments and exit")
		trace = flag.String("trace", "", "write per-scenario telemetry artifacts (JSONL + Chrome trace) into this directory")
		short = flag.Bool("short", false, "run reduced-size experiment variants (smoke-test mode)")
	)
	flag.Parse()
	bench.SetTraceDir(*trace)
	bench.SetShort(*short)

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}

	var exps []bench.Experiment
	if *expID == "all" {
		exps = bench.All()
	} else {
		e, ok := bench.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "lvbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}

	failed := 0
	for _, e := range exps {
		res, err := e.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvbench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		if *csv {
			fmt.Printf("# %s: %s\n", res.ID, res.Title)
			if res.Table != nil {
				fmt.Print(res.Table.CSV())
			}
		} else {
			fmt.Println(res)
		}
		if !res.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lvbench: %d experiment(s) failed their shape checks\n", failed)
		os.Exit(1)
	}
}
