// Command lvctl is the operator client for lvserved: it attaches to a
// tenant's simulated testbed over the newline-delimited JSON protocol
// and drives the LiteView shell command set remotely.
//
//	lvctl -tenant lab-a                                   # interactive
//	lvctl -tenant lab-a -c "cd 192.168.0.1; ping 192.168.0.3"
//	lvctl -tenant lab-a -watch -layer mac -count 50       # live telemetry
//	lvctl -healthz                                        # probe only
//
// Exit status: 0 when every command succeeded, 1 on a command or
// transport error (the first failing command ends a -c script).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"liteview/internal/serve"
	"liteview/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7117", "lvserved wire-protocol address")
		tenant  = flag.String("tenant", "default", "tenant (testbed) to attach to")
		script  = flag.String("c", "", "run these semicolon-separated commands and exit")
		healthz = flag.Bool("healthz", false, "print the daemon's health report and exit")
		metrics = flag.Bool("metrics", false, "print the daemon's service metrics and exit")
		watch   = flag.Bool("watch", false, "stream the tenant's telemetry as JSONL to stdout")
		wNode   = flag.Uint64("node", 0, "watch: only events owned by this node id (0 = any)")
		wLayer  = flag.String("layer", "", "watch: only events from this layer (medium, mac, routing, ...)")
		wKind   = flag.String("kind", "", "watch: only events of this kind (tx, rx, cca, ...)")
		wLink   = flag.String("link", "", "watch: only events on this A-B node-id link")
		wSpan   = flag.Uint64("span", 0, "watch: only events of this command span id (0 = any)")
		wCount  = flag.Int("count", 0, "watch: stop after this many frames (0 = stream forever)")
		wFor    = flag.Duration("for", 0, "watch: stop after this long (enforced server-side)")
	)
	flag.Parse()

	if *healthz || *metrics {
		probe(*addr, *healthz, *metrics)
		return
	}

	c, err := serve.Dial(*addr, *tenant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvctl:", err)
		os.Exit(1)
	}
	defer c.Close()

	if *watch {
		spec := serve.WatchSpec{Node: *wNode, Layer: *wLayer, Kind: *wKind, Link: *wLink,
			Span: *wSpan, ForMs: wFor.Milliseconds()}
		deadline := time.Time{}
		if *wFor > 0 {
			deadline = time.Now().Add(*wFor)
		}
		frames := 0
		var dropped uint64
		err := c.Watch(spec, func(line string, drop uint64) bool {
			fmt.Println(line)
			frames++
			dropped = drop
			if *wCount > 0 && frames >= *wCount {
				return false
			}
			return deadline.IsZero() || time.Now().Before(deadline)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvctl:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lvctl: watch ended after %d frame(s), %d dropped\n", frames, dropped)
		return
	}

	if *script != "" {
		for _, line := range strings.Split(*script, ";") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			fmt.Printf("%s$ %s\n", *tenant, line)
			if !runOne(c, line) {
				os.Exit(1)
			}
		}
		return
	}

	fmt.Printf("lvctl: attached to tenant %q on %s. Type 'help' for commands, 'exit' to quit.\n", *tenant, *addr)
	in := bufio.NewScanner(os.Stdin)
	cwd := "/"
	for {
		fmt.Printf("%s:%s$ ", *tenant, cwd)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			return
		}
		resp, err := c.Run(line)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvctl:", err)
			os.Exit(1)
		}
		fmt.Print(resp.Output)
		if resp.Error != "" {
			hint := ""
			if resp.Transient {
				hint = " (transient: retry may help)"
			}
			fmt.Fprintf(os.Stderr, "error [%s]%s: %s\n", resp.Code, hint, resp.Error)
		}
		if resp.Cwd != "" {
			cwd = resp.Cwd
		}
	}
}

// runOne executes one scripted command, reporting success.
func runOne(c *serve.Client, line string) bool {
	resp, err := c.Run(line)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvctl:", err)
		return false
	}
	fmt.Print(resp.Output)
	if resp.Error != "" {
		fmt.Fprintf(os.Stderr, "error [%s]: %s\n", resp.Code, resp.Error)
		return false
	}
	return true
}

// probe prints health and/or metrics without attaching to any tenant.
func probe(addr string, health, metrics bool) {
	c, err := serve.Dial(addr, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvctl:", err)
		os.Exit(1)
	}
	defer c.Close()
	if health {
		h, err := c.Healthz()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvctl:", err)
			os.Exit(1)
		}
		state := "ready"
		if h.Draining {
			state = "draining"
		} else if !h.Ready {
			state = "not ready"
		}
		fmt.Printf("live=%v %s, %d session(s), %d tenant(s), up %dms\n",
			h.Live, state, h.Sessions, len(h.Tenants), h.UptimeMs)
		for _, t := range h.Tenants {
			dead := ""
			if t.Dead != "" {
				dead = " DEAD: " + t.Dead
			}
			fmt.Printf("  tenant %-16s sessions=%d queued=%d breaker=%s%s\n",
				t.Name, t.Sessions, t.Queued, t.Breaker, dead)
		}
		if !h.Ready {
			os.Exit(1)
		}
	}
	if metrics {
		m, err := c.Metrics()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvctl:", err)
			os.Exit(1)
		}
		fmt.Print(telemetry.FormatSnapshot(m))
	}
}
