// Command lvctl is the operator client for lvserved: it attaches to a
// tenant's simulated testbed over the newline-delimited JSON protocol
// and drives the LiteView shell command set remotely.
//
//	lvctl -tenant lab-a                                   # interactive
//	lvctl -tenant lab-a -c "cd 192.168.0.1; ping 192.168.0.3"
//	lvctl -tenant lab-a -watch -layer mac -count 50       # live telemetry
//	lvctl -healthz                                        # probe only
//	lvctl -recovery                                       # crash-recovery status
//	lvctl -clear lab-a                                    # lift a quarantine
//
// A watch survives transient disconnects (a daemon restart mid-stream):
// it reconnects with capped exponential backoff and marks the seam with
// a "# reconnected (n dropped)" comment line; -reconnect=false restores
// the old exit-on-disconnect behavior.
//
// Exit status: 0 when every command succeeded, 1 on a command or
// transport error (the first failing command ends a -c script).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"liteview/internal/serve"
	"liteview/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7117", "lvserved wire-protocol address")
		tenant  = flag.String("tenant", "default", "tenant (testbed) to attach to")
		script  = flag.String("c", "", "run these semicolon-separated commands and exit")
		healthz  = flag.Bool("healthz", false, "print the daemon's health report and exit")
		metrics  = flag.Bool("metrics", false, "print the daemon's service metrics and exit")
		recovery = flag.Bool("recovery", false, "print the daemon's crash-recovery status and exit")
		clear    = flag.String("clear", "", "lift this tenant's quarantine (implies -recovery)")
		watch    = flag.Bool("watch", false, "stream the tenant's telemetry as JSONL to stdout")
		rewatch  = flag.Bool("reconnect", true, "watch: reconnect with backoff on transient disconnects")
		wNode   = flag.Uint64("node", 0, "watch: only events owned by this node id (0 = any)")
		wLayer  = flag.String("layer", "", "watch: only events from this layer (medium, mac, routing, ...)")
		wKind   = flag.String("kind", "", "watch: only events of this kind (tx, rx, cca, ...)")
		wLink   = flag.String("link", "", "watch: only events on this A-B node-id link")
		wSpan   = flag.Uint64("span", 0, "watch: only events of this command span id (0 = any)")
		wCount  = flag.Int("count", 0, "watch: stop after this many frames (0 = stream forever)")
		wFor    = flag.Duration("for", 0, "watch: stop after this long (enforced server-side)")
	)
	flag.Parse()

	if *healthz || *metrics || *recovery || *clear != "" {
		probe(*addr, *healthz, *metrics, *recovery || *clear != "", *clear)
		return
	}

	if *watch {
		spec := serve.WatchSpec{Node: *wNode, Layer: *wLayer, Kind: *wKind, Link: *wLink,
			Span: *wSpan, ForMs: wFor.Milliseconds()}
		deadline := time.Time{}
		if *wFor > 0 {
			deadline = time.Now().Add(*wFor)
		}
		frames := 0
		var dropped uint64
		// Comment frames ("# reconnected ...") mark reconnect seams; they
		// are printed but never counted against -count.
		sink := func(line string, drop uint64) bool {
			fmt.Println(line)
			if strings.HasPrefix(line, "#") {
				return true
			}
			frames++
			dropped = drop
			if *wCount > 0 && frames >= *wCount {
				return false
			}
			return deadline.IsZero() || time.Now().Before(deadline)
		}
		var err error
		if *rewatch {
			logf := func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "lvctl: "+format+"\n", args...)
			}
			err = serve.WatchRetry(*addr, *tenant, spec, serve.RetrySpec{}, sink, logf)
		} else {
			var c *serve.Client
			c, err = serve.Dial(*addr, *tenant)
			if err == nil {
				defer c.Close()
				err = c.Watch(spec, sink)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvctl:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lvctl: watch ended after %d frame(s), %d dropped\n", frames, dropped)
		return
	}

	c, err := serve.Dial(*addr, *tenant)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvctl:", err)
		os.Exit(1)
	}
	defer c.Close()

	if *script != "" {
		for _, line := range strings.Split(*script, ";") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			fmt.Printf("%s$ %s\n", *tenant, line)
			if !runOne(c, line) {
				os.Exit(1)
			}
		}
		return
	}

	fmt.Printf("lvctl: attached to tenant %q on %s. Type 'help' for commands, 'exit' to quit.\n", *tenant, *addr)
	in := bufio.NewScanner(os.Stdin)
	cwd := "/"
	for {
		fmt.Printf("%s:%s$ ", *tenant, cwd)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			return
		}
		resp, err := c.Run(line)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvctl:", err)
			os.Exit(1)
		}
		fmt.Print(resp.Output)
		if resp.Error != "" {
			hint := ""
			if resp.Transient {
				hint = " (transient: retry may help)"
			}
			fmt.Fprintf(os.Stderr, "error [%s]%s: %s\n", resp.Code, hint, resp.Error)
		}
		if resp.Cwd != "" {
			cwd = resp.Cwd
		}
	}
}

// runOne executes one scripted command, reporting success.
func runOne(c *serve.Client, line string) bool {
	resp, err := c.Run(line)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvctl:", err)
		return false
	}
	fmt.Print(resp.Output)
	if resp.Error != "" {
		fmt.Fprintf(os.Stderr, "error [%s]: %s\n", resp.Code, resp.Error)
		return false
	}
	return true
}

// probe prints health, metrics, and/or recovery status without
// attaching to any tenant. A non-empty clear lifts that tenant's
// quarantine before the recovery status prints.
func probe(addr string, health, metrics, recovery bool, clear string) {
	c, err := serve.Dial(addr, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvctl:", err)
		os.Exit(1)
	}
	defer c.Close()
	if health {
		h, err := c.Healthz()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvctl:", err)
			os.Exit(1)
		}
		state := "ready"
		if h.Draining {
			state = "draining"
		} else if !h.Ready {
			state = "not ready"
		}
		fmt.Printf("live=%v %s, %d session(s), %d tenant(s), up %dms\n",
			h.Live, state, h.Sessions, len(h.Tenants), h.UptimeMs)
		for _, t := range h.Tenants {
			extra := ""
			if t.State != "" && t.State != "serving" {
				extra += " state=" + t.State
			}
			if t.Restarts > 0 {
				extra += fmt.Sprintf(" restarts=%d", t.Restarts)
			}
			if t.Dead != "" {
				extra += " DEAD: " + t.Dead
			}
			fmt.Printf("  tenant %-16s sessions=%d queued=%d breaker=%s%s\n",
				t.Name, t.Sessions, t.Queued, t.Breaker, extra)
		}
		for _, q := range h.Quarantined {
			fmt.Printf("  tenant %-16s QUARANTINED after %d restart(s): %s\n", q.Tenant, q.Restarts, q.Reason)
		}
		if !h.Ready {
			os.Exit(1)
		}
	}
	if recovery {
		st, err := c.Recovery(clear)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvctl:", err)
			os.Exit(1)
		}
		if clear != "" {
			fmt.Printf("quarantine cleared: %s\n", clear)
		}
		fmt.Printf("recovery enabled=%v restored=%d recovering=%d quarantined=%d\n",
			st.Enabled, st.Restored, len(st.Recovering), len(st.Quarantined))
		for _, name := range st.Recovering {
			fmt.Printf("  recovering %s\n", name)
		}
		for _, q := range st.Quarantined {
			entry := ""
			if q.Line != "" {
				entry = fmt.Sprintf(" entry %d %q", q.Index, q.Line)
			}
			fmt.Printf("  quarantined %s after %d restart(s)%s: %s\n", q.Tenant, q.Restarts, entry, q.Reason)
		}
	}
	if metrics {
		m, err := c.Metrics()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvctl:", err)
			os.Exit(1)
		}
		fmt.Print(telemetry.FormatSnapshot(m))
	}
}
