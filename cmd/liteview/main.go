// Command liteview starts an interactive LiteView management session on
// a simulated sensor network testbed.
//
// The deployment is built from flags, LiteView is installed on every
// node, and a LiteOS-style shell reads commands from stdin:
//
//	liteview -topo line -nodes 9 -spacing 20
//	$ cd 192.168.0.1
//	$ ping 192.168.0.2 round=1 length=32
//	$ traceroute 192.168.0.9 round=1 length=32 port=10
//
// Use -c to run a semicolon-separated script instead of the REPL, and
// -trace to record every transmission to a CSV file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"liteview/internal/cli"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/shell"
)

func main() {
	var dep cli.DeploymentFlags
	dep.Register(flag.CommandLine)
	var (
		root    = flag.Int("root", 1, "collection tree root node id")
		script  = flag.String("c", "", "run these semicolon-separated commands and exit")
		traceTo = flag.String("trace", "", "record every transmission to this CSV file")
	)
	flag.Parse()

	tb, err := dep.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "liteview:", err)
		os.Exit(1)
	}
	for _, attach := range []func() error{
		func() error { return tb.AttachGeographic(routing.DefaultConfig()) },
		func() error { return tb.AttachFlooding(routing.DefaultConfig()) },
		func() error { return tb.AttachTree(phys.NodeID(*root), routing.DefaultConfig()) },
		func() error { return tb.AttachOnDemand(routing.DefaultConfig()) },
	} {
		if err := attach(); err != nil {
			fmt.Fprintln(os.Stderr, "liteview:", err)
			os.Exit(1)
		}
	}
	if _, err := tb.InstallLiteView(); err != nil {
		fmt.Fprintln(os.Stderr, "liteview:", err)
		os.Exit(1)
	}
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "liteview:", err)
			os.Exit(1)
		}
		defer f.Close()
		stop := tb.RecordTrace(f)
		defer stop()
	}
	fmt.Printf("LiteView: %d nodes (%s), warming up %v of virtual time...\n", len(tb.Nodes), dep.Topo, dep.Warmup)
	tb.WarmUp(dep.Warmup)

	// The workstation starts next to node 1.
	ws, err := tb.NewWorkstation(tb.Node(0).Position())
	if err != nil {
		fmt.Fprintln(os.Stderr, "liteview:", err)
		os.Exit(1)
	}
	sh, err := shell.NewForTestbed(tb, ws, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "liteview:", err)
		os.Exit(1)
	}
	if *script != "" {
		for _, line := range strings.Split(*script, ";") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			fmt.Printf("%s$ %s\n", sh.Cwd(), line)
			if err := sh.Exec(line); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
		return
	}
	fmt.Println("Ready. Type 'help' for commands, 'exit' to quit.")
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("%s$ ", sh.Cwd())
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := in.Text()
		if line == "exit" || line == "quit" {
			return
		}
		if err := sh.Exec(line); err != nil {
			fmt.Println("error:", err)
		}
	}
}
