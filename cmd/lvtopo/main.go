// Command lvtopo prints a deployment's radio map: node placements and
// the predicted quality of every link (received power, RSSI register,
// LQI, packet reception rate), before any packet flows. Deployment
// planners use it to pick spacings and power levels; it is also how the
// repository documents what its propagation model predicts.
//
//	lvtopo -topo line -nodes 9 -spacing 20 -power 31
//
// With -live the predicted map gives way to an observed one: a fleet
// view folded from cross-layer telemetry — per-node up/crashed/breaker
// state, per-link delivery/ETX/PRR as the neighbor tables estimate
// them, active faults, and recent command verdicts. The stream can come
// from three places:
//
//	lvtopo -live -replay trace.jsonl            # recorded JSONL trace
//	lvtopo -live -addr 127.0.0.1:7117 -tenant a # streamed off lvserved
//	lvtopo -live                                # in-process simulation
//
// Replay renders a frame each time the virtual clock crosses a -step
// boundary, deterministically. The daemon mode re-renders every
// -refresh of wall time until -for elapses or the stream ends; watching
// is zero-perturbation, so the tenant's simulation is byte-identical
// with or without lvtopo attached. The in-process mode builds the
// deployment from the topology flags, runs the built-in all-layer
// script, and renders a frame after each command.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"liteview/internal/cli"
	"liteview/internal/fleet"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/serve"
	"liteview/internal/shell"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
	"liteview/internal/trace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvtopo:", err)
	os.Exit(1)
}

func main() {
	var dep cli.DeploymentFlags
	dep.Register(flag.CommandLine)
	var (
		power  = flag.Int("power", radio.MaxPowerLevel, "transmit power level (3..31)")
		frame  = flag.Int("frame", 48, "frame size in bytes for PRR prediction")
		minPRR = flag.Float64("minprr", 0.01, "hide links below this predicted PRR")

		live    = flag.Bool("live", false, "render the observed fleet view instead of the predicted radio map")
		replay  = flag.String("replay", "", "live: fold a recorded telemetry JSONL trace instead of a live stream")
		addr    = flag.String("addr", "", "live: stream telemetry off this lvserved address")
		tenant  = flag.String("tenant", "default", "live: tenant to watch on -addr")
		step    = flag.Duration("step", 5*time.Second, "live -replay: render a frame per this much virtual time")
		refresh = flag.Duration("refresh", time.Second, "live -addr: re-render every this much wall time")
		runFor  = flag.Duration("for", 30*time.Second, "live -addr: stop after this long")
	)
	flag.Parse()

	if *live {
		switch {
		case *replay != "":
			if err := replayView(*replay, *step); err != nil {
				fatal(err)
			}
		case *addr != "":
			if err := streamView(*addr, *tenant, *refresh, *runFor); err != nil {
				fatal(err)
			}
		default:
			if err := localView(dep); err != nil {
				fatal(err)
			}
		}
		return
	}

	tb, err := dep.Build()
	if err != nil {
		fatal(err)
	}

	fmt.Println("Nodes:")
	pos := trace.NewTable("id", "name", "path", "x_m", "y_m")
	for _, n := range tb.Nodes {
		pos.AddRow(int(n.ID()), n.Name(), n.Path(), n.Position().X, n.Position().Y)
	}
	fmt.Println(pos)

	txDBm := radio.PowerDBm(*power)
	fmt.Printf("Links at power level %d (%.1f dBm), %d-byte frames:\n", *power, txDBm, *frame)
	links := trace.NewTable("from", "to", "dist_m", "rx_dBm", "RSSI", "LQI", "PRR")
	for _, a := range tb.Nodes {
		for _, b := range tb.Nodes {
			if a.ID() == b.ID() {
				continue
			}
			rx := tb.Model.ReceivedPower(txDBm, a.ID(), b.ID(), a.Position(), b.Position())
			if rx < radio.SensitivityDBm {
				continue
			}
			snr := tb.Model.SNR(rx)
			prr := phys.PRR(snr, *frame)
			if prr < *minPRR {
				continue
			}
			links.AddRow(int(a.ID()), int(b.ID()),
				a.Position().Distance(b.Position()), rx,
				radio.RSSIRegister(rx), radio.LQI(snr), prr)
		}
	}
	fmt.Println(links)
	fmt.Printf("%d audible directed links\n", links.Rows())
}

// replayView folds a recorded JSONL trace, printing a frame whenever
// the virtual clock crosses a step boundary and a final frame at the
// end. Fully deterministic: same trace, same bytes.
func replayView(path string, step time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := telemetry.ReadJSONL(f)
	if err != nil {
		return err
	}
	st := fleet.NewState()
	var next sim.Time
	if step > 0 {
		next = sim.Time(step)
	}
	frames := 0
	for i := range events {
		if step > 0 && events[i].At >= next {
			fmt.Printf("--- frame %d ---\n%s", frames, st.Render())
			frames++
			for next <= events[i].At {
				next += sim.Time(step)
			}
		}
		st.Apply(events[i])
	}
	fmt.Printf("--- final ---\n%s", st.Render())
	return nil
}

// streamView watches a tenant's telemetry off a daemon and re-renders
// the folded view on a wall-clock cadence.
func streamView(addr, tenant string, refresh, runFor time.Duration) error {
	c, err := serve.Dial(addr, tenant)
	if err != nil {
		return err
	}
	defer c.Close()
	st := fleet.NewState()
	nextDraw := time.Now()
	frames := 0
	draw := func() {
		fmt.Printf("--- frame %d ---\n%s", frames, st.Render())
		frames++
	}
	// The duration rides in the spec, so the server ends the stream even
	// if no frame ever arrives to prompt this side.
	err = c.Watch(serve.WatchSpec{ForMs: runFor.Milliseconds()}, func(line string, dropped uint64) bool {
		e, perr := telemetry.ParseJSONLine([]byte(line))
		if perr == nil {
			st.Apply(e)
		}
		if now := time.Now(); now.After(nextDraw) {
			draw()
			nextDraw = now.Add(refresh)
		}
		return true
	})
	draw()
	return err
}

// localView builds the deployment in-process, runs the built-in
// all-layer script with a subscription attached, and renders a frame
// after every command — the self-contained demo of the live pipeline.
func localView(dep cli.DeploymentFlags) error {
	tb, err := dep.BuildManaged()
	if err != nil {
		return err
	}
	rec := tb.Telemetry()
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		return err
	}
	sh, err := shell.NewForTestbed(tb, ws, io.Discard)
	if err != nil {
		return err
	}
	sub := rec.Subscribe(telemetry.Filter{}, 0)
	defer sub.Close()
	rec.Start()
	defer rec.Stop()

	first, last := tb.Node(0).Name(), tb.Node(len(tb.Nodes)-1).Name()
	st := fleet.NewState()
	script := []string{
		"cd " + first,
		"ping " + last + " round=2 length=32 port=10",
		"traceroute " + last + " port=10",
		"health",
	}
	for i, line := range script {
		if err := sh.Exec(line); err != nil {
			fmt.Fprintf(os.Stderr, "lvtopo: %s: %v\n", line, err)
		}
		for _, e := range sub.Poll(0) {
			st.Apply(e)
		}
		fmt.Printf("--- after %q (frame %d) ---\n%s", line, i, st.Render())
	}
	if d := sub.Dropped(); d > 0 {
		fmt.Printf("(%d events dropped by the view's subscription)\n", d)
	}
	return nil
}
