// Command lvtopo prints a deployment's radio map: node placements and
// the predicted quality of every link (received power, RSSI register,
// LQI, packet reception rate), before any packet flows. Deployment
// planners use it to pick spacings and power levels; it is also how the
// repository documents what its propagation model predicts.
//
//	lvtopo -topo line -nodes 9 -spacing 20 -power 31
package main

import (
	"flag"
	"fmt"
	"os"

	"liteview/internal/cli"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/trace"
)

func main() {
	var dep cli.DeploymentFlags
	dep.Register(flag.CommandLine)
	var (
		power  = flag.Int("power", radio.MaxPowerLevel, "transmit power level (3..31)")
		frame  = flag.Int("frame", 48, "frame size in bytes for PRR prediction")
		minPRR = flag.Float64("minprr", 0.01, "hide links below this predicted PRR")
	)
	flag.Parse()

	tb, err := dep.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvtopo:", err)
		os.Exit(1)
	}

	fmt.Println("Nodes:")
	pos := trace.NewTable("id", "name", "path", "x_m", "y_m")
	for _, n := range tb.Nodes {
		pos.AddRow(int(n.ID()), n.Name(), n.Path(), n.Position().X, n.Position().Y)
	}
	fmt.Println(pos)

	txDBm := radio.PowerDBm(*power)
	fmt.Printf("Links at power level %d (%.1f dBm), %d-byte frames:\n", *power, txDBm, *frame)
	links := trace.NewTable("from", "to", "dist_m", "rx_dBm", "RSSI", "LQI", "PRR")
	for _, a := range tb.Nodes {
		for _, b := range tb.Nodes {
			if a.ID() == b.ID() {
				continue
			}
			rx := tb.Model.ReceivedPower(txDBm, a.ID(), b.ID(), a.Position(), b.Position())
			if rx < radio.SensitivityDBm {
				continue
			}
			snr := tb.Model.SNR(rx)
			prr := phys.PRR(snr, *frame)
			if prr < *minPRR {
				continue
			}
			links.AddRow(int(a.ID()), int(b.ID()),
				a.Position().Distance(b.Position()), rx,
				radio.RSSIRegister(rx), radio.LQI(snr), prr)
		}
	}
	fmt.Println(links)
	fmt.Printf("%d audible directed links\n", links.Rows())
}
