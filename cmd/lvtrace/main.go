// Command lvtrace records a scripted run of a simulated deployment with
// the cross-layer telemetry recorder enabled and exports the captured
// event stream two ways: JSONL (one event per line, for grep/jq) and
// Chrome trace-event format (open chrome://tracing or ui.perfetto.dev
// and load the file to see every node's layers as a timeline).
//
// With no -script, a built-in script exercises every layer on the
// deployment: a direct one-hop ping, a routed multi-hop ping, and a
// traceroute across the whole topology.
//
//	lvtrace -topo line -nodes 9 -spacing 20 -seed 1
//	lvtrace -script run.lvsh -jsonl - -chrome ''
//	lvtrace -layer mac -node 3                     # filter the exports
//	lvtrace -link 2-3                              # one link, both ways
//	lvtrace -spans                                 # per-command span summary
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"liteview/internal/cli"
	"liteview/internal/phys"
	"liteview/internal/shell"
	"liteview/internal/telemetry"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lvtrace:", err)
	os.Exit(1)
}

func main() {
	var dep cli.DeploymentFlags
	dep.Register(flag.CommandLine)
	var (
		script  = flag.String("script", "", "shell script to record (default: built-in all-layer script)")
		jsonl   = flag.String("jsonl", "lvtrace.jsonl", "JSONL output path ('-' = stdout, '' = skip)")
		chrome  = flag.String("chrome", "lvtrace-chrome.json", "Chrome trace-event output path ('' = skip)")
		node    = flag.Int("node", 0, "filter: only events owned by this node id (0 = all)")
		layer   = flag.String("layer", "", "filter: only this layer (medium|mac|neighbor|stack|routing|reliable|controller|fault|span)")
		kind    = flag.String("kind", "", "filter: only this event kind")
		link    = flag.String("link", "", "filter: only events involving both nodes of 'A-B'")
		port    = flag.Int("port", 0, "filter: only events with this port attribute (0 = all)")
		spanID  = flag.Uint64("span", 0, "filter: only events of this command span id (0 = all)")
		spans   = flag.Bool("spans", false, "print the per-command span summary")
		summary = flag.Bool("summary", true, "print per-layer event counts")
		quiet   = flag.Bool("q", false, "suppress the shell transcript of the recorded run")
	)
	flag.Parse()

	tb, err := dep.BuildManaged()
	if err != nil {
		fatal(err)
	}
	// Enable recording only after warm-up: the interesting timeline is
	// the scripted commands, not thousands of discovery beacons.
	rec := tb.Telemetry()

	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		fatal(err)
	}
	shellOut := os.Stdout
	if *quiet {
		devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err != nil {
			fatal(err)
		}
		defer devnull.Close()
		shellOut = devnull
	}
	sh, err := shell.NewForTestbed(tb, ws, shellOut)
	if err != nil {
		fatal(err)
	}

	lines, err := scriptLines(*script, tb.Node(0).Name(), tb.Node(len(tb.Nodes)-1).Name())
	if err != nil {
		fatal(err)
	}

	rec.Start()
	for _, line := range lines {
		if !*quiet {
			fmt.Printf("$ %s\n", line)
		}
		if err := sh.Exec(line); err != nil {
			fmt.Fprintf(os.Stderr, "lvtrace: %s: %v\n", line, err)
		}
	}
	rec.Stop()

	f := telemetry.Filter{
		Node:  phys.NodeID(*node),
		Layer: telemetry.Layer(*layer),
		Kind:  *kind,
		Link:  *link,
		Port:  *port,
		Span:  *spanID,
	}
	events := rec.Events()

	if *jsonl != "" {
		if err := writeOut(*jsonl, func(w *bufio.Writer) error {
			return telemetry.WriteJSONL(w, events, f)
		}); err != nil {
			fatal(err)
		}
		if *jsonl != "-" {
			fmt.Printf("wrote %s\n", *jsonl)
		}
	}
	if *chrome != "" {
		if err := writeOut(*chrome, func(w *bufio.Writer) error {
			return telemetry.WriteChromeTrace(w, events, f)
		}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *chrome)
	}
	if *spans {
		fmt.Print(telemetry.SummarizeSpans(events))
	}
	if *summary {
		fmt.Print(telemetry.Summarize(events, f))
		if m := rec.Metrics().String(); m != "" {
			fmt.Printf("metrics:\n%s", indent(m))
		}
	}
}

// scriptLines loads the script file, or builds the default all-layer
// script between the first and last node of the deployment.
func scriptLines(path, first, last string) ([]string, error) {
	if path == "" {
		return []string{
			"cd " + first,
			"ping " + last + " round=1 length=32",         // direct: times out beyond one hop, still exercises MAC
			"ping " + last + " round=2 length=32 port=10", // routed multi-hop
			"traceroute " + last + " port=10",
			"stats medium",
		}, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, l := range strings.Split(string(raw), "\n") {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		lines = append(lines, l)
	}
	return lines, nil
}

func writeOut(path string, write func(*bufio.Writer) error) error {
	var w *bufio.Writer
	if path == "-" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := write(w); err != nil {
		return err
	}
	return w.Flush()
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}
