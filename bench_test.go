package liteview

// One benchmark per table and figure of the paper's evaluation section,
// plus the design-choice ablations from DESIGN.md and micro-benchmarks
// of the hot substrate paths. The figure/table benchmarks run the full
// simulated experiment per iteration — their ns/op is the cost of
// regenerating the result, while correctness of the regenerated shapes
// is asserted by the internal/bench test suite.

import (
	"testing"

	"liteview/internal/bench"
	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

// runExperiment drives one regenerated experiment per iteration with a
// rotating seed so the benchmark also doubles as a robustness sweep.
func runExperiment(b *testing.B, run func(seed uint64, opt bench.Options) (*bench.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := run(uint64(i)+1, bench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res == nil {
			b.Fatal("nil result")
		}
	}
}

// BenchmarkResponseDelayPing regenerates E1 (the 500 ms command window
// of neighborhood management and single-hop ping).
func BenchmarkResponseDelayPing(b *testing.B) { runExperiment(b, bench.ResponseDelays) }

// BenchmarkTracerouteDelay regenerates Figure 5 (per-hop traceroute
// response delay on the eight-hop line).
func BenchmarkTracerouteDelay(b *testing.B) { runExperiment(b, bench.Figure5) }

// BenchmarkPathRSSI regenerates Figure 6 (per-hop forward/backward RSSI
// at power levels 10 and 25).
func BenchmarkPathRSSI(b *testing.B) { runExperiment(b, bench.Figure6) }

// BenchmarkTracerouteOverhead regenerates Figure 7 (control packets vs
// hops, <50 at 8 hops).
func BenchmarkTracerouteOverhead(b *testing.B) { runExperiment(b, bench.Figure7) }

// BenchmarkFootprintAccounting regenerates T1 (binary footprints and
// zero-overhead-when-inactive).
func BenchmarkFootprintAccounting(b *testing.B) { runExperiment(b, bench.FootprintTable) }

// BenchmarkSingleHopPing regenerates T2 (the paper's sample ping
// transcript numbers).
func BenchmarkSingleHopPing(b *testing.B) { runExperiment(b, bench.PingSample) }

// BenchmarkPaddingCapacity regenerates T3 (the 24-hop padding bound of
// a 16-byte probe).
func BenchmarkPaddingCapacity(b *testing.B) { runExperiment(b, bench.PaddingCapacity) }

// BenchmarkPingVsTraceroute runs ablation D2 (padding-bounded multi-hop
// ping vs per-hop-report traceroute).
func BenchmarkPingVsTraceroute(b *testing.B) { runExperiment(b, bench.PingVsTraceroute) }

// BenchmarkAdaptiveBatch runs ablation D3 (adaptive vs fixed batch size
// in the reliable exchange protocol).
func BenchmarkAdaptiveBatch(b *testing.B) { runExperiment(b, bench.AdaptiveBatch) }

// BenchmarkNeighborSharing runs ablation D4 (kernel-shared vs
// per-protocol neighbor tables).
func BenchmarkNeighborSharing(b *testing.B) { runExperiment(b, bench.NeighborSharing) }

// BenchmarkProtocolComparison runs ablation D5 (the same ping command
// over geographic forwarding and the on-demand protocol).
func BenchmarkProtocolComparison(b *testing.B) { runExperiment(b, bench.ProtocolComparison) }

// BenchmarkEnergyTuning runs ablation D6 (transmit-power tuning vs the
// deployment's energy budget).
func BenchmarkEnergyTuning(b *testing.B) { runExperiment(b, bench.EnergyTuning) }

// BenchmarkDutyCycling runs ablation D7 (always-on vs low-power
// listening).
func BenchmarkDutyCycling(b *testing.B) { runExperiment(b, bench.DutyCycling) }

// --- Ablation D1 and substrate micro-benchmarks ---

// BenchmarkPortDispatch measures the port-map dispatch path of the
// communication stack (ablation D1: the price of protocol independence
// over a hardwired call).
func BenchmarkPortDispatch(b *testing.B) {
	eng := sim.NewEngine(1)
	model := phys.DefaultModel(1)
	med := medium.New(eng, model)
	rad, err := radio.New(17)
	if err != nil {
		b.Fatal(err)
	}
	var st *stack.Stack
	m, err := mac.New(eng, med, rad, 1, phys.Position{}, mac.DefaultConfig(),
		func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
	if err != nil {
		b.Fatal(err)
	}
	st = stack.New(eng, m)
	sink := 0
	if err := st.Subscribe(10, func(p *stack.Packet, _ phys.NodeID, _ medium.RxInfo) { sink += len(p.Data) }); err != nil {
		b.Fatal(err)
	}
	pkt := &stack.Packet{Port: 10, Origin: 2, Dst: 1, TTL: 4, Data: make([]byte, 32)}
	raw, err := pkt.Encode()
	if err != nil {
		b.Fatal(err)
	}
	frame := mac.Frame{Type: mac.TypeData, Dst: 1, Src: 2, Payload: raw}
	info := medium.RxInfo{From: 2, LQI: 108, RSSI: -10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.OnFrame(frame, info)
	}
	_ = sink
}

// BenchmarkDirectDispatch is the baseline for D1: the same handler
// invoked without the port map (decode plus direct call).
func BenchmarkDirectDispatch(b *testing.B) {
	sink := 0
	handler := func(p *stack.Packet) { sink += len(p.Data) }
	pkt := &stack.Packet{Port: 10, Origin: 2, Dst: 1, TTL: 4, Data: make([]byte, 32)}
	raw, err := pkt.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := stack.DecodePacket(raw)
		if err != nil {
			b.Fatal(err)
		}
		handler(p)
	}
	_ = sink
}

// BenchmarkCRC measures the CRC-16/CCITT over a max-size frame.
func BenchmarkCRC(b *testing.B) {
	data := make([]byte, mac.MaxFrameLen)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		mac.Checksum(data)
	}
}

// BenchmarkFrameRoundTrip measures MAC frame encode+decode.
func BenchmarkFrameRoundTrip(b *testing.B) {
	f := mac.Frame{Type: mac.TypeControl, Dst: 2, Src: 1, Payload: make([]byte, 64)}
	for i := 0; i < b.N; i++ {
		raw, err := f.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mac.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketRoundTrip measures stack packet encode+decode with a
// full padding region.
func BenchmarkPacketRoundTrip(b *testing.B) {
	p := &stack.Packet{Port: 10, Origin: 1, Dst: 9, TTL: 16, Flags: stack.FlagPad, Data: make([]byte, 16)}
	for i := 0; i < 24; i++ {
		if err := p.AppendPad(stack.LinkQuality{LQI: 100, RSSI: -20}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < b.N; i++ {
		raw, err := p.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stack.DecodePacket(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEvents measures the simulator's event throughput.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			eng.MustSchedule(1000, tick)
		}
	}
	eng.MustSchedule(1000, tick)
	b.ResetTimer()
	eng.Run()
}

// BenchmarkEngineSchedule isolates the kernel's scheduling hot loop —
// the self-rescheduling ticker pattern that dominates every simulation
// (MAC backoffs, LPL wakeups, app traffic, medium deliveries). The
// handle variant is the legacy path: MustSchedule allocates a fresh
// Event per tick and returns a cancellation handle that is immediately
// discarded. The pooled variant is the fast path: After recycles fired
// events through the engine-local free list, so the steady state runs
// allocation-free.
func BenchmarkEngineSchedule(b *testing.B) {
	b.Run("handle", func(b *testing.B) {
		eng := sim.NewEngine(1)
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < b.N {
				eng.MustSchedule(1000, tick)
			}
		}
		eng.MustSchedule(1000, tick)
		b.ReportAllocs()
		b.ResetTimer()
		eng.Run()
	})
	b.Run("pooled", func(b *testing.B) {
		eng := sim.NewEngine(1)
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < b.N {
				eng.After(1000, tick)
			}
		}
		eng.After(1000, tick)
		b.ReportAllocs()
		b.ResetTimer()
		eng.Run()
	})
	// lpl-4096 is the pattern the ISSUE's O(1)-vs-O(log n) claim is
	// about: 4096 concurrent duty-cycle tickers (LPL wakeups, beacon
	// timers) with staggered phases, so the pending set stays ~4096
	// deep while every fire schedules near the tail. A binary heap
	// pays O(log 4096) = 12 sift levels per event here; a timer wheel
	// pays O(1).
	b.Run("lpl-4096", func(b *testing.B) {
		const tickers = 4096
		const period = 100 * 1000 * 1000 // 100 ms, the LPL sleep interval
		eng := sim.NewEngine(1)
		n := 0
		fns := make([]func(), tickers)
		for i := range fns {
			i := i
			fns[i] = func() {
				n++
				if n < b.N {
					eng.After(period, fns[i])
				}
			}
			eng.After(sim.Time(period*(i+1)/tickers), fns[i])
		}
		b.ReportAllocs()
		b.ResetTimer()
		eng.Run()
	})
}

// BenchmarkFramePath measures the full one-hop TX→medium→RX→dispatch
// path between two real nodes 5 m apart: stack encode, MAC enqueue +
// CSMA, medium assessment and delivery, MAC decode + dedup, and stack
// port dispatch. The broadcast variant is ack-free; the unicast variant
// adds the auto-ack exchange (receiver ack TX, sender ack-wait). This
// is the path the zero-alloc work pins at 0 allocs/op in steady state.
func BenchmarkFramePath(b *testing.B) {
	run := func(b *testing.B, dst phys.NodeID) {
		eng := sim.NewEngine(7)
		model := phys.DefaultModel(7)
		med := medium.New(eng, model)
		mkNode := func(id phys.NodeID, pos phys.Position) *stack.Stack {
			rad, err := radio.New(17)
			if err != nil {
				b.Fatal(err)
			}
			var st *stack.Stack
			m, err := mac.New(eng, med, rad, id, pos, mac.DefaultConfig(),
				func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
			if err != nil {
				b.Fatal(err)
			}
			st = stack.New(eng, m)
			return st
		}
		tx := mkNode(1, phys.Position{})
		rx := mkNode(2, phys.Position{X: 5})
		got := 0
		if err := rx.Subscribe(10, func(p *stack.Packet, _ phys.NodeID, _ medium.RxInfo) {
			got += len(p.Data)
		}); err != nil {
			b.Fatal(err)
		}
		pkt := &stack.Packet{Port: 10, Origin: 1, Dst: 2, TTL: 4, Data: make([]byte, 32)}
		// Warm the link caches and the pools before measuring.
		for i := 0; i < 8; i++ {
			if err := tx.Send(pkt, dst, mac.TypeData, nil); err != nil {
				b.Fatal(err)
			}
			eng.Run()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tx.Send(pkt, dst, mac.TypeData, nil); err != nil {
				b.Fatal(err)
			}
			eng.Run()
		}
		if got == 0 {
			b.Fatal("no packets delivered")
		}
	}
	b.Run("broadcast", func(b *testing.B) { run(b, phys.Broadcast) })
	b.Run("unicast-acked", func(b *testing.B) { run(b, 2) })
}

// BenchmarkPRR measures the SNR→packet-reception-rate computation.
func BenchmarkPRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		phys.PRR(float64(i%20)-5, 64)
	}
}

// BenchmarkLQI measures the SNR→LQI mapping.
func BenchmarkLQI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		radio.LQI(float64(i % 30))
	}
}

// silentNode is a no-op medium.Receiver: the benchmark measures the
// medium's fan-out, not receiver processing.
type silentNode struct {
	id  phys.NodeID
	pos phys.Position
}

func (s *silentNode) NodeID() phys.NodeID               { return s.id }
func (s *silentNode) Position() phys.Position           { return s.pos }
func (s *silentNode) RadioState() radio.State           { return radio.RX }
func (s *silentNode) Channel() int                      { return 17 }
func (s *silentNode) PowerLevel() int                   { return radio.MaxPowerLevel }
func (s *silentNode) OnFrame(_ []byte, _ medium.RxInfo) {}

// BenchmarkMediumDeliver measures one broadcast fan-out on a dense
// grid (15 m spacing): transmit from the grid center, deliver to every
// candidate. The indexed variant is the default engine (link-gain cache
// + reachability index + shared frame); fanout is the legacy full-order
// scan with per-pair recomputation and per-receiver frame copies, kept
// as the before-side of the optimization. The sharded variants run the
// spatially partitioned medium (per-cell ledgers, ring-bounded reach) —
// with one assessment lane and with four concurrent ones — at 400 and
// 10,000 nodes; all variants deliver byte-identical results.
func BenchmarkMediumDeliver(b *testing.B) {
	run := func(b *testing.B, side int, indexed bool, shardWorkers int) {
		eng := sim.NewEngine(42)
		model := phys.DefaultModel(42)
		m := medium.New(eng, model)
		m.SetReachabilityIndex(indexed)
		if shardWorkers > 0 {
			if err := m.SetSharding(medium.Sharding{Workers: shardWorkers}); err != nil {
				b.Fatal(err)
			}
		}
		centerID := phys.NodeID((side/2)*side + side/2 + 1)
		var center medium.Receiver
		for i := 0; i < side*side; i++ {
			n := &silentNode{id: phys.NodeID(i + 1),
				pos: phys.Position{X: float64(i%side) * 15, Y: float64(i/side) * 15}}
			if n.id == centerID {
				center = n
			}
			if err := m.Attach(n); err != nil {
				b.Fatal(err)
			}
		}
		frame := make([]byte, 64)
		// Warm the caches (part of the design: gains are static).
		if _, err := m.Transmit(center, frame); err != nil {
			b.Fatal(err)
		}
		eng.Run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Transmit(center, frame); err != nil {
				b.Fatal(err)
			}
			eng.Run()
		}
	}
	b.Run("indexed-400", func(b *testing.B) { run(b, 20, true, 0) })
	b.Run("fanout-400", func(b *testing.B) { run(b, 20, false, 0) })
	b.Run("sharded-400", func(b *testing.B) { run(b, 20, true, 1) })
	b.Run("sharded-400-lanes-4", func(b *testing.B) { run(b, 20, true, 4) })
	b.Run("indexed-10k", func(b *testing.B) { run(b, 100, true, 0) })
	b.Run("sharded-10k-lanes-4", func(b *testing.B) { run(b, 100, true, 4) })
}
