// Package journal is the write-ahead command journal behind lvserved's
// crash recovery. One journal per tenant records, *before execution*,
// every state-mutating command the tenant's simulation accepts, plus
// the seed the simulation was built from. Because a tenant simulation
// is byte-identically deterministic in (seed, command sequence) —
// DESIGN §10 — the journal is a complete checkpoint: rebuilding the
// simulation from the recorded seed and replaying the recorded
// commands resurrects the exact pre-crash state, with no snapshotting.
//
// On disk a journal is a directory of size-capped segment files
// (000001.wal, 000002.wal, ...) of newline-delimited records. Each
// line frames one JSON record with a CRC over the record bytes:
//
//	{"crc":3735928559,"rec":{"t":"cmd","i":12,"line":"ping 192.168.0.3"}}
//
// so a torn tail (the daemon was kill -9'd mid-write, the disk filled)
// is detected on recovery, truncated, and warned about rather than
// poisoning the replay. Record types: "open" (starts every segment;
// carries the tenant name and seed; full=true marks a compacted
// segment that restates the whole history, telling recovery to discard
// anything read from earlier segments), "cmd" (one journaled command
// with its index), and "mark" (periodic compaction markers delimiting
// fsync batches; an integrity checkpoint carrying the next expected
// index).
//
// Durability model: every append is flushed to the OS before the
// command executes, so the journal survives any death of the *process*
// (panic, kill -9) with nothing lost. fsync is batched (Options
// .FsyncEvery) and forced on rotation, compaction, and close, so an
// entire-machine crash can lose at most the last un-synced batch —
// detected and truncated by the CRC framing like any torn tail.
//
// A Journal is owned by a single goroutine (the tenant loop). The
// package-level functions (Compact, TruncatePast, Drop, List) operate
// on closed journals only.
package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ErrNoJournal reports a Recover for a tenant with no journal on disk.
var ErrNoJournal = errors.New("journal: tenant has no journal")

// Options tunes a journal. The zero value is usable.
type Options struct {
	// SegmentCap rotates to a fresh segment file once the current one
	// reaches this many bytes (0 = 1 MiB).
	SegmentCap int64
	// FsyncEvery batches fsync: the file is synced after this many
	// appends (0 = 8; 1 = sync every append). Every append is still
	// flushed to the OS immediately — see the package durability model.
	FsyncEvery int
	// MarkEvery writes a compaction marker every this many appends
	// (0 = 256; negative disables).
	MarkEvery int
	// Logf receives recovery warnings (torn tails, seed mismatches).
	// Nil discards.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.SegmentCap <= 0 {
		o.SegmentCap = 1 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 8
	}
	if o.MarkEvery == 0 {
		o.MarkEvery = 256
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Entry is one journaled command: its position in the tenant's
// accepted-command sequence and the command line itself.
type Entry struct {
	Index uint64
	Line  string
}

// record is the on-disk payload inside one CRC frame.
type record struct {
	Type   string `json:"t"`                // "open", "cmd", "mark"
	Tenant string `json:"tenant,omitempty"` // open
	Seed   uint64 `json:"seed,omitempty"`   // open
	Full   bool   `json:"full,omitempty"`   // open: segment restates the whole history
	Index  uint64 `json:"i,omitempty"`      // cmd: entry index; mark: next expected index
	Line   string `json:"line,omitempty"`   // cmd
}

// frame is one journal line: the record bytes plus their CRC.
type frame struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func encodeFrame(r record) ([]byte, error) {
	rec, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf(`{"crc":%d,"rec":%s}`+"\n", crc32.Checksum(rec, castagnoli), rec)), nil
}

func decodeFrame(line []byte) (record, error) {
	var f frame
	if err := json.Unmarshal(line, &f); err != nil {
		return record{}, fmt.Errorf("journal: bad frame: %w", err)
	}
	if crc32.Checksum(f.Rec, castagnoli) != f.CRC {
		return record{}, errors.New("journal: record CRC mismatch")
	}
	var r record
	if err := json.Unmarshal(f.Rec, &r); err != nil {
		return record{}, fmt.Errorf("journal: bad record: %w", err)
	}
	return r, nil
}

const (
	segSuffix    = ".wal"
	tenantPrefix = "t-"
)

// tenantDir maps a tenant name onto a filesystem-safe directory. The
// prefix keeps escaped names distinct from anything else in the dir
// and makes "." / ".." impossible.
func tenantDir(dir, tenant string) string {
	return filepath.Join(dir, tenantPrefix+url.QueryEscape(tenant))
}

func segName(n int) string { return fmt.Sprintf("%06d%s", n, segSuffix) }

// segments lists a tenant directory's segment files in replay order.
func segments(d string) (names []string, maxSeg int, err error) {
	ents, err := os.ReadDir(d)
	if err != nil {
		return nil, 0, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(name, segSuffix))
		if err != nil {
			continue
		}
		if n > maxSeg {
			maxSeg = n
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, maxSeg, nil
}

// Journal is one tenant's open write-ahead log. Single-goroutine.
type Journal struct {
	dir    string // tenant directory
	tenant string
	seed   uint64
	opt    Options

	f        *os.File
	size     int64
	seg      int
	next     uint64 // next entry index
	unsynced int
	appends  int // since the last mark
	err      error
}

// Create starts a fresh journal for the tenant, discarding any
// previous one: a brand-new tenant means a brand-new simulation, so
// stale history must not resurrect into it.
func Create(dir, tenant string, seed uint64, opt Options) (*Journal, error) {
	opt = opt.withDefaults()
	d := tenantDir(dir, tenant)
	if err := os.RemoveAll(d); err != nil {
		return nil, fmt.Errorf("journal: reset %s: %w", d, err)
	}
	if err := os.MkdirAll(d, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", d, err)
	}
	j := &Journal{dir: d, tenant: tenant, seed: seed, opt: opt}
	if err := j.openSegment(1, false); err != nil {
		return nil, err
	}
	return j, nil
}

// Recover opens an existing journal for replay-then-append: it reads
// every segment, CRC-verifies each record, repairs a torn tail
// (truncate + warn via Options.Logf), and returns the recorded entries
// in order. The returned journal appends after the last good entry.
func Recover(dir, tenant string, opt Options) (*Journal, []Entry, error) {
	opt = opt.withDefaults()
	d := tenantDir(dir, tenant)
	if _, err := os.Stat(d); err != nil {
		if os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("%w: %q", ErrNoJournal, tenant)
		}
		return nil, nil, err
	}
	seed, entries, maxSeg, err := loadAndRepair(d, tenant, opt)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: d, tenant: tenant, seed: seed, opt: opt}
	if len(entries) > 0 {
		j.next = entries[len(entries)-1].Index + 1
	}
	// Append into a fresh segment rather than reopening the repaired
	// tail: rotation is cheap and sidesteps every partial-write edge.
	if err := j.openSegment(maxSeg+1, false); err != nil {
		return nil, nil, err
	}
	return j, entries, nil
}

// loadAndRepair reads all segments in order. The first frame that
// fails to decode — torn write, CRC mismatch, index discontinuity — is
// treated as the start of a lost tail: the segment is truncated at
// that byte offset, every later segment is removed, and a warning is
// logged. A full=true open record restates history: entries collected
// from earlier segments are discarded (compaction crash-safety).
func loadAndRepair(d, tenant string, opt Options) (seed uint64, entries []Entry, maxSeg int, err error) {
	names, maxSeg, err := segments(d)
	if err != nil {
		return 0, nil, 0, err
	}
	if len(names) == 0 {
		return 0, nil, 0, fmt.Errorf("%w: %q (empty directory)", ErrNoJournal, tenant)
	}
	var next uint64
	truncateFrom := -1 // index into names of the first dead segment
	for si, name := range names {
		path := filepath.Join(d, name)
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return 0, nil, 0, rerr
		}
		off := 0
		bad := func(reason string) {
			opt.Logf("journal: tenant %q segment %s: %s at byte %d; truncating lost tail", tenant, name, reason, off)
			if terr := os.Truncate(path, int64(off)); terr != nil {
				opt.Logf("journal: tenant %q segment %s: truncate failed: %v", tenant, name, terr)
			}
			truncateFrom = si + 1
		}
	lines:
		for off < len(data) {
			nl := -1
			for i := off; i < len(data); i++ {
				if data[i] == '\n' {
					nl = i
					break
				}
			}
			if nl < 0 {
				bad("unterminated record")
				break
			}
			rec, derr := decodeFrame(data[off:nl])
			if derr != nil {
				bad(derr.Error())
				break
			}
			switch rec.Type {
			case "open":
				if rec.Full {
					entries = entries[:0] // this segment restates everything
					next = 0
				}
				seed = rec.Seed
			case "cmd":
				if rec.Index != next {
					bad(fmt.Sprintf("index %d, want %d", rec.Index, next))
					break lines
				}
				entries = append(entries, Entry{Index: rec.Index, Line: rec.Line})
				next++
			case "mark":
				if rec.Index != next {
					bad(fmt.Sprintf("mark %d, want %d", rec.Index, next))
					break lines
				}
			default:
				bad(fmt.Sprintf("unknown record type %q", rec.Type))
				break lines
			}
			off = nl + 1
		}
		if truncateFrom >= 0 {
			break
		}
	}
	if truncateFrom >= 0 {
		for _, name := range names[truncateFrom:] {
			opt.Logf("journal: tenant %q: removing segment %s past the lost tail", tenant, name)
			if rerr := os.Remove(filepath.Join(d, name)); rerr != nil {
				return 0, nil, 0, rerr
			}
		}
	}
	return seed, entries, maxSeg, nil
}

// openSegment starts segment n with its open record.
func (j *Journal) openSegment(n int, full bool) error {
	f, err := os.OpenFile(filepath.Join(j.dir, segName(n)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	j.f, j.seg, j.size = f, n, 0
	if err := j.writeRecord(record{Type: "open", Tenant: j.tenant, Seed: j.seed, Full: full}); err != nil {
		return err
	}
	return j.sync()
}

func (j *Journal) writeRecord(r record) error {
	if j.err != nil {
		return j.err
	}
	line, err := encodeFrame(r)
	if err == nil {
		_, err = j.f.Write(line)
	}
	if err != nil {
		j.err = fmt.Errorf("journal: tenant %q append: %w", j.tenant, err)
		return j.err
	}
	j.size += int64(len(line))
	return nil
}

func (j *Journal) sync() error {
	if j.err != nil {
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("journal: tenant %q sync: %w", j.tenant, err)
		return j.err
	}
	j.unsynced = 0
	return nil
}

// Seed returns the seed recorded for this tenant's simulation.
func (j *Journal) Seed() uint64 { return j.seed }

// NextIndex returns the index the next appended command will get.
func (j *Journal) NextIndex() uint64 { return j.next }

// Append journals one accepted command ahead of its execution and
// returns the index it was recorded under. The write reaches the OS
// before Append returns; fsync is batched per Options.FsyncEvery.
func (j *Journal) Append(line string) (uint64, error) {
	idx := j.next
	if err := j.writeRecord(record{Type: "cmd", Index: idx, Line: line}); err != nil {
		return 0, err
	}
	j.next++
	j.appends++
	if j.opt.MarkEvery > 0 && j.appends%j.opt.MarkEvery == 0 {
		if err := j.writeRecord(record{Type: "mark", Index: j.next}); err != nil {
			return 0, err
		}
	}
	j.unsynced++
	if j.unsynced >= j.opt.FsyncEvery {
		if err := j.sync(); err != nil {
			return 0, err
		}
	}
	if j.size >= j.opt.SegmentCap {
		if err := j.rotate(); err != nil {
			return 0, err
		}
	}
	return idx, nil
}

// rotate seals the current segment and starts the next one.
func (j *Journal) rotate() error {
	if err := j.sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		j.err = fmt.Errorf("journal: tenant %q rotate: %w", j.tenant, err)
		return j.err
	}
	return j.openSegment(j.seg+1, false)
}

// Close syncs and closes the journal. The files stay on disk — that is
// the point: a closed journal is what Recover resurrects from.
func (j *Journal) Close() error {
	if j.f == nil {
		return j.err
	}
	serr := j.sync()
	cerr := j.f.Close()
	j.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// Compact rewrites a closed journal as a single full segment: rotated
// segments merge, markers and truncated tails drop out. Run on clean
// drain so a recovered daemon replays one tidy file per tenant.
func Compact(dir, tenant string, opt Options) error {
	return rewrite(dir, tenant, opt, func(Entry) bool { return true })
}

// TruncatePast rewrites a closed journal keeping only entries with
// Index < index. The supervisor uses it to amputate a poison command
// (and anything after it) so the tenant's good prefix stays
// recoverable instead of crash-looping on replay.
func TruncatePast(dir, tenant string, index uint64, opt Options) error {
	return rewrite(dir, tenant, opt, func(e Entry) bool { return e.Index < index })
}

// rewrite loads a closed journal and replaces it with one full segment
// holding the kept entries. The new segment is written and synced
// under a temporary name first and old segments are removed only after
// the rename, so a crash mid-rewrite leaves either the old segments or
// a full=true segment that restates everything — never a mix replay
// would double-count.
func rewrite(dir, tenant string, opt Options, keep func(Entry) bool) error {
	opt = opt.withDefaults()
	d := tenantDir(dir, tenant)
	seed, entries, maxSeg, err := loadAndRepair(d, tenant, opt)
	if err != nil {
		return err
	}
	tmp := filepath.Join(d, "rewrite.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rewrite %s: %w", d, err)
	}
	write := func(r record) error {
		line, err := encodeFrame(r)
		if err == nil {
			_, err = f.Write(line)
		}
		return err
	}
	kept := 0
	werr := write(record{Type: "open", Tenant: tenant, Seed: seed, Full: true})
	for _, e := range entries {
		if werr != nil {
			break
		}
		if keep(e) {
			werr = write(record{Type: "cmd", Index: e.Index, Line: e.Line})
			kept++
		}
	}
	if werr == nil {
		werr = write(record{Type: "mark", Index: uint64(kept)})
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: rewrite %s: %w", d, werr)
	}
	names, _, err := segments(d)
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(d, segName(maxSeg+1))); err != nil {
		return fmt.Errorf("journal: rewrite %s: %w", d, err)
	}
	for _, name := range names {
		if err := os.Remove(filepath.Join(d, name)); err != nil {
			return err
		}
	}
	return nil
}

// Drop removes a tenant's journal entirely (idle reap: a reaped tenant
// deliberately starts fresh on its next hello).
func Drop(dir, tenant string) error {
	return os.RemoveAll(tenantDir(dir, tenant))
}

// List names every tenant with a journal under dir, sorted. A missing
// dir lists empty: a daemon started with -recover and a virgin journal
// directory has nothing to restore, which is not an error.
func List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), tenantPrefix) {
			continue
		}
		name, err := url.QueryUnescape(strings.TrimPrefix(e.Name(), tenantPrefix))
		if err != nil {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}
