package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustCreate(t *testing.T, dir, tenant string, seed uint64, opt Options) *Journal {
	t.Helper()
	j, err := Create(dir, tenant, seed, opt)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func appendAll(t *testing.T, j *Journal, lines ...string) {
	t.Helper()
	for _, line := range lines {
		if _, err := j.Append(line); err != nil {
			t.Fatalf("Append(%q): %v", line, err)
		}
	}
}

func recoverLines(t *testing.T, dir, tenant string, opt Options) (*Journal, []string) {
	t.Helper()
	j, entries, err := Recover(dir, tenant, opt)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, len(entries))
	for i, e := range entries {
		if e.Index != uint64(i) {
			t.Fatalf("entry %d has index %d", i, e.Index)
		}
		lines[i] = e.Line
	}
	return j, lines
}

// TestRoundTrip: create, append, close, recover — entries come back in
// order with the recorded seed, and the recovered journal appends at
// the right index.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustCreate(t, dir, "lab", 42, Options{})
	appendAll(t, j, "cd 192.168.0.1", "ping 192.168.0.2", "stats")
	if got := j.NextIndex(); got != 3 {
		t.Fatalf("NextIndex = %d, want 3", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, lines := recoverLines(t, dir, "lab", Options{})
	defer r.Close()
	if r.Seed() != 42 {
		t.Fatalf("recovered seed = %d, want 42", r.Seed())
	}
	want := []string{"cd 192.168.0.1", "ping 192.168.0.2", "stats"}
	if fmt.Sprint(lines) != fmt.Sprint(want) {
		t.Fatalf("recovered %v, want %v", lines, want)
	}
	if idx, err := r.Append("pwd"); err != nil || idx != 3 {
		t.Fatalf("post-recovery Append = (%d, %v), want (3, nil)", idx, err)
	}
}

// TestCreateWipesOldJournal: a fresh tenant must not inherit a
// predecessor's history.
func TestCreateWipesOldJournal(t *testing.T) {
	dir := t.TempDir()
	j := mustCreate(t, dir, "lab", 1, Options{})
	appendAll(t, j, "stale")
	j.Close()

	j2 := mustCreate(t, dir, "lab", 2, Options{})
	j2.Close()
	r, lines := recoverLines(t, dir, "lab", Options{})
	defer r.Close()
	if len(lines) != 0 || r.Seed() != 2 {
		t.Fatalf("recovered (%v, seed %d) after re-create, want ([], 2)", lines, r.Seed())
	}
}

// TestTornTailTruncated: garbage appended after the last record (a
// torn write) is detected, truncated with a warning, and the journal
// stays appendable.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j := mustCreate(t, dir, "lab", 7, Options{})
	appendAll(t, j, "a", "b")
	j.Close()

	seg := filepath.Join(tenantDir(dir, "lab"), segName(1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A frame cut off mid-write: valid prefix, no newline.
	if _, err := f.WriteString(`{"crc":1,"rec":{"t":"cmd","i":2,"li`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var warned []string
	opt := Options{Logf: func(format string, args ...any) {
		warned = append(warned, fmt.Sprintf(format, args...))
	}}
	r, lines := recoverLines(t, dir, "lab", opt)
	if fmt.Sprint(lines) != fmt.Sprint([]string{"a", "b"}) {
		t.Fatalf("recovered %v, want [a b]", lines)
	}
	if len(warned) == 0 || !strings.Contains(warned[0], "truncating") {
		t.Fatalf("no truncation warning, got %v", warned)
	}
	appendAll(t, r, "c")
	r.Close()

	r2, lines2 := recoverLines(t, dir, "lab", Options{})
	r2.Close()
	if fmt.Sprint(lines2) != fmt.Sprint([]string{"a", "b", "c"}) {
		t.Fatalf("after repair + append recovered %v, want [a b c]", lines2)
	}
}

// TestCorruptMidFile: a CRC mismatch in the middle of a segment drops
// that record and everything after it — replaying past corruption
// would silently diverge from the real pre-crash state.
func TestCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	j := mustCreate(t, dir, "lab", 7, Options{})
	appendAll(t, j, "a", "b", "c")
	j.Close()

	seg := filepath.Join(tenantDir(dir, "lab"), segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the record holding "b".
	i := strings.Index(string(data), `"line":"b"`)
	if i < 0 {
		t.Fatalf("record for b not found in %q", data)
	}
	data[i+9] = 'X'
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var warned bool
	r, lines := recoverLines(t, dir, "lab", Options{Logf: func(string, ...any) { warned = true }})
	r.Close()
	if fmt.Sprint(lines) != fmt.Sprint([]string{"a"}) {
		t.Fatalf("recovered %v past a CRC mismatch, want [a]", lines)
	}
	if !warned {
		t.Fatal("CRC mismatch produced no warning")
	}
}

// TestSegmentRotation: appends past the size cap rotate into new
// segment files, and recovery stitches all segments back together.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j := mustCreate(t, dir, "lab", 9, Options{SegmentCap: 256})
	var want []string
	for i := 0; i < 40; i++ {
		line := fmt.Sprintf("cmd-%02d", i)
		want = append(want, line)
	}
	appendAll(t, j, want...)
	j.Close()

	names, _, err := segments(tenantDir(dir, "lab"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("got %d segments, want rotation to have produced >= 3: %v", len(names), names)
	}

	r, lines := recoverLines(t, dir, "lab", Options{})
	r.Close()
	if fmt.Sprint(lines) != fmt.Sprint(want) {
		t.Fatalf("recovered %v across segments, want %v", lines, want)
	}
}

// TestTornTailRemovesLaterSegments: corruption in an early segment
// invalidates every later segment, not just the rest of the file.
func TestTornTailRemovesLaterSegments(t *testing.T) {
	dir := t.TempDir()
	j := mustCreate(t, dir, "lab", 9, Options{SegmentCap: 256})
	for i := 0; i < 40; i++ {
		appendAll(t, j, fmt.Sprintf("cmd-%02d", i))
	}
	j.Close()
	d := tenantDir(dir, "lab")
	names, _, err := segments(d)
	if err != nil || len(names) < 3 {
		t.Fatalf("need >= 3 segments, got %v (err %v)", names, err)
	}
	// Chop the first segment mid-record.
	first := filepath.Join(d, names[0])
	data, _ := os.ReadFile(first)
	if err := os.Truncate(first, int64(len(data)-10)); err != nil {
		t.Fatal(err)
	}

	r, lines := recoverLines(t, dir, "lab", Options{})
	r.Close()
	for _, line := range lines {
		if line == "cmd-39" {
			t.Fatal("recovery kept entries from segments after the torn one")
		}
	}
	left, _, err := segments(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range left[1:] {
		if name < names[len(names)-1] && name != names[0] {
			// Only the truncated first segment and the fresh append
			// segment should remain from the originals.
			if containsStr(names[1:], name) {
				t.Fatalf("stale segment %s survived tail removal (have %v)", name, left)
			}
		}
	}
}

func containsStr(xs []string, x string) bool {
	for _, s := range xs {
		if s == x {
			return true
		}
	}
	return false
}

// TestCompact merges rotated segments into one full segment with
// identical replay semantics.
func TestCompact(t *testing.T) {
	dir := t.TempDir()
	j := mustCreate(t, dir, "lab", 5, Options{SegmentCap: 256})
	var want []string
	for i := 0; i < 30; i++ {
		line := fmt.Sprintf("cmd-%02d", i)
		want = append(want, line)
	}
	appendAll(t, j, want...)
	j.Close()

	if err := Compact(dir, "lab", Options{}); err != nil {
		t.Fatal(err)
	}
	names, _, err := segments(tenantDir(dir, "lab"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("compaction left %d segments: %v", len(names), names)
	}
	r, lines := recoverLines(t, dir, "lab", Options{})
	r.Close()
	if fmt.Sprint(lines) != fmt.Sprint(want) || r.Seed() != 5 {
		t.Fatalf("post-compaction recovered (%v, seed %d)", lines, r.Seed())
	}
}

// TestTruncatePast amputates a poison entry and everything after it.
func TestTruncatePast(t *testing.T) {
	dir := t.TempDir()
	j := mustCreate(t, dir, "lab", 5, Options{})
	appendAll(t, j, "a", "b", "poison", "after")
	j.Close()

	if err := TruncatePast(dir, "lab", 2, Options{}); err != nil {
		t.Fatal(err)
	}
	r, lines := recoverLines(t, dir, "lab", Options{})
	if fmt.Sprint(lines) != fmt.Sprint([]string{"a", "b"}) {
		t.Fatalf("after TruncatePast(2) recovered %v, want [a b]", lines)
	}
	if idx, err := r.Append("fresh"); err != nil || idx != 2 {
		t.Fatalf("append after truncate = (%d, %v), want (2, nil)", idx, err)
	}
	r.Close()
}

// TestMarks: periodic marks are written and do not disturb recovery.
func TestMarks(t *testing.T) {
	dir := t.TempDir()
	j := mustCreate(t, dir, "lab", 1, Options{MarkEvery: 2})
	appendAll(t, j, "a", "b", "c", "d", "e")
	j.Close()

	data, err := os.ReadFile(filepath.Join(tenantDir(dir, "lab"), segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), `"t":"mark"`); n != 2 {
		t.Fatalf("got %d marks for 5 appends at MarkEvery=2, want 2", n)
	}
	r, lines := recoverLines(t, dir, "lab", Options{})
	r.Close()
	if fmt.Sprint(lines) != fmt.Sprint([]string{"a", "b", "c", "d", "e"}) {
		t.Fatalf("marks disturbed recovery: %v", lines)
	}
}

// TestListAndDrop: tenant names with path-hostile characters survive
// the round trip, and Drop removes exactly one tenant.
func TestListAndDrop(t *testing.T) {
	dir := t.TempDir()
	names := []string{"lab/a", "..", "plain", "sp ace"}
	for i, name := range names {
		j := mustCreate(t, dir, name, uint64(i+1), Options{})
		appendAll(t, j, "x")
		j.Close()
	}
	got, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"..", "lab/a", "plain", "sp ace"}) {
		t.Fatalf("List = %v", got)
	}
	if err := Drop(dir, "lab/a"); err != nil {
		t.Fatal(err)
	}
	got, err = List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if containsStr(got, "lab/a") || len(got) != 3 {
		t.Fatalf("after Drop List = %v", got)
	}
	// A dropped tenant has no journal.
	if _, _, err := Recover(dir, "lab/a", Options{}); err == nil || !strings.Contains(err.Error(), "no journal") {
		t.Fatalf("Recover after Drop = %v, want ErrNoJournal", err)
	}
}

// TestListMissingDir: a never-created journal dir lists empty.
func TestListMissingDir(t *testing.T) {
	got, err := List(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(got) != 0 {
		t.Fatalf("List(missing) = (%v, %v), want ([], nil)", got, err)
	}
}
