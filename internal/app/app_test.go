package app_test

import (
	"testing"
	"time"

	"liteview/internal/app"
	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

func collectionBed(t *testing.T, n int, spacing float64, seed uint64) (*testbed.Testbed, *app.Sink, []*app.Sampler) {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(n, spacing, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	sink, samplers, err := app.DeployCollection(tb.Nodes, func(id phys.NodeID) *routing.Router {
		r, _ := tb.Router(routing.GeographicPort, id)
		return r
	}, 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return tb, sink, samplers
}

func TestCollectionDelivers(t *testing.T) {
	tb, sink, samplers := collectionBed(t, 4, 20, 1)
	tb.Run(30 * time.Second)
	st := sink.Stats()
	if st.Received < 50 {
		t.Fatalf("sink absorbed only %d readings", st.Received)
	}
	// Every sampler contributed.
	for id := phys.NodeID(2); id <= 4; id++ {
		if st.PerOrigin[id] == 0 {
			t.Fatalf("no readings from node %d: %v", id, st.PerOrigin)
		}
	}
	// Multi-hop latency is positive and sane.
	if st.MeanLatency() <= 0 || st.MeanLatency() > 500*time.Millisecond {
		t.Fatalf("mean latency = %v", st.MeanLatency())
	}
	for _, s := range samplers {
		if s.Stats().Generated == 0 {
			t.Fatal("idle sampler")
		}
	}
}

func TestSamplerLifecycle(t *testing.T) {
	tb, _, samplers := collectionBed(t, 3, 15, 2)
	s := samplers[0]
	if !s.Running() {
		t.Fatal("not running after deploy")
	}
	if err := s.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	tb.Run(5 * time.Second)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	gen := s.Stats().Generated
	tb.Run(10 * time.Second)
	if s.Stats().Generated != gen {
		t.Fatal("sampler kept sampling after Stop")
	}
	if err := s.Stop(); err == nil {
		t.Fatal("double stop accepted")
	}
	// Restart works.
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	if s.Stats().Generated == gen {
		t.Fatal("no samples after restart")
	}
}

func TestOnReadingObserver(t *testing.T) {
	tb, sink, _ := collectionBed(t, 2, 10, 3)
	var seen []app.Reading
	sink.OnReading = func(r app.Reading) { seen = append(seen, r) }
	tb.Run(10 * time.Second)
	if len(seen) == 0 {
		t.Fatal("observer never fired")
	}
	if seen[0].Origin != 2 {
		t.Fatalf("reading origin = %d", seen[0].Origin)
	}
	if seen[0].Value > 1023 {
		t.Fatalf("ADC value out of range: %d", seen[0].Value)
	}
}

// TestApplicationIndependence is the paper's headline property made
// executable: the application keeps collecting while LiteView commands
// run, and LiteView works without knowing the application exists.
func TestApplicationIndependence(t *testing.T) {
	opt := testbed.DefaultOptions(4)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(4, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	// The app deploys FIRST; LiteView arrives later, as in a real
	// deployment being debugged.
	tb.WarmUp(10 * time.Second)
	sink, _, err := app.DeployCollection(tb.Nodes, func(id phys.NodeID) *routing.Router {
		r, _ := tb.Router(routing.GeographicPort, id)
		return r
	}, 1, 800*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		t.Fatal(err)
	}
	before := sink.Stats().Received
	// A full management session right on top of the running app.
	if _, err := ws.Ping(1, core.PingOptions{Dst: 4, Rounds: 2, Length: 16, RouterPort: routing.GeographicPort}); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Traceroute(1, core.TrOptions{Dst: 4, Length: 32, RouterPort: routing.GeographicPort}); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.NeighborList(2, true); err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	after := sink.Stats().Received
	if after <= before {
		t.Fatalf("application stalled during management: %d → %d readings", before, after)
	}
}

func TestCollectionOverTreeProtocol(t *testing.T) {
	// Protocol independence cuts both ways: the app also runs over the
	// collection tree.
	opt := testbed.DefaultOptions(5)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(4, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachTree(1, routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(60 * time.Second) // let the gradient converge
	sink, _, err := app.DeployCollection(tb.Nodes, func(id phys.NodeID) *routing.Router {
		r, _ := tb.Router(routing.TreePort, id)
		return r
	}, 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(30 * time.Second)
	if sink.Stats().Received < 30 {
		t.Fatalf("tree collection absorbed only %d", sink.Stats().Received)
	}
}

func TestSinkClose(t *testing.T) {
	tb, sink, _ := collectionBed(t, 2, 10, 6)
	tb.Run(5 * time.Second)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got := sink.Stats().Received
	tb.Run(10 * time.Second)
	if sink.Stats().Received != got {
		t.Fatal("closed sink kept absorbing")
	}
	if err := sink.Close(); err != nil {
		t.Fatal("second close should be a no-op error-free exit")
	}
}

func TestDeployValidation(t *testing.T) {
	opt := testbed.DefaultOptions(7)
	tb, err := testbed.Line(2, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := app.DeployCollection(tb.Nodes, func(phys.NodeID) *routing.Router { return nil }, 1, time.Second); err == nil {
		t.Fatal("nil routers accepted")
	}
	tb2, _ := testbed.Line(2, 10, testbed.DefaultOptions(8))
	tb2.AttachGeographic(routing.DefaultConfig())
	if _, _, err := app.DeployCollection(tb2.Nodes, func(id phys.NodeID) *routing.Router {
		r, _ := tb2.Router(routing.GeographicPort, id)
		return r
	}, 99, time.Second); err == nil {
		t.Fatal("phantom sink accepted")
	}
}

func TestCollectionUnderLPL(t *testing.T) {
	// The application also survives a duty-cycled deployment: samples
	// just ride LPL's repeat-until-ack unicast per hop.
	opt := testbed.DefaultOptions(9)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	opt.LPL = true
	opt.BeaconPeriod = 10 * time.Second
	tb, err := testbed.Line(3, 15, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(60 * time.Second)
	sink, _, err := app.DeployCollection(tb.Nodes, func(id phys.NodeID) *routing.Router {
		r, _ := tb.Router(routing.GeographicPort, id)
		return r
	}, 1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(60 * time.Second)
	st := sink.Stats()
	if st.Received < 20 {
		t.Fatalf("LPL collection absorbed only %d", st.Received)
	}
	// Latency includes per-hop wake-ups: noticeably above always-on.
	if st.MeanLatency() < 5*time.Millisecond {
		t.Fatalf("LPL latency suspiciously low: %v", st.MeanLatency())
	}
}
