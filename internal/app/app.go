// Package app provides a deployable sensing application — the kind of
// workload LiteView manages but must not depend on. The paper's
// motivation is the EnviroMic acoustic-storage deployment, whose
// communication behaviour (periodic samples converging on collection
// points) exposed exactly the path problems LiteView diagnoses.
//
// A Sampler process on each node periodically sends a reading toward a
// sink over whichever routing protocol the deployment runs; the Sink
// process absorbs readings and keeps delivery statistics. Both are
// ordinary LiteOS processes on ordinary stack ports: LiteView neither
// knows nor cares that they exist, and they keep running while the
// operator pings and tracerouts around them — the application-
// independence property, made testable.
package app

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"liteview/internal/liteos"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

// DataPort is the application's stack port.
const DataPort byte = 50

// SamplerBinary is the sampler's flash/RAM footprint (comparable to the
// paper's command binaries).
var SamplerBinary = liteos.Binary{Name: "sampler", Flash: 1900, RAM: 180}

// SinkBinary is the sink's footprint.
var SinkBinary = liteos.Binary{Name: "sink", Flash: 1500, RAM: 220}

// Reading is one decoded sample.
type Reading struct {
	// Origin is the sampling node.
	Origin phys.NodeID
	// Seq is the per-node sample counter.
	Seq uint32
	// Value is the synthetic sensor value.
	Value uint16
	// SentAt is the origination time (sender clock).
	SentAt sim.Time
}

// reading wire: seq(4) value(2) sentAtMs(4).
const readingLen = 10

func encodeReading(r Reading) []byte {
	buf := make([]byte, readingLen)
	binary.BigEndian.PutUint32(buf[0:4], r.Seq)
	binary.BigEndian.PutUint16(buf[4:6], r.Value)
	binary.BigEndian.PutUint32(buf[6:10], uint32(r.SentAt/time.Millisecond))
	return buf
}

func decodeReading(origin phys.NodeID, data []byte) (Reading, error) {
	if len(data) != readingLen {
		return Reading{}, errors.New("app: malformed reading")
	}
	return Reading{
		Origin: origin,
		Seq:    binary.BigEndian.Uint32(data[0:4]),
		Value:  binary.BigEndian.Uint16(data[4:6]),
		SentAt: sim.Time(binary.BigEndian.Uint32(data[6:10])) * time.Millisecond,
	}, nil
}

// SamplerStats counts a sampler's activity.
type SamplerStats struct {
	Generated uint64
	SendFail  uint64
}

// Sampler is the sensing process on one node.
type Sampler struct {
	eng    *sim.Engine
	os     *liteos.Node
	router *routing.Router
	sink   phys.NodeID
	period sim.Time
	rng    *sim.Rand
	proc   *liteos.Process
	seq    uint32
	gen    uint64 // invalidates pending ticks after Stop
	stats  SamplerStats
}

// NewSampler installs the sampler binary on the node and prepares a
// process that samples every period and ships readings to sink via
// router. Call Start to begin.
func NewSampler(os *liteos.Node, router *routing.Router, sink phys.NodeID, period sim.Time) (*Sampler, error) {
	if router == nil {
		return nil, errors.New("app: sampler needs a routing protocol")
	}
	if period <= 0 {
		period = time.Second
	}
	if err := os.InstallBinary(SamplerBinary); err != nil {
		return nil, err
	}
	return &Sampler{
		eng:    os.Engine(),
		os:     os,
		router: router,
		sink:   sink,
		period: period,
		rng:    os.Engine().Rand().Fork(fmt.Sprintf("sampler-%d", os.ID())),
	}, nil
}

// Start launches the sampler process.
func (s *Sampler) Start() error {
	if s.proc != nil {
		return errors.New("app: sampler already running")
	}
	s.os.SysSetParamBuffer(fmt.Sprintf("%d period=%d", s.sink, s.period/time.Millisecond))
	proc, err := s.os.StartProcess(SamplerBinary.Name)
	if err != nil {
		return err
	}
	s.proc = proc
	s.gen++
	gen := s.gen
	s.eng.After(s.rng.Jitter(s.period), func() { s.tick(gen) })
	return nil
}

// Stop exits the sampler process.
func (s *Sampler) Stop() error {
	if s.proc == nil {
		return errors.New("app: sampler not running")
	}
	err := s.proc.Exit()
	s.proc = nil
	s.gen++
	return err
}

// Running reports whether the process is live.
func (s *Sampler) Running() bool { return s.proc != nil }

// Stats returns a snapshot of the sampler counters.
func (s *Sampler) Stats() SamplerStats { return s.stats }

func (s *Sampler) tick(gen uint64) {
	if s.proc == nil || gen != s.gen {
		return
	}
	s.seq++
	r := Reading{
		Origin: s.os.ID(),
		Seq:    s.seq,
		Value:  uint16(s.rng.Intn(1024)), // a 10-bit ADC reading
		SentAt: s.eng.Now(),
	}
	s.stats.Generated++
	if s.os.ID() == s.sink {
		// Local sensing on the sink itself.
		if err := s.os.Stack().SendLocal(&stack.Packet{Port: DataPort, Origin: s.os.ID(), Dst: s.sink, Data: encodeReading(r)}); err != nil {
			s.stats.SendFail++
		}
	} else if err := s.router.SendTo(s.sink, DataPort, encodeReading(r), false, false); err != nil {
		s.stats.SendFail++
	}
	s.eng.After(s.period+s.rng.Jitter(s.period/8), func() { s.tick(gen) })
}

// SinkStats summarises what a sink absorbed.
type SinkStats struct {
	Received  uint64
	Malformed uint64
	// PerOrigin counts readings by sampling node.
	PerOrigin map[phys.NodeID]uint64
	// LatencySum accumulates end-to-end latency for Received readings
	// (sender and sink share the simulation clock, so this is exact —
	// a luxury the paper's motes lacked).
	LatencySum sim.Time
}

// MeanLatency returns the average end-to-end delivery latency.
func (s *SinkStats) MeanLatency() sim.Time {
	if s.Received == 0 {
		return 0
	}
	return s.LatencySum / sim.Time(s.Received)
}

// Sink is the collection process on one node.
type Sink struct {
	eng   *sim.Engine
	os    *liteos.Node
	proc  *liteos.Process
	stats SinkStats
	// OnReading, when set, observes every absorbed reading.
	OnReading func(Reading)
}

// NewSink installs and starts the sink process, subscribing DataPort.
func NewSink(os *liteos.Node) (*Sink, error) {
	if err := os.InstallBinary(SinkBinary); err != nil {
		return nil, err
	}
	os.SysSetParamBuffer("")
	proc, err := os.StartProcess(SinkBinary.Name)
	if err != nil {
		return nil, err
	}
	k := &Sink{eng: os.Engine(), os: os, proc: proc}
	k.stats.PerOrigin = make(map[phys.NodeID]uint64)
	if err := os.Stack().Subscribe(DataPort, k.onPacket); err != nil {
		_ = proc.Exit()
		return nil, err
	}
	return k, nil
}

// Stats returns a snapshot of what arrived.
func (k *Sink) Stats() SinkStats {
	out := k.stats
	out.PerOrigin = make(map[phys.NodeID]uint64, len(k.stats.PerOrigin))
	for id, n := range k.stats.PerOrigin {
		out.PerOrigin[id] = n
	}
	return out
}

// Close exits the sink process and frees its port.
func (k *Sink) Close() error {
	k.os.Stack().Unsubscribe(DataPort)
	if k.proc != nil {
		err := k.proc.Exit()
		k.proc = nil
		return err
	}
	return nil
}

func (k *Sink) onPacket(p *stack.Packet, _ phys.NodeID, _ medium.RxInfo) {
	r, err := decodeReading(p.Origin, p.Data)
	if err != nil {
		k.stats.Malformed++
		return
	}
	k.stats.Received++
	k.stats.PerOrigin[r.Origin]++
	if lat := k.eng.Now() - r.SentAt; lat > 0 {
		k.stats.LatencySum += lat
	}
	if k.OnReading != nil {
		k.OnReading(r)
	}
}

// DeployCollection wires a whole testbed-style deployment: a sink at
// sinkID and a sampler on every other node, all using the router
// resolved per node. Returns the sink and the samplers (started).
func DeployCollection(nodes []*liteos.Node, routers func(phys.NodeID) *routing.Router, sinkID phys.NodeID, period sim.Time) (*Sink, []*Sampler, error) {
	var sink *Sink
	var samplers []*Sampler
	for _, n := range nodes {
		if n.ID() == sinkID {
			k, err := NewSink(n)
			if err != nil {
				return nil, nil, err
			}
			sink = k
			continue
		}
		r := routers(n.ID())
		if r == nil {
			return nil, nil, fmt.Errorf("app: no router for node %d", n.ID())
		}
		s, err := NewSampler(n, r, sinkID, period)
		if err != nil {
			return nil, nil, err
		}
		if err := s.Start(); err != nil {
			return nil, nil, err
		}
		samplers = append(samplers, s)
	}
	if sink == nil {
		return nil, nil, fmt.Errorf("app: sink node %d not in deployment", sinkID)
	}
	return sink, samplers, nil
}
