// Package radio models the Chipcon CC2420, the 802.15.4 transceiver on
// the MicaZ motes the paper targets. It captures exactly the register
// semantics LiteView surfaces to users:
//
//   - programmable output power, PA_LEVEL 3..31 mapping to −25..0 dBm
//     (the paper's Figure 6 uses levels 10 and 25);
//   - 16 channels, numbered 11..26 per 802.15.4 (the sample ping output
//     shows "Channel = 17");
//   - RSSI: a register value with a linear relation to received power,
//     RSSI = P(dBm) − RSSI_OFFSET with RSSI_OFFSET = −45 dBm, so a
//     register reading of −20 means ≈ −65 dBm, matching the paper's
//     example;
//   - LQI: a correlation-derived link quality in 50..110 computed over
//     the first 8 symbols after the SFD, where ≈110 is the best quality
//     and 50 the worst.
package radio

import (
	"fmt"

	"liteview/internal/sim"
)

// State is the transceiver state.
type State int

const (
	// Off means the oscillator is down; nothing is heard or sent.
	Off State = iota
	// RX means the radio is listening.
	RX
	// TX means the radio is transmitting.
	TX
)

func (s State) String() string {
	switch s {
	case Off:
		return "off"
	case RX:
		return "rx"
	case TX:
		return "tx"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Hardware timing constants of the CC2420 / 802.15.4 2.4 GHz PHY.
const (
	// BitRate is the 802.15.4 2.4 GHz data rate in bits per second.
	BitRate = 250_000
	// ByteTime is the airtime of one byte at 250 kbps.
	ByteTime = sim.Time(32_000) // 32 µs
	// SymbolTime is one O-QPSK symbol period (16 µs).
	SymbolTime = sim.Time(16_000)
	// TurnaroundTime is the RX/TX turnaround (12 symbols, 192 µs).
	TurnaroundTime = 12 * SymbolTime
	// PHYOverheadBytes is preamble (4) + SFD (1) + length field (1).
	PHYOverheadBytes = 6
)

// Power level limits (CC2420 PA_LEVEL register).
const (
	MinPowerLevel = 3
	MaxPowerLevel = 31
)

// Channel limits (802.15.4 2.4 GHz band).
const (
	MinChannel = 11
	MaxChannel = 26
	// NumChannels is the paper's "16 channels".
	NumChannels = MaxChannel - MinChannel + 1
)

// RSSIOffset is the CC2420 RSSI register offset in dBm: the register
// reads P(dBm) − RSSIOffset.
const RSSIOffset = -45.0

// CCAThresholdDBm is the default clear-channel-assessment threshold.
const CCAThresholdDBm = -77.0

// SensitivityDBm is the weakest signal the receiver can detect at all
// (synchronize on the preamble). The nominal −94 dBm "sensitivity" of
// the datasheet is the ~1% PER point, which the SNR→PER curve already
// produces; the hard detection floor sits a few dB below it.
const SensitivityDBm = -100.0

// paTable holds the documented PA_LEVEL→dBm calibration points from the
// CC2420 datasheet. Intermediate levels are linearly interpolated.
var paTable = []struct {
	level int
	dBm   float64
}{
	{3, -25}, {7, -15}, {11, -10}, {15, -7},
	{19, -5}, {23, -3}, {27, -1}, {31, 0},
}

// txCurrentTable holds the CC2420 datasheet's transmit current draw in
// mA at the documented PA_LEVEL calibration points.
var txCurrentTable = []struct {
	level int
	mA    float64
}{
	{3, 8.5}, {7, 9.9}, {11, 11.2}, {15, 12.5},
	{19, 13.9}, {23, 15.2}, {27, 16.5}, {31, 17.4},
}

// TXCurrentMA returns the transmit current in mA at a PA_LEVEL,
// interpolating between the datasheet calibration points.
func TXCurrentMA(level int) float64 {
	if level <= txCurrentTable[0].level {
		return txCurrentTable[0].mA
	}
	if level >= txCurrentTable[len(txCurrentTable)-1].level {
		return txCurrentTable[len(txCurrentTable)-1].mA
	}
	for i := 1; i < len(txCurrentTable); i++ {
		if level <= txCurrentTable[i].level {
			lo, hi := txCurrentTable[i-1], txCurrentTable[i]
			frac := float64(level-lo.level) / float64(hi.level-lo.level)
			return lo.mA + frac*(hi.mA-lo.mA)
		}
	}
	return txCurrentTable[len(txCurrentTable)-1].mA
}

// RXCurrentMA is the CC2420 receive/listen current (the radio draws it
// whenever it listens, whether or not a frame is arriving — idle
// listening is the dominant energy cost of an always-on mote).
const RXCurrentMA = 18.8

// OffCurrentMA is the radio's power-down current.
const OffCurrentMA = 0.001

// SupplyVolts is the mote's nominal battery voltage.
const SupplyVolts = 3.0

// PowerDBm converts a PA_LEVEL register value to transmit power in dBm.
// Levels outside [MinPowerLevel, MaxPowerLevel] are clamped.
func PowerDBm(level int) float64 {
	if level <= paTable[0].level {
		return paTable[0].dBm
	}
	if level >= paTable[len(paTable)-1].level {
		return paTable[len(paTable)-1].dBm
	}
	for i := 1; i < len(paTable); i++ {
		if level <= paTable[i].level {
			lo, hi := paTable[i-1], paTable[i]
			frac := float64(level-lo.level) / float64(hi.level-lo.level)
			return lo.dBm + frac*(hi.dBm-lo.dBm)
		}
	}
	return 0
}

// RSSIRegister converts a received power in dBm to the CC2420 RSSI
// register value (clamped to the register's signed-byte range).
func RSSIRegister(rxDBm float64) int {
	v := int(rxDBm - RSSIOffset)
	if v < -128 {
		v = -128
	}
	if v > 127 {
		v = 127
	}
	return v
}

// RegisterToDBm is the inverse of RSSIRegister.
func RegisterToDBm(register int) float64 {
	return float64(register) + RSSIOffset
}

// LQI maps an SNR in dB to the CC2420 correlation value in [50, 110].
// The mapping saturates: beyond ~12 dB SNR every packet correlates
// perfectly (≈110) — on real CC2420s the correlation tops out once the
// chip decodes cleanly, which happens a few dB above the PRR cliff —
// and below 0 dB the chip reports the floor.
func LQI(snrDB float64) int {
	const floor, ceil, satSNR = 50.0, 110.0, 12.0
	if snrDB <= 0 {
		return int(floor)
	}
	if snrDB >= satSNR {
		return int(ceil)
	}
	return int(floor + (ceil-floor)*snrDB/satSNR)
}

// FrameAirtime returns the on-air duration of a MAC frame of the given
// length in bytes (PHY preamble/SFD/length overhead included).
func FrameAirtime(macFrameBytes int) sim.Time {
	return sim.Time(PHYOverheadBytes+macFrameBytes) * ByteTime
}

// Radio is the per-node transceiver configuration and state. LiteView's
// radio-configuration commands read and write exactly these knobs.
type Radio struct {
	state      State
	powerLevel int
	channel    int
	notify     func(old, new State)
}

// SetNotify installs a state-transition observer (the energy meter).
// Only one observer is supported; installing nil removes it.
func (r *Radio) SetNotify(fn func(old, new State)) { r.notify = fn }

// New returns a radio in RX at full power on the given channel.
func New(channel int) (*Radio, error) {
	r := &Radio{state: RX, powerLevel: MaxPowerLevel}
	if err := r.SetChannel(channel); err != nil {
		return nil, err
	}
	return r, nil
}

// State returns the transceiver state.
func (r *Radio) State() State { return r.state }

// SetState moves the transceiver to state s.
func (r *Radio) SetState(s State) {
	if s == r.state {
		return
	}
	old := r.state
	r.state = s
	if r.notify != nil {
		r.notify(old, s)
	}
}

// PowerLevel returns the PA_LEVEL register value.
func (r *Radio) PowerLevel() int { return r.powerLevel }

// SetPowerLevel programs the PA_LEVEL register. Values outside the
// CC2420's 3..31 range are rejected, mirroring the hardware.
func (r *Radio) SetPowerLevel(level int) error {
	if level < MinPowerLevel || level > MaxPowerLevel {
		return fmt.Errorf("radio: power level %d out of range [%d,%d]", level, MinPowerLevel, MaxPowerLevel)
	}
	r.powerLevel = level
	return nil
}

// TxPowerDBm returns the currently programmed output power in dBm.
func (r *Radio) TxPowerDBm() float64 { return PowerDBm(r.powerLevel) }

// Channel returns the current 802.15.4 channel number.
func (r *Radio) Channel() int { return r.channel }

// SetChannel tunes to an 802.15.4 channel (11..26).
func (r *Radio) SetChannel(ch int) error {
	if ch < MinChannel || ch > MaxChannel {
		return fmt.Errorf("radio: channel %d out of range [%d,%d]", ch, MinChannel, MaxChannel)
	}
	r.channel = ch
	return nil
}

// FrequencyMHz returns the center frequency of the tuned channel.
func (r *Radio) FrequencyMHz() int {
	return 2405 + 5*(r.channel-MinChannel)
}
