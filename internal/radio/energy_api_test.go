package radio

import "testing"

func TestTXCurrentCalibrationPoints(t *testing.T) {
	cases := map[int]float64{3: 8.5, 7: 9.9, 11: 11.2, 15: 12.5, 19: 13.9, 23: 15.2, 27: 16.5, 31: 17.4}
	for level, want := range cases {
		if got := TXCurrentMA(level); got != want {
			t.Errorf("TXCurrentMA(%d) = %f, want %f", level, got, want)
		}
	}
}

func TestTXCurrentMonotonicAndClamped(t *testing.T) {
	prev := TXCurrentMA(MinPowerLevel)
	for level := MinPowerLevel + 1; level <= MaxPowerLevel; level++ {
		cur := TXCurrentMA(level)
		if cur < prev {
			t.Fatalf("TX current not monotone at level %d", level)
		}
		prev = cur
	}
	if TXCurrentMA(0) != 8.5 || TXCurrentMA(99) != 17.4 {
		t.Fatal("clamping broken")
	}
}

func TestStateNotify(t *testing.T) {
	r, _ := New(17)
	var transitions []State
	r.SetNotify(func(old, new State) { transitions = append(transitions, old, new) })
	r.SetState(TX)
	r.SetState(TX) // no-op transition must not notify
	r.SetState(RX)
	if len(transitions) != 4 {
		t.Fatalf("transitions = %v", transitions)
	}
	if transitions[0] != RX || transitions[1] != TX || transitions[2] != TX || transitions[3] != RX {
		t.Fatalf("transitions = %v", transitions)
	}
	r.SetNotify(nil)
	r.SetState(Off) // must not panic with observer removed
	if r.State() != Off {
		t.Fatal("state not applied")
	}
}

func TestRXAndOffCurrents(t *testing.T) {
	if RXCurrentMA <= TXCurrentMA(31) {
		t.Fatal("CC2420 listens hungrier than it transmits at full power")
	}
	if OffCurrentMA >= 0.01 {
		t.Fatal("power-down current too large")
	}
	if SupplyVolts != 3.0 {
		t.Fatal("supply voltage changed")
	}
}
