package radio

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPowerDBmCalibrationPoints(t *testing.T) {
	cases := map[int]float64{
		3: -25, 7: -15, 11: -10, 15: -7, 19: -5, 23: -3, 27: -1, 31: 0,
	}
	for level, want := range cases {
		if got := PowerDBm(level); got != want {
			t.Errorf("PowerDBm(%d) = %f, want %f", level, got, want)
		}
	}
}

func TestPowerDBmMonotonic(t *testing.T) {
	prev := PowerDBm(MinPowerLevel)
	for level := MinPowerLevel + 1; level <= MaxPowerLevel; level++ {
		cur := PowerDBm(level)
		if cur < prev {
			t.Fatalf("PowerDBm not monotone at level %d: %f < %f", level, cur, prev)
		}
		prev = cur
	}
}

func TestPowerDBmClamps(t *testing.T) {
	if PowerDBm(0) != -25 || PowerDBm(100) != 0 {
		t.Fatal("out-of-range levels should clamp to endpoints")
	}
}

func TestPaperPowerLevels(t *testing.T) {
	// Figure 6 uses levels 10 and 25; level 25 must be meaningfully
	// stronger than level 10.
	p10, p25 := PowerDBm(10), PowerDBm(25)
	if p25-p10 < 5 {
		t.Fatalf("PA 25 (%f dBm) vs PA 10 (%f dBm): delta too small", p25, p10)
	}
}

func TestRSSIRegisterPaperExample(t *testing.T) {
	// Paper: "a RSSI reading of -20 indicates ... approximately -65 dBm".
	if got := RSSIRegister(-65); got != -20 {
		t.Fatalf("RSSIRegister(-65 dBm) = %d, want -20", got)
	}
	if got := RegisterToDBm(-20); got != -65 {
		t.Fatalf("RegisterToDBm(-20) = %f, want -65", got)
	}
}

func TestRSSIRoundTrip(t *testing.T) {
	f := func(p int8) bool {
		dBm := float64(p) // -128..127 dBm, covers the whole register range
		reg := RSSIRegister(dBm)
		if dBm-RSSIOffset < -128 || dBm-RSSIOffset > 127 {
			return true // clamped; skip round-trip
		}
		return RegisterToDBm(reg) == dBm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLQIRange(t *testing.T) {
	f := func(s int8) bool {
		l := LQI(float64(s))
		return l >= 50 && l <= 110
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLQIMonotonicAndSaturating(t *testing.T) {
	prev := 0
	for snr := -10.0; snr <= 40; snr++ {
		l := LQI(snr)
		if l < prev {
			t.Fatalf("LQI decreased at snr=%f", snr)
		}
		prev = l
	}
	if LQI(30) != 110 {
		t.Fatalf("LQI should saturate at 110, got %d", LQI(30))
	}
	if LQI(-5) != 50 {
		t.Fatalf("LQI floor should be 50, got %d", LQI(-5))
	}
}

func TestFrameAirtime(t *testing.T) {
	// A 32-byte frame: (6 + 32) * 32 µs = 1216 µs.
	if got := FrameAirtime(32); got != 1216*time.Microsecond {
		t.Fatalf("FrameAirtime(32) = %v, want 1.216ms", got)
	}
	if FrameAirtime(0) != 6*32*time.Microsecond {
		t.Fatal("zero-byte frame should still pay PHY overhead")
	}
}

func TestRadioDefaults(t *testing.T) {
	r, err := New(17)
	if err != nil {
		t.Fatal(err)
	}
	if r.State() != RX {
		t.Fatalf("new radio state = %v, want rx", r.State())
	}
	if r.PowerLevel() != MaxPowerLevel {
		t.Fatalf("new radio power = %d, want %d", r.PowerLevel(), MaxPowerLevel)
	}
	if r.Channel() != 17 {
		t.Fatalf("channel = %d, want 17", r.Channel())
	}
	if r.TxPowerDBm() != 0 {
		t.Fatalf("full power should be 0 dBm, got %f", r.TxPowerDBm())
	}
}

func TestSetPowerLevelValidation(t *testing.T) {
	r, _ := New(11)
	if err := r.SetPowerLevel(2); err == nil {
		t.Fatal("level 2 accepted")
	}
	if err := r.SetPowerLevel(32); err == nil {
		t.Fatal("level 32 accepted")
	}
	if err := r.SetPowerLevel(10); err != nil {
		t.Fatal(err)
	}
	if r.PowerLevel() != 10 {
		t.Fatal("level not stored")
	}
}

func TestSetChannelValidation(t *testing.T) {
	r, _ := New(11)
	if err := r.SetChannel(10); err == nil {
		t.Fatal("channel 10 accepted")
	}
	if err := r.SetChannel(27); err == nil {
		t.Fatal("channel 27 accepted")
	}
	if err := r.SetChannel(26); err != nil {
		t.Fatal(err)
	}
	if _, err := New(5); err == nil {
		t.Fatal("New with bad channel accepted")
	}
}

func TestFrequencyMHz(t *testing.T) {
	r, _ := New(11)
	if r.FrequencyMHz() != 2405 {
		t.Fatalf("channel 11 frequency = %d, want 2405", r.FrequencyMHz())
	}
	r.SetChannel(26)
	if r.FrequencyMHz() != 2480 {
		t.Fatalf("channel 26 frequency = %d, want 2480", r.FrequencyMHz())
	}
}

func TestNumChannels(t *testing.T) {
	if NumChannels != 16 {
		t.Fatalf("NumChannels = %d, want 16 (paper)", NumChannels)
	}
}

func TestStateString(t *testing.T) {
	if Off.String() != "off" || RX.String() != "rx" || TX.String() != "tx" {
		t.Fatal("state strings wrong")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state should still format")
	}
}
