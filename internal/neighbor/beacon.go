package neighbor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

// BeaconPort is the well-known port the neighbor service subscribes to.
const BeaconPort byte = 2

// DefaultBeaconPeriod is the default interval between beacons. The
// LiteView "update" command changes it at runtime.
const DefaultBeaconPeriod = 2 * time.Second

// ExpiryFactor times the beacon period is how long a silent neighbor
// stays in the kernel table before the housekeeping tick drops it.
// Blacklisted entries are pinned (the user set them deliberately).
const ExpiryFactor = 8

// Beacon payload layout: seq (2 bytes, big endian) + name (rest).
func encodeBeacon(seq uint16, name string) []byte {
	buf := make([]byte, 2+len(name))
	binary.BigEndian.PutUint16(buf[:2], seq)
	copy(buf[2:], name)
	return buf
}

func decodeBeacon(data []byte) (seq uint16, name string, err error) {
	if len(data) < 2 {
		return 0, "", errors.New("neighbor: beacon too short")
	}
	return binary.BigEndian.Uint16(data[:2]), string(data[2:]), nil
}

// Service runs the neighborhood protocol for one node: it broadcasts
// periodic beacons advertising the node's name and folds overheard
// traffic and received beacons into the kernel table.
type Service struct {
	eng    *sim.Engine
	st     *stack.Stack
	table  *Table
	name   string
	rng    *sim.Rand
	ticker *sim.Ticker
	seq    uint16
	sent   uint64
}

// NewService wires the neighbor service onto st. It subscribes
// BeaconPort and installs a sniffer; call Start to begin beaconing.
func NewService(eng *sim.Engine, st *stack.Stack, table *Table, name string) (*Service, error) {
	s := &Service{
		eng:   eng,
		st:    st,
		table: table,
		name:  name,
		rng:   eng.Rand().Fork(fmt.Sprintf("beacon-%d", st.NodeID())),
	}
	ticker, err := sim.NewTicker(eng, DefaultBeaconPeriod, s.tick)
	if err != nil {
		return nil, err
	}
	s.ticker = ticker
	if err := st.Subscribe(BeaconPort, s.onBeacon); err != nil {
		return nil, err
	}
	st.AddSniffer(func(src phys.NodeID, ftype mac.FrameType, info medium.RxInfo) {
		if ftype == mac.TypeBeacon {
			return // beacons carry names; handled in onBeacon with more context
		}
		table.Observe(src, info.LQI, info.RSSI, info.At)
	})
	return s, nil
}

// Table returns the kernel table this service maintains.
func (s *Service) Table() *Table { return s.table }

// Period returns the current beacon interval.
func (s *Service) Period() sim.Time { return s.ticker.Period() }

// SetPeriod changes the beacon interval (the LiteView "update" command).
// It takes effect from the next beacon.
func (s *Service) SetPeriod(d sim.Time) error {
	if err := s.ticker.SetPeriod(d); err != nil {
		return errors.New("neighbor: beacon period must be positive")
	}
	return nil
}

// BeaconsSent reports how many beacons this node has transmitted.
func (s *Service) BeaconsSent() uint64 { return s.sent }

// Running reports whether periodic beaconing is active.
func (s *Service) Running() bool { return s.ticker.Running() }

// Start begins periodic beaconing with a random initial phase so that
// co-started nodes do not beacon in lockstep.
func (s *Service) Start() {
	s.ticker.Start(s.rng.Jitter(s.ticker.Period()))
}

// Stop halts beaconing; the table keeps learning from overheard frames.
func (s *Service) Stop() { s.ticker.Stop() }

func (s *Service) tick() {
	// Housekeeping rides the beacon tick: age out neighbors not heard
	// for ExpiryFactor beacon periods.
	if cutoff := s.eng.Now() - ExpiryFactor*s.ticker.Period(); cutoff > 0 {
		s.table.Expire(cutoff)
	}
	s.seq++
	p := &stack.Packet{
		Port:   BeaconPort,
		Origin: s.st.NodeID(),
		Dst:    phys.Broadcast,
		TTL:    1,
		Data:   encodeBeacon(s.seq, s.name),
	}
	// Beacon loss to queue pressure is fine; the PRR estimator sees it
	// as a gap.
	if err := s.st.Send(p, phys.Broadcast, mac.TypeBeacon, nil); err == nil {
		s.sent++
	}
}

func (s *Service) onBeacon(p *stack.Packet, from phys.NodeID, info medium.RxInfo) {
	seq, name, err := decodeBeacon(p.Data)
	if err != nil {
		return
	}
	s.table.ObserveBeacon(from, name, seq, info.LQI, info.RSSI, info.At)
}
