package neighbor

import (
	"fmt"
	"testing"
	"time"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

type benv struct {
	eng *sim.Engine
	med *medium.Medium
}

func newBenv(seed uint64) *benv {
	eng := sim.NewEngine(seed)
	model := phys.DefaultModel(seed)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	return &benv{eng: eng, med: medium.New(eng, model)}
}

func (e *benv) node(t *testing.T, id phys.NodeID, x float64) (*stack.Stack, *Service) {
	t.Helper()
	rad, err := radio.New(17)
	if err != nil {
		t.Fatal(err)
	}
	var st *stack.Stack
	m, err := mac.New(e.eng, e.med, rad, id, phys.Position{X: x}, mac.DefaultConfig(),
		func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
	if err != nil {
		t.Fatal(err)
	}
	st = stack.New(e.eng, m)
	svc, err := NewService(e.eng, st, NewTable(0), fmt.Sprintf("192.168.0.%d", id))
	if err != nil {
		t.Fatal(err)
	}
	return st, svc
}

func TestBeaconDiscovery(t *testing.T) {
	e := newBenv(1)
	_, sa := e.node(t, 1, 0)
	_, sb := e.node(t, 2, 5)
	sa.Start()
	sb.Start()
	e.eng.RunUntil(10 * time.Second)
	ea, ok := sa.Table().Get(2)
	if !ok {
		t.Fatal("node 1 did not discover node 2")
	}
	if ea.Name != "192.168.0.2" {
		t.Fatalf("learned name = %q", ea.Name)
	}
	if ea.LQI < 100 {
		t.Fatalf("LQI = %f at 5m", ea.LQI)
	}
	if ea.PRR < 0.9 {
		t.Fatalf("PRR = %f on clean link", ea.PRR)
	}
	if _, ok := sb.Table().Get(1); !ok {
		t.Fatal("node 2 did not discover node 1")
	}
	if sa.BeaconsSent() < 3 {
		t.Fatalf("beacons sent = %d over 10 s at 2 s period", sa.BeaconsSent())
	}
}

func TestOutOfRangeNotDiscovered(t *testing.T) {
	e := newBenv(2)
	_, sa := e.node(t, 1, 0)
	_, sb := e.node(t, 2, 5000)
	sa.Start()
	sb.Start()
	e.eng.RunUntil(10 * time.Second)
	if _, ok := sa.Table().Get(2); ok {
		t.Fatal("discovered a node 5 km away")
	}
}

func TestSetPeriod(t *testing.T) {
	e := newBenv(3)
	_, sa := e.node(t, 1, 0)
	e.node(t, 2, 5)
	if err := sa.SetPeriod(0); err == nil {
		t.Fatal("zero period accepted")
	}
	if err := sa.SetPeriod(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sa.Start()
	e.eng.RunUntil(5 * time.Second)
	// ~50 beacons at 100 ms over 5 s (minus start jitter).
	if sa.BeaconsSent() < 30 {
		t.Fatalf("beacons sent = %d, want ≈ 49", sa.BeaconsSent())
	}
	if sa.Period() != 100*time.Millisecond {
		t.Fatalf("period = %v", sa.Period())
	}
}

func TestStopHaltsBeaconing(t *testing.T) {
	e := newBenv(4)
	_, sa := e.node(t, 1, 0)
	sa.Start()
	if !sa.Running() {
		t.Fatal("not running after Start")
	}
	e.eng.RunUntil(5 * time.Second)
	sent := sa.BeaconsSent()
	sa.Stop()
	if sa.Running() {
		t.Fatal("running after Stop")
	}
	e.eng.RunUntil(20 * time.Second)
	if sa.BeaconsSent() != sent {
		t.Fatal("beacons sent after Stop")
	}
	// Restart works.
	sa.Start()
	e.eng.RunUntil(30 * time.Second)
	if sa.BeaconsSent() <= sent {
		t.Fatal("no beacons after restart")
	}
}

func TestDoubleStartSingleStream(t *testing.T) {
	e := newBenv(5)
	_, sa := e.node(t, 1, 0)
	sa.SetPeriod(time.Second)
	sa.Start()
	sa.Start() // must not double the rate
	e.eng.RunUntil(10 * time.Second)
	if sa.BeaconsSent() > 11 {
		t.Fatalf("beacons sent = %d; double Start doubled the stream", sa.BeaconsSent())
	}
}

func TestTableLearnsFromDataTrafficToo(t *testing.T) {
	e := newBenv(6)
	sta, sa := e.node(t, 1, 0)
	_, sb := e.node(t, 2, 5)
	_ = sb
	// No beaconing at all: node 2's table must still learn node 1 from
	// a data frame (the sniffer path).
	p := &stack.Packet{Port: 50, Origin: 1, Dst: 2, Data: []byte("x")}
	if err := sta.Send(p, 2, mac.TypeData, nil); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	tb := sb.Table()
	if _, ok := tb.Get(1); !ok {
		t.Fatal("data traffic did not populate the neighbor table")
	}
	_ = sa
}

func TestStaleNeighborsExpire(t *testing.T) {
	e := newBenv(7)
	_, sa := e.node(t, 1, 0)
	_, sb := e.node(t, 2, 5)
	sa.Start()
	sb.Start()
	e.eng.RunUntil(10 * time.Second)
	if _, ok := sa.Table().Get(2); !ok {
		t.Fatal("discovery failed")
	}
	// Node 2 dies (stops beaconing and transmitting entirely).
	sb.Stop()
	e.eng.RunUntil(60 * time.Second)
	if _, ok := sa.Table().Get(2); ok {
		t.Fatal("silent neighbor never expired from the kernel table")
	}
}

func TestBlacklistedNeighborsSurviveExpiry(t *testing.T) {
	e := newBenv(8)
	_, sa := e.node(t, 1, 0)
	_, sb := e.node(t, 2, 5)
	sa.Start()
	sb.Start()
	e.eng.RunUntil(10 * time.Second)
	if err := sa.Table().Blacklist(2, true); err != nil {
		t.Fatal(err)
	}
	sb.Stop()
	e.eng.RunUntil(120 * time.Second)
	if _, ok := sa.Table().Get(2); !ok {
		t.Fatal("blacklisted pin expired")
	}
}

func TestStoppedServiceDoesNotExpire(t *testing.T) {
	// The F6 workflow freezes tables by stopping the service: no
	// housekeeping may run while stopped.
	e := newBenv(9)
	_, sa := e.node(t, 1, 0)
	_, sb := e.node(t, 2, 5)
	sa.Start()
	sb.Start()
	e.eng.RunUntil(10 * time.Second)
	sa.Stop()
	sb.Stop()
	e.eng.RunUntil(300 * time.Second)
	if _, ok := sa.Table().Get(2); !ok {
		t.Fatal("frozen table expired entries")
	}
}
