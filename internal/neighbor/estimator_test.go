package neighbor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"liteview/internal/phys"
)

// TestChurnFullBlacklistedTable covers the pathological churn case: every
// slot pinned by a blacklist. New neighbors must be rejected rather than
// evicting a pin, and the rejection must not corrupt the table.
func TestChurnFullBlacklistedTable(t *testing.T) {
	tab := NewTable(2)
	tab.Observe(1, 100, -10, time.Second)
	tab.Observe(2, 100, -10, 2*time.Second)
	for _, id := range []int{1, 2} {
		if err := tab.Blacklist(phys.NodeID(id), true); err != nil {
			t.Fatal(err)
		}
	}
	if e := tab.Observe(3, 100, -10, 3*time.Second); e != nil {
		t.Fatalf("insert into fully-pinned table succeeded: %+v", e)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d after rejected insert", tab.Len())
	}
	for _, id := range []int{1, 2} {
		if _, ok := tab.Get(phys.NodeID(id)); !ok {
			t.Fatalf("pinned entry %d lost", id)
		}
	}
	// Unpinning one slot makes room again; the stale unpinned entry goes.
	if err := tab.Blacklist(1, false); err != nil {
		t.Fatal(err)
	}
	if tab.Observe(3, 100, -10, 4*time.Second) == nil {
		t.Fatal("insert after unpin failed")
	}
	if _, ok := tab.Get(1); ok {
		t.Fatal("unpinned stalest entry not evicted")
	}
}

// TestExpireRacesTxAck checks that an acknowledged unicast counts as
// hearing the neighbor: the ack must refresh LastHeard so a subsequent
// expiry sweep keeps the link the estimator just proved alive.
func TestExpireRacesTxAck(t *testing.T) {
	tab := NewTable(4)
	tab.Observe(7, 100, -10, time.Second)
	tab.Observe(8, 100, -10, time.Second)
	// Node 7 is acked at t=5s; node 8 stays silent.
	tab.ObserveTxResult(7, true, 5*time.Second)
	if n := tab.Expire(3 * time.Second); n != 1 {
		t.Fatalf("Expire removed %d entries, want 1", n)
	}
	if _, ok := tab.Get(7); !ok {
		t.Fatal("acked neighbor expired despite fresh ack")
	}
	if _, ok := tab.Get(8); ok {
		t.Fatal("silent neighbor survived expiry")
	}
	// A failed unicast is not evidence of life: it must not refresh.
	tab.ObserveTxResult(7, false, 10*time.Second)
	if n := tab.Expire(8 * time.Second); n != 1 {
		t.Fatalf("Expire after failed tx removed %d entries, want 1", n)
	}
}

// TestDeliveryCurve drives the EWMA through scripted outcome runs and
// checks the penalty/recovery shape against an independently computed
// reference, including the minDelivery floor and the suspect threshold.
func TestDeliveryCurve(t *testing.T) {
	cases := []struct {
		name        string
		outcomes    []bool // true = acked
		wantSuspect bool
	}{
		{"all acked", []bool{true, true, true, true}, false},
		{"two failures stay trusted", []bool{false, false}, false},
		{"threshold marks suspect", []bool{false, false, false}, true},
		{"ack clears a streak", []bool{false, false, false, true}, false},
		{"long blackout floors", make([]bool, 40), true},
		{"recovery after blackout", append(make([]bool, 10), true, true, true, true, true), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := NewTable(4)
			tab.Observe(9, 100, -10, time.Second)
			want := 1.0
			for i, ok := range tc.outcomes {
				tab.ObserveTxResult(9, ok, time.Duration(i+2)*time.Second)
				target := 0.0
				if ok {
					target = 1
				}
				want += ewmaAlpha * (target - want)
				if !ok && want < minDelivery {
					want = minDelivery
				}
			}
			got, _ := tab.Get(9)
			if math.Abs(got.Delivery-want) > 1e-12 {
				t.Fatalf("Delivery = %g, want %g", got.Delivery, want)
			}
			if got.Suspect != tc.wantSuspect {
				t.Fatalf("Suspect = %v, want %v", got.Suspect, tc.wantSuspect)
			}
			if got.Delivery < minDelivery {
				t.Fatalf("Delivery %g below floor %g", got.Delivery, minDelivery)
			}
			if got.ETX() > 1/minDelivery+1e-9 {
				t.Fatalf("ETX %g exceeds the finite bound", got.ETX())
			}
		})
	}
}

// TestDeliverySeededChurn fuzzes the estimator with a seeded outcome
// stream and asserts the invariants that must survive arbitrary churn:
// the estimate stays in [minDelivery, 1], suspect tracks the streak
// counter, and the stats counters account for every outcome.
func TestDeliverySeededChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := NewTable(4)
	tab.Observe(3, 100, -10, time.Second)
	var acked, failed uint64
	streak := 0
	for i := 0; i < 500; i++ {
		ok := rng.Intn(3) > 0 // 2/3 delivery
		tab.ObserveTxResult(3, ok, time.Duration(i+2)*time.Second)
		if ok {
			acked++
			streak = 0
		} else {
			failed++
			streak++
		}
		e, _ := tab.Get(3)
		if e.Delivery < minDelivery || e.Delivery > 1 {
			t.Fatalf("step %d: Delivery %g out of range", i, e.Delivery)
		}
		if streak >= SuspectAfter && !e.Suspect {
			t.Fatalf("step %d: streak %d but not suspect", i, streak)
		}
		if streak == 0 && e.Suspect {
			t.Fatalf("step %d: acked but still suspect", i)
		}
	}
	st := tab.EstimatorStats()
	if st.TxAcked != acked || st.TxFailed != failed {
		t.Fatalf("stats = %+v, want %d acked / %d failed", st, acked, failed)
	}
	if st.SuspectMarks == 0 || st.SuspectClears == 0 {
		t.Fatalf("expected both marks and clears under churn: %+v", st)
	}
	tab.ResetEstimatorStats()
	if tab.EstimatorStats() != (EstimatorStats{}) {
		t.Fatal("ResetEstimatorStats left counters behind")
	}
}

// TestTxResultUnknownDestination checks that outcomes for evicted or
// never-seen destinations are counted and dropped, not used to fabricate
// entries without link metadata.
func TestTxResultUnknownDestination(t *testing.T) {
	tab := NewTable(4)
	if became := tab.ObserveTxResult(99, false, time.Second); became {
		t.Fatal("unknown destination became suspect")
	}
	if tab.Len() != 0 {
		t.Fatal("tx outcome fabricated an entry")
	}
	if st := tab.EstimatorStats(); st.TxUnknownDst != 1 || st.TxFailed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMarkSuspectDirect covers routing's direct path: marking before the
// estimator threshold, idempotence of the counters, and the sorted
// Suspects view the shell renders.
func TestMarkSuspectDirect(t *testing.T) {
	tab := NewTable(4)
	if err := tab.MarkSuspect(5, true); !errors.Is(err, ErrUnknownNeighbor) {
		t.Fatalf("err = %v, want ErrUnknownNeighbor", err)
	}
	tab.Observe(6, 100, -10, time.Second)
	tab.Observe(5, 100, -10, time.Second)
	for _, id := range []int{6, 5} {
		if err := tab.MarkSuspect(phys.NodeID(id), true); err != nil {
			t.Fatal(err)
		}
	}
	// Re-marking must not inflate the counter.
	if err := tab.MarkSuspect(5, true); err != nil {
		t.Fatal(err)
	}
	if st := tab.EstimatorStats(); st.SuspectMarks != 2 {
		t.Fatalf("SuspectMarks = %d, want 2", st.SuspectMarks)
	}
	sus := tab.Suspects()
	if len(sus) != 2 || sus[0].ID != 5 || sus[1].ID != 6 {
		t.Fatalf("Suspects = %+v, want IDs 5,6 in order", sus)
	}
	if err := tab.MarkSuspect(5, false); err != nil {
		t.Fatal(err)
	}
	if st := tab.EstimatorStats(); st.SuspectClears != 1 {
		t.Fatalf("SuspectClears = %d, want 1", st.SuspectClears)
	}
	if got, _ := tab.Get(5); got.Suspect {
		t.Fatal("clear did not stick")
	}
}
