// Package neighbor implements the kernel-owned neighbor table and the
// beacon exchange that populates it.
//
// The paper's design argument is that multiple communication protocols
// need neighborhood information, so it is wasteful for each to keep its
// own copy: "it is more efficient to provide neighborhood management as
// part of kernel services, which both users and applications can access
// via system calls". LiteView then exposes this one table for
// management: listing entries, blacklisting a neighbor (a per-entry flag
// that routing protocols honour when constructing routes), and tuning
// the beacon exchange period.
package neighbor

import (
	"errors"
	"fmt"
	"sort"

	"liteview/internal/phys"
	"liteview/internal/sim"
)

// Entry is one neighbor record. Sizes are kept small deliberately: a
// MicaZ kernel stores these in a few bytes each.
type Entry struct {
	// ID is the neighbor's short address.
	ID phys.NodeID
	// Name is the IP-convention node name learned from beacons
	// (e.g. "192.168.0.2"); empty until a beacon is heard.
	Name string
	// LQI is an EWMA of the CC2420 correlation values of overheard
	// frames.
	LQI float64
	// RSSI is an EWMA of the RSSI register values of overheard frames.
	RSSI float64
	// PRR estimates the beacon delivery ratio from sequence gaps.
	PRR float64
	// Delivery is an EWMA estimate of unicast delivery probability,
	// driven by MAC transmit outcomes (acks versus no-acks/channel
	// failures). It starts optimistic at 1 and, unlike the beacon-driven
	// PRR, reacts within a few lost frames.
	Delivery float64
	// Suspect marks a link penalized by SuspectAfter consecutive failed
	// unicasts. Routing protocols deprioritize suspect next hops; the
	// flag clears on the next acknowledged delivery.
	Suspect bool
	// LastHeard is the virtual time of the most recent frame.
	LastHeard sim.Time
	// Blacklisted marks the neighbor disabled for protocol use.
	Blacklisted bool
	// lastBeaconSeq supports gap-based PRR estimation.
	lastBeaconSeq uint16
	seenBeacon    bool
	// consecFails counts consecutive failed unicasts toward Suspect.
	consecFails int
}

// ETX returns the expected-transmissions cost of the link: the inverse
// of the delivery estimate, floored so a dead link costs at most
// 1/minDelivery rather than infinity.
func (e Entry) ETX() float64 {
	d := e.Delivery
	if d < minDelivery {
		d = minDelivery
	}
	return 1 / d
}

// ewmaAlpha is the smoothing weight given to each new observation.
const ewmaAlpha = 0.3

// minDelivery floors the delivery estimate so a long failure streak
// cannot pin it at zero forever: recovery within a handful of acks must
// stay possible, and ETX stays finite.
const minDelivery = 0.05

// SuspectAfter is how many consecutive failed unicasts mark a link
// suspect.
const SuspectAfter = 3

// DefaultCapacity bounds the table as a 4 KB-RAM kernel must.
const DefaultCapacity = 16

// ErrUnknownNeighbor is returned for operations on absent entries.
var ErrUnknownNeighbor = errors.New("neighbor: unknown neighbor")

// EstimatorStats counts link-estimator inputs and verdicts at one node.
type EstimatorStats struct {
	TxAcked       uint64 // unicast outcomes folded in as successes
	TxFailed      uint64 // unicast outcomes folded in as failures
	TxUnknownDst  uint64 // outcomes for destinations not in the table
	SuspectMarks  uint64 // links newly marked suspect
	SuspectClears uint64 // suspect flags cleared by an acked delivery
}

// Table is the kernel neighbor table. It is single-threaded, like
// everything on the simulated mote.
type Table struct {
	entries map[phys.NodeID]*Entry
	cap     int
	est     EstimatorStats
}

// NewTable returns a table bounded to capacity entries (DefaultCapacity
// if capacity <= 0).
func NewTable(capacity int) *Table {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Table{entries: make(map[phys.NodeID]*Entry), cap: capacity}
}

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// Capacity returns the entry bound.
func (t *Table) Capacity() int { return t.cap }

// Observe folds one overheard frame's link metadata into the table,
// inserting the neighbor if there is room (or evicting the stalest
// non-blacklisted entry when full).
func (t *Table) Observe(id phys.NodeID, lqi int, rssi int, now sim.Time) *Entry {
	e, ok := t.entries[id]
	if !ok {
		if len(t.entries) >= t.cap && !t.evictStalest(now) {
			return nil
		}
		e = &Entry{ID: id, LQI: float64(lqi), RSSI: float64(rssi), PRR: 1, Delivery: 1}
		t.entries[id] = e
	} else {
		e.LQI += ewmaAlpha * (float64(lqi) - e.LQI)
		e.RSSI += ewmaAlpha * (float64(rssi) - e.RSSI)
	}
	e.LastHeard = now
	return e
}

// evictStalest removes the least-recently-heard entry; blacklisted
// entries are pinned (the user set them deliberately). Reports whether
// a slot was freed.
func (t *Table) evictStalest(now sim.Time) bool {
	var victim *Entry
	for _, e := range t.entries {
		if e.Blacklisted {
			continue
		}
		if victim == nil || e.LastHeard < victim.LastHeard {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	delete(t.entries, victim.ID)
	return true
}

// ObserveTxResult folds one unicast transmit outcome for neighbor id
// into the delivery estimate: ok refreshes the EWMA toward 1 (and
// clears any suspect flag), a failure drags it toward the minDelivery
// floor. SuspectAfter consecutive failures mark the link suspect; the
// return value reports whether this call newly did so, letting the
// caller emit a telemetry event exactly once per streak. Outcomes for
// unknown destinations are counted and dropped — a transmit result
// carries no LQI/RSSI to seed an entry with.
func (t *Table) ObserveTxResult(id phys.NodeID, ok bool, now sim.Time) (becameSuspect bool) {
	e, known := t.entries[id]
	if !known {
		t.est.TxUnknownDst++
		return false
	}
	if ok {
		t.est.TxAcked++
		e.Delivery += ewmaAlpha * (1 - e.Delivery)
		e.consecFails = 0
		if e.Suspect {
			e.Suspect = false
			t.est.SuspectClears++
		}
		// An ack is first-hand evidence the neighbor is alive.
		e.LastHeard = now
		return false
	}
	t.est.TxFailed++
	e.Delivery += ewmaAlpha * (0 - e.Delivery)
	if e.Delivery < minDelivery {
		e.Delivery = minDelivery
	}
	e.consecFails++
	if e.consecFails >= SuspectAfter && !e.Suspect {
		e.Suspect = true
		t.est.SuspectMarks++
		return true
	}
	return false
}

// MarkSuspect sets or clears the suspect flag directly — routing uses
// this when its own failure streak condemns a next hop before the
// estimator threshold fires (or when the table wiring is absent).
func (t *Table) MarkSuspect(id phys.NodeID, on bool) error {
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNeighbor, id)
	}
	if e.Suspect != on {
		e.Suspect = on
		if on {
			t.est.SuspectMarks++
		} else {
			t.est.SuspectClears++
		}
	}
	if !on {
		e.consecFails = 0
	}
	return nil
}

// Suspects returns copies of the currently suspect entries sorted by ID
// (the shell's `health` view).
func (t *Table) Suspects() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		if e.Suspect {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EstimatorStats returns a snapshot of the link-estimator counters.
func (t *Table) EstimatorStats() EstimatorStats { return t.est }

// ResetEstimatorStats zeroes the link-estimator counters (the shell's
// `stats reset` includes them so chaos runs start from a clean slate).
func (t *Table) ResetEstimatorStats() { t.est = EstimatorStats{} }

// ObserveBeacon folds a received beacon into the table: it refreshes
// link metadata, records the advertised name, and updates the PRR
// estimate from the beacon sequence gap.
func (t *Table) ObserveBeacon(id phys.NodeID, name string, seq uint16, lqi, rssi int, now sim.Time) {
	e := t.Observe(id, lqi, rssi, now)
	if e == nil {
		return
	}
	e.Name = name
	if e.seenBeacon {
		gap := int(seq - e.lastBeaconSeq) // wraps correctly in uint16
		if gap < 1 {
			gap = 1
		}
		// One success preceded by gap-1 losses.
		for i := 0; i < gap-1 && i < 16; i++ {
			e.PRR += ewmaAlpha * (0 - e.PRR)
		}
		e.PRR += ewmaAlpha * (1 - e.PRR)
	}
	e.seenBeacon = true
	e.lastBeaconSeq = seq
}

// Get returns a copy of the entry for id.
func (t *Table) Get(id phys.NodeID) (Entry, bool) {
	e, ok := t.entries[id]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Entries returns copies of all entries sorted by ID (deterministic for
// display and routing).
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Usable returns the non-blacklisted entries sorted by ID; this is the
// view routing protocols consume.
func (t *Table) Usable() []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		if !e.Blacklisted {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Blacklist sets or clears the disabled flag on a neighbor. The entry
// must exist: LiteView surfaces an error to the user otherwise.
func (t *Table) Blacklist(id phys.NodeID, on bool) error {
	e, ok := t.entries[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNeighbor, id)
	}
	e.Blacklisted = on
	return nil
}

// IsBlacklisted reports whether id is present and disabled.
func (t *Table) IsBlacklisted(id phys.NodeID) bool {
	e, ok := t.entries[id]
	return ok && e.Blacklisted
}

// Remove deletes an entry entirely.
func (t *Table) Remove(id phys.NodeID) { delete(t.entries, id) }

// Clear drops every entry, blacklisted or not. The kernel calls this on
// a crash: neighbor state lives in RAM and does not survive a reboot.
func (t *Table) Clear() {
	t.entries = make(map[phys.NodeID]*Entry)
}

// Expire drops entries not heard since the cutoff, keeping blacklisted
// pins.
func (t *Table) Expire(cutoff sim.Time) int {
	n := 0
	for id, e := range t.entries {
		if !e.Blacklisted && e.LastHeard < cutoff {
			delete(t.entries, id)
			n++
		}
	}
	return n
}
