package neighbor

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"liteview/internal/phys"
	"liteview/internal/sim"
)

func TestObserveInsertsAndSmooths(t *testing.T) {
	tab := NewTable(8)
	e := tab.Observe(2, 100, -10, time.Second)
	if e == nil || e.LQI != 100 || e.RSSI != -10 {
		t.Fatalf("first observation: %+v", e)
	}
	tab.Observe(2, 60, -30, 2*time.Second)
	got, _ := tab.Get(2)
	if got.LQI >= 100 || got.LQI <= 60 {
		t.Fatalf("EWMA LQI = %f, want strictly between 60 and 100", got.LQI)
	}
	if got.RSSI >= -10 || got.RSSI <= -30 {
		t.Fatalf("EWMA RSSI = %f", got.RSSI)
	}
	if got.LastHeard != 2*time.Second {
		t.Fatalf("LastHeard = %v", got.LastHeard)
	}
}

func TestCapacityEviction(t *testing.T) {
	tab := NewTable(3)
	for i := 1; i <= 3; i++ {
		tab.Observe(phys.NodeID(i), 100, -10, time.Duration(i)*time.Second)
	}
	// Node 1 is stalest; inserting node 4 evicts it.
	if tab.Observe(4, 100, -10, 10*time.Second) == nil {
		t.Fatal("insert into full table failed")
	}
	if _, ok := tab.Get(1); ok {
		t.Fatal("stalest entry not evicted")
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestBlacklistedEntriesPinned(t *testing.T) {
	tab := NewTable(2)
	tab.Observe(1, 100, -10, time.Second)
	tab.Observe(2, 100, -10, 2*time.Second)
	if err := tab.Blacklist(1, true); err != nil {
		t.Fatal(err)
	}
	// Node 1 is stalest but blacklisted: node 2 must be evicted instead.
	tab.Observe(3, 100, -10, 3*time.Second)
	if _, ok := tab.Get(1); !ok {
		t.Fatal("blacklisted entry evicted")
	}
	if _, ok := tab.Get(2); ok {
		t.Fatal("expected node 2 evicted")
	}
	// All pinned: insertion fails gracefully.
	tab.Blacklist(3, true)
	if tab.Observe(4, 100, -10, 4*time.Second) != nil {
		t.Fatal("insert succeeded with all entries pinned")
	}
}

func TestBlacklistLifecycle(t *testing.T) {
	tab := NewTable(8)
	if err := tab.Blacklist(5, true); !errors.Is(err, ErrUnknownNeighbor) {
		t.Fatalf("err = %v", err)
	}
	tab.Observe(5, 100, -10, time.Second)
	if err := tab.Blacklist(5, true); err != nil {
		t.Fatal(err)
	}
	if !tab.IsBlacklisted(5) {
		t.Fatal("not blacklisted")
	}
	if n := len(tab.Usable()); n != 0 {
		t.Fatalf("usable = %d", n)
	}
	if err := tab.Blacklist(5, false); err != nil {
		t.Fatal(err)
	}
	if tab.IsBlacklisted(5) {
		t.Fatal("still blacklisted")
	}
	if n := len(tab.Usable()); n != 1 {
		t.Fatalf("usable = %d", n)
	}
}

func TestEntriesSorted(t *testing.T) {
	tab := NewTable(8)
	for _, id := range []phys.NodeID{5, 1, 9, 3} {
		tab.Observe(id, 100, -10, time.Second)
	}
	es := tab.Entries()
	for i := 1; i < len(es); i++ {
		if es[i].ID <= es[i-1].ID {
			t.Fatalf("entries not sorted: %v", es)
		}
	}
}

func TestObserveBeaconNameAndPRR(t *testing.T) {
	tab := NewTable(8)
	tab.ObserveBeacon(2, "192.168.0.2", 1, 100, -10, time.Second)
	e, _ := tab.Get(2)
	if e.Name != "192.168.0.2" {
		t.Fatalf("name = %q", e.Name)
	}
	if e.PRR != 1 {
		t.Fatalf("initial PRR = %f", e.PRR)
	}
	// Perfect beacon stream keeps PRR at 1.
	for s := uint16(2); s <= 10; s++ {
		tab.ObserveBeacon(2, "192.168.0.2", s, 100, -10, time.Duration(s)*time.Second)
	}
	e, _ = tab.Get(2)
	if e.PRR < 0.99 {
		t.Fatalf("lossless PRR = %f", e.PRR)
	}
	// Now drop every other beacon: PRR must fall noticeably.
	for s := uint16(12); s <= 40; s += 2 {
		tab.ObserveBeacon(2, "192.168.0.2", s, 100, -10, time.Duration(s)*time.Second)
	}
	e, _ = tab.Get(2)
	if e.PRR > 0.8 {
		t.Fatalf("lossy PRR = %f, want < 0.8", e.PRR)
	}
}

func TestObserveBeaconSeqWrap(t *testing.T) {
	tab := NewTable(8)
	tab.ObserveBeacon(3, "n3", 0xFFFF, 100, -10, time.Second)
	tab.ObserveBeacon(3, "n3", 0, 100, -10, 2*time.Second)
	e, _ := tab.Get(3)
	if e.PRR < 0.99 {
		t.Fatalf("wraparound treated as loss: PRR = %f", e.PRR)
	}
}

func TestExpire(t *testing.T) {
	tab := NewTable(8)
	tab.Observe(1, 100, -10, time.Second)
	tab.Observe(2, 100, -10, 10*time.Second)
	tab.Observe(3, 100, -10, time.Second)
	tab.Blacklist(3, true)
	n := tab.Expire(5 * time.Second)
	if n != 1 {
		t.Fatalf("expired %d, want 1", n)
	}
	if _, ok := tab.Get(1); ok {
		t.Fatal("stale entry survived")
	}
	if _, ok := tab.Get(3); !ok {
		t.Fatal("blacklisted pin expired")
	}
}

func TestRemove(t *testing.T) {
	tab := NewTable(8)
	tab.Observe(1, 100, -10, time.Second)
	tab.Remove(1)
	if tab.Len() != 0 {
		t.Fatal("remove failed")
	}
	tab.Remove(1) // idempotent
}

func TestDefaultCapacity(t *testing.T) {
	if NewTable(0).Capacity() != DefaultCapacity {
		t.Fatal("default capacity not applied")
	}
	if NewTable(-5).Capacity() != DefaultCapacity {
		t.Fatal("negative capacity not defaulted")
	}
}

func TestTableInvariantsProperty(t *testing.T) {
	// Any sequence of observations keeps Len <= cap and every entry's
	// LQI within the CC2420 range when observations are in range.
	prop := func(ops []uint16) bool {
		tab := NewTable(5)
		now := sim.Time(0)
		for _, op := range ops {
			now += time.Millisecond
			id := phys.NodeID(op % 20)
			lqi := 50 + int(op%61)
			tab.Observe(id, lqi, -int(op%60), now)
			if tab.Len() > 5 {
				return false
			}
		}
		for _, e := range tab.Entries() {
			if e.LQI < 50 || e.LQI > 110 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
