package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetriczFormats: the admin /metricz endpoint speaks Prometheus
// exposition by default and keeps the legacy "name value" lines behind
// ?format=plain.
func TestMetriczFormats(t *testing.T) {
	srv, addr := startServer(t, echoConfig())
	c, err := Dial(addr, "lab")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run("ls"); err != nil {
		t.Fatal(err)
	}

	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metricz")
	if code != http.StatusOK {
		t.Fatalf("/metricz = %d", code)
	}
	for _, want := range []string{
		"# TYPE serve_commands_total counter",
		"# HELP serve_commands_total",
		"serve_commands_total 1",
		"# TYPE serve_sessions_active gauge",
		"serve_cmd_ms_bucket{le=",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metricz missing %q:\n%s", want, body)
		}
	}
	// Sample lines must use sanitized names (the HELP text may still
	// mention the original dotted name).
	if strings.Contains(body, "\nserve.commands.total ") {
		t.Fatal("Prometheus sample line leaked an unsanitized metric name")
	}

	code, body = get("/metricz?format=plain")
	if code != http.StatusOK {
		t.Fatalf("/metricz?format=plain = %d", code)
	}
	if !strings.Contains(body, "serve.commands.total") {
		t.Fatalf("legacy format lost the dotted names:\n%s", body)
	}
	if strings.Contains(body, "# TYPE") {
		t.Fatalf("legacy format grew Prometheus headers:\n%s", body)
	}
}

// TestStreamzEndToEnd drives the SSE endpoint against a real tenant:
// parameter validation, replay of recorded history, and the timed end
// event.
func TestStreamzEndToEnd(t *testing.T) {
	srv, addr := startServer(t, Config{NewRunner: testbedRunner})
	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	if resp, err := http.Get(admin.URL + "/streamz"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no tenant parameter = %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(admin.URL + "/streamz?tenant=ghost"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant = %d, want 404 (streamz must never create tenants)", resp.StatusCode)
	}

	c, err := Dial(addr, "sse-lab")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, line := range []string{"trace on", "cd 192.168.0.1", "ping 192.168.0.2"} {
		if resp, err := c.Run(line); err != nil || resp.Error != "" {
			t.Fatalf("%q: err=%v resp.Error=%q", line, err, resp.Error)
		}
	}

	resp, err := http.Get(admin.URL + "/streamz?tenant=sse-lab&replay=25&for=300ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/streamz = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	if !strings.Contains(out, "data: {") {
		t.Fatalf("no replayed frames in the stream:\n%s", out)
	}
	if !strings.Contains(out, "event: end\ndata: elapsed") {
		t.Fatalf("stream did not end with the elapsed event:\n%s", out)
	}
}
