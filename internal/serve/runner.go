package serve

import (
	"bytes"

	"liteview/internal/shell"
	"liteview/internal/telemetry"
)

// Runner is one tenant's command interpreter: Run executes a command
// line and returns its output. Implementations need not be safe for
// concurrent use — the tenant goroutine is the only caller, which is
// exactly how the simulation's single-threaded determinism survives a
// concurrent service around it.
type Runner interface {
	// Run executes one command line and returns its output. A non-nil
	// error may still carry partial output (graceful degradation: a
	// partial traceroute beats a failed command).
	Run(line string) (output string, err error)
	// Cwd reports the session's current directory for client prompts.
	Cwd() string
}

// ShellRunner adapts a workstation shell to the Runner interface by
// capturing each command's output in a private buffer (the shell's
// programmatic session API). Write failures cannot occur against the
// buffer, so any error out of Run is the command's own.
type ShellRunner struct {
	sh  *shell.Shell
	buf bytes.Buffer
}

// NewShellRunner wraps sh, redirecting its output into the runner's
// per-command buffer.
func NewShellRunner(sh *shell.Shell) (*ShellRunner, error) {
	r := &ShellRunner{sh: sh}
	if err := sh.SetOutput(&r.buf); err != nil {
		return nil, err
	}
	return r, nil
}

// Run executes one shell command and returns everything it printed.
func (r *ShellRunner) Run(line string) (string, error) {
	r.buf.Reset()
	err := r.sh.Exec(line)
	return r.buf.String(), err
}

// Cwd reports the shell's current directory.
func (r *ShellRunner) Cwd() string { return r.sh.Cwd() }

// TelemetrySource is the optional Runner extension the live-streaming
// layer uses: a runner that can expose its deployment's telemetry
// recorder lets watch sessions and /streamz subscribe to the tenant's
// event bus. The recorder is only ever *subscribed to* from service
// goroutines — subscriptions are the one cross-goroutine-safe surface
// of the bus, and attaching one is zero-perturbation by contract.
type TelemetrySource interface {
	Telemetry() *telemetry.Recorder
}

// Telemetry exposes the shell deployment's recorder (nil for sessions
// without a testbed), satisfying TelemetrySource.
func (r *ShellRunner) Telemetry() *telemetry.Recorder { return r.sh.Telemetry() }
