package serve

import (
	"bufio"
	"encoding/json"
	"os"
	"testing"

	"liteview/internal/telemetry"
)

// FuzzParseWire throws arbitrary bytes at everything the daemon and its
// clients parse off a connection: wire requests, wire responses, and
// telemetry JSONL event frames. Nothing may panic, and an event line
// that parses must survive an encode/decode round trip unchanged —
// the journal and every JSONL consumer depend on that fixed point.
// The seed corpus is the shipped live-trace example plus protocol
// frames and known-nasty shapes; `go test` replays the seeds even when
// no -fuzz run is asked for.
func FuzzParseWire(f *testing.F) {
	// Real event frames: every line of the example live trace.
	if file, err := os.Open("../../examples/live-trace.jsonl"); err == nil {
		sc := bufio.NewScanner(file)
		for sc.Scan() {
			f.Add(append([]byte(nil), sc.Bytes()...))
		}
		file.Close()
	} else {
		f.Logf("seed corpus: %v (fuzzing without the live-trace seeds)", err)
	}
	// Protocol frames, valid and hostile.
	for _, s := range []string{
		`{"type":"hello","tenant":"lab-a"}`,
		`{"type":"cmd","id":7,"line":"ping 192.168.0.2"}`,
		`{"type":"watch","watch":{"layer":"mac","node":3,"for_ms":50}}`,
		`{"type":"recovery","clear":"lab-a"}`,
		`{"type":"result","id":7,"output":"ok\n","cwd":"/"}`,
		`{"type":"event","event":"{\"seq\":1,\"us\":5,\"node\":1,\"layer\":\"mac\",\"kind\":\"tx\"}"}`,
		`{"seq":1,"us":9223372036854775807,"node":1,"layer":"mac","kind":"tx"}`,
		`{"seq":1,"us":-1,"dur_us":-9223372036854775808,"node":1,"layer":"mac","kind":"tx"}`,
		`{"seq":18446744073709551615,"us":0,"node":65535,"layer":"","kind":"","attrs":{"a":"b","a":"c"}}`,
		`{"type":`,
		`{}`,
		``,
		`null`,
		`[1,2,3]`,
		"\x00\xff\xfe",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// The daemon's side of the wire: a request line.
		var req Request
		json.Unmarshal(data, &req)
		// The client's side: a response line.
		var resp Response
		json.Unmarshal(data, &resp)
		// A telemetry event frame. A line that parses must round-trip:
		// encode, re-parse, re-encode, byte-compare.
		e, err := telemetry.ParseJSONLine(data)
		if err != nil {
			return
		}
		line := telemetry.JSONLine(&e)
		e2, err := telemetry.ParseJSONLine([]byte(line))
		if err != nil {
			t.Fatalf("re-parse of encoded event failed: %v\ninput: %q\nencoded: %q", err, data, line)
		}
		if line2 := telemetry.JSONLine(&e2); line2 != line {
			t.Fatalf("event encoding is not a fixed point\nfirst:  %q\nsecond: %q", line, line2)
		}
	})
}
