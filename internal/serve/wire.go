package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"

	"liteview/internal/core"
)

// The wire protocol is newline-delimited JSON, one message per line,
// symmetric request/response over a plain TCP stream:
//
//	→ {"type":"hello","tenant":"lab-a"}
//	← {"type":"hello-ok","tenant":"lab-a"}
//	→ {"type":"cmd","id":1,"line":"cd 192.168.0.1"}
//	← {"type":"result","id":1,"cwd":"/sn01/192.168.0.1"}
//	→ {"type":"cmd","id":2,"line":"ping 192.168.0.3"}
//	← {"type":"result","id":2,"output":"Pinging ...","cwd":"/sn01/192.168.0.1"}
//	← {"type":"bye","reason":"draining"}          (server push)
//
// healthz and metrics requests work before hello (no tenant needed), so
// probes stay cheap. Errors carry a stable machine-readable code plus a
// transient flag that tells the client whether backing off and retrying
// can help.

// Message type tags.
const (
	TypeHello    = "hello"
	TypeHelloOK  = "hello-ok"
	TypeCmd      = "cmd"
	TypeResult   = "result"
	TypeHealthz  = "healthz"
	TypeMetrics  = "metrics"
	TypeBye      = "bye"
	TypeError    = "error"
	TypeWatch    = "watch"     // start streaming telemetry frames
	TypeWatchOK  = "watch-ok"  // watch accepted, frames follow
	TypeEvent    = "event"     // one streamed telemetry frame (server push)
	TypeUnwatch  = "unwatch"   // stop the stream
	TypeWatchEnd = "watch-end" // stream over (unwatch, drain, or error)
	TypeRecovery = "recovery"  // crash-recovery status (and quarantine clearing)
)

// WatchSpec filters and bounds one telemetry watch stream. The zero
// value streams everything at the default depth and rate.
type WatchSpec struct {
	// Node/Layer/Kind/Link/Span mirror telemetry.Filter.
	Node  uint64 `json:"node,omitempty"`
	Layer string `json:"layer,omitempty"`
	Kind  string `json:"kind,omitempty"`
	Link  string `json:"link,omitempty"`
	Span  uint64 `json:"span,omitempty"`
	// Depth is the subscriber ring size (0 = default). A consumer that
	// falls behind loses the oldest frames; the drop count rides along
	// on event frames.
	Depth int `json:"depth,omitempty"`
	// MaxPerSec caps streamed frames per second (0 = server default).
	MaxPerSec int `json:"max_per_sec,omitempty"`
	// ForMs ends the stream server-side after this many wall-clock
	// milliseconds (0 = until unwatch/disconnect/drain). Server-side so
	// an idle stream still terminates even when no frame ever arrives
	// to prompt the client.
	ForMs int64 `json:"for_ms,omitempty"`
}

// Request is one client→server message.
type Request struct {
	Type   string     `json:"type"`
	Tenant string     `json:"tenant,omitempty"` // hello
	ID     uint64     `json:"id,omitempty"`     // cmd
	Line   string     `json:"line,omitempty"`   // cmd
	Watch  *WatchSpec `json:"watch,omitempty"`  // watch
	Clear  string     `json:"clear,omitempty"`  // recovery: lift this tenant's quarantine
}

// Response is one server→client message.
type Response struct {
	Type      string             `json:"type"`
	ID        uint64             `json:"id,omitempty"`
	Tenant    string             `json:"tenant,omitempty"`
	Output    string             `json:"output,omitempty"`
	Cwd       string             `json:"cwd,omitempty"`
	Error     string             `json:"error,omitempty"`
	Code      string             `json:"code,omitempty"`
	Transient bool               `json:"transient,omitempty"`
	Health    *Health            `json:"health,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Reason    string             `json:"reason,omitempty"` // bye, watch-end
	// Event is one telemetry frame in the JSONL line format (see
	// telemetry.JSONLine), carried as a string so the hand-rolled
	// byte-stable encoding survives the wire untouched.
	Event string `json:"event,omitempty"`
	// Dropped is the cumulative count of frames lost to the subscriber
	// ring when the stream (or its reader) fell behind.
	Dropped uint64 `json:"dropped,omitempty"`
	// Recovery answers a recovery request.
	Recovery *RecoveryStatus `json:"recovery,omitempty"`
}

// RecoveryStatus is the supervisor's wire-visible state.
type RecoveryStatus struct {
	// Enabled is true when the daemon journals commands (-journal).
	Enabled bool `json:"enabled"`
	// Restored counts tenants resurrected at startup (-recover).
	Restored int `json:"restored,omitempty"`
	// Recovering lists tenants currently mid-replay.
	Recovering []string `json:"recovering,omitempty"`
	// Quarantined lists tenants the supervisor gave up on.
	Quarantined []QuarantineInfo `json:"quarantined,omitempty"`
}

// QuarantineInfo names a quarantined tenant and, when the crash was a
// deterministically-poisonous journaled command, the offending entry.
type QuarantineInfo struct {
	Tenant string `json:"tenant"`
	// Index/Line identify the poison journal entry (Line empty when the
	// quarantine came from a build or journal failure instead).
	Index    uint64 `json:"index,omitempty"`
	Line     string `json:"line,omitempty"`
	Reason   string `json:"reason"`
	Restarts int    `json:"restarts"`
}

// Health is the /healthz-style liveness and readiness report.
type Health struct {
	// Live is true as long as the daemon answers at all.
	Live bool `json:"live"`
	// Ready is true when the daemon accepts new sessions and commands
	// (false while draining or before the listener is up).
	Ready    bool         `json:"ready"`
	Draining bool         `json:"draining"`
	Sessions int          `json:"sessions"`
	Tenants  []TenantInfo `json:"tenants,omitempty"`
	// Quarantined lists tenants the crash-recovery supervisor gave up
	// on; they refuse hellos until cleared.
	Quarantined []QuarantineInfo `json:"quarantined,omitempty"`
	UptimeMs    int64            `json:"uptime_ms"`
}

// Stable error codes for the wire. See errCode.
const (
	CodeQueueFull      = "queue-full"
	CodeRateLimited    = "rate-limited"
	CodeBreakerOpen    = "breaker-open"
	CodeDeadline       = "deadline"
	CodeTenantCrashed  = "tenant-crashed"
	CodeTenantDead     = "tenant-dead"
	CodeDraining       = "draining"
	CodeTooManyTenants = "too-many-tenants"
	CodeBadRequest     = "bad-request"
	CodeCommand        = "command"
	CodeRecovering     = "recovering"
	CodeQuarantined    = "quarantined"
	CodePoison         = "poison-command"
)

// errCode maps a service or command error to its wire code and whether
// a client retry (with backoff) is worthwhile.
func errCode(err error) (code string, transient bool) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return CodeQueueFull, true
	case errors.Is(err, ErrRateLimited):
		return CodeRateLimited, true
	case errors.Is(err, ErrDeadline):
		return CodeDeadline, true
	case errors.Is(err, ErrTenantCrashed):
		return CodeTenantCrashed, false
	case errors.Is(err, ErrTenantRecovering):
		return CodeRecovering, true
	case errors.Is(err, ErrPoisonCommand):
		return CodePoison, false
	case errors.Is(err, ErrTenantQuarantined):
		return CodeQuarantined, false
	case errors.Is(err, ErrTenantDead):
		return CodeTenantDead, false
	case errors.Is(err, ErrDraining):
		return CodeDraining, false
	case errors.Is(err, ErrTooManyTenants):
		return CodeTooManyTenants, false
	case errors.Is(err, core.ErrBreakerOpen):
		return CodeBreakerOpen, true
	case core.Transient(err):
		return CodeCommand, true
	default:
		return CodeCommand, false
	}
}

// maxLine bounds one wire message (either direction): big enough for a
// full healthcheck transcript, small enough to stop a rogue peer from
// ballooning the session buffer.
const maxLine = 4 << 20

// newLineScanner builds the line reader both ends of the wire use.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	return sc
}

// Client is a minimal wire-protocol client used by cmd/lvctl and the
// service tests. It is synchronous: one request, one response. Not safe
// for concurrent use.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
	next uint64
}

// RejectedError is a server rejection carried back to the caller with
// its wire code and transient flag intact, so retry loops (WatchRetry,
// recovery-aware clients) can tell "back off and retry" from "stop".
type RejectedError struct {
	Op        string // "hello", "watch"
	Code      string
	Msg       string
	Transient bool
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("serve: %s rejected: %s (%s)", e.Op, e.Msg, e.Code)
}

// NewClient speaks the protocol over an established connection,
// attaching to the named tenant when tenant is non-empty. A server-side
// hello rejection comes back as a *RejectedError.
func NewClient(conn net.Conn, tenant string) (*Client, error) {
	c := &Client{conn: conn, enc: json.NewEncoder(conn), sc: bufio.NewScanner(conn)}
	c.sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	if tenant == "" {
		return c, nil
	}
	resp, err := c.do(Request{Type: TypeHello, Tenant: tenant})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if resp.Type != TypeHelloOK {
		conn.Close()
		return nil, &RejectedError{Op: "hello", Code: resp.Code, Msg: resp.Error, Transient: resp.Transient}
	}
	return c, nil
}

// Dial connects to a daemon and attaches to tenant (may be empty for
// probe-only clients).
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, tenant)
}

// do sends one request and reads one response.
func (c *Client) do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("serve: send: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, fmt.Errorf("serve: read: %w", err)
		}
		return Response{}, fmt.Errorf("serve: server closed the connection")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("serve: bad response: %w", err)
	}
	return resp, nil
}

// Run executes one command line on the attached tenant. The Response
// carries output (possibly partial), the session cwd, and any error
// text with its code; err is non-nil only for transport-level failures
// or a server goodbye.
func (c *Client) Run(line string) (Response, error) {
	c.next++
	resp, err := c.do(Request{Type: TypeCmd, ID: c.next, Line: line})
	if err != nil {
		return resp, err
	}
	if resp.Type == TypeBye {
		return resp, fmt.Errorf("serve: server said goodbye: %s", resp.Reason)
	}
	if resp.ID != c.next {
		return resp, fmt.Errorf("serve: response id %d for request %d", resp.ID, c.next)
	}
	return resp, nil
}

// Healthz asks for the liveness/readiness report.
func (c *Client) Healthz() (Health, error) {
	resp, err := c.do(Request{Type: TypeHealthz})
	if err != nil {
		return Health{}, err
	}
	if resp.Health == nil {
		return Health{}, errors.New("serve: healthz response lacked a health block")
	}
	return *resp.Health, nil
}

// Metrics asks for a snapshot of the service metrics registry.
func (c *Client) Metrics() (map[string]float64, error) {
	resp, err := c.do(Request{Type: TypeMetrics})
	if err != nil {
		return nil, err
	}
	return resp.Metrics, nil
}

// Watch streams filtered telemetry frames from the attached tenant,
// calling fn for each frame with the JSONL-encoded event line and the
// cumulative count of frames dropped server-side. Watch dedicates the
// connection: it blocks until fn returns false (the client then sends
// unwatch and drains to watch-end), the server ends the stream (drain,
// shutdown), or the transport fails.
func (c *Client) Watch(spec WatchSpec, fn func(line string, dropped uint64) bool) error {
	c.next++
	id := c.next
	if err := c.enc.Encode(Request{Type: TypeWatch, ID: id, Watch: &spec}); err != nil {
		return fmt.Errorf("serve: send watch: %w", err)
	}
	stopping := false
	for c.sc.Scan() {
		var resp Response
		if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
			return fmt.Errorf("serve: bad response: %w", err)
		}
		switch resp.Type {
		case TypeWatchOK:
			// Stream accepted; frames follow.
		case TypeEvent:
			if stopping {
				continue // draining buffered frames after unwatch
			}
			if !fn(resp.Event, resp.Dropped) {
				stopping = true
				if err := c.enc.Encode(Request{Type: TypeUnwatch, ID: id}); err != nil {
					return fmt.Errorf("serve: send unwatch: %w", err)
				}
			}
		case TypeWatchEnd:
			if resp.Reason == "draining" {
				// The daemon is going down, not the stream's natural end:
				// surface it typed so reconnect loops can resume after the
				// restart instead of reporting success.
				return fmt.Errorf("serve: watch ended: %w", ErrDraining)
			}
			return nil
		case TypeBye:
			return fmt.Errorf("serve: server said goodbye: %s", resp.Reason)
		case TypeError:
			return &RejectedError{Op: "watch", Code: resp.Code, Msg: resp.Error, Transient: resp.Transient}
		}
	}
	if err := c.sc.Err(); err != nil {
		return fmt.Errorf("serve: read: %w", err)
	}
	return fmt.Errorf("serve: server closed the connection")
}

// Recovery asks for the daemon's crash-recovery status. A non-empty
// clear first lifts that tenant's quarantine (resurrecting it from the
// truncated journal).
func (c *Client) Recovery(clear string) (RecoveryStatus, error) {
	resp, err := c.do(Request{Type: TypeRecovery, Clear: clear})
	if err != nil {
		return RecoveryStatus{}, err
	}
	if resp.Type == TypeError {
		return RecoveryStatus{}, fmt.Errorf("serve: recovery request failed: %s (%s)", resp.Error, resp.Code)
	}
	if resp.Recovery == nil {
		return RecoveryStatus{}, errors.New("serve: recovery response lacked a status block")
	}
	return *resp.Recovery, nil
}

// Close says goodbye and closes the connection.
func (c *Client) Close() error {
	c.enc.Encode(Request{Type: TypeBye}) // best effort
	return c.conn.Close()
}
