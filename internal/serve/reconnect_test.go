package serve

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWatchRetryReconnectsAcrossRestart: a live watch survives the
// daemon being replaced under it. The first daemon drains mid-stream;
// WatchRetry backs off, redials the same address once a new daemon
// listens there, marks the seam with a "# reconnected" comment frame,
// and keeps delivering frames.
func TestWatchRetryReconnectsAcrossRestart(t *testing.T) {
	cfg := Config{NewRunner: testbedRunner, TenantIdle: -1, Logf: func(string, ...any) {}}

	newDaemon := func(addr string) (*Server, net.Listener, chan error) {
		t.Helper()
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ln net.Listener
		deadline := time.Now().Add(5 * time.Second)
		for {
			ln, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rebinding %s: %v", addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		return srv, ln, done
	}

	srvA, lnA, doneA := newDaemon("127.0.0.1:0")
	addr := lnA.Addr().String()

	// The sink runs until it has seen a reconnect comment followed by at
	// least one real frame from the second daemon.
	var (
		mu        sync.Mutex
		comments  []string
		preFrames = make(chan struct{}, 64)
		seam      = make(chan struct{})
		seamOnce  sync.Once
	)
	sink := func(line string, dropped uint64) bool {
		if strings.HasPrefix(line, "#") {
			mu.Lock()
			comments = append(comments, line)
			mu.Unlock()
			seamOnce.Do(func() { close(seam) })
			return true
		}
		select {
		case <-seam:
			return false // a post-reconnect frame: the stream provably resumed
		default:
		}
		select {
		case preFrames <- struct{}{}:
		default:
		}
		return true
	}
	watchDone := make(chan error, 1)
	go func() {
		watchDone <- WatchRetry(addr, "stream", WatchSpec{},
			RetrySpec{Initial: 25 * time.Millisecond, Max: 250 * time.Millisecond, Attempts: 60},
			sink, nil)
	}()

	// Drive traffic on daemon A until the watch has delivered frames.
	d1, err := Dial(addr, "stream")
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := d1.Run("cd 192.168.0.1"); err != nil || resp.Error != "" {
		t.Fatalf("driver cd on daemon A: %v %q", err, resp.Error)
	}
	deadline := time.Now().Add(20 * time.Second)
	for seen := false; !seen; {
		if _, err := d1.Run("ping 192.168.0.2"); err != nil {
			t.Fatalf("driver ping on daemon A: %v", err)
		}
		select {
		case <-preFrames:
			seen = true
		case <-time.After(50 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatal("watch never delivered a frame from daemon A")
			}
		}
	}
	d1.Close()

	// Replace the daemon: drain A (the watch ends with reason
	// "draining" — a transient cut), then start B on the same address.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatalf("draining daemon A: %v", err)
	}
	if err := <-doneA; err != nil {
		t.Fatalf("daemon A Serve = %v", err)
	}
	srvB, _, doneB := newDaemon(addr)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srvB.Shutdown(ctx)
		<-doneB
	})

	// Drive traffic on daemon B until the watch sees a post-reconnect
	// frame and ends cleanly (the sink returns false).
	var d2 *Client
	for {
		d2, err = Dial(addr, "stream")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dialing daemon B: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer d2.Close()
	if resp, err := d2.Run("cd 192.168.0.1"); err != nil || resp.Error != "" {
		t.Fatalf("driver cd on daemon B: %v %q", err, resp.Error)
	}
	for {
		select {
		case err := <-watchDone:
			if err != nil {
				t.Fatalf("WatchRetry = %v, want clean stop after reconnect", err)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(comments) == 0 || !strings.HasPrefix(comments[0], "# reconnected (") {
				t.Fatalf("no reconnect comment frame; comments = %q", comments)
			}
			return
		default:
		}
		if _, err := d2.Run("ping 192.168.0.2"); err != nil {
			t.Fatalf("driver ping on daemon B: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("watch never resumed on daemon B")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
