package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosRunner wraps the real testbed runner with a fault injector: the
// command "boom" panics mid-command, everything else passes through.
func chaosRunner(tenant string, seed uint64) (Runner, error) {
	r, err := testbedRunner(tenant, seed)
	if err != nil {
		return nil, err
	}
	return &faultyRunner{inner: r}, nil
}

type faultyRunner struct{ inner Runner }

func (f *faultyRunner) Run(line string) (string, error) {
	if line == "boom" {
		panic("chaos: injected mid-command fault")
	}
	return f.inner.Run(line)
}

func (f *faultyRunner) Cwd() string { return f.inner.Cwd() }

// TestChaosRegression is the ISSUE's acceptance scenario, end to end:
// while a bystander tenant replays a scripted diagnosis, a victim
// tenant panics mid-command and another client disconnects mid-
// traceroute without reading its response. The daemon must reap both,
// keep serving the bystander, drain cleanly within the deadline, and
// the bystander's transcript must stay byte-identical to a sequential
// service-free run.
func TestChaosRegression(t *testing.T) {
	wantQuiet := runDirect(t, "quiet")

	cfg := Config{NewRunner: chaosRunner, Logf: func(string, ...any) {}}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	// Chaos actor 1: a victim tenant whose simulation panics mid-command.
	victimDone := make(chan error, 1)
	go func() {
		victimDone <- func() error {
			c, err := Dial(addr, "victim")
			if err != nil {
				return err
			}
			defer c.Close()
			for _, line := range []string{"cd 192.168.0.1", "ping 192.168.0.2"} {
				if resp, err := c.Run(line); err != nil || resp.Error != "" {
					return fmt.Errorf("victim warmup %q: %v %q", line, err, resp.Error)
				}
			}
			resp, err := c.Run("boom")
			if err != nil {
				return fmt.Errorf("victim crash transport: %w", err)
			}
			if resp.Code != CodeTenantCrashed {
				return fmt.Errorf("crash code = %q, want %q", resp.Code, CodeTenantCrashed)
			}
			if !strings.Contains(resp.Error, ErrTenantCrashed.Error()) {
				return fmt.Errorf("crash error = %q", resp.Error)
			}
			// The daemon survives and a fresh hello for the same name gets
			// a freshly built simulation.
			c2, err := Dial(addr, "victim")
			if err != nil {
				return fmt.Errorf("re-hello after crash: %w", err)
			}
			defer c2.Close()
			for _, line := range []string{"cd 192.168.0.1", "ping 192.168.0.2"} {
				if resp, err := c2.Run(line); err != nil || resp.Error != "" {
					return fmt.Errorf("resurrected victim %q: %v %q", line, err, resp.Error)
				}
			}
			return nil
		}()
	}()

	// Chaos actor 2: a client that fires a traceroute and slams the
	// connection shut without ever reading the response.
	rudeDone := make(chan error, 1)
	go func() {
		rudeDone <- func() error {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(conn)
			if err := enc.Encode(Request{Type: TypeHello, Tenant: "rude"}); err != nil {
				return err
			}
			// Swallow hello-ok, then vanish mid-traceroute.
			if !newLineScanner(conn).Scan() {
				return errors.New("rude client: no hello-ok")
			}
			if err := enc.Encode(Request{Type: TypeCmd, ID: 1, Line: "traceroute 192.168.0.3"}); err != nil {
				return err
			}
			return conn.Close()
		}()
	}()

	// The bystander: a quiet tenant replaying the reference script while
	// the chaos actors do their worst.
	c, err := Dial(addr, "quiet")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var quiet strings.Builder
	for _, line := range diagScript {
		resp, err := c.Run(line)
		if err != nil {
			t.Fatalf("bystander %q: %v", line, err)
		}
		if resp.Error != "" {
			t.Fatalf("bystander %q: [%s] %s", line, resp.Code, resp.Error)
		}
		quiet.WriteString(resp.Output)
	}
	if err := <-victimDone; err != nil {
		t.Fatal(err)
	}
	if err := <-rudeDone; err != nil {
		t.Fatal(err)
	}
	if quiet.String() != wantQuiet {
		t.Errorf("bystander transcript diverged under chaos\nwant:\n%s\ngot:\n%s", wantQuiet, quiet.String())
	}

	// Concurrent pings on the stable tenant keep succeeding while the
	// rude session is being reaped in the background.
	var wg sync.WaitGroup
	pingErrs := make([]error, 3)
	for i := range pingErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc, err := Dial(addr, "quiet")
			if err != nil {
				pingErrs[i] = err
				return
			}
			defer cc.Close()
			for _, line := range []string{"cd 192.168.0.1", "ping 192.168.0.2"} {
				resp, err := cc.Run(line)
				if err != nil {
					pingErrs[i] = err
					return
				}
				if resp.Error != "" {
					pingErrs[i] = fmt.Errorf("%q: [%s] %s", line, resp.Code, resp.Error)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range pingErrs {
		if err != nil {
			t.Fatalf("concurrent ping during chaos: %v", err)
		}
	}

	// The crash was counted and the daemon still reports ready.
	if srv.MetricsSnapshot()["serve.tenants.crashed"] != 1 {
		t.Errorf("tenants.crashed = %v, want 1", srv.MetricsSnapshot()["serve.tenants.crashed"])
	}
	if h := srv.Healthz(); !h.Ready {
		t.Errorf("daemon not ready after chaos: %+v", h)
	}

	// Finally: SIGTERM-equivalent drain completes within the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain after chaos: %v (after %v)", err, time.Since(start))
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after drain = %v", err)
	}
	if srv.MetricsSnapshot()["serve.drain.clean"] != 1 {
		t.Errorf("drain not clean: %v", srv.MetricsSnapshot())
	}
}

// TestCrashPathCountsAndFreshRebuild pins today's journal-less crash
// contract: the crash is counted, the session sees the typed
// ErrTenantCrashed, and — with no journal to replay — a fresh hello for
// the same name gets a freshly built simulation with none of the dead
// incarnation's session state.
func TestCrashPathCountsAndFreshRebuild(t *testing.T) {
	cfg := Config{NewRunner: chaosRunner, TenantIdle: -1, Logf: func(string, ...any) {}}
	srv, addr := startServer(t, cfg)

	c, err := Dial(addr, "crashy")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	home, err := c.Run("pwd")
	if err != nil || home.Error != "" {
		t.Fatalf("pwd: %v %q", err, home.Error)
	}
	if resp, err := c.Run("cd 192.168.0.1"); err != nil || resp.Error != "" {
		t.Fatalf("cd: %v %q", err, resp.Error)
	}
	moved, err := c.Run("pwd")
	if err != nil || moved.Error != "" {
		t.Fatalf("pwd after cd: %v %q", err, moved.Error)
	}
	if moved.Output == home.Output {
		t.Fatalf("cd did not move the shell; pwd stayed %q", home.Output)
	}

	resp, err := c.Run("boom")
	if err != nil {
		t.Fatalf("crash transport: %v", err)
	}
	if resp.Code != CodeTenantCrashed || !strings.Contains(resp.Error, ErrTenantCrashed.Error()) {
		t.Fatalf("crash response = [%s] %q, want typed %v", resp.Code, resp.Error, ErrTenantCrashed)
	}
	if got := srv.MetricsSnapshot()["serve.tenants.crashed"]; got != 1 {
		t.Errorf("tenants.crashed = %v, want 1", got)
	}

	// Same session, dead tenant: fail fast with the death certificate.
	if resp, err := c.Run("pwd"); err != nil || resp.Code != CodeTenantDead {
		t.Fatalf("post-crash on old session = (%+v, %v), want code %q", resp, err, CodeTenantDead)
	}

	// Fresh hello, fresh testbed: the shell is back at the workstation
	// root, not wherever the crashed incarnation had cd'd to.
	c2, err := Dial(addr, "crashy")
	if err != nil {
		t.Fatalf("re-hello after crash: %v", err)
	}
	defer c2.Close()
	fresh, err := c2.Run("pwd")
	if err != nil || fresh.Error != "" {
		t.Fatalf("pwd on rebuilt tenant: %v %q", err, fresh.Error)
	}
	if fresh.Output != home.Output {
		t.Errorf("rebuilt tenant pwd = %q, want the fresh root %q", fresh.Output, home.Output)
	}
	if got := srv.MetricsSnapshot()["serve.tenants.created"]; got != 2 {
		t.Errorf("tenants.created = %v, want 2", got)
	}
}
