package serve

import (
	"testing"
	"time"
)

func TestBucketRefillAndBurst(t *testing.T) {
	t0 := time.Unix(0, 0)
	b := newBucket(10, 2, t0) // 10 tokens/s, burst 2
	if !b.allow(t0) || !b.allow(t0) {
		t.Fatal("full bucket rejected its burst")
	}
	if b.allow(t0) {
		t.Fatal("empty bucket admitted a command")
	}
	// 100 ms refills exactly one token at 10/s.
	t1 := t0.Add(100 * time.Millisecond)
	if !b.allow(t1) {
		t.Fatal("refilled token rejected")
	}
	if b.allow(t1) {
		t.Fatal("bucket over-refilled")
	}
	// A long quiet period caps at the burst, never beyond.
	t2 := t1.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if !b.allow(t2) {
			t.Fatalf("token %d after refill rejected", i)
		}
	}
	if b.allow(t2) {
		t.Fatal("bucket exceeded its burst after idling")
	}
}

func TestBucketDisabled(t *testing.T) {
	t0 := time.Unix(0, 0)
	b := newBucket(-1, 0, t0)
	for i := 0; i < 100; i++ {
		if !b.allow(t0) {
			t.Fatal("disabled limiter rejected a command")
		}
	}
	var nilBucket *bucket
	if !nilBucket.allow(t0) {
		t.Fatal("nil limiter rejected a command")
	}
}
