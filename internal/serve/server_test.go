package serve

import (
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

// startServer runs a server over a loopback listener and returns its
// address. The server is shut down at test cleanup.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v after drain, want nil", err)
		}
	})
	return srv, ln.Addr().String()
}

func echoConfig() Config {
	return Config{NewRunner: func(string, uint64) (Runner, error) { return &fakeRunner{}, nil }}
}

func TestServerEndToEnd(t *testing.T) {
	srv, addr := startServer(t, echoConfig())
	c, err := Dial(addr, "lab")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Run("ping 192.168.0.2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Output != "ran:ping 192.168.0.2\n" || resp.Error != "" || resp.Cwd != "/" {
		t.Fatalf("result = %+v", resp)
	}
	h, err := c.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Live || !h.Ready || len(h.Tenants) != 1 || h.Tenants[0].Name != "lab" {
		t.Fatalf("healthz = %+v", h)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["serve.commands.total"] != 1 || m["serve.tenants.created"] != 1 {
		t.Fatalf("metrics = %v", m)
	}
	if got := srv.MetricsSnapshot()["serve.sessions.opened"]; got != 1 {
		t.Fatalf("sessions.opened = %v", got)
	}
}

func TestServerRequiresHelloForCommands(t *testing.T) {
	_, addr := startServer(t, echoConfig())
	c, err := Dial(addr, "") // probe client: no hello
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Run("ping")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != TypeError || resp.Code != CodeBadRequest {
		t.Fatalf("command before hello = %+v, want bad-request error", resp)
	}
	// Garbage on the wire gets a typed error, not a dropped session.
	if _, err := c.conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	if !c.sc.Scan() {
		t.Fatal("session died on a malformed line")
	}
	var r Response
	if err := json.Unmarshal(c.sc.Bytes(), &r); err != nil || r.Code != CodeBadRequest {
		t.Fatalf("malformed line response = %+v (%v)", r, err)
	}
}

func TestServerTenantCap(t *testing.T) {
	cfg := echoConfig()
	cfg.MaxTenants = 1
	_, addr := startServer(t, cfg)
	c1, err := Dial(addr, "first")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := Dial(addr, "second"); err == nil || !strings.Contains(err.Error(), CodeTooManyTenants) {
		t.Fatalf("second tenant admitted past the cap: %v", err)
	}
	// Re-attaching to the existing tenant is always fine.
	c2, err := Dial(addr, "first")
	if err != nil {
		t.Fatalf("re-attach to existing tenant: %v", err)
	}
	c2.Close()
}

func TestServerIdleTimeout(t *testing.T) {
	cfg := echoConfig()
	cfg.IdleTimeout = 120 * time.Millisecond
	_, addr := startServer(t, cfg)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dec := json.NewDecoder(conn)
	var resp Response
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("idle session got no goodbye: %v", err)
	}
	if resp.Type != TypeBye || resp.Reason != "idle timeout" {
		t.Fatalf("idle response = %+v", resp)
	}
}

func TestServerEdgeRetryAbsorbsRateLimit(t *testing.T) {
	cfg := echoConfig()
	cfg.RatePerSec = 20 // one token every 50ms
	cfg.Burst = 1
	cfg.EdgeBackoff = 30 * time.Millisecond
	srv, addr := startServer(t, cfg)
	c, err := Dial(addr, "lab")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Burst 1: the second command needs the edge's backoff-and-retry to
	// find a refilled token instead of bouncing to the operator.
	for i := 0; i < 2; i++ {
		resp, err := c.Run("cmd")
		if err != nil {
			t.Fatal(err)
		}
		if resp.Error != "" {
			t.Fatalf("command %d failed: %+v", i, resp)
		}
	}
	if srv.MetricsSnapshot()["serve.edge.retries"] == 0 {
		t.Fatal("edge retry loop never engaged")
	}
}

func TestServerDrainSaysGoodbye(t *testing.T) {
	srv, err := New(echoConfig())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	c, err := Dial(ln.Addr().String(), "lab")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run("warm"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after drain = %v", err)
	}
	// The parked session was woken and dismissed with a goodbye.
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if !c.sc.Scan() {
		t.Fatal("drained session got no goodbye")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil || resp.Type != TypeBye {
		t.Fatalf("drain push = %s (%v)", c.sc.Bytes(), err)
	}
	h := srv.Healthz()
	if h.Ready || !h.Draining {
		t.Fatalf("healthz after drain = %+v", h)
	}
	snap := srv.MetricsSnapshot()
	if snap["serve.drain.clean"] != 1 || snap["serve.tenants.active"] != 0 {
		t.Fatalf("drain metrics = %v", snap)
	}
	// New connections are turned away politely.
	if _, err := Dial(ln.Addr().String(), "late"); err == nil {
		t.Fatal("drained server accepted a new tenant")
	}
}
