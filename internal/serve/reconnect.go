package serve

import (
	"errors"
	"fmt"
	"time"
)

// RetrySpec bounds a client-side reconnect loop: capped exponential
// backoff, giving up after Attempts consecutive failures. The zero
// value gets the defaults.
type RetrySpec struct {
	// Initial is the first backoff (0 = 250ms), doubling per
	// consecutive failure.
	Initial time.Duration
	// Max caps the backoff (0 = 4s).
	Max time.Duration
	// Attempts is how many consecutive failures end the loop (0 = 8).
	// Any successfully delivered frame resets the count.
	Attempts int
}

func (r RetrySpec) withDefaults() RetrySpec {
	if r.Initial <= 0 {
		r.Initial = 250 * time.Millisecond
	}
	if r.Max <= 0 {
		r.Max = 4 * time.Second
	}
	if r.Attempts <= 0 {
		r.Attempts = 8
	}
	return r
}

// WatchRetry is Client.Watch wrapped in a reconnect loop: when the
// stream dies a transient death — the daemon restarted mid-stream, the
// connection dropped, the server drained — it redials with capped
// exponential backoff, re-attaches, and resumes the watch instead of
// giving up. Each successful reconnect first delivers a synthetic
// comment frame ("# reconnected (n dropped)", with the last dropped
// count seen before the cut) through fn, so a JSONL consumer can see
// the seam; comment frames count dropped=0. Like Watch, fn returning
// false ends the loop cleanly (as does a server-side elapsed ForMs).
// Non-transient rejections (unknown tenant state, quarantine, bad spec)
// and Attempts consecutive failures surface the last error. logf
// receives one line per reconnect attempt; nil discards.
func WatchRetry(addr, tenant string, spec WatchSpec, retry RetrySpec,
	fn func(line string, dropped uint64) bool, logf func(format string, args ...any)) error {
	retry = retry.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var (
		failures    int
		backoff     = retry.Initial
		lastDropped uint64
		reconnected bool
		stopped     bool
	)
	for {
		err := func() error {
			c, err := Dial(addr, tenant)
			if err != nil {
				return err
			}
			defer c.Close()
			first := true
			return c.Watch(spec, func(line string, dropped uint64) bool {
				if first {
					first = false
					failures = 0
					backoff = retry.Initial
					if reconnected {
						reconnected = false
						if !fn(fmt.Sprintf("# reconnected (%d dropped)", lastDropped), 0) {
							stopped = true
							return false
						}
					}
				}
				lastDropped = dropped
				if !fn(line, dropped) {
					stopped = true
					return false
				}
				return true
			})
		}()
		if err == nil || stopped {
			return nil
		}
		var rej *RejectedError
		if errors.As(err, &rej) && !rej.Transient && !errors.Is(err, ErrDraining) {
			return err
		}
		failures++
		if failures >= retry.Attempts {
			return fmt.Errorf("serve: watch gave up after %d attempt(s): %w", failures, err)
		}
		logf("serve: watch lost (%v); reconnecting in %v", err, backoff)
		time.Sleep(backoff)
		backoff *= 2
		if backoff > retry.Max {
			backoff = retry.Max
		}
		reconnected = true
	}
}
