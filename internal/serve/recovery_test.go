package serve

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"liteview/internal/cli"
	"liteview/internal/journal"
)

// crashSwitch arms a one-shot injected crash shared across runner
// incarnations: the supervisor rebuilds the Runner on recovery, so the
// "crash exactly once" state must live outside it.
type crashSwitch struct {
	mu    sync.Mutex
	armed bool
}

func (s *crashSwitch) arm() {
	s.mu.Lock()
	s.armed = true
	s.mu.Unlock()
}

// fire reports whether the crash should happen now, disarming it.
func (s *crashSwitch) fire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.armed {
		return false
	}
	s.armed = false
	return true
}

// flakyRunner wraps the real testbed runner: "flaky <cmd>" panics once
// while the switch is armed (before touching the simulation), and
// delegates to <cmd> otherwise — so a replayed journal re-executes the
// very command that crashed the original incarnation.
type flakyRunner struct {
	inner Runner
	sw    *crashSwitch
}

func (f *flakyRunner) Run(line string) (string, error) {
	if rest, ok := strings.CutPrefix(line, "flaky "); ok {
		if f.sw.fire() {
			panic("recovery: injected crash before " + rest)
		}
		return f.inner.Run(rest)
	}
	return f.inner.Run(line)
}

func (f *flakyRunner) Cwd() string { return f.inner.Cwd() }

func flakyFactory(sw *crashSwitch) func(string, uint64) (Runner, error) {
	return func(tenant string, seed uint64) (Runner, error) {
		r, err := testbedRunner(tenant, seed)
		if err != nil {
			return nil, err
		}
		return &flakyRunner{inner: r, sw: sw}, nil
	}
}

// recoveryScript is the diagnosis the recovery tests interrupt. The
// "flaky" command is where Test A injects its panic; with the switch
// unarmed it is a plain traceroute. health and stats at the tail make
// the byte-compare cover the post-recovery world state, not just one
// command's output.
var recoveryScript = []string{
	"cd 192.168.0.1",
	"ping 192.168.0.2",
	"flaky traceroute 192.168.0.3",
	"health 192.168.0.3",
	"ping 192.168.0.3",
	"stats",
	"pwd",
}

// recoveryReference runs recoveryScript on a bare runner (no service,
// no crash armed) and returns each command's output — the transcript a
// never-interrupted run must reproduce byte for byte.
func recoveryReference(t *testing.T, tenant string) []string {
	t.Helper()
	r, err := flakyFactory(&crashSwitch{})(tenant, TenantSeed(0, tenant))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(recoveryScript))
	for i, line := range recoveryScript {
		o, err := r.Run(line)
		if err != nil {
			t.Fatalf("reference %q: %v", line, err)
		}
		out[i] = o
	}
	// Guard against a vacuous byte-compare: the interesting commands
	// must actually say something.
	if out[2] == "" || out[3] == "" || out[5] == "" {
		t.Fatalf("reference transcript has empty outputs: %q", out)
	}
	return out
}

// dialRecovered dials a tenant that may still be mid-recovery, retrying
// the transient "recovering" rejection until the replay finishes.
func dialRecovered(t *testing.T, addr, tenant string) *Client {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		c, err := Dial(addr, tenant)
		if err == nil {
			return c
		}
		var rej *RejectedError
		if !errors.As(err, &rej) || !rej.Transient {
			t.Fatalf("hello to %q during recovery: %v", tenant, err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %q never finished recovering: %v", tenant, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashMidScriptRecoversByteIdentical is the ISSUE's first
// determinism gate: a tenant panics mid-script, the supervisor
// resurrects it by replaying the journal, and the remaining commands
// produce output byte-identical to a run that never crashed.
func TestCrashMidScriptRecoversByteIdentical(t *testing.T) {
	const tenant = "phoenix"
	want := recoveryReference(t, tenant)

	sw := &crashSwitch{}
	cfg := Config{
		NewRunner:      flakyFactory(sw),
		JournalDir:     t.TempDir(),
		RestartBackoff: time.Millisecond,
		TenantIdle:     -1,
	}
	srv, addr := startServer(t, cfg)
	sw.arm()

	c, err := Dial(addr, tenant)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(recoveryScript))
	for i := 0; i < 2; i++ {
		resp, err := c.Run(recoveryScript[i])
		if err != nil || resp.Error != "" {
			t.Fatalf("%q: %v %q", recoveryScript[i], err, resp.Error)
		}
		got[i] = resp.Output
	}
	// The armed command crashes the tenant; the session sees the typed
	// crash, not a dead connection.
	resp, err := c.Run(recoveryScript[2])
	if err != nil {
		t.Fatalf("crash command transport: %v", err)
	}
	if resp.Code != CodeTenantCrashed {
		t.Fatalf("crash code = %q (%s), want %q", resp.Code, resp.Error, CodeTenantCrashed)
	}
	c.Close()

	// Re-attach (riding out the transient recovering rejection) and run
	// the rest of the script. The journal replayed the crashed command
	// itself — the switch is disarmed now — so the world state matches
	// the uninterrupted reference exactly.
	c2 := dialRecovered(t, addr, tenant)
	defer c2.Close()
	for i := 3; i < len(recoveryScript); i++ {
		resp, err := c2.Run(recoveryScript[i])
		if err != nil || resp.Error != "" {
			t.Fatalf("post-recovery %q: %v %q", recoveryScript[i], err, resp.Error)
		}
		got[i] = resp.Output
	}
	for i := range want {
		if i == 2 {
			continue // the crashed command produced no client-visible output
		}
		if got[i] != want[i] {
			t.Errorf("command %q diverged after crash recovery\nwant:\n%s\ngot:\n%s",
				recoveryScript[i], want[i], got[i])
		}
	}

	m := srv.MetricsSnapshot()
	if m["serve.tenants.crashed"] != 1 {
		t.Errorf("tenants.crashed = %v, want 1", m["serve.tenants.crashed"])
	}
	if m["serve.recovery.restarts"] != 1 {
		t.Errorf("recovery.restarts = %v, want 1", m["serve.recovery.restarts"])
	}
	if m["serve.recovery.recovered"] != 1 {
		t.Errorf("recovery.recovered = %v, want 1", m["serve.recovery.recovered"])
	}
	// cd, ping, and the flaky traceroute were journaled before the crash.
	if m["serve.recovery.replayed_commands"] != 3 {
		t.Errorf("recovery.replayed_commands = %v, want 3", m["serve.recovery.replayed_commands"])
	}
	if h := srv.Healthz(); !h.Ready || len(h.Quarantined) != 0 {
		t.Errorf("health after recovery: %+v", h)
	}
}

// shardedDep is the deployment the sharded recovery test runs: a line
// long enough to span two medium cells (8 nodes × 18 m = 126 m against
// the ~108 m auto cell size) with three concurrent assessment lanes.
// Both cells sit inside each other's detectability ring, so sharded
// output must match the unsharded medium byte for byte.
func shardedDep(seed uint64) cli.DeploymentFlags {
	return cli.DeploymentFlags{
		Topo:       "line",
		Nodes:      8,
		Spacing:    18,
		Seed:       seed,
		Warmup:     12 * time.Second,
		Shard:      true,
		MedWorkers: 3,
	}
}

func shardedFlakyFactory(sw *crashSwitch) func(string, uint64) (Runner, error) {
	return func(tenant string, seed uint64) (Runner, error) {
		r, err := deploymentRunner(shardedDep(seed))
		if err != nil {
			return nil, err
		}
		return &flakyRunner{inner: r, sw: sw}, nil
	}
}

// shardedScript walks the diagnostic path across both cells: the ping
// and traceroute targets live in the far cell, so every command's
// output depends on cross-cell deliveries.
var shardedScript = []string{
	"cd 192.168.0.1",
	"ping 192.168.0.4",
	"flaky traceroute 192.168.0.8",
	"health 192.168.0.6",
	"ping 192.168.0.8",
	"stats",
	"pwd",
}

// TestShardedMediumCrashRecoveryByteIdentical is the sharded medium's
// §13 acceptance gate: a tenant running on a spatially sharded,
// three-lane medium panics mid-script, the supervisor resurrects it by
// replaying the journal, and the rest of the script is byte-identical
// to an uninterrupted sharded run — which is itself byte-identical to
// the plain unsharded medium on this topology.
func TestShardedMediumCrashRecoveryByteIdentical(t *testing.T) {
	const tenant = "cellular"
	seed := TenantSeed(0, tenant)

	// The deployment really is sharded and really spans cells.
	probeDep := shardedDep(seed)
	tb, err := probeDep.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cells, _, _ := tb.Med.ShardInfo(); !tb.Med.Sharded() || cells < 2 {
		t.Fatalf("deployment not sharded across cells: sharded=%v cells=%d", tb.Med.Sharded(), cells)
	}

	// Uninterrupted sharded reference, and the unsharded oracle it must
	// agree with (the sharded medium's §10 contract surfaced through the
	// whole shell stack).
	runScript := func(factory func(string, uint64) (Runner, error)) []string {
		r, err := factory(tenant, seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(shardedScript))
		for i, line := range shardedScript {
			o, err := r.Run(line)
			if err != nil {
				t.Fatalf("reference %q: %v", line, err)
			}
			out[i] = o
		}
		return out
	}
	want := runScript(shardedFlakyFactory(&crashSwitch{}))
	plain := runScript(func(_ string, seed uint64) (Runner, error) {
		dep := shardedDep(seed)
		dep.Shard = false
		dep.MedWorkers = 1
		r, err := deploymentRunner(dep)
		if err != nil {
			return nil, err
		}
		return &flakyRunner{inner: r, sw: &crashSwitch{}}, nil
	})
	for i := range want {
		if want[i] != plain[i] {
			t.Errorf("sharded output diverged from unsharded medium at %q\nunsharded:\n%s\nsharded:\n%s",
				shardedScript[i], plain[i], want[i])
		}
	}
	if want[2] == "" || want[4] == "" || want[5] == "" {
		t.Fatalf("reference transcript has empty outputs: %q", want)
	}

	// Crash the sharded tenant mid-script and recover through the journal.
	sw := &crashSwitch{}
	cfg := Config{
		NewRunner:      shardedFlakyFactory(sw),
		JournalDir:     t.TempDir(),
		RestartBackoff: time.Millisecond,
		TenantIdle:     -1,
	}
	srv, addr := startServer(t, cfg)
	sw.arm()

	c, err := Dial(addr, tenant)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(shardedScript))
	for i := 0; i < 2; i++ {
		resp, err := c.Run(shardedScript[i])
		if err != nil || resp.Error != "" {
			t.Fatalf("%q: %v %q", shardedScript[i], err, resp.Error)
		}
		got[i] = resp.Output
	}
	resp, err := c.Run(shardedScript[2])
	if err != nil {
		t.Fatalf("crash command transport: %v", err)
	}
	if resp.Code != CodeTenantCrashed {
		t.Fatalf("crash code = %q (%s), want %q", resp.Code, resp.Error, CodeTenantCrashed)
	}
	c.Close()

	c2 := dialRecovered(t, addr, tenant)
	defer c2.Close()
	for i := 3; i < len(shardedScript); i++ {
		resp, err := c2.Run(shardedScript[i])
		if err != nil || resp.Error != "" {
			t.Fatalf("post-recovery %q: %v %q", shardedScript[i], err, resp.Error)
		}
		got[i] = resp.Output
	}
	for i := range want {
		if i == 2 {
			continue // the crashed command produced no client-visible output
		}
		if got[i] != want[i] {
			t.Errorf("command %q diverged after sharded-medium crash recovery\nwant:\n%s\ngot:\n%s",
				shardedScript[i], want[i], got[i])
		}
	}

	if m := srv.MetricsSnapshot(); m["serve.recovery.recovered"] != 1 {
		t.Errorf("recovery.recovered = %v, want 1", m["serve.recovery.recovered"])
	}
}

// hardStop kills a server as close to kill -9 as an in-process test
// can: close the listener and stop every tenant loop with no drain, no
// journal compaction, no tidying. (Durability of unsynced bytes is the
// CI kill-and-recover smoke's job; here the journal files simply stay
// behind exactly as the crashed process would leave them.)
func hardStop(srv *Server) {
	srv.mu.Lock()
	ln := srv.ln
	tenants := make([]*Tenant, 0, len(srv.tenants))
	for _, tn := range srv.tenants {
		tenants = append(tenants, tn)
	}
	srv.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, tn := range tenants {
		tn.stop()
	}
	for _, tn := range tenants {
		<-tn.Done()
	}
}

// TestDaemonRestartRecoversByteIdentical is the second determinism
// gate: the whole daemon dies (no drain, no goodbye) mid-script, a new
// daemon process-equivalent recovers the fleet from the same journal
// directory, and the remaining commands are byte-identical to an
// uninterrupted run.
func TestDaemonRestartRecoversByteIdentical(t *testing.T) {
	const tenant = "lazarus"
	const split = 4 // commands run before the "kill"
	want := recoveryReference(t, tenant)

	jdir := t.TempDir()
	cfg := Config{
		NewRunner:  flakyFactory(&crashSwitch{}),
		JournalDir: jdir,
		TenantIdle: -1,
		Logf:       func(string, ...any) {},
	}

	// Daemon one: run the first half of the script, then die hard.
	srvA, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	doneA := make(chan error, 1)
	go func() { doneA <- srvA.Serve(lnA) }()
	c, err := Dial(lnA.Addr().String(), tenant)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(recoveryScript))
	for i := 0; i < split; i++ {
		resp, err := c.Run(recoveryScript[i])
		if err != nil || resp.Error != "" {
			t.Fatalf("%q: %v %q", recoveryScript[i], err, resp.Error)
		}
		got[i] = resp.Output
	}
	c.Close()
	hardStop(srvA)
	<-doneA // accept error from the closed listener; the point is it returned

	// Daemon two: same config, same journal directory, -recover.
	srvB, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := srvB.RecoverJournals()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("RecoverJournals = %d, want 1", n)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	doneB := make(chan error, 1)
	go func() { doneB <- srvB.Serve(lnB) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srvB.Shutdown(ctx)
		<-doneB
	})

	c2 := dialRecovered(t, lnB.Addr().String(), tenant)
	defer c2.Close()
	for i := split; i < len(recoveryScript); i++ {
		resp, err := c2.Run(recoveryScript[i])
		if err != nil || resp.Error != "" {
			t.Fatalf("post-restart %q: %v %q", recoveryScript[i], err, resp.Error)
		}
		got[i] = resp.Output
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("command %q diverged across daemon restart\nwant:\n%s\ngot:\n%s",
				recoveryScript[i], want[i], got[i])
		}
	}

	m := srvB.MetricsSnapshot()
	if m["serve.recovery.restored"] != 1 {
		t.Errorf("recovery.restored = %v, want 1", m["serve.recovery.restored"])
	}
	if m["serve.recovery.recovered"] != 1 {
		t.Errorf("recovery.recovered = %v, want 1", m["serve.recovery.recovered"])
	}
	if m["serve.recovery.replayed_commands"] != float64(split) {
		t.Errorf("recovery.replayed_commands = %v, want %d", m["serve.recovery.replayed_commands"], split)
	}
	st := srvB.RecoveryStatus()
	if !st.Enabled || st.Restored != 1 || len(st.Quarantined) != 0 {
		t.Errorf("RecoveryStatus = %+v", st)
	}
}

// TestPoisonCommandQuarantines: a command that deterministically
// panics crashes the tenant on every replay, so the supervisor must
// stop retrying after the restart budget, quarantine the tenant naming
// the poisonous journal entry, truncate the journal past it, reject
// hellos with the typed code — and a ClearQuarantine over the wire
// resurrects the good prefix.
func TestPoisonCommandQuarantines(t *testing.T) {
	const tenant = "toxic"
	jdir := t.TempDir()
	cfg := Config{
		NewRunner: func(string, uint64) (Runner, error) {
			return &fakeRunner{fn: func(line string) (string, error) {
				if line == "boom" {
					panic("poison: deterministic crash")
				}
				return "ran:" + line + "\n", nil
			}}, nil
		},
		JournalDir:     jdir,
		RestartBudget:  2,
		RestartBackoff: time.Millisecond,
		TenantIdle:     -1,
	}
	srv, addr := startServer(t, cfg)

	c, err := Dial(addr, tenant)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{"a", "b"} {
		if resp, err := c.Run(line); err != nil || resp.Error != "" {
			t.Fatalf("%q: %v %q", line, err, resp.Error)
		}
	}
	if resp, err := c.Run("boom"); err != nil || resp.Code != CodeTenantCrashed {
		t.Fatalf("boom = (%+v, %v), want code %q", resp, err, CodeTenantCrashed)
	}
	c.Close()

	// Supervised restarts replay [a b boom] and crash at boom every
	// time; once the budget (2) is spent the tenant is quarantined.
	var q QuarantineInfo
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := srv.RecoveryStatus()
		if len(st.Quarantined) == 1 {
			q = st.Quarantined[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant never quarantined; status %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if q.Tenant != tenant || q.Index != 2 || q.Line != "boom" || q.Restarts != 2 {
		t.Errorf("quarantine = %+v, want tenant %q entry 2 %q after 2 restarts", q, tenant, "boom")
	}
	if !strings.Contains(q.Reason, ErrPoisonCommand.Error()) {
		t.Errorf("quarantine reason %q does not name the poison command", q.Reason)
	}

	// Hellos are rejected with the typed, non-transient code.
	if _, err := Dial(addr, tenant); err == nil {
		t.Fatal("hello to quarantined tenant succeeded")
	} else {
		var rej *RejectedError
		if !errors.As(err, &rej) || rej.Code != CodeQuarantined || rej.Transient {
			t.Fatalf("quarantined hello rejection = %v, want code %q", err, CodeQuarantined)
		}
	}

	// The poison entry (and everything after) was amputated: only the
	// good prefix [a b] remains on disk.
	jn, entries, err := journal.Recover(jdir, tenant, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jn.Close()
	if len(entries) != 2 || entries[0].Line != "a" || entries[1].Line != "b" {
		t.Fatalf("journal after quarantine = %+v, want [a b]", entries)
	}

	// Clearing the quarantine over the wire resurrects the good prefix.
	probe, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	st, err := probe.Recovery(tenant)
	if err != nil {
		t.Fatalf("recovery(clear): %v", err)
	}
	if len(st.Quarantined) != 0 {
		t.Errorf("quarantine not cleared: %+v", st)
	}
	c2 := dialRecovered(t, addr, tenant)
	defer c2.Close()
	if resp, err := c2.Run("c"); err != nil || resp.Output != "ran:c\n" {
		t.Fatalf("command after clear = (%+v, %v)", resp, err)
	}

	m := srv.MetricsSnapshot()
	if m["serve.recovery.quarantined"] != 1 {
		t.Errorf("recovery.quarantined = %v, want 1", m["serve.recovery.quarantined"])
	}
	// The original panic plus two replay crashes.
	if m["serve.tenants.crashed"] != 3 {
		t.Errorf("tenants.crashed = %v, want 3", m["serve.tenants.crashed"])
	}
	if m["serve.recovery.restarts"] != 2 {
		t.Errorf("recovery.restarts = %v, want 2", m["serve.recovery.restarts"])
	}
}
