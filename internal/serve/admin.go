package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"liteview/internal/telemetry"
)

// AdminHandler serves the HTTP admin surface next to the wire protocol:
//
//	GET /healthz  liveness  — 200 while the process answers
//	GET /readyz   readiness — 200 while accepting work, 503 draining
//	GET /metricz  service metrics, Prometheus exposition format
//	              (?format=plain for the legacy "name value" lines)
//	GET /streamz  live telemetry for one tenant as Server-Sent Events
//
// cmd/lvserved mounts it on a separate loopback port so orchestrators
// probe the daemon without speaking the tenant protocol.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Healthz())
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Healthz()
		code := http.StatusOK
		if !h.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r.URL.Query().Get("format") == "plain" {
			w.Write([]byte(telemetry.FormatSnapshot(s.MetricsSnapshot())))
			return
		}
		s.met.writePrometheus(w)
	})
	mux.HandleFunc("/streamz", s.handleStreamz)
	return mux
}

// handleStreamz streams one tenant's telemetry as Server-Sent Events:
// each frame is `data: {json}` in the recorder's JSONL line format.
//
// Query parameters:
//
//	tenant  (required) tenant name; must already exist — /streamz never
//	        creates simulations
//	node, layer, kind, link, span   filter (see lvtrace)
//	replay=N   first emit the newest N already-recorded events
//	for=DUR    stop after a wall-clock duration (e.g. 30s); default
//	           streams until the client disconnects or the drain begins
//	max=N      cap streamed events per second
//
// Like a wire watch, attaching is zero-perturbation: recording is
// enabled through the tenant's command queue and the stream rides a
// Subscription, so the simulation's byte-identical determinism holds
// with any number of streamz clients attached.
func (s *Server) handleStreamz(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("tenant")
	if name == "" {
		http.Error(w, "streamz: tenant parameter is required", http.StatusBadRequest)
		return
	}
	t := s.tenantNamed(name)
	if t == nil {
		http.Error(w, "streamz: no such tenant (streamz never creates one)", http.StatusNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streamz: streaming unsupported", http.StatusInternalServerError)
		return
	}
	spec := WatchSpec{
		Node:  parseUint(q.Get("node")),
		Layer: q.Get("layer"),
		Kind:  q.Get("kind"),
		Link:  q.Get("link"),
		Span:  parseUint(q.Get("span")),
	}
	var stopAfter time.Duration
	if v := q.Get("for"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			http.Error(w, "streamz: bad for= duration: "+err.Error(), http.StatusBadRequest)
			return
		}
		stopAfter = d
	}
	maxPerSec := int(parseUint(q.Get("max")))
	if maxPerSec <= 0 {
		maxPerSec = defaultWatchRate
	}

	// Turn recording on through the command queue (the only goroutine
	// allowed to touch the recorder's deterministic state), then attach
	// the subscription before writing headers so frames can't be lost
	// between replay and live.
	if _, _, err := s.submit(t, "trace on"); err != nil {
		http.Error(w, "streamz: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	rec := t.Recorder()
	if rec == nil {
		http.Error(w, "streamz: tenant exposes no telemetry", http.StatusNotFound)
		return
	}
	sub := rec.Subscribe(spec.filter(), 0)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	s.met.inc("serve.streamz.started")
	defer s.met.inc("serve.streamz.ended")

	if n := int(parseUint(q.Get("replay"))); n > 0 {
		// `trace dump N` prints the newest N recorded events as JSONL on
		// the tenant goroutine — the race-free way to read history.
		out, _, err := s.submit(t, fmt.Sprintf("trace dump %d", n))
		if err == nil {
			for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
				if strings.HasPrefix(line, "{") {
					fmt.Fprintf(w, "data: %s\n\n", line)
				}
			}
			flusher.Flush()
		}
	}

	ctx := r.Context()
	var deadline <-chan time.Time
	if stopAfter > 0 {
		timer := time.NewTimer(stopAfter)
		defer timer.Stop()
		deadline = timer.C
	}
	batch := maxPerSec / 10
	if batch < 1 {
		batch = 1
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-deadline:
			fmt.Fprintf(w, "event: end\ndata: elapsed dropped=%d\n\n", sub.Dropped())
			flusher.Flush()
			return
		case <-tick.C:
			if s.isDraining() {
				fmt.Fprintf(w, "event: end\ndata: draining dropped=%d\n\n", sub.Dropped())
				flusher.Flush()
				return
			}
			events := sub.Poll(batch)
			for i := range events {
				fmt.Fprintf(w, "data: %s\n\n", telemetry.JSONLine(&events[i]))
			}
			if len(events) > 0 {
				s.met.add("serve.streamz.frames", len(events))
				flusher.Flush()
			}
		}
	}
}

func parseUint(s string) uint64 {
	if s == "" {
		return 0
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return v
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
