package serve

import (
	"encoding/json"
	"net/http"

	"liteview/internal/telemetry"
)

// AdminHandler serves the HTTP admin surface next to the wire protocol:
//
//	GET /healthz  liveness  — 200 while the process answers
//	GET /readyz   readiness — 200 while accepting work, 503 draining
//	GET /metricz  service metrics as "name value" text lines
//
// cmd/lvserved mounts it on a separate loopback port so orchestrators
// probe the daemon without speaking the tenant protocol.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Healthz())
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Healthz()
		code := http.StatusOK
		if !h.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("/metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(telemetry.FormatSnapshot(s.MetricsSnapshot())))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
