// Package serve turns the one-shot LiteView workstation shell into a
// long-lived multi-tenant control-plane service. A daemon (cmd/lvserved)
// owns a pool of concurrent simulated testbeds — one goroutine-confined
// simulation per tenant, so every tenant keeps the repository's
// byte-identical determinism contract (DESIGN §10) — and exposes the
// existing shell command set (ping, traceroute, health, stats, fault,
// nbr, cd/ls, ...) over a newline-delimited JSON wire protocol to many
// concurrent operator sessions (cmd/lvctl).
//
// The robustness layer is the point of the package:
//
//   - per-session lifecycle with idle timeouts and bounded per-tenant
//     command queues (ErrQueueFull instead of unbounded memory);
//   - per-tenant admission control: internal/core's three-state circuit
//     breaker (wall-clocked) plus a token-bucket rate limiter;
//   - per-command wall-clock deadlines with typed errors, and bounded
//     retry/backoff at the service edge for transient admission
//     rejections;
//   - panic isolation: a crashing tenant simulation is reaped and
//     reported (ErrTenantCrashed) without taking down the daemon;
//   - crash recovery: with a journal directory configured, every
//     accepted command is written ahead of execution (internal/journal)
//     and a supervisor resurrects crashed tenants — and, after a daemon
//     restart, whole fleets — by rebuilding the simulation from the
//     recorded seed and replaying the journal; deterministically
//     poisonous commands are quarantined after a restart budget instead
//     of crash-looping (ErrPoisonCommand, ErrTenantQuarantined);
//   - graceful drain on SIGTERM: stop accepting, finish or cancel
//     in-flight commands, say goodbye to every session, stop every
//     tenant, flush service metrics;
//   - /healthz-style liveness/readiness and service metrics published
//     through internal/telemetry.
package serve

import (
	"errors"
	"time"
)

// Typed service errors. Every admission or lifecycle failure the
// service edge can produce is one of these, so clients (and the wire
// layer's error codes) can distinguish retryable congestion from
// structural failure with errors.Is.
var (
	// ErrQueueFull reports a command rejected because the tenant's
	// bounded command queue is at capacity. Transient: back off and retry.
	ErrQueueFull = errors.New("serve: tenant command queue full")
	// ErrRateLimited reports a command rejected by the tenant's token
	// bucket. Transient: back off and retry.
	ErrRateLimited = errors.New("serve: tenant rate limit exceeded")
	// ErrDeadline reports a command that did not complete within the
	// per-command wall-clock deadline. The command may still finish on
	// the tenant simulation; its output is discarded.
	ErrDeadline = errors.New("serve: command deadline exceeded")
	// ErrTenantCrashed reports a tenant simulation that panicked while
	// executing a command. The tenant is reaped; the daemon keeps serving.
	ErrTenantCrashed = errors.New("serve: tenant simulation crashed")
	// ErrTenantDead reports a command for a tenant that has been reaped
	// (crash, idle reap, or drain). A fresh hello re-creates it.
	ErrTenantDead = errors.New("serve: tenant is dead")
	// ErrDraining reports work refused because the daemon is shutting
	// down gracefully.
	ErrDraining = errors.New("serve: server is draining")
	// ErrTooManyTenants reports a hello refused by the tenant cap.
	ErrTooManyTenants = errors.New("serve: tenant limit reached")
	// ErrTenantRecovering reports a hello for a tenant the supervisor is
	// currently resurrecting from its journal. Transient: retry shortly.
	ErrTenantRecovering = errors.New("serve: tenant is recovering")
	// ErrPoisonCommand reports a journaled command that crashes the
	// simulation deterministically on every replay. The quarantine
	// reason names the offending journal entry.
	ErrPoisonCommand = errors.New("serve: poison command")
	// ErrTenantQuarantined reports a hello for a tenant the supervisor
	// gave up on after exhausting its restart budget. Clear it with the
	// recovery wire command (lvctl -clear) or a daemon restart.
	ErrTenantQuarantined = errors.New("serve: tenant quarantined")
)

// Config tunes the service. The zero value is completed by
// (*Config).withDefaults; only NewRunner is mandatory.
type Config struct {
	// NewRunner builds the command interpreter for a named tenant from
	// the given seed. It is invoked on the tenant's own goroutine, which
	// stays the simulation's only goroutine for the tenant's whole life —
	// determinism per tenant is preserved by confinement, not by locking.
	// The seed, not the name, must be the only source of simulation
	// state: recovery rebuilds the tenant from (seed, journal) alone.
	NewRunner func(tenant string, seed uint64) (Runner, error)

	// SeedFor derives a tenant's simulation seed from its name
	// (nil = TenantSeed(0, name)). It must be a pure function: recovery
	// calls it again after a restart and expects the same answer.
	SeedFor func(tenant string) uint64

	// MaxTenants caps the number of live tenants (0 = 64).
	MaxTenants int
	// QueueDepth bounds each tenant's command queue (0 = 16).
	QueueDepth int
	// CmdTimeout is the per-command wall-clock deadline (0 = 30s).
	CmdTimeout time.Duration
	// IdleTimeout closes operator sessions with no traffic (0 = 5m).
	IdleTimeout time.Duration
	// TenantIdle reaps tenants with no attached session and no command
	// for this long (0 = 15m; negative disables reaping).
	TenantIdle time.Duration

	// RatePerSec refills each tenant's admission token bucket
	// (0 = 50/s; negative disables rate limiting).
	RatePerSec float64
	// Burst is the bucket capacity (0 = 2*RatePerSec, min 8).
	Burst float64

	// BreakerThreshold consecutive service failures (deadlines, crashes)
	// open a tenant's admission breaker (0 = core.DefaultBreakerThreshold;
	// negative disables it).
	BreakerThreshold int
	// BreakerCooldown is the open period before a half-open probe
	// (0 = core.DefaultBreakerCooldown).
	BreakerCooldown time.Duration

	// EdgeRetries bounds the service edge's retry loop for transient
	// admission rejections — rate-limit and queue-full — before the
	// rejection is surfaced to the client (0 = 3; negative disables).
	EdgeRetries int
	// EdgeBackoff is the initial backoff between edge retries, doubling
	// each attempt (0 = 25ms).
	EdgeBackoff time.Duration

	// JournalDir enables crash recovery: each tenant gets a write-ahead
	// command journal under this directory, and crashed tenants are
	// resurrected by replay instead of reaped (empty disables — crashes
	// reap the tenant as before).
	JournalDir string
	// JournalSegmentCap rotates journal segment files at this many bytes
	// (0 = 1 MiB).
	JournalSegmentCap int64
	// JournalFsyncEvery batches journal fsync: sync after this many
	// appends (0 = 8; 1 = sync every append). Appends always reach the
	// OS before the command runs regardless.
	JournalFsyncEvery int
	// RestartBudget is how many times the supervisor restarts a crashing
	// tenant before quarantining it (0 = 3).
	RestartBudget int
	// RestartBackoff is the delay before the first supervised restart,
	// doubling per consecutive attempt, capped at 32x (0 = 100ms).
	RestartBackoff time.Duration

	// Logf receives one line per service-level event (session opened,
	// tenant crashed, drain progress). Nil discards.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxTenants == 0 {
		c.MaxTenants = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.CmdTimeout == 0 {
		c.CmdTimeout = 30 * time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.TenantIdle == 0 {
		c.TenantIdle = 15 * time.Minute
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 50
	}
	if c.Burst == 0 {
		c.Burst = 2 * c.RatePerSec
		if c.Burst < 8 {
			c.Burst = 8
		}
	}
	if c.EdgeRetries == 0 {
		c.EdgeRetries = 3
	}
	if c.EdgeBackoff == 0 {
		c.EdgeBackoff = 25 * time.Millisecond
	}
	if c.RestartBudget == 0 {
		c.RestartBudget = 3
	}
	if c.RestartBackoff == 0 {
		c.RestartBackoff = 100 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// validate rejects configurations that cannot serve: a daemon started
// with a zero-capacity queue or a negative deadline would wedge or spin
// instead of failing fast at the flag edge.
func (c Config) validate() error {
	checks := []struct {
		bad  bool
		what string
	}{
		{c.MaxTenants < 0, "MaxTenants must not be negative"},
		{c.QueueDepth < 0, "QueueDepth must not be negative"},
		{c.CmdTimeout < 0, "CmdTimeout must not be negative"},
		{c.IdleTimeout < 0, "IdleTimeout must not be negative"},
		{c.JournalSegmentCap < 0, "JournalSegmentCap must not be negative"},
		{c.JournalFsyncEvery < 0, "JournalFsyncEvery must not be negative"},
		{c.RestartBudget < 0, "RestartBudget must not be negative"},
		{c.RestartBackoff < 0, "RestartBackoff must not be negative"},
	}
	for _, ck := range checks {
		if ck.bad {
			return errors.New("serve: Config." + ck.what)
		}
	}
	return nil
}

// TenantSeed derives a tenant's simulation seed from a base seed and
// the tenant name: deterministic, so the same tenant name always
// rebuilds the identical testbed — the property journal replay recovery
// stands on. It is the default Config.SeedFor (with base 0) and the
// derivation cmd/lvserved uses.
func TenantSeed(base uint64, tenant string) uint64 {
	// FNV-1a, inlined to keep this file dependency-free.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime64
	}
	return base ^ h
}
