package serve

import "time"

// bucket is a token-bucket rate limiter: capacity `burst` tokens,
// refilled continuously at `rate` tokens per second. One command costs
// one token. Callers must serialize access (the tenant mutex does).
type bucket struct {
	rate   float64 // tokens per second; <= 0 disables the limiter
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64, now time.Time) *bucket {
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// allow consumes one token if available.
func (b *bucket) allow(now time.Time) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
