package serve

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"liteview/internal/cli"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/shell"
)

// testbedRunner builds the same per-tenant deployment cmd/lvserved
// builds, shrunk for test speed: a 3-node line, short warm-up, seeded
// by the service (Config.SeedFor derives the seed from the tenant name
// exactly like the daemon does).
func testbedRunner(tenant string, seed uint64) (Runner, error) {
	return deploymentRunner(cli.DeploymentFlags{
		Topo:    "line",
		Nodes:   3,
		Spacing: 18,
		Seed:    seed,
		Warmup:  12 * time.Second, // virtual time: cheap
	})
}

// deploymentRunner builds a tenant runner for an arbitrary deployment —
// the managed stack (geographic + tree routing, LiteView, warm-up, a
// workstation shell) over whatever topology the flags describe.
func deploymentRunner(dep cli.DeploymentFlags) (Runner, error) {
	tb, err := dep.Build()
	if err != nil {
		return nil, err
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		return nil, err
	}
	if err := tb.AttachTree(phys.NodeID(1), routing.DefaultConfig()); err != nil {
		return nil, err
	}
	if _, err := tb.InstallLiteView(); err != nil {
		return nil, err
	}
	tb.WarmUp(dep.Warmup)
	ws, err := tb.NewWorkstation(tb.Node(0).Position())
	if err != nil {
		return nil, err
	}
	sh, err := shell.NewForTestbed(tb, ws, io.Discard)
	if err != nil {
		return nil, err
	}
	return NewShellRunner(sh)
}

// diagScript is the command sequence each tenant replays. It exercises
// the paper's diagnostic path (ping, traceroute, health) plus shell
// navigation, and its output depends on the tenant's simulation state —
// any cross-tenant interference would show up as changed bytes.
var diagScript = []string{
	"cd 192.168.0.1",
	"ls",
	"ping 192.168.0.2",
	"traceroute 192.168.0.3",
	"health 192.168.0.3",
	"stats",
	"pwd",
}

// runDirect replays the script on a freshly built runner with no
// service layer at all — the reference transcript.
func runDirect(t *testing.T, tenant string) string {
	t.Helper()
	r, err := testbedRunner(tenant, TenantSeed(0, tenant))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, line := range diagScript {
		out, err := r.Run(line)
		if err != nil {
			t.Fatalf("tenant %s direct %q: %v", tenant, line, err)
		}
		b.WriteString(out)
	}
	return b.String()
}

// TestParallelTenantsByteIdentical is the ISSUE's determinism gate: N
// tenants driven concurrently over real TCP sessions must each produce
// output byte-identical to a sequential, service-free run of the same
// script. Run under -race this also proves goroutine confinement of the
// per-tenant simulations.
func TestParallelTenantsByteIdentical(t *testing.T) {
	const n = 4
	tenants := make([]string, n)
	want := make([]string, n)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant-%c", 'a'+i)
		want[i] = runDirect(t, tenants[i])
		if want[i] == "" {
			t.Fatalf("tenant %s reference transcript is empty", tenants[i])
		}
	}
	// Distinct seeds must give distinct testbeds — otherwise the
	// byte-compare below could pass vacuously on identical worlds.
	if want[0] == want[1] {
		t.Fatal("tenant seeds did not diversify the testbeds")
	}

	_, addr := startServer(t, Config{NewRunner: testbedRunner})
	var wg sync.WaitGroup
	got := make([]string, n)
	errs := make([]error, n)
	for i := range tenants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, tenants[i])
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			var b strings.Builder
			for _, line := range diagScript {
				resp, err := c.Run(line)
				if err != nil {
					errs[i] = fmt.Errorf("%s %q: %w", tenants[i], line, err)
					return
				}
				if resp.Error != "" {
					errs[i] = fmt.Errorf("%s %q: [%s] %s", tenants[i], line, resp.Code, resp.Error)
					return
				}
				b.WriteString(resp.Output)
			}
			got[i] = b.String()
		}(i)
	}
	wg.Wait()
	for i := range tenants {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("tenant %s: concurrent service output diverged from sequential run\nwant %d bytes:\n%s\ngot %d bytes:\n%s",
				tenants[i], len(want[i]), want[i], len(got[i]), got[i])
		}
	}
}

// TestReconnectReplaysSameWorld: the tenant seed derivation means a
// second session attaching to the same tenant name (after the first
// one is gone and the tenant was rebuilt) sees the same testbed.
func TestReconnectReplaysSameWorld(t *testing.T) {
	cfg := Config{NewRunner: testbedRunner, TenantIdle: -1}
	srv, addr := startServer(t, cfg)
	run := func() string {
		c, err := Dial(addr, "replay")
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var b strings.Builder
		for _, line := range []string{"cd 192.168.0.1", "traceroute 192.168.0.3"} {
			resp, err := c.Run(line)
			if err != nil || resp.Error != "" {
				t.Fatalf("%q: %v %q", line, err, resp.Error)
			}
			b.WriteString(resp.Output)
		}
		return b.String()
	}
	first := run()

	// Drop the tenant the hard way (stop it as the janitor would), then
	// a fresh hello must rebuild an identical world.
	srv.mu.Lock()
	tn := srv.tenants["replay"]
	delete(srv.tenants, "replay")
	srv.mu.Unlock()
	if tn == nil {
		t.Fatal("tenant missing after first session")
	}
	tn.stop()
	<-tn.Done()

	if second := run(); second != first {
		t.Errorf("rebuilt tenant diverged:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}
