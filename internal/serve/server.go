package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"liteview/internal/phys"
	"liteview/internal/telemetry"
)

// Server is the control-plane daemon: it accepts operator connections,
// multiplexes them onto the tenant pool, and survives misbehaving
// sessions and crashing tenants. One Server per process; drive it with
// Serve and stop it with Shutdown.
type Server struct {
	cfg   Config
	clock func() time.Time
	start time.Time
	met   *metrics

	mu       sync.Mutex
	ln       net.Listener
	serving  bool
	draining bool
	tenants  map[string]*Tenant
	sessions map[*session]struct{}
	janitor  chan struct{} // closed to stop the idle-tenant reaper

	wg sync.WaitGroup // session goroutines
}

// session is one operator connection's state.
type session struct {
	conn net.Conn
	enc  *json.Encoder
	// writeMu serializes wire writes: the handler goroutine and the
	// session's watch streamer (if any) share the connection.
	writeMu  sync.Mutex
	tenant   *Tenant
	draining atomic.Bool
	// watch is the live telemetry stream riding this session, nil when
	// none. Touched only by the session's handler goroutine.
	watch *sessionWatch
}

// sessionWatch is one live telemetry stream: a subscription on the
// tenant's recorder drained by a streamer goroutine into event frames.
type sessionWatch struct {
	sub   *telemetry.Subscription
	stop  chan struct{}
	done  chan struct{}
	stop1 sync.Once
}

func (w *sessionWatch) halt() { w.stop1.Do(func() { close(w.stop) }) }

// defaultWatchRate caps streamed frames per second when the client's
// WatchSpec doesn't say: high enough for a busy tenant, low enough
// that one firehose watch can't starve the wire.
const defaultWatchRate = 2000

// New builds a server. cfg.NewRunner is mandatory.
func New(cfg Config) (*Server, error) {
	if cfg.NewRunner == nil {
		return nil, errors.New("serve: Config.NewRunner is required")
	}
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		clock:    time.Now,
		start:    time.Now(),
		met:      newMetrics(),
		tenants:  make(map[string]*Tenant),
		sessions: make(map[*session]struct{}),
		janitor:  make(chan struct{}),
	}, nil
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil on a graceful drain and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	s.ln = ln
	s.serving = true
	s.mu.Unlock()
	if s.cfg.TenantIdle > 0 {
		go s.runJanitor()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return err
		}
		sess := &session{conn: conn, enc: json.NewEncoder(conn)}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.send(sess, Response{Type: TypeBye, Reason: "draining"})
			conn.Close()
			continue
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.met.inc("serve.sessions.opened")
		s.met.gaugeAdd("serve.sessions.active", 1)
		s.wg.Add(1)
		go s.handle(sess)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// send writes one response, reporting whether the peer is still there.
func (s *Server) send(sess *session, resp Response) bool {
	sess.writeMu.Lock()
	err := sess.enc.Encode(resp)
	sess.writeMu.Unlock()
	if err != nil {
		s.met.inc("serve.sessions.write_errors")
		return false
	}
	return true
}

// handle runs one session to completion: read a line, run it, write the
// result. Any exit path reaps the session — the deferred block is the
// single place session resources are released, so a panicking peer
// handler can never leak a connection or a tenant attachment.
func (s *Server) handle(sess *session) {
	defer func() {
		sess.conn.Close()
		if sess.watch != nil {
			// Conn is closed, so a streamer stuck in a write unblocks;
			// waiting on done guarantees the subscription detaches before
			// the session is forgotten.
			sess.watch.halt()
			<-sess.watch.done
		}
		if sess.tenant != nil {
			sess.tenant.detach()
		}
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		s.met.inc("serve.sessions.closed")
		s.met.gaugeAdd("serve.sessions.active", -1)
		s.wg.Done()
	}()
	sc := newLineScanner(sess.conn)
	for {
		if s.isDraining() || sess.draining.Load() {
			s.send(sess, Response{Type: TypeBye, Reason: "draining"})
			return
		}
		if s.cfg.IdleTimeout > 0 {
			if sess.watch != nil {
				// A watching client legitimately goes quiet for the whole
				// stream; drain still wakes the read via SetReadDeadline.
				sess.conn.SetReadDeadline(time.Time{})
			} else {
				sess.conn.SetReadDeadline(s.clock().Add(s.cfg.IdleTimeout))
			}
		}
		if !sc.Scan() {
			if s.isDraining() || sess.draining.Load() {
				s.send(sess, Response{Type: TypeBye, Reason: "draining"})
				return
			}
			var ne net.Error
			if errors.As(sc.Err(), &ne) && ne.Timeout() {
				s.met.inc("serve.sessions.idle_timeouts")
				s.send(sess, Response{Type: TypeBye, Reason: "idle timeout"})
			}
			return // peer hung up (or flooded the line buffer): reap
		}
		var req Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			if !s.send(sess, Response{Type: TypeError, Code: CodeBadRequest,
				Error: fmt.Sprintf("serve: bad request: %v", err)}) {
				return
			}
			continue
		}
		if !s.handleRequest(sess, req) {
			return
		}
	}
}

// handleRequest dispatches one request; false ends the session.
func (s *Server) handleRequest(sess *session, req Request) bool {
	switch req.Type {
	case TypeHello:
		if sess.tenant != nil {
			return s.send(sess, Response{Type: TypeError, Code: CodeBadRequest,
				Error: "serve: session already attached to tenant " + sess.tenant.Name()})
		}
		t, err := s.tenantFor(req.Tenant)
		if err != nil {
			code, transient := errCode(err)
			return s.send(sess, Response{Type: TypeError, Code: code, Transient: transient, Error: err.Error()})
		}
		sess.tenant = t
		t.attach()
		return s.send(sess, Response{Type: TypeHelloOK, Tenant: t.Name()})
	case TypeCmd:
		if sess.tenant == nil {
			return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeBadRequest,
				Error: "serve: say hello (attach to a tenant) before sending commands"})
		}
		if s.isDraining() {
			return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeDraining,
				Error: ErrDraining.Error()})
		}
		started := s.clock()
		out, cwd, err := s.submit(sess.tenant, req.Line)
		s.met.observe("serve.cmd_ms", telemetry.DefaultRTTBucketsMs(),
			float64(s.clock().Sub(started).Microseconds())/1000)
		s.met.inc("serve.commands.total")
		resp := Response{Type: TypeResult, ID: req.ID, Output: out, Cwd: cwd}
		if err != nil {
			resp.Error = err.Error()
			resp.Code, resp.Transient = errCode(err)
			s.met.inc("serve.commands.errors")
			s.met.inc("serve.errors." + resp.Code)
		}
		return s.send(sess, resp)
	case TypeWatch:
		return s.startWatch(sess, req)
	case TypeUnwatch:
		if sess.watch == nil {
			return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeBadRequest,
				Error: "serve: no watch active on this session"})
		}
		sess.watch.halt()
		<-sess.watch.done // streamer sends watch-end before exiting
		sess.watch = nil
		return true
	case TypeHealthz:
		h := s.Healthz()
		return s.send(sess, Response{Type: TypeHealthz, Health: &h})
	case TypeMetrics:
		return s.send(sess, Response{Type: TypeMetrics, Metrics: s.MetricsSnapshot()})
	case TypeBye:
		s.send(sess, Response{Type: TypeBye, Reason: "goodbye"})
		return false
	default:
		return s.send(sess, Response{Type: TypeError, Code: CodeBadRequest,
			Error: fmt.Sprintf("serve: unknown request type %q", req.Type)})
	}
}

// startWatch begins streaming telemetry frames to the session. The
// tenant's recording is switched on by submitting `trace on` through
// the command queue — the one goroutine allowed to touch the recorder's
// deterministic state — and the stream itself rides a Subscription, the
// recorder's cross-goroutine-safe (and zero-perturbation) surface.
func (s *Server) startWatch(sess *session, req Request) bool {
	if sess.tenant == nil {
		return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeBadRequest,
			Error: "serve: say hello (attach to a tenant) before watching"})
	}
	if sess.watch != nil {
		select {
		case <-sess.watch.done:
			sess.watch = nil // the streamer already ended (elapsed/drain)
		default:
			return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeBadRequest,
				Error: "serve: session already has a watch; unwatch first"})
		}
	}
	if s.isDraining() {
		return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeDraining,
			Error: ErrDraining.Error()})
	}
	spec := WatchSpec{}
	if req.Watch != nil {
		spec = *req.Watch
	}
	// Going through the queue also synchronizes with the tenant build:
	// once the command returns, the recorder pointer is published.
	if _, _, err := s.submit(sess.tenant, "trace on"); err != nil {
		code, transient := errCode(err)
		return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: code,
			Transient: transient, Error: err.Error()})
	}
	rec := sess.tenant.Recorder()
	if rec == nil {
		return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeBadRequest,
			Error: "serve: tenant exposes no telemetry"})
	}
	w := &sessionWatch{
		sub:  rec.Subscribe(spec.filter(), spec.Depth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if !s.send(sess, Response{Type: TypeWatchOK, ID: req.ID, Tenant: sess.tenant.Name()}) {
		w.sub.Close()
		return false
	}
	sess.watch = w
	s.met.inc("serve.watch.started")
	go s.runWatch(sess, w, spec, req.ID)
	return true
}

// filter maps the wire spec onto the telemetry filter.
func (spec WatchSpec) filter() telemetry.Filter {
	return telemetry.Filter{
		Node:  phys.NodeID(spec.Node),
		Layer: telemetry.Layer(spec.Layer),
		Kind:  spec.Kind,
		Link:  spec.Link,
		Span:  spec.Span,
	}
}

// runWatch is the streamer goroutine: drain the subscription on a wall
// ticker, bounded per tick, until unwatch, drain, or a dead peer. It
// always closes the subscription and, when the wire still works, says
// watch-end so the client can tell a finished stream from a cut one.
func (s *Server) runWatch(sess *session, w *sessionWatch, spec WatchSpec, id uint64) {
	defer close(w.done)
	defer w.sub.Close()
	maxPerSec := spec.MaxPerSec
	if maxPerSec <= 0 {
		maxPerSec = defaultWatchRate
	}
	var deadline <-chan time.Time
	if spec.ForMs > 0 {
		timer := time.NewTimer(time.Duration(spec.ForMs) * time.Millisecond)
		defer timer.Stop()
		deadline = timer.C
	}
	const tickEvery = 100 * time.Millisecond
	batch := maxPerSec / 10
	if batch < 1 {
		batch = 1
	}
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()
	end := func(reason string) {
		s.send(sess, Response{Type: TypeWatchEnd, ID: id, Reason: reason, Dropped: w.sub.Dropped()})
		s.met.inc("serve.watch.ended")
	}
	for {
		select {
		case <-w.stop:
			end("unwatch")
			return
		case <-deadline:
			end("elapsed")
			return
		case <-tick.C:
			if s.isDraining() || sess.draining.Load() {
				end("draining")
				return
			}
			events := w.sub.Poll(batch)
			for i := range events {
				if !s.send(sess, Response{Type: TypeEvent, ID: id,
					Event: telemetry.JSONLine(&events[i]), Dropped: w.sub.Dropped()}) {
					s.met.inc("serve.watch.ended")
					return
				}
			}
			if n := len(events); n > 0 {
				s.met.add("serve.watch.frames", n)
			}
		}
	}
}

// submit runs one command with the service edge's bounded retry loop:
// transient admission rejections (rate limit, full queue) back off and
// try again a few times before the rejection reaches the operator.
// Everything else — including the command's own errors — passes through
// untouched; retrying a command that ran would re-run it on the
// simulation.
func (s *Server) submit(t *Tenant, line string) (string, string, error) {
	backoff := s.cfg.EdgeBackoff
	for attempt := 0; ; attempt++ {
		out, cwd, err := t.Submit(line, s.cfg.CmdTimeout)
		if err == nil ||
			(!errors.Is(err, ErrRateLimited) && !errors.Is(err, ErrQueueFull)) ||
			attempt >= s.cfg.EdgeRetries || s.isDraining() {
			return out, cwd, err
		}
		s.met.inc("serve.edge.retries")
		time.Sleep(backoff)
		backoff *= 2
	}
}

// tenantNamed returns the named tenant only if it already exists and is
// alive — unlike tenantFor it never creates one. The admin streaming
// endpoints use it so a stray curl can't spin up a simulation.
func (s *Server) tenantNamed(name string) *Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok && t.Dead() == nil {
		return t
	}
	return nil
}

// tenantFor returns the named live tenant, creating it (and its
// simulation goroutine) on first use. Dead tenants still in the table
// are replaced — a fresh hello after a crash gets a fresh testbed.
func (s *Server) tenantFor(name string) (*Tenant, error) {
	if name == "" {
		return nil, errors.New("serve: hello needs a tenant name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if t, ok := s.tenants[name]; ok && t.Dead() == nil {
		return t, nil
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		if t, ok := s.tenants[name]; !ok || t.Dead() == nil {
			return nil, fmt.Errorf("%w (%d)", ErrTooManyTenants, s.cfg.MaxTenants)
		}
	}
	t := newTenant(name, s.cfg, s.clock, s.reapCrashed)
	s.tenants[name] = t
	s.met.inc("serve.tenants.created")
	s.met.gaugeAdd("serve.tenants.active", 1)
	s.cfg.Logf("serve: tenant %q created", name)
	return t, nil
}

// reapCrashed is the tenant loop's crash hook: drop the corpse from the
// pool so the next hello builds a fresh simulation.
func (s *Server) reapCrashed(name string, reason error) {
	s.met.inc("serve.tenants.crashed")
	s.mu.Lock()
	if t, ok := s.tenants[name]; ok && t.Dead() != nil {
		delete(s.tenants, name)
		s.met.gaugeAdd("serve.tenants.active", -1)
	}
	s.mu.Unlock()
	s.cfg.Logf("serve: tenant %q reaped: %v", name, reason)
}

// runJanitor reaps tenants that have had no session and no command for
// cfg.TenantIdle.
func (s *Server) runJanitor() {
	interval := s.cfg.TenantIdle / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.janitor:
			return
		case <-tick.C:
			now := s.clock()
			s.mu.Lock()
			var idle []*Tenant
			for name, t := range s.tenants {
				if t.idleFor(now, s.cfg.TenantIdle) {
					delete(s.tenants, name)
					idle = append(idle, t)
				}
			}
			s.mu.Unlock()
			for _, t := range idle {
				t.stop()
				<-t.Done()
				s.met.inc("serve.tenants.reaped_idle")
				s.met.gaugeAdd("serve.tenants.active", -1)
				s.cfg.Logf("serve: tenant %q reaped (idle)", t.Name())
			}
		}
	}
}

// Shutdown drains the server: stop accepting, wake blocked readers so
// every session finishes (or abandons) its in-flight command and gets a
// goodbye, then stop every tenant simulation. It returns nil on a clean
// drain within ctx and ctx's error if the deadline forced it — in that
// case remaining connections are closed hard.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if alreadyDraining {
		return errors.New("serve: shutdown already in progress")
	}
	s.met.inc("serve.drain.started")
	s.cfg.Logf("serve: draining (%d session(s))", len(sessions))
	if ln != nil {
		ln.Close()
	}
	close(s.janitor)
	// Wake sessions parked in a read so they notice the drain; sessions
	// inside a command finish it first — the response still goes out.
	for _, sess := range sessions {
		sess.draining.Store(true)
		sess.conn.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	clean := true
	select {
	case <-done:
	case <-ctx.Done():
		clean = false
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
	}
	// Stop the tenant pool. Each loop exits after its in-flight command.
	s.mu.Lock()
	tenants := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.tenants = make(map[string]*Tenant)
	s.mu.Unlock()
	for _, t := range tenants {
		t.stop()
	}
	for _, t := range tenants {
		select {
		case <-t.Done():
			s.met.gaugeAdd("serve.tenants.active", -1)
		case <-ctx.Done():
			clean = false
		}
	}
	if !clean {
		s.met.inc("serve.drain.forced")
		s.cfg.Logf("serve: drain deadline exceeded, connections closed hard")
		return ctx.Err()
	}
	s.met.inc("serve.drain.clean")
	s.cfg.Logf("serve: drain complete")
	return nil
}

// Healthz reports liveness and readiness: Live while the process
// answers, Ready only while accepting new work.
func (s *Server) Healthz() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Live:     true,
		Ready:    s.serving && !s.draining,
		Draining: s.draining,
		Sessions: len(s.sessions),
		UptimeMs: s.clock().Sub(s.start).Milliseconds(),
	}
	for _, t := range s.tenants {
		h.Tenants = append(h.Tenants, t.Info())
	}
	sort.Slice(h.Tenants, func(i, j int) bool { return h.Tenants[i].Name < h.Tenants[j].Name })
	return h
}

// MetricsSnapshot flattens the service metrics registry (see
// internal/telemetry) to named scalars.
func (s *Server) MetricsSnapshot() map[string]float64 {
	return s.met.snapshot()
}

// metrics wraps a telemetry.Registry with the lock the concurrent
// service needs (the registry itself is single-writer by design — the
// simulators own theirs; the service shares one across sessions).
type metrics struct {
	mu  sync.Mutex
	reg *telemetry.Registry
}

func newMetrics() *metrics { return &metrics{reg: telemetry.NewRegistry()} }

func (m *metrics) inc(name string) {
	m.mu.Lock()
	m.reg.Counter(name).Inc()
	m.mu.Unlock()
}

func (m *metrics) add(name string, n int) {
	m.mu.Lock()
	m.reg.Counter(name).Add(uint64(n))
	m.mu.Unlock()
}

func (m *metrics) gaugeAdd(name string, d float64) {
	m.mu.Lock()
	m.reg.Gauge(name).Add(d)
	m.mu.Unlock()
}

func (m *metrics) observe(name string, bounds []float64, v float64) {
	m.mu.Lock()
	m.reg.Histogram(name, bounds).Observe(v)
	m.mu.Unlock()
}

func (m *metrics) snapshot() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Snapshot()
}

func (m *metrics) writePrometheus(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.WritePrometheus(w)
}
