package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"liteview/internal/telemetry"
)

// Server is the control-plane daemon: it accepts operator connections,
// multiplexes them onto the tenant pool, and survives misbehaving
// sessions and crashing tenants. One Server per process; drive it with
// Serve and stop it with Shutdown.
type Server struct {
	cfg   Config
	clock func() time.Time
	start time.Time
	met   *metrics

	mu       sync.Mutex
	ln       net.Listener
	serving  bool
	draining bool
	tenants  map[string]*Tenant
	sessions map[*session]struct{}
	janitor  chan struct{} // closed to stop the idle-tenant reaper

	wg sync.WaitGroup // session goroutines
}

// session is one operator connection's state.
type session struct {
	conn     net.Conn
	enc      *json.Encoder
	tenant   *Tenant
	draining atomic.Bool
}

// New builds a server. cfg.NewRunner is mandatory.
func New(cfg Config) (*Server, error) {
	if cfg.NewRunner == nil {
		return nil, errors.New("serve: Config.NewRunner is required")
	}
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		clock:    time.Now,
		start:    time.Now(),
		met:      newMetrics(),
		tenants:  make(map[string]*Tenant),
		sessions: make(map[*session]struct{}),
		janitor:  make(chan struct{}),
	}, nil
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil on a graceful drain and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	s.ln = ln
	s.serving = true
	s.mu.Unlock()
	if s.cfg.TenantIdle > 0 {
		go s.runJanitor()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return err
		}
		sess := &session{conn: conn, enc: json.NewEncoder(conn)}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.send(sess, Response{Type: TypeBye, Reason: "draining"})
			conn.Close()
			continue
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.met.inc("serve.sessions.opened")
		s.met.gaugeAdd("serve.sessions.active", 1)
		s.wg.Add(1)
		go s.handle(sess)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// send writes one response, reporting whether the peer is still there.
func (s *Server) send(sess *session, resp Response) bool {
	if err := sess.enc.Encode(resp); err != nil {
		s.met.inc("serve.sessions.write_errors")
		return false
	}
	return true
}

// handle runs one session to completion: read a line, run it, write the
// result. Any exit path reaps the session — the deferred block is the
// single place session resources are released, so a panicking peer
// handler can never leak a connection or a tenant attachment.
func (s *Server) handle(sess *session) {
	defer func() {
		sess.conn.Close()
		if sess.tenant != nil {
			sess.tenant.detach()
		}
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		s.met.inc("serve.sessions.closed")
		s.met.gaugeAdd("serve.sessions.active", -1)
		s.wg.Done()
	}()
	sc := newLineScanner(sess.conn)
	for {
		if s.isDraining() || sess.draining.Load() {
			s.send(sess, Response{Type: TypeBye, Reason: "draining"})
			return
		}
		if s.cfg.IdleTimeout > 0 {
			sess.conn.SetReadDeadline(s.clock().Add(s.cfg.IdleTimeout))
		}
		if !sc.Scan() {
			if s.isDraining() || sess.draining.Load() {
				s.send(sess, Response{Type: TypeBye, Reason: "draining"})
				return
			}
			var ne net.Error
			if errors.As(sc.Err(), &ne) && ne.Timeout() {
				s.met.inc("serve.sessions.idle_timeouts")
				s.send(sess, Response{Type: TypeBye, Reason: "idle timeout"})
			}
			return // peer hung up (or flooded the line buffer): reap
		}
		var req Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			if !s.send(sess, Response{Type: TypeError, Code: CodeBadRequest,
				Error: fmt.Sprintf("serve: bad request: %v", err)}) {
				return
			}
			continue
		}
		if !s.handleRequest(sess, req) {
			return
		}
	}
}

// handleRequest dispatches one request; false ends the session.
func (s *Server) handleRequest(sess *session, req Request) bool {
	switch req.Type {
	case TypeHello:
		if sess.tenant != nil {
			return s.send(sess, Response{Type: TypeError, Code: CodeBadRequest,
				Error: "serve: session already attached to tenant " + sess.tenant.Name()})
		}
		t, err := s.tenantFor(req.Tenant)
		if err != nil {
			code, transient := errCode(err)
			return s.send(sess, Response{Type: TypeError, Code: code, Transient: transient, Error: err.Error()})
		}
		sess.tenant = t
		t.attach()
		return s.send(sess, Response{Type: TypeHelloOK, Tenant: t.Name()})
	case TypeCmd:
		if sess.tenant == nil {
			return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeBadRequest,
				Error: "serve: say hello (attach to a tenant) before sending commands"})
		}
		if s.isDraining() {
			return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeDraining,
				Error: ErrDraining.Error()})
		}
		started := s.clock()
		out, cwd, err := s.submit(sess.tenant, req.Line)
		s.met.observe("serve.cmd_ms", telemetry.DefaultRTTBucketsMs(),
			float64(s.clock().Sub(started).Microseconds())/1000)
		s.met.inc("serve.commands.total")
		resp := Response{Type: TypeResult, ID: req.ID, Output: out, Cwd: cwd}
		if err != nil {
			resp.Error = err.Error()
			resp.Code, resp.Transient = errCode(err)
			s.met.inc("serve.commands.errors")
			s.met.inc("serve.errors." + resp.Code)
		}
		return s.send(sess, resp)
	case TypeHealthz:
		h := s.Healthz()
		return s.send(sess, Response{Type: TypeHealthz, Health: &h})
	case TypeMetrics:
		return s.send(sess, Response{Type: TypeMetrics, Metrics: s.MetricsSnapshot()})
	case TypeBye:
		s.send(sess, Response{Type: TypeBye, Reason: "goodbye"})
		return false
	default:
		return s.send(sess, Response{Type: TypeError, Code: CodeBadRequest,
			Error: fmt.Sprintf("serve: unknown request type %q", req.Type)})
	}
}

// submit runs one command with the service edge's bounded retry loop:
// transient admission rejections (rate limit, full queue) back off and
// try again a few times before the rejection reaches the operator.
// Everything else — including the command's own errors — passes through
// untouched; retrying a command that ran would re-run it on the
// simulation.
func (s *Server) submit(t *Tenant, line string) (string, string, error) {
	backoff := s.cfg.EdgeBackoff
	for attempt := 0; ; attempt++ {
		out, cwd, err := t.Submit(line, s.cfg.CmdTimeout)
		if err == nil ||
			(!errors.Is(err, ErrRateLimited) && !errors.Is(err, ErrQueueFull)) ||
			attempt >= s.cfg.EdgeRetries || s.isDraining() {
			return out, cwd, err
		}
		s.met.inc("serve.edge.retries")
		time.Sleep(backoff)
		backoff *= 2
	}
}

// tenantFor returns the named live tenant, creating it (and its
// simulation goroutine) on first use. Dead tenants still in the table
// are replaced — a fresh hello after a crash gets a fresh testbed.
func (s *Server) tenantFor(name string) (*Tenant, error) {
	if name == "" {
		return nil, errors.New("serve: hello needs a tenant name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if t, ok := s.tenants[name]; ok && t.Dead() == nil {
		return t, nil
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		if t, ok := s.tenants[name]; !ok || t.Dead() == nil {
			return nil, fmt.Errorf("%w (%d)", ErrTooManyTenants, s.cfg.MaxTenants)
		}
	}
	t := newTenant(name, s.cfg, s.clock, s.reapCrashed)
	s.tenants[name] = t
	s.met.inc("serve.tenants.created")
	s.met.gaugeAdd("serve.tenants.active", 1)
	s.cfg.Logf("serve: tenant %q created", name)
	return t, nil
}

// reapCrashed is the tenant loop's crash hook: drop the corpse from the
// pool so the next hello builds a fresh simulation.
func (s *Server) reapCrashed(name string, reason error) {
	s.met.inc("serve.tenants.crashed")
	s.mu.Lock()
	if t, ok := s.tenants[name]; ok && t.Dead() != nil {
		delete(s.tenants, name)
		s.met.gaugeAdd("serve.tenants.active", -1)
	}
	s.mu.Unlock()
	s.cfg.Logf("serve: tenant %q reaped: %v", name, reason)
}

// runJanitor reaps tenants that have had no session and no command for
// cfg.TenantIdle.
func (s *Server) runJanitor() {
	interval := s.cfg.TenantIdle / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.janitor:
			return
		case <-tick.C:
			now := s.clock()
			s.mu.Lock()
			var idle []*Tenant
			for name, t := range s.tenants {
				if t.idleFor(now, s.cfg.TenantIdle) {
					delete(s.tenants, name)
					idle = append(idle, t)
				}
			}
			s.mu.Unlock()
			for _, t := range idle {
				t.stop()
				<-t.Done()
				s.met.inc("serve.tenants.reaped_idle")
				s.met.gaugeAdd("serve.tenants.active", -1)
				s.cfg.Logf("serve: tenant %q reaped (idle)", t.Name())
			}
		}
	}
}

// Shutdown drains the server: stop accepting, wake blocked readers so
// every session finishes (or abandons) its in-flight command and gets a
// goodbye, then stop every tenant simulation. It returns nil on a clean
// drain within ctx and ctx's error if the deadline forced it — in that
// case remaining connections are closed hard.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if alreadyDraining {
		return errors.New("serve: shutdown already in progress")
	}
	s.met.inc("serve.drain.started")
	s.cfg.Logf("serve: draining (%d session(s))", len(sessions))
	if ln != nil {
		ln.Close()
	}
	close(s.janitor)
	// Wake sessions parked in a read so they notice the drain; sessions
	// inside a command finish it first — the response still goes out.
	for _, sess := range sessions {
		sess.draining.Store(true)
		sess.conn.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	clean := true
	select {
	case <-done:
	case <-ctx.Done():
		clean = false
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
	}
	// Stop the tenant pool. Each loop exits after its in-flight command.
	s.mu.Lock()
	tenants := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.tenants = make(map[string]*Tenant)
	s.mu.Unlock()
	for _, t := range tenants {
		t.stop()
	}
	for _, t := range tenants {
		select {
		case <-t.Done():
			s.met.gaugeAdd("serve.tenants.active", -1)
		case <-ctx.Done():
			clean = false
		}
	}
	if !clean {
		s.met.inc("serve.drain.forced")
		s.cfg.Logf("serve: drain deadline exceeded, connections closed hard")
		return ctx.Err()
	}
	s.met.inc("serve.drain.clean")
	s.cfg.Logf("serve: drain complete")
	return nil
}

// Healthz reports liveness and readiness: Live while the process
// answers, Ready only while accepting new work.
func (s *Server) Healthz() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Live:     true,
		Ready:    s.serving && !s.draining,
		Draining: s.draining,
		Sessions: len(s.sessions),
		UptimeMs: s.clock().Sub(s.start).Milliseconds(),
	}
	for _, t := range s.tenants {
		h.Tenants = append(h.Tenants, t.Info())
	}
	sort.Slice(h.Tenants, func(i, j int) bool { return h.Tenants[i].Name < h.Tenants[j].Name })
	return h
}

// MetricsSnapshot flattens the service metrics registry (see
// internal/telemetry) to named scalars.
func (s *Server) MetricsSnapshot() map[string]float64 {
	return s.met.snapshot()
}

// metrics wraps a telemetry.Registry with the lock the concurrent
// service needs (the registry itself is single-writer by design — the
// simulators own theirs; the service shares one across sessions).
type metrics struct {
	mu  sync.Mutex
	reg *telemetry.Registry
}

func newMetrics() *metrics { return &metrics{reg: telemetry.NewRegistry()} }

func (m *metrics) inc(name string) {
	m.mu.Lock()
	m.reg.Counter(name).Inc()
	m.mu.Unlock()
}

func (m *metrics) gaugeAdd(name string, d float64) {
	m.mu.Lock()
	m.reg.Gauge(name).Add(d)
	m.mu.Unlock()
}

func (m *metrics) observe(name string, bounds []float64, v float64) {
	m.mu.Lock()
	m.reg.Histogram(name, bounds).Observe(v)
	m.mu.Unlock()
}

func (m *metrics) snapshot() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Snapshot()
}
