package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"liteview/internal/journal"
	"liteview/internal/phys"
	"liteview/internal/telemetry"
)

// Server is the control-plane daemon: it accepts operator connections,
// multiplexes them onto the tenant pool, and survives misbehaving
// sessions and crashing tenants. One Server per process; drive it with
// Serve and stop it with Shutdown. With Config.JournalDir set it is
// also the supervisor: crashed tenants are resurrected from their
// write-ahead journals (call RecoverJournals before Serve to restore a
// previous process's fleet).
type Server struct {
	cfg   Config
	clock func() time.Time
	start time.Time
	met   *metrics

	mu       sync.Mutex
	ln       net.Listener
	serving  bool
	draining bool
	tenants  map[string]*Tenant
	sessions map[*session]struct{}
	janitor  chan struct{} // closed to stop the idle-tenant reaper
	// restarts counts consecutive supervised restarts per tenant; reset
	// on a successful replay.
	restarts map[string]int
	// quarantined holds tenants the supervisor gave up on.
	quarantined map[string]QuarantineInfo
	// journaled marks tenant names whose journal this process owns; a
	// hello for a journaled name whose tenant is dead or missing waits
	// for the supervisor (ErrTenantRecovering) instead of wiping the
	// journal with a fresh Create.
	journaled map[string]bool
	restored  int // tenants resurrected by RecoverJournals

	wg sync.WaitGroup // session goroutines
}

// session is one operator connection's state.
type session struct {
	conn net.Conn
	enc  *json.Encoder
	// writeMu serializes wire writes: the handler goroutine and the
	// session's watch streamer (if any) share the connection.
	writeMu  sync.Mutex
	tenant   *Tenant
	draining atomic.Bool
	// watch is the live telemetry stream riding this session, nil when
	// none. Touched only by the session's handler goroutine.
	watch *sessionWatch
}

// sessionWatch is one live telemetry stream: a subscription on the
// tenant's recorder drained by a streamer goroutine into event frames.
type sessionWatch struct {
	sub   *telemetry.Subscription
	stop  chan struct{}
	done  chan struct{}
	stop1 sync.Once
}

func (w *sessionWatch) halt() { w.stop1.Do(func() { close(w.stop) }) }

// defaultWatchRate caps streamed frames per second when the client's
// WatchSpec doesn't say: high enough for a busy tenant, low enough
// that one firehose watch can't starve the wire.
const defaultWatchRate = 2000

// New builds a server. cfg.NewRunner is mandatory.
func New(cfg Config) (*Server, error) {
	if cfg.NewRunner == nil {
		return nil, errors.New("serve: Config.NewRunner is required")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Server{
		cfg:         cfg,
		clock:       time.Now,
		start:       time.Now(),
		met:         newMetrics(),
		tenants:     make(map[string]*Tenant),
		sessions:    make(map[*session]struct{}),
		janitor:     make(chan struct{}),
		restarts:    make(map[string]int),
		quarantined: make(map[string]QuarantineInfo),
		journaled:   make(map[string]bool),
	}, nil
}

// Serve accepts connections on ln until Shutdown closes it. It returns
// nil on a graceful drain and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	s.ln = ln
	s.serving = true
	s.mu.Unlock()
	if s.cfg.TenantIdle > 0 {
		go s.runJanitor()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return err
		}
		sess := &session{conn: conn, enc: json.NewEncoder(conn)}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.send(sess, Response{Type: TypeBye, Reason: "draining"})
			conn.Close()
			continue
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.met.inc("serve.sessions.opened")
		s.met.gaugeAdd("serve.sessions.active", 1)
		s.wg.Add(1)
		go s.handle(sess)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// send writes one response, reporting whether the peer is still there.
func (s *Server) send(sess *session, resp Response) bool {
	sess.writeMu.Lock()
	err := sess.enc.Encode(resp)
	sess.writeMu.Unlock()
	if err != nil {
		s.met.inc("serve.sessions.write_errors")
		return false
	}
	return true
}

// handle runs one session to completion: read a line, run it, write the
// result. Any exit path reaps the session — the deferred block is the
// single place session resources are released, so a panicking peer
// handler can never leak a connection or a tenant attachment.
func (s *Server) handle(sess *session) {
	defer func() {
		sess.conn.Close()
		if sess.watch != nil {
			// Conn is closed, so a streamer stuck in a write unblocks;
			// waiting on done guarantees the subscription detaches before
			// the session is forgotten.
			sess.watch.halt()
			<-sess.watch.done
		}
		if sess.tenant != nil {
			sess.tenant.detach()
		}
		s.mu.Lock()
		delete(s.sessions, sess)
		s.mu.Unlock()
		s.met.inc("serve.sessions.closed")
		s.met.gaugeAdd("serve.sessions.active", -1)
		s.wg.Done()
	}()
	sc := newLineScanner(sess.conn)
	for {
		if s.isDraining() || sess.draining.Load() {
			s.send(sess, Response{Type: TypeBye, Reason: "draining"})
			return
		}
		if s.cfg.IdleTimeout > 0 {
			if sess.watch != nil {
				// A watching client legitimately goes quiet for the whole
				// stream; drain still wakes the read via SetReadDeadline.
				sess.conn.SetReadDeadline(time.Time{})
			} else {
				sess.conn.SetReadDeadline(s.clock().Add(s.cfg.IdleTimeout))
			}
		}
		if !sc.Scan() {
			if s.isDraining() || sess.draining.Load() {
				s.send(sess, Response{Type: TypeBye, Reason: "draining"})
				return
			}
			var ne net.Error
			if errors.As(sc.Err(), &ne) && ne.Timeout() {
				s.met.inc("serve.sessions.idle_timeouts")
				s.send(sess, Response{Type: TypeBye, Reason: "idle timeout"})
			}
			return // peer hung up (or flooded the line buffer): reap
		}
		var req Request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			if !s.send(sess, Response{Type: TypeError, Code: CodeBadRequest,
				Error: fmt.Sprintf("serve: bad request: %v", err)}) {
				return
			}
			continue
		}
		if !s.handleRequest(sess, req) {
			return
		}
	}
}

// handleRequest dispatches one request; false ends the session.
func (s *Server) handleRequest(sess *session, req Request) bool {
	switch req.Type {
	case TypeHello:
		if sess.tenant != nil {
			return s.send(sess, Response{Type: TypeError, Code: CodeBadRequest,
				Error: "serve: session already attached to tenant " + sess.tenant.Name()})
		}
		t, err := s.tenantFor(req.Tenant)
		if err != nil {
			code, transient := errCode(err)
			return s.send(sess, Response{Type: TypeError, Code: code, Transient: transient, Error: err.Error()})
		}
		sess.tenant = t
		t.attach()
		return s.send(sess, Response{Type: TypeHelloOK, Tenant: t.Name()})
	case TypeCmd:
		if sess.tenant == nil {
			return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeBadRequest,
				Error: "serve: say hello (attach to a tenant) before sending commands"})
		}
		if s.isDraining() {
			return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeDraining,
				Error: ErrDraining.Error()})
		}
		started := s.clock()
		out, cwd, err := s.submit(sess.tenant, req.Line)
		s.met.observe("serve.cmd_ms", telemetry.DefaultRTTBucketsMs(),
			float64(s.clock().Sub(started).Microseconds())/1000)
		s.met.inc("serve.commands.total")
		resp := Response{Type: TypeResult, ID: req.ID, Output: out, Cwd: cwd}
		if err != nil {
			resp.Error = err.Error()
			resp.Code, resp.Transient = errCode(err)
			s.met.inc("serve.commands.errors")
			s.met.inc("serve.errors." + resp.Code)
		}
		return s.send(sess, resp)
	case TypeWatch:
		return s.startWatch(sess, req)
	case TypeUnwatch:
		if sess.watch == nil {
			return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeBadRequest,
				Error: "serve: no watch active on this session"})
		}
		sess.watch.halt()
		<-sess.watch.done // streamer sends watch-end before exiting
		sess.watch = nil
		return true
	case TypeHealthz:
		h := s.Healthz()
		return s.send(sess, Response{Type: TypeHealthz, Health: &h})
	case TypeMetrics:
		return s.send(sess, Response{Type: TypeMetrics, Metrics: s.MetricsSnapshot()})
	case TypeRecovery:
		if req.Clear != "" {
			if err := s.ClearQuarantine(req.Clear); err != nil {
				code, transient := errCode(err)
				if !errors.Is(err, ErrDraining) {
					code = CodeBadRequest
				}
				return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: code,
					Transient: transient, Error: err.Error()})
			}
		}
		st := s.RecoveryStatus()
		return s.send(sess, Response{Type: TypeRecovery, ID: req.ID, Recovery: &st})
	case TypeBye:
		s.send(sess, Response{Type: TypeBye, Reason: "goodbye"})
		return false
	default:
		return s.send(sess, Response{Type: TypeError, Code: CodeBadRequest,
			Error: fmt.Sprintf("serve: unknown request type %q", req.Type)})
	}
}

// startWatch begins streaming telemetry frames to the session. The
// tenant's recording is switched on by submitting `trace on` through
// the command queue — the one goroutine allowed to touch the recorder's
// deterministic state — and the stream itself rides a Subscription, the
// recorder's cross-goroutine-safe (and zero-perturbation) surface.
func (s *Server) startWatch(sess *session, req Request) bool {
	if sess.tenant == nil {
		return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeBadRequest,
			Error: "serve: say hello (attach to a tenant) before watching"})
	}
	if sess.watch != nil {
		select {
		case <-sess.watch.done:
			sess.watch = nil // the streamer already ended (elapsed/drain)
		default:
			return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeBadRequest,
				Error: "serve: session already has a watch; unwatch first"})
		}
	}
	if s.isDraining() {
		return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeDraining,
			Error: ErrDraining.Error()})
	}
	spec := WatchSpec{}
	if req.Watch != nil {
		spec = *req.Watch
	}
	// Going through the queue also synchronizes with the tenant build:
	// once the command returns, the recorder pointer is published.
	if _, _, err := s.submit(sess.tenant, "trace on"); err != nil {
		code, transient := errCode(err)
		return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: code,
			Transient: transient, Error: err.Error()})
	}
	rec := sess.tenant.Recorder()
	if rec == nil {
		return s.send(sess, Response{Type: TypeError, ID: req.ID, Code: CodeBadRequest,
			Error: "serve: tenant exposes no telemetry"})
	}
	w := &sessionWatch{
		sub:  rec.Subscribe(spec.filter(), spec.Depth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if !s.send(sess, Response{Type: TypeWatchOK, ID: req.ID, Tenant: sess.tenant.Name()}) {
		w.sub.Close()
		return false
	}
	sess.watch = w
	s.met.inc("serve.watch.started")
	go s.runWatch(sess, w, spec, req.ID)
	return true
}

// filter maps the wire spec onto the telemetry filter.
func (spec WatchSpec) filter() telemetry.Filter {
	return telemetry.Filter{
		Node:  phys.NodeID(spec.Node),
		Layer: telemetry.Layer(spec.Layer),
		Kind:  spec.Kind,
		Link:  spec.Link,
		Span:  spec.Span,
	}
}

// runWatch is the streamer goroutine: drain the subscription on a wall
// ticker, bounded per tick, until unwatch, drain, or a dead peer. It
// always closes the subscription and, when the wire still works, says
// watch-end so the client can tell a finished stream from a cut one.
func (s *Server) runWatch(sess *session, w *sessionWatch, spec WatchSpec, id uint64) {
	defer close(w.done)
	defer w.sub.Close()
	maxPerSec := spec.MaxPerSec
	if maxPerSec <= 0 {
		maxPerSec = defaultWatchRate
	}
	var deadline <-chan time.Time
	if spec.ForMs > 0 {
		timer := time.NewTimer(time.Duration(spec.ForMs) * time.Millisecond)
		defer timer.Stop()
		deadline = timer.C
	}
	const tickEvery = 100 * time.Millisecond
	batch := maxPerSec / 10
	if batch < 1 {
		batch = 1
	}
	tick := time.NewTicker(tickEvery)
	defer tick.Stop()
	end := func(reason string) {
		s.send(sess, Response{Type: TypeWatchEnd, ID: id, Reason: reason, Dropped: w.sub.Dropped()})
		s.met.inc("serve.watch.ended")
	}
	for {
		select {
		case <-w.stop:
			end("unwatch")
			return
		case <-deadline:
			end("elapsed")
			return
		case <-tick.C:
			if s.isDraining() || sess.draining.Load() {
				end("draining")
				return
			}
			events := w.sub.Poll(batch)
			for i := range events {
				if !s.send(sess, Response{Type: TypeEvent, ID: id,
					Event: telemetry.JSONLine(&events[i]), Dropped: w.sub.Dropped()}) {
					s.met.inc("serve.watch.ended")
					return
				}
			}
			if n := len(events); n > 0 {
				s.met.add("serve.watch.frames", n)
			}
		}
	}
}

// submit runs one command with the service edge's bounded retry loop:
// transient admission rejections (rate limit, full queue) back off and
// try again a few times before the rejection reaches the operator.
// Everything else — including the command's own errors — passes through
// untouched; retrying a command that ran would re-run it on the
// simulation.
func (s *Server) submit(t *Tenant, line string) (string, string, error) {
	backoff := s.cfg.EdgeBackoff
	for attempt := 0; ; attempt++ {
		out, cwd, err := t.Submit(line, s.cfg.CmdTimeout)
		if err == nil ||
			(!errors.Is(err, ErrRateLimited) && !errors.Is(err, ErrQueueFull)) ||
			attempt >= s.cfg.EdgeRetries || s.isDraining() {
			return out, cwd, err
		}
		s.met.inc("serve.edge.retries")
		time.Sleep(backoff)
		backoff *= 2
	}
}

// tenantNamed returns the named tenant only if it already exists and is
// alive — unlike tenantFor it never creates one. The admin streaming
// endpoints use it so a stray curl can't spin up a simulation.
func (s *Server) tenantNamed(name string) *Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok && t.Dead() == nil {
		return t
	}
	return nil
}

// tenantFor returns the named live tenant, creating it (and its
// simulation goroutine) on first use. Dead tenants still in the table
// are replaced — a fresh hello after a crash gets a fresh testbed —
// except under journaling, where the supervisor owns resurrection and a
// hello mid-recovery is asked to retry.
func (s *Server) tenantFor(name string) (*Tenant, error) {
	if name == "" {
		return nil, errors.New("serve: hello needs a tenant name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if q, ok := s.quarantined[name]; ok {
		return nil, fmt.Errorf("%w: tenant %q: %s", ErrTenantQuarantined, name, q.Reason)
	}
	if t, ok := s.tenants[name]; ok && t.Dead() == nil {
		return t, nil
	}
	if s.cfg.JournalDir != "" && s.journaled[name] {
		// The tenant is dead or gone but this process owns its journal:
		// the supervisor's replacement is (or is about to be) replaying
		// it. A fresh Create here would wipe the history mid-recovery.
		return nil, fmt.Errorf("%w: tenant %q", ErrTenantRecovering, name)
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		if t, ok := s.tenants[name]; !ok || t.Dead() == nil {
			return nil, fmt.Errorf("%w (%d)", ErrTooManyTenants, s.cfg.MaxTenants)
		}
	}
	t := s.spawnLocked(name, false, 0, 0)
	s.tenants[name] = t
	if s.cfg.JournalDir != "" {
		s.journaled[name] = true
	}
	s.met.inc("serve.tenants.created")
	s.met.gaugeAdd("serve.tenants.active", 1)
	s.cfg.Logf("serve: tenant %q created", name)
	return t, nil
}

// spawnLocked builds one tenant incarnation. Caller holds s.mu — the
// atomic map swap under one critical section is what keeps a racing
// hello from wiping a journal mid-recovery.
func (s *Server) spawnLocked(name string, recover bool, delay time.Duration, restarts int) *Tenant {
	return newTenant(tenantParams{
		name:        name,
		seed:        s.seedFor(name),
		recover:     recover,
		delay:       delay,
		restarts:    restarts,
		onCrash:     s.crashHook,
		onRecovered: s.recoveredHook,
	}, s.cfg, s.clock)
}

func (s *Server) seedFor(name string) uint64 {
	if s.cfg.SeedFor != nil {
		return s.cfg.SeedFor(name)
	}
	return TenantSeed(0, name)
}

func (s *Server) journalOpts() journal.Options {
	return journal.Options{
		SegmentCap: s.cfg.JournalSegmentCap,
		FsyncEvery: s.cfg.JournalFsyncEvery,
		Logf:       s.cfg.Logf,
	}
}

// restartDelay is the supervised-restart backoff: RestartBackoff
// doubling per consecutive attempt, capped at 32x.
func restartDelay(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < 32*base; i++ {
		d *= 2
	}
	if d > 32*base {
		d = 32 * base
	}
	return d
}

// crashHook is the tenant loop's death hook. Without journaling it
// reaps the corpse as before. With journaling it is the supervisor:
// swap in a recovering replacement (with backoff) under the same lock
// that hello uses, or quarantine the tenant once the restart budget is
// spent — truncating the journal past a poisonous command so the good
// prefix stays recoverable.
func (s *Server) crashHook(t *Tenant, reason error) {
	name := t.Name()
	crash := t.crashState()
	switch crash.kind {
	case "build", "journal":
		s.met.inc("serve.tenants.build_failures")
	default:
		s.met.inc("serve.tenants.crashed")
	}
	if s.cfg.JournalDir == "" {
		s.mu.Lock()
		if cur, ok := s.tenants[name]; ok && cur == t {
			delete(s.tenants, name)
			s.met.gaugeAdd("serve.tenants.active", -1)
		}
		s.mu.Unlock()
		s.cfg.Logf("serve: tenant %q reaped: %v", name, reason)
		return
	}
	s.mu.Lock()
	if cur, ok := s.tenants[name]; !ok || cur != t {
		s.mu.Unlock()
		return // superseded (janitor or drain already took it)
	}
	if s.draining {
		delete(s.tenants, name)
		s.met.gaugeAdd("serve.tenants.active", -1)
		s.mu.Unlock()
		return
	}
	s.restarts[name]++
	attempts := s.restarts[name]
	if attempts > s.cfg.RestartBudget {
		q := QuarantineInfo{Tenant: name, Restarts: attempts - 1}
		if crash.valid {
			q.Index, q.Line = crash.index, crash.line
			q.Reason = fmt.Sprintf("%v: journal entry %d %q: %v",
				ErrPoisonCommand, crash.index, crash.line, reason)
		} else {
			q.Reason = fmt.Sprintf("restart budget exhausted: %v", reason)
		}
		s.quarantined[name] = q
		delete(s.restarts, name)
		delete(s.tenants, name)
		s.met.gaugeAdd("serve.tenants.active", -1)
		s.mu.Unlock()
		s.met.inc("serve.recovery.quarantined")
		if crash.valid {
			// Amputate the poison command (and everything after it): the
			// journal's good prefix stays replayable for ClearQuarantine.
			if err := journal.TruncatePast(s.cfg.JournalDir, name, crash.index, s.journalOpts()); err != nil {
				s.cfg.Logf("serve: tenant %q: truncating journal past poison entry %d: %v",
					name, crash.index, err)
			}
		}
		s.cfg.Logf("serve: tenant %q quarantined after %d restart(s): %s", name, attempts-1, q.Reason)
		return
	}
	delay := restartDelay(s.cfg.RestartBackoff, attempts)
	s.tenants[name] = s.spawnLocked(name, true, delay, attempts)
	s.mu.Unlock()
	s.met.inc("serve.recovery.restarts")
	s.cfg.Logf("serve: tenant %q crashed (%v); supervised restart %d/%d after %v",
		name, reason, attempts, s.cfg.RestartBudget, delay)
}

// recoveredHook fires after a recovering tenant finishes its replay:
// reset the restart budget and record the recovery.
func (s *Server) recoveredHook(t *Tenant, replayed int, dur time.Duration) {
	s.mu.Lock()
	delete(s.restarts, t.Name())
	s.mu.Unlock()
	s.met.inc("serve.recovery.recovered")
	s.met.add("serve.recovery.replayed_commands", replayed)
	s.met.observe("serve.recovery.replay_ms", telemetry.DefaultReplayBucketsMs(),
		float64(dur.Microseconds())/1000)
	s.cfg.Logf("serve: tenant %q recovered: replayed %d command(s) in %v", t.Name(), replayed, dur)
}

// RecoverJournals resurrects every tenant with a journal under
// Config.JournalDir (lvserved -recover). Call it before Serve: each
// tenant rebuilds from its journaled seed and replays its history on
// its own goroutine; sessions arriving mid-replay simply queue behind
// it. Returns how many tenants were restored.
func (s *Server) RecoverJournals() (int, error) {
	if s.cfg.JournalDir == "" {
		return 0, errors.New("serve: RecoverJournals needs Config.JournalDir")
	}
	names, err := journal.List(s.cfg.JournalDir)
	if err != nil {
		return 0, err
	}
	n := 0
	s.mu.Lock()
	for _, name := range names {
		if _, ok := s.tenants[name]; ok {
			continue
		}
		s.tenants[name] = s.spawnLocked(name, true, 0, 0)
		s.journaled[name] = true
		n++
	}
	s.restored += n
	s.mu.Unlock()
	if n > 0 {
		s.met.add("serve.recovery.restored", n)
		s.met.gaugeAdd("serve.tenants.active", float64(n))
		s.cfg.Logf("serve: restoring %d tenant(s) from journals in %s", n, s.cfg.JournalDir)
	}
	return n, nil
}

// ClearQuarantine lifts a tenant's quarantine and resurrects it from
// what is left of its journal (the poisonous entry was truncated away
// when the quarantine was imposed).
func (s *Server) ClearQuarantine(name string) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrDraining
	}
	if _, ok := s.quarantined[name]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("serve: tenant %q is not quarantined", name)
	}
	delete(s.quarantined, name)
	delete(s.restarts, name)
	s.tenants[name] = s.spawnLocked(name, true, 0, 0)
	s.journaled[name] = true
	s.mu.Unlock()
	s.met.gaugeAdd("serve.tenants.active", 1)
	s.cfg.Logf("serve: tenant %q quarantine cleared; recovering from journal", name)
	return nil
}

// RecoveryStatus reports the supervisor's view: whether journaling is
// on, how many tenants the last RecoverJournals restored, which are
// mid-replay, and which are quarantined.
func (s *Server) RecoveryStatus() RecoveryStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := RecoveryStatus{Enabled: s.cfg.JournalDir != "", Restored: s.restored}
	for name, t := range s.tenants {
		if t.Recovering() {
			st.Recovering = append(st.Recovering, name)
		}
	}
	sort.Strings(st.Recovering)
	for _, q := range s.quarantined {
		st.Quarantined = append(st.Quarantined, q)
	}
	sort.Slice(st.Quarantined, func(i, j int) bool {
		return st.Quarantined[i].Tenant < st.Quarantined[j].Tenant
	})
	return st
}

// runJanitor reaps tenants that have had no session and no command for
// cfg.TenantIdle.
func (s *Server) runJanitor() {
	interval := s.cfg.TenantIdle / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.janitor:
			return
		case <-tick.C:
			now := s.clock()
			s.mu.Lock()
			var idle []*Tenant
			for name, t := range s.tenants {
				if t.idleFor(now, s.cfg.TenantIdle) {
					delete(s.tenants, name)
					idle = append(idle, t)
				}
			}
			s.mu.Unlock()
			for _, t := range idle {
				t.stop()
				<-t.Done()
				if s.cfg.JournalDir != "" {
					// An idle-reaped tenant deliberately starts fresh on its
					// next hello; its journal would resurrect stale state.
					if err := journal.Drop(s.cfg.JournalDir, t.Name()); err != nil {
						s.cfg.Logf("serve: tenant %q: dropping journal: %v", t.Name(), err)
					}
					s.mu.Lock()
					delete(s.journaled, t.Name())
					delete(s.restarts, t.Name())
					s.mu.Unlock()
				}
				s.met.inc("serve.tenants.reaped_idle")
				s.met.gaugeAdd("serve.tenants.active", -1)
				s.cfg.Logf("serve: tenant %q reaped (idle)", t.Name())
			}
		}
	}
}

// Shutdown drains the server: stop accepting, wake blocked readers so
// every session finishes (or abandons) its in-flight command and gets a
// goodbye, then stop every tenant simulation. It returns nil on a clean
// drain within ctx and ctx's error if the deadline forced it — in that
// case remaining connections are closed hard.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if alreadyDraining {
		return errors.New("serve: shutdown already in progress")
	}
	s.met.inc("serve.drain.started")
	s.cfg.Logf("serve: draining (%d session(s))", len(sessions))
	if ln != nil {
		ln.Close()
	}
	close(s.janitor)
	// Wake sessions parked in a read so they notice the drain; sessions
	// inside a command finish it first — the response still goes out.
	for _, sess := range sessions {
		sess.draining.Store(true)
		sess.conn.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	clean := true
	select {
	case <-done:
	case <-ctx.Done():
		clean = false
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
	}
	// Stop the tenant pool. Each loop exits after its in-flight command.
	s.mu.Lock()
	tenants := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.tenants = make(map[string]*Tenant)
	s.mu.Unlock()
	for _, t := range tenants {
		t.stop()
	}
	for _, t := range tenants {
		select {
		case <-t.Done():
			s.met.gaugeAdd("serve.tenants.active", -1)
		case <-ctx.Done():
			clean = false
		}
	}
	if !clean {
		s.met.inc("serve.drain.forced")
		s.cfg.Logf("serve: drain deadline exceeded, connections closed hard")
		return ctx.Err()
	}
	if s.cfg.JournalDir != "" {
		// Clean drain: every journal is closed, so compact each into a
		// single tidy segment. The journals stay on disk — that is the
		// point: lvserved -recover after a deploy restores the fleet.
		s.mu.Lock()
		names := make([]string, 0, len(s.journaled))
		for name := range s.journaled {
			names = append(names, name)
		}
		s.mu.Unlock()
		sort.Strings(names)
		for _, name := range names {
			if err := journal.Compact(s.cfg.JournalDir, name, s.journalOpts()); err != nil {
				s.cfg.Logf("serve: tenant %q: compacting journal on drain: %v", name, err)
			}
		}
	}
	s.met.inc("serve.drain.clean")
	s.cfg.Logf("serve: drain complete")
	return nil
}

// Healthz reports liveness and readiness: Live while the process
// answers, Ready only while accepting new work.
func (s *Server) Healthz() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := Health{
		Live:     true,
		Ready:    s.serving && !s.draining,
		Draining: s.draining,
		Sessions: len(s.sessions),
		UptimeMs: s.clock().Sub(s.start).Milliseconds(),
	}
	for _, t := range s.tenants {
		h.Tenants = append(h.Tenants, t.Info())
	}
	sort.Slice(h.Tenants, func(i, j int) bool { return h.Tenants[i].Name < h.Tenants[j].Name })
	for _, q := range s.quarantined {
		h.Quarantined = append(h.Quarantined, q)
	}
	sort.Slice(h.Quarantined, func(i, j int) bool { return h.Quarantined[i].Tenant < h.Quarantined[j].Tenant })
	return h
}

// MetricsSnapshot flattens the service metrics registry (see
// internal/telemetry) to named scalars.
func (s *Server) MetricsSnapshot() map[string]float64 {
	return s.met.snapshot()
}

// metrics wraps a telemetry.Registry with the lock the concurrent
// service needs (the registry itself is single-writer by design — the
// simulators own theirs; the service shares one across sessions).
type metrics struct {
	mu  sync.Mutex
	reg *telemetry.Registry
}

func newMetrics() *metrics { return &metrics{reg: telemetry.NewRegistry()} }

func (m *metrics) inc(name string) {
	m.mu.Lock()
	m.reg.Counter(name).Inc()
	m.mu.Unlock()
}

func (m *metrics) add(name string, n int) {
	m.mu.Lock()
	m.reg.Counter(name).Add(uint64(n))
	m.mu.Unlock()
}

func (m *metrics) gaugeAdd(name string, d float64) {
	m.mu.Lock()
	m.reg.Gauge(name).Add(d)
	m.mu.Unlock()
}

func (m *metrics) observe(name string, bounds []float64, v float64) {
	m.mu.Lock()
	m.reg.Histogram(name, bounds).Observe(v)
	m.mu.Unlock()
}

func (m *metrics) snapshot() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Snapshot()
}

func (m *metrics) writePrometheus(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.WritePrometheus(w)
}
