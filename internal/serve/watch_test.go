package serve

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"liteview/internal/telemetry"
)

// TestWatchStreamsCommandEvents is the wire-watch end-to-end: one
// session watches a tenant while another runs a ping; the watcher must
// receive parseable JSONL frames carrying MAC-layer events stamped with
// the ping's span id, and a clean unwatch must end the stream.
func TestWatchStreamsCommandEvents(t *testing.T) {
	_, addr := startServer(t, Config{NewRunner: testbedRunner})
	const tenant = "watch-e2e"

	watcher, err := Dial(addr, tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	var (
		mu     sync.Mutex
		events []telemetry.Event
	)
	watchDone := make(chan error, 1)
	go func() {
		watchDone <- watcher.Watch(WatchSpec{Layer: "mac"}, func(line string, dropped uint64) bool {
			e, perr := telemetry.ParseJSONLine([]byte(line))
			if perr != nil {
				t.Errorf("unparseable frame %q: %v", line, perr)
				return false
			}
			mu.Lock()
			events = append(events, e)
			n := len(events)
			mu.Unlock()
			return n < 10
		})
	}()

	driver, err := Dial(addr, tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer driver.Close()
	for _, line := range []string{"cd 192.168.0.1", "ping 192.168.0.3"} {
		if resp, err := driver.Run(line); err != nil || resp.Error != "" {
			t.Fatalf("%q: err=%v resp.Error=%q", line, err, resp.Error)
		}
	}

	select {
	case err := <-watchDone:
		if err != nil {
			t.Fatalf("Watch returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch did not end after the frame budget")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) < 10 {
		t.Fatalf("got %d frames, want >= 10", len(events))
	}
	spanStamped := 0
	for _, e := range events {
		if e.Layer != telemetry.LayerMAC {
			t.Fatalf("filter leaked a %s event: %+v", e.Layer, e)
		}
		if e.Span != 0 {
			spanStamped++
		}
	}
	if spanStamped == 0 {
		t.Fatal("no streamed MAC frame carried the command's span id")
	}
}

// TestWatchDoesNotPerturbTenant is the service-level zero-perturbation
// gate: a tenant driven through the full diagnostic script while a
// second session watches its telemetry must produce output
// byte-identical to the same script on a freshly built, service-free,
// never-observed runner.
func TestWatchDoesNotPerturbTenant(t *testing.T) {
	const tenant = "watched-tenant"
	want := runDirect(t, tenant)

	_, addr := startServer(t, Config{NewRunner: testbedRunner})
	watcher, err := Dial(addr, tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	watchDone := make(chan error, 1)
	var frames atomic.Int64
	go func() {
		watchDone <- watcher.Watch(WatchSpec{ForMs: 60_000}, func(string, uint64) bool {
			frames.Add(1)
			return true
		})
	}()

	driver, err := Dial(addr, tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer driver.Close()
	var got strings.Builder
	for _, line := range diagScript {
		resp, err := driver.Run(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if resp.Error != "" {
			t.Fatalf("%q: %s", line, resp.Error)
		}
		got.WriteString(resp.Output)
	}
	if got.String() != want {
		t.Fatal("a live watch changed the tenant's command output")
	}

	// The streamer polls on a wall-clock tick; wait for the first frame
	// to prove the watch really observed the (virtual-time) script.
	deadline := time.Now().Add(10 * time.Second)
	for frames.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if frames.Load() == 0 {
		t.Fatal("watch observed nothing while the script ran")
	}

	// End the stream from the client side and confirm the server answers
	// with a clean watch-end (Watch returns nil on it).
	if err := watcher.enc.Encode(Request{Type: TypeUnwatch}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-watchDone:
		if err != nil {
			t.Fatalf("Watch returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("unwatch did not end the stream")
	}
}

// TestWatchForMsEndsIdleStream: a stream over a silent tenant must
// still terminate when the spec's server-side duration elapses.
func TestWatchForMsEndsIdleStream(t *testing.T) {
	_, addr := startServer(t, Config{NewRunner: testbedRunner})
	c, err := Dial(addr, "idle-watch")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		done <- c.Watch(WatchSpec{ForMs: 250}, func(string, uint64) bool { return true })
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Watch returned %v, want nil on elapsed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle watch never ended despite for_ms")
	}
	// The session must be reusable: the stale watch is cleared on the
	// next watch request, not wedged forever.
	done2 := make(chan error, 1)
	go func() {
		done2 <- c.Watch(WatchSpec{ForMs: 250}, func(string, uint64) bool { return true })
	}()
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("second Watch returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second watch on the same session never ended")
	}
}

// TestWatchRejections covers the error paths: watching before hello,
// and watching a tenant whose runner exposes no telemetry.
func TestWatchRejections(t *testing.T) {
	_, addr := startServer(t, Config{NewRunner: testbedRunner})
	bare, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if err := bare.Watch(WatchSpec{}, func(string, uint64) bool { return true }); err == nil {
		t.Fatal("watch before hello was accepted")
	} else if !strings.Contains(err.Error(), "hello") {
		t.Fatalf("unhelpful rejection: %v", err)
	}

	_, addr2 := startServer(t, echoConfig())
	c, err := Dial(addr2, "no-telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Watch(WatchSpec{}, func(string, uint64) bool { return true }); err == nil {
		t.Fatal("watch on a telemetry-less runner was accepted")
	} else if !strings.Contains(err.Error(), "telemetry") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
}
