package serve

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"liteview/internal/core"
	"liteview/internal/journal"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// Tenant is one simulated testbed behind the service: a single
// goroutine owns its Runner (and therefore its whole simulation) for
// the tenant's entire life, draining a bounded command queue. Sessions
// submit commands through Submit, which applies the admission layer —
// token bucket, circuit breaker, bounded queue — and waits under a
// wall-clock deadline. A panic inside the simulation kills only this
// tenant: the goroutine reports the crash, fails queued commands, and
// exits; the daemon keeps serving every other tenant.
//
// With journaling on, the goroutine writes every accepted command to
// the tenant's write-ahead journal before executing it, and a tenant
// born in recover mode first rebuilds the simulation from the journaled
// seed and replays the journal — byte-identical state by DESIGN §10 —
// before serving the queue.
type Tenant struct {
	name  string
	seed  uint64
	queue chan *job
	quit  chan struct{} // closed by stop(); tells the loop to exit
	done  chan struct{} // closed when the loop has exited
	stop1 sync.Once
	clock func() time.Time
	epoch time.Time // breaker clock origin
	logf  func(format string, args ...any)

	// Supervision parameters, fixed at birth.
	recoverMode bool          // replay an existing journal instead of starting fresh
	delay       time.Duration // backoff before (re)building the simulation
	// onCrash is the server's supervisor hook, called off the tenant
	// loop exactly once if the simulation panics (or its build fails
	// under supervision).
	onCrash func(t *Tenant, reason error)
	// onRecovered is called once after a successful recover-mode replay.
	onRecovered func(t *Tenant, replayed int, dur time.Duration)

	// jnl is the tenant's open journal, touched only by the tenant
	// goroutine. Nil when journaling is off or permanently failed.
	jnl *journal.Journal

	mu         sync.Mutex
	dead       error // non-nil once the tenant is unusable; the reason
	sessions   int
	lastUsed   time.Time
	limiter    *bucket
	brk        *core.Breaker
	recovering bool
	restarts   int
	crash      crashInfo
	// rec is the tenant simulation's telemetry recorder, captured once
	// on the tenant goroutine right after the Runner is built (nil when
	// the Runner exposes none). Service goroutines only Subscribe to it.
	rec *telemetry.Recorder
}

// crashInfo pins a tenant death to its cause so the supervisor can tell
// a poisonous journaled command (quarantine + truncate) from a build or
// journal failure (quarantine only).
type crashInfo struct {
	kind  string // "panic", "replay", "build", "journal"
	index uint64 // journal index of the offending command
	line  string // the offending command
	valid bool   // index/line refer to a real journal entry
}

// tenantParams is everything that distinguishes one tenant incarnation
// from the next: fresh vs recovering, and the supervisor's bookkeeping.
type tenantParams struct {
	name        string
	seed        uint64
	recover     bool
	delay       time.Duration
	restarts    int
	onCrash     func(*Tenant, error)
	onRecovered func(*Tenant, int, time.Duration)
}

// job is one queued command and its reply path. resp has capacity 1 so
// the tenant loop never blocks on a waiter that already gave up.
type job struct {
	line      string
	resp      chan jobResult
	abandoned atomic.Bool // waiter hit its deadline while the job was queued
}

type jobResult struct {
	out string
	cwd string
	err error
}

// newTenant builds the tenant and starts its simulation goroutine. The
// Runner is constructed on that goroutine — from first event to last,
// the simulation never migrates.
func newTenant(p tenantParams, cfg Config, clock func() time.Time) *Tenant {
	now := clock()
	t := &Tenant{
		name:        p.name,
		seed:        p.seed,
		queue:       make(chan *job, cfg.QueueDepth),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
		clock:       clock,
		epoch:       now,
		logf:        cfg.Logf,
		recoverMode: p.recover,
		delay:       p.delay,
		onCrash:     p.onCrash,
		onRecovered: p.onRecovered,
		lastUsed:    now,
		limiter:     newBucket(cfg.RatePerSec, cfg.Burst, now),
		recovering:  p.recover || p.delay > 0,
		restarts:    p.restarts,
	}
	threshold := cfg.BreakerThreshold
	if threshold == 0 {
		threshold = core.DefaultBreakerThreshold
	}
	cooldown := cfg.BreakerCooldown
	if cooldown == 0 {
		cooldown = core.DefaultBreakerCooldown
	}
	// The admission breaker is the same three-state machine that guards
	// the workstation's per-node command path (internal/core), driven by
	// wall time instead of virtual.
	t.brk = &core.Breaker{
		Threshold: threshold,
		Cooldown:  sim.Time(cooldown),
		Now:       func() sim.Time { return sim.Time(t.clock().Sub(t.epoch)) },
	}
	go t.loop(cfg)
	return t
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// journaled reports whether a command line belongs in the write-ahead
// journal. Observability toggles (`trace ...`) are deliberately not
// journaled: they don't change simulation state (the zero-perturbation
// contract, DESIGN §12), and skipping them keeps telemetry recording
// off during replay — a resurrected tenant re-executes history without
// re-emitting it.
func journaled(line string) bool {
	s := strings.TrimSpace(line)
	if s == "" {
		return false
	}
	return s != "trace" && !strings.HasPrefix(s, "trace ")
}

// loop is the tenant goroutine: (after any supervised backoff) open or
// recover the journal, build the simulation, replay journaled history,
// then serve the queue until stop or crash.
func (t *Tenant) loop(cfg Config) {
	defer close(t.done)
	defer t.closeJournal() // backstop; every exit path closes explicitly first

	if t.delay > 0 {
		timer := time.NewTimer(t.delay)
		select {
		case <-t.quit:
			timer.Stop()
			t.kill(fmt.Errorf("%w: tenant %q stopped", ErrTenantDead, t.name))
			return
		case <-timer.C:
		}
	}

	var entries []journal.Entry
	seed := t.seed
	if cfg.JournalDir != "" {
		opt := journal.Options{
			SegmentCap: cfg.JournalSegmentCap,
			FsyncEvery: cfg.JournalFsyncEvery,
			Logf:       t.logf,
		}
		if t.recoverMode {
			jnl, ents, err := journal.Recover(cfg.JournalDir, t.name, opt)
			if err != nil {
				t.fail("journal", fmt.Errorf("recovering journal for tenant %q: %w", t.name, err))
				return
			}
			if jnl.Seed() != seed {
				// The journaled seed wins: it is what the recorded commands
				// actually ran against.
				t.logf("serve: tenant %q journal seed %d != derived seed %d; using the journal's",
					t.name, jnl.Seed(), seed)
				seed = jnl.Seed()
			}
			t.jnl, entries = jnl, ents
		} else {
			jnl, err := journal.Create(cfg.JournalDir, t.name, seed, opt)
			if err != nil {
				t.fail("journal", fmt.Errorf("creating journal for tenant %q: %w", t.name, err))
				return
			}
			t.jnl = jnl
		}
	}

	r, err := buildRunner(cfg.NewRunner, t.name, seed)
	if err != nil {
		t.fail("build", err)
		return
	}
	if src, ok := r.(TelemetrySource); ok {
		// Materialize the recorder here, on the goroutine that owns the
		// simulation, then publish the pointer for watch sessions. The
		// recorder starts stopped; `trace on` submitted through the
		// queue turns it on without leaving this goroutine. Replay never
		// touches it: trace commands are not journaled, so a resurrected
		// tenant replays with recording suppressed by construction.
		rec := src.Telemetry()
		t.mu.Lock()
		t.rec = rec
		t.mu.Unlock()
	}

	if t.recoverMode {
		start := time.Now()
		for _, e := range entries {
			select {
			case <-t.quit:
				t.closeJournal()
				t.kill(fmt.Errorf("%w: tenant %q stopped mid-replay", ErrTenantDead, t.name))
				return
			default:
			}
			if !journaled(e.Line) {
				continue // defensive: old journals must never replay trace toggles
			}
			res, crashed := t.runOne(r, e.Line)
			if crashed {
				t.noteCrash(crashInfo{kind: "replay", index: e.Index, line: e.Line, valid: true})
				t.closeJournal()
				t.kill(fmt.Errorf("%w: tenant %q: %v", ErrTenantDead, t.name, res.err))
				if t.onCrash != nil {
					t.onCrash(t, res.err)
				}
				return
			}
			// Replay discards output: the original session already saw it.
		}
		t.mu.Lock()
		t.recovering = false
		t.mu.Unlock()
		if t.onRecovered != nil {
			t.onRecovered(t, len(entries), time.Since(start))
		}
	} else {
		t.mu.Lock()
		t.recovering = false
		t.mu.Unlock()
	}

	for {
		select {
		case <-t.quit:
			t.closeJournal()
			t.kill(fmt.Errorf("%w: tenant %q stopped", ErrTenantDead, t.name))
			return
		case j := <-t.queue:
			if j.abandoned.Load() {
				continue // its session gave up while it sat in the queue
			}
			idx, idxValid := uint64(0), false
			if t.jnl != nil && journaled(j.line) {
				var jerr error
				idx, jerr = t.jnl.Append(j.line)
				if jerr != nil {
					// A dead journal must not take the tenant with it: keep
					// serving, loudly, without recovery for this incarnation.
					t.logf("serve: tenant %q journaling disabled: %v", t.name, jerr)
					t.closeJournal()
				} else {
					idxValid = true
				}
			}
			res, crashed := t.runOne(r, j.line)
			if crashed {
				// Supervise before answering: by the time the session sees
				// the crash, this corpse is out of the tenant table (and the
				// recovering replacement, if any, is in), so an immediate
				// re-hello never races onto the dying incarnation.
				t.noteCrash(crashInfo{kind: "panic", index: idx, line: j.line, valid: idxValid})
				t.closeJournal()
				t.kill(fmt.Errorf("%w: tenant %q: %v", ErrTenantDead, t.name, res.err))
				if t.onCrash != nil {
					t.onCrash(t, res.err)
				}
				j.resp <- res
				return
			}
			j.resp <- res
		}
	}
}

// buildRunner constructs the simulation with panic isolation: a
// factory that panics is a build failure, not a dead daemon.
func buildRunner(f func(string, uint64) (Runner, error), name string, seed uint64) (r Runner, err error) {
	defer func() {
		if p := recover(); p != nil {
			r, err = nil, fmt.Errorf("building tenant %q panicked: %v", name, p)
		}
	}()
	return f(name, seed)
}

// fail handles a pre-serve death (journal open or simulation build):
// mark the cause, release the journal, fail queued work, and let the
// supervisor decide whether to retry.
func (t *Tenant) fail(kind string, err error) {
	t.noteCrash(crashInfo{kind: kind})
	t.closeJournal()
	t.kill(fmt.Errorf("%w: %v", ErrTenantDead, err))
	if t.onCrash != nil {
		t.onCrash(t, err)
	}
}

// closeJournal releases the tenant's journal handle. It must run before
// onCrash on every death path: the supervisor's replacement tenant
// reopens the same files.
func (t *Tenant) closeJournal() {
	if t.jnl == nil {
		return
	}
	if err := t.jnl.Close(); err != nil {
		t.logf("serve: tenant %q journal close: %v", t.name, err)
	}
	t.jnl = nil
}

func (t *Tenant) noteCrash(c crashInfo) {
	t.mu.Lock()
	t.crash = c
	t.mu.Unlock()
}

// crashState returns the cause of death recorded by the loop.
func (t *Tenant) crashState() crashInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.crash
}

// runOne executes one command with panic isolation: a crash inside the
// simulation becomes an ErrTenantCrashed result instead of a dead daemon.
func (t *Tenant) runOne(r Runner, line string) (res jobResult, crashed bool) {
	defer func() {
		if p := recover(); p != nil {
			t.logf("serve: tenant %q panicked running %q: %v\n%s", t.name, line, p, debug.Stack())
			res = jobResult{err: fmt.Errorf("%w: panic: %v", ErrTenantCrashed, p)}
			crashed = true
		}
	}()
	out, err := r.Run(line)
	return jobResult{out: out, cwd: r.Cwd(), err: err}, false
}

// kill marks the tenant dead and fails every queued command. Holding
// the mutex across the drain closes the race with Submit: a job is
// either enqueued before the death (drained here) or rejected after.
func (t *Tenant) kill(reason error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dead == nil {
		t.dead = reason
	}
	for {
		select {
		case j := <-t.queue:
			j.resp <- jobResult{err: t.dead}
		default:
			return
		}
	}
}

// stop asks the tenant loop to exit after the in-flight command. Wait
// on Done() for completion.
func (t *Tenant) stop() { t.stop1.Do(func() { close(t.quit) }) }

// Done is closed once the tenant goroutine has exited.
func (t *Tenant) Done() <-chan struct{} { return t.done }

// Recorder returns the tenant simulation's telemetry recorder, or nil
// when the runner exposes none (or the build has not finished yet).
// Callers may only use the recorder's cross-goroutine-safe surface:
// Subscribe and Subscription methods.
func (t *Tenant) Recorder() *telemetry.Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rec
}

// Dead returns the reap reason, or nil while the tenant serves.
func (t *Tenant) Dead() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dead
}

// Recovering reports whether the tenant is still rebuilding or
// replaying its journal.
func (t *Tenant) Recovering() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recovering
}

// Submit runs one command line on the tenant, waiting at most timeout
// of wall-clock time. It returns the command's output, the session
// cwd after the command, and the command's error. Admission failures
// (rate limit, open breaker, full queue) and deadline expiry surface as
// the package's typed errors without ever touching the simulation.
func (t *Tenant) Submit(line string, timeout time.Duration) (output, cwd string, err error) {
	now := t.clock()
	t.mu.Lock()
	if t.dead != nil {
		err := t.dead
		t.mu.Unlock()
		return "", "", err
	}
	t.lastUsed = now
	if !t.limiter.allow(now) {
		t.mu.Unlock()
		return "", "", fmt.Errorf("%w: tenant %q", ErrRateLimited, t.name)
	}
	if err := t.brk.Allow(); err != nil {
		t.mu.Unlock()
		return "", "", fmt.Errorf("tenant %q admission: %w", t.name, err)
	}
	j := &job{line: line, resp: make(chan jobResult, 1)}
	select {
	case t.queue <- j:
	default:
		t.mu.Unlock()
		return "", "", fmt.Errorf("%w: tenant %q (depth %d)", ErrQueueFull, t.name, cap(t.queue))
	}
	t.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-j.resp:
		t.record(serviceOK(res.err))
		return res.out, res.cwd, res.err
	case <-timer.C:
		j.abandoned.Store(true)
		t.record(false)
		return "", "", fmt.Errorf("%w: tenant %q after %v", ErrDeadline, t.name, timeout)
	}
}

// serviceOK classifies a command outcome for the admission breaker: the
// breaker guards the tenant's ability to service commands, so only
// service-level failures (crashes; deadlines are recorded by the
// caller) count against it. A command's own error — a typo, an
// unreachable destination — is the network's problem, not the tenant's.
func serviceOK(err error) bool {
	return !errors.Is(err, ErrTenantCrashed) && !errors.Is(err, ErrTenantDead)
}

func (t *Tenant) record(ok bool) {
	t.mu.Lock()
	t.brk.Record(ok)
	t.mu.Unlock()
}

// attach registers one more operator session on the tenant.
func (t *Tenant) attach() {
	t.mu.Lock()
	t.sessions++
	t.lastUsed = t.clock()
	t.mu.Unlock()
}

// detach unregisters a session.
func (t *Tenant) detach() {
	t.mu.Lock()
	t.sessions--
	t.mu.Unlock()
}

// idleFor reports whether the tenant has had no session and no command
// for at least d. A recovering tenant is never idle: reaping one
// mid-replay would race the supervisor.
func (t *Tenant) idleFor(now time.Time, d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sessions == 0 && t.dead == nil && !t.recovering && now.Sub(t.lastUsed) >= d
}

// TenantInfo is one tenant's service-level state for health reporting.
type TenantInfo struct {
	Name     string `json:"name"`
	Sessions int    `json:"sessions"`
	Queued   int    `json:"queued"`
	Breaker  string `json:"breaker"`
	// State is "serving", or "recovering" while the supervisor rebuilds
	// the tenant from its journal.
	State string `json:"state,omitempty"`
	// Restarts counts supervised restarts since the last clean recovery.
	Restarts int    `json:"restarts,omitempty"`
	Dead     string `json:"dead,omitempty"`
}

// Info snapshots the tenant's service-level state.
func (t *Tenant) Info() TenantInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	info := TenantInfo{
		Name:     t.name,
		Sessions: t.sessions,
		Queued:   len(t.queue),
		Breaker:  t.brk.State().String(),
		State:    "serving",
		Restarts: t.restarts,
	}
	if t.recovering {
		info.State = "recovering"
	}
	if t.dead != nil {
		info.Dead = t.dead.Error()
	}
	return info
}
