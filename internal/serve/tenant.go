package serve

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"liteview/internal/core"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// Tenant is one simulated testbed behind the service: a single
// goroutine owns its Runner (and therefore its whole simulation) for
// the tenant's entire life, draining a bounded command queue. Sessions
// submit commands through Submit, which applies the admission layer —
// token bucket, circuit breaker, bounded queue — and waits under a
// wall-clock deadline. A panic inside the simulation kills only this
// tenant: the goroutine reports the crash, fails queued commands, and
// exits; the daemon keeps serving every other tenant.
type Tenant struct {
	name  string
	queue chan *job
	quit  chan struct{} // closed by stop(); tells the loop to exit
	done  chan struct{} // closed when the loop has exited
	stop1 sync.Once
	clock func() time.Time
	epoch time.Time // breaker clock origin
	logf  func(format string, args ...any)
	// onCrash is the server's reap hook, called off the tenant loop
	// exactly once if the simulation panics.
	onCrash func(name string, reason error)

	mu       sync.Mutex
	dead     error // non-nil once the tenant is unusable; the reason
	sessions int
	lastUsed time.Time
	limiter  *bucket
	brk      *core.Breaker
	// rec is the tenant simulation's telemetry recorder, captured once
	// on the tenant goroutine right after the Runner is built (nil when
	// the Runner exposes none). Service goroutines only Subscribe to it.
	rec *telemetry.Recorder
}

// job is one queued command and its reply path. resp has capacity 1 so
// the tenant loop never blocks on a waiter that already gave up.
type job struct {
	line      string
	resp      chan jobResult
	abandoned atomic.Bool // waiter hit its deadline while the job was queued
}

type jobResult struct {
	out string
	cwd string
	err error
}

// newTenant builds the tenant and starts its simulation goroutine. The
// Runner is constructed on that goroutine — from first event to last,
// the simulation never migrates.
func newTenant(name string, cfg Config, clock func() time.Time, onCrash func(string, error)) *Tenant {
	now := clock()
	t := &Tenant{
		name:     name,
		queue:    make(chan *job, cfg.QueueDepth),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		clock:    clock,
		epoch:    now,
		logf:     cfg.Logf,
		onCrash:  onCrash,
		lastUsed: now,
		limiter:  newBucket(cfg.RatePerSec, cfg.Burst, now),
	}
	threshold := cfg.BreakerThreshold
	if threshold == 0 {
		threshold = core.DefaultBreakerThreshold
	}
	cooldown := cfg.BreakerCooldown
	if cooldown == 0 {
		cooldown = core.DefaultBreakerCooldown
	}
	// The admission breaker is the same three-state machine that guards
	// the workstation's per-node command path (internal/core), driven by
	// wall time instead of virtual.
	t.brk = &core.Breaker{
		Threshold: threshold,
		Cooldown:  sim.Time(cooldown),
		Now:       func() sim.Time { return sim.Time(t.clock().Sub(t.epoch)) },
	}
	go t.loop(cfg.NewRunner)
	return t
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// loop is the tenant goroutine: build the simulation, then serve the
// queue until stop or crash.
func (t *Tenant) loop(build func(string) (Runner, error)) {
	defer close(t.done)
	r, err := build(t.name)
	if err != nil {
		t.kill(fmt.Errorf("%w: building tenant %q: %v", ErrTenantDead, t.name, err))
		return
	}
	if src, ok := r.(TelemetrySource); ok {
		// Materialize the recorder here, on the goroutine that owns the
		// simulation, then publish the pointer for watch sessions. The
		// recorder starts stopped; `trace on` submitted through the
		// queue turns it on without leaving this goroutine.
		rec := src.Telemetry()
		t.mu.Lock()
		t.rec = rec
		t.mu.Unlock()
	}
	for {
		select {
		case <-t.quit:
			t.kill(fmt.Errorf("%w: tenant %q stopped", ErrTenantDead, t.name))
			return
		case j := <-t.queue:
			if j.abandoned.Load() {
				continue // its session gave up while it sat in the queue
			}
			res, crashed := t.runOne(r, j.line)
			j.resp <- res
			if crashed {
				t.kill(fmt.Errorf("%w: tenant %q: %v", ErrTenantDead, t.name, res.err))
				if t.onCrash != nil {
					t.onCrash(t.name, res.err)
				}
				return
			}
		}
	}
}

// runOne executes one command with panic isolation: a crash inside the
// simulation becomes an ErrTenantCrashed result instead of a dead daemon.
func (t *Tenant) runOne(r Runner, line string) (res jobResult, crashed bool) {
	defer func() {
		if p := recover(); p != nil {
			t.logf("serve: tenant %q panicked running %q: %v\n%s", t.name, line, p, debug.Stack())
			res = jobResult{err: fmt.Errorf("%w: panic: %v", ErrTenantCrashed, p)}
			crashed = true
		}
	}()
	out, err := r.Run(line)
	return jobResult{out: out, cwd: r.Cwd(), err: err}, false
}

// kill marks the tenant dead and fails every queued command. Holding
// the mutex across the drain closes the race with Submit: a job is
// either enqueued before the death (drained here) or rejected after.
func (t *Tenant) kill(reason error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dead == nil {
		t.dead = reason
	}
	for {
		select {
		case j := <-t.queue:
			j.resp <- jobResult{err: t.dead}
		default:
			return
		}
	}
}

// stop asks the tenant loop to exit after the in-flight command. Wait
// on Done() for completion.
func (t *Tenant) stop() { t.stop1.Do(func() { close(t.quit) }) }

// Done is closed once the tenant goroutine has exited.
func (t *Tenant) Done() <-chan struct{} { return t.done }

// Recorder returns the tenant simulation's telemetry recorder, or nil
// when the runner exposes none (or the build has not finished yet).
// Callers may only use the recorder's cross-goroutine-safe surface:
// Subscribe and Subscription methods.
func (t *Tenant) Recorder() *telemetry.Recorder {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rec
}

// Dead returns the reap reason, or nil while the tenant serves.
func (t *Tenant) Dead() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dead
}

// Submit runs one command line on the tenant, waiting at most timeout
// of wall-clock time. It returns the command's output, the session
// cwd after the command, and the command's error. Admission failures
// (rate limit, open breaker, full queue) and deadline expiry surface as
// the package's typed errors without ever touching the simulation.
func (t *Tenant) Submit(line string, timeout time.Duration) (output, cwd string, err error) {
	now := t.clock()
	t.mu.Lock()
	if t.dead != nil {
		err := t.dead
		t.mu.Unlock()
		return "", "", err
	}
	t.lastUsed = now
	if !t.limiter.allow(now) {
		t.mu.Unlock()
		return "", "", fmt.Errorf("%w: tenant %q", ErrRateLimited, t.name)
	}
	if err := t.brk.Allow(); err != nil {
		t.mu.Unlock()
		return "", "", fmt.Errorf("tenant %q admission: %w", t.name, err)
	}
	j := &job{line: line, resp: make(chan jobResult, 1)}
	select {
	case t.queue <- j:
	default:
		t.mu.Unlock()
		return "", "", fmt.Errorf("%w: tenant %q (depth %d)", ErrQueueFull, t.name, cap(t.queue))
	}
	t.mu.Unlock()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-j.resp:
		t.record(serviceOK(res.err))
		return res.out, res.cwd, res.err
	case <-timer.C:
		j.abandoned.Store(true)
		t.record(false)
		return "", "", fmt.Errorf("%w: tenant %q after %v", ErrDeadline, t.name, timeout)
	}
}

// serviceOK classifies a command outcome for the admission breaker: the
// breaker guards the tenant's ability to service commands, so only
// service-level failures (crashes; deadlines are recorded by the
// caller) count against it. A command's own error — a typo, an
// unreachable destination — is the network's problem, not the tenant's.
func serviceOK(err error) bool {
	return !errors.Is(err, ErrTenantCrashed) && !errors.Is(err, ErrTenantDead)
}

func (t *Tenant) record(ok bool) {
	t.mu.Lock()
	t.brk.Record(ok)
	t.mu.Unlock()
}

// attach registers one more operator session on the tenant.
func (t *Tenant) attach() {
	t.mu.Lock()
	t.sessions++
	t.lastUsed = t.clock()
	t.mu.Unlock()
}

// detach unregisters a session.
func (t *Tenant) detach() {
	t.mu.Lock()
	t.sessions--
	t.mu.Unlock()
}

// idleFor reports whether the tenant has had no session and no command
// for at least d.
func (t *Tenant) idleFor(now time.Time, d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sessions == 0 && t.dead == nil && now.Sub(t.lastUsed) >= d
}

// TenantInfo is one tenant's service-level state for health reporting.
type TenantInfo struct {
	Name     string `json:"name"`
	Sessions int    `json:"sessions"`
	Queued   int    `json:"queued"`
	Breaker  string `json:"breaker"`
	Dead     string `json:"dead,omitempty"`
}

// Info snapshots the tenant's service-level state.
func (t *Tenant) Info() TenantInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	info := TenantInfo{
		Name:     t.name,
		Sessions: t.sessions,
		Queued:   len(t.queue),
		Breaker:  t.brk.State().String(),
	}
	if t.dead != nil {
		info.Dead = t.dead.Error()
	}
	return info
}
