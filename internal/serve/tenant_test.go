package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"liteview/internal/core"
)

// fakeRunner is a scriptable Runner for service-layer tests: fn decides
// each command's fate, delay (atomic) simulates a slow simulation.
type fakeRunner struct {
	delay atomic.Int64 // nanoseconds per command
	fn    func(line string) (string, error)
}

func (r *fakeRunner) Run(line string) (string, error) {
	if d := time.Duration(r.delay.Load()); d > 0 {
		time.Sleep(d)
	}
	if r.fn != nil {
		return r.fn(line)
	}
	return "ran:" + line + "\n", nil
}

func (r *fakeRunner) Cwd() string { return "/" }

// testTenant builds a tenant around a fakeRunner with tight timings.
func testTenant(t *testing.T, cfg Config, r Runner) *Tenant {
	t.Helper()
	cfg.NewRunner = func(string, uint64) (Runner, error) { return r, nil }
	cfg = cfg.withDefaults()
	tn := newTenant(tenantParams{name: "t"}, cfg, time.Now)
	t.Cleanup(func() {
		tn.stop()
		<-tn.Done()
	})
	return tn
}

func TestTenantRunsCommands(t *testing.T) {
	tn := testTenant(t, Config{}, &fakeRunner{})
	out, cwd, err := tn.Submit("ping", time.Second)
	if err != nil || out != "ran:ping\n" || cwd != "/" {
		t.Fatalf("Submit = (%q, %q, %v)", out, cwd, err)
	}
}

func TestTenantDeadlineAndAbandonedJobs(t *testing.T) {
	r := &fakeRunner{}
	r.delay.Store(int64(200 * time.Millisecond))
	tn := testTenant(t, Config{BreakerThreshold: -1}, r)
	// The first command blocks the loop past the deadline.
	if _, _, err := tn.Submit("slow", 30*time.Millisecond); !errors.Is(err, ErrDeadline) {
		t.Fatalf("slow command: err = %v, want ErrDeadline", err)
	}
	// A command abandoned while queued must be skipped, not run: fire one
	// more doomed command, then verify a later fast command still works.
	if _, _, err := tn.Submit("slow2", 10*time.Millisecond); !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued command: err = %v, want ErrDeadline", err)
	}
	r.delay.Store(0)
	out, _, err := tn.Submit("fast", 2*time.Second)
	if err != nil || out != "ran:fast\n" {
		t.Fatalf("fast command after deadlines = (%q, %v)", out, err)
	}
}

func TestTenantQueueBounded(t *testing.T) {
	r := &fakeRunner{}
	r.delay.Store(int64(time.Second))
	tn := testTenant(t, Config{QueueDepth: 1, BreakerThreshold: -1, RatePerSec: -1}, r)
	// Occupy the loop, fill the single queue slot, then overflow.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = tn.Submit(fmt.Sprintf("c%d", i), 50*time.Millisecond)
		}(i)
	}
	wg.Wait()
	// Both of those either ran into the deadline or the queue; now the
	// loop is still busy and the queue holds an abandoned job, so one
	// more submit must hit ErrQueueFull deterministically only when the
	// slot is taken — assert at least that overflow is typed correctly.
	sawFull := false
	for i := 0; i < 3 && !sawFull; i++ {
		_, _, err := tn.Submit("overflow", time.Millisecond)
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("bounded queue never reported ErrQueueFull under a blocked loop")
	}
}

func TestTenantPanicIsolationReapsQueuedWork(t *testing.T) {
	r := &fakeRunner{fn: func(line string) (string, error) {
		if line == "boom" {
			panic("injected chaos")
		}
		return "ok\n", nil
	}}
	var quiet Config
	quiet.Logf = func(string, ...any) {} // keep the stack trace out of test output
	tn := testTenant(t, quiet, r)
	if _, _, err := tn.Submit("fine", time.Second); err != nil {
		t.Fatalf("healthy command: %v", err)
	}
	_, _, err := tn.Submit("boom", time.Second)
	if !errors.Is(err, ErrTenantCrashed) {
		t.Fatalf("crash: err = %v, want ErrTenantCrashed", err)
	}
	if tn.Dead() == nil {
		t.Fatal("crashed tenant not marked dead")
	}
	// Everything after the crash fails fast with the death certificate.
	if _, _, err := tn.Submit("after", time.Second); !errors.Is(err, ErrTenantDead) {
		t.Fatalf("post-crash command: err = %v, want ErrTenantDead", err)
	}
}

func TestTenantBreakerTripThenRecover(t *testing.T) {
	r := &fakeRunner{}
	r.delay.Store(int64(time.Second))
	tn := testTenant(t, Config{
		BreakerThreshold: 2,
		BreakerCooldown:  300 * time.Millisecond,
		RatePerSec:       -1,
	}, r)
	// Two deadline failures open the admission breaker.
	for i := 0; i < 2; i++ {
		if _, _, err := tn.Submit("slow", 20*time.Millisecond); !errors.Is(err, ErrDeadline) {
			t.Fatalf("failure %d: err = %v, want ErrDeadline", i, err)
		}
	}
	if _, _, err := tn.Submit("x", time.Second); !errors.Is(err, core.ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a command: %v", err)
	}
	if info := tn.Info(); info.Breaker != "open" {
		t.Fatalf("Info.Breaker = %q, want open", info.Breaker)
	}
	// After the cooldown the half-open probe is admitted; the simulation
	// is healthy again, so the probe closes the breaker.
	r.delay.Store(0)
	time.Sleep(350 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		out, _, err := tn.Submit("probe", 2*time.Second)
		if err == nil {
			if out != "ran:probe\n" {
				t.Fatalf("probe output = %q", out)
			}
			break
		}
		// The loop may still be chewing on an old slow command; the
		// probe's failure re-opens the breaker for a fresh cooldown.
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if st := tn.Info().Breaker; st != "closed" {
		t.Fatalf("breaker after recovery = %q, want closed", st)
	}
}

func TestTenantRateLimited(t *testing.T) {
	tn := testTenant(t, Config{RatePerSec: 0.001, Burst: 1, BreakerThreshold: -1}, &fakeRunner{})
	if _, _, err := tn.Submit("one", time.Second); err != nil {
		t.Fatalf("first command within burst: %v", err)
	}
	if _, _, err := tn.Submit("two", time.Second); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second command: err = %v, want ErrRateLimited", err)
	}
}
