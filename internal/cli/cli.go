// Package cli holds the deployment-construction logic shared by the
// command-line tools (liteview, lvtopo, lvdiag): one flag set, one
// builder, identical semantics everywhere.
package cli

import (
	"flag"
	"fmt"
	"time"

	"liteview/internal/diagnose"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

// DeploymentFlags collects the topology knobs every tool exposes.
type DeploymentFlags struct {
	Topo    string
	Nodes   int
	Rows    int
	Cols    int
	Spacing float64
	Field   float64
	Seed    uint64
	Shadow  float64
	Asym    float64
	Warmup  time.Duration
	LPL     bool
	// Shard runs the deployment on the spatially sharded radio medium;
	// MedWorkers sets its concurrent assessment lanes. Results are
	// byte-identical to the unsharded single-ring medium on topologies
	// this size — sharding is a throughput knob for large deployments.
	Shard      bool
	MedWorkers int
}

// Register installs the flags on fs with the shared defaults.
func (d *DeploymentFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&d.Topo, "topo", "line", "topology: line, grid, random")
	fs.IntVar(&d.Nodes, "nodes", 9, "node count (line/random)")
	fs.IntVar(&d.Rows, "rows", 3, "grid rows")
	fs.IntVar(&d.Cols, "cols", 3, "grid cols")
	fs.Float64Var(&d.Spacing, "spacing", 20, "node spacing in meters (line/grid)")
	fs.Float64Var(&d.Field, "field", 80, "field edge in meters (random)")
	fs.Uint64Var(&d.Seed, "seed", 1, "simulation seed")
	fs.Float64Var(&d.Shadow, "shadow", 1.0, "shadowing sigma in dB")
	fs.Float64Var(&d.Asym, "asym", 1.5, "link asymmetry sigma in dB")
	fs.DurationVar(&d.Warmup, "warmup", 20*time.Second, "virtual warm-up time for discovery")
	fs.BoolVar(&d.LPL, "lpl", false, "duty-cycle the deployment (low-power listening)")
	fs.BoolVar(&d.Shard, "shard", false, "partition the radio medium into spatial cells (throughput knob for large deployments)")
	fs.IntVar(&d.MedWorkers, "medium-workers", 1, "concurrent delivery-assessment lanes on the sharded medium (implies -shard when >1)")
}

// Build assembles the testbed the flags describe (without protocols or
// warm-up; callers attach what they need, then WarmUp).
func (d *DeploymentFlags) Build() (*testbed.Testbed, error) {
	opt := testbed.DefaultOptions(d.Seed)
	opt.ShadowSigma = d.Shadow
	opt.AsymSigma = d.Asym
	opt.LPL = d.LPL
	if d.Shard || d.MedWorkers > 1 {
		opt.ShardMedium = true
		opt.MediumWorkers = d.MedWorkers
	}
	if d.LPL {
		// Broadcasts cost a full sleep interval of repeats under LPL:
		// beacon sparsely.
		opt.BeaconPeriod = 10 * time.Second
	}
	switch d.Topo {
	case "line":
		return testbed.Line(d.Nodes, d.Spacing, opt)
	case "grid":
		return testbed.Grid(d.Rows, d.Cols, d.Spacing, opt)
	case "random":
		return testbed.Random(d.Nodes, d.Field, d.Field, opt)
	default:
		return nil, fmt.Errorf("cli: unknown topology %q", d.Topo)
	}
}

// BuildManaged builds the testbed, attaches geographic forwarding and
// LiteView, and warms it up — the configuration every management tool
// starts from.
func (d *DeploymentFlags) BuildManaged() (*testbed.Testbed, error) {
	tb, err := d.Build()
	if err != nil {
		return nil, err
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		return nil, err
	}
	if _, err := tb.InstallLiteView(); err != nil {
		return nil, err
	}
	tb.WarmUp(d.Warmup)
	return tb, nil
}

// Targets lists every node as a diagnose walk target.
func Targets(tb *testbed.Testbed) []diagnose.Target {
	out := make([]diagnose.Target, 0, len(tb.Nodes))
	for _, n := range tb.Nodes {
		out = append(out, diagnose.Target{ID: n.ID(), Name: n.Name(), Pos: n.Position()})
	}
	return out
}
