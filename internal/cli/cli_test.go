package cli

import (
	"flag"
	"testing"
	"time"
)

func parse(t *testing.T, args ...string) *DeploymentFlags {
	t.Helper()
	var d DeploymentFlags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	d.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &d
}

func TestDefaultsBuildALine(t *testing.T) {
	d := parse(t)
	tb, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Nodes) != 9 {
		t.Fatalf("nodes = %d", len(tb.Nodes))
	}
	if tb.Node(8).Position().X != 160 {
		t.Fatalf("spacing wrong: %v", tb.Node(8).Position())
	}
}

func TestGridAndRandomFlags(t *testing.T) {
	d := parse(t, "-topo", "grid", "-rows", "2", "-cols", "5", "-spacing", "10")
	tb, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Nodes) != 10 {
		t.Fatalf("grid nodes = %d", len(tb.Nodes))
	}
	d = parse(t, "-topo", "random", "-nodes", "7", "-field", "50", "-seed", "3")
	tb, err = d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Nodes) != 7 {
		t.Fatalf("random nodes = %d", len(tb.Nodes))
	}
	for _, n := range tb.Nodes {
		p := n.Position()
		if p.X < 0 || p.X > 50 || p.Y < 0 || p.Y > 50 {
			t.Fatalf("node outside field: %v", p)
		}
	}
}

func TestUnknownTopologyRejected(t *testing.T) {
	d := parse(t, "-topo", "torus")
	if _, err := d.Build(); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestBuildManaged(t *testing.T) {
	d := parse(t, "-nodes", "3", "-spacing", "15", "-shadow", "0", "-asym", "0", "-warmup", "10s")
	tb, err := d.BuildManaged()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Eng.Now() != 10*time.Second {
		t.Fatalf("warm-up did not run: %v", tb.Eng.Now())
	}
	// LiteView is installed: the ping binary is in flash.
	if _, ok := tb.Node(0).BinaryInfo("ping"); !ok {
		t.Fatal("LiteView not installed")
	}
	// Geographic forwarding attached on port 10.
	if _, ok := tb.Router(10, 1); !ok {
		t.Fatal("geographic forwarding missing")
	}
	tgts := Targets(tb)
	if len(tgts) != 3 || tgts[2].Name != "192.168.0.3" {
		t.Fatalf("targets = %+v", tgts)
	}
}

func TestLPLFlag(t *testing.T) {
	d := parse(t, "-nodes", "2", "-lpl", "-warmup", "10s", "-shadow", "0", "-asym", "0")
	tb, err := d.BuildManaged()
	if err != nil {
		t.Fatal(err)
	}
	// Beacon period widened automatically for LPL.
	if tb.Node(0).Neighbors().Period() != 10*time.Second {
		t.Fatalf("beacon period = %v", tb.Node(0).Neighbors().Period())
	}
	st := tb.Node(1).Energy().Stats()
	if st.OffTime == 0 {
		t.Fatal("LPL flag did not duty-cycle the nodes")
	}
}
