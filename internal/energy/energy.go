// Package energy accounts for each mote's battery drain. Energy is the
// resource sensor-network management ultimately protects — the paper's
// efficiency goal (zero overhead when commands are inactive) and its
// radio power tuning workflow both exist because every transmitted
// milliwatt shortens the deployment's life.
//
// The meter integrates the CC2420's datasheet current draw over the
// radio's state timeline: RXCurrentMA whenever the node listens (idle
// listening dominates on an always-on mote), the PA-level-dependent
// transmit current while sending, and the power-down trickle when off.
package energy

import (
	"fmt"
	"time"

	"liteview/internal/radio"
	"liteview/internal/sim"
)

// DefaultBatteryJ is the usable energy of a 2×AA pack (≈2500 mAh at
// 3 V).
const DefaultBatteryJ = 27000.0

// Stats is a snapshot of a node's energy account.
type Stats struct {
	// TXJ, RXJ, OffJ are joules consumed per radio state.
	TXJ, RXJ, OffJ float64
	// TXTime, RXTime, OffTime are the state residencies.
	TXTime, RXTime, OffTime sim.Time
}

// TotalJ returns the total energy consumed.
func (s Stats) TotalJ() float64 { return s.TXJ + s.RXJ + s.OffJ }

func (s Stats) String() string {
	return fmt.Sprintf("tx %.3f J (%v), rx %.3f J (%v), off %.3f J (%v)",
		s.TXJ, s.TXTime, s.RXJ, s.RXTime, s.OffJ, s.OffTime)
}

// Meter integrates a radio's consumption over virtual time.
type Meter struct {
	eng     *sim.Engine
	rad     *radio.Radio
	battery float64
	stats   Stats
	lastAt  sim.Time
	lastTX  float64 // TX current at the moment TX began
}

// Attach installs a meter on the radio (replacing any previous state
// observer). battery is the usable budget in joules; zero selects
// DefaultBatteryJ.
func Attach(eng *sim.Engine, rad *radio.Radio, battery float64) *Meter {
	if battery <= 0 {
		battery = DefaultBatteryJ
	}
	m := &Meter{eng: eng, rad: rad, battery: battery, lastAt: eng.Now()}
	rad.SetNotify(func(old, _ radio.State) { m.settle(old) })
	return m
}

// settle folds the time since the last transition into the account for
// the state the radio was in.
func (m *Meter) settle(state radio.State) {
	now := m.eng.Now()
	dt := now - m.lastAt
	m.lastAt = now
	if dt <= 0 {
		return
	}
	seconds := float64(dt) / float64(time.Second)
	switch state {
	case radio.TX:
		// Use the PA current captured when TX began; the level cannot
		// change mid-frame.
		cur := m.lastTX
		if cur == 0 {
			cur = radio.TXCurrentMA(m.rad.PowerLevel())
		}
		m.stats.TXJ += cur / 1000 * radio.SupplyVolts * seconds
		m.stats.TXTime += dt
	case radio.RX:
		m.stats.RXJ += radio.RXCurrentMA / 1000 * radio.SupplyVolts * seconds
		m.stats.RXTime += dt
	case radio.Off:
		m.stats.OffJ += radio.OffCurrentMA / 1000 * radio.SupplyVolts * seconds
		m.stats.OffTime += dt
	}
	// Capture the TX current for the state we are entering.
	if m.rad.State() == radio.TX {
		m.lastTX = radio.TXCurrentMA(m.rad.PowerLevel())
	}
}

// Stats returns the account including the still-open current state.
func (m *Meter) Stats() Stats {
	m.settle(m.rad.State())
	return m.stats
}

// ConsumedJ returns total joules drawn so far.
func (m *Meter) ConsumedJ() float64 { return m.Stats().TotalJ() }

// RemainingJ returns the battery budget left (floored at zero).
func (m *Meter) RemainingJ() float64 {
	left := m.battery - m.ConsumedJ()
	if left < 0 {
		return 0
	}
	return left
}

// RemainingFraction returns the battery level in [0, 1].
func (m *Meter) RemainingFraction() float64 {
	return m.RemainingJ() / m.battery
}

// EstimateLifetime extrapolates the battery's life from the average
// draw so far. It reports ok=false before any consumption.
func (m *Meter) EstimateLifetime() (sim.Time, bool) {
	consumed := m.ConsumedJ()
	elapsed := m.eng.Now()
	if consumed <= 0 || elapsed <= 0 {
		return 0, false
	}
	rate := consumed / (float64(elapsed) / float64(time.Second)) // J/s
	seconds := m.battery / rate
	// Cap at ~10 years to keep the arithmetic in range.
	const cap = 10 * 365 * 24 * 3600
	if seconds > cap {
		seconds = cap
	}
	return sim.Time(seconds * float64(time.Second)), true
}
