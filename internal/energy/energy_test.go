package energy

import (
	"math"
	"testing"
	"time"

	"liteview/internal/radio"
	"liteview/internal/sim"
)

func meterFixture(t *testing.T) (*sim.Engine, *radio.Radio, *Meter) {
	t.Helper()
	eng := sim.NewEngine(1)
	rad, err := radio.New(17)
	if err != nil {
		t.Fatal(err)
	}
	return eng, rad, Attach(eng, rad, 0)
}

func TestIdleListeningAccrues(t *testing.T) {
	eng, _, m := meterFixture(t)
	eng.MustSchedule(10*time.Second, func() {})
	eng.Run()
	st := m.Stats()
	// 10 s of RX at 18.8 mA, 3 V: 0.564 J.
	want := radio.RXCurrentMA / 1000 * radio.SupplyVolts * 10
	if math.Abs(st.RXJ-want) > 1e-9 {
		t.Fatalf("RXJ = %f, want %f", st.RXJ, want)
	}
	if st.RXTime != 10*time.Second {
		t.Fatalf("RXTime = %v", st.RXTime)
	}
	if st.TXJ != 0 || st.OffJ != 0 {
		t.Fatalf("unexpected other-state energy: %+v", st)
	}
}

func TestTXChargedAtPALevel(t *testing.T) {
	eng, rad, m := meterFixture(t)
	// 1 s RX, then 2 s TX at full power, then RX again.
	eng.MustSchedule(time.Second, func() { rad.SetState(radio.TX) })
	eng.MustSchedule(3*time.Second, func() { rad.SetState(radio.RX) })
	eng.MustSchedule(4*time.Second, func() {})
	eng.Run()
	st := m.Stats()
	wantTX := radio.TXCurrentMA(31) / 1000 * radio.SupplyVolts * 2
	if math.Abs(st.TXJ-wantTX) > 1e-9 {
		t.Fatalf("TXJ = %f, want %f", st.TXJ, wantTX)
	}
	if st.TXTime != 2*time.Second {
		t.Fatalf("TXTime = %v", st.TXTime)
	}
	wantRX := radio.RXCurrentMA / 1000 * radio.SupplyVolts * 2 // 1s before + 1s after
	if math.Abs(st.RXJ-wantRX) > 1e-9 {
		t.Fatalf("RXJ = %f, want %f", st.RXJ, wantRX)
	}
}

func TestLowerPowerDrawsLess(t *testing.T) {
	run := func(level int) float64 {
		eng := sim.NewEngine(1)
		rad, _ := radio.New(17)
		rad.SetPowerLevel(level)
		m := Attach(eng, rad, 0)
		eng.MustSchedule(0, func() { rad.SetState(radio.TX) })
		eng.MustSchedule(5*time.Second, func() { rad.SetState(radio.RX) })
		eng.Run()
		return m.Stats().TXJ
	}
	hi, lo := run(31), run(3)
	if lo >= hi {
		t.Fatalf("PA 3 (%f J) should draw less than PA 31 (%f J)", lo, hi)
	}
	// Datasheet ratio: 8.5 vs 17.4 mA.
	if math.Abs(lo/hi-8.5/17.4) > 0.01 {
		t.Fatalf("ratio = %f, want %f", lo/hi, 8.5/17.4)
	}
}

func TestOffDrawsTrickle(t *testing.T) {
	eng, rad, m := meterFixture(t)
	eng.MustSchedule(0, func() { rad.SetState(radio.Off) })
	eng.MustSchedule(time.Hour, func() { rad.SetState(radio.RX) })
	eng.Run()
	st := m.Stats()
	if st.OffJ <= 0 {
		t.Fatal("off state free")
	}
	// An hour off must cost far less than a second of listening.
	if st.OffJ > radio.RXCurrentMA/1000*radio.SupplyVolts {
		t.Fatalf("OffJ = %f, too expensive", st.OffJ)
	}
}

func TestTimeConservation(t *testing.T) {
	eng, rad, m := meterFixture(t)
	eng.MustSchedule(time.Second, func() { rad.SetState(radio.TX) })
	eng.MustSchedule(2*time.Second, func() { rad.SetState(radio.Off) })
	eng.MustSchedule(5*time.Second, func() { rad.SetState(radio.RX) })
	eng.MustSchedule(9*time.Second, func() {})
	eng.Run()
	st := m.Stats()
	if st.TXTime+st.RXTime+st.OffTime != 9*time.Second {
		t.Fatalf("state residencies do not cover the timeline: %+v", st)
	}
}

func TestBatteryAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	rad, _ := radio.New(17)
	m := Attach(eng, rad, 1.0) // a 1-joule battery
	if m.RemainingFraction() != 1 {
		t.Fatalf("fresh battery = %f", m.RemainingFraction())
	}
	// 18.8 mA × 3 V ≈ 56.4 mW → the joule dies in ~17.7 s of listening.
	eng.MustSchedule(10*time.Second, func() {})
	eng.Run()
	frac := m.RemainingFraction()
	if frac <= 0.3 || frac >= 0.5 {
		t.Fatalf("after 10 s: %f remaining, want ≈ 0.436", frac)
	}
	eng.MustSchedule(20*time.Second, func() {})
	eng.Run()
	if m.RemainingJ() != 0 {
		t.Fatalf("overdrawn battery should floor at zero, got %f", m.RemainingJ())
	}
}

func TestLifetimeEstimate(t *testing.T) {
	eng, _, m := meterFixture(t)
	if _, ok := m.EstimateLifetime(); ok {
		t.Fatal("estimate before any consumption")
	}
	eng.MustSchedule(time.Minute, func() {})
	eng.Run()
	life, ok := m.EstimateLifetime()
	if !ok {
		t.Fatal("no estimate after consumption")
	}
	// Always-on listening at 56.4 mW on 27 kJ ≈ 5.5 days.
	days := float64(life) / float64(24*time.Hour)
	if days < 4 || days > 8 {
		t.Fatalf("lifetime = %.1f days, want ≈ 5.5", days)
	}
}

func TestStatsString(t *testing.T) {
	_, _, m := meterFixture(t)
	if m.Stats().String() == "" {
		t.Fatal("empty formatting")
	}
}
