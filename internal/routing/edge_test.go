package routing_test

import (
	"testing"
	"time"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/neighbor"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/routing"
	"liteview/internal/sim"
	"liteview/internal/stack"
	"liteview/internal/testbed"
)

func TestTreeReparentsAfterBlacklist(t *testing.T) {
	// A 2D layout where node 4 can reach the root via node 2 or node 3.
	opt := testbed.DefaultOptions(61)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Grid(2, 2, 25, opt) // nodes 1,2 top row; 3,4 bottom; diagonals are gated
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachTree(1, routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(40 * time.Second)
	r4, _ := tb.Router(routing.TreePort, 4)
	parent, _, hasPath, _ := routing.TreeState(r4)
	if !hasPath {
		t.Fatal("node 4 never joined the tree")
	}
	if parent != 2 && parent != 3 {
		t.Fatalf("parent = %d", parent)
	}
	// Blacklist the current parent at node 4: the tree must reparent to
	// the sibling once fresh advertisements arrive.
	n4, _ := tb.ByID(4)
	if err := n4.SysNeighborTable().Blacklist(parent, true); err != nil {
		t.Fatal(err)
	}
	tb.Run(30 * time.Second)
	var got []*stack.Packet
	tb.Node(0).Stack().Subscribe(100, func(p *stack.Packet, _ phys.NodeID, _ medium.RxInfo) {
		got = append(got, p)
	})
	if err := r4.SendTo(1, 100, []byte("rerouted"), false, false); err != nil {
		t.Fatalf("send after blacklist: %v", err)
	}
	tb.Run(10 * time.Second)
	newParent, _, hasPath, _ := routing.TreeState(r4)
	if !hasPath {
		t.Fatal("node 4 lost the tree permanently")
	}
	if newParent == parent {
		t.Fatalf("still using the blacklisted parent %d", newParent)
	}
	if len(got) != 1 {
		t.Fatalf("delivery after reparenting: %d packets", len(got))
	}
}

func TestGeographicLocatorMissesAreSkipped(t *testing.T) {
	// The locator only knows some nodes; greedy must route via known
	// ones and ignore the rest without crashing.
	eng, stA, table := rawNode(t, 62, 1, 0)
	// Neighbors 2 (known position) and 3 (unknown).
	table.Observe(2, 105, -30, eng.Now())
	table.Observe(3, 110, -25, eng.Now())
	loc := func(id phys.NodeID) (phys.Position, bool) {
		switch id {
		case 1:
			return phys.Position{X: 0}, true
		case 2:
			return phys.Position{X: 10}, true
		case 9:
			return phys.Position{X: 30}, true
		}
		return phys.Position{}, false
	}
	r, err := routing.NewGeographic(eng, stA, table, loc, routing.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	next, err := r.NextHop(9)
	if err != nil {
		t.Fatal(err)
	}
	if next != 2 {
		t.Fatalf("next = %d, want 2 (the only locatable neighbor)", next)
	}
}

func TestGeographicFallbackPrefersQuality(t *testing.T) {
	eng, stA, table := rawNode(t, 63, 1, 0)
	// All neighbors below the LQI gate: the fallback must pick the
	// best-quality one that still makes progress, not the longest hop.
	table.Observe(2, 75, -40, eng.Now()) // closer, decent-ish
	table.Observe(3, 55, -48, eng.Now()) // most progress, junk link
	loc := func(id phys.NodeID) (phys.Position, bool) {
		pos := map[phys.NodeID]phys.Position{1: {X: 0}, 2: {X: 10}, 3: {X: 20}, 9: {X: 40}}
		p, ok := pos[id]
		return p, ok
	}
	r, err := routing.NewGeographic(eng, stA, table, loc, routing.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	next, err := r.NextHop(9)
	if err != nil {
		t.Fatal(err)
	}
	if next != 2 {
		t.Fatalf("fallback picked %d, want the higher-LQI 2", next)
	}
}

func TestGeographicNeedsLocator(t *testing.T) {
	eng, stA, table := rawNode(t, 64, 1, 0)
	if _, err := routing.NewGeographic(eng, stA, table, nil, routing.DefaultConfig()); err == nil {
		t.Fatal("nil locator accepted")
	}
}

func TestFloodTTLScopesPropagation(t *testing.T) {
	cfg := routing.DefaultConfig()
	cfg.DefaultTTL = 1 // origin + one relay ring only
	tb := lineBed(t, 5, 20, 65)
	if err := tb.AttachFlooding(cfg); err != nil {
		t.Fatal(err)
	}
	reached := map[int]bool{}
	for i := 1; i < 5; i++ {
		i := i
		tb.Node(i).Stack().Subscribe(100, func(*stack.Packet, phys.NodeID, medium.RxInfo) {
			reached[i+1] = true
		})
	}
	r, _ := tb.Router(routing.FloodingPort, 1)
	if err := r.SendTo(phys.Broadcast, 100, []byte("x"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second)
	if !reached[2] {
		t.Fatal("one-hop neighbor missed a TTL-1 flood")
	}
	if reached[5] {
		t.Fatal("TTL-1 flood crossed four hops")
	}
}

// rawNode builds a single bare node (stack + table) for strategy tests.
func rawNode(t *testing.T, seed uint64, id phys.NodeID, x float64) (*sim.Engine, *stack.Stack, *neighbor.Table) {
	t.Helper()
	eng := sim.NewEngine(seed)
	model := phys.DefaultModel(seed)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	med := medium.New(eng, model)
	rad, err := radio.New(17)
	if err != nil {
		t.Fatal(err)
	}
	var st *stack.Stack
	m, err := mac.New(eng, med, rad, id, phys.Position{X: x}, mac.DefaultConfig(),
		func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
	if err != nil {
		t.Fatal(err)
	}
	st = stack.New(eng, m)
	return eng, st, neighbor.NewTable(0)
}
