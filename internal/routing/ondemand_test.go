package routing_test

import (
	"errors"
	"testing"
	"time"

	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/routing"
	"liteview/internal/stack"
	"liteview/internal/testbed"
)

// odBed builds an n-node line with the on-demand protocol attached.
func odBed(t *testing.T, n int, spacing float64, seed uint64) *testbed.Testbed {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(n, spacing, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachOnDemand(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	return tb
}

func TestOnDemandDiscoversAndDelivers(t *testing.T) {
	tb := odBed(t, 5, 20, 51)
	var got []*stack.Packet
	subscribe(t, tb, 4, 100, &got)
	r, _ := tb.Router(routing.OnDemandPort, 1)
	// No route exists yet: the send parks the packet and starts
	// discovery; it must NOT return an error.
	if err := r.SendTo(5, 100, []byte("discover-me"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second)
	if len(got) != 1 || string(got[0].Data) != "discover-me" {
		t.Fatalf("delivery after discovery: %v", got)
	}
	// The route is cached now: a second packet goes straight out.
	routes, ok := routing.RouteTable(r)
	if !ok {
		t.Fatal("not an on-demand router")
	}
	if _, have := routes[5]; !have {
		t.Fatalf("no cached route to 5: %v", routes)
	}
	if err := r.SendTo(5, 100, []byte("cached"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	if len(got) != 2 {
		t.Fatalf("cached-route delivery failed: %d packets", len(got))
	}
}

func TestOnDemandMultiHopRoute(t *testing.T) {
	tb := odBed(t, 5, 20, 52)
	var got []*stack.Packet
	subscribe(t, tb, 4, 100, &got)
	r, _ := tb.Router(routing.OnDemandPort, 1)
	r.SendTo(5, 100, []byte("x"), false, false)
	tb.Run(10 * time.Second)
	if len(got) != 1 {
		t.Fatal("not delivered")
	}
	// Intermediate nodes forwarded: the path is multi-hop.
	forwarded := uint64(0)
	for id := phys.NodeID(2); id <= 4; id++ {
		rr, _ := tb.Router(routing.OnDemandPort, id)
		forwarded += rr.Stats().Forwarded
	}
	if forwarded == 0 {
		t.Fatal("no intermediate forwarding")
	}
	// Intermediate nodes installed routes from the flood/reply pass.
	r3, _ := tb.Router(routing.OnDemandPort, 3)
	routes, _ := routing.RouteTable(r3)
	if len(routes) == 0 {
		t.Fatal("intermediate node learned no routes")
	}
}

func TestOnDemandDiscoveryFailure(t *testing.T) {
	// The target is unreachable: discovery retries then drops the
	// parked packets without delivering anything.
	tb := odBed(t, 3, 20, 53)
	r, _ := tb.Router(routing.OnDemandPort, 1)
	if err := r.SendTo(99, 100, []byte("void"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(15 * time.Second)
	st := r.Stats()
	if st.DroppedNoRoute == 0 {
		t.Fatalf("failed discovery left no drop trace: %+v", st)
	}
	routes, _ := routing.RouteTable(r)
	if _, have := routes[99]; have {
		t.Fatal("phantom route installed")
	}
}

func TestOnDemandRouteRepair(t *testing.T) {
	// Establish a route, kill the relay, send again: the dead link's
	// routes are invalidated by the missing MAC acks, and a fresh
	// discovery finds... nothing on a line (no alternative), so the
	// packet is dropped — but the stale route must NOT be used forever.
	tb := odBed(t, 3, 20, 54)
	var got []*stack.Packet
	subscribe(t, tb, 2, 100, &got)
	r, _ := tb.Router(routing.OnDemandPort, 1)
	r.SendTo(3, 100, []byte("first"), false, false)
	tb.Run(10 * time.Second)
	if len(got) != 1 {
		t.Fatalf("initial delivery failed: %d", len(got))
	}
	// Kill node 2 (the only relay).
	tb.Node(1).Radio().SetState(radio.Off)
	r.SendTo(3, 100, []byte("into-the-void"), false, false)
	tb.Run(15 * time.Second)
	routes, _ := routing.RouteTable(r)
	if next, have := routes[3]; have && next == 2 {
		t.Fatalf("stale route through the dead relay survived: %v", routes)
	}
}

func TestOnDemandNextHopForTraceroute(t *testing.T) {
	tb := odBed(t, 3, 20, 55)
	r, _ := tb.Router(routing.OnDemandPort, 1)
	// Without a route, NextHop must fail (traceroute needs a path that
	// already exists — establish it with a ping first).
	if _, err := r.NextHop(3); !errors.Is(err, routing.ErrRouteDiscovery) {
		t.Fatalf("err = %v, want ErrRouteDiscovery", err)
	}
	// The failed NextHop kicked off a discovery as a side effect; after
	// it completes, NextHop answers.
	tb.Run(10 * time.Second)
	next, err := r.NextHop(3)
	if err != nil {
		t.Fatalf("NextHop after discovery: %v", err)
	}
	if next != 2 {
		t.Fatalf("next hop = %d, want 2", next)
	}
}

func TestOnDemandCoexistsWithOtherProtocols(t *testing.T) {
	opt := testbed.DefaultOptions(56)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(3, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachOnDemand(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	var viaGeo, viaOD []*stack.Packet
	subscribe(t, tb, 2, 100, &viaGeo)
	subscribe(t, tb, 2, 101, &viaOD)
	rg, _ := tb.Router(routing.GeographicPort, 1)
	ro, _ := tb.Router(routing.OnDemandPort, 1)
	if err := rg.SendTo(3, 100, []byte("geo"), false, false); err != nil {
		t.Fatal(err)
	}
	if err := ro.SendTo(3, 101, []byte("od"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second)
	if len(viaGeo) != 1 || len(viaOD) != 1 {
		t.Fatalf("coexistence: geo=%d od=%d", len(viaGeo), len(viaOD))
	}
	if ro.Name() != "on-demand (AODV-style)" {
		t.Fatalf("name = %q", ro.Name())
	}
}

func TestOnDemandPaddingWorks(t *testing.T) {
	// Protocol independence: link-quality padding is a router-layer
	// mechanism, so it must work over the on-demand protocol too.
	tb := odBed(t, 4, 20, 57)
	var got []*stack.Packet
	subscribe(t, tb, 3, 100, &got)
	r, _ := tb.Router(routing.OnDemandPort, 1)
	if err := r.SendTo(4, 100, make([]byte, 16), true, true); err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second)
	if len(got) != 1 {
		t.Fatal("padded probe not delivered")
	}
	if len(got[0].Pad) < 2 {
		t.Fatalf("pad records = %d on a multi-hop path", len(got[0].Pad))
	}
}

func TestRouteTableOnWrongProtocol(t *testing.T) {
	tb := lineBed(t, 2, 10, 58)
	tb.AttachGeographic(routing.DefaultConfig())
	r, _ := tb.Router(routing.GeographicPort, 1)
	if _, ok := routing.RouteTable(r); ok {
		t.Fatal("RouteTable answered for geographic forwarding")
	}
}

func TestOnDemandRoutesExpire(t *testing.T) {
	tb := odBed(t, 3, 20, 59)
	r, _ := tb.Router(routing.OnDemandPort, 1)
	var got []*stack.Packet
	subscribe(t, tb, 2, 100, &got)
	r.SendTo(3, 100, []byte("x"), false, false)
	tb.Run(10 * time.Second)
	if routes, _ := routing.RouteTable(r); len(routes) == 0 {
		t.Fatal("no routes installed")
	}
	// Idle past the route lifetime: entries age out.
	tb.Run(routing.RouteLifetime + 10*time.Second)
	if routes, _ := routing.RouteTable(r); len(routes) != 0 {
		t.Fatalf("routes survived expiry: %v", routes)
	}
}
