package routing

import (
	"errors"
	"fmt"

	"liteview/internal/medium"
	"liteview/internal/neighbor"
	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

// Locator resolves a node's physical position. On a real deployment the
// coordinates come from the deployment plan or GPS; here the testbed
// supplies them. Geographic forwarding needs the positions of the local
// node, its neighbors, and the destination.
type Locator func(phys.NodeID) (phys.Position, bool)

// geographic is greedy geographic forwarding: each hop relays to the
// usable (non-blacklisted) neighbor that makes the most progress toward
// the destination. A hop with no neighbor strictly closer than itself
// drops the packet (no face routing; the paper's testbed is a connected
// line/grid where greedy suffices).
type geographic struct {
	self    phys.NodeID
	table   *neighbor.Table
	locator Locator
	minLQI  float64
}

// NewGeographic attaches greedy geographic forwarding to st on
// GeographicPort, resolving positions through locator.
func NewGeographic(eng *sim.Engine, st *stack.Stack, table *neighbor.Table, locator Locator, cfg Config) (*Router, error) {
	return NewGeographicOnPort(eng, st, table, locator, GeographicPort, cfg)
}

// NewGeographicOnPort is NewGeographic on an explicit port, which lets
// tests and deployments run several instances side by side.
func NewGeographicOnPort(eng *sim.Engine, st *stack.Stack, table *neighbor.Table, locator Locator, port byte, cfg Config) (*Router, error) {
	if locator == nil {
		return nil, errors.New("routing: geographic forwarding needs a locator")
	}
	if cfg.QueueCap <= 0 {
		cfg = DefaultConfig()
	}
	g := &geographic{self: st.NodeID(), table: table, locator: locator, minLQI: cfg.MinLQI}
	return newRouter(eng, st, table, port, cfg, g)
}

func (g *geographic) name() string { return "geographic forwarding" }

func (g *geographic) nextHop(p *stack.Packet) (phys.NodeID, error) {
	dstPos, ok := g.locator(p.Dst)
	if !ok {
		return 0, fmt.Errorf("%w: unknown position for %d", ErrNoRoute, p.Dst)
	}
	selfPos, ok := g.locator(g.self)
	if !ok {
		return 0, fmt.Errorf("%w: unknown position for self", ErrNoRoute)
	}
	selfDist := selfPos.Distance(dstPos)
	// First choice: the most progress among non-suspect neighbors whose
	// smoothed LQI clears the gate. When interference has temporarily
	// dragged every estimate under the gate (link estimators are noisy
	// under load), fall back to the *highest-LQI* non-suspect neighbor
	// that still makes progress — forwarding on the least-suspect link
	// beats dropping the packet, and preferring quality in the fallback
	// avoids lunging at marginal long links. Neighbors condemned by the
	// delivery estimator (consecutive no-acks) rank last: they are used
	// only when nothing else makes progress, which also gives a
	// recovered link the occasional frame it needs to clear its flag.
	best := phys.NodeID(0)
	bestDist := selfDist
	found := false
	fallback := phys.NodeID(0)
	fallbackLQI := -1.0
	suspect := phys.NodeID(0)
	suspectDel := -1.0
	for _, e := range g.table.Usable() {
		pos, ok := g.locator(e.ID)
		if !ok {
			continue
		}
		d := pos.Distance(dstPos)
		if d >= selfDist {
			continue // no progress
		}
		if e.Suspect {
			if e.Delivery > suspectDel {
				suspect, suspectDel = e.ID, e.Delivery
			}
			continue
		}
		if g.minLQI <= 0 || e.LQI >= g.minLQI {
			if d < bestDist {
				best, bestDist, found = e.ID, d, true
			}
		} else if e.LQI > fallbackLQI {
			fallback, fallbackLQI = e.ID, e.LQI
		}
	}
	if found {
		return best, nil
	}
	if fallbackLQI >= 0 {
		return fallback, nil
	}
	if suspectDel >= 0 {
		return suspect, nil
	}
	return 0, fmt.Errorf("%w: no neighbor closer to %d than self", ErrNoRoute, p.Dst)
}

func (g *geographic) onControl(*stack.Packet, phys.NodeID, medium.RxInfo) {
	// Greedy geographic forwarding has no protocol-internal traffic.
}
