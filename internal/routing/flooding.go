package routing

import (
	"liteview/internal/medium"
	"liteview/internal/neighbor"
	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

// flooding is TTL-scoped controlled flooding: every packet is
// rebroadcast once per node (the Router's duplicate cache suppresses
// re-floods). It needs no position or gradient state, which makes it
// the protocol of last resort for diagnosing a deployment whose routing
// state is itself suspect.
type flooding struct{}

// NewFlooding attaches the flooding protocol to st on FloodingPort.
func NewFlooding(eng *sim.Engine, st *stack.Stack, table *neighbor.Table, cfg Config) (*Router, error) {
	return NewFloodingOnPort(eng, st, table, FloodingPort, cfg)
}

// NewFloodingOnPort is NewFlooding on an explicit port.
func NewFloodingOnPort(eng *sim.Engine, st *stack.Stack, table *neighbor.Table, port byte, cfg Config) (*Router, error) {
	return newRouter(eng, st, table, port, cfg, flooding{})
}

func (flooding) name() string { return "flooding" }

func (flooding) nextHop(*stack.Packet) (phys.NodeID, error) {
	return phys.Broadcast, nil
}

func (flooding) onControl(*stack.Packet, phys.NodeID, medium.RxInfo) {}
