package routing_test

import (
	"testing"
	"time"

	"liteview/internal/fault"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/sim"
	"liteview/internal/stack"
	"liteview/internal/testbed"
)

// TestParkQueueBoundedAndExpires covers the pending-packet fix: the park
// queue must reject overflow instead of growing, and parked packets that
// discovery never claims must expire with a route-park-drop trace
// instead of leaking until reboot.
func TestParkQueueBoundedAndExpires(t *testing.T) {
	opt := testbed.DefaultOptions(61)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(3, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := routing.DefaultConfig()
	// Expire parked packets long before discovery would give up on its
	// own, so the expiry path (not discovery failure) drops them.
	cfg.ParkTTL = sim.Time(50 * time.Millisecond)
	if err := tb.AttachOnDemand(cfg); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	rec := tb.Telemetry()
	rec.Start()
	r, _ := tb.Router(routing.OnDemandPort, 1)
	// Node 99 does not exist: every send parks awaiting discovery. The
	// queue holds 4 per destination; the rest must be refused on entry.
	for i := 0; i < 6; i++ {
		if err := r.SendTo(99, 100, []byte("leak?"), false, false); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.DroppedQueue < 2 {
		t.Fatalf("park queue accepted overflow: %+v", st)
	}
	tb.Run(2 * time.Second)
	st = r.Stats()
	if st.ParkDrops == 0 {
		t.Fatalf("parked packets never expired: %+v", st)
	}
	drops := 0
	for _, ev := range rec.Events() {
		if ev.Kind == "route-park-drop" {
			drops++
		}
	}
	if drops != int(st.ParkDrops) {
		t.Fatalf("route-park-drop events = %d, ParkDrops = %d", drops, st.ParkDrops)
	}
	rec.Stop()
}

// TestGeographicLinkRepair crashes the primary relay of a diamond and
// checks the repair loop end to end at the routing layer: the failure
// streak condemns the link, queued traffic is salvaged through the
// alternate relay, and delivery resumes.
func TestGeographicLinkRepair(t *testing.T) {
	opt := testbed.DefaultOptions(62)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Custom([]phys.Position{
		{X: 0, Y: 0}, {X: 22, Y: -8}, {X: 22, Y: 8}, {X: 44, Y: 0},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	rec := tb.Telemetry()
	rec.Start()
	var got []*stack.Packet
	subscribe(t, tb, 3, 100, &got)
	r1, _ := tb.Router(routing.GeographicPort, 1)
	if _, err := tb.FaultInjector().Schedule(fault.Fault{
		At: tb.Eng.Now(), Kind: fault.NodeCrash, Node: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := r1.SendTo(4, 100, []byte("reroute"), false, false); err != nil {
			t.Fatal(err)
		}
		tb.Run(300 * time.Millisecond)
	}
	st := r1.Stats()
	if st.LinkRepairs == 0 {
		t.Fatalf("dead link never condemned: %+v", st)
	}
	if len(got) == 0 {
		t.Fatal("no delivery after repair")
	}
	r3, _ := tb.Router(routing.GeographicPort, 3)
	if r3.Stats().Forwarded == 0 {
		t.Fatal("alternate relay carried nothing")
	}
	suspects, repairs := 0, 0
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case "link-suspect":
			suspects++
		case "route-repair":
			repairs++
		}
	}
	if suspects == 0 || repairs == 0 {
		t.Fatalf("repair left no telemetry: %d link-suspect, %d route-repair", suspects, repairs)
	}
	rec.Stop()
	// ResetStats must clear the repair counters with the rest.
	r1.ResetStats()
	if st := r1.Stats(); st.LinkRepairs != 0 || st.Salvaged != 0 || st.ParkDrops != 0 {
		t.Fatalf("ResetStats left repair counters: %+v", st)
	}
}
