// Package routing provides the routing protocols LiteView commands ride
// on. The paper's first implementation challenge is protocol
// independence: ping and traceroute must work over any routing protocol
// without recompilation, selected at runtime by port number ("we let the
// geographic forwarding protocol listen on the port number 10").
//
// Every protocol here is just a port subscriber on the node's stack.
// Routed packets encapsulate an inner port: when a packet reaches its
// final destination the router hands the inner packet to the local
// subscriber of that port, so the command process on the destination
// node receives it exactly as if it had arrived directly. Routers also
// implement the link-quality padding hook: at every hop the receiving
// router appends the incoming link's LQI/RSSI to the packet's padding
// region when the originator asked for it.
//
// Three protocols are provided:
//
//   - Geographic forwarding (greedy, needs a position oracle) — the
//     protocol the paper's examples use on port 10.
//   - Flooding (TTL-scoped, duplicate-suppressed).
//   - Collection tree (cost-gradient toward a root, maintained by
//     periodic advertisements; delivers only to the root, like real
//     collection protocols).
package routing

import (
	"encoding/binary"
	"errors"
	"fmt"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/neighbor"
	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/stack"
	"liteview/internal/telemetry"
)

// Well-known ports for the bundled protocols.
const (
	// GeographicPort is the paper's example: geographic forwarding
	// listening on port 10.
	GeographicPort byte = 10
	// FloodingPort hosts the flooding protocol.
	FloodingPort byte = 11
	// TreePort hosts the collection tree protocol.
	TreePort byte = 12
)

// innerPortControl marks protocol-internal traffic (e.g. tree
// advertisements); it is never delivered to applications.
const innerPortControl byte = 0

// routedHeader is prepended to the outer packet data:
//
//	offset size field
//	0      1    inner port (the subscriber at the final destination)
//	1      2    packet id (per-origin sequence, for duplicate detection)
const routedHeaderLen = 3

func encodeRouted(innerPort byte, id uint16, data []byte) []byte {
	buf := make([]byte, routedHeaderLen+len(data))
	buf[0] = innerPort
	binary.BigEndian.PutUint16(buf[1:3], id)
	copy(buf[routedHeaderLen:], data)
	return buf
}

func decodeRouted(data []byte) (innerPort byte, id uint16, inner []byte, err error) {
	if len(data) < routedHeaderLen {
		return 0, 0, nil, errors.New("routing: routed data shorter than header")
	}
	return data[0], binary.BigEndian.Uint16(data[1:3]), data[routedHeaderLen:], nil
}

// Config tunes a router's forwarding behaviour.
type Config struct {
	// QueueCap bounds the routing-layer forwarding queue ("the
	// underlying routing protocol has a queueing mechanism to hold
	// packets temporarily").
	QueueCap int
	// ProcessingDelay models per-hop packet handling time.
	ProcessingDelay sim.Time
	// BaseJitterMax is a small random wait applied to every forward,
	// modelling per-hop processing variance and keeping forwarding
	// chains at different nodes from locking into phase with each
	// other (phase-locked chains collide at hidden terminals).
	BaseJitterMax sim.Time
	// BusyJitterMax is the random extra wait added before sending when
	// the layer below is busy ("if the routing layer determines that
	// the channel is busy, it will add random jitters before sending
	// out packets in the queue").
	BusyJitterMax sim.Time
	// DefaultTTL is the hop budget for originated packets.
	DefaultTTL byte
	// MinLQI gates neighbor selection: links whose smoothed LQI falls
	// below it are not used as next hops or parents (marginal links
	// flap and black-hole traffic). Zero disables gating.
	MinLQI float64
	// SuspectAfter is how many consecutive no-acks to one next hop
	// trigger link repair: the link is marked suspect in the neighbor
	// table and queued traffic is rerouted. Zero selects the default.
	SuspectAfter int
	// ParkTTL bounds how long a packet may sit parked waiting for route
	// discovery before it is dropped with a route-park-drop event. Zero
	// selects the default (the discovery retry budget plus slack).
	ParkTTL sim.Time
}

// DefaultConfig returns forwarding parameters sized for the paper's
// eight-hop testbed.
func DefaultConfig() Config {
	return Config{
		QueueCap:        8,
		ProcessingDelay: 500 * 1000, // 500 µs
		BaseJitterMax:   2 * 1000 * 1000,
		BusyJitterMax:   8 * 1000 * 1000,
		DefaultTTL:      32,
		MinLQI:          80,
		SuspectAfter:    neighbor.SuspectAfter,
		// Outlive a full on-demand discovery cycle (retries included)
		// with slack, so repair gets a fair chance first.
		ParkTTL: (MaxDiscoveryRetries+1)*DiscoveryTimeout + 2*1000*1000*1000,
	}
}

// Stats counts routing outcomes at one node.
type Stats struct {
	Originated     uint64
	Forwarded      uint64
	Delivered      uint64 // packets handed to a local inner port
	DroppedNoRoute uint64
	DroppedTTL     uint64
	DroppedDup     uint64
	DroppedQueue   uint64
	PadExhausted   uint64
	LinkRepairs    uint64 // next hops condemned after consecutive no-acks
	Salvaged       uint64 // failed packets re-sent through an alternate hop
	ParkDrops      uint64 // parked packets expired waiting for discovery
}

// Errors from the routing layer.
var (
	ErrNoRoute       = errors.New("routing: no route to destination")
	ErrSelfRoute     = errors.New("routing: destination is the local node")
	ErrDataLen       = errors.New("routing: data too long for payload ceiling")
	ErrNotForRoot    = errors.New("routing: collection tree only delivers to its root")
	ErrNoUnicastPath = errors.New("routing: protocol has no unicast next hop")
	// ErrRouteDiscovery is returned by on-demand protocols while a
	// route request is outstanding: the router parks the packet and
	// retries when the strategy reports the route resolved.
	ErrRouteDiscovery = errors.New("routing: route discovery in progress")
)

// strategy is the per-protocol next-hop decision.
type strategy interface {
	// name is the human-readable protocol name LiteView prints
	// ("Name of protocol: geographic forwarding").
	name() string
	// nextHop picks the MAC-level next hop for p, or reports no route.
	nextHop(p *stack.Packet) (phys.NodeID, error)
	// onControl handles protocol-internal packets (innerPortControl).
	onControl(p *stack.Packet, from phys.NodeID, info medium.RxInfo)
}

// linkObserver is an optional strategy extension: protocols that keep
// route state (AODV-style) learn about link-layer delivery failures of
// frames they forwarded.
type linkObserver interface {
	onSendResult(next phys.NodeID, err error)
}

type queued struct {
	pkt  *stack.Packet
	next phys.NodeID
	ctl  bool
}

// parkedPkt is one packet held for route discovery, stamped so stale
// entries can be expired when the destination stays unreachable.
type parkedPkt struct {
	pkt *stack.Packet
	at  sim.Time
}

// Router is a routing protocol instance on one node.
type Router struct {
	eng   *sim.Engine
	st    *stack.Stack
	table *neighbor.Table
	rng   *sim.Rand
	cfg   Config
	port  byte
	strat strategy

	queue   []queued
	sending bool
	nextID  uint16
	seen    map[uint32]struct{}
	seenQ   []uint32
	// pending parks packets whose route is still being discovered;
	// parkTimer holds the per-destination expiry event.
	pending   map[phys.NodeID][]parkedPkt
	parkTimer map[phys.NodeID]*sim.Event
	// failStreak counts consecutive no-acks per next hop; reaching
	// Config.SuspectAfter triggers link repair.
	failStreak map[phys.NodeID]int
	stats      Stats
	// tel, when set, receives routing-layer telemetry events.
	tel *telemetry.Recorder
}

// SetTelemetry points the router at a telemetry recorder (nil detaches).
func (r *Router) SetTelemetry(rec *telemetry.Recorder) { r.tel = rec }

// emitDrop records one dropped packet with its cause.
func (r *Router) emitDrop(p *stack.Packet, cause string) {
	if r.tel.Recording() {
		r.tel.Emit(r.st.NodeID(), telemetry.LayerRouting, "drop",
			telemetry.String("cause", cause),
			telemetry.Node("origin", p.Origin),
			telemetry.Node("dst", p.Dst),
			telemetry.Int("port", int(r.port)))
	}
}

// Bounds on parked route-discovery packets (a 4 KB mote cannot buffer
// much).
const (
	pendingPerDst = 4
	pendingDsts   = 8
)

const dedupCacheSize = 128

// debugNoRoute enables diagnostic prints for dropped forwards.
var debugNoRoute = false

func newRouter(eng *sim.Engine, st *stack.Stack, table *neighbor.Table, port byte, cfg Config, strat strategy) (*Router, error) {
	if cfg.QueueCap <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultConfig().SuspectAfter
	}
	if cfg.ParkTTL <= 0 {
		cfg.ParkTTL = DefaultConfig().ParkTTL
	}
	r := &Router{
		eng:        eng,
		st:         st,
		table:      table,
		rng:        eng.Rand().Fork(fmt.Sprintf("router-%d-%d", st.NodeID(), port)),
		cfg:        cfg,
		port:       port,
		strat:      strat,
		seen:       make(map[uint32]struct{}),
		pending:    make(map[phys.NodeID][]parkedPkt),
		parkTimer:  make(map[phys.NodeID]*sim.Event),
		failStreak: make(map[phys.NodeID]int),
	}
	if err := st.Subscribe(port, r.onPacket); err != nil {
		return nil, err
	}
	return r, nil
}

// Port returns the stack port the protocol listens on.
func (r *Router) Port() byte { return r.port }

// Name returns the protocol's display name.
func (r *Router) Name() string { return r.strat.name() }

// NextHop answers "which neighbor would you relay a packet for dst to,
// right now?" — the generic query traceroute uses to walk a path hop by
// hop without knowing anything about the protocol's internals.
// Protocols without a unicast path (flooding) return ErrNoUnicastPath.
func (r *Router) NextHop(dst phys.NodeID) (phys.NodeID, error) {
	if dst == r.st.NodeID() {
		return 0, ErrSelfRoute
	}
	next, err := r.strat.nextHop(&stack.Packet{Port: r.port, Origin: r.st.NodeID(), Dst: dst})
	if err != nil {
		return 0, err
	}
	if next == phys.Broadcast {
		return 0, ErrNoUnicastPath
	}
	return next, nil
}

// Stats returns a snapshot of the routing counters.
func (r *Router) Stats() Stats { return r.stats }

// ResetStats zeroes the routing counters and the repair failure streaks
// (the shell's `stats reset` includes routers so chaos experiments
// start from a clean slate).
func (r *Router) ResetStats() {
	r.stats = Stats{}
	r.failStreak = make(map[phys.NodeID]int)
}

// Close unsubscribes the protocol from its port.
func (r *Router) Close() { r.st.Unsubscribe(r.port) }

// SendTo routes data to the application subscribed on innerPort at dst.
// When pad is true, every hop appends the incoming link's LQI/RSSI to
// the packet (link-quality padding). control marks the traffic as
// management traffic for overhead accounting.
func (r *Router) SendTo(dst phys.NodeID, innerPort byte, data []byte, pad, control bool) error {
	if innerPort == innerPortControl {
		return errors.New("routing: inner port 0 is reserved")
	}
	if routedHeaderLen+len(data) > stack.PayloadCeiling {
		return ErrDataLen
	}
	r.nextID++
	var flags byte
	if pad {
		flags |= stack.FlagPad
	}
	if control {
		flags |= stack.FlagControl
	}
	p := &stack.Packet{
		Port:   r.port,
		Origin: r.st.NodeID(),
		Dst:    dst,
		TTL:    r.cfg.DefaultTTL,
		Flags:  flags,
		Data:   encodeRouted(innerPort, r.nextID, data),
	}
	r.stats.Originated++
	if dst == r.st.NodeID() {
		return r.deliverLocal(p)
	}
	next, err := r.strat.nextHop(p)
	if errors.Is(err, ErrRouteDiscovery) {
		r.park(p)
		return nil
	}
	if err != nil {
		r.stats.DroppedNoRoute++
		r.emitDrop(p, "noroute")
		return err
	}
	if r.tel.Recording() {
		r.tel.Emit(r.st.NodeID(), telemetry.LayerRouting, "originate",
			telemetry.Node("dst", dst),
			telemetry.Node("next", next),
			telemetry.Int("port", int(r.port)),
			telemetry.Int("inner", int(innerPort)))
	}
	r.enqueue(p, next, control)
	return nil
}

// park holds a packet while its route is discovered; bounded like
// everything else on the mote, and stamped so it can expire: a parked
// packet whose destination never resolves must not sit forever.
func (r *Router) park(p *stack.Packet) {
	q := r.pending[p.Dst]
	if len(q) >= pendingPerDst || (q == nil && len(r.pending) >= pendingDsts) {
		r.stats.DroppedQueue++
		r.emitDrop(p, "queue")
		return
	}
	r.pending[p.Dst] = append(q, parkedPkt{pkt: p, at: r.eng.Now()})
	if r.parkTimer[p.Dst] == nil {
		r.armParkExpiry(p.Dst, r.cfg.ParkTTL)
	}
}

// armParkExpiry schedules the next expiry sweep for dst's park queue.
func (r *Router) armParkExpiry(dst phys.NodeID, delay sim.Time) {
	r.parkTimer[dst] = r.eng.MustSchedule(delay, func() { r.expireParked(dst) })
}

// expireParked drops parked packets older than ParkTTL — the table
// churned or discovery quietly resolved elsewhere and nothing will ever
// claim them — and re-arms the timer while newer entries remain.
func (r *Router) expireParked(dst phys.NodeID) {
	delete(r.parkTimer, dst)
	q := r.pending[dst]
	if len(q) == 0 {
		delete(r.pending, dst)
		return
	}
	now := r.eng.Now()
	cutoff := now - r.cfg.ParkTTL
	kept := q[:0]
	for _, pp := range q {
		if pp.at > cutoff {
			kept = append(kept, pp)
			continue
		}
		r.stats.ParkDrops++
		if r.tel.Recording() {
			r.tel.Emit(r.st.NodeID(), telemetry.LayerRouting, "route-park-drop",
				telemetry.Node("origin", pp.pkt.Origin),
				telemetry.Node("dst", dst),
				telemetry.Int("port", int(r.port)),
				telemetry.Int("age_us", int((now-pp.at)/1000)))
		}
	}
	if len(kept) == 0 {
		delete(r.pending, dst)
		return
	}
	r.pending[dst] = kept
	r.armParkExpiry(dst, kept[0].at+r.cfg.ParkTTL-now)
}

// cancelParkExpiry stops the expiry timer for dst, if armed.
func (r *Router) cancelParkExpiry(dst phys.NodeID) {
	if ev := r.parkTimer[dst]; ev != nil {
		r.eng.Cancel(ev)
		delete(r.parkTimer, dst)
	}
}

// resolvePending re-routes packets parked for dst; strategies call it
// when discovery completes. A still-unresolvable packet is dropped.
func (r *Router) resolvePending(dst phys.NodeID) {
	q := r.pending[dst]
	if q == nil {
		return
	}
	delete(r.pending, dst)
	r.cancelParkExpiry(dst)
	for _, pp := range q {
		next, err := r.strat.nextHop(pp.pkt)
		if err != nil {
			r.stats.DroppedNoRoute++
			continue
		}
		r.enqueue(pp.pkt, next, pp.pkt.Flags&stack.FlagControl != 0)
	}
}

// dropPending abandons parked packets for dst (discovery failed).
func (r *Router) dropPending(dst phys.NodeID) {
	if q := r.pending[dst]; q != nil {
		r.stats.DroppedNoRoute += uint64(len(q))
		delete(r.pending, dst)
	}
	r.cancelParkExpiry(dst)
}

// onPacket is the stack handler: it pads, delivers, or forwards.
func (r *Router) onPacket(p *stack.Packet, from phys.NodeID, info medium.RxInfo) {
	innerPort, id, _, err := decodeRouted(p.Data)
	if err != nil {
		return
	}
	if innerPort == innerPortControl {
		r.strat.onControl(p, from, info)
		return
	}
	// Duplicate suppression (flooding re-broadcasts reach us many
	// times; unicast duplicates are possible under MAC retry schemes).
	key := uint32(p.Origin)<<16 | uint32(id)
	if _, dup := r.seen[key]; dup {
		r.stats.DroppedDup++
		r.emitDrop(p, "dup")
		return
	}
	r.remember(key)
	// Link-quality padding: the receiving hop records the incoming
	// link's quality. Exhausted padding stops recording but not
	// forwarding (the probe keeps travelling; it just can't take notes).
	if p.Flags&stack.FlagPad != 0 {
		if err := p.AppendPad(stack.LinkQuality{LQI: uint8(info.LQI), RSSI: int8(info.RSSI)}); err != nil {
			r.stats.PadExhausted++
		}
	}
	if p.Dst == r.st.NodeID() || p.Dst == phys.Broadcast {
		if err := r.deliverLocal(p); err == nil {
			r.stats.Delivered++
			if r.tel.Recording() {
				r.tel.Emit(r.st.NodeID(), telemetry.LayerRouting, "deliver",
					telemetry.Node("origin", p.Origin),
					telemetry.Node("from", from),
					telemetry.Int("port", int(r.port)),
					telemetry.Int("inner", int(innerPort)))
			}
		}
		if p.Dst != phys.Broadcast {
			return
		}
	}
	if p.TTL == 0 {
		r.stats.DroppedTTL++
		r.emitDrop(p, "ttl")
		return
	}
	p.TTL--
	next, err := r.strat.nextHop(p)
	if errors.Is(err, ErrRouteDiscovery) {
		// The dispatched packet is a borrow of the stack's scratch;
		// parking retains it past this callback, so clone.
		r.park(p.Clone())
		return
	}
	if err != nil {
		r.stats.DroppedNoRoute++
		r.emitDrop(p, "noroute")
		if debugNoRoute {
			fmt.Printf("DEBUG noroute at node %d: origin=%d dst=%d ttl=%d err=%v\n", r.st.NodeID(), p.Origin, p.Dst, p.TTL, err)
		}
		return
	}
	r.stats.Forwarded++
	if r.tel.Recording() {
		r.tel.Emit(r.st.NodeID(), telemetry.LayerRouting, "forward",
			telemetry.Node("origin", p.Origin),
			telemetry.Node("dst", p.Dst),
			telemetry.Node("next", next),
			telemetry.Int("ttl", int(p.TTL)),
			telemetry.Int("port", int(r.port)))
	}
	// Clone: the forward queue holds the packet past this callback, but
	// p borrows the stack's scratch (Handler contract).
	r.enqueue(p.Clone(), next, false)
}

// deliverLocal hands the inner packet to the local subscriber.
func (r *Router) deliverLocal(p *stack.Packet) error {
	innerPort, _, inner, err := decodeRouted(p.Data)
	if err != nil {
		return err
	}
	q := &stack.Packet{
		Port:   innerPort,
		Origin: p.Origin,
		Dst:    r.st.NodeID(),
		TTL:    p.TTL,
		Flags:  p.Flags,
		Data:   append([]byte(nil), inner...),
		Pad:    append([]stack.LinkQuality(nil), p.Pad...),
	}
	return r.st.SendLocal(q)
}

// remember inserts a dedup key, evicting FIFO.
func (r *Router) remember(key uint32) {
	if len(r.seenQ) >= dedupCacheSize {
		old := r.seenQ[0]
		r.seenQ = r.seenQ[1:]
		delete(r.seen, old)
	}
	r.seen[key] = struct{}{}
	r.seenQ = append(r.seenQ, key)
}

// enqueue adds a packet to the routing-layer queue and kicks the sender.
func (r *Router) enqueue(p *stack.Packet, next phys.NodeID, ctl bool) {
	if len(r.queue) >= r.cfg.QueueCap {
		r.stats.DroppedQueue++
		r.emitDrop(p, "queue")
		return
	}
	r.queue = append(r.queue, queued{pkt: p, next: next, ctl: ctl})
	r.kick()
}

// kick services the queue head after the processing delay, adding
// random jitter while the MAC below is busy.
func (r *Router) kick() {
	if r.sending || len(r.queue) == 0 {
		return
	}
	r.sending = true
	delay := r.cfg.ProcessingDelay + r.rng.Jitter(r.cfg.BaseJitterMax)
	if r.st.MAC().QueueLen() > 0 {
		delay += r.rng.Jitter(r.cfg.BusyJitterMax)
	}
	r.eng.After(delay, func() {
		if len(r.queue) == 0 {
			r.sending = false
			return
		}
		item := r.queue[0]
		r.queue = r.queue[1:]
		ftype := mac.TypeData
		if item.ctl || item.pkt.Flags&stack.FlagControl != 0 {
			ftype = mac.TypeControl
		}
		err := r.st.Send(item.pkt, item.next, ftype, func(_ mac.Frame, sendErr error) {
			if lo, ok := r.strat.(linkObserver); ok {
				lo.onSendResult(item.next, sendErr)
			}
			r.noteSendOutcome(item, sendErr)
			r.sending = false
			r.kick()
		})
		if err != nil {
			// MAC queue full or frame invalid: drop and continue.
			r.stats.DroppedQueue++
			r.sending = false
			r.kick()
		}
	})
}

// noteSendOutcome drives link repair from per-frame delivery feedback.
// An acked frame clears the next hop's failure streak; a no-ack extends
// it. When the streak reaches Config.SuspectAfter the link is condemned
// (marked suspect in the neighbor table, queued traffic rerouted) and
// the failed packet is salvaged through an alternate next hop. Channel
// access failures are local congestion, not link evidence, and leave
// the streak untouched.
func (r *Router) noteSendOutcome(item queued, sendErr error) {
	if sendErr == nil {
		delete(r.failStreak, item.next)
		return
	}
	if !errors.Is(sendErr, mac.ErrNoAck) {
		return
	}
	r.failStreak[item.next]++
	streak := r.failStreak[item.next]
	if streak < r.cfg.SuspectAfter {
		return
	}
	if streak == r.cfg.SuspectAfter {
		r.repairLink(item.next, streak)
	}
	r.salvage(item)
}

// repairLink marks next suspect and reroutes every queued packet that
// was headed through it.
func (r *Router) repairLink(next phys.NodeID, streak int) {
	r.stats.LinkRepairs++
	if r.table != nil {
		_ = r.table.MarkSuspect(next, true) // absent entries cannot be marked
	}
	if r.tel.Recording() {
		r.tel.Emit(r.st.NodeID(), telemetry.LayerRouting, "link-suspect",
			telemetry.Node("next", next),
			telemetry.Int("streak", streak),
			telemetry.Int("port", int(r.port)))
	}
	r.rerouteQueued(next)
}

// rerouteQueued re-asks the strategy for every queued packet whose next
// hop is bad; packets with a different answer are repointed, packets
// whose route moved into discovery are parked, unroutable ones dropped.
func (r *Router) rerouteQueued(bad phys.NodeID) {
	kept := r.queue[:0]
	for _, item := range r.queue {
		if item.next != bad {
			kept = append(kept, item)
			continue
		}
		next, err := r.strat.nextHop(item.pkt)
		if errors.Is(err, ErrRouteDiscovery) {
			r.park(item.pkt)
			continue
		}
		if err != nil {
			r.stats.DroppedNoRoute++
			r.emitDrop(item.pkt, "noroute")
			continue
		}
		if next != bad && r.tel.Recording() {
			r.tel.Emit(r.st.NodeID(), telemetry.LayerRouting, "route-repair",
				telemetry.Node("dst", item.pkt.Dst),
				telemetry.Node("old", bad),
				telemetry.Node("next", next),
				telemetry.Int("port", int(r.port)))
		}
		item.next = next
		kept = append(kept, item)
	}
	r.queue = kept
}

// salvage gives a frame the MAC abandoned one more life through an
// alternate next hop. TTL is spent so a pair of bad links cannot bounce
// a packet forever; a salvage that would re-pick the same dead hop is a
// genuine dead end and the packet drops as unroutable.
func (r *Router) salvage(item queued) {
	p := item.pkt
	if p.TTL == 0 {
		r.stats.DroppedTTL++
		r.emitDrop(p, "ttl")
		return
	}
	p.TTL--
	next, err := r.strat.nextHop(p)
	if errors.Is(err, ErrRouteDiscovery) {
		r.park(p)
		return
	}
	if err != nil || next == item.next {
		r.stats.DroppedNoRoute++
		r.emitDrop(p, "noroute")
		return
	}
	r.stats.Salvaged++
	if r.tel.Recording() {
		r.tel.Emit(r.st.NodeID(), telemetry.LayerRouting, "route-repair",
			telemetry.Node("dst", p.Dst),
			telemetry.Node("old", item.next),
			telemetry.Node("next", next),
			telemetry.Int("port", int(r.port)))
	}
	r.enqueue(p, next, item.ctl)
}

// sendControl transmits a protocol-internal packet (tree adverts).
func (r *Router) sendControl(dst phys.NodeID, data []byte) {
	r.nextID++
	p := &stack.Packet{
		Port:   r.port,
		Origin: r.st.NodeID(),
		Dst:    dst,
		TTL:    1,
		Data:   encodeRouted(innerPortControl, r.nextID, data),
	}
	r.enqueue(p, dst, true)
}

// SetDebugNoRoute toggles diagnostic printing of no-route drops.
func SetDebugNoRoute(on bool) { debugNoRoute = on }
