package routing

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"liteview/internal/medium"
	"liteview/internal/neighbor"
	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

// DefaultAdvertPeriod is how often tree nodes re-advertise their cost.
const DefaultAdvertPeriod = 5 * time.Second

// tree is a collection-tree protocol in the MintRoute family: the root
// advertises cost 0; every node adopts the parent minimising
// (parent cost + link cost), where link cost is derived from the kernel
// neighbor table's LQI estimate; and periodically re-advertises its own
// cost. Data flows only toward the root, as in real collection
// protocols — LiteView's protocol independence means traceroute works
// over it anyway, as long as the probe target is the root.
type tree struct {
	r       *Router // back-pointer, set by NewTree after construction
	eng     *sim.Engine
	self    phys.NodeID
	table   *neighbor.Table
	root    phys.NodeID
	parent  phys.NodeID
	cost    float64
	hasPath bool
	period  sim.Time
	minLQI  float64
}

// NewTree attaches a collection tree rooted at root to st on TreePort.
// The returned router only accepts destinations equal to the root.
func NewTree(eng *sim.Engine, st *stack.Stack, table *neighbor.Table, root phys.NodeID, cfg Config) (*Router, error) {
	return NewTreeOnPort(eng, st, table, root, TreePort, cfg)
}

// NewTreeOnPort is NewTree on an explicit port.
func NewTreeOnPort(eng *sim.Engine, st *stack.Stack, table *neighbor.Table, root phys.NodeID, port byte, cfg Config) (*Router, error) {
	if cfg.QueueCap <= 0 {
		cfg = DefaultConfig()
	}
	tr := &tree{
		eng:    eng,
		self:   st.NodeID(),
		table:  table,
		root:   root,
		period: DefaultAdvertPeriod,
		minLQI: cfg.MinLQI,
	}
	if tr.self == root {
		tr.cost = 0
		tr.hasPath = true
	} else {
		tr.cost = math.Inf(1)
	}
	r, err := newRouter(eng, st, table, port, cfg, tr)
	if err != nil {
		return nil, err
	}
	tr.r = r
	// Periodic advertisement with a random phase so co-started nodes
	// do not advertise in lockstep.
	ticker, err := sim.NewTicker(eng, tr.period, tr.advertise)
	if err != nil {
		return nil, err
	}
	ticker.Start(eng.Rand().Fork(fmt.Sprintf("tree-%d", tr.self)).Jitter(tr.period))
	return r, nil
}

func (t *tree) name() string { return "collection tree" }

// Parent returns the current parent and whether a path to the root is
// known. Exposed for tests and diagnosis tooling via TreeState.
func (t *tree) state() (phys.NodeID, float64, bool) { return t.parent, t.cost, t.hasPath }

// TreeState reports the collection-tree state of a router created by
// NewTree: the current parent, path cost, and whether a route to the
// root exists. It returns ok=false for non-tree routers.
func TreeState(r *Router) (parent phys.NodeID, cost float64, hasPath, ok bool) {
	t, isTree := r.strat.(*tree)
	if !isTree {
		return 0, 0, false, false
	}
	parent, cost, hasPath = t.state()
	return parent, cost, hasPath, true
}

func (t *tree) nextHop(p *stack.Packet) (phys.NodeID, error) {
	if p.Dst != t.root {
		return 0, fmt.Errorf("%w (root %d, asked %d)", ErrNotForRoot, t.root, p.Dst)
	}
	if t.self == t.root {
		return 0, ErrSelfRoute
	}
	if !t.hasPath || t.table.IsBlacklisted(t.parent) {
		// Re-evaluate in case the parent was blacklisted after adoption.
		t.reselect()
		if !t.hasPath {
			return 0, fmt.Errorf("%w: no path to root %d", ErrNoRoute, t.root)
		}
	}
	return t.parent, nil
}

// advert payload: cost scaled by 256 as uint16.
func encodeAdvert(cost float64) []byte {
	v := cost * 256
	if v > math.MaxUint16 {
		v = math.MaxUint16
	}
	buf := make([]byte, 2)
	binary.BigEndian.PutUint16(buf, uint16(v))
	return buf
}

func decodeAdvert(data []byte) (float64, bool) {
	if len(data) != 2 {
		return 0, false
	}
	return float64(binary.BigEndian.Uint16(data)) / 256, true
}

// advertise broadcasts the node's current cost when it has one.
func (t *tree) advertise() {
	if !t.hasPath {
		return
	}
	t.r.sendControl(phys.Broadcast, encodeAdvert(t.cost))
}

// linkCost maps the neighbor table's LQI estimate to an additive cost:
// a perfect link costs 1 hop, a barely usable one ~3.
func linkCost(e neighbor.Entry) float64 {
	q := e.LQI
	if q < 50 {
		q = 50
	}
	if q > 110 {
		q = 110
	}
	return 1 + 2*(110-q)/60
}

// isSuspect reports whether the delivery estimator has condemned the
// link to id.
func (t *tree) isSuspect(id phys.NodeID) bool {
	e, ok := t.table.Get(id)
	return ok && e.Suspect
}

func (t *tree) onControl(p *stack.Packet, from phys.NodeID, info medium.RxInfo) {
	if t.self == t.root {
		return // the root never re-parents
	}
	// A parent the user has since blacklisted no longer anchors the
	// cost: drop it now so the next advertisement can re-parent us.
	if t.hasPath && t.table.IsBlacklisted(t.parent) {
		t.reselect()
	}
	_, _, inner, err := decodeRouted(p.Data)
	if err != nil {
		return
	}
	cost, ok := decodeAdvert(inner)
	if !ok {
		return
	}
	if t.table.IsBlacklisted(from) {
		return
	}
	e, known := t.table.Get(from)
	if !known {
		return
	}
	if t.minLQI > 0 && e.LQI < t.minLQI {
		return // marginal link; not a viable parent
	}
	candidate := cost + linkCost(e)
	// Adopt strictly better parents; refresh cost when the current
	// parent re-advertises. A parent the delivery estimator has marked
	// suspect is abandoned for *any* non-suspect advertiser, even a more
	// expensive one — unlike blacklisting we keep forwarding through a
	// suspect parent while nothing else advertises, so a recovered link
	// can still ack a frame and clear its flag.
	if from == t.parent && t.hasPath {
		t.cost = candidate
		return
	}
	parentSuspect := t.hasPath && t.isSuspect(t.parent)
	if !t.hasPath || candidate < t.cost || (parentSuspect && !e.Suspect) {
		t.parent = from
		t.cost = candidate
		t.hasPath = true
	}
}

// reselect drops the current parent and picks the best non-blacklisted
// neighbor heard so far. Without stored adverts we fall back to "wait
// for the next advertisement": the path is marked unknown.
func (t *tree) reselect() {
	t.hasPath = false
	t.cost = math.Inf(1)
}
