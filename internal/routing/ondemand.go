package routing

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"liteview/internal/medium"
	"liteview/internal/neighbor"
	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

// OnDemandPort hosts the on-demand (AODV-style) protocol.
const OnDemandPort byte = 13

// On-demand protocol parameters.
const (
	// RouteLifetime is how long an unused route entry stays valid.
	RouteLifetime = 60 * time.Second
	// DiscoveryTimeout bounds one route request round.
	DiscoveryTimeout = 2 * time.Second
	// MaxDiscoveryRetries bounds request rounds before the parked
	// packets are dropped.
	MaxDiscoveryRetries = 2
	// rreqTTL bounds request flooding.
	rreqTTL = 16
)

// On-demand control message kinds (inside innerPortControl data).
const (
	odKindRREQ byte = 1
	odKindRREP byte = 2
)

// routeEntry is one row of the on-demand routing table.
type routeEntry struct {
	next    phys.NodeID
	hops    int
	expires sim.Time
}

// discovery tracks one outstanding route request at the originator.
type discovery struct {
	reqID   uint16
	retries int
	timer   *sim.Event
}

// onDemand is a compact AODV-style protocol: no route state exists
// until traffic needs it. A route request floods toward the target,
// leaving reverse routes behind; the target answers with a route reply
// that walks the reverse path home, installing forward routes. Data
// packets park at the router while discovery runs. Link-layer delivery
// failures invalidate the routes that used the dead link, triggering
// rediscovery on the next packet — the repair loop the paper's users
// would watch with LiteView's stats and traceroute.
//
// Simplifications versus RFC 3561: no sequence numbers (the simulation
// has no stale-route problem at these time scales), no intermediate
// route replies, no RERR broadcast (failure handling is local
// invalidation).
type onDemand struct {
	r      *Router
	eng    *sim.Engine
	self   phys.NodeID
	table  *neighbor.Table
	rng    *sim.Rand
	routes map[phys.NodeID]*routeEntry
	disc   map[phys.NodeID]*discovery
	// seenReq dedups request floods by (origin, reqID).
	seenReq  map[uint32]struct{}
	seenReqQ []uint32
	nextReq  uint16
	minLQI   float64
}

// NewOnDemand attaches the on-demand protocol to st on OnDemandPort.
func NewOnDemand(eng *sim.Engine, st *stack.Stack, table *neighbor.Table, cfg Config) (*Router, error) {
	return NewOnDemandOnPort(eng, st, table, OnDemandPort, cfg)
}

// NewOnDemandOnPort is NewOnDemand on an explicit port.
func NewOnDemandOnPort(eng *sim.Engine, st *stack.Stack, table *neighbor.Table, port byte, cfg Config) (*Router, error) {
	if cfg.QueueCap <= 0 {
		cfg = DefaultConfig()
	}
	od := &onDemand{
		eng:     eng,
		self:    st.NodeID(),
		table:   table,
		rng:     eng.Rand().Fork(fmt.Sprintf("ondemand-%d", st.NodeID())),
		routes:  make(map[phys.NodeID]*routeEntry),
		disc:    make(map[phys.NodeID]*discovery),
		seenReq: make(map[uint32]struct{}),
		minLQI:  cfg.MinLQI,
	}
	r, err := newRouter(eng, st, table, port, cfg, od)
	if err != nil {
		return nil, err
	}
	od.r = r
	return r, nil
}

func (od *onDemand) name() string { return "on-demand (AODV-style)" }

// route returns a live route for dst, pruning expiry lazily.
func (od *onDemand) route(dst phys.NodeID) (*routeEntry, bool) {
	e, ok := od.routes[dst]
	if !ok {
		return nil, false
	}
	if od.eng.Now() > e.expires {
		delete(od.routes, dst)
		return nil, false
	}
	return e, true
}

func (od *onDemand) nextHop(p *stack.Packet) (phys.NodeID, error) {
	if e, ok := od.route(p.Dst); ok {
		e.expires = od.eng.Now() + RouteLifetime // refresh on use
		return e.next, nil
	}
	// No route: start (or join) a discovery.
	if _, running := od.disc[p.Dst]; !running {
		od.startDiscovery(p.Dst, 0)
	}
	return 0, ErrRouteDiscovery
}

// startDiscovery floods a route request for dst.
func (od *onDemand) startDiscovery(dst phys.NodeID, retries int) {
	od.nextReq++
	d := &discovery{reqID: od.nextReq, retries: retries}
	od.disc[dst] = d
	var w [8]byte
	w[0] = odKindRREQ
	binary.BigEndian.PutUint16(w[1:3], d.reqID)
	binary.BigEndian.PutUint16(w[3:5], uint16(od.self)) // requester
	binary.BigEndian.PutUint16(w[5:7], uint16(dst))     // target
	w[7] = 0                                            // hop count
	od.rememberReq(od.self, d.reqID)
	od.r.sendControl(phys.Broadcast, w[:])
	d.timer = od.eng.MustSchedule(DiscoveryTimeout, func() { od.discoveryTimeout(dst) })
}

func (od *onDemand) discoveryTimeout(dst phys.NodeID) {
	d, ok := od.disc[dst]
	if !ok {
		return
	}
	if _, have := od.route(dst); have {
		delete(od.disc, dst)
		return
	}
	if d.retries < MaxDiscoveryRetries {
		od.startDiscovery(dst, d.retries+1)
		return
	}
	delete(od.disc, dst)
	od.r.dropPending(dst)
}

func (od *onDemand) rememberReq(origin phys.NodeID, reqID uint16) bool {
	key := uint32(origin)<<16 | uint32(reqID)
	if _, dup := od.seenReq[key]; dup {
		return false
	}
	if len(od.seenReqQ) >= dedupCacheSize {
		old := od.seenReqQ[0]
		od.seenReqQ = od.seenReqQ[1:]
		delete(od.seenReq, old)
	}
	od.seenReq[key] = struct{}{}
	od.seenReqQ = append(od.seenReqQ, key)
	return true
}

// usableNeighbor gates learning on link quality like the other
// protocols: reverse routes over junk links black-hole replies, and a
// link the delivery estimator has condemned must not seed new routes.
func (od *onDemand) usableNeighbor(id phys.NodeID) bool {
	e, ok := od.table.Get(id)
	if !ok || e.Blacklisted || e.Suspect {
		return false
	}
	return od.minLQI <= 0 || e.LQI >= od.minLQI
}

// install adds/refreshes a route when the new one is at least as good.
func (od *onDemand) install(dst, next phys.NodeID, hops int) {
	if dst == od.self {
		return
	}
	if e, ok := od.route(dst); ok && e.hops < hops {
		return
	}
	od.routes[dst] = &routeEntry{next: next, hops: hops, expires: od.eng.Now() + RouteLifetime}
}

func (od *onDemand) onControl(p *stack.Packet, from phys.NodeID, info medium.RxInfo) {
	_, _, inner, err := decodeRouted(p.Data)
	if err != nil || len(inner) != 8 {
		return
	}
	reqID := binary.BigEndian.Uint16(inner[1:3])
	requester := phys.NodeID(binary.BigEndian.Uint16(inner[3:5]))
	target := phys.NodeID(binary.BigEndian.Uint16(inner[5:7]))
	hops := int(inner[7])
	if !od.usableNeighbor(from) {
		return
	}
	switch inner[0] {
	case odKindRREQ:
		if requester == od.self {
			return // our own flood echoed back
		}
		if !od.rememberReq(requester, reqID) {
			return // duplicate flood copy
		}
		// The reverse route toward the requester came in through from.
		od.install(requester, from, hops+1)
		if target == od.self {
			// Answer with a route reply walking the reverse path.
			var w [8]byte
			w[0] = odKindRREP
			binary.BigEndian.PutUint16(w[1:3], reqID)
			binary.BigEndian.PutUint16(w[3:5], uint16(requester))
			binary.BigEndian.PutUint16(w[5:7], uint16(target))
			w[7] = 0
			od.r.sendControl(from, w[:])
			return
		}
		if hops+1 >= rreqTTL {
			return
		}
		// Re-flood with the hop count bumped.
		out := make([]byte, 8)
		copy(out, inner)
		out[7] = byte(hops + 1)
		od.r.sendControl(phys.Broadcast, out)
	case odKindRREP:
		// The forward route toward the target came in through from.
		od.install(target, from, hops+1)
		if requester == od.self {
			if d, ok := od.disc[target]; ok {
				if d.timer != nil {
					od.eng.Cancel(d.timer)
				}
				delete(od.disc, target)
			}
			od.r.resolvePending(target)
			return
		}
		// Walk on toward the requester along the reverse route.
		e, ok := od.route(requester)
		if !ok {
			return // reverse route expired; the requester will retry
		}
		out := make([]byte, 8)
		copy(out, inner)
		out[7] = byte(hops + 1)
		od.r.sendControl(e.next, out)
	}
}

// onSendResult implements linkObserver: a frame the MAC could not
// deliver (no ack after retries) invalidates every route using that
// next hop. Destinations that still have traffic parked do not wait for
// the next packet — rediscovery starts immediately, so repair begins
// the moment the failure is known.
func (od *onDemand) onSendResult(next phys.NodeID, err error) {
	if err == nil {
		return
	}
	var invalidated []phys.NodeID
	for dst, e := range od.routes {
		if e.next == next {
			invalidated = append(invalidated, dst)
		}
	}
	// Deterministic order: rediscovery transmits, and map iteration
	// order must never reach the air.
	sort.Slice(invalidated, func(i, j int) bool { return invalidated[i] < invalidated[j] })
	for _, dst := range invalidated {
		delete(od.routes, dst)
		if len(od.r.pending[dst]) == 0 {
			continue
		}
		if _, running := od.disc[dst]; !running {
			od.startDiscovery(dst, 0)
		}
	}
}

// RouteTable reports the live routes of an on-demand router (for tests
// and diagnosis tooling). ok is false for other protocols.
func RouteTable(r *Router) (map[phys.NodeID]phys.NodeID, bool) {
	od, is := r.strat.(*onDemand)
	if !is {
		return nil, false
	}
	out := make(map[phys.NodeID]phys.NodeID)
	for dst := range od.routes {
		if e, ok := od.route(dst); ok {
			out[dst] = e.next
		}
	}
	return out, true
}
