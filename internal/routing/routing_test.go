package routing_test

import (
	"errors"
	"testing"
	"time"

	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/stack"
	"liteview/internal/testbed"
)

// lineBed builds an n-node line with deterministic radio (no shadowing)
// and converged neighbor tables.
func lineBed(t *testing.T, n int, spacing float64, seed uint64) *testbed.Testbed {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(n, spacing, opt)
	if err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	return tb
}

// subscribe registers a collector on port at node idx (0-based).
func subscribe(t *testing.T, tb *testbed.Testbed, idx int, port byte, got *[]*stack.Packet) {
	t.Helper()
	err := tb.Node(idx).Stack().Subscribe(port, func(p *stack.Packet, _ phys.NodeID, _ medium.RxInfo) {
		*got = append(*got, p)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeographicMultiHopDelivery(t *testing.T) {
	tb := lineBed(t, 5, 20, 1)
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	var got []*stack.Packet
	subscribe(t, tb, 4, 100, &got)
	r, _ := tb.Router(routing.GeographicPort, 1)
	if err := r.SendTo(5, 100, []byte("hello"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if got[0].Origin != 1 || string(got[0].Data) != "hello" {
		t.Fatalf("packet = %+v", got[0])
	}
	// With 20 m spacing and ~45 m range the path should use >1 hop:
	// someone forwarded.
	forwarded := uint64(0)
	for id := phys.NodeID(2); id <= 4; id++ {
		rr, _ := tb.Router(routing.GeographicPort, id)
		forwarded += rr.Stats().Forwarded
	}
	if forwarded == 0 {
		t.Fatal("no intermediate hops forwarded; topology degenerated to one hop")
	}
}

func TestGeographicSelfDelivery(t *testing.T) {
	tb := lineBed(t, 2, 10, 2)
	tb.AttachGeographic(routing.DefaultConfig())
	var got []*stack.Packet
	subscribe(t, tb, 0, 100, &got)
	r, _ := tb.Router(routing.GeographicPort, 1)
	if err := r.SendTo(1, 100, []byte("me"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(time.Second)
	if len(got) != 1 || string(got[0].Data) != "me" {
		t.Fatalf("self delivery failed: %v", got)
	}
}

func TestGeographicNoRoute(t *testing.T) {
	// Two nodes far out of radio range: no neighbor, no route.
	tb := lineBed(t, 2, 5000, 3)
	tb.AttachGeographic(routing.DefaultConfig())
	r, _ := tb.Router(routing.GeographicPort, 1)
	err := r.SendTo(2, 100, []byte("x"), false, false)
	if !errors.Is(err, routing.ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	if r.Stats().DroppedNoRoute != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
}

func TestGeographicUnknownDestination(t *testing.T) {
	tb := lineBed(t, 3, 20, 4)
	tb.AttachGeographic(routing.DefaultConfig())
	r, _ := tb.Router(routing.GeographicPort, 1)
	if err := r.SendTo(99, 100, []byte("x"), false, false); !errors.Is(err, routing.ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestBlacklistDivertsRouting(t *testing.T) {
	// 4 nodes, 15 m spacing: radio reaches ~2 hops. Node 1 normally
	// relays via node 2 (greedy picks the farthest-progress usable
	// neighbor = node 3 actually). Blacklist node 3 at node 1 and the
	// route must avoid it as first hop.
	tb := lineBed(t, 4, 15, 5)
	tb.AttachGeographic(routing.DefaultConfig())
	var got []*stack.Packet
	subscribe(t, tb, 3, 100, &got)

	n1 := tb.Node(0)
	if err := n1.SysNeighborTable().Blacklist(3, true); err != nil {
		t.Skipf("node 3 not in node 1's table at this spacing: %v", err)
	}
	r, _ := tb.Router(routing.GeographicPort, 1)
	if err := r.SendTo(4, 100, []byte("detour"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	// Node 2 must have forwarded (it is the only usable progress hop).
	r2, _ := tb.Router(routing.GeographicPort, 2)
	if r2.Stats().Forwarded == 0 {
		t.Fatal("route did not divert through node 2")
	}
}

func TestFloodingUnicastDelivery(t *testing.T) {
	tb := lineBed(t, 5, 20, 7)
	tb.AttachFlooding(routing.DefaultConfig())
	var got []*stack.Packet
	subscribe(t, tb, 4, 100, &got)
	r, _ := tb.Router(routing.FloodingPort, 1)
	if err := r.SendTo(5, 100, []byte("to-the-end"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second)
	if len(got) != 1 {
		t.Fatalf("flood delivered %d copies to the destination, want exactly 1 (dedup)", len(got))
	}
	// Every node rebroadcasts at most once per packet.
	for id := phys.NodeID(1); id <= 5; id++ {
		rr, _ := tb.Router(routing.FloodingPort, id)
		st := rr.Stats()
		if st.Forwarded > 1 {
			t.Fatalf("node %d forwarded %d times for one flood", id, st.Forwarded)
		}
	}
}

func TestFloodingBroadcastDeliversToAll(t *testing.T) {
	tb := lineBed(t, 4, 20, 8)
	tb.AttachFlooding(routing.DefaultConfig())
	delivered := make(map[int]int)
	for i := 1; i < 4; i++ {
		i := i
		err := tb.Node(i).Stack().Subscribe(100, func(p *stack.Packet, _ phys.NodeID, _ medium.RxInfo) {
			delivered[i]++
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	r, _ := tb.Router(routing.FloodingPort, 1)
	if err := r.SendTo(phys.Broadcast, 100, []byte("all"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second)
	for i := 1; i < 4; i++ {
		if delivered[i] != 1 {
			t.Fatalf("node %d received %d copies, want 1", i+1, delivered[i])
		}
	}
}

func TestTreeRoutesToRoot(t *testing.T) {
	tb := lineBed(t, 5, 20, 9)
	if err := tb.AttachTree(1, routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	// Let adverts propagate down the line.
	tb.Run(60 * time.Second)
	r5, _ := tb.Router(routing.TreePort, 5)
	if _, _, hasPath, ok := routing.TreeState(r5); !ok || !hasPath {
		t.Fatalf("node 5 has no path to root (ok=%v)", ok)
	}
	var got []*stack.Packet
	subscribe(t, tb, 0, 100, &got)
	if err := r5.SendTo(1, 100, []byte("report"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	if len(got) != 1 || got[0].Origin != 5 {
		t.Fatalf("collection failed: %v", got)
	}
}

func TestTreeRejectsNonRootDestination(t *testing.T) {
	tb := lineBed(t, 3, 20, 10)
	tb.AttachTree(1, routing.DefaultConfig())
	tb.Run(30 * time.Second)
	r3, _ := tb.Router(routing.TreePort, 3)
	if err := r3.SendTo(2, 100, []byte("x"), false, false); !errors.Is(err, routing.ErrNotForRoot) {
		t.Fatalf("err = %v, want ErrNotForRoot", err)
	}
}

func TestPaddingAccumulatesPerHop(t *testing.T) {
	tb := lineBed(t, 5, 20, 11)
	tb.AttachGeographic(routing.DefaultConfig())
	var got []*stack.Packet
	subscribe(t, tb, 4, 100, &got)
	r, _ := tb.Router(routing.GeographicPort, 1)
	if err := r.SendTo(5, 100, make([]byte, 16), true, true); err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	if len(got) != 1 {
		t.Fatal("probe not delivered")
	}
	if len(got[0].Pad) < 2 {
		t.Fatalf("pad records = %d, want ≥ 2 on a multi-hop path", len(got[0].Pad))
	}
	for _, lq := range got[0].Pad {
		if lq.LQI < 50 || lq.LQI > 110 {
			t.Fatalf("pad LQI %d out of CC2420 range", lq.LQI)
		}
	}
}

func TestProtocolsCoexist(t *testing.T) {
	// The paper's extensibility goal: multiple protocols co-exist on
	// one stack with no recompilation and no cross-talk.
	tb := lineBed(t, 3, 15, 12)
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachFlooding(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachTree(1, routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	var viaGeo, viaFlood []*stack.Packet
	subscribe(t, tb, 2, 100, &viaGeo)
	subscribe(t, tb, 2, 101, &viaFlood)
	rg, _ := tb.Router(routing.GeographicPort, 1)
	rf, _ := tb.Router(routing.FloodingPort, 1)
	if err := rg.SendTo(3, 100, []byte("geo"), false, false); err != nil {
		t.Fatal(err)
	}
	if err := rf.SendTo(3, 101, []byte("flood"), false, false); err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second)
	if len(viaGeo) != 1 || string(viaGeo[0].Data) != "geo" {
		t.Fatalf("geographic delivery: %v", viaGeo)
	}
	if len(viaFlood) != 1 || string(viaFlood[0].Data) != "flood" {
		t.Fatalf("flooding delivery: %v", viaFlood)
	}
}

func TestRouterNames(t *testing.T) {
	tb := lineBed(t, 2, 10, 13)
	tb.AttachGeographic(routing.DefaultConfig())
	tb.AttachFlooding(routing.DefaultConfig())
	tb.AttachTree(1, routing.DefaultConfig())
	rg, _ := tb.Router(routing.GeographicPort, 1)
	rf, _ := tb.Router(routing.FloodingPort, 1)
	rt, _ := tb.Router(routing.TreePort, 1)
	if rg.Name() != "geographic forwarding" {
		t.Fatalf("name = %q", rg.Name())
	}
	if rf.Name() != "flooding" || rt.Name() != "collection tree" {
		t.Fatalf("names = %q, %q", rf.Name(), rt.Name())
	}
	if rg.Port() != 10 {
		t.Fatalf("geographic port = %d, want 10 (paper)", rg.Port())
	}
}

func TestSendToValidation(t *testing.T) {
	tb := lineBed(t, 2, 10, 14)
	tb.AttachGeographic(routing.DefaultConfig())
	r, _ := tb.Router(routing.GeographicPort, 1)
	if err := r.SendTo(2, 0, []byte("x"), false, false); err == nil {
		t.Fatal("reserved inner port accepted")
	}
	if err := r.SendTo(2, 100, make([]byte, stack.PayloadCeiling), false, false); !errors.Is(err, routing.ErrDataLen) {
		t.Fatalf("oversize err = %v", err)
	}
}

func TestTTLExpiry(t *testing.T) {
	cfg := routing.DefaultConfig()
	cfg.DefaultTTL = 1 // allows exactly origin→hop→drop
	tb := lineBed(t, 5, 20, 15)
	if err := tb.AttachGeographic(cfg); err != nil {
		t.Fatal(err)
	}
	var got []*stack.Packet
	subscribe(t, tb, 4, 100, &got)
	r, _ := tb.Router(routing.GeographicPort, 1)
	r.SendTo(5, 100, []byte("short-lived"), false, false)
	tb.Run(5 * time.Second)
	if len(got) != 0 {
		t.Skip("path was short enough to deliver within TTL 1")
	}
	ttlDrops := uint64(0)
	for id := phys.NodeID(2); id <= 5; id++ {
		rr, _ := tb.Router(routing.GeographicPort, id)
		ttlDrops += rr.Stats().DroppedTTL
	}
	if ttlDrops == 0 {
		t.Fatal("packet vanished without a TTL drop")
	}
}

func TestCloseFreesPort(t *testing.T) {
	tb := lineBed(t, 2, 10, 16)
	tb.AttachGeographic(routing.DefaultConfig())
	r, _ := tb.Router(routing.GeographicPort, 1)
	r.Close()
	if tb.Node(0).Stack().Subscribed(routing.GeographicPort) {
		t.Fatal("port still subscribed after Close")
	}
}
