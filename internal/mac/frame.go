package mac

import (
	"encoding/binary"
	"errors"
	"fmt"

	"liteview/internal/phys"
)

// FrameType distinguishes the kinds of traffic the stack carries. The
// MAC does not interpret it beyond carrying it; it exists so traces and
// overhead accounting (Figure 7 counts "control messages") can classify
// frames.
type FrameType byte

const (
	// TypeData is ordinary stack traffic (application or routing data).
	TypeData FrameType = iota
	// TypeBeacon is a neighborhood discovery beacon.
	TypeBeacon
	// TypeControl is LiteView management traffic (commands, probes,
	// replies, acks).
	TypeControl
	// TypeAck is a MAC-level acknowledgement (802.15.4 auto-ack); it
	// never reaches the stack.
	TypeAck
)

func (t FrameType) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeBeacon:
		return "beacon"
	case TypeControl:
		return "control"
	case TypeAck:
		return "ack"
	}
	return fmt.Sprintf("type(%d)", byte(t))
}

// Frame layout on the air:
//
//	offset size field
//	0      1    frame type
//	1      1    sequence number
//	2      2    destination short address (big endian)
//	4      2    source short address (big endian)
//	6      n    payload
//	6+n    2    CRC-16/CCITT over bytes [0, 6+n)
const (
	headerLen = 6
	fcsLen    = 2
	// MaxFrameLen is the 802.15.4 PHY's 127-byte MPDU limit.
	MaxFrameLen = 127
	// MaxPayload is the room left for the stack's packet.
	MaxPayload = MaxFrameLen - headerLen - fcsLen
)

// Frame is a decoded MAC frame.
type Frame struct {
	Type    FrameType
	Seq     byte
	Dst     phys.NodeID
	Src     phys.NodeID
	Payload []byte
}

// Errors returned by Decode.
var (
	ErrFrameTooShort = errors.New("mac: frame too short")
	ErrFrameTooLong  = errors.New("mac: frame exceeds 127-byte MPDU")
	ErrBadCRC        = errors.New("mac: CRC check failed")
)

// Encode serialises the frame, appending the FCS.
func (f *Frame) Encode() ([]byte, error) {
	return f.AppendEncode(nil)
}

// AppendEncode serialises the frame into dst's spare capacity and
// returns the extended slice; the wire image is the appended region.
// Encoding into a retained buffer's [:0] reslice makes steady-state
// transmission allocation-free once the buffer has grown to frame size.
func (f *Frame) AppendEncode(dst []byte) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return dst, fmt.Errorf("%w: payload %d > %d", ErrFrameTooLong, len(f.Payload), MaxPayload)
	}
	start := len(dst)
	dst = append(dst, make([]byte, headerLen+len(f.Payload)+fcsLen)...)
	buf := dst[start:]
	buf[0] = byte(f.Type)
	buf[1] = f.Seq
	binary.BigEndian.PutUint16(buf[2:4], uint16(f.Dst))
	binary.BigEndian.PutUint16(buf[4:6], uint16(f.Src))
	copy(buf[headerLen:], f.Payload)
	crc := Checksum(buf[:headerLen+len(f.Payload)])
	binary.BigEndian.PutUint16(buf[headerLen+len(f.Payload):], crc)
	return dst, nil
}

// Decode parses raw bytes, verifying length bounds and the FCS. The
// returned frame's payload aliases raw.
func Decode(raw []byte) (Frame, error) {
	if len(raw) < headerLen+fcsLen {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooShort, len(raw))
	}
	if len(raw) > MaxFrameLen {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLong, len(raw))
	}
	body := raw[:len(raw)-fcsLen]
	want := binary.BigEndian.Uint16(raw[len(raw)-fcsLen:])
	if Checksum(body) != want {
		return Frame{}, ErrBadCRC
	}
	return Frame{
		Type:    FrameType(raw[0]),
		Seq:     raw[1],
		Dst:     phys.NodeID(binary.BigEndian.Uint16(raw[2:4])),
		Src:     phys.NodeID(binary.BigEndian.Uint16(raw[4:6])),
		Payload: raw[headerLen : len(raw)-fcsLen],
	}, nil
}
