package mac

import (
	"errors"
	"testing"

	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
)

type rxRecord struct {
	frame Frame
	info  medium.RxInfo
}

type testNode struct {
	mac *MAC
	got []rxRecord
}

func buildPair(t *testing.T, seed uint64, dist float64) (*sim.Engine, *testNode, *testNode) {
	t.Helper()
	eng := sim.NewEngine(seed)
	model := phys.DefaultModel(seed)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	med := medium.New(eng, model)
	mk := func(id phys.NodeID, x float64) *testNode {
		n := &testNode{}
		rad, err := radio.New(17)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(eng, med, rad, id, phys.Position{X: x}, DefaultConfig(),
			func(f Frame, info medium.RxInfo) {
				// Delivered payloads are borrows; copy to retain.
				f.Payload = append([]byte(nil), f.Payload...)
				n.got = append(n.got, rxRecord{f, info})
			})
		if err != nil {
			t.Fatal(err)
		}
		n.mac = m
		return n
	}
	return eng, mk(1, 0), mk(2, dist)
}

func TestSendDeliver(t *testing.T) {
	eng, a, b := buildPair(t, 1, 5)
	var sentErr error
	sent := false
	err := a.mac.Send(Frame{Type: TypeData, Dst: 2, Payload: []byte("ping")}, func(f Frame, err error) {
		sent = true
		sentErr = err
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !sent || sentErr != nil {
		t.Fatalf("sent=%v err=%v", sent, sentErr)
	}
	if len(b.got) != 1 {
		t.Fatalf("receiver got %d frames", len(b.got))
	}
	r := b.got[0]
	if r.frame.Src != 1 || r.frame.Dst != 2 || string(r.frame.Payload) != "ping" {
		t.Fatalf("frame = %+v", r.frame)
	}
	if r.info.LQI < 100 {
		t.Fatalf("LQI = %d at 5m", r.info.LQI)
	}
	if a.mac.Stats().Sent != 1 {
		t.Fatalf("sender stats = %+v", a.mac.Stats())
	}
	if b.mac.Stats().Received != 1 {
		t.Fatalf("receiver stats = %+v", b.mac.Stats())
	}
}

func TestSequenceNumbersIncrease(t *testing.T) {
	eng, a, b := buildPair(t, 2, 5)
	for i := 0; i < 3; i++ {
		if err := a.mac.Send(Frame{Type: TypeData, Dst: 2}, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(b.got) != 3 {
		t.Fatalf("got %d frames", len(b.got))
	}
	for i := 1; i < 3; i++ {
		if b.got[i].frame.Seq <= b.got[i-1].frame.Seq {
			t.Fatal("sequence numbers not increasing")
		}
	}
}

func TestQueueBounded(t *testing.T) {
	_, a, _ := buildPair(t, 3, 5)
	cfg := DefaultConfig()
	var errFull error
	for i := 0; i < cfg.QueueCap+2; i++ {
		err := a.mac.Send(Frame{Type: TypeData, Dst: 2}, nil)
		if err != nil {
			errFull = err
		}
	}
	if !errors.Is(errFull, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", errFull)
	}
	if a.mac.Stats().QueueDrops == 0 {
		t.Fatal("queue drop not counted")
	}
}

func TestQueueLenReflectsBacklog(t *testing.T) {
	eng, a, _ := buildPair(t, 4, 5)
	for i := 0; i < 4; i++ {
		a.mac.Send(Frame{Type: TypeData, Dst: 2}, nil)
	}
	if a.mac.QueueLen() != 4 {
		t.Fatalf("QueueLen = %d, want 4", a.mac.QueueLen())
	}
	eng.Run()
	if a.mac.QueueLen() != 0 {
		t.Fatalf("QueueLen after drain = %d", a.mac.QueueLen())
	}
}

func TestRadioOffRejectsSend(t *testing.T) {
	_, a, _ := buildPair(t, 5, 5)
	a.mac.Radio().SetState(radio.Off)
	if err := a.mac.Send(Frame{Type: TypeData, Dst: 2}, nil); !errors.Is(err, ErrRadioOff) {
		t.Fatalf("err = %v, want ErrRadioOff", err)
	}
}

func TestCSMADefersToBusyChannel(t *testing.T) {
	// Three nodes in range; two send at the same instant. CSMA backoff
	// must serialise most transmissions: the receiver should get both
	// frames intact in a large majority of trials.
	intactBoth := 0
	trials := 30
	for seed := uint64(0); seed < uint64(trials); seed++ {
		eng := sim.NewEngine(seed)
		model := phys.DefaultModel(seed)
		model.ShadowSigma = 0
		model.AsymSigma = 0
		med := medium.New(eng, model)
		var rx []Frame
		mk := func(id phys.NodeID, x float64, deliver DeliverFunc) *MAC {
			rad, _ := radio.New(17)
			m, err := New(eng, med, rad, id, phys.Position{X: x}, DefaultConfig(), deliver)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		a := mk(1, 0, func(Frame, medium.RxInfo) {})
		b := mk(2, 4, func(Frame, medium.RxInfo) {})
		mk(3, 2, func(f Frame, _ medium.RxInfo) { rx = append(rx, f) })
		a.Send(Frame{Type: TypeData, Dst: 3, Payload: make([]byte, 30)}, nil)
		b.Send(Frame{Type: TypeData, Dst: 3, Payload: make([]byte, 30)}, nil)
		eng.Run()
		if len(rx) == 2 {
			intactBoth++
		}
	}
	if intactBoth < trials*2/3 {
		t.Fatalf("CSMA serialised only %d/%d contending pairs", intactBoth, trials)
	}
}

func TestChannelAccessFailure(t *testing.T) {
	// A jammer node keeps the channel busy; the victim's CSMA must give
	// up with ErrChannelAccess. We emulate a jam by scheduling
	// back-to-back long transmissions from the jammer.
	eng := sim.NewEngine(9)
	model := phys.DefaultModel(9)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	med := medium.New(eng, model)
	mkRad := func() *radio.Radio { r, _ := radio.New(17); return r }
	jam, err := New(eng, med, mkRad(), 1, phys.Position{}, DefaultConfig(), func(Frame, medium.RxInfo) {})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := New(eng, med, mkRad(), 2, phys.Position{X: 3}, DefaultConfig(), func(Frame, medium.RxInfo) {})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the air: the jammer transmits directly via the medium,
	// bypassing its own CSMA, to guarantee continuous busy.
	var jamTx func()
	deadline := sim.Time(0)
	raw, _ := (&Frame{Type: TypeData, Src: 1, Dst: 0xFFFF, Payload: make([]byte, MaxPayload)}).Encode()
	jamTx = func() {
		if eng.Now() > 500*1e6 { // 500 ms of jamming is plenty
			return
		}
		air, err := med.Transmit(jam, raw)
		if err != nil {
			t.Errorf("jam transmit: %v", err)
			return
		}
		deadline = eng.Now() + air
		eng.MustSchedule(air, jamTx)
	}
	jamTx()
	_ = deadline
	var gotErr error
	victim.Send(Frame{Type: TypeData, Dst: 1}, func(_ Frame, err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrChannelAccess) {
		t.Fatalf("err = %v, want ErrChannelAccess", gotErr)
	}
	if victim.Stats().ChannelAccess != 1 {
		t.Fatalf("stats = %+v", victim.Stats())
	}
}

func TestCorruptedFrameCountsAsCRCFailure(t *testing.T) {
	// Put the pair far enough apart that some frames take bit errors.
	eng, a, b := buildPair(t, 11, 42)
	for i := 0; i < 40; i++ {
		a.mac.Send(Frame{Type: TypeData, Dst: 2, Payload: make([]byte, 64)}, nil)
		eng.Run()
	}
	st := b.mac.Stats()
	if st.CRCFailures == 0 {
		t.Skip("no corruption at this distance/seed; model too clean")
	}
	if int(st.Received) != len(b.got) {
		t.Fatalf("Received=%d but delivered=%d", st.Received, len(b.got))
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	med := medium.New(eng, phys.DefaultModel(1))
	rad, _ := radio.New(17)
	if _, err := New(eng, med, rad, 1, phys.Position{}, DefaultConfig(), nil); err == nil {
		t.Fatal("nil deliver accepted")
	}
	bad := DefaultConfig()
	bad.QueueCap = 0
	if _, err := New(eng, med, rad, 1, phys.Position{}, bad, func(Frame, medium.RxInfo) {}); err == nil {
		t.Fatal("zero queue cap accepted")
	}
}

func TestHalfDuplex(t *testing.T) {
	// While a node is transmitting a long frame, it cannot receive.
	eng, a, b := buildPair(t, 13, 5)
	a.mac.Send(Frame{Type: TypeData, Dst: 2, Payload: make([]byte, MaxPayload)}, nil)
	b.mac.Send(Frame{Type: TypeData, Dst: 1, Payload: make([]byte, MaxPayload)}, nil)
	eng.Run()
	// With CSMA both usually serialise, so this mostly checks no crash;
	// the medium-level half-duplex behaviour is asserted in package
	// medium. Here we just require both data frames eventually went out
	// (auto-acks are counted separately).
	if a.mac.Stats().SentData+b.mac.Stats().SentData < 2 {
		t.Fatalf("sent data = %d + %d", a.mac.Stats().SentData, b.mac.Stats().SentData)
	}
}
