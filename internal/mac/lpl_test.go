package mac

import (
	"testing"
	"time"

	"liteview/internal/energy"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
)

func lplConfig() Config {
	cfg := DefaultConfig()
	cfg.LPL = true
	return cfg
}

type lplNode struct {
	mac   *MAC
	rad   *radio.Radio
	meter *energy.Meter
	got   []Frame
}

func buildLPLPair(t *testing.T, seed uint64, dist float64, cfgA, cfgB Config) (*sim.Engine, *lplNode, *lplNode) {
	t.Helper()
	eng := sim.NewEngine(seed)
	model := phys.DefaultModel(seed)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	med := medium.New(eng, model)
	mk := func(id phys.NodeID, x float64, cfg Config) *lplNode {
		n := &lplNode{}
		rad, err := radio.New(17)
		if err != nil {
			t.Fatal(err)
		}
		n.rad = rad
		n.meter = energy.Attach(eng, rad, 0)
		m, err := New(eng, med, rad, id, phys.Position{X: x}, cfg,
			func(f Frame, _ medium.RxInfo) { n.got = append(n.got, f) })
		if err != nil {
			t.Fatal(err)
		}
		n.mac = m
		return n
	}
	return eng, mk(1, 0, cfgA), mk(2, dist, cfgB)
}

func TestLPLDutyCycle(t *testing.T) {
	eng, a, b := buildLPLPair(t, 1, 5, lplConfig(), lplConfig())
	_ = a
	eng.RunUntil(10 * time.Second)
	st := b.meter.Stats()
	total := st.RXTime + st.OffTime + st.TXTime
	if total < 9*time.Second {
		t.Fatalf("timeline gap: %+v", st)
	}
	duty := float64(st.RXTime) / float64(total)
	// WakeWindow 6 ms per 100 ms interval ≈ 6-10% awake when idle.
	if duty > 0.15 {
		t.Fatalf("idle duty cycle = %.1f%%, want < 15%%", duty*100)
	}
	if duty <= 0 {
		t.Fatal("node never woke")
	}
}

func TestLPLUnicastDelivery(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		eng, a, b := buildLPLPair(t, seed, 5, lplConfig(), lplConfig())
		eng.RunUntil(time.Second) // settle into the cycle
		var sentErr error
		done := false
		start := eng.Now()
		err := a.mac.Send(Frame{Type: TypeData, Dst: 2, Payload: []byte("wake up")},
			func(_ Frame, err error) { done = true; sentErr = err })
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(eng.Now() + 2*time.Second)
		if !done || sentErr != nil {
			t.Fatalf("seed %d: done=%v err=%v", seed, done, sentErr)
		}
		if len(b.got) == 0 {
			t.Fatalf("seed %d: LPL unicast lost", seed)
		}
		// Delivery latency is bounded by roughly one sleep interval.
		elapsed := eng.Now() - start
		_ = elapsed
		if a.mac.Stats().AckedOK == 0 {
			t.Fatalf("seed %d: no ack confirmation", seed)
		}
	}
}

func TestLPLUnicastStopsEarlyOnAck(t *testing.T) {
	eng, a, b := buildLPLPair(t, 3, 5, lplConfig(), lplConfig())
	eng.RunUntil(time.Second)
	a.mac.Send(Frame{Type: TypeData, Dst: 2, Payload: []byte("x")}, nil)
	eng.RunUntil(eng.Now() + 2*time.Second)
	if a.mac.Stats().AckedOK == 0 {
		t.Fatal("frame never acked")
	}
	if len(b.got) != 1 {
		t.Fatalf("delivered %d copies up the stack, want 1 (duplicate suppression)", len(b.got))
	}
	// Early stop: once acked, the sender goes quiet — no further
	// repeats accrue afterwards (the receiver's wake phase decides how
	// many copies were needed, but never more than the retry window).
	sent := a.mac.Stats().Sent
	eng.RunUntil(eng.Now() + 2*time.Second)
	if got := a.mac.Stats().Sent; got != sent {
		t.Fatalf("sender kept transmitting after the ack: %d → %d", sent, got)
	}
	maxCopies := uint64(a.mac.lplRetryWindow()/(2*time.Millisecond)) + 2
	if sent > maxCopies {
		t.Fatalf("sender sent %d copies, beyond the %d-copy retry window", sent, maxCopies)
	}
}

func TestLPLBroadcastCoversWakeWindows(t *testing.T) {
	// Three LPL receivers with independent phases: a single broadcast
	// send (with its repeats) must reach all of them.
	eng := sim.NewEngine(7)
	model := phys.DefaultModel(7)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	med := medium.New(eng, model)
	mk := func(id phys.NodeID, x float64) *lplNode {
		n := &lplNode{}
		rad, _ := radio.New(17)
		n.rad = rad
		m, err := New(eng, med, rad, id, phys.Position{X: x}, lplConfig(),
			func(f Frame, _ medium.RxInfo) { n.got = append(n.got, f) })
		if err != nil {
			t.Fatal(err)
		}
		n.mac = m
		return n
	}
	sender := mk(1, 0)
	receivers := []*lplNode{mk(2, 4), mk(3, 6), mk(4, 8)}
	eng.RunUntil(time.Second)
	done := false
	sender.mac.Send(Frame{Type: TypeBeacon, Dst: phys.Broadcast, Payload: []byte("hello all")},
		func(Frame, error) { done = true })
	eng.RunUntil(eng.Now() + 2*time.Second)
	if !done {
		t.Fatal("broadcast never completed")
	}
	for i, r := range receivers {
		if len(r.got) == 0 {
			t.Fatalf("receiver %d missed the broadcast", i+2)
		}
	}
	// The repeats spanned at least one sleep interval.
	if sender.mac.Stats().Sent < 10 {
		t.Fatalf("broadcast repeated only %d times", sender.mac.Stats().Sent)
	}
}

func TestLPLEnergySavings(t *testing.T) {
	run := func(lpl bool) float64 {
		cfg := DefaultConfig()
		cfg.LPL = lpl
		eng, _, b := buildLPLPair(t, 9, 5, cfg, cfg)
		eng.RunUntil(60 * time.Second)
		return b.meter.ConsumedJ()
	}
	alwaysOn := run(false)
	lpl := run(true)
	if lpl >= alwaysOn/3 {
		t.Fatalf("LPL consumed %.3f J vs %.3f J always-on: savings too small", lpl, alwaysOn)
	}
}

func TestLPLSendWhileAsleepWakes(t *testing.T) {
	eng, a, b := buildLPLPair(t, 11, 5, lplConfig(), lplConfig())
	// Run until node a is actually asleep, then send.
	for a.rad.State() != radio.Off {
		if !eng.Step() {
			t.Fatal("engine drained before the node slept")
		}
	}
	if err := a.mac.Send(Frame{Type: TypeData, Dst: 2, Payload: []byte("x")}, nil); err != nil {
		t.Fatalf("send while asleep: %v", err)
	}
	eng.RunUntil(eng.Now() + 2*time.Second)
	if len(b.got) == 0 {
		t.Fatal("frame sent while asleep never delivered")
	}
}

func TestNonLPLRejectsSendWhenOff(t *testing.T) {
	eng, a, _ := buildLPLPair(t, 13, 5, DefaultConfig(), DefaultConfig())
	_ = eng
	a.rad.SetState(radio.Off)
	if err := a.mac.Send(Frame{Type: TypeData, Dst: 2}, nil); err == nil {
		t.Fatal("always-on MAC accepted a send with the radio off")
	}
}
