package mac

// Low-power listening (LPL), in the BoX-MAC-2 style of TinyOS's CC2420
// stack: the receiver keeps its radio off for most of each sleep
// interval, waking briefly to catch traffic; a sender retransmits its
// frame back-to-back across a whole sleep interval, so every neighbor's
// wake window overlaps at least one copy. Unicast stops early when the
// auto-ack arrives; broadcast always pays the full interval.
//
// LPL trades latency (up to one sleep interval per hop) and sender
// energy for a receiver duty cycle of a few percent — the lever that
// turns the ~5-day always-on lifetime of ablation D6 into months.

import (
	"time"

	"liteview/internal/radio"
	"liteview/internal/sim"
)

// Default LPL parameters.
const (
	// DefaultSleepInterval is the period of the wake-sleep cycle.
	DefaultSleepInterval = 100 * time.Millisecond
	// DefaultWakeWindow is how long the radio listens per cycle.
	DefaultWakeWindow = 6 * time.Millisecond
	// DefaultLinger is how long a node stays awake after receiving a
	// frame (follow-up traffic is likely).
	DefaultLinger = 40 * time.Millisecond
)

// lplInit primes the duty cycle with a random phase so co-located nodes
// do not wake in lockstep.
func (m *MAC) lplInit() {
	if !m.cfg.LPL {
		return
	}
	if m.cfg.SleepInterval <= 0 {
		m.cfg.SleepInterval = DefaultSleepInterval
	}
	if m.cfg.WakeWindow <= 0 {
		m.cfg.WakeWindow = DefaultWakeWindow
	}
	if m.cfg.Linger <= 0 {
		m.cfg.Linger = DefaultLinger
	}
	m.eng.After(m.rng.Jitter(m.cfg.SleepInterval), m.lplSleepCb)
}

// lplBusy reports whether the MAC has reasons to keep the radio awake.
func (m *MAC) lplBusy() bool {
	return m.sending || m.qLen > 0 || m.ackArmed ||
		m.eng.Now() < m.lingerUntil || m.rad.State() == radio.TX
}

// lplMaybeSleep starts a sleep period if nothing needs the radio; it
// re-checks shortly otherwise.
func (m *MAC) lplMaybeSleep() {
	if !m.cfg.LPL || m.rad.State() == radio.Off {
		return
	}
	if m.lplBusy() {
		m.eng.After(m.cfg.WakeWindow, m.lplSleepCb)
		return
	}
	m.rad.SetState(radio.Off)
	m.lplSleeping = true
	sleep := m.cfg.SleepInterval - m.cfg.WakeWindow
	if sleep < m.cfg.WakeWindow {
		sleep = m.cfg.WakeWindow
	}
	m.eng.After(sleep, m.lplWakeCb)
}

// lplWake opens the listen window.
func (m *MAC) lplWake() {
	if !m.cfg.LPL || !m.lplSleeping {
		return
	}
	m.lplSleeping = false
	m.rad.SetState(radio.RX)
	m.kick() // traffic may have queued while asleep
	m.eng.After(m.cfg.WakeWindow, m.lplSleepCb)
}

// lplTouch extends the awake period after activity.
func (m *MAC) lplTouch() {
	if !m.cfg.LPL {
		return
	}
	until := m.eng.Now() + m.cfg.Linger
	if until > m.lingerUntil {
		m.lingerUntil = until
	}
}

// lplWakeForSend brings a sleeping radio up to transmit.
func (m *MAC) lplWakeForSend() {
	if m.cfg.LPL && m.rad.State() == radio.Off {
		m.lplSleeping = false
		m.rad.SetState(radio.RX)
		m.eng.After(m.cfg.WakeWindow, m.lplSleepCb)
	}
}

// lplRetryWindow is how long unicast repeats continue: one sleep
// interval plus margin guarantees the peer a wake window inside it.
func (m *MAC) lplRetryWindow() sim.Time {
	return m.cfg.SleepInterval + 2*m.cfg.WakeWindow
}

// lplShouldRetry reports whether an unacked LPL frame should repeat:
// the budget is time-based (small frames cycle faster than large ones,
// so a fixed count would underestimate the span).
func (m *MAC) lplShouldRetry(head *outgoing) bool {
	if head.firstTx == 0 {
		return true
	}
	return m.eng.Now()-head.firstTx < m.lplRetryWindow()
}

// lplBroadcastDone reports whether a broadcast frame has been repeated
// long enough to cover every neighbor's wake window.
func (m *MAC) lplBroadcastDone(firstTx sim.Time) bool {
	return m.eng.Now()-firstTx >= m.cfg.SleepInterval+2*m.cfg.WakeWindow
}
