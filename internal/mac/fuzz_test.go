package mac

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the frame parser against arbitrary radio bytes: it
// must never panic, and anything it accepts must re-encode to the same
// wire form.
func FuzzDecode(f *testing.F) {
	good, _ := (&Frame{Type: TypeControl, Seq: 9, Dst: 2, Src: 1, Payload: []byte("probe")}).Encode()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(bytes.Repeat([]byte{0xFF}, MaxFrameLen))
	f.Fuzz(func(t *testing.T, raw []byte) {
		frame, err := Decode(raw)
		if err != nil {
			return
		}
		re, err := frame.Encode()
		if err != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("re-encode mismatch:\n in: % x\nout: % x", raw, re)
		}
	})
}
