package mac

import (
	"testing"
	"testing/quick"
)

func TestChecksumKnownValues(t *testing.T) {
	// CRC-16/CCITT with init 0x0000 ("XModem") of "123456789" is 0x31C3.
	if got := Checksum([]byte("123456789")); got != 0x31C3 {
		t.Fatalf("Checksum = %#04x, want 0x31C3", got)
	}
	if Checksum(nil) != 0 {
		t.Fatal("Checksum of empty input should be 0")
	}
}

func TestChecksumDetectsSingleBitErrors(t *testing.T) {
	f := func(data []byte, pos uint16, bit uint8) bool {
		if len(data) == 0 {
			return true
		}
		orig := Checksum(data)
		mut := append([]byte(nil), data...)
		mut[int(pos)%len(mut)] ^= 1 << (bit % 8)
		return Checksum(mut) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumDeterministic(t *testing.T) {
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if Checksum(data) != Checksum(data) {
		t.Fatal("checksum not deterministic")
	}
}
