// Package mac implements the 802.15.4-style medium access control layer
// of the simulated motes: unslotted CSMA/CA with energy-detect CCA,
// binary exponential backoff, a small bounded transmit queue (whose
// occupancy is what LiteView's ping output reports as "Queue = n/m"),
// and CRC-checked frames.
//
// The MAC broadcasts every frame, as the paper's stack does ("the packet
// is then delivered to the MAC component and broadcasted over the
// radio"); destination filtering is the port-based stack's job.
package mac

import (
	"errors"
	"fmt"
	"strconv"

	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// UnitBackoff is the 802.15.4 unit backoff period (20 symbols).
const UnitBackoff = 20 * radio.SymbolTime

// Config holds the CSMA/CA parameters (802.15.4 defaults).
type Config struct {
	// MinBE and MaxBE bound the backoff exponent.
	MinBE, MaxBE int
	// MaxCSMABackoffs is how many busy-channel rounds are tolerated
	// before the frame is dropped with ErrChannelAccess.
	MaxCSMABackoffs int
	// QueueCap bounds the transmit queue, as a 4 KB-RAM mote must.
	QueueCap int
	// CCAThresholdDBm is the energy-detect threshold.
	CCAThresholdDBm float64
	// LinkAcks enables 802.15.4 auto-acknowledgement of unicast frames
	// with MaxFrameRetries retransmissions — the CC2420's hardware
	// auto-ack. Broadcast frames are never acked.
	LinkAcks bool
	// MaxFrameRetries bounds data retransmissions after missing acks.
	MaxFrameRetries int
	// AckWait is how long the sender waits for the auto-ack after its
	// frame's airtime ends.
	AckWait sim.Time
	// LPL enables low-power listening (duty cycling); see lpl.go.
	LPL bool
	// SleepInterval, WakeWindow, Linger tune the duty cycle (zero
	// values select the defaults).
	SleepInterval, WakeWindow, Linger sim.Time
}

// DefaultConfig returns the 802.15.4 default CSMA/CA parameters with
// hardware auto-acknowledgement enabled.
func DefaultConfig() Config {
	return Config{
		MinBE:           3,
		MaxBE:           5,
		MaxCSMABackoffs: 4,
		QueueCap:        8,
		CCAThresholdDBm: radio.CCAThresholdDBm,
		LinkAcks:        true,
		MaxFrameRetries: 3,
		// Turnaround + ack airtime (9-byte MPDU) + scheduling slack.
		AckWait: radio.TurnaroundTime + radio.FrameAirtime(ackFrameLen) + 200*1000,
	}
}

// ackFrameLen is the MPDU length of an auto-ack (header + FCS, no
// payload).
const ackFrameLen = 8

// Errors reported by the MAC.
var (
	ErrQueueFull     = errors.New("mac: transmit queue full")
	ErrChannelAccess = errors.New("mac: channel access failure")
	ErrRadioOff      = errors.New("mac: radio is off")
	ErrNoAck         = errors.New("mac: no acknowledgement after retries")
)

// DeliverFunc receives intact decoded frames from the air. f.Payload
// is a borrow of a pooled transmission buffer, valid only for the
// duration of the call: a handler that retains payload bytes past its
// return must copy them (the buffer is reused by later transmissions).
type DeliverFunc func(f Frame, info medium.RxInfo)

// SentFunc is called when a queued frame leaves the MAC: err is nil
// after successful transmission, ErrChannelAccess when CSMA gave up.
// f.Payload is a borrow of the MAC's queue-slot buffer, valid only for
// the duration of the call; a callback that retains the payload must
// copy it first.
type SentFunc func(f Frame, err error)

// TxObserverFunc receives per-destination unicast transmit outcomes:
// err is nil after an acknowledged delivery, ErrNoAck after the retry
// budget is exhausted, ErrChannelAccess when CSMA gave up. It is the
// raw input of data-driven link estimation — every unicast data or
// control frame reports its fate, so link quality can react within a
// few lost frames instead of waiting for beacon-period expiry.
type TxObserverFunc func(dst phys.NodeID, err error)

// Stats counts MAC-level outcomes.
type Stats struct {
	Sent           uint64
	SentData       uint64
	SentBeacon     uint64
	SentControl    uint64 // management traffic (what Figure 7 counts)
	SentMACAcks    uint64 // auto-acks (MAC-level, not command overhead)
	ChannelAccess  uint64 // frames dropped after MaxCSMABackoffs
	QueueDrops     uint64
	Received       uint64
	CRCFailures    uint64
	BackoffRetries uint64
	FrameRetries   uint64 // data retransmissions after missing acks
	NoAck          uint64 // frames abandoned after MaxFrameRetries
	AckedOK        uint64 // unicast frames confirmed by auto-ack
}

type outgoing struct {
	frame   Frame
	sent    SentFunc
	queued  sim.Time
	retries int
	firstTx sim.Time
	// raw is the slot's encode buffer: the frame is serialised once at
	// enqueue time and the wire image reused across CSMA retries and
	// retransmissions. frame.Payload aliases raw[headerLen:...], so the
	// bytes stay valid exactly as long as the slot is occupied.
	raw []byte
}

// ackJob carries one pending auto-ack through its turnaround and
// completion events; jobs are pooled on the MAC so a receive burst does
// not allocate per ack.
type ackJob struct {
	seq byte
	dst phys.NodeID
	ep  uint64
}

// ackPoolCap bounds the per-MAC ackJob pool; in practice at most a
// couple of acks are in flight (turnaround + airtime ≪ frame spacing).
const ackPoolCap = 8

// MAC is the per-node link layer. It implements medium.Receiver.
type MAC struct {
	eng     *sim.Engine
	med     *medium.Medium
	rad     *radio.Radio
	rng     *sim.Rand
	id      phys.NodeID
	pos     phys.Position
	cfg     Config
	deliver DeliverFunc
	// The transmit queue is a fixed ring of QueueCap slots: q[qHead] is
	// the in-service frame, qLen the occupancy. Slots keep their encode
	// buffers across reuse, so steady-state Send does not allocate.
	q       []outgoing
	qHead   int
	qLen    int
	sending bool
	seq     byte
	// awaitSeq/awaitDst/ackArmed track the pending auto-ack wait. The
	// timeout itself is a pooled (handle-free) event; because AckWait is
	// constant, timeouts fire in arm order, so a disarm simply counts one
	// stale firing to swallow (ackStale) instead of cancelling a handle.
	awaitSeq byte
	awaitDst phys.NodeID
	ackArmed bool
	ackStale int
	// CSMA state for the in-service frame. attempt/transmit completions
	// are pre-bound method values (one chain in flight at a time), so the
	// per-round state lives here instead of in per-event closures.
	be           int
	csmaRetries  int
	attemptEpoch uint64
	attemptCb    func()
	deferCb      func()
	txDoneCb     func()
	ackTimeoutCb func()
	// Auto-ack transmission path: pooled jobs, pre-bound callbacks, and
	// a reused encode buffer (the medium copies the bytes synchronously).
	ackPool    []*ackJob
	ackStartCb func(any)
	ackDoneCb  func(any)
	ackBuf     []byte
	// Pre-bound LPL duty-cycle callbacks (see lpl.go).
	lplSleepCb func()
	lplWakeCb  func()
	// LPL duty-cycle state.
	lplSleeping bool
	lingerUntil sim.Time
	// dupSeq suppresses redelivery of retransmitted frames (802.15.4
	// receivers track the last sequence number per source).
	dupSeq  map[phys.NodeID]byte
	dupSeqQ []phys.NodeID
	// epoch invalidates in-flight transmit and ack completions across
	// Reset: a callback scheduled before a crash must not touch the
	// radio of the rebooted (or still-dead) node.
	epoch uint64
	// rxFault, when set, injects bit errors into received frames (burst
	// corruption from internal/fault).
	rxFault func(from phys.NodeID) bool
	// tel, when set, receives MAC-layer telemetry events.
	tel *telemetry.Recorder
	// txObserver, when set, is told the outcome of every completed
	// unicast data/control frame (link estimation feedback).
	txObserver TxObserverFunc
	stats      Stats
}

// New creates a MAC for node id at pos and attaches it to med. The
// deliver callback receives every intact frame heard on the node's
// channel (destination filtering is left to the layer above).
func New(eng *sim.Engine, med *medium.Medium, rad *radio.Radio, id phys.NodeID, pos phys.Position, cfg Config, deliver DeliverFunc) (*MAC, error) {
	if deliver == nil {
		return nil, errors.New("mac: nil deliver callback")
	}
	if cfg.QueueCap <= 0 || cfg.MinBE < 0 || cfg.MaxBE < cfg.MinBE {
		return nil, fmt.Errorf("mac: invalid config %+v", cfg)
	}
	m := &MAC{
		eng:     eng,
		med:     med,
		rad:     rad,
		rng:     eng.Rand().Fork(fmt.Sprintf("mac-%d", id)),
		id:      id,
		pos:     pos,
		cfg:     cfg,
		deliver: deliver,
		q:       make([]outgoing, cfg.QueueCap),
		dupSeq:  make(map[phys.NodeID]byte),
	}
	// Bind the hot-path callbacks once; scheduling a method value at the
	// call site would allocate a fresh closure per event.
	m.attemptCb = m.attemptFire
	m.deferCb = m.deferAttempt
	m.txDoneCb = m.txDone
	m.ackTimeoutCb = m.onAckTimeout
	m.ackStartCb = m.ackStart
	m.ackDoneCb = m.ackDone
	m.lplSleepCb = m.lplMaybeSleep
	m.lplWakeCb = m.lplWake
	if err := med.Attach(m); err != nil {
		return nil, err
	}
	m.lplInit()
	return m, nil
}

// medium.Receiver implementation.

// NodeID returns the node's short address.
func (m *MAC) NodeID() phys.NodeID { return m.id }

// Position returns the node's location.
func (m *MAC) Position() phys.Position { return m.pos }

// SetPosition moves the node. Motes are fixed once deployed, but the
// management workstation's base station travels with the operator — so
// the medium's link-budget and reachability caches for this node are
// invalidated.
func (m *MAC) SetPosition(p phys.Position) {
	m.pos = p
	m.med.NodeMoved(m.id)
}

// RadioState returns the transceiver state.
func (m *MAC) RadioState() radio.State { return m.rad.State() }

// Channel returns the tuned channel.
func (m *MAC) Channel() int { return m.rad.Channel() }

// PowerLevel returns the programmed PA level.
func (m *MAC) PowerLevel() int { return m.rad.PowerLevel() }

// Radio exposes the node's radio so management commands can reconfigure
// power and channel.
func (m *MAC) Radio() *radio.Radio { return m.rad }

// QueueLen returns the current transmit queue occupancy (the "Queue"
// figure in ping output).
func (m *MAC) QueueLen() int { return m.qLen }

// Stats returns a snapshot of the MAC counters.
func (m *MAC) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (the medium has had this from the
// start; the shell's `stats reset` needs it here too).
func (m *MAC) ResetStats() { m.stats = Stats{} }

// SetTelemetry points the MAC at a telemetry recorder (nil detaches).
func (m *MAC) SetTelemetry(rec *telemetry.Recorder) { m.tel = rec }

// SetTxObserver installs the per-destination transmit-outcome callback
// (nil removes it). Beacons, broadcasts, and MAC acks are not reported:
// only unicast frames carry ack-based delivery evidence. ErrRadioOff is
// also withheld — a dark local radio says nothing about the link.
func (m *MAC) SetTxObserver(fn TxObserverFunc) { m.txObserver = fn }

// emitQueueDepth publishes the transmit-queue occupancy gauge.
func (m *MAC) emitQueueDepth() {
	if m.tel.Recording() {
		m.tel.Metrics().Gauge("mac.queue." + strconv.FormatUint(uint64(m.id), 10)).
			Set(float64(m.qLen))
	}
}

// SetRxFault installs a receive-path fault hook: frames for which fn
// returns true take bit errors before the CRC check, exactly as if the
// air had corrupted them. Pass nil to remove.
func (m *MAC) SetRxFault(fn func(from phys.NodeID) bool) { m.rxFault = fn }

// Reset force-clears all link-layer state — transmit queue, pending
// ack wait, duplicate table, LPL phase — without running completion
// callbacks, the way a power failure would. In-flight transmit
// completions scheduled before the reset are invalidated and will not
// touch the radio.
func (m *MAC) Reset() {
	m.epoch++
	for i := range m.q {
		slot := &m.q[i]
		slot.frame = Frame{}
		slot.sent = nil
		slot.queued, slot.retries, slot.firstTx = 0, 0, 0
		// slot.raw keeps its backing array for reuse after reboot.
	}
	m.qHead, m.qLen = 0, 0
	m.sending = false
	m.disarmAckWait()
	m.dupSeq = make(map[phys.NodeID]byte)
	m.dupSeqQ = nil
	m.lplSleeping = false
	m.lingerUntil = 0
}

// Boot re-primes the MAC after a reboot; today that means restarting
// the LPL duty cycle (a no-op when LPL is off).
func (m *MAC) Boot() { m.lplInit() }

// Send queues a frame for CSMA/CA transmission. The source address and
// sequence number are filled in by the MAC; the payload is copied into
// the queue slot's encode buffer, so the caller's slice may be reused
// the moment Send returns. sent may be nil.
func (m *MAC) Send(f Frame, sent SentFunc) error {
	if m.rad.State() == radio.Off {
		if !m.cfg.LPL {
			return ErrRadioOff
		}
		m.lplWakeForSend()
	}
	if m.qLen >= m.cfg.QueueCap {
		m.stats.QueueDrops++
		if m.tel.Recording() {
			m.tel.Emit(m.id, telemetry.LayerMAC, "queue-drop",
				telemetry.Node("dst", f.Dst),
				telemetry.Int("depth", m.qLen))
		}
		return ErrQueueFull
	}
	f.Src = m.id
	m.seq++
	f.Seq = m.seq
	slot := &m.q[(m.qHead+m.qLen)%len(m.q)]
	raw, err := f.AppendEncode(slot.raw[:0])
	if err != nil {
		return err
	}
	slot.raw = raw
	// Re-point the payload at the slot's wire image: the queue must not
	// alias caller memory, and the encode done here is the one reused for
	// every (re)transmission of this frame.
	f.Payload = raw[headerLen : len(raw)-fcsLen]
	slot.frame = f
	slot.sent = sent
	slot.queued = m.eng.Now()
	slot.retries = 0
	slot.firstTx = 0
	m.qLen++
	if m.tel.Recording() {
		m.tel.Emit(m.id, telemetry.LayerMAC, "enqueue",
			telemetry.Node("dst", f.Dst),
			telemetry.Int("type", int(f.Type)),
			telemetry.Int("depth", m.qLen))
		m.emitQueueDepth()
	}
	m.kick()
	return nil
}

// kick starts servicing the queue head if the MAC is idle.
func (m *MAC) kick() {
	if m.sending || m.qLen == 0 {
		return
	}
	m.sending = true
	m.attempt(m.cfg.MinBE, 0)
}

// attempt schedules one backoff-then-CCA round for the queue head. At
// most one attempt chain is in flight per MAC (the chain either
// finishes the head or schedules its successor), so the round state
// lives in be/csmaRetries and the callback is the pre-bound attemptCb.
func (m *MAC) attempt(be, retries int) {
	m.be, m.csmaRetries = be, retries
	m.attemptEpoch = m.epoch
	backoff := sim.Time(m.rng.Intn(1<<be)) * UnitBackoff
	m.eng.After(backoff, m.attemptCb)
}

// deferAttempt re-runs the current round after a one-unit defer (our
// own auto-ack was on the air at CCA time).
func (m *MAC) deferAttempt() { m.attempt(m.be, m.csmaRetries) }

// attemptFire performs the CCA round scheduled by attempt.
func (m *MAC) attemptFire() {
	if m.epoch != m.attemptEpoch {
		return // link layer was reset meanwhile
	}
	if m.qLen == 0 { // queue flushed meanwhile
		m.sending = false
		return
	}
	if m.rad.State() == radio.Off {
		if !m.cfg.LPL {
			m.finish(ErrRadioOff)
			return
		}
		m.lplWakeForSend()
	}
	if m.rad.State() == radio.TX {
		// Our own auto-ack is on the air; defer one backoff unit.
		m.eng.After(UnitBackoff, m.deferCb)
		return
	}
	if m.med.ChannelBusy(m, m.cfg.CCAThresholdDBm) {
		m.stats.BackoffRetries++
		if m.tel.Recording() {
			m.tel.Emit(m.id, telemetry.LayerMAC, "cca-busy",
				telemetry.Int("round", m.csmaRetries+1))
		}
		if m.csmaRetries+1 > m.cfg.MaxCSMABackoffs {
			m.stats.ChannelAccess++
			m.finish(ErrChannelAccess)
			return
		}
		nextBE := m.be + 1
		if nextBE > m.cfg.MaxBE {
			nextBE = m.cfg.MaxBE
		}
		m.attempt(nextBE, m.csmaRetries+1)
		return
	}
	m.transmit()
}

// transmit puts the queue head's pre-encoded wire image on the air and
// schedules completion. The medium copies the bytes synchronously, so
// the slot buffer stays ours.
func (m *MAC) transmit() {
	head := &m.q[m.qHead]
	m.rad.SetState(radio.TX)
	airtime, err := m.med.Transmit(m, head.raw)
	if err != nil {
		m.rad.SetState(radio.RX)
		m.finish(err)
		return
	}
	if head.firstTx == 0 {
		head.firstTx = m.eng.Now()
	}
	m.eng.After(airtime+radio.TurnaroundTime, m.txDoneCb)
}

// txDone is the end-of-airtime completion for the queue head.
func (m *MAC) txDone() {
	if m.epoch != m.attemptEpoch {
		return // link layer was reset mid-flight
	}
	if m.qLen == 0 { // defensive: reset handling should have tripped the epoch
		m.sending = false
		return
	}
	head := &m.q[m.qHead]
	m.rad.SetState(radio.RX)
	m.stats.Sent++
	switch head.frame.Type {
	case TypeData:
		m.stats.SentData++
	case TypeBeacon:
		m.stats.SentBeacon++
	case TypeControl:
		m.stats.SentControl++
	case TypeAck:
		m.stats.SentMACAcks++
	}
	if m.tel.Recording() {
		m.tel.Emit(m.id, telemetry.LayerMAC, "sent",
			telemetry.Node("dst", head.frame.Dst),
			telemetry.Int("type", int(head.frame.Type)),
			telemetry.Int("seq", int(head.frame.Seq)),
			telemetry.Int("tries", head.retries+1))
	}
	if m.cfg.LinkAcks && head.frame.Dst != phys.Broadcast {
		m.armAckWait(head.frame)
		return
	}
	// LPL broadcast: repeat the frame until every neighbor's wake
	// window has been covered.
	if m.cfg.LPL && head.frame.Dst == phys.Broadcast {
		if !m.lplBroadcastDone(head.firstTx) {
			m.stats.FrameRetries++
			m.attempt(0, 0)
			return
		}
	}
	m.finish(nil)
}

// armAckWait starts the auto-ack timeout for the queue head. The
// timeout is a pooled handle-free event; disarmAckWait neutralises it
// by counting a stale firing rather than cancelling.
func (m *MAC) armAckWait(f Frame) {
	m.awaitSeq = f.Seq
	m.awaitDst = f.Dst
	m.ackArmed = true
	m.eng.After(m.cfg.AckWait, m.ackTimeoutCb)
}

// disarmAckWait neutralises the pending ack timeout, if any. AckWait is
// a per-MAC constant, so outstanding timeout events fire in arm order:
// counting one stale firing per disarm swallows exactly the disarmed
// timers and no others.
func (m *MAC) disarmAckWait() {
	if m.ackArmed {
		m.ackArmed = false
		m.ackStale++
	}
}

// onAckTimeout retries the queue head or abandons it.
func (m *MAC) onAckTimeout() {
	if m.ackStale > 0 {
		m.ackStale-- // a disarmed (acked or reset) wait; ignore
		return
	}
	if !m.ackArmed {
		return
	}
	m.ackArmed = false
	if m.qLen == 0 {
		m.sending = false
		return
	}
	head := &m.q[m.qHead]
	lplRetry := m.cfg.LPL && m.lplShouldRetry(head)
	if head.retries < m.cfg.MaxFrameRetries || lplRetry {
		head.retries++
		m.stats.FrameRetries++
		if m.tel.Recording() {
			m.tel.Emit(m.id, telemetry.LayerMAC, "ack-timeout",
				telemetry.Node("dst", head.frame.Dst),
				telemetry.Int("seq", int(head.frame.Seq)),
				telemetry.Int("retry", head.retries))
		}
		if m.cfg.LPL {
			// LPL repeats back-to-back: the peer is asleep, not
			// contended — the next copy must land inside its upcoming
			// wake window.
			m.attempt(0, 0)
			return
		}
		// Widen the backoff window on every retry: a retry drawn from
		// the same small window as the original lands back inside a
		// periodic interferer's burst (two report chains forwarding in
		// lockstep); spreading retries over progressively longer
		// windows breaks the phase lock.
		be := m.cfg.MinBE + head.retries
		if be > m.cfg.MaxBE {
			be = m.cfg.MaxBE
		}
		m.attempt(be, 0)
		return
	}
	m.stats.NoAck++
	if m.tel.Recording() {
		m.tel.Emit(m.id, telemetry.LayerMAC, "no-ack",
			telemetry.Node("dst", head.frame.Dst),
			telemetry.Int("seq", int(head.frame.Seq)))
	}
	m.finish(ErrNoAck)
}

// autoAck transmits the hardware acknowledgement for a received unicast
// frame, one turnaround after reception, bypassing the CSMA queue as
// the CC2420's auto-ack does. The pending ack rides a pooled ackJob
// through pre-bound start/done callbacks, so the receive path stays
// allocation-free.
func (m *MAC) autoAck(f Frame) {
	var j *ackJob
	if n := len(m.ackPool); n > 0 {
		j = m.ackPool[n-1]
		m.ackPool[n-1] = nil
		m.ackPool = m.ackPool[:n-1]
	} else {
		j = &ackJob{}
	}
	j.seq, j.dst, j.ep = f.Seq, f.Src, m.epoch
	m.eng.AfterArg(radio.TurnaroundTime, m.ackStartCb, j)
}

func (m *MAC) releaseAck(j *ackJob) {
	if len(m.ackPool) < ackPoolCap {
		m.ackPool = append(m.ackPool, j)
	}
}

// ackStart fires one turnaround after reception and puts the ack on the
// air.
func (m *MAC) ackStart(a any) {
	j := a.(*ackJob)
	if m.epoch != j.ep {
		m.releaseAck(j)
		return // link layer was reset meanwhile
	}
	if m.rad.State() != radio.RX {
		m.releaseAck(j)
		return // busy transmitting; the peer will retry
	}
	ack := Frame{Type: TypeAck, Seq: j.seq, Dst: j.dst, Src: m.id}
	raw, err := ack.AppendEncode(m.ackBuf[:0])
	if err != nil {
		m.releaseAck(j)
		return
	}
	m.ackBuf = raw // the medium copies synchronously; reuse next time
	m.rad.SetState(radio.TX)
	airtime, err := m.med.Transmit(m, raw)
	if err != nil {
		m.rad.SetState(radio.RX)
		m.releaseAck(j)
		return
	}
	m.eng.AfterArg(airtime+radio.TurnaroundTime, m.ackDoneCb, j)
}

// ackDone returns the radio to RX once the ack's airtime ends.
func (m *MAC) ackDone(a any) {
	j := a.(*ackJob)
	ep := j.ep
	m.releaseAck(j)
	if m.epoch != ep {
		return
	}
	m.rad.SetState(radio.RX)
	m.stats.Sent++
	m.stats.SentMACAcks++
}

// finish pops the queue head, notifies, and services the next frame.
// The popped slot's encode buffer stays with the ring; out.frame's
// payload aliases it and is valid only for the duration of the
// callbacks below (see the SentFunc borrow contract).
func (m *MAC) finish(err error) {
	if m.qLen == 0 {
		m.sending = false
		return
	}
	slot := &m.q[m.qHead]
	out := *slot
	slot.frame = Frame{}
	slot.sent = nil
	slot.queued, slot.retries, slot.firstTx = 0, 0, 0
	m.qHead = (m.qHead + 1) % len(m.q)
	m.qLen--
	m.sending = false
	m.emitQueueDepth()
	if m.tel.Recording() && err != nil {
		m.tel.Emit(m.id, telemetry.LayerMAC, "tx-fail",
			telemetry.Node("dst", out.frame.Dst),
			telemetry.String("err", err.Error()))
	}
	// Link estimation feedback runs before the sender's completion
	// callback: routing's repair logic reads the neighbor table from its
	// send callback and must see this outcome already folded in.
	if m.txObserver != nil && out.frame.Dst != phys.Broadcast &&
		(out.frame.Type == TypeData || out.frame.Type == TypeControl) &&
		!errors.Is(err, ErrRadioOff) {
		m.txObserver(out.frame.Dst, err)
	}
	if out.sent != nil {
		out.sent(out.frame, err)
	}
	m.kick()
}

// OnFrame is the medium's delivery upcall.
func (m *MAC) OnFrame(raw []byte, info medium.RxInfo) {
	if !info.Corrupted && m.rxFault != nil && m.rxFault(info.From) {
		info.Corrupted = true // injected burst corruption
	}
	if info.Corrupted {
		// Bit errors on the air manifest as an FCS failure: flip a bit
		// so the CRC check genuinely fails rather than trusting a flag.
		raw = append([]byte(nil), raw...)
		if len(raw) > 0 {
			raw[len(raw)/2] ^= 0x40
		}
	}
	f, err := Decode(raw)
	if err != nil {
		m.stats.CRCFailures++
		if m.tel.Recording() {
			m.tel.Emit(m.id, telemetry.LayerMAC, "crc-fail",
				telemetry.Node("from", info.From))
		}
		return
	}
	if f.Type == TypeAck {
		if f.Dst == m.id && m.ackArmed && f.Seq == m.awaitSeq && f.Src == m.awaitDst {
			m.disarmAckWait()
			m.stats.AckedOK++
			if m.tel.Recording() {
				m.tel.Emit(m.id, telemetry.LayerMAC, "acked",
					telemetry.Node("from", f.Src),
					telemetry.Int("seq", int(f.Seq)))
			}
			m.finish(nil)
		}
		return // MAC acks never reach the stack
	}
	m.lplTouch()
	// Re-ack but do not redeliver a retransmission we already took:
	// the sender missed our ack, not us missing the frame.
	if last, seen := m.dupSeq[f.Src]; seen && last == f.Seq {
		if m.cfg.LinkAcks && f.Dst == m.id {
			m.autoAck(f)
		}
		return
	}
	m.rememberSeq(f.Src, f.Seq)
	m.stats.Received++
	if m.cfg.LinkAcks && f.Dst == m.id {
		m.autoAck(f)
	}
	m.deliver(f, info)
}

// rememberSeq records the latest sequence number heard from a source,
// bounded like a mote's duplicate table.
func (m *MAC) rememberSeq(src phys.NodeID, seq byte) {
	const dupTableSize = 32
	if _, known := m.dupSeq[src]; !known {
		if len(m.dupSeqQ) >= dupTableSize {
			old := m.dupSeqQ[0]
			m.dupSeqQ = m.dupSeqQ[1:]
			delete(m.dupSeq, old)
		}
		m.dupSeqQ = append(m.dupSeqQ, src)
	}
	m.dupSeq[src] = seq
}
