package mac

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"liteview/internal/phys"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Type: TypeControl, Seq: 7, Dst: 0x1234, Src: 0x5678, Payload: []byte("hello")}
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.Seq != f.Seq || got.Dst != f.Dst || got.Src != f.Src {
		t.Fatalf("header mismatch: %+v vs %+v", got, f)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(ty byte, seq byte, dst, src uint16, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		f := Frame{Type: FrameType(ty % 3), Seq: seq, Dst: phys.NodeID(dst), Src: phys.NodeID(src), Payload: payload}
		raw, err := f.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil {
			return false
		}
		return got.Type == f.Type && got.Seq == f.Seq && got.Dst == f.Dst &&
			got.Src == f.Src && bytes.Equal(got.Payload, f.Payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	f := Frame{Payload: make([]byte, MaxPayload+1)}
	if _, err := f.Encode(); !errors.Is(err, ErrFrameTooLong) {
		t.Fatalf("err = %v, want ErrFrameTooLong", err)
	}
	f.Payload = make([]byte, MaxPayload)
	if _, err := f.Encode(); err != nil {
		t.Fatalf("max payload rejected: %v", err)
	}
}

func TestDecodeRejectsShortAndLong(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrFrameTooShort) {
		t.Fatalf("err = %v, want ErrFrameTooShort", err)
	}
	if _, err := Decode(make([]byte, MaxFrameLen+1)); !errors.Is(err, ErrFrameTooLong) {
		t.Fatalf("err = %v, want ErrFrameTooLong", err)
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	f := Frame{Type: TypeData, Dst: 1, Src: 2, Payload: []byte("payload")}
	raw, _ := f.Encode()
	prop := func(pos uint16, bit uint8) bool {
		mut := append([]byte(nil), raw...)
		mut[int(pos)%len(mut)] ^= 1 << (bit % 8)
		_, err := Decode(mut)
		return errors.Is(err, ErrBadCRC)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameTypeString(t *testing.T) {
	if TypeData.String() != "data" || TypeBeacon.String() != "beacon" || TypeControl.String() != "control" {
		t.Fatal("frame type strings wrong")
	}
	if FrameType(99).String() == "" {
		t.Fatal("unknown type should format")
	}
}

func TestMaxPayloadFitsMPDU(t *testing.T) {
	f := Frame{Payload: make([]byte, MaxPayload)}
	raw, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != MaxFrameLen {
		t.Fatalf("encoded max frame is %d bytes, want %d", len(raw), MaxFrameLen)
	}
}
