package mac

// CRC-16/CCITT (the 802.15.4 frame check sequence polynomial, x^16 +
// x^12 + x^5 + 1). The table is built once at init; the MAC appends the
// FCS on encode and verifies it on decode, exactly where the paper's
// stack puts its "CRC Checker" stage (Figure 2).

const crcPoly = 0x1021

var crcTable [256]uint16

func init() {
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for bit := 0; bit < 8; bit++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ crcPoly
			} else {
				crc <<= 1
			}
		}
		crcTable[i] = crc
	}
}

// Checksum returns the CRC-16/CCITT of data (init 0x0000).
func Checksum(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}
