// Package fleet folds a cross-layer telemetry event stream into a live
// operator's view of the deployment: which nodes are up, crashed, or
// breaker-isolated, what the neighbor tables believe about every link
// (delivery, ETX, PRR, suspicion), which faults are active, and what
// the recent workstation commands concluded. It is the aggregation
// layer behind `lvtopo -live`: the same State works against a recorded
// JSONL trace, an in-process subscription, or frames streamed off a
// daemon — anything that yields telemetry events in sequence order.
//
// State is a pure consumer: it never touches a simulation, so feeding
// it is exactly as perturbation-free as the subscription delivering the
// events (DESIGN §12).
package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// maxVerdicts bounds the recent-command history Render shows.
const maxVerdicts = 8

// NodeState is one node's aggregated health.
type NodeState struct {
	ID phys.NodeID
	// Crashed is true between a node-crash fault-active and its clear.
	Crashed bool
	// BreakerOpen is true while the workstation's per-node circuit
	// breaker holds the node in isolation.
	BreakerOpen bool
	// Faults holds the ids of active non-crash faults targeting the node.
	Faults map[int]string
	// Events counts every event owned by the node.
	Events uint64
	// LastSeen is the virtual time of the node's newest event.
	LastSeen sim.Time
}

// LinkState is one directed link as its transmitter's neighbor table
// estimates it.
type LinkState struct {
	From, To phys.NodeID
	Delivery float64
	ETX      float64
	PRR      float64
	Suspect  bool
	Updated  sim.Time
}

// Verdict is one completed workstation command span.
type Verdict struct {
	Span    uint64
	Node    phys.NodeID
	Cmd     string
	Dst     string
	Verdict string
	At      sim.Time
	Dur     sim.Time
}

type linkKey struct{ from, to phys.NodeID }

// State is the fold over the event stream. Not safe for concurrent use;
// one consumer goroutine owns it.
type State struct {
	now      sim.Time
	events   uint64
	nodes    map[phys.NodeID]*NodeState
	links    map[linkKey]*LinkState
	verdicts []Verdict
	// jams counts active network-wide faults (node 0): jam, partition.
	jams map[int]string
}

// NewState builds an empty view.
func NewState() *State {
	return &State{
		nodes: make(map[phys.NodeID]*NodeState),
		links: make(map[linkKey]*LinkState),
		jams:  make(map[int]string),
	}
}

// Events reports how many events have been folded in.
func (s *State) Events() uint64 { return s.events }

// Now reports the newest virtual time seen.
func (s *State) Now() sim.Time { return s.now }

func (s *State) node(id phys.NodeID) *NodeState {
	n, ok := s.nodes[id]
	if !ok {
		n = &NodeState{ID: id, Faults: make(map[int]string)}
		s.nodes[id] = n
	}
	return n
}

// Apply folds one event into the view.
func (s *State) Apply(e telemetry.Event) {
	s.events++
	if at := e.At + e.Dur; at > s.now {
		s.now = at
	}
	if e.NodeID != 0 {
		n := s.node(e.NodeID)
		n.Events++
		if e.At > n.LastSeen {
			n.LastSeen = e.At
		}
	}
	switch e.Layer {
	case telemetry.LayerFault:
		s.applyFault(e)
	case telemetry.LayerController:
		switch e.Kind {
		case "breaker-open":
			s.node(e.NodeID).BreakerOpen = true
		case "breaker-close":
			s.node(e.NodeID).BreakerOpen = false
		}
	case telemetry.LayerNeighbor:
		if e.Kind == "link-state" {
			s.applyLink(e)
		}
	case telemetry.LayerSpan:
		dst, _ := e.Attr("dst")
		verdict, _ := e.Attr("verdict")
		s.verdicts = append(s.verdicts, Verdict{
			Span: e.Span, Node: e.NodeID, Cmd: e.Kind,
			Dst: dst, Verdict: verdict, At: e.At, Dur: e.Dur,
		})
		if len(s.verdicts) > maxVerdicts {
			s.verdicts = s.verdicts[len(s.verdicts)-maxVerdicts:]
		}
	}
}

func (s *State) applyFault(e telemetry.Event) {
	kind, _ := e.Attr("fault")
	id := attrInt(e, "id")
	switch e.Kind {
	case "fault-active":
		if e.NodeID == 0 {
			s.jams[id] = kind
			return
		}
		n := s.node(e.NodeID)
		if kind == "node-crash" {
			n.Crashed = true
		}
		n.Faults[id] = kind
	case "fault-clear":
		if e.NodeID == 0 {
			delete(s.jams, id)
			return
		}
		n := s.node(e.NodeID)
		if kind == "node-crash" {
			n.Crashed = false
		}
		delete(n.Faults, id)
	}
}

func (s *State) applyLink(e telemetry.Event) {
	to := phys.NodeID(attrInt(e, "to"))
	if to == 0 {
		return
	}
	k := linkKey{from: e.NodeID, to: to}
	l, ok := s.links[k]
	if !ok {
		l = &LinkState{From: e.NodeID, To: to}
		s.links[k] = l
	}
	l.Delivery = attrFloat(e, "delivery")
	l.ETX = attrFloat(e, "etx")
	l.PRR = attrFloat(e, "prr")
	suspect, _ := e.Attr("suspect")
	l.Suspect = suspect == "true"
	l.Updated = e.At
}

func attrInt(e telemetry.Event, key string) int {
	v, ok := e.Attr(key)
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0
	}
	return n
}

func attrFloat(e telemetry.Event, key string) float64 {
	v, ok := e.Attr(key)
	if !ok {
		return 0
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0
	}
	return f
}

// Nodes returns the tracked nodes sorted by id.
func (s *State) Nodes() []*NodeState {
	out := make([]*NodeState, 0, len(s.nodes))
	for _, n := range s.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Links returns the tracked links sorted by (from, to).
func (s *State) Links() []*LinkState {
	out := make([]*LinkState, 0, len(s.links))
	for _, l := range s.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Verdicts returns the most recent command verdicts, oldest first.
func (s *State) Verdicts() []Verdict {
	return append([]Verdict(nil), s.verdicts...)
}

// Render formats the whole view as one fixed-order text frame. The
// output is deterministic in the event stream (maps are sorted, no wall
// clock), so a replayed trace always renders byte-identically.
func (s *State) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet @ %v  (%d events)\n", s.now, s.events)
	if len(s.jams) > 0 {
		kinds := make([]string, 0, len(s.jams))
		for id, k := range s.jams {
			kinds = append(kinds, fmt.Sprintf("%s#%d", k, id))
		}
		sort.Strings(kinds)
		fmt.Fprintf(&b, "network faults: %s\n", strings.Join(kinds, " "))
	}
	b.WriteString("nodes:\n")
	for _, n := range s.Nodes() {
		state := "up"
		if n.Crashed {
			state = "CRASHED"
		}
		fmt.Fprintf(&b, "  %-6d %-8s", uint64(n.ID), state)
		if n.BreakerOpen {
			b.WriteString(" breaker=open")
		}
		if len(n.Faults) > 0 {
			kinds := make([]string, 0, len(n.Faults))
			for id, k := range n.Faults {
				if k == "node-crash" {
					continue // already shown as the state
				}
				kinds = append(kinds, fmt.Sprintf("%s#%d", k, id))
			}
			if len(kinds) > 0 {
				sort.Strings(kinds)
				fmt.Fprintf(&b, " faults=%s", strings.Join(kinds, ","))
			}
		}
		fmt.Fprintf(&b, " events=%d last=%v\n", n.Events, n.LastSeen)
	}
	if links := s.Links(); len(links) > 0 {
		b.WriteString("links (tx neighbor-table estimates):\n")
		for _, l := range links {
			flag := ""
			if l.Suspect {
				flag = " SUSPECT"
			}
			fmt.Fprintf(&b, "  %d->%-6d delivery=%.2f etx=%.2f prr=%.2f%s\n",
				uint64(l.From), uint64(l.To), l.Delivery, l.ETX, l.PRR, flag)
		}
	}
	if len(s.verdicts) > 0 {
		b.WriteString("recent commands:\n")
		for _, v := range s.verdicts {
			line := fmt.Sprintf("  span %d %s node=%d", v.Span, v.Cmd, uint64(v.Node))
			if v.Dst != "" {
				line += " dst=" + v.Dst
			}
			if v.Verdict != "" {
				line += " verdict=" + v.Verdict
			}
			fmt.Fprintf(&b, "%s at=%v dur=%v\n", line, v.At, v.Dur)
		}
	}
	return b.String()
}
