package fleet

import (
	"strings"
	"testing"
	"time"

	"liteview/internal/phys"
	"liteview/internal/telemetry"
)

func phyID(n uint64) phys.NodeID { return phys.NodeID(n) }

func ev(seq uint64, at time.Duration, node uint64, layer telemetry.Layer, kind string, attrs ...telemetry.Attr) telemetry.Event {
	return telemetry.Event{Seq: seq, At: at, NodeID: phyID(node), Layer: layer, Kind: kind, Attrs: attrs}
}

func TestStateFoldsFaultsBreakersLinksAndSpans(t *testing.T) {
	s := NewState()
	feed := []telemetry.Event{
		ev(1, 0, 2, telemetry.LayerMAC, "tx"),
		ev(2, 100*time.Millisecond, 3, telemetry.LayerFault, "fault-active",
			telemetry.String("fault", "corrupt-burst"), telemetry.Int("id", 7)),
		ev(3, 200*time.Millisecond, 4, telemetry.LayerFault, "fault-active",
			telemetry.String("fault", "node-crash"), telemetry.Int("id", 8)),
		ev(4, 250*time.Millisecond, 0, telemetry.LayerFault, "fault-active",
			telemetry.String("fault", "jam"), telemetry.Int("id", 9)),
		ev(5, 300*time.Millisecond, 2, telemetry.LayerController, "breaker-open"),
		ev(6, 400*time.Millisecond, 2, telemetry.LayerNeighbor, "link-state",
			telemetry.Int("to", 3), telemetry.Float("delivery", 0.5),
			telemetry.Float("etx", 2.0), telemetry.Float("prr", 0.45),
			telemetry.String("suspect", "true")),
		{Seq: 7, At: 0, Dur: 500 * time.Millisecond, NodeID: phyID(1),
			Layer: telemetry.LayerSpan, Kind: "ping", Span: 11,
			Attrs: []telemetry.Attr{telemetry.String("dst", "192.168.0.3"),
				telemetry.String("verdict", "ok")}},
	}
	for _, e := range feed {
		s.Apply(e)
	}

	if s.Events() != 7 {
		t.Fatalf("Events = %d, want 7", s.Events())
	}
	if s.Now() != 500*time.Millisecond {
		t.Fatalf("Now = %v, want the span end at 500ms", s.Now())
	}

	nodes := s.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("tracked %d nodes, want 4 (network-wide node 0 excluded)", len(nodes))
	}
	byID := make(map[uint64]*NodeState)
	for _, n := range nodes {
		byID[uint64(n.ID)] = n
	}
	if n := byID[2]; !n.BreakerOpen || n.Crashed || n.Events != 3 {
		t.Fatalf("node 2 state wrong: %+v", n)
	}
	if n := byID[3]; n.Faults[7] != "corrupt-burst" {
		t.Fatalf("node 3 missing the corrupt-burst fault: %+v", n)
	}
	if n := byID[4]; !n.Crashed {
		t.Fatalf("node 4 not crashed: %+v", n)
	}

	links := s.Links()
	if len(links) != 1 {
		t.Fatalf("tracked %d links, want 1", len(links))
	}
	l := links[0]
	if uint64(l.From) != 2 || uint64(l.To) != 3 || l.Delivery != 0.5 ||
		l.ETX != 2.0 || l.PRR != 0.45 || !l.Suspect {
		t.Fatalf("link state wrong: %+v", l)
	}

	vs := s.Verdicts()
	if len(vs) != 1 || vs[0].Cmd != "ping" || vs[0].Dst != "192.168.0.3" ||
		vs[0].Verdict != "ok" || vs[0].Span != 11 {
		t.Fatalf("verdicts wrong: %+v", vs)
	}

	// Clears undo what actives did.
	s.Apply(ev(8, 600*time.Millisecond, 4, telemetry.LayerFault, "fault-clear",
		telemetry.String("fault", "node-crash"), telemetry.Int("id", 8)))
	s.Apply(ev(9, 600*time.Millisecond, 0, telemetry.LayerFault, "fault-clear",
		telemetry.String("fault", "jam"), telemetry.Int("id", 9)))
	s.Apply(ev(10, 600*time.Millisecond, 2, telemetry.LayerController, "breaker-close"))
	if byID[4].Crashed {
		t.Fatal("fault-clear did not revive node 4")
	}
	if byID[2].BreakerOpen {
		t.Fatal("breaker-close did not reset node 2")
	}
	if strings.Contains(s.Render(), "network faults") {
		t.Fatal("cleared network fault still rendered")
	}
}

func TestVerdictHistoryIsBounded(t *testing.T) {
	s := NewState()
	for i := 1; i <= maxVerdicts+5; i++ {
		s.Apply(telemetry.Event{Seq: uint64(i), NodeID: phyID(1),
			Layer: telemetry.LayerSpan, Kind: "ping", Span: uint64(i)})
	}
	vs := s.Verdicts()
	if len(vs) != maxVerdicts {
		t.Fatalf("kept %d verdicts, want %d", len(vs), maxVerdicts)
	}
	if vs[len(vs)-1].Span != uint64(maxVerdicts+5) {
		t.Fatalf("newest verdict span = %d, want %d", vs[len(vs)-1].Span, maxVerdicts+5)
	}
}

// TestRenderIsDeterministic: folding the same stream twice renders the
// same bytes, and the frame shows each aggregate in its fixed section.
func TestRenderIsDeterministic(t *testing.T) {
	build := func() *State {
		s := NewState()
		s.Apply(ev(1, 0, 3, telemetry.LayerFault, "fault-active",
			telemetry.String("fault", "node-crash"), telemetry.Int("id", 1)))
		s.Apply(ev(2, 50*time.Millisecond, 2, telemetry.LayerController, "breaker-open"))
		s.Apply(ev(3, 80*time.Millisecond, 0, telemetry.LayerFault, "fault-active",
			telemetry.String("fault", "partition"), telemetry.Int("id", 2)))
		s.Apply(ev(4, 100*time.Millisecond, 1, telemetry.LayerNeighbor, "link-state",
			telemetry.Int("to", 2), telemetry.Float("delivery", 0.9),
			telemetry.Float("etx", 1.1), telemetry.Float("prr", 0.88)))
		s.Apply(telemetry.Event{Seq: 5, At: 0, Dur: 120 * time.Millisecond,
			NodeID: phyID(1), Layer: telemetry.LayerSpan, Kind: "traceroute", Span: 4,
			Attrs: []telemetry.Attr{telemetry.String("dst", "192.168.0.3"),
				telemetry.String("verdict", "incomplete")}})
		return s
	}
	a, b := build().Render(), build().Render()
	if a != b {
		t.Fatalf("two folds rendered differently:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	for _, want := range []string{
		"fleet @ 120ms  (5 events)",
		"network faults: partition#2",
		"CRASHED",
		"breaker=open",
		"1->2      delivery=0.90 etx=1.10 prr=0.88",
		"span 4 traceroute node=1 dst=192.168.0.3 verdict=incomplete",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("frame missing %q:\n%s", want, a)
		}
	}
}
