// Package fault is the deterministic fault injector: it schedules node
// crashes, link blackouts, link degradation, burst corruption, channel
// jamming, and network partitions on the simulation's virtual clock.
//
// Faults are scripted as (at, duration, target) records. All randomness
// (burst corruption draws) comes from the injector's own seed-derived
// stream, so the same topology, seed, and fault schedule replay the
// same fault trace byte for byte — which is what lets the chaos suite
// assert exact reproducibility and lets a user replay the exact failure
// a diagnosis report described.
//
// The injector hooks three layers: the medium (per-delivery drop /
// extra loss / forced corruption), each node's MAC receive path (burst
// corruption), and the LiteOS node lifecycle (Crash/Reboot).
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"liteview/internal/liteos"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// Kind enumerates the fault classes.
type Kind int

const (
	// NodeCrash power-fails Node at At; a non-zero Duration reboots it
	// afterwards (kernel state is lost either way).
	NodeCrash Kind = iota + 1
	// LinkBlackout drops every frame between A and B (both directions).
	LinkBlackout
	// LinkDegrade adds ExtraLossDB of path loss between A and B.
	LinkDegrade
	// CorruptBurst corrupts frames received by Node with probability
	// Prob each — the bursty-loss regime of real WSN links.
	CorruptBurst
	// Jam corrupts every frame on Channel (0 = all channels) network
	// wide, modelling a wideband interferer.
	Jam
	// Partition drops every frame crossing the boundary between Group
	// and the rest of the network.
	Partition
)

// String names the fault class.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case LinkBlackout:
		return "link-blackout"
	case LinkDegrade:
		return "link-degrade"
	case CorruptBurst:
		return "corrupt-burst"
	case Jam:
		return "jam"
	case Partition:
		return "partition"
	default:
		return fmt.Sprintf("fault.Kind(%d)", int(k))
	}
}

// Defaults for optional fault parameters.
const (
	// DefaultExtraLossDB is the degradation applied when LinkDegrade
	// does not specify one: enough to push a healthy link into the
	// transitional region.
	DefaultExtraLossDB = 20.0
	// DefaultCorruptProb is the per-frame corruption probability when
	// CorruptBurst does not specify one.
	DefaultCorruptProb = 0.8
)

// Fault is one scripted fault: what happens, to whom, and when.
type Fault struct {
	// At is the absolute virtual time the fault begins. It must not be
	// in the past when scheduled.
	At sim.Time
	// Duration is how long the fault lasts; zero means permanent. For
	// NodeCrash a non-zero duration ends with a reboot.
	Duration sim.Time
	// Kind selects the fault class.
	Kind Kind
	// Node is the target for NodeCrash and CorruptBurst.
	Node phys.NodeID
	// A, B name the link for LinkBlackout and LinkDegrade. Both
	// directions are affected.
	A, B phys.NodeID
	// ExtraLossDB is the added path loss for LinkDegrade
	// (0 selects DefaultExtraLossDB).
	ExtraLossDB float64
	// Prob is the per-frame corruption probability for CorruptBurst
	// (0 selects DefaultCorruptProb).
	Prob float64
	// Channel restricts Jam to one 802.15.4 channel; 0 jams them all.
	Channel int
	// Group is the node set cut off from everyone else for Partition.
	Group []phys.NodeID
}

// target renders the fault's subject for listings.
func (f *Fault) target() string {
	switch f.Kind {
	case NodeCrash, CorruptBurst:
		return fmt.Sprintf("node %d", f.Node)
	case LinkBlackout, LinkDegrade:
		return fmt.Sprintf("link %d-%d", f.A, f.B)
	case Jam:
		if f.Channel == 0 {
			return "all channels"
		}
		return fmt.Sprintf("channel %d", f.Channel)
	case Partition:
		parts := make([]string, len(f.Group))
		for i, id := range f.Group {
			parts[i] = fmt.Sprint(id)
		}
		return "group {" + strings.Join(parts, ",") + "}"
	default:
		return "?"
	}
}

// State is a scheduled fault's lifecycle position.
type State int

const (
	// Pending means the fault's start time has not been reached.
	Pending State = iota
	// Active means the fault is currently in force.
	Active
	// Done means the fault window has ended.
	Done
)

// String names the state.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Active:
		return "active"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("fault.State(%d)", int(s))
	}
}

// Status describes one scheduled fault for listings.
type Status struct {
	// ID is the handle Schedule returned.
	ID int
	// Fault is the scheduled record.
	Fault Fault
	// State is the current lifecycle position.
	State State
}

// String renders one listing line.
func (s Status) String() string {
	dur := "permanent"
	if s.Fault.Duration > 0 {
		dur = s.Fault.Duration.String()
	}
	return fmt.Sprintf("#%d %-13s %-16s at=%v dur=%s [%s]",
		s.ID, s.Fault.Kind, s.Fault.target(), s.Fault.At, dur, s.State)
}

type scheduled struct {
	id    int
	f     Fault
	group map[phys.NodeID]bool // precomputed Partition membership
	state State
}

// Injector schedules faults and evaluates their effects per delivery.
// It is bound to one engine, one medium, and one node population; all
// of its randomness comes from its own seed-derived stream so it never
// perturbs the draws other components see.
type Injector struct {
	eng    *sim.Engine
	med    *medium.Medium
	nodes  map[phys.NodeID]*liteos.Node
	rng    *sim.Rand
	nextID int
	// faults is kept in scheduling order for deterministic evaluation.
	faults []*scheduled
	// tel, when set, receives fault activation/clear telemetry events.
	tel *telemetry.Recorder
}

// SetTelemetry points the injector at a telemetry recorder (nil
// detaches).
func (in *Injector) SetTelemetry(rec *telemetry.Recorder) { in.tel = rec }

// emitTransition records one fault state change.
func (in *Injector) emitTransition(s *scheduled, kind string) {
	if !in.tel.Recording() {
		return
	}
	in.tel.Emit(s.f.Node, telemetry.LayerFault, kind,
		telemetry.Int("id", s.id),
		telemetry.String("fault", s.f.Kind.String()))
}

// seedSalt decorrelates the injector's stream from the engine's.
const seedSalt = 0x6661756c74 // "fault"

// New builds an injector over the given nodes and installs its hooks on
// the medium and every node's MAC. seed should be the testbed seed; the
// injector derives its own independent stream from it.
func New(eng *sim.Engine, med *medium.Medium, nodes []*liteos.Node, seed uint64) *Injector {
	in := &Injector{
		eng:   eng,
		med:   med,
		nodes: make(map[phys.NodeID]*liteos.Node, len(nodes)),
		rng:   sim.NewRand(seed ^ seedSalt),
	}
	for _, n := range nodes {
		in.nodes[n.ID()] = n
	}
	med.SetFaultHook(in.effect)
	for _, n := range nodes {
		to := n.ID()
		n.MAC().SetRxFault(func(phys.NodeID) bool { return in.rxCorrupt(to) })
	}
	return in
}

// Now returns the current virtual time — the base for relative At math
// in callers like the shell.
func (in *Injector) Now() sim.Time { return in.eng.Now() }

// Node returns the LiteOS node for id, if the injector knows it.
func (in *Injector) Node(id phys.NodeID) (*liteos.Node, bool) {
	n, ok := in.nodes[id]
	return n, ok
}

// validate checks kind-specific requirements and applies defaults.
func (in *Injector) validate(f *Fault) error {
	switch f.Kind {
	case NodeCrash:
		if _, ok := in.nodes[f.Node]; !ok {
			return fmt.Errorf("fault: unknown node %d", f.Node)
		}
	case LinkBlackout, LinkDegrade:
		if f.A == f.B {
			return errors.New("fault: link endpoints must differ")
		}
		if _, ok := in.nodes[f.A]; !ok {
			return fmt.Errorf("fault: unknown node %d", f.A)
		}
		// B may be the workstation, which is attached to the medium but
		// is not a LiteOS node; only require it to be non-zero.
		if f.B == 0 {
			return errors.New("fault: link endpoint B unset")
		}
		if f.Kind == LinkDegrade && f.ExtraLossDB == 0 {
			f.ExtraLossDB = DefaultExtraLossDB
		}
		if f.ExtraLossDB < 0 {
			return fmt.Errorf("fault: negative degradation %v dB", f.ExtraLossDB)
		}
	case CorruptBurst:
		if _, ok := in.nodes[f.Node]; !ok {
			return fmt.Errorf("fault: unknown node %d", f.Node)
		}
		if f.Prob == 0 {
			f.Prob = DefaultCorruptProb
		}
		if f.Prob < 0 || f.Prob > 1 {
			return fmt.Errorf("fault: corruption probability %v outside (0,1]", f.Prob)
		}
	case Jam:
		if f.Channel != 0 && (f.Channel < 11 || f.Channel > 26) {
			return fmt.Errorf("fault: channel %d outside 11..26", f.Channel)
		}
	case Partition:
		if len(f.Group) == 0 {
			return errors.New("fault: partition needs a non-empty group")
		}
		for _, id := range f.Group {
			if _, ok := in.nodes[id]; !ok {
				return fmt.Errorf("fault: unknown node %d in partition group", id)
			}
		}
	default:
		return fmt.Errorf("fault: unknown kind %d", int(f.Kind))
	}
	if f.Duration < 0 {
		return fmt.Errorf("fault: negative duration %v", f.Duration)
	}
	return nil
}

// Schedule scripts one fault and returns its ID. The fault's start must
// not be in the past; At equal to the current time starts it after the
// events already queued for this instant.
func (in *Injector) Schedule(f Fault) (int, error) {
	if err := in.validate(&f); err != nil {
		return 0, err
	}
	delay := f.At - in.eng.Now()
	if delay < 0 {
		return 0, fmt.Errorf("fault: at=%v is in the past (now %v)", f.At, in.eng.Now())
	}
	in.nextID++
	s := &scheduled{id: in.nextID, f: f}
	if f.Kind == Partition {
		s.group = make(map[phys.NodeID]bool, len(f.Group))
		for _, id := range f.Group {
			s.group[id] = true
		}
	}
	in.faults = append(in.faults, s)
	in.eng.After(delay, func() { in.activate(s) })
	if f.Duration > 0 {
		in.eng.After(delay+f.Duration, func() { in.deactivate(s) })
	}
	return s.id, nil
}

// activate brings a scheduled fault into force.
func (in *Injector) activate(s *scheduled) {
	if s.state != Pending {
		return
	}
	s.state = Active
	in.emitTransition(s, "fault-active")
	if s.f.Kind == NodeCrash {
		if n, ok := in.nodes[s.f.Node]; ok {
			n.Crash()
		}
	}
}

// deactivate ends a fault window; a crashed node reboots.
func (in *Injector) deactivate(s *scheduled) {
	if s.state != Active {
		return
	}
	s.state = Done
	in.emitTransition(s, "fault-clear")
	if s.f.Kind == NodeCrash {
		if n, ok := in.nodes[s.f.Node]; ok {
			n.Reboot()
		}
	}
}

// Faults lists every scheduled fault in ID order.
func (in *Injector) Faults() []Status {
	out := make([]Status, 0, len(in.faults))
	for _, s := range in.faults {
		out = append(out, Status{ID: s.id, Fault: s.f, State: s.state})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// effect is the medium hook: it folds every active link-level fault
// into one FaultEffect for a delivery from -> to on channel.
func (in *Injector) effect(from, to phys.NodeID, channel int) medium.FaultEffect {
	var eff medium.FaultEffect
	for _, s := range in.faults {
		if s.state != Active {
			continue
		}
		f := &s.f
		switch f.Kind {
		case LinkBlackout:
			if samePair(f.A, f.B, from, to) {
				eff.Drop = true
			}
		case LinkDegrade:
			if samePair(f.A, f.B, from, to) {
				eff.ExtraLossDB += f.ExtraLossDB
			}
		case Jam:
			if f.Channel == 0 || f.Channel == channel {
				eff.Corrupt = true
			}
		case Partition:
			if s.group[from] != s.group[to] {
				eff.Drop = true
			}
		}
	}
	return eff
}

// rxCorrupt is the per-node MAC hook for burst corruption.
func (in *Injector) rxCorrupt(to phys.NodeID) bool {
	for _, s := range in.faults {
		if s.state != Active || s.f.Kind != CorruptBurst || s.f.Node != to {
			continue
		}
		if in.rng.Bool(s.f.Prob) {
			return true
		}
	}
	return false
}

// samePair reports whether {a,b} == {x,y} regardless of direction.
func samePair(a, b, x, y phys.NodeID) bool {
	return (a == x && b == y) || (a == y && b == x)
}
