package fault_test

import (
	"strings"
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/diagnose"
	"liteview/internal/fault"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

// deployFault builds a warmed-up line with LiteView and a workstation.
func deployFault(t *testing.T, n int, spacing float64, seed uint64) (*testbed.Testbed, *core.Workstation) {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(n, spacing, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		t.Fatal(err)
	}
	return tb, ws
}

func TestScheduleValidation(t *testing.T) {
	tb, _ := deployFault(t, 3, 18, 1)
	inj := tb.FaultInjector()
	cases := []fault.Fault{
		{At: inj.Now(), Kind: fault.NodeCrash, Node: 99},                     // unknown node
		{At: inj.Now(), Kind: fault.LinkBlackout, A: 1, B: 1},                // same endpoints
		{At: inj.Now(), Kind: fault.LinkBlackout, A: 99, B: 1},               // unknown A
		{At: inj.Now(), Kind: fault.LinkDegrade, A: 1, B: 2, ExtraLossDB: -1},// negative loss
		{At: inj.Now(), Kind: fault.CorruptBurst, Node: 1, Prob: 1.5},        // bad probability
		{At: inj.Now(), Kind: fault.Jam, Channel: 5},                         // channel out of band
		{At: inj.Now(), Kind: fault.Partition},                               // empty group
		{At: inj.Now(), Kind: fault.Partition, Group: []phys.NodeID{99}},     // unknown member
		{At: inj.Now() - time.Second, Kind: fault.NodeCrash, Node: 1},        // in the past
		{At: inj.Now(), Kind: fault.NodeCrash, Node: 1, Duration: -1},        // negative duration
	}
	for i, f := range cases {
		if _, err := inj.Schedule(f); err == nil {
			t.Fatalf("case %d accepted: %+v", i, f)
		}
	}
	if n := len(inj.Faults()); n != 0 {
		t.Fatalf("%d rejected faults were recorded", n)
	}
}

func TestFaultLifecycleStates(t *testing.T) {
	tb, _ := deployFault(t, 3, 18, 2)
	inj := tb.FaultInjector()
	id, err := inj.Schedule(fault.Fault{At: inj.Now() + time.Second, Kind: fault.NodeCrash,
		Node: 2, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	state := func() fault.State {
		for _, st := range inj.Faults() {
			if st.ID == id {
				return st.State
			}
		}
		t.Fatalf("fault %d not listed", id)
		return 0
	}
	if state() != fault.Pending {
		t.Fatalf("state before start = %v", state())
	}
	tb.Run(1500 * time.Millisecond)
	if state() != fault.Active {
		t.Fatalf("state mid-window = %v", state())
	}
	if tb.Node(1).Alive() {
		t.Fatal("node alive mid-crash")
	}
	tb.Run(time.Second)
	if state() != fault.Done {
		t.Fatalf("state after window = %v", state())
	}
	if !tb.Node(1).Alive() {
		t.Fatal("node did not reboot after the window")
	}
	if !strings.Contains(inj.Faults()[0].String(), "node-crash") {
		t.Fatalf("listing: %s", inj.Faults()[0])
	}
}

// scriptedRun executes a fixed command script under a fixed fault
// schedule, returning the packet trace CSV and the diagnosis report.
func scriptedRun(t *testing.T, seed uint64) (traceCSV, report string) {
	t.Helper()
	tb, ws := deployFault(t, 5, 20, seed)
	inj := tb.FaultInjector()
	var buf strings.Builder
	stop := tb.RecordTrace(&buf)
	defer stop()
	if _, err := inj.Schedule(fault.Fault{At: inj.Now() + 100*time.Millisecond,
		Kind: fault.CorruptBurst, Node: 3, Prob: 0.6, Duration: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := inj.Schedule(fault.Fault{At: inj.Now() + 500*time.Millisecond,
		Kind: fault.NodeCrash, Node: 4, Duration: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	ws.Ping(1, core.PingOptions{Dst: 3, Rounds: 2, Length: 32, RouterPort: routing.GeographicPort})
	ws.Traceroute(1, core.TrOptions{Dst: 5, Length: 32, RouterPort: routing.GeographicPort})
	tb.Run(2 * time.Second)
	var targets []diagnose.Target
	for _, n := range tb.Nodes {
		targets = append(targets, diagnose.Target{ID: n.ID(), Name: n.Name(), Pos: n.Position()})
	}
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), rep.String()
}

// TestSeedDeterminism is the regression test for the injector's core
// promise: identical (topology, seed, fault schedule) yields a
// byte-identical packet trace and an identical diagnosis report.
func TestSeedDeterminism(t *testing.T) {
	trace1, rep1 := scriptedRun(t, 21)
	trace2, rep2 := scriptedRun(t, 21)
	if trace1 != trace2 {
		t.Fatal("same seed produced different packet traces")
	}
	if rep1 != rep2 {
		t.Fatalf("same seed produced different diagnosis reports:\n--- a ---\n%s--- b ---\n%s", rep1, rep2)
	}
	if len(strings.Split(trace1, "\n")) < 10 {
		t.Fatalf("suspiciously empty trace:\n%s", trace1)
	}
	// A different seed must actually change the trace (the injector is
	// deterministic, not constant).
	trace3, _ := scriptedRun(t, 22)
	if trace1 == trace3 {
		t.Fatal("different seeds produced identical packet traces")
	}
}

// TestInjectorDoesNotPerturbFaultFreeRuns asserts that merely creating
// the injector (hooks installed, no faults scheduled) leaves the packet
// trace identical to a run without it.
func TestInjectorDoesNotPerturbFaultFreeRuns(t *testing.T) {
	run := func(withInjector bool) string {
		tb, ws := deployFault(t, 4, 20, 23)
		if withInjector {
			tb.FaultInjector()
		}
		var buf strings.Builder
		stop := tb.RecordTrace(&buf)
		defer stop()
		ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 2, Length: 32})
		tb.Run(time.Second)
		return buf.String()
	}
	if run(false) != run(true) {
		t.Fatal("installing the injector changed a fault-free packet trace")
	}
}
