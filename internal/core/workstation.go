package core

import (
	"errors"
	"fmt"
	"time"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/stack"
	"liteview/internal/telemetry"
)

// WorkstationID is the reserved short address of the management
// workstation's base-station radio.
const WorkstationID phys.NodeID = 0xFF00

// ResponseWindow is the default command response delay: "By default,
// all commands have a response delay of 500 milliseconds", a period
// intentionally longer than the network needs so that groups of nodes
// can add random waiting time before answering.
const ResponseWindow = 500 * time.Millisecond

// Workstation is the LiteView command interpreter: it translates each
// user command into a sequence of radio messages, tracks management
// session context, and exchanges packets with runtime controllers over
// the reliable one-hop protocol.
//
// The synchronous command methods pump the simulation engine until the
// response window closes; call them from outside event callbacks only
// (i.e. from test/benchmark/example top level, the position a real user
// occupies).
type Workstation struct {
	eng *sim.Engine
	med *medium.Medium
	rad *radio.Radio
	mac *mac.MAC
	st  *stack.Stack
	ep  *Endpoint

	window     sim.Time
	collecting map[phys.NodeID]*collector
	// groupMode auto-creates collectors for any responder (broadcast
	// commands collect from many nodes at once).
	groupMode bool

	// Per-node circuit breakers (see breaker.go). Group/broadcast
	// commands bypass them: one dead node must not gag an inventory.
	breakers         map[phys.NodeID]*Breaker
	breakerThreshold int
	breakerCooldown  sim.Time

	// tel scopes command spans: every command opens a span so the
	// events it causes down the stack carry its span id.
	tel *telemetry.Recorder
}

// ErrNoRoute reports a command the target node accepted but could not
// act on because its routing layer found no path toward the requested
// destination. Unlike ErrXferFailed/ErrAckTimeout the management link
// itself is fine — the fault is deeper in the network.
var ErrNoRoute = errors.New("core: node reports no route to destination")

// SetTelemetry points the workstation's MAC, stack, and reliable
// endpoint at a telemetry recorder (nil detaches) and enables
// command-scoped spans on the interpreter itself.
func (w *Workstation) SetTelemetry(rec *telemetry.Recorder) {
	w.tel = rec
	w.mac.SetTelemetry(rec)
	w.st.SetTelemetry(rec)
	w.ep.SetTelemetry(rec)
}

// Telemetry returns the recorder the workstation publishes spans to
// (nil when detached).
func (w *Workstation) Telemetry() *telemetry.Recorder { return w.tel }

type collector struct {
	replies []Reply
	times   []sim.Time
	done    bool
	sendErr error
}

// NewWorkstation attaches a management workstation to the medium at the
// given position (the user walks the deployment with it; it must be in
// radio range of the node it manages).
func NewWorkstation(eng *sim.Engine, med *medium.Medium, pos phys.Position) (*Workstation, error) {
	return NewWorkstationMAC(eng, med, pos, mac.DefaultConfig())
}

// NewWorkstationMAC is NewWorkstation with an explicit MAC
// configuration. On a low-power-listening deployment the workstation
// must speak LPL too: reaching a sleeping node means repeating the
// command frame across the node's sleep interval.
func NewWorkstationMAC(eng *sim.Engine, med *medium.Medium, pos phys.Position, macCfg mac.Config) (*Workstation, error) {
	rad, err := radio.New(17)
	if err != nil {
		return nil, err
	}
	w := &Workstation{
		eng:              eng,
		med:              med,
		rad:              rad,
		window:           ResponseWindow,
		collecting:       make(map[phys.NodeID]*collector),
		breakers:         make(map[phys.NodeID]*Breaker),
		breakerThreshold: DefaultBreakerThreshold,
		breakerCooldown:  sim.Time(DefaultBreakerCooldown),
	}
	var st *stack.Stack
	m, err := mac.New(eng, med, rad, WorkstationID, pos, macCfg,
		func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
	if err != nil {
		return nil, err
	}
	st = stack.New(eng, m)
	w.mac = m
	w.st = st
	w.ep, err = NewEndpoint(eng, st, DefaultReliableConfig(), w.onMessage)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// Radio exposes the workstation's own radio (e.g. to follow a node onto
// another channel after a set-channel command).
func (w *Workstation) Radio() *radio.Radio { return w.rad }

// MoveTo relocates the workstation: the management protocol is one-hop,
// so the operator walks to whichever node they want to log into.
func (w *Workstation) MoveTo(pos phys.Position) { w.mac.SetPosition(pos) }

// Position returns the workstation's current location.
func (w *Workstation) Position() phys.Position { return w.mac.Position() }

// Endpoint exposes the interpreter's reliable-protocol endpoint.
func (w *Workstation) Endpoint() *Endpoint { return w.ep }

// SetResponseWindow overrides the default 500 ms command window.
func (w *Workstation) SetResponseWindow(d sim.Time) {
	if d > 0 {
		w.window = d
	}
}

// onMessage routes controller replies to the active collector.
func (w *Workstation) onMessage(from phys.NodeID, payload []byte, _ medium.RxInfo, _ bool) {
	rep, err := DecodeReply(payload)
	if err != nil {
		return
	}
	c, ok := w.collecting[from]
	if !ok {
		if !w.groupMode {
			return
		}
		c = &collector{}
		w.collecting[from] = c
	}
	c.replies = append(c.replies, rep)
	c.times = append(c.times, w.eng.Now())
	if rep.Kind == KindStatus {
		c.done = true
	}
}

// pump advances the simulation until the deadline passes, or — when
// early is true — until the collector reports done.
func (w *Workstation) pump(deadline sim.Time, c *collector, early bool) {
	for {
		if early && c != nil && c.done {
			return
		}
		t, ok := w.eng.NextEventTime()
		if !ok || t > deadline {
			if deadline > w.eng.Now() {
				w.eng.RunUntil(deadline)
			}
			return
		}
		w.eng.Step()
	}
}

// command runs one unicast command against a node's controller and
// waits the response window ("intentionally longer than needed").
func (w *Workstation) command(node phys.NodeID, cmd Command, window sim.Time, early bool) (*collector, sim.Time, error) {
	if _, busy := w.collecting[node]; busy {
		return nil, 0, fmt.Errorf("core: a command for node %d is already in flight", node)
	}
	if err := w.breakerAllow(node); err != nil {
		return nil, 0, err
	}
	c := &collector{}
	w.collecting[node] = c
	defer delete(w.collecting, node)
	// Scope the command: everything the transfer and the response
	// window cause down the stack is stamped with this span id. When a
	// higher-level command (ping, traceroute, health) already opened a
	// span, this nested one folds into it (BeginSpan returns 0).
	span := w.tel.BeginSpan(WorkstationID, cmd.Kind.String(), telemetry.Node("node", node))
	start := w.eng.Now()
	err := w.ep.Send(node, [][]byte{EncodeCommand(cmd)}, 0, func(err error) {
		if err != nil {
			c.sendErr = err
			c.done = true
		}
	})
	if err != nil {
		w.tel.EndSpan(span, telemetry.Bool("ok", false))
		return nil, 0, err
	}
	w.pump(start+window, c, early)
	elapsed := w.eng.Now() - start
	// The breaker judges the management link only: did the reliable
	// transfer reach the node? Status errors from a live controller are
	// the network's problem, not this link's.
	w.breakerRecord(node, c.sendErr == nil)
	w.tel.EndSpan(span, telemetry.Bool("ok", c.sendErr == nil))
	if c.sendErr != nil {
		return c, elapsed, fmt.Errorf("core: command %v to node %d: %w", cmd.Kind, node, c.sendErr)
	}
	return c, elapsed, nil
}

// firstStatusErr surfaces an error status reply, if any. Known status
// codes map to typed errors so callers can distinguish failure modes
// with errors.Is.
func firstStatusErr(c *collector) error {
	for _, r := range c.replies {
		if r.Kind == KindStatus && r.Status.Code != StatusOK {
			if r.Status.Code == StatusNoRoute {
				return fmt.Errorf("%w: %s", ErrNoRoute, r.Status.Msg)
			}
			return fmt.Errorf("core: node replied status %d: %s", r.Status.Code, r.Status.Msg)
		}
	}
	return nil
}

// RadioGet reads a node's current power level and channel.
func (w *Workstation) RadioGet(node phys.NodeID) (RadioInfo, error) {
	c, _, err := w.command(node, Command{Kind: KindRadioGet}, w.window, false)
	if err != nil {
		return RadioInfo{}, err
	}
	for _, r := range c.replies {
		if r.Kind == KindRadioInfo {
			return r.Radio, nil
		}
	}
	return RadioInfo{}, errors.New("core: no radio info reply within the response window")
}

// SetPower programs a node's CC2420 PA_LEVEL.
func (w *Workstation) SetPower(node phys.NodeID, level int) error {
	c, _, err := w.command(node, Command{Kind: KindSetPower, Value: level}, w.window, false)
	if err != nil {
		return err
	}
	if len(c.replies) == 0 {
		return errors.New("core: no reply within the response window")
	}
	return firstStatusErr(c)
}

// SetChannel tunes a node to another 802.15.4 channel. The management
// link breaks until the workstation follows.
func (w *Workstation) SetChannel(node phys.NodeID, ch int) error {
	c, _, err := w.command(node, Command{Kind: KindSetChannel, Value: ch}, w.window, false)
	if err != nil {
		return err
	}
	if len(c.replies) == 0 {
		return errors.New("core: no reply within the response window")
	}
	return firstStatusErr(c)
}

// NeighborListOutput is a neighbor listing with its response delay.
type NeighborListOutput struct {
	Entries       []NbrEntry
	ResponseDelay sim.Time
}

// NeighborList reads a node's kernel neighbor table, with or without
// link information.
func (w *Workstation) NeighborList(node phys.NodeID, withLink bool) (*NeighborListOutput, error) {
	c, elapsed, err := w.command(node, Command{Kind: KindNbrList, WithLink: withLink}, w.window, false)
	if err != nil {
		return nil, err
	}
	out := &NeighborListOutput{ResponseDelay: elapsed}
	for _, r := range c.replies {
		if r.Kind == KindNbrEntry {
			out.Entries = append(out.Entries, r.Nbr)
		}
	}
	if len(c.replies) == 0 {
		return nil, errors.New("core: no reply within the response window")
	}
	return out, firstStatusErr(c)
}

// Blacklist adds (on=true) or removes (on=false) a neighbor on a node's
// blacklist.
func (w *Workstation) Blacklist(node, target phys.NodeID, on bool) error {
	c, _, err := w.command(node, Command{Kind: KindNbrBlacklist, Target: target, On: on}, w.window, false)
	if err != nil {
		return err
	}
	if len(c.replies) == 0 {
		return errors.New("core: no reply within the response window")
	}
	return firstStatusErr(c)
}

// UpdateBeaconPeriod reconfigures a node's neighborhood beacon exchange
// frequency (the neighbor-setup "update" command).
func (w *Workstation) UpdateBeaconPeriod(node phys.NodeID, period sim.Time) error {
	c, _, err := w.command(node, Command{Kind: KindNbrUpdate, PeriodMs: uint32(period / time.Millisecond)}, w.window, false)
	if err != nil {
		return err
	}
	if len(c.replies) == 0 {
		return errors.New("core: no reply within the response window")
	}
	return firstStatusErr(c)
}

// PingOutput is the interpreter-side result of a ping command.
type PingOutput struct {
	// Results holds one entry per round.
	Results []PingResult
	// Sent/Received/Lost mirror the paper's "Ping statistics" block.
	Sent, Received, Lost int
	// ResponseDelay is how long the command took at the interpreter.
	ResponseDelay sim.Time
	// Protocol is the carrying protocol's display name.
	Protocol string
	// Verdict is the interpreter's one-line reading of the outcome:
	// "ok", a partial-loss summary, or an explicit failure statement.
	// It is set even when Ping also returns an error, so callers can
	// surface what was learned before the failure.
	Verdict string
}

// Ping runs the ping command on node (the node the user is logged
// into), probing opts.Dst.
func (w *Workstation) Ping(node phys.NodeID, opts PingOptions) (out *PingOutput, err error) {
	if err := (&opts).normalize(); err != nil {
		return nil, err
	}
	// The ping span covers every round: all MAC transmissions, retries,
	// and routing decisions the probe causes carry this id.
	span := w.tel.BeginSpan(WorkstationID, "ping",
		telemetry.Node("node", node), telemetry.Node("dst", opts.Dst))
	defer func() {
		verdict := ""
		if out != nil {
			verdict = out.Verdict
		}
		w.tel.EndSpan(span, telemetry.String("verdict", verdict))
	}()
	cmd := Command{Kind: KindPing, Dst: opts.Dst, Rounds: opts.Rounds, Length: opts.Length, RouterPort: opts.RouterPort}
	// The window must cover all rounds; each timed-out round costs the
	// per-round timeout. The default single round keeps the paper's
	// 500 ms response delay.
	window := w.window + sim.Time(opts.Rounds-1)*opts.Timeout
	if opts.RouterPort != 0 {
		window += sim.Time(opts.Rounds) * opts.Timeout
	}
	c, elapsed, err := w.command(node, cmd, window, false)
	if err != nil {
		// Delivering the command itself failed (node down, out of range,
		// or channel jammed): report the explicit verdict with the error.
		out = &PingOutput{ResponseDelay: elapsed, Sent: opts.Rounds,
			Verdict: fmt.Sprintf("command delivery to node %d failed (node down, out of range, or channel jammed)", node)}
		return out, err
	}
	out = &PingOutput{ResponseDelay: elapsed, Sent: opts.Rounds}
	bySeq := make(map[int]*PingResult)
	for _, r := range c.replies {
		switch r.Kind {
		case KindPingResult:
			out.Results = append(out.Results, r.Ping)
			bySeq[r.Ping.Seq] = &out.Results[len(out.Results)-1]
			if r.Ping.Lost {
				out.Lost++
			} else {
				out.Received++
			}
		case KindPingHops:
			if res, ok := bySeq[r.PingHops.Seq]; ok {
				res.HopQuality = append(res.HopQuality, r.PingHops.Records...)
			}
		case KindStatus:
			if r.Status.Code == StatusOK {
				out.Protocol = r.Status.Msg
			}
		}
	}
	if len(c.replies) == 0 {
		out.Verdict = "no response: controller unreachable within the response window"
		return out, errors.New("core: no ping reply within the response window")
	}
	// Rounds whose result reply never made it back count as lost: the
	// statistics block must always account for every round sent, even
	// when the reply stream itself was clipped by losses or the window.
	if missing := out.Sent - (out.Received + out.Lost); missing > 0 {
		out.Lost += missing
	}
	switch {
	case out.Received == 0 && out.Lost > 0:
		out.Verdict = fmt.Sprintf("destination %d unreachable: all %d round(s) lost", opts.Dst, out.Lost)
	case out.Lost > 0:
		out.Verdict = fmt.Sprintf("partial: %d/%d round(s) lost", out.Lost, out.Sent)
	default:
		out.Verdict = "ok"
	}
	return out, firstStatusErr(c)
}

// TimedHopReport is a traceroute hop report stamped with its arrival
// time at the interpreter — the quantity Figure 5 plots.
type TimedHopReport struct {
	TrHopReport
	// At is the virtual arrival time at the workstation.
	At sim.Time
	// Delay is At minus the command start.
	Delay sim.Time
}

// TracerouteOutput is the interpreter-side result of a traceroute.
type TracerouteOutput struct {
	Reports []TimedHopReport
	// Sent/Received/Lost mirror the paper's statistics block (per hop).
	Sent, Received, Lost int
	// Protocol is the carrying protocol's display name.
	Protocol string
	// ResponseDelay is the time until the final report (or window).
	ResponseDelay sim.Time
	// Verdict is the interpreter's one-line reading of the outcome:
	// "destination reached...", a "path broke at hop k" statement, or
	// an explicit failure. Set even when Traceroute returns an error.
	Verdict string
	// FailedHop is the 1-based hop index where the path broke (0 when
	// the walk completed or produced no reports at all).
	FailedHop int
	// Gaps lists 1-based hop numbers below the highest hop seen whose
	// report never arrived: the probe walk continued past them, but the
	// report routed back to the user was lost in the network. The
	// display layer prints these as the classic "*" lines — partial
	// knowledge beats a failed command.
	Gaps []int
}

// Traceroute runs the traceroute command on node toward opts.Dst,
// streaming per-hop reports. The command finishes when the
// destination's report arrives (the controller then closes the stream)
// or when the window expires.
func (w *Workstation) Traceroute(node phys.NodeID, opts TrOptions) (out *TracerouteOutput, err error) {
	if err := (&opts).normalize(); err != nil {
		return nil, err
	}
	// The traceroute span covers the whole hop walk: every probe,
	// retry, and report routed back carries this id.
	span := w.tel.BeginSpan(WorkstationID, "traceroute",
		telemetry.Node("node", node), telemetry.Node("dst", opts.Dst))
	defer func() {
		verdict := ""
		if out != nil {
			verdict = out.Verdict
		}
		w.tel.EndSpan(span, telemetry.String("verdict", verdict))
	}()
	cmd := Command{Kind: KindTraceroute, Dst: opts.Dst, Rounds: 1, Length: opts.Length,
		RouterPort: opts.RouterPort, Retries: opts.ProbeRetries}
	// The listen window mirrors the controller's session budget (which
	// accounts for per-hop retries) plus the usual command window.
	window := w.window + opts.SessionBudget()
	start := w.eng.Now()
	c, elapsed, err := w.command(node, cmd, window, true)
	if err != nil {
		out = &TracerouteOutput{ResponseDelay: elapsed,
			Verdict: fmt.Sprintf("command delivery to node %d failed (node down, out of range, or channel jammed)", node)}
		return out, err
	}
	out = &TracerouteOutput{}
	for i, r := range c.replies {
		switch r.Kind {
		case KindTrHopReport:
			out.Reports = append(out.Reports, TimedHopReport{
				TrHopReport: r.TrHop,
				At:          c.times[i],
				Delay:       c.times[i] - start,
			})
			out.Sent++
			if r.TrHop.Lost {
				out.Lost++
			} else {
				out.Received++
			}
		case KindStatus:
			if r.Status.Code == StatusOK {
				out.Protocol = r.Status.Msg
			}
		}
	}
	out.ResponseDelay = w.eng.Now() - start
	if len(c.replies) == 0 {
		out.Verdict = "no response: controller unreachable within the response window"
		return out, errors.New("core: no traceroute reply within the response window")
	}
	out.Gaps = hopGaps(out.Reports)
	out.Verdict, out.FailedHop = trVerdict(opts.Dst, out.Reports)
	return out, firstStatusErr(c)
}

// hopGaps finds the hop numbers missing from a report sequence: hops
// the walk passed (some later hop reported) whose own report was lost
// on its way back to the workstation.
func hopGaps(reports []TimedHopReport) []int {
	maxHop := 0
	seen := make(map[int]bool, len(reports))
	for _, r := range reports {
		seen[r.Hop] = true
		if r.Hop > maxHop {
			maxHop = r.Hop
		}
	}
	var gaps []int
	for h := 1; h < maxHop; h++ {
		if !seen[h] {
			gaps = append(gaps, h)
		}
	}
	return gaps
}

// trVerdict reads a traceroute's hop reports into a one-line outcome
// and, when the path broke, the 1-based failing hop.
func trVerdict(dst phys.NodeID, reports []TimedHopReport) (string, int) {
	if len(reports) == 0 {
		return "no hop reports: no route toward the destination, or all reports lost", 0
	}
	last := reports[len(reports)-1]
	switch {
	case last.Final && !last.Lost:
		return fmt.Sprintf("destination %d reached in %d hop(s)", dst, last.Hop), 0
	case last.Lost && last.From != 0:
		return fmt.Sprintf("path broke at hop %d: node %d did not answer its probe (crashed, jammed, or link down)",
			last.Hop, last.From), last.Hop
	case last.Lost:
		return fmt.Sprintf("path broke at hop %d: no next hop toward the destination (route lost)",
			last.Hop), last.Hop
	default:
		return fmt.Sprintf("incomplete: last report from hop %d, session cut by the response window", last.Hop), 0
	}
}

// StatsOutput is the interpreter-side result of a stats query.
type StatsOutput struct {
	Node    NodeStats
	Routers []RouterStats
}

// Stats reads a node's link/stack counters and routing protocol state.
func (w *Workstation) Stats(node phys.NodeID) (*StatsOutput, error) {
	c, _, err := w.command(node, Command{Kind: KindStatsGet}, w.window, false)
	if err != nil {
		return nil, err
	}
	out := &StatsOutput{}
	gotNode := false
	for _, r := range c.replies {
		switch r.Kind {
		case KindNodeStats:
			out.Node = r.Node
			gotNode = true
		case KindRouterStats:
			out.Routers = append(out.Routers, r.Router)
		}
	}
	if len(c.replies) == 0 {
		return nil, errors.New("core: no reply within the response window")
	}
	if err := firstStatusErr(c); err != nil {
		return nil, err
	}
	if !gotNode {
		return nil, errors.New("core: stats reply lacked the node record")
	}
	return out, nil
}

// Energy reads a node's battery account.
func (w *Workstation) Energy(node phys.NodeID) (EnergyStats, error) {
	c, _, err := w.command(node, Command{Kind: KindEnergyGet}, w.window, false)
	if err != nil {
		return EnergyStats{}, err
	}
	for _, r := range c.replies {
		if r.Kind == KindEnergyStats {
			return r.Energy, firstStatusErr(c)
		}
	}
	return EnergyStats{}, errors.New("core: no energy reply within the response window")
}

// FsList reads a node's LiteOS file-tree directory ("" or "/" for the
// node root).
func (w *Workstation) FsList(node phys.NodeID, path string) ([]FsEntry, error) {
	c, _, err := w.command(node, Command{Kind: KindFsList, Path: path}, w.window, false)
	if err != nil {
		return nil, err
	}
	var out []FsEntry
	for _, r := range c.replies {
		if r.Kind == KindFsEntry {
			out = append(out, r.Fs)
		}
	}
	if len(c.replies) == 0 {
		return nil, errors.New("core: no reply within the response window")
	}
	return out, firstStatusErr(c)
}

// LogControl enables or disables a node's on-demand event logging.
func (w *Workstation) LogControl(node phys.NodeID, on bool) error {
	c, _, err := w.command(node, Command{Kind: KindLogCtl, On: on}, w.window, false)
	if err != nil {
		return err
	}
	if len(c.replies) == 0 {
		return errors.New("core: no reply within the response window")
	}
	return firstStatusErr(c)
}

// LogDump fetches up to count of the newest entries from a node's event
// log (count 0 fetches the whole ring).
func (w *Workstation) LogDump(node phys.NodeID, count int) ([]LogEntry, error) {
	c, _, err := w.command(node, Command{Kind: KindLogDump, Count: count}, w.window, false)
	if err != nil {
		return nil, err
	}
	var out []LogEntry
	for _, r := range c.replies {
		if r.Kind == KindLogEntry {
			out = append(out, r.Log)
		}
	}
	if len(c.replies) == 0 {
		return nil, errors.New("core: no reply within the response window")
	}
	return out, firstStatusErr(c)
}

// GroupRadioGet broadcasts a radio-configuration query: every
// controller in range answers (after its group backoff) with its power
// level and channel — a one-command inventory of the deployment's radio
// settings.
func (w *Workstation) GroupRadioGet(window sim.Time) (map[phys.NodeID]RadioInfo, error) {
	if window <= 0 {
		window = w.window
	}
	prev := w.collecting
	w.collecting = make(map[phys.NodeID]*collector)
	w.groupMode = true
	defer func() {
		w.collecting = prev
		w.groupMode = false
	}()
	if err := w.ep.Send(phys.Broadcast, [][]byte{EncodeCommand(Command{Kind: KindRadioGet})}, 0, nil); err != nil {
		return nil, err
	}
	w.pump(w.eng.Now()+window, nil, false)
	out := make(map[phys.NodeID]RadioInfo)
	for id, c := range w.collecting {
		for _, r := range c.replies {
			if r.Kind == KindRadioInfo {
				out[id] = r.Radio
			}
		}
	}
	return out, nil
}

// GroupNeighborList broadcasts a neighbor-list command to every
// controller in radio range; responders stagger their replies with
// random backoff. It collects for the given window and returns the
// tables by node.
func (w *Workstation) GroupNeighborList(withLink bool, window sim.Time) (map[phys.NodeID][]NbrEntry, error) {
	if window <= 0 {
		window = w.window
	}
	// Group collection: swap in a fresh collector table with on-demand
	// creation, restore the old one afterwards.
	prev := w.collecting
	w.collecting = make(map[phys.NodeID]*collector)
	w.groupMode = true
	defer func() {
		w.collecting = prev
		w.groupMode = false
	}()
	err := w.ep.Send(phys.Broadcast, [][]byte{EncodeCommand(Command{Kind: KindNbrList, WithLink: withLink})}, 0, nil)
	if err != nil {
		return nil, err
	}
	w.pump(w.eng.Now()+window, nil, false)
	out := make(map[phys.NodeID][]NbrEntry)
	for id, c := range w.collecting {
		for _, r := range c.replies {
			if r.Kind == KindNbrEntry {
				out[id] = append(out[id], r.Nbr)
			}
		}
	}
	return out, nil
}
