package core_test

import (
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

// deploy builds a line testbed with geographic forwarding, LiteView on
// every node, and a workstation next to node 1.
func deploy(t *testing.T, n int, spacing float64, seed uint64) (*testbed.Testbed, *core.Workstation) {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(n, spacing, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		t.Fatal(err)
	}
	return tb, ws
}

func TestRadioGetAndSet(t *testing.T) {
	_, ws := deploy(t, 3, 15, 1)
	ri, err := ws.RadioGet(1)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Power != 31 || ri.Channel != 17 {
		t.Fatalf("radio info = %+v", ri)
	}
	if err := ws.SetPower(1, 10); err != nil {
		t.Fatal(err)
	}
	ri, err = ws.RadioGet(1)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Power != 10 {
		t.Fatalf("power after set = %d", ri.Power)
	}
	// Out-of-range power is rejected with a status error.
	if err := ws.SetPower(1, 99); err == nil {
		t.Fatal("bad power accepted")
	}
}

func TestNeighborListCommand(t *testing.T) {
	_, ws := deploy(t, 3, 15, 2)
	out, err := ws.NeighborList(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) < 2 {
		t.Fatalf("middle node reported %d neighbors, want ≥ 2", len(out.Entries))
	}
	names := map[string]bool{}
	for _, e := range out.Entries {
		names[e.Name] = true
		if e.LQI < 50 || e.LQI > 110 {
			t.Fatalf("entry LQI %d out of range", e.LQI)
		}
		if !e.WithLink {
			t.Fatal("asked with link info, got none")
		}
	}
	if !names["192.168.0.1"] || !names["192.168.0.3"] {
		t.Fatalf("names = %v", names)
	}
	// The paper's default: response delay is the full 500 ms window.
	if out.ResponseDelay < 490*time.Millisecond {
		t.Fatalf("response delay = %v, want ≈ 500 ms", out.ResponseDelay)
	}
}

func TestBlacklistCommand(t *testing.T) {
	tb, ws := deploy(t, 3, 15, 3)
	if err := ws.Blacklist(1, 2, true); err != nil {
		t.Fatal(err)
	}
	if !tb.Node(0).SysNeighborTable().IsBlacklisted(2) {
		t.Fatal("kernel table not updated")
	}
	out, err := ws.NeighborList(1, false)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range out.Entries {
		if e.ID == 2 && e.Blacklisted {
			found = true
		}
	}
	if !found {
		t.Fatal("listing does not show the blacklist flag")
	}
	if err := ws.Blacklist(1, 2, false); err != nil {
		t.Fatal(err)
	}
	if tb.Node(0).SysNeighborTable().IsBlacklisted(2) {
		t.Fatal("blacklist remove failed")
	}
	// Unknown neighbor errors.
	if err := ws.Blacklist(1, 99, true); err == nil {
		t.Fatal("blacklisting unknown neighbor accepted")
	}
}

func TestUpdateBeaconPeriod(t *testing.T) {
	tb, ws := deploy(t, 2, 10, 4)
	if err := ws.UpdateBeaconPeriod(1, 700*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := tb.Node(0).Neighbors().Period(); got != 700*time.Millisecond {
		t.Fatalf("period = %v", got)
	}
}

func TestSingleHopPingCommand(t *testing.T) {
	_, ws := deploy(t, 2, 5, 5)
	out, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 1, Length: 32})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sent != 1 || out.Received != 1 || out.Lost != 0 {
		t.Fatalf("stats: %+v", out)
	}
	r := out.Results[0]
	if r.Lost {
		t.Fatal("round lost on a 5 m link")
	}
	// RTT should be in the low-millisecond range (paper: 4.7 ms for a
	// 32-byte probe).
	rtt := time.Duration(r.RTT) * time.Microsecond
	if rtt < 1*time.Millisecond || rtt > 20*time.Millisecond {
		t.Fatalf("one-hop RTT = %v, want low milliseconds", rtt)
	}
	if r.LQIFwd < 100 || r.LQIBwd < 100 {
		t.Fatalf("LQI = %d/%d at 5 m", r.LQIFwd, r.LQIBwd)
	}
	if r.Power != 31 || r.Channel != 17 {
		t.Fatalf("power/channel = %d/%d", r.Power, r.Channel)
	}
	if out.Protocol != "direct one-hop" {
		t.Fatalf("protocol = %q", out.Protocol)
	}
}

func TestPingMultipleRounds(t *testing.T) {
	_, ws := deploy(t, 2, 5, 6)
	out, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 5, Length: 16})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sent != 5 || out.Received != 5 {
		t.Fatalf("stats: sent=%d received=%d lost=%d", out.Sent, out.Received, out.Lost)
	}
	seen := map[int]bool{}
	for _, r := range out.Results {
		seen[r.Seq] = true
	}
	for i := 0; i < 5; i++ {
		if !seen[i] {
			t.Fatalf("round %d missing", i)
		}
	}
}

func TestPingToDeadNodeReportsLoss(t *testing.T) {
	_, ws := deploy(t, 2, 5, 7)
	out, err := ws.Ping(1, core.PingOptions{Dst: 99, Rounds: 2, Length: 16})
	if err != nil {
		t.Fatal(err)
	}
	if out.Lost != 2 || out.Received != 0 {
		t.Fatalf("stats: %+v", out)
	}
}

func TestMultiHopPingCommand(t *testing.T) {
	_, ws := deploy(t, 5, 20, 8)
	out, err := ws.Ping(1, core.PingOptions{Dst: 5, Rounds: 1, Length: 16, RouterPort: routing.GeographicPort})
	if err != nil {
		t.Fatal(err)
	}
	if out.Received != 1 {
		t.Fatalf("multi-hop ping lost: %+v", out)
	}
	r := out.Results[0]
	// The padded probe collected forward hops; the reply collected the
	// return path. At 20 m spacing the path is ≥ 2 hops each way.
	fwd, bwd := 0, 0
	for _, h := range r.HopQuality {
		if h.Back {
			bwd++
		} else {
			fwd++
		}
	}
	if fwd < 2 || bwd < 2 {
		t.Fatalf("hop quality fwd=%d bwd=%d, want ≥2 each", fwd, bwd)
	}
	if out.Protocol != "geographic forwarding" {
		t.Fatalf("protocol = %q", out.Protocol)
	}
	rtt := time.Duration(r.RTT) * time.Microsecond
	if rtt < 2*time.Millisecond || rtt > 200*time.Millisecond {
		t.Fatalf("multi-hop RTT = %v", rtt)
	}
}

func TestTracerouteCommand(t *testing.T) {
	_, ws := deploy(t, 4, 20, 9)
	out, err := ws.Traceroute(1, core.TrOptions{Dst: 4, Length: 32, RouterPort: routing.GeographicPort})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) < 2 {
		t.Fatalf("reports = %d, want one per hop (≥2)", len(out.Reports))
	}
	// Hop numbering increases and the last report is final.
	last := out.Reports[len(out.Reports)-1]
	if !last.Final {
		t.Fatalf("last report not final: %+v", last)
	}
	if last.From != 4 {
		t.Fatalf("final report from %d, want 4", last.From)
	}
	for _, rep := range out.Reports {
		if rep.Lost {
			t.Fatalf("hop %d lost on a clean line", rep.Hop)
		}
		rtt := time.Duration(rep.RTT) * time.Microsecond
		if rtt < 500*time.Microsecond || rtt > 100*time.Millisecond {
			t.Fatalf("hop %d RTT = %v", rep.Hop, rtt)
		}
		if rep.LQIFwd < 50 || rep.LQIBwd < 50 {
			t.Fatalf("hop %d LQI %d/%d", rep.Hop, rep.LQIFwd, rep.LQIBwd)
		}
	}
	if out.Protocol != "geographic forwarding" {
		t.Fatalf("protocol = %q", out.Protocol)
	}
	// Response delays at the interpreter grow along the path (allowing
	// the paper's back-to-back anomaly: non-strict ordering).
	if out.Reports[0].Delay >= out.Reports[len(out.Reports)-1].Delay+50*time.Millisecond {
		t.Fatalf("first report (%v) arrived way after last (%v)", out.Reports[0].Delay, out.Reports[len(out.Reports)-1].Delay)
	}
}

func TestTracerouteOverFlooding(t *testing.T) {
	// Flooding has no unicast next hop: traceroute must fail cleanly.
	opt := testbed.DefaultOptions(10)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(3, 15, opt)
	if err != nil {
		t.Fatal(err)
	}
	tb.AttachFlooding(routing.DefaultConfig())
	tb.InstallLiteView()
	tb.WarmUp(10 * time.Second)
	ws, _ := tb.NewWorkstation(phys.Position{X: -2})
	_, err = ws.Traceroute(1, core.TrOptions{Dst: 3, RouterPort: routing.FloodingPort})
	if err == nil {
		t.Fatal("traceroute over flooding should fail (no unicast path)")
	}
}

func TestTracerouteOverTree(t *testing.T) {
	// Protocol independence: the same traceroute command works over the
	// collection tree when the destination is the root.
	opt := testbed.DefaultOptions(11)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(4, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	tb.AttachTree(1, routing.DefaultConfig())
	tb.InstallLiteView()
	tb.WarmUp(60 * time.Second)
	ws, _ := tb.NewWorkstation(phys.Position{X: 62}) // next to node 4
	ws.SetResponseWindow(300 * time.Millisecond)     // don't wait out the full session cap
	out, err := ws.Traceroute(4, core.TrOptions{Dst: 1, RouterPort: routing.TreePort, MaxHops: 6})
	if err != nil {
		t.Fatal(err)
	}
	// A collection tree routes only toward its root, so intermediate
	// hops cannot ship their reports back to a non-root source: the
	// command honestly returns just the source's own first hop. (This
	// is faithful to real collection protocols; the paper's examples
	// run traceroute over geographic forwarding.)
	if len(out.Reports) == 0 {
		t.Fatal("no reports over the tree")
	}
	first := out.Reports[0]
	if first.Hop != 1 || first.Lost {
		t.Fatalf("first hop report wrong: %+v", first)
	}
	// The first hop must follow the tree parent chain toward the root.
	if first.From != 3 {
		t.Fatalf("first hop via %d, want parent 3", first.From)
	}
}

func TestTracerouteFromRootOverTree(t *testing.T) {
	// From the root the tree cannot route downward at all: NextHop
	// fails and the command errors out cleanly instead of hanging.
	opt := testbed.DefaultOptions(16)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(3, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	tb.AttachTree(1, routing.DefaultConfig())
	tb.InstallLiteView()
	tb.WarmUp(30 * time.Second)
	ws, _ := tb.NewWorkstation(phys.Position{X: -2})
	if _, err := ws.Traceroute(1, core.TrOptions{Dst: 3, RouterPort: routing.TreePort}); err == nil {
		t.Fatal("downward traceroute over a collection tree should fail")
	}
}

func TestGroupNeighborList(t *testing.T) {
	// A 30-node grid-ish testbed: broadcast the neighbor-list command,
	// every in-range controller answers after a random backoff.
	opt := testbed.DefaultOptions(12)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Grid(5, 6, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	ws, _ := tb.NewWorkstation(phys.Position{X: 20, Y: 16})
	got, err := ws.GroupNeighborList(false, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 10 {
		t.Fatalf("only %d/30 nodes answered the group command", len(got))
	}
}

func TestBusyControllerRejectsSecondCommand(t *testing.T) {
	tb, ws := deploy(t, 2, 5, 13)
	ctl, err := core.NewController(tb.Node(0), tb.LookupFor(1))
	if err == nil {
		t.Fatal("double install should fail (ports taken)")
	}
	_ = ctl
	_ = ws
}

func TestCommandToOutOfRangeNodeFails(t *testing.T) {
	_, ws := deploy(t, 2, 5, 14)
	// Node 99 does not exist; the reliable transfer gives up.
	if _, err := ws.RadioGet(99); err == nil {
		t.Fatal("command to phantom node succeeded")
	}
}

func TestSetChannelPartitionsManagement(t *testing.T) {
	tb, ws := deploy(t, 2, 5, 15)
	if err := ws.SetChannel(1, 20); err != nil {
		t.Fatal(err)
	}
	if tb.Node(0).Radio().Channel() != 20 {
		t.Fatalf("channel = %d", tb.Node(0).Radio().Channel())
	}
	// The workstation is still on 17: the next command times out until
	// it follows the node to channel 20.
	if _, err := ws.RadioGet(1); err == nil {
		t.Fatal("cross-channel command should fail")
	}
	if err := ws.Radio().SetChannel(20); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.RadioGet(1); err != nil {
		t.Fatalf("command after following channel: %v", err)
	}
}
