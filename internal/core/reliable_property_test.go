package core

import (
	"fmt"
	"testing"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

// TestReliableProtocolUnderParametricLoss is the exchange protocol's
// core guarantee made into a property: for any injected loss rate the
// link can survive at all, every completed transfer delivers every
// message exactly once, in order — and transfers either complete or
// fail loudly, never silently truncate.
func TestReliableProtocolUnderParametricLoss(t *testing.T) {
	for _, lossPct := range []int{0, 10, 25, 40, 60} {
		for seed := uint64(1); seed <= 4; seed++ {
			lossPct, seed := lossPct, seed
			t.Run(fmt.Sprintf("loss=%d%%/seed=%d", lossPct, seed), func(t *testing.T) {
				eng := sim.NewEngine(seed)
				model := phys.DefaultModel(seed)
				model.ShadowSigma = 0
				model.AsymSigma = 0
				med := medium.New(eng, model)
				lossRng := sim.NewRand(seed * 7777)
				med.SetLossFunc(func(_, _ phys.NodeID, _ []byte) bool {
					return lossRng.Bool(float64(lossPct) / 100)
				})
				var got [][]byte
				mkEp := func(id phys.NodeID, x float64, capture bool) *Endpoint {
					rad, err := radio.New(17)
					if err != nil {
						t.Fatal(err)
					}
					macCfg := mac.DefaultConfig()
					macCfg.LinkAcks = false // the exchange protocol alone
					var st *stack.Stack
					m, err := mac.New(eng, med, rad, id, phys.Position{X: x}, macCfg,
						func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
					if err != nil {
						t.Fatal(err)
					}
					st = stack.New(eng, m)
					cfg := DefaultReliableConfig()
					cfg.MaxRetries = 30
					ep, err := NewEndpoint(eng, st, cfg, func(_ phys.NodeID, p []byte, _ medium.RxInfo, _ bool) {
						if capture {
							got = append(got, p)
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					return ep
				}
				sender := mkEp(1, 0, false)
				mkEp(2, 5, true)
				const n = 25
				msgs := make([][]byte, n)
				for i := range msgs {
					msgs[i] = []byte{byte(i), byte(i >> 8)}
				}
				var done bool
				var failErr error
				if err := sender.Send(2, msgs, 0, func(err error) { done = true; failErr = err }); err != nil {
					t.Fatal(err)
				}
				eng.Run()
				if !done {
					t.Fatal("transfer neither completed nor failed")
				}
				if failErr != nil {
					// A loud failure is acceptable at high loss; but the
					// receiver must then have a strict prefix, never a gap.
					for i, m := range got {
						if m[0] != byte(i) {
							t.Fatalf("failed transfer left a gap at %d", i)
						}
					}
					if lossPct < 25 {
						t.Fatalf("transfer failed at only %d%% loss: %v", lossPct, failErr)
					}
					return
				}
				if len(got) != n {
					t.Fatalf("delivered %d/%d messages", len(got), n)
				}
				for i, m := range got {
					if m[0] != byte(i) {
						t.Fatalf("out of order at %d: % x", i, m)
					}
				}
			})
		}
	}
}

// TestInjectedLossForcesAdaptation checks the batch actually shrinks
// under loss (the observable behind the paper's "smaller batch size is
// preferred when packets are more likely to get lost").
func TestInjectedLossForcesAdaptation(t *testing.T) {
	run := func(lossPct int) uint64 {
		eng := sim.NewEngine(5)
		model := phys.DefaultModel(5)
		model.ShadowSigma = 0
		model.AsymSigma = 0
		med := medium.New(eng, model)
		lossRng := sim.NewRand(999)
		med.SetLossFunc(func(_, _ phys.NodeID, _ []byte) bool {
			return lossRng.Bool(float64(lossPct) / 100)
		})
		mkEp := func(id phys.NodeID, x float64) *Endpoint {
			rad, _ := radio.New(17)
			macCfg := mac.DefaultConfig()
			macCfg.LinkAcks = false
			var st *stack.Stack
			m, err := mac.New(eng, med, rad, id, phys.Position{X: x}, macCfg,
				func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
			if err != nil {
				t.Fatal(err)
			}
			st = stack.New(eng, m)
			cfg := DefaultReliableConfig()
			cfg.MaxRetries = 30
			ep, err := NewEndpoint(eng, st, cfg, func(phys.NodeID, []byte, medium.RxInfo, bool) {})
			if err != nil {
				t.Fatal(err)
			}
			return ep
		}
		sender := mkEp(1, 0)
		mkEp(2, 5)
		msgs := make([][]byte, 30)
		for i := range msgs {
			msgs[i] = []byte{byte(i)}
		}
		sender.Send(2, msgs, 0, nil)
		eng.Run()
		return sender.Stats().Retransmissions
	}
	clean := run(0)
	lossy := run(35)
	if clean != 0 {
		t.Fatalf("clean link retransmitted %d times", clean)
	}
	if lossy == 0 {
		t.Fatal("lossy link triggered no retransmission rounds")
	}
}
