package core_test

import (
	"strings"
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/routing"
	"liteview/internal/stack"
	"liteview/internal/testbed"
)

// TestControllerBusyLatch drives the controller with a raw endpoint:
// two overlapping ping commands must produce one result stream and one
// StatusBusy rejection ("command in progress"), and the latch must
// clear afterwards.
func TestControllerBusyLatch(t *testing.T) {
	opt := testbed.DefaultOptions(101)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(2, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(10 * time.Second)

	// A bare operator endpoint (not the Workstation wrapper, which
	// serializes synchronously and so can never overlap commands).
	rad, _ := radio.New(17)
	var st *stack.Stack
	m, err := mac.New(tb.Eng, tb.Med, rad, 0xFF00, phys.Position{X: -2}, mac.DefaultConfig(),
		func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
	if err != nil {
		t.Fatal(err)
	}
	st = stack.New(tb.Eng, m)
	var replies []core.Reply
	ep, err := core.NewEndpoint(tb.Eng, st, core.DefaultReliableConfig(),
		func(_ phys.NodeID, payload []byte, _ medium.RxInfo, _ bool) {
			if rep, err := core.DecodeReply(payload); err == nil {
				replies = append(replies, rep)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	// A slow command: 3 rounds to a dead target = ~750 ms busy.
	slow := core.EncodeCommand(core.Command{Kind: core.KindPing, Dst: 99, Rounds: 3, Length: 16})
	fast := core.EncodeCommand(core.Command{Kind: core.KindPing, Dst: 2, Rounds: 1, Length: 16})
	if err := ep.Send(1, [][]byte{slow}, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Let the first command land, then fire the second mid-flight.
	tb.Run(100 * time.Millisecond)
	if err := ep.Send(1, [][]byte{fast}, 0, nil); err != nil {
		t.Fatal(err)
	}
	tb.Run(3 * time.Second)

	busy, results := 0, 0
	for _, r := range replies {
		switch r.Kind {
		case core.KindStatus:
			if r.Status.Code == core.StatusBusy {
				busy++
				if !strings.Contains(r.Status.Msg, "progress") {
					t.Fatalf("busy message: %q", r.Status.Msg)
				}
			}
		case core.KindPingResult:
			results++
		}
	}
	if busy != 1 {
		t.Fatalf("busy rejections = %d, want 1 (replies: %d)", busy, len(replies))
	}
	if results != 3 {
		t.Fatalf("first command produced %d results, want 3", results)
	}
	// The latch cleared: a third command runs normally.
	replies = nil
	if err := ep.Send(1, [][]byte{fast}, 0, nil); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	ok := false
	for _, r := range replies {
		if r.Kind == core.KindPingResult && !r.Ping.Lost {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("controller stuck busy after command completed: %+v", replies)
	}
}

// TestSecondWorkstationAddressCollision documents the single-operator
// assumption: the reserved base-station address cannot attach twice.
func TestSecondWorkstationAddressCollision(t *testing.T) {
	tb, _ := deploy(t, 2, 5, 102)
	if _, err := core.NewWorkstation(tb.Eng, tb.Med, phys.Position{X: 7}); err == nil {
		t.Fatal("two workstations with the same reserved address attached")
	}
}

// TestBackToBackCommandsAreClean exercises the per-node collector
// lifecycle: repeated commands to the same node never collide.
func TestBackToBackCommandsAreClean(t *testing.T) {
	_, ws := deploy(t, 2, 5, 103)
	for i := 0; i < 5; i++ {
		if _, err := ws.RadioGet(1); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if _, err := ws.Stats(2); err != nil {
			t.Fatalf("round %d stats: %v", i, err)
		}
	}
	_ = routing.GeographicPort
}
