package core_test

import (
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

// deployOnDemand builds a line with the on-demand protocol + LiteView.
func deployOnDemand(t *testing.T, n int, spacing float64, seed uint64) (*testbed.Testbed, *core.Workstation) {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(n, spacing, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachOnDemand(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		t.Fatal(err)
	}
	return tb, ws
}

// TestPingOverOnDemand shows the protocol-independence claim at the
// command level: the same multi-hop ping works over a protocol that
// did not even have a route until the probe forced discovery.
func TestPingOverOnDemand(t *testing.T) {
	_, ws := deployOnDemand(t, 4, 20, 61)
	out, err := ws.Ping(1, core.PingOptions{
		Dst: 4, Rounds: 2, Length: 16, RouterPort: routing.OnDemandPort,
		// The first round pays the route-discovery latency.
		Timeout: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Received < 1 {
		t.Fatalf("ping over on-demand: %+v", out)
	}
	if out.Protocol != "on-demand (AODV-style)" {
		t.Fatalf("protocol = %q", out.Protocol)
	}
	// Padding worked across the discovered route.
	for _, r := range out.Results {
		if r.Lost {
			continue
		}
		if len(r.HopQuality) < 2 {
			t.Fatalf("hop quality records = %d", len(r.HopQuality))
		}
	}
}

// TestTracerouteOverOnDemand: traceroute needs an existing path (its
// NextHop query does not wait for discovery), so the workflow is
// ping-then-traceroute — exactly how an operator probes an on-demand
// network.
func TestTracerouteOverOnDemand(t *testing.T) {
	_, ws := deployOnDemand(t, 4, 20, 62)
	// Cold start: traceroute fails, telling the user there is no path
	// yet.
	if _, err := ws.Traceroute(1, core.TrOptions{Dst: 4, RouterPort: routing.OnDemandPort}); err == nil {
		t.Fatal("cold traceroute over on-demand succeeded")
	}
	// Warm the route with a ping...
	if _, err := ws.Ping(1, core.PingOptions{Dst: 4, Rounds: 1, Length: 16,
		RouterPort: routing.OnDemandPort, Timeout: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// ...then walk it. Intermediate nodes also need routes back to the
	// source for their reports; the discovery flood installed them.
	out, err := ws.Traceroute(1, core.TrOptions{Dst: 4, RouterPort: routing.OnDemandPort})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) == 0 {
		t.Fatal("no reports")
	}
	last := out.Reports[len(out.Reports)-1]
	if !last.Final || last.From != 4 {
		t.Fatalf("traceroute over on-demand did not complete: %+v", last)
	}
	if out.Protocol != "on-demand (AODV-style)" {
		t.Fatalf("protocol = %q", out.Protocol)
	}
}
