package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"liteview/internal/phys"
	"liteview/internal/sim"
)

// breakerBench builds a Workstation with just enough wiring for the
// breaker state machine: an engine for the virtual clock and the breaker
// fields themselves. No radio is needed — the breaker sits entirely in
// front of the transmit path.
func breakerBench(threshold int, cooldown sim.Time) *Workstation {
	return &Workstation{
		eng:              sim.NewEngine(1),
		breakers:         make(map[phys.NodeID]*Breaker),
		breakerThreshold: threshold,
		breakerCooldown:  cooldown,
	}
}

func advance(w *Workstation, d sim.Time) {
	w.eng.MustSchedule(d, func() {})
	w.eng.Run()
}

func TestBreakerLifecycle(t *testing.T) {
	w := breakerBench(3, sim.Time(2*time.Second))
	// Closed: everything flows; failures below the threshold keep it so.
	for i := 0; i < 2; i++ {
		if err := w.breakerAllow(7); err != nil {
			t.Fatalf("closed breaker rejected command: %v", err)
		}
		w.breakerRecord(7, false)
	}
	if st := w.BreakerFor(7); st.State != BreakerClosed || st.Fails != 2 {
		t.Fatalf("after 2 failures: %+v", st)
	}
	// Third consecutive failure opens it.
	w.breakerRecord(7, false)
	if st := w.BreakerFor(7); st.State != BreakerOpen {
		t.Fatalf("after threshold: %+v", st)
	}
	if err := w.breakerAllow(7); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted command: %v", err)
	}
	// Other nodes are unaffected.
	if err := w.breakerAllow(8); err != nil {
		t.Fatalf("breaker bled across nodes: %v", err)
	}
	// Cooldown elapsed: one half-open probe is admitted.
	advance(w, sim.Time(2*time.Second))
	if err := w.breakerAllow(7); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if st := w.BreakerFor(7); st.State != BreakerHalfOpen {
		t.Fatalf("after probe admission: %+v", st)
	}
	// Probe failure re-opens immediately, for a fresh cooldown.
	w.breakerRecord(7, false)
	if st := w.BreakerFor(7); st.State != BreakerOpen || st.RetryIn == 0 {
		t.Fatalf("after failed probe: %+v", st)
	}
	// Next probe succeeds: the breaker closes and the entry is gone.
	advance(w, sim.Time(2*time.Second))
	if err := w.breakerAllow(7); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	w.breakerRecord(7, true)
	if st := w.BreakerFor(7); st.State != BreakerClosed || st.Fails != 0 {
		t.Fatalf("after successful probe: %+v", st)
	}
	if got := w.Breakers(); len(got) != 0 {
		t.Fatalf("healthy workstation lists breakers: %+v", got)
	}
}

func TestBreakerListSortedAndConfigurable(t *testing.T) {
	w := breakerBench(2, sim.Time(time.Second))
	for _, id := range []phys.NodeID{9, 4} {
		w.breakerRecord(id, false)
		w.breakerRecord(id, false)
	}
	got := w.Breakers()
	if len(got) != 2 || got[0].Node != 4 || got[1].Node != 9 {
		t.Fatalf("Breakers = %+v, want nodes 4,9 in order", got)
	}
	// Disabling the breaker clears all state and admits everything.
	w.ConfigureBreaker(0, 0)
	if err := w.breakerAllow(9); err != nil {
		t.Fatalf("disabled breaker rejected command: %v", err)
	}
	w.breakerRecord(9, false)
	w.breakerRecord(9, false)
	w.breakerRecord(9, false)
	if st := w.BreakerFor(9); st.State != BreakerClosed {
		t.Fatalf("disabled breaker tripped: %+v", st)
	}
}

func TestHopGaps(t *testing.T) {
	mk := func(hops ...int) []TimedHopReport {
		out := make([]TimedHopReport, len(hops))
		for i, h := range hops {
			out[i].Hop = h
		}
		return out
	}
	cases := []struct {
		name    string
		reports []TimedHopReport
		want    []int
	}{
		{"no reports", nil, nil},
		{"contiguous", mk(1, 2, 3), nil},
		{"middle hop silent", mk(1, 3), []int{2}},
		{"two gaps", mk(1, 3, 5), []int{2, 4}},
		{"first hops silent", mk(4), []int{1, 2, 3}},
		{"duplicates collapse", mk(2, 2, 4), []int{1, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := hopGaps(tc.reports); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("hopGaps = %v, want %v", got, tc.want)
			}
		})
	}
}
