package core

import (
	"testing"
	"time"

	"liteview/internal/liteos"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/sim"
)

// engineFixture builds bare nodes with ping/traceroute engines and
// geographic routing, without controllers or a workstation — unit-level
// access to the command engines.
type engineFixture struct {
	eng   *sim.Engine
	nodes []*liteos.Node
	pings []*PingEngine
	trs   []*TracerouteEngine
}

func newEngineFixture(t *testing.T, n int, spacing float64, seed uint64) *engineFixture {
	t.Helper()
	eng := sim.NewEngine(seed)
	model := phys.DefaultModel(seed)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	med := medium.New(eng, model)
	f := &engineFixture{eng: eng}
	routers := make(map[phys.NodeID]*routing.Router)
	locator := func(id phys.NodeID) (phys.Position, bool) {
		if int(id) >= 1 && int(id) <= n {
			return phys.Position{X: float64(id-1) * spacing}, true
		}
		return phys.Position{}, false
	}
	for i := 1; i <= n; i++ {
		node, err := liteos.NewNode(eng, med, liteos.Config{
			ID:   phys.NodeID(i),
			Name: "192.168.0." + string(rune('0'+i)),
			Pos:  phys.Position{X: float64(i-1) * spacing},
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := routing.NewGeographic(eng, node.Stack(), node.SysNeighborTable(), locator, routing.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		routers[node.ID()] = r
		lookup := func(id phys.NodeID) RouterLookup {
			return func(port byte) (*routing.Router, bool) {
				if port == routing.GeographicPort {
					return routers[id], true
				}
				return nil, false
			}
		}(node.ID())
		pe, err := NewPingEngine(eng, node, lookup)
		if err != nil {
			t.Fatal(err)
		}
		te, err := NewTracerouteEngine(eng, node, lookup)
		if err != nil {
			t.Fatal(err)
		}
		f.nodes = append(f.nodes, node)
		f.pings = append(f.pings, pe)
		f.trs = append(f.trs, te)
		node.Neighbors().Start()
	}
	eng.RunUntil(15 * time.Second)
	return f
}

func TestPingOptionValidation(t *testing.T) {
	f := newEngineFixture(t, 2, 5, 31)
	pe := f.pings[0]
	if err := pe.Start(PingOptions{Dst: 1}, nil); err == nil {
		t.Fatal("ping to self accepted")
	}
	if err := pe.Start(PingOptions{Dst: 2, Rounds: 500}, nil); err == nil {
		t.Fatal("500 rounds accepted")
	}
	if err := pe.Start(PingOptions{Dst: 2, Length: 100}, nil); err == nil {
		t.Fatal("oversized probe accepted")
	}
	if err := pe.Start(PingOptions{Dst: 2, RouterPort: 99}, nil); err == nil {
		t.Fatal("unknown protocol port accepted")
	}
}

func TestPingDefaults(t *testing.T) {
	f := newEngineFixture(t, 2, 5, 32)
	var got []PingResult
	if err := f.pings[0].Start(PingOptions{Dst: 2}, func(rs []PingResult) { got = rs }); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 2*time.Second)
	if len(got) != 1 { // default 1 round
		t.Fatalf("results = %d", len(got))
	}
	if got[0].Lost {
		t.Fatal("default ping lost")
	}
}

func TestPingTinyLengthClampsToHeader(t *testing.T) {
	f := newEngineFixture(t, 2, 5, 33)
	var got []PingResult
	if err := f.pings[0].Start(PingOptions{Dst: 2, Length: 1}, func(rs []PingResult) { got = rs }); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 2*time.Second)
	if len(got) != 1 || got[0].Lost {
		t.Fatalf("tiny probe: %+v", got)
	}
}

func TestConcurrentPingTasks(t *testing.T) {
	// Two independent ping tasks from the same node must not cross.
	f := newEngineFixture(t, 3, 10, 34)
	var a, b []PingResult
	if err := f.pings[0].Start(PingOptions{Dst: 2, Rounds: 3}, func(rs []PingResult) { a = rs }); err != nil {
		t.Fatal(err)
	}
	if err := f.pings[0].Start(PingOptions{Dst: 3, Rounds: 3}, func(rs []PingResult) { b = rs }); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 5*time.Second)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("results: a=%d b=%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Lost || b[i].Lost {
			t.Fatalf("concurrent tasks lost rounds: %+v %+v", a[i], b[i])
		}
	}
}

func TestTracerouteOptionValidation(t *testing.T) {
	f := newEngineFixture(t, 2, 5, 35)
	te := f.trs[0]
	if err := te.Start(TrOptions{Dst: 1, RouterPort: routing.GeographicPort}, nil, nil); err == nil {
		t.Fatal("traceroute to self accepted")
	}
	if err := te.Start(TrOptions{Dst: 2}, nil, nil); err == nil {
		t.Fatal("missing router port accepted")
	}
	if err := te.Start(TrOptions{Dst: 2, RouterPort: 99}, nil, nil); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := te.Start(TrOptions{Dst: 2, RouterPort: routing.GeographicPort, Length: 200}, nil, nil); err == nil {
		t.Fatal("oversized probe accepted")
	}
}

func TestTracerouteMaxHopsBound(t *testing.T) {
	f := newEngineFixture(t, 5, 20, 36)
	var reports []TrHopReport
	done := false
	err := f.trs[0].Start(TrOptions{Dst: 5, RouterPort: routing.GeographicPort, MaxHops: 2},
		func(rep TrHopReport) { reports = append(reports, rep) },
		func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 10*time.Second)
	if !done {
		t.Fatal("session never finished")
	}
	// The walk stops at the hop budget: we must not see reports beyond
	// MaxHops.
	for _, rep := range reports {
		if rep.Hop > 2 {
			t.Fatalf("report beyond MaxHops: %+v", rep)
		}
	}
}

func TestTracerouteOnDoneFires(t *testing.T) {
	f := newEngineFixture(t, 3, 15, 37)
	done := 0
	err := f.trs[0].Start(TrOptions{Dst: 3, RouterPort: routing.GeographicPort},
		nil, func() { done++ })
	if err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 10*time.Second)
	if done != 1 {
		t.Fatalf("onDone fired %d times", done)
	}
}

func TestTracerouteConcurrentSessions(t *testing.T) {
	// Sessions from two different sources share intermediate nodes;
	// segment keys include the source so they must not collide.
	f := newEngineFixture(t, 4, 15, 38)
	var fromA, fromB []TrHopReport
	doneA, doneB := false, false
	if err := f.trs[0].Start(TrOptions{Dst: 4, RouterPort: routing.GeographicPort},
		func(r TrHopReport) { fromA = append(fromA, r) }, func() { doneA = true }); err != nil {
		t.Fatal(err)
	}
	if err := f.trs[3].Start(TrOptions{Dst: 1, RouterPort: routing.GeographicPort},
		func(r TrHopReport) { fromB = append(fromB, r) }, func() { doneB = true }); err != nil {
		t.Fatal(err)
	}
	f.eng.RunUntil(f.eng.Now() + 15*time.Second)
	if !doneA || !doneB {
		t.Fatalf("sessions incomplete: a=%v b=%v", doneA, doneB)
	}
	okA, okB := false, false
	for _, r := range fromA {
		if r.Final && !r.Lost {
			okA = true
		}
	}
	for _, r := range fromB {
		if r.Final && !r.Lost {
			okB = true
		}
	}
	if !okA || !okB {
		t.Fatalf("concurrent traceroutes: a final=%v b final=%v (%d/%d reports)", okA, okB, len(fromA), len(fromB))
	}
}

func TestPingEngineSubscriptionConflict(t *testing.T) {
	f := newEngineFixture(t, 2, 5, 39)
	if _, err := NewPingEngine(f.eng, f.nodes[0], nil); err == nil {
		t.Fatal("second ping engine on the same node accepted")
	}
	if _, err := NewTracerouteEngine(f.eng, f.nodes[0], nil); err == nil {
		t.Fatal("second traceroute engine on the same node accepted")
	}
}
