// Package core implements LiteView, the paper's contribution: an
// interactive, application-independent toolkit for end-user diagnosis of
// communication paths in sensor networks.
//
// The toolkit has two halves joined by a reliable one-hop exchange
// protocol:
//
//   - a command interpreter on the management workstation (package
//     core's Workstation type), which translates user commands into
//     radio messages, tracks session context, and formats replies; and
//   - a runtime controller on every node (Controller), a process that
//     executes commands by calling kernel system calls, reconfiguring
//     the radio, reading the neighbor table, and spawning the ping and
//     traceroute command processes.
//
// The ping and traceroute engines live in this package too: they are
// individual processes subscribing to their own stack ports, so they
// work over any routing protocol selected at runtime by port number.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"liteview/internal/phys"
)

// Well-known stack ports used by LiteView.
const (
	// ControllerPort carries interpreter↔controller management traffic.
	ControllerPort byte = 3
	// PingPort is the ping command's process-to-process port.
	PingPort byte = 20
	// TraceroutePort is the traceroute command's port.
	TraceroutePort byte = 21
)

// Kind identifies a management message type. Each user command
// translates into "a sequence of radio messages [where] each message
// header corresponds to one unique type".
type Kind byte

const (
	kindInvalid Kind = iota
	// Commands (interpreter → controller).
	KindRadioGet
	KindSetPower
	KindSetChannel
	KindNbrList
	KindNbrBlacklist
	KindNbrUpdate
	KindPing
	KindTraceroute
	KindLogCtl
	KindLogDump
	KindStatsGet
	KindEnergyGet
	KindFsList
	// Replies (controller → interpreter).
	KindRadioInfo
	KindStatus
	KindNbrEntry
	KindPingResult
	KindPingHops
	KindTrHopReport
	KindLogEntry
	KindNodeStats
	KindRouterStats
	KindEnergyStats
	KindFsEntry
)

func (k Kind) String() string {
	names := map[Kind]string{
		KindRadioGet: "radio-get", KindSetPower: "set-power",
		KindSetChannel: "set-channel", KindNbrList: "nbr-list",
		KindNbrBlacklist: "nbr-blacklist", KindNbrUpdate: "nbr-update",
		KindPing: "ping", KindTraceroute: "traceroute",
		KindRadioInfo: "radio-info", KindStatus: "status",
		KindNbrEntry: "nbr-entry", KindPingResult: "ping-result",
		KindPingHops: "ping-hops", KindTrHopReport: "tr-hop-report",
		KindLogCtl: "log-ctl", KindLogDump: "log-dump",
		KindLogEntry: "log-entry", KindStatsGet: "stats-get",
		KindNodeStats: "node-stats", KindRouterStats: "router-stats",
		KindEnergyGet: "energy-get", KindEnergyStats: "energy-stats",
		KindFsList: "fs-list", KindFsEntry: "fs-entry",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// Status codes in KindStatus replies.
const (
	StatusOK byte = iota
	StatusErr
	StatusBadParam
	StatusUnknownNeighbor
	StatusBusy
	// StatusNoRoute reports that the carrying routing protocol had no
	// path toward the requested destination (appended after the original
	// codes; the enum is append-only like Kind).
	StatusNoRoute
)

// ErrShortMessage reports a truncated wire message.
var ErrShortMessage = errors.New("core: short message")

// writer is a tiny append-only binary encoder (big endian).
type writer struct{ b []byte }

func (w *writer) u8(v byte)          { w.b = append(w.b, v) }
func (w *writer) u16(v uint16)       { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32)       { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *writer) i8(v int8)          { w.b = append(w.b, byte(v)) }
func (w *writer) node(v phys.NodeID) { w.u16(uint16(v)) }
func (w *writer) str(s string) {
	if len(s) > 255 {
		s = s[:255]
	}
	w.u8(byte(len(s)))
	w.b = append(w.b, s...)
}

// reader is the matching decoder; it sticks an error and returns zeros
// afterwards so call sites stay linear.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() bool { return r.err != nil }
func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.b) {
		r.err = ErrShortMessage
		return false
	}
	return true
}
func (r *reader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}
func (r *reader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}
func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}
func (r *reader) i8() int8          { return int8(r.u8()) }
func (r *reader) node() phys.NodeID { return phys.NodeID(r.u16()) }
func (r *reader) str() string {
	n := int(r.u8())
	if !r.need(n) {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// Command is a decoded management command.
type Command struct {
	Kind Kind
	// SetPower / SetChannel argument.
	Value int
	// Target neighbor for blacklist operations.
	Target phys.NodeID
	// On is the blacklist direction (add vs remove).
	On bool
	// PeriodMs is the beacon period for KindNbrUpdate.
	PeriodMs uint32
	// Ping/traceroute parameters.
	Dst        phys.NodeID
	Rounds     int
	Length     int
	RouterPort byte
	// Retries is the per-hop probe retry budget for traceroute. On the
	// wire it travels as retries+1, so a decoded command always carries
	// the actual budget and zero still means "protocol default".
	Retries int
	// WithLink selects neighbor listing with or without link info.
	WithLink bool
	// Count bounds KindLogDump replies.
	Count int
	// Path selects the directory for KindFsList.
	Path string
}

// EncodeCommand serialises a command message.
func EncodeCommand(c Command) []byte {
	var w writer
	w.u8(byte(c.Kind))
	switch c.Kind {
	case KindRadioGet:
	case KindSetPower, KindSetChannel:
		w.u8(byte(c.Value))
	case KindNbrList:
		if c.WithLink {
			w.u8(1)
		} else {
			w.u8(0)
		}
	case KindNbrBlacklist:
		w.node(c.Target)
		if c.On {
			w.u8(1)
		} else {
			w.u8(0)
		}
	case KindNbrUpdate:
		w.u32(c.PeriodMs)
	case KindPing, KindTraceroute:
		w.node(c.Dst)
		w.u8(byte(c.Rounds))
		w.u8(byte(c.Length))
		w.u8(c.RouterPort)
		if c.Kind == KindTraceroute {
			w.u8(byte(c.Retries + 1))
		}
	case KindLogCtl:
		if c.On {
			w.u8(1)
		} else {
			w.u8(0)
		}
	case KindLogDump:
		w.u8(byte(c.Count))
	case KindStatsGet, KindEnergyGet:
	case KindFsList:
		w.str(c.Path)
	}
	return w.b
}

// DecodeCommand parses a command message.
func DecodeCommand(data []byte) (Command, error) {
	r := reader{b: data}
	c := Command{Kind: Kind(r.u8())}
	switch c.Kind {
	case KindRadioGet:
	case KindSetPower, KindSetChannel:
		c.Value = int(r.u8())
	case KindNbrList:
		c.WithLink = r.u8() != 0
	case KindNbrBlacklist:
		c.Target = r.node()
		c.On = r.u8() != 0
	case KindNbrUpdate:
		c.PeriodMs = r.u32()
	case KindPing, KindTraceroute:
		c.Dst = r.node()
		c.Rounds = int(r.u8())
		c.Length = int(r.u8())
		c.RouterPort = r.u8()
		if c.Kind == KindTraceroute {
			c.Retries = int(r.u8()) - 1
		}
	case KindLogCtl:
		c.On = r.u8() != 0
	case KindLogDump:
		c.Count = int(r.u8())
	case KindStatsGet, KindEnergyGet:
	case KindFsList:
		c.Path = r.str()
	default:
		return Command{}, fmt.Errorf("core: unknown command kind %d", c.Kind)
	}
	if r.fail() {
		return Command{}, r.err
	}
	return c, nil
}

// RadioInfo is the KindRadioInfo reply body.
type RadioInfo struct {
	Power   int
	Channel int
}

// EncodeRadioInfo serialises a radio configuration reply.
func EncodeRadioInfo(ri RadioInfo) []byte {
	var w writer
	w.u8(byte(KindRadioInfo))
	w.u8(byte(ri.Power))
	w.u8(byte(ri.Channel))
	return w.b
}

// Status is the generic command outcome reply.
type Status struct {
	Code byte
	Msg  string
}

// EncodeStatus serialises a status reply.
func EncodeStatus(s Status) []byte {
	var w writer
	w.u8(byte(KindStatus))
	w.u8(s.Code)
	w.str(s.Msg)
	return w.b
}

// NbrEntry is one neighbor table row in a KindNbrEntry reply.
type NbrEntry struct {
	ID         phys.NodeID
	Name       string
	LQI        uint8
	RSSI       int8
	PRRPercent uint8
	// DeliveryPercent is the kernel's unicast delivery estimate (EWMA of
	// MAC tx outcomes), carried alongside the beacon-based PRR.
	DeliveryPercent uint8
	Blacklisted     bool
	// Suspect reports that the delivery estimator condemned the link
	// after consecutive unicast failures.
	Suspect  bool
	WithLink bool
}

// EncodeNbrEntry serialises one neighbor row.
func EncodeNbrEntry(e NbrEntry) []byte {
	var w writer
	w.u8(byte(KindNbrEntry))
	w.node(e.ID)
	w.str(e.Name)
	var flags byte
	if e.Blacklisted {
		flags |= 1
	}
	if e.WithLink {
		flags |= 2
	}
	if e.Suspect {
		flags |= 4
	}
	w.u8(flags)
	if e.WithLink {
		w.u8(e.LQI)
		w.i8(e.RSSI)
		w.u8(e.PRRPercent)
		w.u8(e.DeliveryPercent)
	}
	return w.b
}

// PingResult is one round's outcome in a KindPingResult reply.
type PingResult struct {
	Seq     int
	Lost    bool
	RTT     uint32 // microseconds
	LQIFwd  uint8
	LQIBwd  uint8
	RSSIFwd int8
	RSSIBwd int8
	QFwd    uint8
	QBwd    uint8
	Power   uint8
	Channel uint8
	// HopQuality carries per-hop forward-then-backward padding records
	// for multi-hop pings (empty on single-hop).
	HopQuality []HopLQ
}

// HopLQ is one padded hop record surfaced to the user.
type HopLQ struct {
	LQI  uint8
	RSSI int8
	// Back marks records collected on the reply's return path.
	Back bool
}

// EncodePingResult serialises one ping round reply.
func EncodePingResult(p PingResult) []byte {
	var w writer
	w.u8(byte(KindPingResult))
	w.u8(byte(p.Seq))
	if p.Lost {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(p.RTT)
	w.u8(p.LQIFwd)
	w.u8(p.LQIBwd)
	w.i8(p.RSSIFwd)
	w.i8(p.RSSIBwd)
	w.u8(p.QFwd)
	w.u8(p.QBwd)
	w.u8(p.Power)
	w.u8(p.Channel)
	return w.b
}

// PingHops is a continuation reply carrying a chunk of per-hop quality
// records for one ping round: a multi-hop result with many hops does
// not fit a single 802.15.4 packet, so the controller streams the
// padding records in chunks after the round's KindPingResult.
type PingHops struct {
	Seq     int
	Back    bool
	Records []HopLQ
}

// PingHopsChunk bounds the records per continuation message so the
// message fits the payload ceiling.
const PingHopsChunk = 20

// EncodePingHops serialises one chunk of hop-quality records.
func EncodePingHops(h PingHops) []byte {
	var w writer
	w.u8(byte(KindPingHops))
	w.u8(byte(h.Seq))
	if h.Back {
		w.u8(1)
	} else {
		w.u8(0)
	}
	n := len(h.Records)
	if n > PingHopsChunk {
		n = PingHopsChunk
	}
	w.u8(byte(n))
	for _, rec := range h.Records[:n] {
		w.u8(rec.LQI)
		w.i8(rec.RSSI)
	}
	return w.b
}

// LogEntry is one node event-log record in a KindLogEntry reply.
type LogEntry struct {
	// AtMs is the event's virtual time in milliseconds since epoch.
	AtMs uint32
	// Tag classifies the event.
	Tag string
	// Msg is the event text.
	Msg string
}

// EncodeLogEntry serialises one event-log record.
func EncodeLogEntry(e LogEntry) []byte {
	var w writer
	w.u8(byte(KindLogEntry))
	w.u32(e.AtMs)
	w.str(e.Tag)
	w.str(e.Msg)
	return w.b
}

// NodeStats is the node-level half of a stats reply: link-layer and
// stack counters plus the memory budget — the raw material for finding
// "the hotspots of lost packets".
type NodeStats struct {
	UptimeMs     uint32
	MACSent      uint32
	MACReceived  uint32
	MACRetries   uint32
	MACNoAck     uint32
	MACCRCFail   uint32
	MACQueueDrop uint32
	StackDeliver uint32
	StackNoSub   uint32
	RAMUsed      uint16
	RAMFree      uint16
	QueueLen     uint8
}

// EncodeNodeStats serialises the node-level stats reply.
func EncodeNodeStats(n NodeStats) []byte {
	var w writer
	w.u8(byte(KindNodeStats))
	w.u32(n.UptimeMs)
	w.u32(n.MACSent)
	w.u32(n.MACReceived)
	w.u32(n.MACRetries)
	w.u32(n.MACNoAck)
	w.u32(n.MACCRCFail)
	w.u32(n.MACQueueDrop)
	w.u32(n.StackDeliver)
	w.u32(n.StackNoSub)
	w.u16(n.RAMUsed)
	w.u16(n.RAMFree)
	w.u8(n.QueueLen)
	return w.b
}

// RouterStats is one routing protocol's record in a stats reply,
// including the collection-tree parent when the protocol has one —
// "visibility on the way of routing tree construction".
type RouterStats struct {
	Port        byte
	Name        string
	Originated  uint32
	Forwarded   uint32
	Delivered   uint32
	NoRoute     uint32
	QueueDrops  uint32
	HasParent   bool
	Parent      phys.NodeID
	CostCentile uint16 // path cost ×100 when HasParent
}

// EncodeRouterStats serialises one protocol record.
func EncodeRouterStats(rs RouterStats) []byte {
	var w writer
	w.u8(byte(KindRouterStats))
	w.u8(rs.Port)
	w.str(rs.Name)
	w.u32(rs.Originated)
	w.u32(rs.Forwarded)
	w.u32(rs.Delivered)
	w.u32(rs.NoRoute)
	w.u32(rs.QueueDrops)
	if rs.HasParent {
		w.u8(1)
		w.node(rs.Parent)
		w.u16(rs.CostCentile)
	} else {
		w.u8(0)
	}
	return w.b
}

// EnergyStats is a node's battery account in a KindEnergyStats reply.
// Energies travel in microjoules (saturating at ~4.3 kJ per state,
// about a day of always-on listening), durations in milliseconds, and
// the battery level in tenths of a percent — every field fits 32 bits
// as a mote would want.
type EnergyStats struct {
	TXuJ, RXuJ, OffuJ      uint32
	TXms, RXms, Offms      uint32
	RemainingPermille      uint16
	EstimatedLifetimeHours uint32
	HasLifetime            bool
}

// EncodeEnergyStats serialises a battery report.
func EncodeEnergyStats(e EnergyStats) []byte {
	var w writer
	w.u8(byte(KindEnergyStats))
	w.u32(e.TXuJ)
	w.u32(e.RXuJ)
	w.u32(e.OffuJ)
	w.u32(e.TXms)
	w.u32(e.RXms)
	w.u32(e.Offms)
	w.u16(e.RemainingPermille)
	if e.HasLifetime {
		w.u8(1)
		w.u32(e.EstimatedLifetimeHours)
	} else {
		w.u8(0)
	}
	return w.b
}

// FsEntry is one row of a node's LiteOS file-tree listing — the "every
// node is a directory" view LiteOS gives the shell. Directories have
// Dir set; file sizes are bytes (flash for images, RAM for processes).
type FsEntry struct {
	Name string
	Size uint32
	Dir  bool
}

// EncodeFsEntry serialises one listing row.
func EncodeFsEntry(e FsEntry) []byte {
	var w writer
	w.u8(byte(KindFsEntry))
	w.str(e.Name)
	w.u32(e.Size)
	if e.Dir {
		w.u8(1)
	} else {
		w.u8(0)
	}
	return w.b
}

// TrHopReport is one traceroute hop's report.
type TrHopReport struct {
	Hop     int
	From    phys.NodeID // the probed node ("Reply from ...")
	Lost    bool
	RTT     uint32 // microseconds, measured at the probing hop
	LQIFwd  uint8
	LQIBwd  uint8
	RSSIFwd int8
	RSSIBwd int8
	QFwd    uint8
	QBwd    uint8
	Final   bool // the probed node is the traceroute destination
}

// EncodeTrHopReport serialises one traceroute hop report.
func EncodeTrHopReport(t TrHopReport) []byte {
	var w writer
	w.u8(byte(KindTrHopReport))
	w.u8(byte(t.Hop))
	w.node(t.From)
	var flags byte
	if t.Lost {
		flags |= 1
	}
	if t.Final {
		flags |= 2
	}
	w.u8(flags)
	w.u32(t.RTT)
	w.u8(t.LQIFwd)
	w.u8(t.LQIBwd)
	w.i8(t.RSSIFwd)
	w.i8(t.RSSIBwd)
	w.u8(t.QFwd)
	w.u8(t.QBwd)
	return w.b
}

// Reply is a decoded controller reply of any kind.
type Reply struct {
	Kind     Kind
	Radio    RadioInfo
	Status   Status
	Nbr      NbrEntry
	Ping     PingResult
	PingHops PingHops
	TrHop    TrHopReport
	Log      LogEntry
	Node     NodeStats
	Router   RouterStats
	Energy   EnergyStats
	Fs       FsEntry
}

// DecodeReply parses any controller reply message.
func DecodeReply(data []byte) (Reply, error) {
	r := reader{b: data}
	rep := Reply{Kind: Kind(r.u8())}
	switch rep.Kind {
	case KindRadioInfo:
		rep.Radio.Power = int(r.u8())
		rep.Radio.Channel = int(r.u8())
	case KindStatus:
		rep.Status.Code = r.u8()
		rep.Status.Msg = r.str()
	case KindNbrEntry:
		rep.Nbr.ID = r.node()
		rep.Nbr.Name = r.str()
		flags := r.u8()
		rep.Nbr.Blacklisted = flags&1 != 0
		rep.Nbr.WithLink = flags&2 != 0
		rep.Nbr.Suspect = flags&4 != 0
		if rep.Nbr.WithLink {
			rep.Nbr.LQI = r.u8()
			rep.Nbr.RSSI = r.i8()
			rep.Nbr.PRRPercent = r.u8()
			rep.Nbr.DeliveryPercent = r.u8()
		}
	case KindPingResult:
		rep.Ping.Seq = int(r.u8())
		rep.Ping.Lost = r.u8() != 0
		rep.Ping.RTT = r.u32()
		rep.Ping.LQIFwd = r.u8()
		rep.Ping.LQIBwd = r.u8()
		rep.Ping.RSSIFwd = r.i8()
		rep.Ping.RSSIBwd = r.i8()
		rep.Ping.QFwd = r.u8()
		rep.Ping.QBwd = r.u8()
		rep.Ping.Power = r.u8()
		rep.Ping.Channel = r.u8()
	case KindPingHops:
		rep.PingHops.Seq = int(r.u8())
		rep.PingHops.Back = r.u8() != 0
		n := int(r.u8())
		for i := 0; i < n; i++ {
			rec := HopLQ{LQI: r.u8(), RSSI: r.i8(), Back: rep.PingHops.Back}
			rep.PingHops.Records = append(rep.PingHops.Records, rec)
		}
	case KindLogEntry:
		rep.Log.AtMs = r.u32()
		rep.Log.Tag = r.str()
		rep.Log.Msg = r.str()
	case KindNodeStats:
		rep.Node.UptimeMs = r.u32()
		rep.Node.MACSent = r.u32()
		rep.Node.MACReceived = r.u32()
		rep.Node.MACRetries = r.u32()
		rep.Node.MACNoAck = r.u32()
		rep.Node.MACCRCFail = r.u32()
		rep.Node.MACQueueDrop = r.u32()
		rep.Node.StackDeliver = r.u32()
		rep.Node.StackNoSub = r.u32()
		rep.Node.RAMUsed = r.u16()
		rep.Node.RAMFree = r.u16()
		rep.Node.QueueLen = r.u8()
	case KindFsEntry:
		rep.Fs.Name = r.str()
		rep.Fs.Size = r.u32()
		rep.Fs.Dir = r.u8() != 0
	case KindEnergyStats:
		rep.Energy.TXuJ = r.u32()
		rep.Energy.RXuJ = r.u32()
		rep.Energy.OffuJ = r.u32()
		rep.Energy.TXms = r.u32()
		rep.Energy.RXms = r.u32()
		rep.Energy.Offms = r.u32()
		rep.Energy.RemainingPermille = r.u16()
		if r.u8() != 0 {
			rep.Energy.HasLifetime = true
			rep.Energy.EstimatedLifetimeHours = r.u32()
		}
	case KindRouterStats:
		rep.Router.Port = r.u8()
		rep.Router.Name = r.str()
		rep.Router.Originated = r.u32()
		rep.Router.Forwarded = r.u32()
		rep.Router.Delivered = r.u32()
		rep.Router.NoRoute = r.u32()
		rep.Router.QueueDrops = r.u32()
		if r.u8() != 0 {
			rep.Router.HasParent = true
			rep.Router.Parent = r.node()
			rep.Router.CostCentile = r.u16()
		}
	case KindTrHopReport:
		rep.TrHop.Hop = int(r.u8())
		rep.TrHop.From = r.node()
		flags := r.u8()
		rep.TrHop.Lost = flags&1 != 0
		rep.TrHop.Final = flags&2 != 0
		rep.TrHop.RTT = r.u32()
		rep.TrHop.LQIFwd = r.u8()
		rep.TrHop.LQIBwd = r.u8()
		rep.TrHop.RSSIFwd = r.i8()
		rep.TrHop.RSSIBwd = r.i8()
		rep.TrHop.QFwd = r.u8()
		rep.TrHop.QBwd = r.u8()
	default:
		return Reply{}, fmt.Errorf("core: unknown reply kind %d", rep.Kind)
	}
	if r.fail() {
		return Reply{}, r.err
	}
	return rep, nil
}
