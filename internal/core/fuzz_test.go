package core

import "testing"

// FuzzDecodeCommand hardens the management command parser: hostile
// bytes on the control port must never panic the controller.
func FuzzDecodeCommand(f *testing.F) {
	f.Add(EncodeCommand(Command{Kind: KindPing, Dst: 9, Rounds: 1, Length: 32, RouterPort: 10}))
	f.Add(EncodeCommand(Command{Kind: KindNbrBlacklist, Target: 3, On: true}))
	f.Add([]byte{})
	f.Add([]byte{200, 1, 2})
	f.Fuzz(func(t *testing.T, raw []byte) {
		cmd, err := DecodeCommand(raw)
		if err != nil {
			return
		}
		// Accepted commands re-encode without panicking; the wire form
		// need not match byte-for-byte (trailing garbage is tolerated),
		// but a re-decode of the re-encode must agree.
		re := EncodeCommand(cmd)
		cmd2, err := DecodeCommand(re)
		if err != nil {
			t.Fatalf("re-encoded command rejected: %v", err)
		}
		if cmd2 != cmd {
			t.Fatalf("round-trip drift: %+v vs %+v", cmd2, cmd)
		}
	})
}

// FuzzDecodeReply hardens the interpreter against hostile reply bytes.
func FuzzDecodeReply(f *testing.F) {
	f.Add(EncodeStatus(Status{Code: StatusOK, Msg: "ok"}))
	f.Add(EncodePingResult(PingResult{Seq: 1, RTT: 4700}))
	f.Add(EncodeTrHopReport(TrHopReport{Hop: 2, From: 3, Final: true}))
	f.Add(EncodeNbrEntry(NbrEntry{ID: 5, Name: "192.168.0.5", WithLink: true, LQI: 100}))
	f.Add(EncodeEnergyStats(EnergyStats{TXuJ: 1, RXuJ: 2, HasLifetime: true, EstimatedLifetimeHours: 3}))
	f.Add([]byte{})
	f.Add([]byte{255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		_, _ = DecodeReply(raw) // must not panic
	})
}
