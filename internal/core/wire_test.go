package core

import (
	"testing"
	"testing/quick"
)

func TestCommandRoundTrips(t *testing.T) {
	cases := []Command{
		{Kind: KindRadioGet},
		{Kind: KindSetPower, Value: 25},
		{Kind: KindSetChannel, Value: 17},
		{Kind: KindNbrList, WithLink: true},
		{Kind: KindNbrList, WithLink: false},
		{Kind: KindNbrBlacklist, Target: 0x0203, On: true},
		{Kind: KindNbrBlacklist, Target: 7, On: false},
		{Kind: KindNbrUpdate, PeriodMs: 1500},
		{Kind: KindPing, Dst: 9, Rounds: 3, Length: 32, RouterPort: 10},
		{Kind: KindTraceroute, Dst: 3, Rounds: 1, Length: 32, RouterPort: 10},
	}
	for _, c := range cases {
		raw := EncodeCommand(c)
		got, err := DecodeCommand(raw)
		if err != nil {
			t.Fatalf("%v: %v", c.Kind, err)
		}
		if got != c {
			t.Fatalf("round trip %v: got %+v, want %+v", c.Kind, got, c)
		}
	}
}

func TestDecodeCommandRejectsGarbage(t *testing.T) {
	if _, err := DecodeCommand(nil); err == nil {
		t.Fatal("empty command accepted")
	}
	if _, err := DecodeCommand([]byte{200}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := DecodeCommand([]byte{byte(KindPing), 1}); err == nil {
		t.Fatal("truncated ping command accepted")
	}
}

func TestRadioInfoRoundTrip(t *testing.T) {
	raw := EncodeRadioInfo(RadioInfo{Power: 31, Channel: 17})
	rep, err := DecodeReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindRadioInfo || rep.Radio.Power != 31 || rep.Radio.Channel != 17 {
		t.Fatalf("reply = %+v", rep)
	}
}

func TestStatusRoundTrip(t *testing.T) {
	raw := EncodeStatus(Status{Code: StatusBusy, Msg: "command in progress"})
	rep, err := DecodeReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindStatus || rep.Status.Code != StatusBusy || rep.Status.Msg != "command in progress" {
		t.Fatalf("reply = %+v", rep)
	}
}

func TestNbrEntryRoundTrip(t *testing.T) {
	e := NbrEntry{ID: 5, Name: "192.168.0.5", LQI: 107, RSSI: -12, PRRPercent: 97,
		DeliveryPercent: 83, Suspect: true, Blacklisted: true, WithLink: true}
	rep, err := DecodeReply(EncodeNbrEntry(e))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nbr != e {
		t.Fatalf("got %+v, want %+v", rep.Nbr, e)
	}
	// Without link info the quality fields are not carried.
	e2 := NbrEntry{ID: 6, Name: "192.168.0.6"}
	rep2, err := DecodeReply(EncodeNbrEntry(e2))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Nbr.WithLink || rep2.Nbr.LQI != 0 {
		t.Fatalf("no-link entry carried link data: %+v", rep2.Nbr)
	}
}

func TestPingResultRoundTrip(t *testing.T) {
	p := PingResult{
		Seq: 2, RTT: 4700, LQIFwd: 108, LQIBwd: 106, RSSIFwd: -1, RSSIBwd: 8,
		QFwd: 0, QBwd: 0, Power: 31, Channel: 17,
	}
	rep, err := DecodeReply(EncodePingResult(p))
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Ping
	if got.Seq != p.Seq || got.RTT != p.RTT || got.LQIFwd != p.LQIFwd ||
		got.RSSIBwd != p.RSSIBwd || got.Power != p.Power || got.Channel != p.Channel {
		t.Fatalf("got %+v", got)
	}
	lost := PingResult{Seq: 1, Lost: true}
	rep2, _ := DecodeReply(EncodePingResult(lost))
	if !rep2.Ping.Lost {
		t.Fatal("lost flag dropped")
	}
}

func TestPingHopsRoundTrip(t *testing.T) {
	h := PingHops{Seq: 3, Back: true, Records: []HopLQ{{LQI: 105, RSSI: -3, Back: true}, {LQI: 101, RSSI: -9, Back: true}}}
	rep, err := DecodeReply(EncodePingHops(h))
	if err != nil {
		t.Fatal(err)
	}
	got := rep.PingHops
	if got.Seq != 3 || !got.Back || len(got.Records) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got.Records[0] != h.Records[0] || got.Records[1] != h.Records[1] {
		t.Fatalf("records %+v", got.Records)
	}
	// Chunk bound enforced on encode: message stays within one packet.
	big := PingHops{Seq: 1, Records: make([]HopLQ, 40)}
	raw := EncodePingHops(big)
	rep2, err := DecodeReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.PingHops.Records) != PingHopsChunk {
		t.Fatalf("chunk = %d, want %d", len(rep2.PingHops.Records), PingHopsChunk)
	}
	if len(raw) > 56 {
		t.Fatalf("chunk message %d bytes exceeds the transfer limit", len(raw))
	}
}

func TestTrHopReportRoundTrip(t *testing.T) {
	r := TrHopReport{Hop: 3, From: 4, RTT: 4900, LQIFwd: 106, LQIBwd: 107, RSSIFwd: 1, RSSIBwd: 2, QFwd: 0, QBwd: 0, Final: true}
	rep, err := DecodeReply(EncodeTrHopReport(r))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrHop != r {
		t.Fatalf("got %+v, want %+v", rep.TrHop, r)
	}
	lost := TrHopReport{Hop: 1, From: 2, Lost: true}
	rep2, _ := DecodeReply(EncodeTrHopReport(lost))
	if !rep2.TrHop.Lost || rep2.TrHop.Final {
		t.Fatalf("flags wrong: %+v", rep2.TrHop)
	}
}

func TestDecodeReplyRejectsGarbage(t *testing.T) {
	if _, err := DecodeReply(nil); err == nil {
		t.Fatal("empty reply accepted")
	}
	if _, err := DecodeReply([]byte{255}); err == nil {
		t.Fatal("unknown reply kind accepted")
	}
	if _, err := DecodeReply([]byte{byte(KindPingResult), 1}); err == nil {
		t.Fatal("truncated reply accepted")
	}
}

func TestReaderWriterProperty(t *testing.T) {
	prop := func(a uint8, b uint16, c uint32, d int8, s string) bool {
		if len(s) > 200 {
			s = s[:200]
		}
		var w writer
		w.u8(a)
		w.u16(b)
		w.u32(c)
		w.i8(d)
		w.str(s)
		r := reader{b: w.b}
		return r.u8() == a && r.u16() == b && r.u32() == c && r.i8() == d && r.str() == s && !r.fail()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderShortInput(t *testing.T) {
	r := reader{b: []byte{1}}
	r.u32()
	if !r.fail() {
		t.Fatal("short read not flagged")
	}
	// After failure every read returns zero without panicking.
	if r.u8() != 0 || r.u16() != 0 || r.str() != "" {
		t.Fatal("post-failure reads not zeroed")
	}
}

func TestWriterStringTruncation(t *testing.T) {
	var w writer
	long := make([]byte, 300)
	w.str(string(long))
	r := reader{b: w.b}
	if got := r.str(); len(got) != 255 {
		t.Fatalf("string truncated to %d, want 255", len(got))
	}
}

func TestKindString(t *testing.T) {
	if KindPing.String() != "ping" || KindTrHopReport.String() != "tr-hop-report" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should format")
	}
}
