package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// Per-node circuit breaker around the command interpreter. A node that
// repeatedly fails to acknowledge command transfers is almost certainly
// crashed, out of range, or jammed; burning a full response window (and
// a full retransmission ladder of airtime) on every further command
// punishes the user and the channel alike. After BreakerThreshold
// consecutive command failures the breaker opens and commands to that
// node fail immediately with ErrBreakerOpen; once BreakerCooldown of
// virtual time has passed, the next command is admitted as a half-open
// probe — success closes the breaker, another failure re-opens it for a
// fresh cooldown.
//
// The state machine itself is the reusable Breaker type: clock-agnostic
// (the caller supplies Now, virtual or wall), so the same three-state
// lifecycle guards both the workstation's per-node command path and the
// service layer's per-tenant admission control (internal/serve).

// BreakerState is the classic three-state circuit-breaker lifecycle.
type BreakerState int

const (
	// BreakerClosed: commands flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: commands fail fast with ErrBreakerOpen.
	BreakerOpen
	// BreakerHalfOpen: one probe command is in flight; its outcome
	// decides between closed and another open period.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Breaker defaults.
const (
	// DefaultBreakerThreshold is how many consecutive command failures
	// open the breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long an open breaker rejects
	// commands before admitting a half-open probe.
	DefaultBreakerCooldown = 2 * time.Second
)

// ErrBreakerOpen reports a command rejected without transmission
// because the circuit breaker guarding its target is open.
var ErrBreakerOpen = errors.New("core: circuit breaker open (node repeatedly unreachable)")

// Breaker is one three-state circuit breaker. Threshold consecutive
// recorded failures open it; after Cooldown (measured on the caller's
// clock) the next Allow admits a half-open probe whose Record outcome
// decides between closed and a fresh open period. Threshold <= 0
// disables the breaker entirely. The zero value (with a Now clock) is a
// closed breaker. Not safe for concurrent use; callers that share one
// across goroutines must lock around Allow/Record.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker.
	Threshold int
	// Cooldown is how long an open breaker rejects before probing.
	Cooldown sim.Time
	// Now supplies the clock (virtual or wall) the cooldown is measured
	// on. A nil Now pins the clock at zero, which still opens and closes
	// correctly but never times out an open period — always set it.
	Now func() sim.Time

	state    BreakerState
	fails    int // consecutive failures
	openedAt sim.Time
}

func (b *Breaker) now() sim.Time {
	if b.Now == nil {
		return 0
	}
	return b.Now()
}

// State returns the current lifecycle state.
func (b *Breaker) State() BreakerState { return b.state }

// Fails returns the current consecutive-failure count.
func (b *Breaker) Fails() int { return b.fails }

// RetryIn returns how much time remains before an open breaker admits
// its half-open probe (0 unless the state is BreakerOpen).
func (b *Breaker) RetryIn() sim.Time {
	if b.state != BreakerOpen {
		return 0
	}
	if wait := b.openedAt + b.Cooldown - b.now(); wait > 0 {
		return wait
	}
	return 0
}

// Allow gates one command. It returns an ErrBreakerOpen-wrapping error
// while the breaker is open and inside its cooldown; once the cooldown
// has passed the breaker moves to half-open and the command proceeds as
// the probe.
func (b *Breaker) Allow() error {
	if b.Threshold <= 0 || b.state != BreakerOpen {
		return nil
	}
	if wait := b.openedAt + b.Cooldown - b.now(); wait > 0 {
		return fmt.Errorf("%w: retry in %v", ErrBreakerOpen, time.Duration(wait))
	}
	b.state = BreakerHalfOpen
	return nil
}

// Record folds one command outcome into the breaker: success closes it
// and clears the failure streak; failure extends the streak and opens
// the breaker at the threshold (immediately when half-open — a failed
// probe buys a fresh cooldown).
func (b *Breaker) Record(ok bool) {
	if b.Threshold <= 0 {
		return
	}
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= b.Threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// Reset returns the breaker to closed with no failure history.
func (b *Breaker) Reset() {
	b.state = BreakerClosed
	b.fails = 0
}

// BreakerInfo is one node's breaker state for display (shell `health`).
type BreakerInfo struct {
	Node  phys.NodeID
	State BreakerState
	// Fails is the current consecutive-failure count.
	Fails int
	// RetryIn is how much virtual time remains before an open breaker
	// admits its half-open probe (0 unless State is BreakerOpen).
	RetryIn sim.Time
}

// ConfigureBreaker tunes the command circuit breaker. threshold <= 0
// disables it entirely; cooldown <= 0 keeps the current cooldown.
func (w *Workstation) ConfigureBreaker(threshold int, cooldown sim.Time) {
	w.breakerThreshold = threshold
	if cooldown > 0 {
		w.breakerCooldown = cooldown
	}
	if threshold <= 0 {
		w.breakers = make(map[phys.NodeID]*Breaker)
	}
}

// Breakers reports every node with a non-closed breaker or a non-zero
// failure streak, sorted by node ID.
func (w *Workstation) Breakers() []BreakerInfo {
	out := make([]BreakerInfo, 0, len(w.breakers))
	for id, b := range w.breakers {
		if b.State() == BreakerClosed && b.Fails() == 0 {
			continue
		}
		out = append(out, breakerInfo(id, b))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// BreakerFor reports one node's breaker state.
func (w *Workstation) BreakerFor(node phys.NodeID) BreakerInfo {
	b, ok := w.breakers[node]
	if !ok {
		return BreakerInfo{Node: node, State: BreakerClosed}
	}
	return breakerInfo(node, b)
}

func breakerInfo(node phys.NodeID, b *Breaker) BreakerInfo {
	return BreakerInfo{Node: node, State: b.State(), Fails: b.Fails(), RetryIn: b.RetryIn()}
}

// nodeBreaker returns node's breaker, creating it on first use with the
// workstation's current tuning and virtual clock.
func (w *Workstation) nodeBreaker(node phys.NodeID) *Breaker {
	b, ok := w.breakers[node]
	if !ok {
		b = &Breaker{Threshold: w.breakerThreshold, Cooldown: w.breakerCooldown, Now: w.eng.Now}
		w.breakers[node] = b
	}
	return b
}

// breakerAllow gates one command (see Breaker.Allow), tagging the
// rejection with the node it protects.
func (w *Workstation) breakerAllow(node phys.NodeID) error {
	if w.breakerThreshold <= 0 {
		return nil
	}
	b, ok := w.breakers[node]
	if !ok {
		return nil
	}
	if err := b.Allow(); err != nil {
		return fmt.Errorf("node %d: %w", node, err)
	}
	return nil
}

// breakerRecord folds one command outcome into the node's breaker.
// Healthy nodes carry no entry at all — success drops the breaker from
// the map so the table only ever holds trouble. State transitions are
// published to telemetry so a live fleet view can mark nodes whose
// management link the interpreter has given up on.
func (w *Workstation) breakerRecord(node phys.NodeID, ok bool) {
	if w.breakerThreshold <= 0 {
		return
	}
	if ok {
		if b, exists := w.breakers[node]; exists {
			if b.State() != BreakerClosed {
				w.tel.Emit(node, telemetry.LayerController, "breaker-close")
			}
			delete(w.breakers, node)
		}
		return
	}
	b := w.nodeBreaker(node)
	before := b.State()
	b.Record(false)
	if before != BreakerOpen && b.State() == BreakerOpen {
		w.tel.Emit(node, telemetry.LayerController, "breaker-open",
			telemetry.Int("fails", b.Fails()))
	}
}
