package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"liteview/internal/phys"
	"liteview/internal/sim"
)

// Per-node circuit breaker around the command interpreter. A node that
// repeatedly fails to acknowledge command transfers is almost certainly
// crashed, out of range, or jammed; burning a full response window (and
// a full retransmission ladder of airtime) on every further command
// punishes the user and the channel alike. After BreakerThreshold
// consecutive command failures the breaker opens and commands to that
// node fail immediately with ErrBreakerOpen; once BreakerCooldown of
// virtual time has passed, the next command is admitted as a half-open
// probe — success closes the breaker, another failure re-opens it for a
// fresh cooldown.

// BreakerState is the classic three-state circuit-breaker lifecycle.
type BreakerState int

const (
	// BreakerClosed: commands flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: commands fail fast with ErrBreakerOpen.
	BreakerOpen
	// BreakerHalfOpen: one probe command is in flight; its outcome
	// decides between closed and another open period.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Breaker defaults.
const (
	// DefaultBreakerThreshold is how many consecutive command failures
	// open the breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long an open breaker rejects
	// commands before admitting a half-open probe.
	DefaultBreakerCooldown = 2 * time.Second
)

// ErrBreakerOpen reports a command rejected without transmission
// because the node's circuit breaker is open.
var ErrBreakerOpen = errors.New("core: circuit breaker open (node repeatedly unreachable)")

// breaker is the per-node state.
type breaker struct {
	state    BreakerState
	fails    int // consecutive failures
	openedAt sim.Time
}

// BreakerInfo is one node's breaker state for display (shell `health`).
type BreakerInfo struct {
	Node  phys.NodeID
	State BreakerState
	// Fails is the current consecutive-failure count.
	Fails int
	// RetryIn is how much virtual time remains before an open breaker
	// admits its half-open probe (0 unless State is BreakerOpen).
	RetryIn sim.Time
}

// ConfigureBreaker tunes the command circuit breaker. threshold <= 0
// disables it entirely; cooldown <= 0 keeps the current cooldown.
func (w *Workstation) ConfigureBreaker(threshold int, cooldown sim.Time) {
	w.breakerThreshold = threshold
	if cooldown > 0 {
		w.breakerCooldown = cooldown
	}
	if threshold <= 0 {
		w.breakers = make(map[phys.NodeID]*breaker)
	}
}

// Breakers reports every node with a non-closed breaker or a non-zero
// failure streak, sorted by node ID.
func (w *Workstation) Breakers() []BreakerInfo {
	out := make([]BreakerInfo, 0, len(w.breakers))
	for id, b := range w.breakers {
		if b.state == BreakerClosed && b.fails == 0 {
			continue
		}
		out = append(out, w.breakerInfo(id, b))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// BreakerFor reports one node's breaker state.
func (w *Workstation) BreakerFor(node phys.NodeID) BreakerInfo {
	b, ok := w.breakers[node]
	if !ok {
		return BreakerInfo{Node: node, State: BreakerClosed}
	}
	return w.breakerInfo(node, b)
}

func (w *Workstation) breakerInfo(node phys.NodeID, b *breaker) BreakerInfo {
	info := BreakerInfo{Node: node, State: b.state, Fails: b.fails}
	if b.state == BreakerOpen {
		if wait := b.openedAt + w.breakerCooldown - w.eng.Now(); wait > 0 {
			info.RetryIn = wait
		}
	}
	return info
}

// breakerAllow gates one command. It returns ErrBreakerOpen while the
// breaker is open and inside its cooldown; once the cooldown has passed
// the breaker moves to half-open and the command proceeds as the probe.
func (w *Workstation) breakerAllow(node phys.NodeID) error {
	if w.breakerThreshold <= 0 {
		return nil
	}
	b, ok := w.breakers[node]
	if !ok || b.state != BreakerOpen {
		return nil
	}
	if wait := b.openedAt + w.breakerCooldown - w.eng.Now(); wait > 0 {
		return fmt.Errorf("%w: node %d, retry in %v", ErrBreakerOpen, node, time.Duration(wait))
	}
	b.state = BreakerHalfOpen
	return nil
}

// breakerRecord folds one command outcome into the node's breaker.
func (w *Workstation) breakerRecord(node phys.NodeID, ok bool) {
	if w.breakerThreshold <= 0 {
		return
	}
	b := w.breakers[node]
	if ok {
		if b != nil {
			delete(w.breakers, node)
		}
		return
	}
	if b == nil {
		b = &breaker{}
		w.breakers[node] = b
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= w.breakerThreshold {
		b.state = BreakerOpen
		b.openedAt = w.eng.Now()
	}
}
