package core_test

import (
	"fmt"
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/fault"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

// The chaos suite drives every management command through every fault
// class and asserts the robustness contract: commands terminate inside
// their response windows, failures come back as explicit verdicts
// rather than hangs or silence, recovery works after the fault window,
// no timers leak, and the same seed replays the same outcome.

// drainIdle stops every recurring event source and runs the engine dry;
// anything still pending afterwards is a leaked timer.
func drainIdle(t *testing.T, tb *testbed.Testbed) {
	t.Helper()
	for _, n := range tb.Nodes {
		n.Neighbors().Stop()
	}
	tb.Run(60 * time.Second)
	if p := tb.Eng.Pending(); p != 0 {
		t.Fatalf("%d leaked timer(s) after drain", p)
	}
}

// runBoundedPing runs a ping and fails the test if it overruns a
// generous-but-finite bound or comes back without a verdict.
func runBoundedPing(t *testing.T, tb *testbed.Testbed, ws *core.Workstation, node phys.NodeID, opts core.PingOptions) (*core.PingOutput, error) {
	t.Helper()
	start := tb.Eng.Now()
	out, err := ws.Ping(node, opts)
	elapsed := tb.Eng.Now() - start
	limit := 2*time.Second + time.Duration(opts.Rounds)*500*time.Millisecond
	if elapsed > limit {
		t.Fatalf("ping ran %v, over the %v bound", elapsed, limit)
	}
	if out == nil {
		t.Fatal("ping returned nil output")
	}
	if out.Verdict == "" {
		t.Fatal("ping returned no verdict")
	}
	return out, err
}

func runBoundedTraceroute(t *testing.T, tb *testbed.Testbed, ws *core.Workstation, node phys.NodeID, opts core.TrOptions) (*core.TracerouteOutput, error) {
	t.Helper()
	start := tb.Eng.Now()
	out, err := ws.Traceroute(node, opts)
	elapsed := tb.Eng.Now() - start
	if limit := 12 * time.Second; elapsed > limit {
		t.Fatalf("traceroute ran %v, over the %v bound", elapsed, limit)
	}
	if out == nil {
		t.Fatal("traceroute returned nil output")
	}
	if out.Verdict == "" {
		t.Fatal("traceroute returned no verdict")
	}
	return out, err
}

func TestChaosNodeCrash(t *testing.T) {
	tb, ws := deploy(t, 5, 20, 11)
	inj := tb.FaultInjector()
	if _, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.NodeCrash, Node: 3}); err != nil {
		t.Fatal(err)
	}
	// Multihop ping to the crashed node: explicit failure.
	out, err := runBoundedPing(t, tb, ws, 1, core.PingOptions{Dst: 3, Rounds: 2, Length: 32,
		RouterPort: routing.GeographicPort})
	if err == nil && out.Lost == 0 {
		t.Fatalf("ping to crashed node succeeded: %q", out.Verdict)
	}
	// Traceroute across the crash names the failing hop.
	tr, _ := runBoundedTraceroute(t, tb, ws, 1, core.TrOptions{Dst: 5, Length: 32,
		RouterPort: routing.GeographicPort})
	if tr.FailedHop == 0 {
		t.Fatalf("traceroute did not report the broken hop: %q", tr.Verdict)
	}
	// Commands to live nodes still work.
	if _, err := ws.NeighborList(1, true); err != nil {
		t.Fatalf("neighbor list on live node: %v", err)
	}
	if err := ws.SetPower(2, 25); err != nil {
		t.Fatalf("power set on live node: %v", err)
	}
	// Management commands to the crashed node fail but terminate.
	if _, err := ws.NeighborList(3, true); err == nil {
		t.Fatal("neighbor list on crashed node succeeded")
	}
	if err := ws.SetPower(3, 25); err == nil {
		t.Fatal("power set on crashed node succeeded")
	}
	drainIdle(t, tb)
}

func TestChaosCrashRebootRecovery(t *testing.T) {
	tb, ws := deploy(t, 3, 18, 12)
	inj := tb.FaultInjector()
	if _, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.NodeCrash, Node: 2,
		Duration: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second) // past the crash window and re-registration
	if !tb.Node(1).Alive() {
		t.Fatal("node did not reboot")
	}
	out, err := runBoundedPing(t, tb, ws, 1, core.PingOptions{Dst: 2, Rounds: 1, Length: 32})
	if err != nil || out.Lost != 0 {
		t.Fatalf("ping after reboot: err=%v verdict=%q", err, out.Verdict)
	}
	// The rebooted node answers its own management commands again.
	if _, err := ws.NeighborList(2, true); err != nil {
		t.Fatalf("neighbor list after reboot: %v", err)
	}
	if err := ws.SetChannel(2, 17); err != nil {
		t.Fatalf("channel set after reboot: %v", err)
	}
	// The reboot shows in the stats: uptime restarted at the reboot,
	// far below the deployment's age (warm-up plus the run above).
	st, err := ws.Stats(2)
	if err != nil {
		t.Fatal(err)
	}
	if age := uint32(tb.Eng.Now() / time.Millisecond); st.Node.UptimeMs >= age {
		t.Fatalf("uptime %d ms did not reset (deployment age %d ms)", st.Node.UptimeMs, age)
	}
	drainIdle(t, tb)
}

func TestChaosLinkBlackoutAndResume(t *testing.T) {
	tb, ws := deploy(t, 3, 18, 13)
	inj := tb.FaultInjector()
	if _, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.LinkBlackout, A: 1, B: 2,
		Duration: 3 * time.Second}); err != nil {
		t.Fatal(err)
	}
	out, err := runBoundedPing(t, tb, ws, 1, core.PingOptions{Dst: 2, Rounds: 2, Length: 32})
	if err == nil && out.Lost == 0 {
		t.Fatalf("ping across blacked-out link succeeded: %q", out.Verdict)
	}
	tb.Run(4 * time.Second) // let the blackout lapse
	out, err = runBoundedPing(t, tb, ws, 1, core.PingOptions{Dst: 2, Rounds: 1, Length: 32})
	if err != nil || out.Lost != 0 {
		t.Fatalf("ping after blackout lapsed: err=%v verdict=%q", err, out.Verdict)
	}
	drainIdle(t, tb)
}

func TestChaosCorruptBurst(t *testing.T) {
	tb, ws := deploy(t, 3, 18, 14)
	inj := tb.FaultInjector()
	if _, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.CorruptBurst, Node: 2,
		Prob: 0.9}); err != nil {
		t.Fatal(err)
	}
	// Several rounds: with 90% burst corruption at the receiver some
	// rounds may still squeak through on MAC retries, but the command
	// must terminate and the corruption must show up in the counters.
	out, _ := runBoundedPing(t, tb, ws, 1, core.PingOptions{Dst: 2, Rounds: 3, Length: 32})
	if out.Sent != 3 {
		t.Fatalf("accounted rounds = %d", out.Sent)
	}
	if st := tb.Node(1).MAC().Stats(); st.CRCFailures == 0 {
		t.Fatal("burst corruption left no CRC-failure evidence")
	}
	drainIdle(t, tb)
}

func TestChaosJamEveryCommandTerminates(t *testing.T) {
	tb, ws := deploy(t, 3, 18, 15)
	inj := tb.FaultInjector()
	if _, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.Jam}); err != nil {
		t.Fatal(err)
	}
	if out, err := runBoundedPing(t, tb, ws, 1, core.PingOptions{Dst: 2, Rounds: 1, Length: 32}); err == nil {
		t.Fatalf("ping under jamming succeeded: %q", out.Verdict)
	}
	if tr, err := runBoundedTraceroute(t, tb, ws, 1, core.TrOptions{Dst: 3, Length: 32,
		RouterPort: routing.GeographicPort}); err == nil {
		t.Fatalf("traceroute under jamming succeeded: %q", tr.Verdict)
	}
	if _, err := ws.NeighborList(1, true); err == nil {
		t.Fatal("neighbor list under jamming succeeded")
	}
	if err := ws.SetPower(1, 25); err == nil {
		t.Fatal("power set under jamming succeeded")
	}
	drainIdle(t, tb)
}

func TestChaosPartition(t *testing.T) {
	tb, ws := deploy(t, 5, 20, 16)
	inj := tb.FaultInjector()
	if _, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.Partition,
		Group: []phys.NodeID{4, 5}}); err != nil {
		t.Fatal(err)
	}
	tr, _ := runBoundedTraceroute(t, tb, ws, 1, core.TrOptions{Dst: 5, Length: 32,
		RouterPort: routing.GeographicPort})
	if tr.FailedHop == 0 {
		t.Fatalf("traceroute across the partition did not break: %q", tr.Verdict)
	}
	// Inside the main segment everything still works.
	out, err := runBoundedPing(t, tb, ws, 1, core.PingOptions{Dst: 2, Rounds: 1, Length: 32})
	if err != nil || out.Lost != 0 {
		t.Fatalf("ping inside main segment: err=%v verdict=%q", err, out.Verdict)
	}
	drainIdle(t, tb)
}

// TestChaosSameSeedSameOutcome replays an identical (topology, seed,
// fault schedule) run and requires identical command outcomes.
func TestChaosSameSeedSameOutcome(t *testing.T) {
	run := func() string {
		tb, ws := deploy(t, 5, 20, 17)
		inj := tb.FaultInjector()
		if _, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.CorruptBurst, Node: 2,
			Prob: 0.7, Duration: 5 * time.Second}); err != nil {
			t.Fatal(err)
		}
		if _, err := inj.Schedule(fault.Fault{At: inj.Now() + 2*time.Second, Kind: fault.NodeCrash,
			Node: 4, Duration: 2 * time.Second}); err != nil {
			t.Fatal(err)
		}
		var log string
		p, perr := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 3, Length: 32})
		log += fmt.Sprintf("ping err=%v verdict=%q delay=%v lost=%d\n", perr, p.Verdict, p.ResponseDelay, p.Lost)
		tr, terr := ws.Traceroute(1, core.TrOptions{Dst: 5, Length: 32, RouterPort: routing.GeographicPort})
		log += fmt.Sprintf("tr err=%v verdict=%q delay=%v failed=%d\n", terr, tr.Verdict, tr.ResponseDelay, tr.FailedHop)
		for _, rep := range tr.Reports {
			log += fmt.Sprintf("hop %d from %d lost=%v rtt=%d at=%v\n", rep.Hop, rep.From, rep.Lost, rep.RTT, rep.At)
		}
		return log
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different outcomes:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}
