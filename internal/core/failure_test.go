package core_test

import (
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

// The paper's abstract: "it allows users to identify broken links ...
// which are likely to become traffic bottlenecks". These tests inject
// failures and assert the toolkit localises them.

func TestTracerouteLocalizesDeadNode(t *testing.T) {
	tb, ws := deploy(t, 5, 20, 21)
	// Node 3 dies after discovery (battery out): radio off.
	tb.Node(2).Radio().SetState(radio.Off)
	out, err := ws.Traceroute(1, core.TrOptions{Dst: 5, Length: 32, RouterPort: routing.GeographicPort, MaxHops: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) == 0 {
		t.Fatal("no reports at all")
	}
	last := out.Reports[len(out.Reports)-1]
	if !last.Lost {
		t.Fatalf("dead node not flagged: %+v", last)
	}
	// The lost hop must point at the dead node: its predecessor probed
	// it and timed out.
	if last.From != 3 {
		t.Fatalf("lost hop points at %d, want the dead node 3", last.From)
	}
	// Hops before the break report normally.
	for _, rep := range out.Reports[:len(out.Reports)-1] {
		if rep.Lost {
			t.Fatalf("hop %d before the break reported lost", rep.Hop)
		}
	}
}

func TestPingDetectsDeadDestination(t *testing.T) {
	tb, ws := deploy(t, 2, 5, 22)
	tb.Node(1).Radio().SetState(radio.Off)
	out, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 3, Length: 32})
	if err != nil {
		t.Fatal(err)
	}
	if out.Lost != 3 || out.Received != 0 {
		t.Fatalf("dead destination: %+v", out)
	}
}

func TestBlacklistBreaksThenRestoresPath(t *testing.T) {
	// On a line with no alternative relay, blacklisting the only next
	// hop must break the path (traceroute shows it), and removing the
	// blacklist must restore it — the interactive observe-adjust-observe
	// loop the paper advocates.
	tb, ws := deploy(t, 4, 20, 23)
	_ = tb
	// Node 1 hears node 2 (strong) and node 3 (marginal, 40 m); the
	// router falls back to marginal links rather than strand traffic,
	// so stranding node 1 requires blacklisting both.
	if err := ws.Blacklist(1, 2, true); err != nil {
		t.Fatal(err)
	}
	if err := ws.Blacklist(1, 3, true); err != nil {
		t.Fatal(err)
	}
	_, err := ws.Traceroute(1, core.TrOptions{Dst: 4, Length: 32, RouterPort: routing.GeographicPort})
	if err == nil {
		t.Fatal("traceroute succeeded with every forward neighbor blacklisted")
	}
	if err := ws.Blacklist(1, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := ws.Blacklist(1, 3, false); err != nil {
		t.Fatal(err)
	}
	out, err := ws.Traceroute(1, core.TrOptions{Dst: 4, Length: 32, RouterPort: routing.GeographicPort})
	if err != nil {
		t.Fatal(err)
	}
	last := out.Reports[len(out.Reports)-1]
	if !last.Final || last.From != 4 {
		t.Fatalf("path did not recover: %+v", last)
	}
}

func TestLogCommands(t *testing.T) {
	_, ws := deploy(t, 2, 5, 24)
	// Logging is off by default: a ping leaves no trace.
	if _, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	entries, err := ws.LogDump(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("disabled log has %d entries", len(entries))
	}
	// Enable, ping, dump: the ping trail appears.
	if err := ws.LogControl(1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 2}); err != nil {
		t.Fatal(err)
	}
	entries, err = ws.LogDump(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	foundPing, foundController := false, false
	for _, e := range entries {
		if e.Tag == "ping" {
			foundPing = true
		}
		if e.Tag == "controller" {
			foundController = true
		}
	}
	if !foundPing || !foundController {
		t.Fatalf("log lacks expected trails: %+v", entries)
	}
	// Bounded dump returns exactly the newest entries. (The dump
	// command itself logs a controller event, so the tail moves between
	// dumps; asserting on the count and the tag suffices.)
	two, err := ws.LogDump(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Fatalf("bounded dump returned %d", len(two))
	}
	if two[len(two)-1].Tag != "controller" {
		t.Fatalf("newest entry should be the dump command's own trail, got %+v", two[len(two)-1])
	}
	// Disable again.
	if err := ws.LogControl(1, false); err != nil {
		t.Fatal(err)
	}
}

func TestGroupRadioGet(t *testing.T) {
	opt := testbed.DefaultOptions(25)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Grid(3, 3, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(10 * time.Second)
	ws, _ := tb.NewWorkstation(phys.Position{X: 8, Y: 8})
	// Skew one node's settings so the survey is informative.
	tb.Node(4).Radio().SetPowerLevel(10)
	got, err := ws.GroupRadioGet(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 7 {
		t.Fatalf("only %d/9 nodes answered", len(got))
	}
	if ri, ok := got[5]; ok && ri.Power != 10 {
		t.Fatalf("node 5 reported power %d, want 10", ri.Power)
	}
}

func TestChannelPartitionIsolation(t *testing.T) {
	// Nodes on different channels cannot hear each other at all: moving
	// a node to another channel removes it from its old neighborhood
	// over time and from reachability immediately.
	tb, ws := deploy(t, 2, 5, 26)
	if err := ws.SetChannel(2, 24); err != nil {
		t.Fatal(err)
	}
	out, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 2, Length: 16})
	if err != nil {
		t.Fatal(err)
	}
	if out.Received != 0 {
		t.Fatalf("cross-channel ping delivered %d", out.Received)
	}
	_ = tb
}

func TestWorkstationWalk(t *testing.T) {
	// The management protocol is one-hop: a distant node is
	// unreachable until the operator walks over.
	tb, ws := deploy(t, 4, 30, 27)
	if _, err := ws.RadioGet(4); err == nil {
		t.Fatal("command to a node 90 m away succeeded")
	}
	ws.MoveTo(tb.Node(3).Position())
	if _, err := ws.RadioGet(4); err != nil {
		t.Fatalf("command after walking over: %v", err)
	}
	if ws.Position() != tb.Node(3).Position() {
		t.Fatal("position not updated")
	}
}
