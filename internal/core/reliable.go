package core

import (
	"errors"
	"fmt"
	"time"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/stack"
	"liteview/internal/telemetry"
)

// This file implements the paper's reliable one-hop message exchange
// protocol between the command interpreter and the runtime controllers:
//
//   - commands that fit one packet use one acknowledgement combined
//     with a timeout;
//   - commands translated into a sequence of packets operate in
//     batches, one acknowledgement per batch, with the batch size
//     adjusted dynamically to link quality (smaller batches when
//     packets are more likely to get lost);
//   - lost packets are detected on the receiving side through missing
//     sequence numbers (the cumulative ack names the next expected
//     sequence number);
//   - when a group of nodes answers the same command, each waits a
//     random backoff before sending so responses do not collide.

// Envelope kinds on ControllerPort.
const (
	envData byte = 0
	envAck  byte = 1
)

// envFlagAckReq asks the receiver to acknowledge upon this message (set
// on the last message of each batch).
const envFlagAckReq byte = 1 << 0

// envelope layout: kind(1) xferID(2) seq(2) total(2) flags(1) payload.
const envHeaderLen = 8

// ReliableConfig tunes the exchange protocol.
type ReliableConfig struct {
	// AckTimeout is how long the sender waits for a batch ack.
	AckTimeout sim.Time
	// MaxRetries bounds retransmission rounds per transfer.
	MaxRetries int
	// InitBatch, MaxBatch bound the adaptive batch size.
	InitBatch, MaxBatch int
	// FixedBatch disables the dynamic batch-size adjustment (ablation
	// D3): the window stays at InitBatch regardless of loss.
	FixedBatch bool
	// GroupBackoffMax is the random delay range for group responses.
	GroupBackoffMax sim.Time
	// RetryBackoff is the extra delay inserted before the first
	// retransmission round, doubling on every consecutive retry up to
	// RetryBackoffCap. It keeps retry rounds from hammering a peer that
	// is rebooting or a channel that is jammed. Zero selects a default
	// scaled to AckTimeout; a negative value disables the backoff.
	RetryBackoff sim.Time
	// RetryBackoffCap caps the exponential growth of RetryBackoff
	// (zero selects a default scaled to AckTimeout).
	RetryBackoffCap sim.Time
}

// DefaultReliableConfig returns parameters tuned for one-hop exchanges
// inside the paper's 500 ms command response window.
func DefaultReliableConfig() ReliableConfig {
	return ReliableConfig{
		AckTimeout:      60 * time.Millisecond,
		MaxRetries:      4,
		InitBatch:       2,
		MaxBatch:        8,
		GroupBackoffMax: 300 * time.Millisecond,
	}
}

// ErrXferFailed reports a transfer abandoned after MaxRetries.
var ErrXferFailed = errors.New("core: reliable transfer failed")

// ErrAckTimeout is the ErrXferFailed variant for the common failure
// mode: every retransmission window elapsed without an acknowledgement.
// It wraps ErrXferFailed, so errors.Is(err, ErrXferFailed) keeps
// matching; callers that care can distinguish it from other transfer
// failures (and from ErrBreakerOpen / ErrNoRoute) with errors.Is.
var ErrAckTimeout = fmt.Errorf("%w: no acknowledgement", ErrXferFailed)

// Transient reports whether err is a transient delivery failure — a
// reliable-transfer loss that a later retry may well succeed at — as
// opposed to a structural refusal (no route toward the destination, an
// open circuit breaker) that retrying cannot fix. The service edge uses
// this to decide what to surface to operators as retryable.
func Transient(err error) bool {
	return errors.Is(err, ErrXferFailed)
}

// MessageFunc receives one in-order message of a transfer. broadcast
// reports that the message arrived in a frame addressed to everyone
// (the receiver should apply a group backoff before replying).
type MessageFunc func(from phys.NodeID, payload []byte, info medium.RxInfo, broadcast bool)

// ReliableStats counts protocol events.
type ReliableStats struct {
	DataSent        uint64
	Retransmissions uint64
	AcksSent        uint64
	AcksReceived    uint64
	Duplicates      uint64
	Failures        uint64
	Completed       uint64
}

type outXfer struct {
	to      phys.NodeID
	id      uint16
	msgs    [][]byte
	base    int // first unacked message
	batch   int
	retries int
	timer   *sim.Event
	done    func(error)
}

type inKey struct {
	from phys.NodeID
	id   uint16
}

type inXfer struct {
	nextExpected int
	total        int
	pending      map[int][]byte
}

// Endpoint is one side of the exchange protocol (the interpreter's
// workstation or a node's runtime controller both embed one).
type Endpoint struct {
	eng    *sim.Engine
	st     *stack.Stack
	rng    *sim.Rand
	cfg    ReliableConfig
	onMsg  MessageFunc
	nextID uint16
	out    map[uint32]*outXfer
	in     map[inKey]*inXfer
	inQ    []inKey
	stats  ReliableStats
	// tel, when set, receives reliable-exchange telemetry events.
	tel *telemetry.Recorder
}

// SetTelemetry points the endpoint at a telemetry recorder (nil
// detaches).
func (e *Endpoint) SetTelemetry(rec *telemetry.Recorder) { e.tel = rec }

const inCacheSize = 64

// NewEndpoint subscribes the exchange protocol on ControllerPort of st.
func NewEndpoint(eng *sim.Engine, st *stack.Stack, cfg ReliableConfig, onMsg MessageFunc) (*Endpoint, error) {
	if onMsg == nil {
		return nil, errors.New("core: nil message callback")
	}
	if cfg.AckTimeout <= 0 || cfg.InitBatch < 1 || cfg.MaxBatch < cfg.InitBatch {
		return nil, fmt.Errorf("core: invalid reliable config %+v", cfg)
	}
	// Backoff defaults scale with the ack timeout so fast-test configs
	// (millisecond timeouts) stay fast and the default 60 ms timeout
	// still finishes a full failed transfer inside the paper's 500 ms
	// command window: 5×60 ms of timeouts + 10+20+40+60 ms of backoff.
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = cfg.AckTimeout / 6
	} else if cfg.RetryBackoff < 0 {
		cfg.RetryBackoff = 0
	}
	if cfg.RetryBackoffCap == 0 {
		cfg.RetryBackoffCap = cfg.AckTimeout
	} else if cfg.RetryBackoffCap < 0 {
		cfg.RetryBackoffCap = 0
	}
	e := &Endpoint{
		eng:   eng,
		st:    st,
		rng:   eng.Rand().Fork(fmt.Sprintf("reliable-%d", st.NodeID())),
		cfg:   cfg,
		onMsg: onMsg,
		out:   make(map[uint32]*outXfer),
		in:    make(map[inKey]*inXfer),
	}
	if err := st.Subscribe(ControllerPort, e.onPacket); err != nil {
		return nil, err
	}
	return e, nil
}

// Stats returns a snapshot of the protocol counters.
func (e *Endpoint) Stats() ReliableStats { return e.stats }

// GroupBackoff returns a random response delay for group operations.
func (e *Endpoint) GroupBackoff() sim.Time {
	return e.rng.Jitter(e.cfg.GroupBackoffMax)
}

// Send starts a reliable transfer of msgs to the one-hop neighbor. The
// first window goes out after delay (pass GroupBackoff() when replying
// to a broadcast command, 0 otherwise). done is called with nil on full
// acknowledgement or ErrXferFailed after MaxRetries; it may be nil.
func (e *Endpoint) Send(to phys.NodeID, msgs [][]byte, delay sim.Time, done func(error)) error {
	if len(msgs) == 0 {
		return errors.New("core: empty transfer")
	}
	if len(msgs) > 0xFFFF {
		return errors.New("core: transfer too large")
	}
	for _, m := range msgs {
		if envHeaderLen+len(m) > stack.PayloadCeiling {
			return fmt.Errorf("core: message of %d bytes exceeds payload ceiling", len(m))
		}
	}
	e.nextID++
	x := &outXfer{
		to:    to,
		id:    e.nextID,
		msgs:  msgs,
		batch: e.cfg.InitBatch,
		done:  done,
	}
	if to == phys.Broadcast {
		// Broadcast commands are fire-and-forget: per-receiver acks
		// would collide (that is exactly why responders use a group
		// backoff for their replies instead).
		e.eng.After(delay, func() {
			x.batch = len(x.msgs)
			e.sendWindow(x)
			e.stats.Completed++
			if x.done != nil {
				x.done(nil)
			}
		})
		return nil
	}
	e.out[outKey(to, x.id)] = x
	if e.tel.Recording() {
		e.tel.Emit(e.st.NodeID(), telemetry.LayerReliable, "xfer-start",
			telemetry.Node("to", to),
			telemetry.Int("id", int(x.id)),
			telemetry.Int("msgs", len(msgs)))
	}
	e.eng.After(delay, func() { e.sendWindow(x) })
	return nil
}

func outKey(to phys.NodeID, id uint16) uint32 { return uint32(to)<<16 | uint32(id) }

// sendWindow transmits msgs[base : base+batch), marking the last with
// an ack request, and arms the timeout.
func (e *Endpoint) sendWindow(x *outXfer) {
	end := x.base + x.batch
	if end > len(x.msgs) {
		end = len(x.msgs)
	}
	if e.tel.Recording() {
		e.tel.Emit(e.st.NodeID(), telemetry.LayerReliable, "window",
			telemetry.Node("to", x.to),
			telemetry.Int("id", int(x.id)),
			telemetry.Int("base", x.base),
			telemetry.Int("batch", end-x.base))
	}
	for i := x.base; i < end; i++ {
		var w writer
		w.u8(envData)
		w.u16(x.id)
		w.u16(uint16(i))
		w.u16(uint16(len(x.msgs)))
		if i == end-1 && x.to != phys.Broadcast {
			w.u8(envFlagAckReq)
		} else {
			w.u8(0)
		}
		w.b = append(w.b, x.msgs[i]...)
		p := &stack.Packet{
			Port:   ControllerPort,
			Origin: e.st.NodeID(),
			Dst:    x.to,
			TTL:    1,
			Flags:  stack.FlagControl,
			Data:   w.b,
		}
		// One-hop direct transmission; MAC queue overflow surfaces as a
		// lost packet and is repaired by the retransmission machinery.
		if err := e.st.Send(p, x.to, mac.TypeControl, nil); err == nil {
			e.stats.DataSent++
		}
	}
	if x.to != phys.Broadcast {
		e.armTimer(x)
	}
}

func (e *Endpoint) armTimer(x *outXfer) {
	if x.timer != nil {
		e.eng.Cancel(x.timer)
	}
	x.timer = e.eng.MustSchedule(e.cfg.AckTimeout, func() { e.onTimeout(x) })
}

func (e *Endpoint) onTimeout(x *outXfer) {
	if _, live := e.out[outKey(x.to, x.id)]; !live {
		return
	}
	x.retries++
	if x.retries > e.cfg.MaxRetries {
		e.stats.Failures++
		delete(e.out, outKey(x.to, x.id))
		if e.tel.Recording() {
			e.tel.Emit(e.st.NodeID(), telemetry.LayerReliable, "xfer-fail",
				telemetry.Node("to", x.to),
				telemetry.Int("id", int(x.id)),
				telemetry.Int("retries", x.retries-1))
		}
		if x.done != nil {
			x.done(fmt.Errorf("%w: to %d after %d retries", ErrAckTimeout, x.to, x.retries-1))
		}
		return
	}
	e.stats.Retransmissions++
	if e.tel.Recording() {
		e.tel.Emit(e.st.NodeID(), telemetry.LayerReliable, "retry",
			telemetry.Node("to", x.to),
			telemetry.Int("id", int(x.id)),
			telemetry.Int("retries", x.retries),
			telemetry.Int("batch", x.batch))
	}
	// Loss signal: shrink the batch ("a smaller batch size is preferred
	// when packets are more likely to get lost").
	if !e.cfg.FixedBatch {
		x.batch /= 2
		if x.batch < 1 {
			x.batch = 1
		}
	}
	// Capped exponential backoff before the retransmission round: a
	// peer that missed a whole window is likely rebooting or jammed, and
	// immediate resends would collide with whatever caused the loss. The
	// backoff event reuses x.timer, so an ack arriving meanwhile (a
	// straggler from the previous window) cancels it via armTimer.
	delay := e.retryDelay(x.retries)
	if delay <= 0 {
		e.sendWindow(x)
		return
	}
	x.timer = e.eng.MustSchedule(delay, func() {
		if _, live := e.out[outKey(x.to, x.id)]; !live {
			return
		}
		e.sendWindow(x)
	})
}

// retryDelay returns the backoff before retransmission round n (1-based).
func (e *Endpoint) retryDelay(n int) sim.Time {
	d := e.cfg.RetryBackoff
	if d <= 0 {
		return 0
	}
	for i := 1; i < n && d < e.cfg.RetryBackoffCap; i++ {
		d *= 2
	}
	if d > e.cfg.RetryBackoffCap {
		d = e.cfg.RetryBackoffCap
	}
	return d
}

// Reset abandons every transfer in flight without running completion
// callbacks — the power-failure path. The crashed side's peers still
// time out normally and surface ErrXferFailed to their callers.
func (e *Endpoint) Reset() {
	for _, x := range e.out {
		if x.timer != nil {
			e.eng.Cancel(x.timer)
			x.timer = nil
		}
	}
	e.out = make(map[uint32]*outXfer)
	e.in = make(map[inKey]*inXfer)
	e.inQ = nil
}

func (e *Endpoint) onPacket(p *stack.Packet, from phys.NodeID, info medium.RxInfo) {
	if len(p.Data) < 1 {
		return
	}
	switch p.Data[0] {
	case envData:
		e.onData(p.Data, from, info, p.Dst == phys.Broadcast)
	case envAck:
		e.onAck(p.Data, from)
	}
}

func (e *Endpoint) onAck(data []byte, from phys.NodeID) {
	r := reader{b: data}
	r.u8() // kind
	id := r.u16()
	nextExpected := int(r.u16())
	if r.fail() {
		return
	}
	x, ok := e.out[outKey(from, id)]
	if !ok {
		return
	}
	e.stats.AcksReceived++
	if e.tel.Recording() {
		e.tel.Emit(e.st.NodeID(), telemetry.LayerReliable, "ack-rx",
			telemetry.Node("from", from),
			telemetry.Int("id", int(id)),
			telemetry.Int("next", nextExpected))
	}
	if nextExpected > x.base {
		x.base = nextExpected
		x.retries = 0
		if x.base >= len(x.msgs) {
			// Transfer complete.
			if x.timer != nil {
				e.eng.Cancel(x.timer)
			}
			delete(e.out, outKey(from, id))
			e.stats.Completed++
			if e.tel.Recording() {
				e.tel.Emit(e.st.NodeID(), telemetry.LayerReliable, "xfer-done",
					telemetry.Node("to", x.to),
					telemetry.Int("id", int(id)),
					telemetry.Int("msgs", len(x.msgs)))
			}
			if x.done != nil {
				x.done(nil)
			}
			return
		}
		// Successful batch: grow additively.
		if !e.cfg.FixedBatch && x.batch < e.cfg.MaxBatch {
			x.batch++
		}
		e.sendWindow(x)
		return
	}
	// Duplicate or stale ack: the receiver is missing the window head;
	// resend immediately rather than waiting out the timer.
	e.stats.Retransmissions++
	if !e.cfg.FixedBatch {
		x.batch = 1
	}
	e.sendWindow(x)
}

func (e *Endpoint) onData(data []byte, from phys.NodeID, info medium.RxInfo, broadcast bool) {
	r := reader{b: data}
	r.u8() // kind
	id := r.u16()
	seq := int(r.u16())
	total := int(r.u16())
	flags := r.u8()
	if r.fail() || total == 0 || seq >= total {
		return
	}
	payload := data[envHeaderLen:]
	k := inKey{from: from, id: id}
	x, ok := e.in[k]
	if !ok {
		x = &inXfer{total: total, pending: make(map[int][]byte)}
		e.in[k] = x
		e.inQ = append(e.inQ, k)
		if len(e.inQ) > inCacheSize {
			old := e.inQ[0]
			e.inQ = e.inQ[1:]
			delete(e.in, old)
		}
	}
	var ready [][]byte
	switch {
	case seq == x.nextExpected:
		ready = append(ready, append([]byte(nil), payload...))
		x.nextExpected++
		for {
			buf, ok := x.pending[x.nextExpected]
			if !ok {
				break
			}
			delete(x.pending, x.nextExpected)
			ready = append(ready, buf)
			x.nextExpected++
		}
	case seq > x.nextExpected:
		if _, dup := x.pending[seq]; !dup {
			x.pending[seq] = append([]byte(nil), payload...)
		} else {
			e.stats.Duplicates++
		}
	default:
		e.stats.Duplicates++
	}
	// Acknowledge at batch boundaries and when the transfer is done —
	// but never for broadcast data, which is fire-and-forget. The ack
	// is queued BEFORE the handler runs: a command that reconfigures
	// the radio (set-channel) must not cut off its own acknowledgement.
	if !broadcast && (flags&envFlagAckReq != 0 || x.nextExpected >= x.total) {
		e.sendAck(from, id, x.nextExpected)
	}
	for _, msg := range ready {
		e.onMsg(from, msg, info, broadcast)
	}
}

func (e *Endpoint) sendAck(to phys.NodeID, id uint16, nextExpected int) {
	var w writer
	w.u8(envAck)
	w.u16(id)
	w.u16(uint16(nextExpected))
	p := &stack.Packet{
		Port:   ControllerPort,
		Origin: e.st.NodeID(),
		Dst:    to,
		TTL:    1,
		Flags:  stack.FlagControl,
		Data:   w.b,
	}
	if err := e.st.Send(p, to, mac.TypeControl, nil); err == nil {
		e.stats.AcksSent++
		if e.tel.Recording() {
			e.tel.Emit(e.st.NodeID(), telemetry.LayerReliable, "ack-tx",
				telemetry.Node("to", to),
				telemetry.Int("id", int(id)),
				telemetry.Int("next", nextExpected))
		}
	}
}
