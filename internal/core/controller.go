package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"liteview/internal/liteos"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/routing"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// Footprints of the LiteView binaries, as the paper reports them: the
// compiled ping image consumes 2148 bytes of flash and 278 bytes of
// static RAM; traceroute consumes 2820 and 272. The controller's own
// footprint is an estimate in the same ballpark (the paper does not
// report it separately).
var (
	// PingBinary is the ping command image.
	PingBinary = liteos.Binary{Name: "ping", Flash: 2148, RAM: 278}
	// TracerouteBinary is the traceroute command image.
	TracerouteBinary = liteos.Binary{Name: "traceroute", Flash: 2820, RAM: 272}
	// ControllerBinary is the runtime controller image.
	ControllerBinary = liteos.Binary{Name: "liteview-controller", Flash: 3200, RAM: 310}
)

// Controller is the node-side LiteView runtime controller: a process
// that coexists with user applications, executes management commands
// from the workstation, and spawns the ping/traceroute command
// processes.
type Controller struct {
	eng     *sim.Engine
	os      *liteos.Node
	ep      *Endpoint
	ping    *PingEngine
	tr      *TracerouteEngine
	routers RouterLookup
	busy    bool
	proc    *liteos.Process
	// tel, when set, receives controller-layer telemetry events.
	tel *telemetry.Recorder
}

// SetTelemetry points the controller (and its reliable endpoint) at a
// telemetry recorder (nil detaches).
func (c *Controller) SetTelemetry(rec *telemetry.Recorder) {
	c.tel = rec
	c.ep.SetTelemetry(rec)
}

// NewController installs the LiteView binaries on the node, starts the
// controller process, and brings up the command engines. routers
// resolves routing protocols by port at runtime.
func NewController(os *liteos.Node, routers RouterLookup) (*Controller, error) {
	if routers == nil {
		routers = func(byte) (*routing.Router, bool) { return nil, false }
	}
	eng := os.Engine()
	for _, b := range []liteos.Binary{ControllerBinary, PingBinary, TracerouteBinary} {
		if err := os.InstallBinary(b); err != nil {
			return nil, err
		}
	}
	// The controller itself runs for the node's lifetime.
	os.SysSetParamBuffer("")
	proc, err := os.StartProcess(ControllerBinary.Name)
	if err != nil {
		return nil, err
	}
	_ = proc
	c := &Controller{eng: eng, os: os, routers: routers}
	c.ep, err = NewEndpoint(eng, os.Stack(), DefaultReliableConfig(), c.handle)
	if err != nil {
		return nil, err
	}
	c.ping, err = NewPingEngine(eng, os, routers)
	if err != nil {
		return nil, err
	}
	c.tr, err = NewTracerouteEngine(eng, os, routers)
	if err != nil {
		return nil, err
	}
	// Crash/reboot lifecycle: a crash loses every in-flight command and
	// transfer; a reboot restarts the controller process and re-registers
	// on the management channel.
	os.OnCrash(c.onCrash)
	os.OnReboot(c.onReboot)
	return c, nil
}

// onCrash drops all RAM-resident controller state. The process itself
// was already killed by the kernel teardown.
func (c *Controller) onCrash() {
	c.ep.Reset()
	c.ping.Reset()
	c.tr.Reset()
	c.busy = false
	c.proc = nil
}

// onReboot re-registers the controller: the boot image restarts the
// controller process exactly as the node's first boot did.
func (c *Controller) onReboot() {
	c.os.SysSetParamBuffer("")
	if _, err := c.os.StartProcess(ControllerBinary.Name); err != nil {
		c.os.SysLogEvent("controller", "restart failed: %v", err)
		return
	}
	c.os.SysLogEvent("controller", "re-registered after reboot")
}

// Endpoint exposes the controller's reliable-protocol endpoint (for
// stats in tests and benchmarks).
func (c *Controller) Endpoint() *Endpoint { return c.ep }

// Ping exposes the node's ping engine (used directly by node-local
// diagnosis, e.g. a user logged into the node's shell).
func (c *Controller) Ping() *PingEngine { return c.ping }

// Traceroute exposes the node's traceroute engine.
func (c *Controller) Traceroute() *TracerouteEngine { return c.tr }

// handle executes one management command from the workstation.
func (c *Controller) handle(from phys.NodeID, payload []byte, info medium.RxInfo, broadcast bool) {
	cmd, err := DecodeCommand(payload)
	if err != nil {
		c.reply(from, broadcast, EncodeStatus(Status{Code: StatusBadParam, Msg: err.Error()}))
		return
	}
	c.os.SysLogEvent("controller", "command %v from %d", cmd.Kind, from)
	if c.tel.Recording() {
		c.tel.Emit(c.os.ID(), telemetry.LayerController, "command",
			telemetry.String("kind", cmd.Kind.String()),
			telemetry.Node("from", from))
	}
	switch cmd.Kind {
	case KindRadioGet:
		c.reply(from, broadcast, EncodeRadioInfo(RadioInfo{
			Power:   c.os.Radio().PowerLevel(),
			Channel: c.os.Radio().Channel(),
		}))
	case KindSetPower:
		if err := c.os.Radio().SetPowerLevel(cmd.Value); err != nil {
			c.reply(from, broadcast, EncodeStatus(Status{Code: StatusBadParam, Msg: err.Error()}))
			return
		}
		c.reply(from, broadcast, EncodeStatus(Status{Code: StatusOK}))
	case KindSetChannel:
		if cmd.Value < radio.MinChannel || cmd.Value > radio.MaxChannel {
			c.reply(from, broadcast, EncodeStatus(Status{Code: StatusBadParam,
				Msg: fmt.Sprintf("channel %d out of range", cmd.Value)}))
			return
		}
		// Confirm first, retune after the reply exchange completes —
		// otherwise the node vanishes from the management channel with
		// the acknowledgement still in its queue.
		ch := cmd.Value
		var delay sim.Time
		if broadcast {
			delay = c.ep.GroupBackoff()
		}
		err := c.ep.Send(from, [][]byte{EncodeStatus(Status{Code: StatusOK})}, delay, func(error) {
			if err := c.os.Radio().SetChannel(ch); err != nil {
				c.os.SysLogEvent("controller", "set channel: %v", err)
			}
		})
		if err != nil {
			c.os.SysLogEvent("controller", "set-channel reply failed: %v", err)
		}
	case KindNbrList:
		c.replyNeighborList(from, broadcast, cmd.WithLink)
	case KindNbrBlacklist:
		code := StatusOK
		msg := ""
		if err := c.os.SysNeighborTable().Blacklist(cmd.Target, cmd.On); err != nil {
			code, msg = StatusUnknownNeighbor, err.Error()
		}
		c.reply(from, broadcast, EncodeStatus(Status{Code: code, Msg: msg}))
	case KindNbrUpdate:
		if err := c.os.Neighbors().SetPeriod(sim.Time(cmd.PeriodMs) * time.Millisecond); err != nil {
			c.reply(from, broadcast, EncodeStatus(Status{Code: StatusBadParam, Msg: err.Error()}))
			return
		}
		c.reply(from, broadcast, EncodeStatus(Status{Code: StatusOK}))
	case KindPing:
		c.runPing(from, broadcast, cmd)
	case KindTraceroute:
		c.runTraceroute(from, broadcast, cmd)
	case KindLogCtl:
		if cmd.On {
			c.os.Log().Enable()
		} else {
			c.os.Log().Disable()
		}
		c.reply(from, broadcast, EncodeStatus(Status{Code: StatusOK}))
	case KindLogDump:
		c.replyLogDump(from, broadcast, cmd.Count)
	case KindStatsGet:
		c.replyStats(from, broadcast)
	case KindEnergyGet:
		c.replyEnergy(from, broadcast)
	case KindFsList:
		c.replyFsList(from, broadcast, cmd.Path)
	default:
		c.reply(from, broadcast, EncodeStatus(Status{Code: StatusBadParam, Msg: "unknown command"}))
	}
}

// reply sends messages back, applying the group backoff when the
// command was broadcast to many nodes.
func (c *Controller) reply(to phys.NodeID, broadcast bool, msgs ...[]byte) {
	var delay sim.Time
	if broadcast {
		delay = c.ep.GroupBackoff()
	}
	if err := c.ep.Send(to, msgs, delay, nil); err != nil {
		c.os.SysLogEvent("controller", "reply failed: %v", err)
	}
}

// replyNeighborList streams the kernel neighbor table as one batched
// transfer, terminated by a status message.
func (c *Controller) replyNeighborList(to phys.NodeID, broadcast, withLink bool) {
	var msgs [][]byte
	for _, e := range c.os.SysNeighborTable().Entries() {
		prr := int(e.PRR*100 + 0.5)
		if prr > 100 {
			prr = 100
		}
		name := e.Name
		if name == "" {
			// Overheard but not yet named by a beacon (e.g. the
			// management workstation itself).
			name = fmt.Sprintf("node-%d", e.ID)
		}
		msgs = append(msgs, EncodeNbrEntry(NbrEntry{
			ID:              e.ID,
			Name:            name,
			LQI:             uint8(clampInt(int(e.LQI+0.5), 0, 255)),
			RSSI:            int8(clampInt(int(e.RSSI), -128, 127)),
			PRRPercent:      uint8(prr),
			DeliveryPercent: uint8(clampInt(int(e.Delivery*100+0.5), 0, 100)),
			Blacklisted:     e.Blacklisted,
			Suspect:         e.Suspect,
			WithLink:        withLink,
		}))
	}
	msgs = append(msgs, EncodeStatus(Status{Code: StatusOK, Msg: fmt.Sprintf("%d neighbors", len(msgs))}))
	c.reply(to, broadcast, msgs...)
}

// replyStats reports the node's link/stack counters and one record per
// attached routing protocol.
func (c *Controller) replyStats(to phys.NodeID, broadcast bool) {
	ms := c.os.MAC().Stats()
	ss := c.os.Stack().Stats()
	node := NodeStats{
		UptimeMs:     uint32(c.os.Uptime() / time.Millisecond),
		MACSent:      uint32(ms.Sent),
		MACReceived:  uint32(ms.Received),
		MACRetries:   uint32(ms.FrameRetries),
		MACNoAck:     uint32(ms.NoAck),
		MACCRCFail:   uint32(ms.CRCFailures),
		MACQueueDrop: uint32(ms.QueueDrops),
		StackDeliver: uint32(ss.Delivered),
		StackNoSub:   uint32(ss.NoSubscriber),
		RAMUsed:      uint16(c.os.RAMUsed()),
		RAMFree:      uint16(c.os.RAMFree()),
		QueueLen:     uint8(c.os.MAC().QueueLen()),
	}
	msgs := [][]byte{EncodeNodeStats(node)}
	// Walk the port space for attached protocols: the lookup is the
	// only window the controller has (protocol independence).
	for port := 1; port < 256; port++ {
		rt, ok := c.routers(byte(port))
		if !ok || rt == nil || rt.Port() != byte(port) {
			continue
		}
		st := rt.Stats()
		rs := RouterStats{
			Port:       byte(port),
			Name:       rt.Name(),
			Originated: uint32(st.Originated),
			Forwarded:  uint32(st.Forwarded),
			Delivered:  uint32(st.Delivered),
			NoRoute:    uint32(st.DroppedNoRoute),
			QueueDrops: uint32(st.DroppedQueue),
		}
		if parent, cost, hasPath, isTree := routing.TreeState(rt); isTree && hasPath {
			rs.HasParent = true
			rs.Parent = parent
			cc := cost * 100
			if cc > 65535 {
				cc = 65535
			}
			rs.CostCentile = uint16(cc)
		}
		msgs = append(msgs, EncodeRouterStats(rs))
	}
	msgs = append(msgs, EncodeStatus(Status{Code: StatusOK}))
	c.reply(to, broadcast, msgs...)
}

// replyEnergy reports the node's battery account.
func (c *Controller) replyEnergy(to phys.NodeID, broadcast bool) {
	st := c.os.Energy().Stats()
	toUJ := func(j float64) uint32 {
		v := j * 1e6
		if v > float64(^uint32(0)) {
			return ^uint32(0)
		}
		return uint32(v)
	}
	es := EnergyStats{
		TXuJ:              toUJ(st.TXJ),
		RXuJ:              toUJ(st.RXJ),
		OffuJ:             toUJ(st.OffJ),
		TXms:              uint32(st.TXTime / time.Millisecond),
		RXms:              uint32(st.RXTime / time.Millisecond),
		Offms:             uint32(st.OffTime / time.Millisecond),
		RemainingPermille: uint16(c.os.Energy().RemainingFraction() * 1000),
	}
	if life, ok := c.os.Energy().EstimateLifetime(); ok {
		es.HasLifetime = true
		es.EstimatedLifetimeHours = uint32(life / time.Hour)
	}
	c.reply(to, broadcast, EncodeEnergyStats(es), EncodeStatus(Status{Code: StatusOK}))
}

// replyFsList renders the node's LiteOS file-tree view: /apps holds the
// installed images (size = flash), /proc the running processes (size =
// RAM), /dev the kernel devices.
func (c *Controller) replyFsList(to phys.NodeID, broadcast bool, path string) {
	var entries []FsEntry
	switch strings.Trim(path, "/") {
	case "":
		entries = []FsEntry{
			{Name: "apps", Dir: true},
			{Name: "proc", Dir: true},
			{Name: "dev", Dir: true},
		}
	case "apps":
		for _, name := range c.os.Binaries() {
			b, _ := c.os.BinaryInfo(name)
			entries = append(entries, FsEntry{Name: name, Size: uint32(b.Flash)})
		}
	case "proc":
		for _, pid := range c.os.Processes() {
			p, _ := c.os.Process(pid)
			b, _ := c.os.BinaryInfo(p.Binary)
			entries = append(entries, FsEntry{Name: fmt.Sprintf("%d-%s", pid, p.Binary), Size: uint32(b.RAM)})
		}
	case "dev":
		entries = []FsEntry{
			{Name: "radio"},
			{Name: "battery"},
			{Name: fmt.Sprintf("log(%d)", len(c.os.Log().Entries()))},
		}
	default:
		c.reply(to, broadcast, EncodeStatus(Status{Code: StatusBadParam,
			Msg: fmt.Sprintf("no such directory %q", path)}))
		return
	}
	msgs := make([][]byte, 0, len(entries)+1)
	for _, e := range entries {
		msgs = append(msgs, EncodeFsEntry(e))
	}
	msgs = append(msgs, EncodeStatus(Status{Code: StatusOK}))
	c.reply(to, broadcast, msgs...)
}

// replyLogDump streams the newest count event-log entries (all when
// count is zero) followed by a closing status.
func (c *Controller) replyLogDump(to phys.NodeID, broadcast bool, count int) {
	entries := c.os.Log().Entries()
	if count > 0 && len(entries) > count {
		entries = entries[len(entries)-count:]
	}
	msgs := make([][]byte, 0, len(entries)+1)
	for _, e := range entries {
		msgs = append(msgs, EncodeLogEntry(LogEntry{
			AtMs: uint32(e.At / time.Millisecond),
			Tag:  e.Tag,
			Msg:  e.Msg,
		}))
	}
	msgs = append(msgs, EncodeStatus(Status{Code: StatusOK, Msg: fmt.Sprintf("%d entries", len(entries))}))
	c.reply(to, broadcast, msgs...)
}

// startStatus classifies a command-start failure. Routing-layer "no
// path" errors get their own wire code so the interpreter can surface
// a typed ErrNoRoute — the management link worked; the network route
// did not — instead of a generic parameter error.
func startStatus(err error) Status {
	if errors.Is(err, routing.ErrNoRoute) || errors.Is(err, routing.ErrNoUnicastPath) {
		return Status{Code: StatusNoRoute, Msg: err.Error()}
	}
	return Status{Code: StatusBadParam, Msg: err.Error()}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// runPing spawns the ping command process and streams results back when
// all rounds complete.
func (c *Controller) runPing(from phys.NodeID, broadcast bool, cmd Command) {
	if c.busy {
		c.reply(from, broadcast, EncodeStatus(Status{Code: StatusBusy, Msg: "command in progress"}))
		return
	}
	// The interpreter's parameters reach the new process through the
	// kernel parameter buffer, via the dedicated system call.
	c.os.SysSetParamBuffer(fmt.Sprintf("%d round=%d length=%d port=%d", cmd.Dst, cmd.Rounds, cmd.Length, cmd.RouterPort))
	proc, err := c.os.StartProcess(PingBinary.Name)
	if err != nil {
		c.reply(from, broadcast, EncodeStatus(Status{Code: StatusErr, Msg: err.Error()}))
		return
	}
	opts := PingOptions{Dst: cmd.Dst, Rounds: cmd.Rounds, Length: cmd.Length, RouterPort: cmd.RouterPort}
	c.busy = true
	c.proc = proc
	err = c.ping.Start(opts, func(results []PingResult) {
		msgs := make([][]byte, 0, len(results)+1)
		for _, r := range results {
			if c.tel.Recording() {
				rttMs := float64(r.RTT) / 1000
				c.tel.Emit(c.os.ID(), telemetry.LayerController, "ping-result",
					telemetry.Node("dst", cmd.Dst),
					telemetry.Int("seq", r.Seq),
					telemetry.Bool("lost", r.Lost),
					telemetry.Float("rtt_ms", rttMs))
				if !r.Lost {
					c.tel.Metrics().Histogram("ping.rtt_ms", telemetry.DefaultRTTBucketsMs()).
						Observe(rttMs)
				}
			}
			msgs = append(msgs, EncodePingResult(r))
			// Per-hop padding records of multi-hop rounds ride in
			// continuation chunks: they do not fit one packet.
			var fwd, bwd []HopLQ
			for _, h := range r.HopQuality {
				if h.Back {
					bwd = append(bwd, h)
				} else {
					fwd = append(fwd, h)
				}
			}
			for off := 0; off < len(fwd); off += PingHopsChunk {
				end := min(off+PingHopsChunk, len(fwd))
				msgs = append(msgs, EncodePingHops(PingHops{Seq: r.Seq, Records: fwd[off:end]}))
			}
			for off := 0; off < len(bwd); off += PingHopsChunk {
				end := min(off+PingHopsChunk, len(bwd))
				msgs = append(msgs, EncodePingHops(PingHops{Seq: r.Seq, Back: true, Records: bwd[off:end]}))
			}
		}
		msgs = append(msgs, EncodeStatus(Status{Code: StatusOK, Msg: c.protocolName(cmd.RouterPort)}))
		c.reply(from, broadcast, msgs...)
		c.finishCommand()
	})
	if err != nil {
		c.finishCommand()
		c.reply(from, broadcast, EncodeStatus(startStatus(err)))
	}
}

// runTraceroute spawns the traceroute process; hop reports stream back
// one transfer each as they arrive at this (source) node, and a final
// status closes the command. Multi-round traceroutes (the paper's
// round= option) are driven by the interpreter issuing the command
// repeatedly — each walk is an independent session.
func (c *Controller) runTraceroute(from phys.NodeID, broadcast bool, cmd Command) {
	if c.busy {
		c.reply(from, broadcast, EncodeStatus(Status{Code: StatusBusy, Msg: "command in progress"}))
		return
	}
	c.os.SysSetParamBuffer(fmt.Sprintf("%d round=%d length=%d port=%d", cmd.Dst, cmd.Rounds, cmd.Length, cmd.RouterPort))
	proc, err := c.os.StartProcess(TracerouteBinary.Name)
	if err != nil {
		c.reply(from, broadcast, EncodeStatus(Status{Code: StatusErr, Msg: err.Error()}))
		return
	}
	opts := TrOptions{Dst: cmd.Dst, Length: cmd.Length, RouterPort: cmd.RouterPort, ProbeRetries: cmd.Retries}
	if cmd.Retries == 0 {
		// The workstation always encodes its normalized retry budget, so
		// zero is an explicit "no retries", not "use the default".
		opts.ProbeRetries = -1
	} else if cmd.Retries < 0 {
		opts.ProbeRetries = 0 // malformed wire value: fall back to default
	}
	c.busy = true
	c.proc = proc
	err = c.tr.Start(opts,
		func(rep TrHopReport) {
			if c.tel.Recording() {
				c.tel.Emit(c.os.ID(), telemetry.LayerController, "tr-hop",
					telemetry.Int("hop", rep.Hop),
					telemetry.Node("from", rep.From),
					telemetry.Bool("lost", rep.Lost),
					telemetry.Float("rtt_ms", float64(rep.RTT)/1000))
			}
			c.reply(from, broadcast, EncodeTrHopReport(rep))
		},
		func() {
			c.reply(from, broadcast, EncodeStatus(Status{Code: StatusOK, Msg: c.protocolName(cmd.RouterPort)}))
			c.finishCommand()
		})
	if err != nil {
		c.finishCommand()
		c.reply(from, broadcast, EncodeStatus(startStatus(err)))
	}
}

// finishCommand releases the command process and the busy latch.
func (c *Controller) finishCommand() {
	c.busy = false
	if c.proc != nil {
		_ = c.proc.Exit()
		c.proc = nil
	}
}

// protocolName resolves the display name of the protocol on a port.
func (c *Controller) protocolName(port byte) string {
	if port == 0 {
		return "direct one-hop"
	}
	if r, ok := c.routers(port); ok {
		return r.Name()
	}
	return fmt.Sprintf("port %d", port)
}
