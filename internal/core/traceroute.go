package core

import (
	"errors"
	"fmt"
	"time"

	"liteview/internal/liteos"
	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

// The traceroute command (paper Figure 4). It operates on a per-hop
// basis: each node along the path temporarily becomes a sender and
// initiates a traceroute task — it asks the routing protocol for the
// next hop toward the destination, probes that hop directly (one hop),
// measures the hop's RTT and link quality from the reply, puts them in
// a report packet routed back to the source, and the probed node, if it
// is not the destination, initiates the next task. Because each hop's
// quality travels in its own report rather than in in-packet padding,
// traceroute needs no padding space and is "fundamentally more
// scalable" than the multi-hop ping.

// Traceroute message kinds on TraceroutePort.
const (
	trKindProbe  byte = 1
	trKindReply  byte = 2
	trKindReport byte = 3
)

// TrOptions parameterises one traceroute invocation.
type TrOptions struct {
	// Dst is the destination node.
	Dst phys.NodeID
	// Length is the probe payload size in bytes (default 32).
	Length int
	// RouterPort names the routing protocol used both to discover each
	// next hop and to deliver reports back to the source.
	RouterPort byte
	// HopTimeout bounds one hop's probe/reply exchange (default 250 ms).
	HopTimeout sim.Time
	// MaxHops caps the walked path (default 24).
	MaxHops int
	// ProbeRetries is how many times each hop probe is retried before
	// the hop is reported lost. One retry (the default) recovers the
	// occasional collision — hidden terminals two hops apart cannot
	// carrier-sense each other. A negative value disables retries.
	ProbeRetries int
}

func (o *TrOptions) normalize() error {
	if o.Length <= 0 {
		o.Length = 32
	}
	if o.Length < trProbeHeaderLen {
		o.Length = trProbeHeaderLen
	}
	if o.Length > 48 {
		return fmt.Errorf("core: traceroute length %d exceeds 48-byte probe limit", o.Length)
	}
	if o.RouterPort == 0 {
		return errors.New("core: traceroute needs a routing protocol port")
	}
	if o.HopTimeout <= 0 {
		o.HopTimeout = 250 * time.Millisecond
	}
	if o.MaxHops <= 0 {
		o.MaxHops = 24
	}
	switch {
	case o.ProbeRetries == 0:
		o.ProbeRetries = 1
	case o.ProbeRetries < 0:
		o.ProbeRetries = 0
	case o.ProbeRetries > 9:
		return fmt.Errorf("core: traceroute probe retries %d exceeds limit 9", o.ProbeRetries)
	}
	return nil
}

// SessionBudget is the total traceroute deadline implied by the
// options: every hop may burn (retries+1) timeouts plus continuation
// jitter, and two extra hop-slots of slack cover report routing. The
// workstation sizes its listen window from the same formula so a
// retried final hop cannot be cut off by the task deadline.
func (o TrOptions) SessionBudget() sim.Time {
	attempts := sim.Time(o.ProbeRetries + 1)
	perHop := attempts*o.HopTimeout + 32*time.Millisecond
	return sim.Time(o.MaxHops+2) * perHop
}

// trProbeHeaderLen: kind + taskID + source + dst + routerPort + hop +
// maxHops + retries.
const trProbeHeaderLen = 11

// trSegment is one in-flight hop probe initiated by this node.
type trSegment struct {
	taskID     uint16
	source     phys.NodeID
	dst        phys.NodeID
	port       byte
	hop        int
	maxHops    int
	maxRetries int
	length     int
	timeout    sim.Time
	next       phys.NodeID
	sentAt     sim.Time
	timer      *sim.Event
	probe      []byte
	retries    int
}

// trSession is the source-side state of a traceroute this node started.
type trSession struct {
	opts     TrOptions
	onReport func(TrHopReport)
	onDone   func()
	done     bool
	deadline *sim.Event
}

// TracerouteEngine is the per-node traceroute process logic.
type TracerouteEngine struct {
	eng      *sim.Engine
	os       *liteos.Node
	routers  RouterLookup
	rng      *sim.Rand
	nextID   uint16
	segments map[uint64]*trSegment // keyed by (source, taskID, hop)
	sessions map[uint16]*trSession
	seen     map[uint64]struct{} // probe dedup: (source, taskID, hop)
	seenQ    []uint64
}

// NewTracerouteEngine subscribes the traceroute process on
// TraceroutePort.
func NewTracerouteEngine(eng *sim.Engine, os *liteos.Node, routers RouterLookup) (*TracerouteEngine, error) {
	te := &TracerouteEngine{
		eng:      eng,
		os:       os,
		routers:  routers,
		rng:      eng.Rand().Fork(fmt.Sprintf("traceroute-%d", os.ID())),
		segments: make(map[uint64]*trSegment),
		sessions: make(map[uint16]*trSession),
		seen:     make(map[uint64]struct{}),
	}
	if err := os.Stack().Subscribe(TraceroutePort, te.onPacket); err != nil {
		return nil, err
	}
	return te, nil
}

func segKey(source phys.NodeID, taskID uint16, hop int) uint64 {
	return uint64(source)<<32 | uint64(taskID)<<8 | uint64(hop&0xFF)
}

// Reset abandons every in-flight segment and session without callbacks
// — the node crashed and its traceroute state is gone. nextID survives
// so post-reboot tasks do not alias dead ones at other nodes.
func (te *TracerouteEngine) Reset() {
	for k, seg := range te.segments {
		if seg.timer != nil {
			te.eng.Cancel(seg.timer)
		}
		delete(te.segments, k)
	}
	for id, s := range te.sessions {
		s.done = true
		if s.deadline != nil {
			te.eng.Cancel(s.deadline)
		}
		delete(te.sessions, id)
	}
	te.seen = make(map[uint64]struct{})
	te.seenQ = nil
}

// Start launches a traceroute from this node. onReport is invoked for
// every hop report as it arrives back at the source; onDone fires when
// the destination's report arrives or the session deadline passes.
func (te *TracerouteEngine) Start(opts TrOptions, onReport func(TrHopReport), onDone func()) error {
	if err := opts.normalize(); err != nil {
		return err
	}
	if opts.Dst == te.os.ID() {
		return errors.New("core: traceroute to self")
	}
	rt, ok := te.routers(opts.RouterPort)
	if !ok {
		return fmt.Errorf("core: no routing protocol on port %d", opts.RouterPort)
	}
	if _, err := rt.NextHop(opts.Dst); err != nil {
		return err
	}
	te.nextID++
	id := te.nextID
	s := &trSession{opts: opts, onReport: onReport, onDone: onDone}
	te.sessions[id] = s
	// Session deadline: the per-hop budget accounts for probe retries.
	s.deadline = te.eng.MustSchedule(opts.SessionBudget(), func() { te.finishSession(id) })
	te.initiate(id, te.os.ID(), opts.Dst, opts.RouterPort, 0, opts.MaxHops, opts.ProbeRetries, opts.Length, opts.HopTimeout)
	return nil
}

func (te *TracerouteEngine) finishSession(id uint16) {
	s, ok := te.sessions[id]
	if !ok || s.done {
		return
	}
	s.done = true
	if s.deadline != nil {
		te.eng.Cancel(s.deadline)
	}
	delete(te.sessions, id)
	if s.onDone != nil {
		s.onDone()
	}
}

// initiate starts one traceroute task at this node: probe the next hop
// toward dst (Figure 4 steps 1-3).
func (te *TracerouteEngine) initiate(taskID uint16, source, dst phys.NodeID, port byte, hop, maxHops, retries, length int, timeout sim.Time) {
	if hop >= maxHops {
		te.os.SysLogEvent("traceroute", "task %d exceeded max hops", taskID)
		return
	}
	rt, ok := te.routers(port)
	if !ok {
		return
	}
	next, err := rt.NextHop(dst)
	if err != nil {
		te.os.SysLogEvent("traceroute", "no next hop toward %d: %v", dst, err)
		te.report(TrHopReport{Hop: hop + 1, From: 0, Lost: true}, taskID, source, port)
		return
	}
	seg := &trSegment{
		taskID: taskID, source: source, dst: dst, port: port,
		hop: hop, maxHops: maxHops, maxRetries: retries,
		length: length, timeout: timeout,
		next: next,
	}
	te.segments[segKey(source, taskID, hop)] = seg
	var w writer
	w.u8(trKindProbe)
	w.u16(taskID)
	w.node(source)
	w.node(dst)
	w.u8(port)
	w.u8(byte(hop))
	w.u8(byte(maxHops))
	w.u8(byte(retries))
	for len(w.b) < length {
		w.u8(0x5A)
	}
	seg.probe = w.b
	te.sendProbe(seg)
}

// sendProbe transmits (or retransmits) a segment's probe and arms its
// timeout. The RTT clock restarts on each attempt: the paper's RTT is
// the round trip of the exchange that succeeded.
func (te *TracerouteEngine) sendProbe(seg *trSegment) {
	seg.sentAt = te.eng.Now()
	p := &stack.Packet{
		Port:   TraceroutePort,
		Origin: te.os.ID(),
		Dst:    seg.next,
		TTL:    1,
		Flags:  stack.FlagControl,
		Data:   seg.probe,
	}
	if err := te.os.Stack().Send(p, seg.next, mac.TypeControl, nil); err != nil {
		delete(te.segments, segKey(seg.source, seg.taskID, seg.hop))
		te.report(TrHopReport{Hop: seg.hop + 1, From: seg.next, Lost: true}, seg.taskID, seg.source, seg.port)
		return
	}
	seg.timer = te.eng.MustSchedule(seg.timeout, func() { te.segmentTimeout(seg) })
}

func (te *TracerouteEngine) segmentTimeout(seg *trSegment) {
	if _, live := te.segments[segKey(seg.source, seg.taskID, seg.hop)]; !live {
		return
	}
	if seg.retries < seg.maxRetries {
		seg.retries++
		te.os.SysLogEvent("traceroute", "hop %d probe to %d timed out; retrying", seg.hop+1, seg.next)
		te.sendProbe(seg)
		return
	}
	delete(te.segments, segKey(seg.source, seg.taskID, seg.hop))
	te.os.SysLogEvent("traceroute", "hop %d probe to %d timed out", seg.hop+1, seg.next)
	te.report(TrHopReport{Hop: seg.hop + 1, From: seg.next, Lost: true}, seg.taskID, seg.source, seg.port)
}

// report sends a hop report back to the source (or delivers it locally
// when this node is the source).
func (te *TracerouteEngine) report(rep TrHopReport, taskID uint16, source phys.NodeID, port byte) {
	if source == te.os.ID() {
		te.deliverReport(taskID, rep)
		return
	}
	var w writer
	w.u8(trKindReport)
	w.u16(taskID)
	w.b = append(w.b, EncodeTrHopReport(rep)...)
	rt, ok := te.routers(port)
	if !ok {
		return
	}
	if err := rt.SendTo(source, TraceroutePort, w.b, false, true); err != nil {
		te.os.SysLogEvent("traceroute", "report to %d failed: %v", source, err)
	}
}

// deliverReport hands a report to the local session.
func (te *TracerouteEngine) deliverReport(taskID uint16, rep TrHopReport) {
	s, ok := te.sessions[taskID]
	if !ok || s.done {
		return
	}
	if s.onReport != nil {
		s.onReport(rep)
	}
	if rep.Final || rep.Lost {
		// The destination reported, or the path broke: session over.
		te.finishSession(taskID)
	}
}

func (te *TracerouteEngine) onPacket(p *stack.Packet, from phys.NodeID, info medium.RxInfo) {
	if len(p.Data) < 1 {
		return
	}
	switch p.Data[0] {
	case trKindProbe:
		te.onProbe(p, from, info)
	case trKindReply:
		te.onReply(p, from, info)
	case trKindReport:
		te.onReportPacket(p)
	}
}

// onProbe handles Figure 4 steps 4-5: reply with the previous link's
// quality, then initiate the next task if this node is not the
// destination.
func (te *TracerouteEngine) onProbe(p *stack.Packet, from phys.NodeID, info medium.RxInfo) {
	r := reader{b: p.Data}
	r.u8() // kind
	taskID := r.u16()
	source := r.node()
	dst := r.node()
	port := r.u8()
	hop := int(r.u8())
	maxHops := int(r.u8())
	retries := int(r.u8())
	if r.fail() {
		return
	}
	var w writer
	w.u8(trKindReply)
	w.u16(taskID)
	w.node(source)
	w.u8(byte(hop))
	w.u8(byte(info.LQI))
	w.i8(int8(info.RSSI))
	w.u8(byte(te.os.MAC().QueueLen()))
	if te.os.ID() == dst {
		w.u8(1) // final
	} else {
		w.u8(0)
	}
	reply := &stack.Packet{
		Port:   TraceroutePort,
		Origin: te.os.ID(),
		Dst:    from,
		TTL:    1,
		Flags:  stack.FlagControl,
		Data:   w.b,
	}
	if err := te.os.Stack().Send(reply, from, mac.TypeControl, nil); err != nil {
		te.os.SysLogEvent("traceroute", "reply send failed: %v", err)
	}
	// Initiate the next task exactly once even if the probe was
	// retransmitted.
	key := segKey(source, taskID, hop)
	if _, dup := te.seen[key]; dup {
		return
	}
	te.remember(key)
	if te.os.ID() != dst {
		// Desynchronise the continuation: starting the next hop's probe
		// immediately would lock it in phase with the previous hop's
		// report transmission two hops away — a hidden-terminal
		// collision the CSMA cannot sense. A short random delay breaks
		// the phase lock.
		delay := 8*time.Millisecond + te.rng.Jitter(16*time.Millisecond)
		te.eng.After(delay, func() {
			te.initiate(taskID, source, dst, port, hop+1, maxHops, retries, len(p.Data), te.defaultHopTimeout())
		})
	}
}

func (te *TracerouteEngine) defaultHopTimeout() sim.Time { return 250 * time.Millisecond }

func (te *TracerouteEngine) remember(key uint64) {
	if len(te.seenQ) >= 256 {
		old := te.seenQ[0]
		te.seenQ = te.seenQ[1:]
		delete(te.seen, old)
	}
	te.seen[key] = struct{}{}
	te.seenQ = append(te.seenQ, key)
}

// onReply handles Figure 4 steps 6-8 at the probing hop: compute the
// hop RTT and ship the report to the source.
func (te *TracerouteEngine) onReply(p *stack.Packet, from phys.NodeID, info medium.RxInfo) {
	r := reader{b: p.Data}
	r.u8() // kind
	taskID := r.u16()
	source := r.node()
	hop := int(r.u8())
	lqiFwd := r.u8()
	rssiFwd := r.i8()
	remoteQueue := r.u8()
	final := r.u8() != 0
	if r.fail() {
		return
	}
	seg, ok := te.segments[segKey(source, taskID, hop)]
	if !ok || seg.next != from {
		return
	}
	delete(te.segments, segKey(source, taskID, hop))
	if seg.timer != nil {
		te.eng.Cancel(seg.timer)
	}
	rtt := te.eng.Now() - seg.sentAt
	rep := TrHopReport{
		Hop:     hop + 1,
		From:    from,
		RTT:     uint32(rtt / time.Microsecond),
		LQIFwd:  lqiFwd,
		LQIBwd:  uint8(info.LQI),
		RSSIFwd: rssiFwd,
		RSSIBwd: int8(info.RSSI),
		QFwd:    remoteQueue,
		QBwd:    uint8(te.os.MAC().QueueLen()),
		Final:   final,
	}
	te.report(rep, taskID, seg.source, seg.port)
}

// onReportPacket handles a routed report arriving at the source.
func (te *TracerouteEngine) onReportPacket(p *stack.Packet) {
	r := reader{b: p.Data}
	r.u8() // kind
	taskID := r.u16()
	if r.fail() {
		return
	}
	rep, err := DecodeReply(p.Data[3:])
	if err != nil || rep.Kind != KindTrHopReport {
		return
	}
	te.deliverReport(taskID, rep.TrHop)
}
