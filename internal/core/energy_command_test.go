package core_test

import (
	"strings"
	"testing"

	"liteview/internal/core"
	"liteview/internal/shell"
)

func TestEnergyCommand(t *testing.T) {
	_, ws := deploy(t, 2, 5, 71)
	es, err := ws.Energy(1)
	if err != nil {
		t.Fatal(err)
	}
	// The node listened through the warm-up: RX energy dominates.
	if es.RXuJ == 0 {
		t.Fatalf("no idle-listening energy recorded: %+v", es)
	}
	if es.TXuJ == 0 {
		t.Fatalf("beacons cost no TX energy: %+v", es)
	}
	if es.RXuJ < es.TXuJ {
		t.Fatalf("idle listening should dominate: %+v", es)
	}
	if es.RemainingPermille == 0 || es.RemainingPermille > 1000 {
		t.Fatalf("battery fraction: %d‰", es.RemainingPermille)
	}
	if !es.HasLifetime || es.EstimatedLifetimeHours == 0 {
		t.Fatalf("lifetime estimate missing: %+v", es)
	}
	// An always-on CC2420 mote on 2×AA lives on the order of days.
	if es.EstimatedLifetimeHours < 24 || es.EstimatedLifetimeHours > 24*30 {
		t.Fatalf("lifetime = %d h, implausible", es.EstimatedLifetimeHours)
	}
}

func TestEnergyDiffersByActivity(t *testing.T) {
	tb, ws := deploy(t, 2, 5, 72)
	before1, err := ws.Energy(1)
	if err != nil {
		t.Fatal(err)
	}
	// A burst of multi-round pings costs node 1 extra TX energy.
	for i := 0; i < 3; i++ {
		if _, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 10, Length: 48}); err != nil {
			t.Fatal(err)
		}
	}
	after1, err := ws.Energy(1)
	if err != nil {
		t.Fatal(err)
	}
	if after1.TXuJ <= before1.TXuJ {
		t.Fatalf("ping burst cost no TX energy: %d → %d µJ", before1.TXuJ, after1.TXuJ)
	}
	_ = tb
}

func TestEnergyShellCommand(t *testing.T) {
	tb, ws := deploy(t, 2, 5, 73)
	var sb strings.Builder
	sh, err := shell.NewForTestbed(tb, ws, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Exec("cd 192.168.0.1"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Exec("energy"); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"battery of 192.168.0.1", "% remaining", "idle listening", "projected lifetime"} {
		if !strings.Contains(got, want) {
			t.Fatalf("energy output missing %q:\n%s", want, got)
		}
	}
}
