package core_test

import (
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

// deployLPL builds a duty-cycled line deployment with LiteView.
func deployLPL(t *testing.T, n int, spacing float64, seed uint64) (*testbed.Testbed, *core.Workstation) {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	opt.LPL = true
	opt.BeaconPeriod = 10 * time.Second // broadcasts are expensive under LPL
	tb, err := testbed.Line(n, spacing, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(60 * time.Second) // discovery is slower at a 10 s beacon period
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		t.Fatal(err)
	}
	return tb, ws
}

// TestPingOverLPLDeployment: the management tools must keep working on
// a duty-cycled network — each one-hop exchange just pays up to one
// sleep interval of wake-up latency.
func TestPingOverLPLDeployment(t *testing.T) {
	_, ws := deployLPL(t, 2, 5, 81)
	out, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 2, Length: 32, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if out.Received < 1 {
		t.Fatalf("LPL ping: %+v", out)
	}
	// RTTs include the wake-up latency: well above the always-on
	// ~5-10 ms, bounded by ~2 sleep intervals.
	for _, r := range out.Results {
		if r.Lost {
			continue
		}
		rtt := time.Duration(r.RTT) * time.Microsecond
		if rtt > 500*time.Millisecond {
			t.Fatalf("LPL RTT = %v, absurd", rtt)
		}
	}
}

func TestLPLDeploymentSavesEnergy(t *testing.T) {
	measure := func(lpl bool) float64 {
		opt := testbed.DefaultOptions(82)
		opt.ShadowSigma = 0
		opt.AsymSigma = 0
		opt.LPL = lpl
		opt.BeaconPeriod = 10 * time.Second
		tb, err := testbed.Line(3, 15, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tb.InstallLiteView(); err != nil {
			t.Fatal(err)
		}
		tb.WarmUp(120 * time.Second)
		var total float64
		for _, n := range tb.Nodes {
			total += n.Energy().ConsumedJ()
		}
		return total
	}
	alwaysOn := measure(false)
	lpl := measure(true)
	if lpl >= alwaysOn/3 {
		t.Fatalf("LPL deployment used %.2f J vs %.2f J always-on", lpl, alwaysOn)
	}
}

func TestLPLLifetimeEstimateImproves(t *testing.T) {
	tb, ws := deployLPL(t, 2, 5, 83)
	es, err := ws.Energy(2)
	if err != nil {
		t.Fatal(err)
	}
	if !es.HasLifetime {
		t.Fatal("no lifetime estimate")
	}
	// Always-on CC2420 ≈ 5.5 days; duty-cycled should project weeks+.
	if es.EstimatedLifetimeHours < 24*14 {
		t.Fatalf("LPL lifetime = %d h, want ≥ 2 weeks", es.EstimatedLifetimeHours)
	}
	_ = tb
}

func TestNeighborDiscoveryWorksUnderLPL(t *testing.T) {
	tb, _ := deployLPL(t, 3, 15, 84)
	// LPL broadcasts repeat across sleep intervals, so beacons still
	// reach every duty-cycled neighbor.
	mid := tb.Node(1)
	if mid.SysNeighborTable().Len() < 2 {
		t.Fatalf("middle node knows %d neighbors under LPL", mid.SysNeighborTable().Len())
	}
}

func TestTracerouteOverLPL(t *testing.T) {
	_, ws := deployLPL(t, 3, 15, 85)
	out, err := ws.Traceroute(1, core.TrOptions{
		Dst: 3, Length: 32, RouterPort: routing.GeographicPort,
		HopTimeout: time.Second, // per-hop exchanges pay wake-up latency
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) == 0 {
		t.Fatal("no reports over LPL")
	}
	last := out.Reports[len(out.Reports)-1]
	if !last.Final || last.From != 3 {
		t.Fatalf("LPL traceroute incomplete: %+v", last)
	}
}
