package core_test

import (
	"strings"
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/routing"
	"liteview/internal/shell"
	"liteview/internal/testbed"
)

func TestStatsCommand(t *testing.T) {
	tb, ws := deploy(t, 3, 15, 41)
	// Generate some traffic first so counters are non-trivial.
	if _, err := ws.Ping(1, core.PingOptions{Dst: 2, Rounds: 2}); err != nil {
		t.Fatal(err)
	}
	out, err := ws.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Node.MACSent == 0 || out.Node.MACReceived == 0 {
		t.Fatalf("MAC counters empty: %+v", out.Node)
	}
	if out.Node.UptimeMs == 0 {
		t.Fatal("uptime zero")
	}
	if out.Node.RAMUsed == 0 || out.Node.RAMFree == 0 {
		t.Fatalf("RAM accounting missing: %+v", out.Node)
	}
	if int(out.Node.RAMUsed)+int(out.Node.RAMFree) != 4096 {
		t.Fatalf("RAM does not sum to 4 KB: %+v", out.Node)
	}
	if len(out.Routers) != 1 {
		t.Fatalf("routers = %d, want 1 (geographic)", len(out.Routers))
	}
	if out.Routers[0].Name != "geographic forwarding" || out.Routers[0].Port != 10 {
		t.Fatalf("router record: %+v", out.Routers[0])
	}
	if out.Routers[0].HasParent {
		t.Fatal("geographic forwarding reported a tree parent")
	}
	_ = tb
}

func TestStatsShowsTreeParent(t *testing.T) {
	opt := testbed.DefaultOptions(42)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(3, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachTree(1, routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(40 * time.Second)
	ws, _ := tb.NewWorkstation(phys.Position{X: 42}) // next to node 3
	out, err := ws.Stats(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Routers) != 1 {
		t.Fatalf("routers = %d", len(out.Routers))
	}
	rt := out.Routers[0]
	if rt.Name != "collection tree" {
		t.Fatalf("router = %+v", rt)
	}
	if !rt.HasParent || rt.Parent != 2 {
		t.Fatalf("tree parent not visible: %+v", rt)
	}
	if rt.CostCentile == 0 {
		t.Fatal("tree cost missing")
	}
}

func TestStatsRevealsLossHotspot(t *testing.T) {
	// Probing a dead node leaves NoAck marks at the prober — the stats
	// command is how an operator localises "hotspots of lost packets".
	tb, ws := deploy(t, 3, 15, 43)
	tb.Node(2).Radio().SetState(radio.Off)
	if _, err := ws.Ping(1, core.PingOptions{Dst: 3, Rounds: 3}); err != nil {
		t.Fatal(err)
	}
	out, err := ws.Stats(1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Node.MACNoAck == 0 && out.Node.MACRetries == 0 {
		t.Fatalf("loss left no trace in the counters: %+v", out.Node)
	}
}

func TestStatsShellCommand(t *testing.T) {
	tb, ws := deploy(t, 2, 5, 44)
	var sb strings.Builder
	sh, err := shell.NewForTestbed(tb, ws, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Exec("cd 192.168.0.1"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Exec("stats"); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"mac: sent=", "stack: delivered=", "ram:", `protocol "geographic forwarding"`} {
		if !strings.Contains(got, want) {
			t.Fatalf("stats output missing %q:\n%s", want, got)
		}
	}
}

func TestFsListCommand(t *testing.T) {
	_, ws := deploy(t, 2, 5, 45)
	root, err := ws.FsList(1, "")
	if err != nil {
		t.Fatal(err)
	}
	dirs := map[string]bool{}
	for _, e := range root {
		if !e.Dir {
			t.Fatalf("root entry %q not a directory", e.Name)
		}
		dirs[e.Name] = true
	}
	for _, want := range []string{"apps", "proc", "dev"} {
		if !dirs[want] {
			t.Fatalf("root listing missing %q: %v", want, root)
		}
	}
	apps, err := ws.FsList(1, "apps")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]uint32{}
	for _, e := range apps {
		found[e.Name] = e.Size
	}
	if found["ping"] != 2148 || found["traceroute"] != 2820 {
		t.Fatalf("apps listing = %v", found)
	}
	procs, err := ws.FsList(1, "proc")
	if err != nil {
		t.Fatal(err)
	}
	// The controller process is running.
	ok := false
	for _, e := range procs {
		if strings.Contains(e.Name, "liteview-controller") && e.Size == 310 {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("proc listing = %v", procs)
	}
	if _, err := ws.FsList(1, "nope"); err == nil {
		t.Fatal("phantom directory accepted")
	}
	dev, err := ws.FsList(1, "/dev")
	if err != nil {
		t.Fatal(err)
	}
	if len(dev) < 3 {
		t.Fatalf("dev listing = %v", dev)
	}
}
