package core

import (
	"errors"
	"fmt"
	"time"

	"liteview/internal/liteos"
	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

// The ping command. It runs as an individual process on both the
// sending and receiving node, subscribed to its own communication port
// (PingPort). The sender timestamps a probe with the node's
// high-resolution timer, the receiver replies with the link quality
// (LQI, RSSI) of the incoming probe plus its queue occupancy, and the
// sender computes the RTT from its own clock — no network-level time
// synchronisation is needed.
//
// A single-hop ping exchanges probe and reply directly. A multi-hop
// ping hands the probe to the routing protocol listening on the port
// the user named; the probe collects per-hop link quality through
// link-quality padding on the way out, the reply carries those records
// in its body and collects the return path's records the same way.

// Ping message kinds on PingPort.
const (
	pingKindProbe byte = 1
	pingKindReply byte = 2
)

// Ping probe header: kind + taskID + seq + origin + routerPort.
const pingProbeHeaderLen = 7

// PingOptions parameterises one ping command invocation.
type PingOptions struct {
	// Dst is the probed node.
	Dst phys.NodeID
	// Rounds is the number of probe/reply exchanges (default 1).
	Rounds int
	// Length is the probe payload size in bytes (default 32).
	Length int
	// RouterPort selects the routing protocol for multi-hop pings;
	// zero means a direct single-hop probe.
	RouterPort byte
	// Timeout bounds one round's wait for a reply (default 250 ms).
	Timeout sim.Time
}

func (o *PingOptions) normalize() error {
	if o.Rounds <= 0 {
		o.Rounds = 1
	}
	if o.Rounds > 200 {
		return errors.New("core: ping rounds > 200")
	}
	if o.Length <= 0 {
		o.Length = 32
	}
	if o.Length < pingProbeHeaderLen {
		o.Length = pingProbeHeaderLen
	}
	// Multi-hop probes must leave room for the routed header and the
	// padding region is shared with the data, so cap the length.
	if o.Length > 48 {
		return fmt.Errorf("core: ping length %d exceeds 48-byte probe limit", o.Length)
	}
	if o.Timeout <= 0 {
		o.Timeout = 250 * time.Millisecond
	}
	return nil
}

// RouterLookup resolves the routing protocol listening on a port; the
// runtime supplies it so commands select protocols at runtime without
// compile-time coupling.
type RouterLookup func(port byte) (*routing.Router, bool)

type pingTask struct {
	id      uint16
	opts    PingOptions
	seq     int
	sentAt  sim.Time
	timer   *sim.Event
	results []PingResult
	onDone  func([]PingResult)
}

// PingEngine is the per-node ping process logic (sender and responder
// roles share the subscription).
type PingEngine struct {
	eng     *sim.Engine
	os      *liteos.Node
	routers RouterLookup
	nextID  uint16
	tasks   map[uint16]*pingTask
}

// NewPingEngine subscribes the ping process on PingPort.
func NewPingEngine(eng *sim.Engine, os *liteos.Node, routers RouterLookup) (*PingEngine, error) {
	pe := &PingEngine{eng: eng, os: os, routers: routers, tasks: make(map[uint16]*pingTask)}
	if err := os.Stack().Subscribe(PingPort, pe.onPacket); err != nil {
		return nil, err
	}
	return pe, nil
}

// Reset abandons every in-flight ping task without callbacks — the
// node crashed and its task state is gone. nextID survives so
// post-reboot tasks do not alias dead ones.
func (pe *PingEngine) Reset() {
	for id, t := range pe.tasks {
		if t.timer != nil {
			pe.eng.Cancel(t.timer)
		}
		delete(pe.tasks, id)
	}
}

// Start launches a ping task. onDone receives one PingResult per round
// once all rounds complete (lost rounds report Lost=true).
func (pe *PingEngine) Start(opts PingOptions, onDone func([]PingResult)) error {
	if err := opts.normalize(); err != nil {
		return err
	}
	if opts.Dst == pe.os.ID() {
		return errors.New("core: ping to self")
	}
	if opts.RouterPort != 0 {
		if _, ok := pe.routers(opts.RouterPort); !ok {
			return fmt.Errorf("core: no routing protocol on port %d", opts.RouterPort)
		}
	}
	pe.nextID++
	t := &pingTask{id: pe.nextID, opts: opts, onDone: onDone}
	pe.tasks[t.id] = t
	pe.sendProbe(t)
	return nil
}

// buildProbe lays out a probe message padded with filler to the
// requested length.
func (pe *PingEngine) buildProbe(t *pingTask) []byte {
	var w writer
	w.u8(pingKindProbe)
	w.u16(t.id)
	w.u8(byte(t.seq))
	w.node(pe.os.ID())
	w.u8(t.opts.RouterPort)
	for len(w.b) < t.opts.Length {
		w.u8(0xA5)
	}
	return w.b
}

func (pe *PingEngine) sendProbe(t *pingTask) {
	probe := pe.buildProbe(t)
	// "The process first gets the current timestamp using a
	// high-resolution, cycle-accurate timer," then sends.
	t.sentAt = pe.eng.Now()
	var err error
	if t.opts.RouterPort == 0 {
		p := &stack.Packet{
			Port:   PingPort,
			Origin: pe.os.ID(),
			Dst:    t.opts.Dst,
			TTL:    1,
			Flags:  stack.FlagControl,
			Data:   probe,
		}
		err = pe.os.Stack().Send(p, t.opts.Dst, mac.TypeControl, nil)
	} else {
		r, ok := pe.routers(t.opts.RouterPort)
		if !ok {
			err = fmt.Errorf("core: routing protocol on port %d vanished", t.opts.RouterPort)
		} else {
			err = r.SendTo(t.opts.Dst, PingPort, probe, true, true)
		}
	}
	if err != nil {
		pe.os.SysLogEvent("ping", "probe %d/%d failed to send: %v", t.seq+1, t.opts.Rounds, err)
		pe.roundLost(t)
		return
	}
	pe.os.SysLogEvent("ping", "probe %d/%d to %d sent", t.seq+1, t.opts.Rounds, t.opts.Dst)
	t.timer = pe.eng.MustSchedule(t.opts.Timeout, func() { pe.roundLost(t) })
}

// roundLost records a timed-out round and moves on.
func (pe *PingEngine) roundLost(t *pingTask) {
	if _, live := pe.tasks[t.id]; !live {
		return
	}
	t.results = append(t.results, PingResult{Seq: t.seq, Lost: true,
		Power: uint8(pe.os.Radio().PowerLevel()), Channel: uint8(pe.os.Radio().Channel())})
	pe.nextRound(t)
}

func (pe *PingEngine) nextRound(t *pingTask) {
	t.seq++
	if t.seq >= t.opts.Rounds {
		delete(pe.tasks, t.id)
		if t.onDone != nil {
			t.onDone(t.results)
		}
		return
	}
	pe.sendProbe(t)
}

func (pe *PingEngine) onPacket(p *stack.Packet, from phys.NodeID, info medium.RxInfo) {
	if len(p.Data) < 1 {
		return
	}
	switch p.Data[0] {
	case pingKindProbe:
		pe.onProbe(p, from, info)
	case pingKindReply:
		pe.onReply(p, from, info)
	}
}

// onProbe is the responder role: reply with the incoming link quality.
func (pe *PingEngine) onProbe(p *stack.Packet, from phys.NodeID, info medium.RxInfo) {
	r := reader{b: p.Data}
	r.u8() // kind
	taskID := r.u16()
	seq := r.u8()
	origin := r.node()
	routerPort := r.u8()
	if r.fail() {
		return
	}
	var w writer
	w.u8(pingKindReply)
	w.u16(taskID)
	w.u8(seq)
	if routerPort != 0 {
		// Routed probe: the forward per-hop quality arrived in the
		// packet's padding; copy it into the reply body so the sender
		// sees it, then route the reply back through the same protocol
		// the probe named, with padding enabled for the return path.
		w.u8(1)
		w.u8(byte(pe.os.MAC().QueueLen()))
		w.u8(byte(len(p.Pad)))
		for _, lq := range p.Pad {
			w.u8(lq.LQI)
			w.i8(lq.RSSI)
		}
		rt, ok := pe.routers(routerPort)
		if !ok {
			pe.os.SysLogEvent("ping", "no protocol on port %d to reply via", routerPort)
			return
		}
		if err := rt.SendTo(origin, PingPort, w.b, true, true); err != nil {
			pe.os.SysLogEvent("ping", "reply route to %d failed: %v", origin, err)
		}
		return
	}
	w.u8(0)
	w.u8(byte(pe.os.MAC().QueueLen()))
	// Link quality of the incoming probe, available only after
	// reception at this side.
	w.u8(byte(info.LQI))
	w.i8(int8(info.RSSI))
	reply := &stack.Packet{
		Port:   PingPort,
		Origin: pe.os.ID(),
		Dst:    from,
		TTL:    1,
		Flags:  stack.FlagControl,
		Data:   w.b,
	}
	if err := pe.os.Stack().Send(reply, from, mac.TypeControl, nil); err != nil {
		pe.os.SysLogEvent("ping", "reply send failed: %v", err)
	}
}

// onReply is the sender role: close the round and record the result.
func (pe *PingEngine) onReply(p *stack.Packet, from phys.NodeID, info medium.RxInfo) {
	r := reader{b: p.Data}
	r.u8() // kind
	taskID := r.u16()
	seq := int(r.u8())
	multihop := r.u8() != 0
	remoteQueue := r.u8()
	t, ok := pe.tasks[taskID]
	if !ok || seq != t.seq || r.fail() {
		return
	}
	if t.timer != nil {
		pe.eng.Cancel(t.timer)
	}
	rtt := pe.eng.Now() - t.sentAt
	res := PingResult{
		Seq:     seq,
		RTT:     uint32(rtt / time.Microsecond),
		QFwd:    remoteQueue,
		QBwd:    uint8(pe.os.MAC().QueueLen()),
		Power:   uint8(pe.os.Radio().PowerLevel()),
		Channel: uint8(pe.os.Radio().Channel()),
	}
	if multihop {
		nFwd := int(r.u8())
		for i := 0; i < nFwd; i++ {
			res.HopQuality = append(res.HopQuality, HopLQ{LQI: r.u8(), RSSI: r.i8()})
		}
		// Return-path records arrive as the reply packet's padding.
		for _, lq := range p.Pad {
			res.HopQuality = append(res.HopQuality, HopLQ{LQI: lq.LQI, RSSI: lq.RSSI, Back: true})
		}
		// Headline LQI/RSSI: first forward hop / first return hop.
		if nFwd > 0 {
			res.LQIFwd = res.HopQuality[0].LQI
			res.RSSIFwd = res.HopQuality[0].RSSI
		}
		if len(p.Pad) > 0 {
			res.LQIBwd = p.Pad[0].LQI
			res.RSSIBwd = p.Pad[0].RSSI
		}
	} else {
		res.LQIFwd = r.u8()
		res.RSSIFwd = r.i8()
		// The reply's own link quality is the backward direction,
		// observed by this node's radio on reception.
		res.LQIBwd = uint8(info.LQI)
		res.RSSIBwd = int8(info.RSSI)
	}
	if r.fail() {
		return
	}
	_ = from
	t.results = append(t.results, res)
	pe.os.SysLogEvent("ping", "round %d: rtt=%v", seq+1, rtt)
	pe.nextRound(t)
}
