package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/stack"
)

type relEnv struct {
	eng *sim.Engine
	med *medium.Medium
}

type relNode struct {
	st  *stack.Stack
	ep  *Endpoint
	got [][]byte
}

func newRelEnv(seed uint64) *relEnv {
	eng := sim.NewEngine(seed)
	model := phys.DefaultModel(seed)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	return &relEnv{eng: eng, med: medium.New(eng, model)}
}

func (e *relEnv) node(t *testing.T, id phys.NodeID, x float64) *relNode {
	t.Helper()
	n := &relNode{}
	rad, _ := radio.New(17)
	var st *stack.Stack
	m, err := mac.New(e.eng, e.med, rad, id, phys.Position{X: x}, mac.DefaultConfig(),
		func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
	if err != nil {
		t.Fatal(err)
	}
	st = stack.New(e.eng, m)
	n.st = st
	ep, err := NewEndpoint(e.eng, st, DefaultReliableConfig(), func(_ phys.NodeID, payload []byte, _ medium.RxInfo, _ bool) {
		n.got = append(n.got, payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	n.ep = ep
	return n
}

func TestSingleMessageAckRoundTrip(t *testing.T) {
	e := newRelEnv(1)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 5)
	var doneErr error
	done := false
	if err := a.ep.Send(2, [][]byte{[]byte("cmd")}, 0, func(err error) { done = true; doneErr = err }); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if !done || doneErr != nil {
		t.Fatalf("done=%v err=%v", done, doneErr)
	}
	if len(b.got) != 1 || string(b.got[0]) != "cmd" {
		t.Fatalf("received %v", b.got)
	}
	if a.ep.Stats().Completed != 1 || a.ep.Stats().AcksReceived == 0 {
		t.Fatalf("stats = %+v", a.ep.Stats())
	}
	if b.ep.Stats().AcksSent == 0 {
		t.Fatalf("receiver never acked: %+v", b.ep.Stats())
	}
}

func TestMultiMessageTransferInOrder(t *testing.T) {
	e := newRelEnv(2)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 5)
	var msgs [][]byte
	for i := 0; i < 20; i++ {
		msgs = append(msgs, []byte(fmt.Sprintf("msg-%02d", i)))
	}
	done := false
	if err := a.ep.Send(2, msgs, 0, func(err error) {
		done = true
		if err != nil {
			t.Errorf("transfer failed: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if !done {
		t.Fatal("transfer never completed")
	}
	if len(b.got) != 20 {
		t.Fatalf("received %d messages, want 20", len(b.got))
	}
	for i, m := range b.got {
		if string(m) != fmt.Sprintf("msg-%02d", i) {
			t.Fatalf("out of order at %d: %q", i, m)
		}
	}
}

func TestTransferFailsWhenPeerGone(t *testing.T) {
	e := newRelEnv(3)
	a := e.node(t, 1, 0)
	// Peer 5 km away: nothing gets through.
	e.node(t, 2, 5000)
	var gotErr error
	done := false
	if err := a.ep.Send(2, [][]byte{[]byte("x")}, 0, func(err error) { done = true; gotErr = err }); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if !done || !errors.Is(gotErr, ErrXferFailed) {
		t.Fatalf("done=%v err=%v", done, gotErr)
	}
	st := a.ep.Stats()
	if st.Failures != 1 || st.Retransmissions == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdaptiveBatchRecoversFromLoss(t *testing.T) {
	// A lossy (but workable) link: transfer must still complete via
	// retransmissions, exercising the shrink-on-loss path.
	e := newRelEnv(4)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 39) // near the edge of range: some loss
	var msgs [][]byte
	for i := 0; i < 30; i++ {
		msgs = append(msgs, []byte{byte(i)})
	}
	done := false
	var gotErr error
	a.ep.Send(2, msgs, 0, func(err error) { done = true; gotErr = err })
	e.eng.Run()
	if !done {
		t.Fatal("no completion callback")
	}
	if gotErr != nil {
		t.Skipf("link too lossy at this seed: %v", gotErr)
	}
	if len(b.got) != 30 {
		t.Fatalf("received %d/30", len(b.got))
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Force retransmissions by making acks race the timeout: shrink the
	// ack timeout below the round trip so the sender always retransmits
	// at least once, then verify the receiver delivered each message
	// exactly once.
	eng := sim.NewEngine(5)
	model := phys.DefaultModel(5)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	med := medium.New(eng, model)
	mk := func(id phys.NodeID, x float64, got *[][]byte) *Endpoint {
		rad, _ := radio.New(17)
		var st *stack.Stack
		m, err := mac.New(eng, med, rad, id, phys.Position{X: x}, mac.DefaultConfig(),
			func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
		if err != nil {
			t.Fatal(err)
		}
		st = stack.New(eng, m)
		cfg := DefaultReliableConfig()
		cfg.AckTimeout = 2 * time.Millisecond // below one exchange RTT
		cfg.MaxRetries = 10
		ep, err := NewEndpoint(eng, st, cfg, func(_ phys.NodeID, p []byte, _ medium.RxInfo, _ bool) {
			if got != nil {
				*got = append(*got, p)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ep
	}
	a := mk(1, 0, nil)
	var got [][]byte
	b := mk(2, 5, &got)
	a.Send(2, [][]byte{[]byte("once")}, 0, nil)
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d times, want exactly 1", len(got))
	}
	if a.Stats().Retransmissions == 0 {
		t.Fatal("test premise broken: no retransmissions happened")
	}
	if b.Stats().Duplicates == 0 {
		t.Fatal("receiver saw no duplicates despite retransmissions")
	}
}

func TestBroadcastFireAndForget(t *testing.T) {
	e := newRelEnv(6)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 5)
	c := e.node(t, 3, 8)
	done := false
	var doneErr error
	if err := a.ep.Send(phys.Broadcast, [][]byte{[]byte("everyone")}, 0, func(err error) {
		done = true
		doneErr = err
	}); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if !done || doneErr != nil {
		t.Fatalf("broadcast done=%v err=%v", done, doneErr)
	}
	if len(b.got) != 1 || len(c.got) != 1 {
		t.Fatalf("broadcast reached %d+%d, want 1+1", len(b.got), len(c.got))
	}
	// No acks must have flowed for the broadcast.
	if b.ep.Stats().AcksSent != 0 || c.ep.Stats().AcksSent != 0 {
		t.Fatal("receivers acked a broadcast")
	}
}

func TestBroadcastFlagDelivered(t *testing.T) {
	eng := sim.NewEngine(7)
	model := phys.DefaultModel(7)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	med := medium.New(eng, model)
	mkStack := func(id phys.NodeID, x float64) *stack.Stack {
		rad, _ := radio.New(17)
		var st *stack.Stack
		m, _ := mac.New(eng, med, rad, id, phys.Position{X: x}, mac.DefaultConfig(),
			func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
		st = stack.New(eng, m)
		return st
	}
	sa := mkStack(1, 0)
	sb := mkStack(2, 5)
	epA, _ := NewEndpoint(eng, sa, DefaultReliableConfig(), func(phys.NodeID, []byte, medium.RxInfo, bool) {})
	var sawBroadcast, sawUnicast bool
	NewEndpoint(eng, sb, DefaultReliableConfig(), func(_ phys.NodeID, _ []byte, _ medium.RxInfo, bc bool) {
		if bc {
			sawBroadcast = true
		} else {
			sawUnicast = true
		}
	})
	epA.Send(phys.Broadcast, [][]byte{[]byte("b")}, 0, nil)
	epA.Send(2, [][]byte{[]byte("u")}, 0, nil)
	eng.Run()
	if !sawBroadcast || !sawUnicast {
		t.Fatalf("broadcast=%v unicast=%v", sawBroadcast, sawUnicast)
	}
}

func TestSendValidation(t *testing.T) {
	e := newRelEnv(8)
	a := e.node(t, 1, 0)
	if err := a.ep.Send(2, nil, 0, nil); err == nil {
		t.Fatal("empty transfer accepted")
	}
	big := make([]byte, stack.PayloadCeiling)
	if err := a.ep.Send(2, [][]byte{big}, 0, nil); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestEndpointConfigValidation(t *testing.T) {
	e := newRelEnv(9)
	rad, _ := radio.New(17)
	var st *stack.Stack
	m, _ := mac.New(e.eng, e.med, rad, 7, phys.Position{}, mac.DefaultConfig(),
		func(f mac.Frame, info medium.RxInfo) { st.OnFrame(f, info) })
	st = stack.New(e.eng, m)
	if _, err := NewEndpoint(e.eng, st, DefaultReliableConfig(), nil); err == nil {
		t.Fatal("nil callback accepted")
	}
	bad := DefaultReliableConfig()
	bad.AckTimeout = 0
	if _, err := NewEndpoint(e.eng, st, bad, func(phys.NodeID, []byte, medium.RxInfo, bool) {}); err == nil {
		t.Fatal("zero timeout accepted")
	}
}

func TestGroupBackoffWithinWindow(t *testing.T) {
	e := newRelEnv(10)
	a := e.node(t, 1, 0)
	cfg := DefaultReliableConfig()
	for i := 0; i < 200; i++ {
		d := a.ep.GroupBackoff()
		if d < 0 || d >= cfg.GroupBackoffMax {
			t.Fatalf("backoff %v outside [0, %v)", d, cfg.GroupBackoffMax)
		}
	}
}

func TestTransferFailsUnderTotalLoss(t *testing.T) {
	// 100% injected loss: every frame arrives corrupted. The transfer
	// must abandon with ErrXferFailed inside the retry budget — the
	// paper's 500 ms response window — and leave no timers behind.
	e := newRelEnv(11)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 5)
	e.med.SetLossFunc(func(phys.NodeID, phys.NodeID, []byte) bool { return true })
	var gotErr error
	done := false
	start := e.eng.Now()
	if err := a.ep.Send(2, [][]byte{[]byte("a"), []byte("b"), []byte("c")}, 0,
		func(err error) { done = true; gotErr = err }); err != nil {
		t.Fatal(err)
	}
	e.eng.Run()
	if !done || !errors.Is(gotErr, ErrXferFailed) {
		t.Fatalf("done=%v err=%v", done, gotErr)
	}
	// Retry budget: (MaxRetries+1) ack timeouts plus the capped
	// exponential backoffs between rounds must fit the 500 ms window.
	if elapsed := e.eng.Now() - start; elapsed > 500*time.Millisecond {
		t.Fatalf("failure took %v, over the 500 ms response window", elapsed)
	}
	if e.eng.Pending() != 0 {
		t.Fatalf("%d leaked timer(s)", e.eng.Pending())
	}
	if len(b.got) != 0 {
		t.Fatalf("receiver got %d messages through 100%% loss", len(b.got))
	}
}

func TestTransferAbortsOnReceiverCrashMidBatch(t *testing.T) {
	// The receiver dies mid-transfer: its endpoint state is wiped (the
	// crash path calls Reset) and nothing it hears is answered again.
	// The sender must fail the transfer within its retry budget rather
	// than hang on a peer that will never ack.
	e := newRelEnv(12)
	a := e.node(t, 1, 0)
	b := e.node(t, 2, 5)
	var msgs [][]byte
	for i := 0; i < 30; i++ {
		msgs = append(msgs, []byte{byte(i)})
	}
	var gotErr error
	done := false
	start := e.eng.Now()
	if err := a.ep.Send(2, msgs, 0, func(err error) { done = true; gotErr = err }); err != nil {
		t.Fatal(err)
	}
	// Crash after the first batches land: wipe the receiver's transfer
	// state and drop everything addressed to it from then on.
	e.eng.MustSchedule(20*time.Millisecond, func() {
		b.ep.Reset()
		received := len(b.got)
		b.got = b.got[:received] // freeze what arrived pre-crash
		e.med.SetLossFunc(func(_ phys.NodeID, to phys.NodeID, _ []byte) bool { return to == 2 })
	})
	e.eng.Run()
	if !done || !errors.Is(gotErr, ErrXferFailed) {
		t.Fatalf("done=%v err=%v", done, gotErr)
	}
	if len(b.got) >= 30 {
		t.Fatal("receiver completed a transfer it crashed out of")
	}
	// Budget: the batches that landed pre-crash plus a full retry
	// ladder; generously under one second.
	if elapsed := e.eng.Now() - start; elapsed > time.Second {
		t.Fatalf("failure took %v", elapsed)
	}
	if e.eng.Pending() != 0 {
		t.Fatalf("%d leaked timer(s)", e.eng.Pending())
	}
}

func TestEndpointResetDropsTransfersWithoutCallbacks(t *testing.T) {
	// Reset on the *sender* abandons outgoing transfers silently (the
	// crash path: callbacks belong to processes that died with the
	// node) and cancels their timers.
	e := newRelEnv(13)
	a := e.node(t, 1, 0)
	e.node(t, 2, 5000) // out of range: the transfer would retry forever
	called := false
	if err := a.ep.Send(2, [][]byte{[]byte("x")}, 0, func(error) { called = true }); err != nil {
		t.Fatal(err)
	}
	e.eng.MustSchedule(5*time.Millisecond, func() { a.ep.Reset() })
	e.eng.Run()
	if called {
		t.Fatal("reset fired a completion callback")
	}
	if e.eng.Pending() != 0 {
		t.Fatalf("%d leaked timer(s) after reset", e.eng.Pending())
	}
}
