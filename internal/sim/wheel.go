package sim

import "math/bits"

// The engine's pending-event structure is a hierarchical timer wheel
// (Varghese & Lauck) adapted to a discrete-event simulator: instead of
// advancing tick by tick on a real clock, the cursor jumps straight to
// the next occupied slot, so an empty stretch of virtual time costs a
// bitmap scan, not a walk.
//
// Layout. Virtual time is bucketed into 2^tickBits-nanosecond ticks.
// Level 0 holds one slot per tick across a 64-tick window anchored at
// the cursor; each higher level widens the window 64× (a level-L slot
// spans 64^L ticks). Six levels cover 2^46 ns ≈ 19.5 hours of lookahead;
// anything further out waits in a small (when, seq) min-heap and is
// drained into the wheel as the cursor approaches. A uint64 occupancy
// bitmap per level makes "earliest non-empty slot" one TrailingZeros64.
//
// Slot residency is the classic radix trick: an event's level is the
// highest bit position where its tick differs from the cursor's
// (xor-based), its slot the tick's digit at that level. Advancing the
// cursor into a level-L slot zeroes that xor digit for every event in
// the slot, so a cascade strictly descends — each event is re-filed at
// most wheelLevels times over its life, and pop stays amortized O(1).
//
// Ordering. The determinism contract (DESIGN §10) requires pops in
// exact (when, seq) order, which raw slots do not give: a slot mixes
// sub-tick timestamps and seqs from different scheduling eras. The
// wheel therefore never pops from a slot directly; the imminent events
// — everything at or below the cursor's tick — live in cur, a slice
// kept sorted by (when, seq) via binary-search insertion. Events whose
// tick is at or behind the cursor (possible when a peek advanced the
// cursor before new work was scheduled, as the workstation's
// NextEventTime/Step pump does) are filed straight into cur, which
// keeps the pop order total without ever moving the cursor backwards.
//
// Cancellation is lazy: Cancel marks the event stopped and fixes the
// pending count; the tombstone is discarded whenever the structure next
// touches it (cur scan, cascade, overflow drain). Only handle events
// can be cancelled and those are never recycled, so a tombstone cannot
// alias a reused struct.
const (
	// tickBits trades cascade hops against cur length: cur absorbs and
	// sorts everything inside one tick (65.5 µs), so sub-tick ordering
	// costs a binary insert instead of a wheel level, and the dominant
	// periods (LPL 100 ms sleeps, beacon intervals) file one level
	// lower. Same-instant bursts append at cur's tail (seq is
	// monotone), so dense After(0) storms stay O(1) per event.
	tickBits    = 16 // 65.536 µs per level-0 tick
	wheelBits   = 6  // 64 slots per level, one occupancy bit each
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 6 // horizon 2^(tickBits+6*wheelBits) ns ≈ 52 days before the overflow heap
)

func tickOf(t Time) int64 { return int64(t) >> tickBits }

func evLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

type timerWheel struct {
	// slots holds intrusive LIFO lists chained through Event.next — a
	// slot insert is two pointer writes, and the whole level array is
	// 3 KB of contiguous heads. List order is irrelevant: membership is
	// deterministic, and (when, seq) order is established by cur's
	// sorted insert when events reach the cursor.
	slots [wheelLevels][wheelSlots]*Event
	occ   [wheelLevels]uint64 // per-level bitmap of non-empty slots
	// curTick anchors the wheel: every slotted event's tick is strictly
	// greater, every overflow event's tick is beyond the wheel horizon,
	// and everything at or below it sits sorted in cur.
	curTick int64
	cur     []*Event
	curIdx  int
	over    []*Event // (when, seq) min-heap for beyond-horizon events
	// count tracks resident events (live + tombstones) across cur, the
	// slots, and the overflow heap; it gates the empty-wheel fast path.
	count int
}

// insert files ev into cur, a slot, or the overflow heap, relative to
// the current cursor.
func (w *timerWheel) insert(ev *Event) {
	w.count++
	tick := tickOf(ev.when)
	if w.count == 1 {
		// Empty wheel: nothing pins the cursor, so jump it to the new
		// event's tick and keep the single-ticker pattern (fire, then
		// reschedule one period out) entirely inside cur — no slot
		// filing, no scan.
		if tick > w.curTick {
			w.curTick = tick
		}
		w.insertCur(ev)
		return
	}
	if tick <= w.curTick {
		w.insertCur(ev)
		return
	}
	diff := uint64(tick ^ w.curTick)
	lvl := (bits.Len64(diff) - 1) / wheelBits
	if lvl >= wheelLevels {
		w.overPush(ev)
		return
	}
	slot := int(tick>>(uint(lvl)*wheelBits)) & wheelMask
	ev.next = w.slots[lvl][slot]
	w.slots[lvl][slot] = ev
	w.occ[lvl] |= 1 << uint(slot)
}

// insertCur places ev into the sorted imminent list. New events carry
// the largest seq issued so far and cascaded events keep their original
// (when, seq), so a plain binary search lands every case correctly.
func (w *timerWheel) insertCur(ev *Event) {
	lo, hi := w.curIdx, len(w.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if evLess(w.cur[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.cur = append(w.cur, nil)
	copy(w.cur[lo+1:], w.cur[lo:])
	w.cur[lo] = ev
}

// ensureCur makes cur's head the earliest live pending event, advancing
// the cursor (draining overflow, cascading slots) as needed. It reports
// false when nothing is pending.
func (w *timerWheel) ensureCur() bool {
	for {
		// Fast path: a live imminent event is already at the head.
		for w.curIdx < len(w.cur) {
			ev := w.cur[w.curIdx]
			if !ev.stopped {
				return true
			}
			ev.queued = false
			w.count--
			w.cur[w.curIdx] = nil
			w.curIdx++
		}
		w.cur = w.cur[:0]
		w.curIdx = 0
		// Pull overflow events that now fit the wheel horizon (or went
		// stale under a cancel) before scanning the slots.
		for len(w.over) > 0 {
			top := w.over[0]
			if top.stopped {
				w.overPop().queued = false
				w.count--
				continue
			}
			if uint64(tickOf(top.when)^w.curTick)>>(wheelLevels*wheelBits) != 0 {
				break
			}
			w.count--
			w.insert(w.overPop())
		}
		if len(w.cur) > 0 {
			continue // the drain fed cur directly
		}
		lvl := -1
		for l := 0; l < wheelLevels; l++ {
			if w.occ[l] != 0 {
				lvl = l
				break
			}
		}
		if lvl < 0 {
			if len(w.over) == 0 {
				return false
			}
			// Far-future events only: jump the cursor to the next one and
			// let the drain above pull it in.
			w.curTick = tickOf(w.over[0].when)
			continue
		}
		slot := bits.TrailingZeros64(w.occ[lvl])
		head := w.slots[lvl][slot]
		w.slots[lvl][slot] = nil
		w.occ[lvl] &^= 1 << uint(slot)
		// Advance the cursor to the slot's base tick before re-filing:
		// that zeroes this level's xor digit for every event in the
		// slot, so each lands strictly below lvl (termination) and the
		// cursor-precedes-all-slotted-events invariant is preserved.
		shift := uint(lvl) * wheelBits
		if base := (w.curTick>>(shift+wheelBits))<<(shift+wheelBits) | int64(slot)<<shift; base > w.curTick {
			w.curTick = base
		}
		if lvl == 0 {
			// A level-0 slot holds exactly one tick — the cursor's, now —
			// so its events go straight into cur, which sorts their
			// sub-tick (when, seq) order.
			for ev := head; ev != nil; {
				nx := ev.next
				ev.next = nil
				if ev.stopped {
					ev.queued = false
					w.count--
				} else {
					w.insertCur(ev)
				}
				ev = nx
			}
		} else {
			for ev := head; ev != nil; {
				nx := ev.next
				ev.next = nil
				if ev.stopped {
					ev.queued = false
					w.count--
				} else {
					w.count--
					w.insert(ev)
				}
				ev = nx
			}
		}
	}
}

// head returns the earliest live pending event without removing it, or
// nil when none is pending.
func (w *timerWheel) head() *Event {
	if !w.ensureCur() {
		return nil
	}
	return w.cur[w.curIdx]
}

// pop removes and returns the earliest live pending event. Callers must
// have seen a non-nil head (or true ensureCur) first.
func (w *timerWheel) pop() *Event {
	ev := w.cur[w.curIdx]
	w.cur[w.curIdx] = nil
	w.curIdx++
	if w.curIdx == len(w.cur) {
		w.cur = w.cur[:0]
		w.curIdx = 0
	}
	ev.queued = false
	w.count--
	return ev
}

func (w *timerWheel) overPush(ev *Event) {
	w.over = append(w.over, ev)
	i := len(w.over) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(w.over[i], w.over[p]) {
			break
		}
		w.over[i], w.over[p] = w.over[p], w.over[i]
		i = p
	}
}

func (w *timerWheel) overPop() *Event {
	h := w.over
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	w.over = h[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && evLess(h[right], h[left]) {
			least = right
		}
		if !evLess(h[least], h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return ev
}
