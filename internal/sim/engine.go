// Package sim provides the discrete-event simulation kernel on which the
// whole LiteView reproduction runs. Every other subsystem — radio medium,
// MAC, LiteOS threads, LiteView commands — executes on the virtual clock
// owned by an Engine, so a scenario is fully determined by its topology,
// its seed, and its command script.
//
// Time is modelled as a time.Duration offset from the simulation epoch
// (t = 0). Events scheduled for the same instant fire in scheduling order
// (a monotonically increasing sequence number breaks ties), which keeps
// runs reproducible across machines.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp: the offset from the simulation epoch.
type Time = time.Duration

// Event is a scheduled callback. Fields are private to the engine; events
// are created via Engine.Schedule / Engine.At.
type Event struct {
	when    Time
	seq     uint64
	fn      func()
	index   int // heap index; -1 once removed
	stopped bool
}

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Stopped reports whether the event has been cancelled.
func (e *Event) Stopped() bool { return e.stopped }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all model code runs inside event callbacks on the
// engine's own (virtual) timeline.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	fired   uint64
	stopped bool
	rng     *Rand
}

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// NewEngine returns an engine whose clock reads zero and whose root RNG
// is seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's root random stream. Model components should
// usually Fork their own sub-stream so that adding a component does not
// perturb the draws seen by others.
func (e *Engine) Rand() *Rand { return e.rng }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule queues fn to run after delay. A negative delay is an error;
// a zero delay runs fn at the current time, after events already queued
// for this instant.
func (e *Engine) Schedule(delay Time, fn func()) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("%w: delay %v", ErrPastEvent, delay)
	}
	return e.At(e.now+delay, fn)
}

// At queues fn to run at absolute virtual time t.
func (e *Engine) At(t Time, fn func()) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: t=%v now=%v", ErrPastEvent, t, e.now)
	}
	if fn == nil {
		return nil, errors.New("sim: nil event callback")
	}
	e.seq++
	ev := &Event{when: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev, nil
}

// MustSchedule is Schedule for call sites where the delay is known to be
// non-negative; it panics on error. Model code uses it for internally
// computed delays that are non-negative by construction.
func (e *Engine) MustSchedule(delay Time, fn func()) *Event {
	ev, err := e.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.stopped || ev.index < 0 {
		if ev != nil {
			ev.stopped = true
		}
		return
	}
	ev.stopped = true
	heap.Remove(&e.queue, ev.index)
}

// Stop makes the current Run/RunUntil call return once the executing
// event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It
// returns the number of events fired by this call.
func (e *Engine) Run() uint64 {
	return e.RunUntil(Time(math.MaxInt64))
}

// RunUntil executes events with timestamps <= deadline. The clock is left
// at the last fired event's time (or at deadline if the queue holds only
// later events, so that successive RunUntil calls advance monotonically).
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.stopped = false
	var fired uint64
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.when > deadline {
			if deadline > e.now && deadline != Time(math.MaxInt64) {
				e.now = deadline
			}
			return fired
		}
		heap.Pop(&e.queue)
		e.now = next.when
		next.index = -1
		e.fired++
		fired++
		next.fn()
	}
	if deadline > e.now && deadline != Time(math.MaxInt64) && !e.stopped {
		e.now = deadline
	}
	return fired
}

// NextEventTime reports the timestamp of the earliest pending event.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].when, true
}

// Step fires exactly one event if any is pending and reports whether one
// fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*Event)
	e.now = next.when
	next.index = -1
	e.fired++
	next.fn()
	return true
}
