// Package sim provides the discrete-event simulation kernel on which the
// whole LiteView reproduction runs. Every other subsystem — radio medium,
// MAC, LiteOS threads, LiteView commands — executes on the virtual clock
// owned by an Engine, so a scenario is fully determined by its topology,
// its seed, and its command script.
//
// Time is modelled as a time.Duration offset from the simulation epoch
// (t = 0). Events scheduled for the same instant fire in scheduling order
// (a monotonically increasing sequence number breaks ties), which keeps
// runs reproducible across machines.
//
// Engines are single-threaded by design, but fully self-contained: two
// engines share no mutable state, so independent simulations may run on
// concurrent goroutines (one engine per goroutine) — the parallel
// experiment runner in internal/bench relies on this.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp: the offset from the simulation epoch.
type Time = time.Duration

// Event is a scheduled callback. Fields are private to the engine; events
// are created via Engine.Schedule / Engine.At (which return a cancellable
// handle) or Engine.After (handle-free, recycled through the engine's
// free list).
type Event struct {
	when Time
	seq  uint64
	fn   func()
	// fnArg/arg is the single-argument fast path used by AfterArg: a
	// method value bound once at construction plus a per-fire argument,
	// so hot callers need no per-event closure. When fnArg is set it is
	// invoked instead of fn.
	fnArg func(any)
	arg   any
	// next chains events within a wheel slot (intrusive list; see
	// wheel.go). nil outside a slot.
	next    *Event
	queued  bool // currently resident in the wheel/overflow/cur structure
	stopped bool
	// pooled marks events scheduled through the handle-free After path.
	// No caller holds a reference to a pooled event, so the engine may
	// recycle its struct the moment it leaves the queue. Events with
	// handles are never recycled: a caller may Cancel one long after it
	// fired, and reuse would redirect that Cancel at an unrelated event.
	pooled bool
}

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Stopped reports whether the event has been cancelled.
func (e *Event) Stopped() bool { return e.stopped }

// defaultFreeListCap is the free list's floor: the engine always keeps
// up to this many recycled event structs regardless of load.
const defaultFreeListCap = 1024

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all model code runs inside event callbacks on the
// engine's own (virtual) timeline. Distinct engines are fully isolated
// and may run concurrently with one another.
type Engine struct {
	now     Time
	wheel   timerWheel
	seq     uint64
	fired   uint64
	stopped bool
	rng     *Rand
	// free recycles the structs of fired pooled events. Recycling is
	// invisible to the timeline: a reused struct gets a fresh seq, so
	// ordering is exactly what freshly allocated events would produce.
	free []*Event
	// freeCap, when non-zero, fixes the free list bound; zero selects
	// the adaptive default max(defaultFreeListCap, pending high-water).
	freeCap int
	// pending counts live (not fired, not cancelled) queued events;
	// highWater is its maximum so far and sizes the adaptive free list.
	pending   int
	highWater int
	// workers is the ForkJoin concurrency budget (see lanes.go); 0 and
	// 1 both mean strictly sequential.
	workers int
}

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// NewEngine returns an engine whose clock reads zero and whose root RNG
// is seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's root random stream. Model components should
// usually Fork their own sub-stream so that adding a component does not
// perturb the draws seen by others.
func (e *Engine) Rand() *Rand { return e.rng }

// Pending reports the number of events still queued. Cancelled events
// are not pending even while their tombstones await collection inside
// the wheel.
func (e *Engine) Pending() int { return e.pending }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetFreeListCap bounds the pooled-event free list. n > 0 fixes the
// bound; n == 0 restores the adaptive default, which tracks the
// pending-event high-water mark (with a defaultFreeListCap floor) so a
// 10k-node burst keeps its event structs instead of churning the
// allocator every cycle. Negative n is ignored.
func (e *Engine) SetFreeListCap(n int) {
	if n < 0 {
		return
	}
	e.freeCap = n
	if n > 0 && len(e.free) > n {
		clear(e.free[n:])
		e.free = e.free[:n]
	}
}

// push enqueues ev and maintains the pending accounting.
func (e *Engine) push(ev *Event) {
	ev.queued = true
	e.wheel.insert(ev)
	e.pending++
	if e.pending > e.highWater {
		e.highWater = e.pending
	}
}

// takeEvent returns a zeroed event struct, reusing a recycled one when
// available.
func (e *Engine) takeEvent(t Time, fn func(), pooled bool) *Event {
	e.seq++
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.when, ev.seq, ev.fn, ev.stopped, ev.pooled = t, e.seq, fn, false, pooled
		return ev
	}
	return &Event{when: t, seq: e.seq, fn: fn, pooled: pooled}
}

// recycle returns a pooled event's struct to the free list.
func (e *Engine) recycle(ev *Event) {
	limit := e.freeCap
	if limit == 0 {
		limit = e.highWater
		if limit < defaultFreeListCap {
			limit = defaultFreeListCap
		}
	}
	if len(e.free) < limit {
		ev.fn = nil
		ev.fnArg = nil
		ev.arg = nil
		e.free = append(e.free, ev)
	}
}

// Schedule queues fn to run after delay. A negative delay is an error;
// a zero delay runs fn at the current time, after events already queued
// for this instant.
func (e *Engine) Schedule(delay Time, fn func()) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("%w: delay %v", ErrPastEvent, delay)
	}
	return e.At(e.now+delay, fn)
}

// At queues fn to run at absolute virtual time t.
func (e *Engine) At(t Time, fn func()) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: t=%v now=%v", ErrPastEvent, t, e.now)
	}
	if fn == nil {
		return nil, errors.New("sim: nil event callback")
	}
	ev := e.takeEvent(t, fn, false)
	e.push(ev)
	return ev, nil
}

// MustSchedule is Schedule for call sites where the delay is known to be
// non-negative; it panics on error. Model code uses it for internally
// computed delays that are non-negative by construction.
func (e *Engine) MustSchedule(delay Time, fn func()) *Event {
	ev, err := e.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// After queues fn to run after delay without returning a handle: the
// event cannot be cancelled, and its struct is recycled through the
// engine's free list once it fires. This is the allocation-free fast
// path for the dominant fire-and-forget pattern (frame deliveries, MAC
// backoffs, self-rescheduling tickers). Like MustSchedule it panics on
// a negative delay; fn must be non-nil.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Errorf("%w: delay %v", ErrPastEvent, delay))
	}
	if fn == nil {
		panic(errors.New("sim: nil event callback"))
	}
	e.push(e.takeEvent(e.now+delay, fn, true))
}

// AfterArg is After for callbacks that need one argument: fn is
// typically a method value bound once at construction and arg the
// per-fire payload, so hot paths (frame deliveries carrying their
// transmission) schedule without allocating a closure. Storing a
// pointer in arg does not allocate. The same rules as After apply:
// handle-free, recycled after firing, panics on a negative delay or
// nil fn.
func (e *Engine) AfterArg(delay Time, fn func(any), arg any) {
	if delay < 0 {
		panic(fmt.Errorf("%w: delay %v", ErrPastEvent, delay))
	}
	if fn == nil {
		panic(errors.New("sim: nil event callback"))
	}
	ev := e.takeEvent(e.now+delay, nil, true)
	ev.fnArg, ev.arg = fn, arg
	e.push(ev)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancellation is lazy: the event
// stops counting as pending immediately, while its struct is discarded
// when the wheel next touches it.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	if ev.stopped || !ev.queued {
		ev.stopped = true
		return
	}
	ev.stopped = true
	e.pending--
}

// Stop makes the current Run/RunUntil call return once the executing
// event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It
// returns the number of events fired by this call.
func (e *Engine) Run() uint64 {
	return e.RunUntil(Time(math.MaxInt64))
}

// RunUntil executes events with timestamps <= deadline. The clock is left
// at the last fired event's time (or at deadline if the queue holds only
// later events, so that successive RunUntil calls advance monotonically).
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.stopped = false
	var fired uint64
	for !e.stopped {
		next := e.wheel.head()
		if next == nil {
			break
		}
		if next.when > deadline {
			if deadline > e.now && deadline != Time(math.MaxInt64) {
				e.now = deadline
			}
			return fired
		}
		e.fire(e.wheel.pop())
		fired++
	}
	if deadline > e.now && deadline != Time(math.MaxInt64) && !e.stopped {
		e.now = deadline
	}
	return fired
}

// fire advances the clock to ev and runs its callback.
func (e *Engine) fire(ev *Event) {
	e.pending--
	e.now = ev.when
	e.fired++
	fn, fnArg, arg := ev.fn, ev.fnArg, ev.arg
	// Recycle before firing: a callback that reschedules itself (the
	// ticker pattern) reuses the struct it just vacated.
	if ev.pooled {
		e.recycle(ev)
	}
	if fnArg != nil {
		fnArg(arg)
	} else {
		fn()
	}
}

// NextEventTime reports the timestamp of the earliest pending event.
func (e *Engine) NextEventTime() (Time, bool) {
	next := e.wheel.head()
	if next == nil {
		return 0, false
	}
	return next.when, true
}

// Step fires exactly one event if any is pending and reports whether one
// fired.
func (e *Engine) Step() bool {
	next := e.wheel.head()
	if next == nil {
		return false
	}
	e.fire(e.wheel.pop())
	return true
}
