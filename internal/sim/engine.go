// Package sim provides the discrete-event simulation kernel on which the
// whole LiteView reproduction runs. Every other subsystem — radio medium,
// MAC, LiteOS threads, LiteView commands — executes on the virtual clock
// owned by an Engine, so a scenario is fully determined by its topology,
// its seed, and its command script.
//
// Time is modelled as a time.Duration offset from the simulation epoch
// (t = 0). Events scheduled for the same instant fire in scheduling order
// (a monotonically increasing sequence number breaks ties), which keeps
// runs reproducible across machines.
//
// Engines are single-threaded by design, but fully self-contained: two
// engines share no mutable state, so independent simulations may run on
// concurrent goroutines (one engine per goroutine) — the parallel
// experiment runner in internal/bench relies on this.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp: the offset from the simulation epoch.
type Time = time.Duration

// Event is a scheduled callback. Fields are private to the engine; events
// are created via Engine.Schedule / Engine.At (which return a cancellable
// handle) or Engine.After (handle-free, recycled through the engine's
// free list).
type Event struct {
	when    Time
	seq     uint64
	fn      func()
	index   int // heap index; -1 once removed
	stopped bool
	// pooled marks events scheduled through the handle-free After path.
	// No caller holds a reference to a pooled event, so the engine may
	// recycle its struct the moment it leaves the queue. Events with
	// handles are never recycled: a caller may Cancel one long after it
	// fired, and reuse would redirect that Cancel at an unrelated event.
	pooled bool
}

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Stopped reports whether the event has been cancelled.
func (e *Event) Stopped() bool { return e.stopped }

// freeListCap bounds the engine's event free list so a burst of traffic
// does not pin memory forever.
const freeListCap = 1024

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all model code runs inside event callbacks on the
// engine's own (virtual) timeline. Distinct engines are fully isolated
// and may run concurrently with one another.
type Engine struct {
	now     Time
	queue   []*Event
	seq     uint64
	fired   uint64
	stopped bool
	rng     *Rand
	// free recycles the structs of fired pooled events. Recycling is
	// invisible to the timeline: a reused struct gets a fresh seq, so
	// ordering is exactly what freshly allocated events would produce.
	free []*Event
	// workers is the ForkJoin concurrency budget (see lanes.go); 0 and
	// 1 both mean strictly sequential.
	workers int
}

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// NewEngine returns an engine whose clock reads zero and whose root RNG
// is seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's root random stream. Model components should
// usually Fork their own sub-stream so that adding a component does not
// perturb the draws seen by others.
func (e *Engine) Rand() *Rand { return e.rng }

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// less orders the queue by (when, seq): virtual time first, scheduling
// order as the tiebreak. seq is unique, so the order is total and every
// valid heap pops the same sequence.
func (e *Engine) less(i, j int) bool {
	a, b := e.queue[i], e.queue[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) swap(i, j int) {
	q := e.queue
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

// siftUp restores the heap property from leaf i toward the root. The
// dominant scheduling pattern — a ticker or delivery event placed after
// everything currently queued — exits after a single comparison, which
// is the schedule-at-tail fast path.
func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap property from node i toward the leaves.
func (e *Engine) siftDown(i int) {
	n := len(e.queue)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && e.less(right, left) {
			least = right
		}
		if !e.less(least, i) {
			break
		}
		e.swap(i, least)
		i = least
	}
}

// push enqueues ev.
func (e *Engine) push(ev *Event) {
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.siftUp(ev.index)
}

// popHead removes and returns the earliest event.
func (e *Engine) popHead() *Event {
	ev := e.queue[0]
	n := len(e.queue) - 1
	e.swap(0, n)
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if n > 0 {
		e.siftDown(0)
	}
	ev.index = -1
	return ev
}

// removeAt removes the event at heap index i.
func (e *Engine) removeAt(i int) {
	n := len(e.queue) - 1
	if i != n {
		e.swap(i, n)
	}
	e.queue[n].index = -1
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if i != n {
		e.siftDown(i)
		e.siftUp(i)
	}
}

// takeEvent returns a zeroed event struct, reusing a recycled one when
// available.
func (e *Engine) takeEvent(t Time, fn func(), pooled bool) *Event {
	e.seq++
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.when, ev.seq, ev.fn, ev.stopped, ev.pooled = t, e.seq, fn, false, pooled
		return ev
	}
	return &Event{when: t, seq: e.seq, fn: fn, pooled: pooled}
}

// recycle returns a pooled event's struct to the free list.
func (e *Engine) recycle(ev *Event) {
	if len(e.free) < freeListCap {
		ev.fn = nil
		e.free = append(e.free, ev)
	}
}

// Schedule queues fn to run after delay. A negative delay is an error;
// a zero delay runs fn at the current time, after events already queued
// for this instant.
func (e *Engine) Schedule(delay Time, fn func()) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("%w: delay %v", ErrPastEvent, delay)
	}
	return e.At(e.now+delay, fn)
}

// At queues fn to run at absolute virtual time t.
func (e *Engine) At(t Time, fn func()) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: t=%v now=%v", ErrPastEvent, t, e.now)
	}
	if fn == nil {
		return nil, errors.New("sim: nil event callback")
	}
	ev := e.takeEvent(t, fn, false)
	e.push(ev)
	return ev, nil
}

// MustSchedule is Schedule for call sites where the delay is known to be
// non-negative; it panics on error. Model code uses it for internally
// computed delays that are non-negative by construction.
func (e *Engine) MustSchedule(delay Time, fn func()) *Event {
	ev, err := e.Schedule(delay, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// After queues fn to run after delay without returning a handle: the
// event cannot be cancelled, and its struct is recycled through the
// engine's free list once it fires. This is the allocation-free fast
// path for the dominant fire-and-forget pattern (frame deliveries, MAC
// backoffs, self-rescheduling tickers). Like MustSchedule it panics on
// a negative delay; fn must be non-nil.
func (e *Engine) After(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Errorf("%w: delay %v", ErrPastEvent, delay))
	}
	if fn == nil {
		panic(errors.New("sim: nil event callback"))
	}
	e.push(e.takeEvent(e.now+delay, fn, true))
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.stopped || ev.index < 0 {
		if ev != nil {
			ev.stopped = true
		}
		return
	}
	ev.stopped = true
	e.removeAt(ev.index)
}

// Stop makes the current Run/RunUntil call return once the executing
// event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It
// returns the number of events fired by this call.
func (e *Engine) Run() uint64 {
	return e.RunUntil(Time(math.MaxInt64))
}

// RunUntil executes events with timestamps <= deadline. The clock is left
// at the last fired event's time (or at deadline if the queue holds only
// later events, so that successive RunUntil calls advance monotonically).
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.stopped = false
	var fired uint64
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].when > deadline {
			if deadline > e.now && deadline != Time(math.MaxInt64) {
				e.now = deadline
			}
			return fired
		}
		next := e.popHead()
		e.now = next.when
		e.fired++
		fired++
		fn := next.fn
		// Recycle before firing: a callback that reschedules itself (the
		// ticker pattern) reuses the struct it just vacated.
		if next.pooled {
			e.recycle(next)
		}
		fn()
	}
	if deadline > e.now && deadline != Time(math.MaxInt64) && !e.stopped {
		e.now = deadline
	}
	return fired
}

// NextEventTime reports the timestamp of the earliest pending event.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].when, true
}

// Step fires exactly one event if any is pending and reports whether one
// fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := e.popHead()
	e.now = next.when
	e.fired++
	fn := next.fn
	if next.pooled {
		e.recycle(next)
	}
	fn()
	return true
}
