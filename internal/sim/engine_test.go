package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.MustSchedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.MustSchedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.MustSchedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustSchedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		if ticks < 5 {
			e.MustSchedule(time.Second, tick)
		}
	}
	e.MustSchedule(time.Second, tick)
	e.Run()
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", e.Now())
	}
}

func TestPastEventRejected(t *testing.T) {
	e := NewEngine(1)
	if _, err := e.Schedule(-time.Nanosecond, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
	e.MustSchedule(time.Second, func() {})
	e.Run()
	if _, err := e.At(time.Millisecond, func() {}); err == nil {
		t.Fatal("event in the past accepted")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.MustSchedule(time.Second, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Stopped() {
		t.Fatal("event not marked stopped")
	}
	// Double cancel and nil cancel are safe.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 1; i <= 4; i++ {
		i := i
		e.MustSchedule(time.Duration(i)*time.Second, func() { got = append(got, i) })
	}
	n := e.RunUntil(2500 * time.Millisecond)
	if n != 2 || len(got) != 2 {
		t.Fatalf("fired %d events (%v), want 2", n, got)
	}
	if e.Now() != 2500*time.Millisecond {
		t.Fatalf("clock did not advance to deadline: %v", e.Now())
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("remaining events did not fire: %v", got)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 0; i < 10; i++ {
		e.MustSchedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestStep(t *testing.T) {
	e := NewEngine(1)
	var count int
	e.MustSchedule(time.Millisecond, func() { count++ })
	e.MustSchedule(2*time.Millisecond, func() { count++ })
	if !e.Step() || count != 1 {
		t.Fatalf("first step: count=%d", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("second step: count=%d", count)
	}
	if e.Step() {
		t.Fatal("step on empty queue reported an event")
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.MustSchedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", e.Fired())
	}
}
