package sim

import (
	"sync/atomic"
	"testing"
)

// TestForkJoinCoversEveryLane checks every lane index runs exactly once
// for a spread of lane counts and worker budgets, including budgets
// larger than the lane count.
func TestForkJoinCoversEveryLane(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for _, lanes := range []int{0, 1, 2, 7, 33} {
			eng := NewEngine(1)
			eng.SetWorkers(workers)
			counts := make([]int32, lanes)
			eng.ForkJoin(lanes, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d lanes=%d: lane %d ran %d times", workers, lanes, i, c)
				}
			}
		}
	}
}

// TestForkJoinIsABarrier checks no lane work is outstanding when
// ForkJoin returns: the commit phase that follows may rely on every
// assessment being complete.
func TestForkJoinIsABarrier(t *testing.T) {
	eng := NewEngine(1)
	eng.SetWorkers(4)
	var running int32
	for round := 0; round < 50; round++ {
		eng.ForkJoin(16, func(i int) {
			atomic.AddInt32(&running, 1)
			atomic.AddInt32(&running, -1)
		})
		if n := atomic.LoadInt32(&running); n != 0 {
			t.Fatalf("round %d: %d lanes still running after the barrier", round, n)
		}
	}
}

// TestForkJoinDeterministicByIndex is the lane-merge contract: results
// written by lane index are identical at every worker count, because
// each lane's computation is a pure function of its index.
func TestForkJoinDeterministicByIndex(t *testing.T) {
	run := func(workers int) []uint64 {
		eng := NewEngine(7)
		eng.SetWorkers(workers)
		out := make([]uint64, 257)
		eng.ForkJoin(len(out), func(i int) {
			v := uint64(i) * 0x9e3779b97f4a7c15
			v ^= v >> 29
			out[i] = v
		})
		return out
	}
	base := run(1)
	for _, workers := range []int{2, 3, 8} {
		got := run(workers)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: lane %d produced %x, sequential produced %x",
					workers, i, got[i], base[i])
			}
		}
	}
}

// TestWorkersClamp pins the budget accessor's floor.
func TestWorkersClamp(t *testing.T) {
	eng := NewEngine(1)
	if eng.Workers() != 1 {
		t.Fatalf("fresh engine Workers = %d, want 1", eng.Workers())
	}
	eng.SetWorkers(-3)
	if eng.Workers() != 1 {
		t.Fatalf("Workers after SetWorkers(-3) = %d, want 1", eng.Workers())
	}
	eng.SetWorkers(6)
	if eng.Workers() != 6 {
		t.Fatalf("Workers = %d, want 6", eng.Workers())
	}
}
