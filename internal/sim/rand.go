package sim

import "math"

// Rand is a small, fast, deterministic random stream based on
// splitmix64. The simulation cannot use math/rand's global state: every
// model component forks its own stream so that the packet-level trace of
// a scenario depends only on (topology, seed, script), not on the order
// in which unrelated components happen to draw.
type Rand struct {
	state uint64
	// spare holds a cached second normal deviate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRand returns a stream seeded with seed. Seed zero is valid.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed + 0x9e3779b97f4a7c15}
}

// Fork derives an independent child stream labelled by label. Forking is
// deterministic: the same parent state and label always produce the same
// child. Fork advances the parent by one draw.
func (r *Rand) Fork(label string) *Rand {
	h := r.Uint64()
	for _, b := range []byte(label) {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return NewRand(h)
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal deviate (Box-Muller transform).
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// ExpFloat64 returns an exponential deviate with mean 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Jitter returns a uniform duration in [0, max). A non-positive max
// yields zero, which lets callers pass configured windows through
// without special-casing "no jitter".
func (r *Rand) Jitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(r.Uint64() % uint64(max))
}
