package sim

import (
	"math/rand"
	"testing"
)

// refQueue is the oracle: a deliberately naive pending set whose pop is
// a linear scan for the (when, seq) minimum. Correctness is obvious by
// inspection, which is the point — the timer wheel must reproduce its
// pop sequence exactly, ties, cancellations and all.
type refQueue struct {
	evs []*Event
}

func (r *refQueue) add(ev *Event) { r.evs = append(r.evs, ev) }

// pop removes and returns the earliest live event, discarding stopped
// ones along the way; nil when nothing live is pending.
func (r *refQueue) pop() *Event {
	best := -1
	for i := 0; i < len(r.evs); i++ {
		ev := r.evs[i]
		if ev.stopped {
			r.evs[i] = r.evs[len(r.evs)-1]
			r.evs = r.evs[:len(r.evs)-1]
			i--
			continue
		}
		if best < 0 || evLess(ev, r.evs[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	ev := r.evs[best]
	r.evs[best] = r.evs[len(r.evs)-1]
	r.evs = r.evs[:len(r.evs)-1]
	return ev
}

// runWheelOracle drives the wheel and the reference queue through the
// same randomized schedule/peek/cancel/pop sequence and asserts the
// wheel pops the identical events in the identical order.
func runWheelOracle(t *testing.T, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var w timerWheel
	var ref refQueue
	var seq uint64
	var now Time
	var live []*Event // cancellable candidates still thought queued
	schedule := func() {
		var delta int64
		switch rng.Intn(5) {
		case 0:
			delta = 0 // same-instant tie, ordered by seq alone
		case 1:
			delta = rng.Int63n(1 << 12) // sub-tick
		case 2:
			delta = rng.Int63n(1 << 22) // level 0-1
		case 3:
			delta = rng.Int63n(1 << 40) // mid levels
		case 4:
			delta = rng.Int63n(1 << 55) // beyond horizon: overflow heap
		}
		seq++
		ev := &Event{when: now + Time(delta), seq: seq, queued: true}
		w.insert(ev)
		ref.add(ev)
		live = append(live, ev)
	}
	pop := func() {
		want := ref.pop()
		got := w.head()
		if (want == nil) != (got == nil) {
			t.Fatalf("seed %d: wheel head = %v, reference = %v (now=%v)", seed, got, want, now)
		}
		if got == nil {
			return
		}
		w.pop()
		if got != want {
			t.Fatalf("seed %d: wheel popped (when=%v seq=%d), reference (when=%v seq=%d)",
				seed, got.when, got.seq, want.when, want.seq)
		}
		if got.when < now {
			t.Fatalf("seed %d: pop went backwards: %v < %v", seed, got.when, now)
		}
		now = got.when
	}
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(10); {
		case r < 4:
			schedule()
		case r < 6: // cancel a random candidate, lazily as Engine.Cancel does
			if len(live) == 0 {
				continue
			}
			j := rng.Intn(len(live))
			ev := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			if ev.queued && !ev.stopped {
				ev.stopped = true
			}
		case r < 7: // peek only: advances the cursor without removing
			w.head()
		default:
			pop()
		}
	}
	for { // drain; the final nil-vs-nil comparison closes the ledger
		want := ref.pop()
		got := w.head()
		if (want == nil) != (got == nil) {
			t.Fatalf("seed %d: drain mismatch: wheel=%v reference=%v", seed, got, want)
		}
		if got == nil {
			return
		}
		w.pop()
		if got != want {
			t.Fatalf("seed %d: drain popped (when=%v seq=%d), reference (when=%v seq=%d)",
				seed, got.when, got.seq, want.when, want.seq)
		}
		now = got.when
	}
}

// TestWheelOracle is the satellite differential harness: many seeds,
// each a few thousand mixed operations.
func TestWheelOracle(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		runWheelOracle(t, seed, 4000)
	}
}

// FuzzWheelOracle lets the fuzzer hunt for operation sequences (via the
// seed) that break wheel-vs-reference agreement.
func FuzzWheelOracle(f *testing.F) {
	for _, s := range []int64{0, 1, 42, 1 << 40} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		runWheelOracle(t, seed, 600)
	})
}

// TestCancelNotPending pins the Pending() accounting fix: a cancelled
// but unfired event must drop out of the pending count immediately,
// even while its tombstone still sits inside the wheel.
func TestCancelNotPending(t *testing.T) {
	e := NewEngine(1)
	var evs []*Event
	for i := 0; i < 5; i++ {
		ev, err := e.Schedule(Time(i+1)*1000, func() {})
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	if got := e.Pending(); got != 5 {
		t.Fatalf("Pending() = %d before cancel, want 5", got)
	}
	e.Cancel(evs[1])
	e.Cancel(evs[3])
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending() = %d after two cancels, want 3", got)
	}
	e.Cancel(evs[3]) // double cancel must not double-count
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending() = %d after double cancel, want 3", got)
	}
	if fired := e.Run(); fired != 3 {
		t.Fatalf("Run fired %d events, want 3", fired)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after run, want 0", got)
	}
	e.Cancel(evs[0]) // cancelling a fired event is a no-op
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after post-fire cancel, want 0", got)
	}
}

// TestFreeListAdaptiveCap exercises the free-list sizing option: by
// default the list grows to the pending high-water mark, and an
// explicit SetFreeListCap bounds it.
func TestFreeListAdaptiveCap(t *testing.T) {
	e := NewEngine(1)
	const burst = 3 * defaultFreeListCap
	for i := 0; i < burst; i++ {
		e.After(Time(i), func() {})
	}
	if e.highWater != burst {
		t.Fatalf("highWater = %d, want %d", e.highWater, burst)
	}
	e.Run()
	if len(e.free) != burst {
		t.Fatalf("adaptive free list kept %d structs, want the high-water %d", len(e.free), burst)
	}
	e.SetFreeListCap(10)
	if len(e.free) != 10 {
		t.Fatalf("free list = %d after SetFreeListCap(10), want 10", len(e.free))
	}
	for i := 0; i < 50; i++ {
		e.After(Time(i), func() {})
	}
	e.Run()
	if len(e.free) != 10 {
		t.Fatalf("free list = %d after capped run, want 10", len(e.free))
	}
	e.SetFreeListCap(-1) // ignored
	if e.freeCap != 10 {
		t.Fatalf("freeCap = %d after negative set, want 10", e.freeCap)
	}
	e.SetFreeListCap(0) // back to adaptive
	if e.freeCap != 0 {
		t.Fatalf("freeCap = %d after reset, want 0 (adaptive)", e.freeCap)
	}
}
