package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestForkDeterministicAndIndependent(t *testing.T) {
	mk := func() (*Rand, *Rand) {
		root := NewRand(7)
		return root.Fork("mac"), root.Fork("radio")
	}
	m1, r1 := mk()
	m2, r2 := mk()
	for i := 0; i < 100; i++ {
		if m1.Uint64() != m2.Uint64() || r1.Uint64() != r2.Uint64() {
			t.Fatal("forked streams are not reproducible")
		}
	}
	m3, r3 := mk()
	same := 0
	for i := 0; i < 100; i++ {
		if m3.Uint64() == r3.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling forks correlated: %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(4)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestBoolEdges(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	// Bool(0.5) should be roughly balanced.
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.5) {
			trues++
		}
	}
	if trues < 4500 || trues > 5500 {
		t.Fatalf("Bool(0.5) true-rate = %d/10000", trues)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(6)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %f", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %f", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(8)
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("exponential mean = %f", mean)
	}
}

func TestJitter(t *testing.T) {
	r := NewRand(9)
	if r.Jitter(0) != 0 || r.Jitter(-time.Second) != 0 {
		t.Fatal("non-positive window must yield zero jitter")
	}
	for i := 0; i < 1000; i++ {
		j := r.Jitter(100 * time.Millisecond)
		if j < 0 || j >= 100*time.Millisecond {
			t.Fatalf("jitter %v out of window", j)
		}
	}
}

func TestEngineRandIsStable(t *testing.T) {
	e1, e2 := NewEngine(99), NewEngine(99)
	for i := 0; i < 10; i++ {
		if e1.Rand().Uint64() != e2.Rand().Uint64() {
			t.Fatal("engine root streams with equal seeds diverged")
		}
	}
}
