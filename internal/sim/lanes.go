package sim

import "sync"

// Concurrent lanes: the engine's escape hatch from strict
// single-threaded execution.
//
// The simulation stays a single timeline — events fire one at a time,
// in (when, seq) order — but one *event* may fan independent read-only
// work out over several OS threads and join it before committing any
// observable effect. The canonical user is the sharded radio medium: a
// frame delivery assesses hundreds of receivers grouped by spatial
// cell, and cells are causally independent over the propagation-delay
// lookahead (no transmission can influence another cell's state in
// less than one frame airtime), so the per-cell assessments commute.
// The barrier in ForkJoin is what turns that physical lookahead into a
// determinism guarantee: all concurrent work completes before the
// caller applies a single state change, and the caller commits results
// in lane-index order, so the bytes a simulation produces are
// identical for every worker count.
//
// The contract for fn passed to ForkJoin:
//
//   - it must not touch the engine (no scheduling, no clock reads via
//     mutation, no RNG draws — randomness order is timeline order);
//   - distinct lanes must not write shared state (per-lane caches are
//     fine — that is the point of sharding);
//   - all observable effects (stats, callbacks, telemetry, RNG) happen
//     after ForkJoin returns, in an order chosen by lane index, never
//     by completion.

// SetWorkers sets the engine's concurrency budget for ForkJoin: the
// maximum number of lanes assessed simultaneously (the caller's
// goroutine counts as one). Values below 1 clamp to 1, which keeps
// every ForkJoin inline — the sequential baseline. The budget is a
// performance knob only: by the ForkJoin contract, results are
// byte-identical at any setting.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Workers reports the engine's concurrency budget (at least 1).
func (e *Engine) Workers() int {
	if e.workers < 1 {
		return 1
	}
	return e.workers
}

// ForkJoin runs fn(0) … fn(lanes-1), spreading lanes over up to
// Workers() OS threads, and returns only when every lane has finished
// (the lookahead barrier). With a budget of 1 — or a single lane — it
// degrades to a plain loop on the caller's goroutine, so the
// sequential and concurrent paths execute the same code per lane.
// Lanes are distributed round-robin by index, so which goroutine runs
// a lane is a pure function of (lane, workers) — nothing about the
// interleaving can leak into results that honour the fn contract
// above.
func (e *Engine) ForkJoin(lanes int, fn func(lane int)) {
	workers := e.Workers()
	if workers > lanes {
		workers = lanes
	}
	if workers <= 1 {
		for i := 0; i < lanes; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < lanes; i += workers {
				fn(i)
			}
		}(w)
	}
	for i := 0; i < lanes; i += workers {
		fn(i)
	}
	wg.Wait()
}
