package sim

import "errors"

// Ticker runs a callback periodically on the engine's virtual clock.
// It captures the pattern every periodic protocol in the model needs:
// a randomized initial phase (so co-started nodes do not fire in
// lockstep), runtime period changes that take effect immediately, and
// a Stop that reliably cancels pending fires (via a generation counter,
// since the engine has no handle-free cancellation for closures that
// reschedule themselves).
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func()
	gen     uint64
	running bool
}

// NewTicker prepares a ticker; call Start to begin. fn runs once per
// period while the ticker is running.
func NewTicker(eng *Engine, period Time, fn func()) (*Ticker, error) {
	if eng == nil || fn == nil {
		return nil, errors.New("sim: ticker needs an engine and a callback")
	}
	if period <= 0 {
		return nil, errors.New("sim: ticker period must be positive")
	}
	return &Ticker{eng: eng, period: period, fn: fn}, nil
}

// Period returns the current interval.
func (t *Ticker) Period() Time { return t.period }

// Running reports whether the ticker is active.
func (t *Ticker) Running() bool { return t.running }

// Start begins ticking, firing first after phase (pass a random phase
// to desynchronise a fleet; 0 fires after one full period). Starting a
// running ticker is a no-op.
func (t *Ticker) Start(phase Time) {
	if t.running {
		return
	}
	t.running = true
	t.gen++
	gen := t.gen
	if phase <= 0 {
		phase = t.period
	}
	t.eng.After(phase, func() { t.tick(gen) })
}

// Stop halts the ticker; a later Start resumes it.
func (t *Ticker) Stop() {
	t.running = false
	t.gen++
}

// SetPeriod changes the interval. When running, the next fire is
// rescheduled a full new period from now.
func (t *Ticker) SetPeriod(d Time) error {
	if d <= 0 {
		return errors.New("sim: ticker period must be positive")
	}
	t.period = d
	if t.running {
		t.gen++
		gen := t.gen
		t.eng.After(t.period, func() { t.tick(gen) })
	}
	return nil
}

func (t *Ticker) tick(gen uint64) {
	if !t.running || gen != t.gen {
		return
	}
	t.fn()
	if !t.running || gen != t.gen {
		return // fn stopped or rescheduled us
	}
	t.eng.After(t.period, func() { t.tick(gen) })
}
