package sim

import (
	"testing"
	"time"
)

// TestAfterOrdering checks that handle-free events interleave with
// handled events in strict (when, scheduling-order) order.
func TestAfterOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(2*time.Millisecond, func() { got = append(got, 2) })
	e.MustSchedule(time.Millisecond, func() { got = append(got, 1) })
	e.After(time.Millisecond, func() { got = append(got, 11) }) // same instant, later seq
	e.After(3*time.Millisecond, func() { got = append(got, 3) })
	e.Run()
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestAfterRecycling drives the ticker pattern long enough to cycle the
// free list many times over and checks nothing is lost or reordered.
func TestAfterRecycling(t *testing.T) {
	e := NewEngine(1)
	const rounds = 10000
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < rounds {
			e.After(time.Millisecond, tick)
		}
	}
	e.After(time.Millisecond, tick)
	e.Run()
	if n != rounds {
		t.Fatalf("ticks = %d, want %d", n, rounds)
	}
	if e.Now() != rounds*time.Millisecond {
		t.Fatalf("Now = %v, want %v", e.Now(), rounds*time.Millisecond)
	}
	if e.Fired() != rounds {
		t.Fatalf("Fired = %d, want %d", e.Fired(), rounds)
	}
}

// TestHandleEventsNeverRecycled asserts that a fired handle event's
// struct stays out of the free list: cancelling it long after the fact
// must not disturb a pooled event that fires at the same instant.
func TestHandleEventsNeverRecycled(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	ev := e.MustSchedule(time.Millisecond, func() { fired++ })
	e.Run()
	// Refill the queue; if ev's struct had been recycled this After
	// could be sitting in the same struct the stale Cancel targets.
	e.After(time.Millisecond, func() { fired++ })
	e.Cancel(ev) // stale cancel on an already-fired handle: must be a no-op
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (stale Cancel hit a live event)", fired)
	}
}

// TestAfterPanicsOnBadArgs pins the MustSchedule-compatible contract.
func TestAfterPanicsOnBadArgs(t *testing.T) {
	e := NewEngine(1)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("negative delay", func() { e.After(-time.Nanosecond, func() {}) })
	expectPanic("nil callback", func() { e.After(time.Second, nil) })
}

// TestMixedCancelDeterminism replays a workload mixing pooled events,
// handle events, and cancellations, and checks that two engines with the
// same seed produce identical firing sequences.
func TestMixedCancelDeterminism(t *testing.T) {
	workload := func() []int {
		e := NewEngine(7)
		var got []int
		for i := 0; i < 200; i++ {
			i := i
			d := Time(e.Rand().Intn(50)) * time.Millisecond
			if i%3 == 0 {
				ev := e.MustSchedule(d, func() { got = append(got, i) })
				if i%6 == 0 {
					e.Cancel(ev)
				}
			} else {
				e.After(d, func() { got = append(got, i) })
			}
		}
		e.Run()
		return got
	}
	a, b := workload(), workload()
	if len(a) != len(b) {
		t.Fatalf("runs fired %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
