package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// quickCheck wraps testing/quick with a bounded count.
func quickCheck(f any) error {
	return quick.Check(f, &quick.Config{MaxCount: 150})
}

func TestTickerFiresPeriodically(t *testing.T) {
	eng := NewEngine(1)
	n := 0
	tk, err := NewTicker(eng, time.Second, func() { n++ })
	if err != nil {
		t.Fatal(err)
	}
	tk.Start(0)
	eng.RunUntil(10 * time.Second)
	if n != 10 {
		t.Fatalf("fired %d times in 10 s at 1 s period", n)
	}
}

func TestTickerPhase(t *testing.T) {
	eng := NewEngine(2)
	var first Time
	tk, _ := NewTicker(eng, time.Second, func() {
		if first == 0 {
			first = eng.Now()
		}
	})
	tk.Start(250 * time.Millisecond)
	eng.RunUntil(5 * time.Second)
	if first != 250*time.Millisecond {
		t.Fatalf("first fire at %v", first)
	}
}

func TestTickerStopAndRestart(t *testing.T) {
	eng := NewEngine(3)
	n := 0
	tk, _ := NewTicker(eng, time.Second, func() { n++ })
	tk.Start(0)
	eng.RunUntil(5 * time.Second)
	tk.Stop()
	if tk.Running() {
		t.Fatal("running after Stop")
	}
	eng.RunUntil(20 * time.Second)
	if n != 5 {
		t.Fatalf("ticks after stop: %d", n)
	}
	tk.Start(0)
	tk.Start(0) // idempotent
	eng.RunUntil(25 * time.Second)
	if n != 10 {
		t.Fatalf("ticks after restart: %d", n)
	}
}

func TestTickerSetPeriod(t *testing.T) {
	eng := NewEngine(4)
	n := 0
	tk, _ := NewTicker(eng, time.Second, func() { n++ })
	tk.Start(0)
	eng.RunUntil(2 * time.Second) // 2 fires
	if err := tk.SetPeriod(250 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(4 * time.Second) // 2 s at 4 Hz = 8 more
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
	if tk.Period() != 250*time.Millisecond {
		t.Fatalf("period = %v", tk.Period())
	}
	if err := tk.SetPeriod(0); err == nil {
		t.Fatal("zero period accepted")
	}
	// SetPeriod while stopped just stores it.
	tk.Stop()
	if err := tk.SetPeriod(time.Minute); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Minute)
	if n != 10 {
		t.Fatal("stopped ticker fired after SetPeriod")
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	eng := NewEngine(5)
	n := 0
	var tk *Ticker
	tk, _ = NewTicker(eng, time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	tk.Start(0)
	eng.RunUntil(time.Minute)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3 (self-stop)", n)
	}
}

func TestTickerValidation(t *testing.T) {
	eng := NewEngine(6)
	if _, err := NewTicker(nil, time.Second, func() {}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewTicker(eng, time.Second, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
	if _, err := NewTicker(eng, 0, func() {}); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestRunUntilMonotonicProperty(t *testing.T) {
	// For any batch of event delays and any split point, running in two
	// RunUntil steps fires the same events in the same order as one Run.
	prop := func(delays []uint16, splitAt uint16) bool {
		if len(delays) == 0 {
			return true
		}
		record := func(two bool) []int {
			eng := NewEngine(1)
			var order []int
			for i, d := range delays {
				i := i
				eng.MustSchedule(Time(d)*time.Millisecond, func() { order = append(order, i) })
			}
			if two {
				eng.RunUntil(Time(splitAt) * time.Millisecond)
				eng.Run()
			} else {
				eng.Run()
			}
			return order
		}
		one, split := record(false), record(true)
		if len(one) != len(split) {
			return false
		}
		for i := range one {
			if one[i] != split[i] {
				return false
			}
		}
		return true
	}
	if err := quickCheck(prop); err != nil {
		t.Fatal(err)
	}
}
