package testbed

import (
	"strings"
	"testing"
	"time"

	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/routing"
)

func TestLPLOptionDutyCyclesNodes(t *testing.T) {
	opt := DefaultOptions(91)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	opt.LPL = true
	opt.BeaconPeriod = 10 * time.Second
	tb, err := Line(2, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(30 * time.Second)
	// A duty-cycled idle node spends most of its time with the radio
	// off.
	st := tb.Node(1).Energy().Stats()
	if st.OffTime < st.RXTime {
		t.Fatalf("LPL node mostly awake: %+v", st)
	}
}

func TestBeaconPeriodOption(t *testing.T) {
	opt := DefaultOptions(92)
	opt.BeaconPeriod = 7 * time.Second
	tb, err := Line(2, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Node(0).Neighbors().Period(); got != 7*time.Second {
		t.Fatalf("beacon period = %v", got)
	}
}

func TestAlwaysOnDefaultStaysAwake(t *testing.T) {
	opt := DefaultOptions(93)
	tb, err := Line(2, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(10 * time.Second)
	if tb.Node(0).Radio().State() == radio.Off {
		t.Fatal("always-on node slept")
	}
	st := tb.Node(0).Energy().Stats()
	if st.OffTime != 0 {
		t.Fatalf("always-on node accrued off time: %+v", st)
	}
}

func TestAttachOnDemandOption(t *testing.T) {
	opt := DefaultOptions(94)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := Line(3, 15, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachOnDemand(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, ok := tb.Router(routing.OnDemandPort, phys.NodeID(i)); !ok {
			t.Fatalf("on-demand router missing at node %d", i)
		}
	}
}

func TestRunAdvancesClock(t *testing.T) {
	opt := DefaultOptions(95)
	tb, err := Line(1, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	before := tb.Eng.Now()
	tb.Run(3 * time.Second)
	if tb.Eng.Now()-before != 3*time.Second {
		t.Fatalf("Run advanced %v", tb.Eng.Now()-before)
	}
}

func TestRecordTrace(t *testing.T) {
	opt := DefaultOptions(96)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := Line(2, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	stop := tb.RecordTrace(&buf)
	tb.WarmUp(10 * time.Second)
	stop()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace too short:\n%s", buf.String())
	}
	if lines[0] != "start_us,end_us,from,channel,tx_dbm,bytes" {
		t.Fatalf("header = %q", lines[0])
	}
	before := len(lines)
	tb.Run(10 * time.Second)
	after := len(strings.Split(strings.TrimSpace(buf.String()), "\n"))
	if after != before {
		t.Fatal("stopped recorder kept writing")
	}
}
