// Package testbed assembles whole simulated deployments: engines,
// medium, nodes with IP-convention names, and the routing protocols
// attached to every node. It reproduces the paper's experimental
// setups — a thirty-node testbed for one-hop commands and an eight-hop
// line for the traceroute experiments — and supplies the position
// oracle geographic forwarding needs.
package testbed

import (
	"errors"
	"fmt"
	"io"

	"liteview/internal/core"
	"liteview/internal/fault"
	"liteview/internal/liteos"
	"liteview/internal/mac"
	"liteview/internal/medium"
	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// Options configures a deployment.
type Options struct {
	// Seed fixes engine and radio-map randomness (same seed, same
	// packet trace).
	Seed uint64
	// ShadowSigma overrides the model's shadowing in dB; negative
	// keeps the model default, zero disables shadowing.
	ShadowSigma float64
	// AsymSigma overrides the per-direction asymmetry in dB; negative
	// keeps the default, zero disables it.
	AsymSigma float64
	// Channel is the initial radio channel (0 = 17).
	Channel int
	// NeighborCapacity bounds each kernel neighbor table (0 = default).
	NeighborCapacity int
	// LPL enables low-power listening (duty cycling) on every node.
	LPL bool
	// BeaconPeriod overrides the neighbor beacon interval (0 keeps the
	// default; LPL deployments want long periods — each broadcast costs
	// a full sleep interval of repeats).
	BeaconPeriod sim.Time
	// ShardMedium partitions the radio medium into spatial cells
	// (medium.SetSharding): ring-bounded fan-outs and, with
	// MediumWorkers above one, concurrent per-cell delivery assessment.
	// Output is byte-identical at every worker count.
	ShardMedium bool
	// MediumWorkers is the concurrency budget for sharded delivery
	// assessment (0 keeps the engine sequential). Only meaningful with
	// ShardMedium.
	MediumWorkers int
}

// DefaultOptions keeps the propagation model defaults.
func DefaultOptions(seed uint64) Options {
	return Options{Seed: seed, ShadowSigma: -1, AsymSigma: -1}
}

// Testbed is an assembled deployment.
type Testbed struct {
	Eng   *sim.Engine
	Med   *medium.Medium
	Model *phys.Model
	Nodes []*liteos.Node

	opt    Options
	byID   map[phys.NodeID]*liteos.Node
	byName map[string]*liteos.Node
	// routers[port][node] holds attached protocol instances.
	routers map[byte]map[phys.NodeID]*routing.Router
	// injector is the lazily created fault injector.
	injector *fault.Injector
	// tel is the lazily created telemetry recorder; ctls and wss track
	// installed controllers and workstations so late-created components
	// get wired into it too.
	tel  *telemetry.Recorder
	ctls []*core.Controller
	wss  []*core.Workstation
}

// build creates nodes at the given positions with paper-style names:
// node i (1-based) is "192.168.0.i" mounted at "/sn0i". Deployments
// beyond the paper's scale roll into further /24s: node 251 is
// "192.168.1.1", node 502 is "192.168.2.2", and so on (see nodeName).
// maxNodes bounds deployment size: 250 hosts in each of 250 /24
// subnets, comfortably inside the 16-bit 802.15.4 address space.
const maxNodes = 250 * 250

// ErrTooManyNodes is returned (wrapped) when a topology exceeds
// maxNodes; callers reject over-cap deployments with errors.Is.
var ErrTooManyNodes = errors.New("testbed: deployment exceeds the address space")

// nodeName returns the management name of 1-based node x. The paper's
// 30-mote testbed lives in 192.168.0.0/24; larger deployments continue
// into 192.168.1.0/24 and beyond, 250 hosts per subnet. Hosts are
// numbered 1..250 within each subnet — the arithmetic is over x−1 so a
// subnet's 250th node stays in it (node 500 is "192.168.1.250", not an
// invalid host 0 in the next /24).
func nodeName(x int) string {
	return fmt.Sprintf("192.168.%d.%d", (x-1)/250, (x-1)%250+1)
}

func build(positions []phys.Position, opt Options) (*Testbed, error) {
	if len(positions) == 0 {
		return nil, errors.New("testbed: no nodes")
	}
	if len(positions) > maxNodes {
		return nil, fmt.Errorf("%w: %d nodes, max %d (250 hosts in each of 250 /24 subnets)",
			ErrTooManyNodes, len(positions), maxNodes)
	}
	eng := sim.NewEngine(opt.Seed)
	model := phys.DefaultModel(opt.Seed)
	if opt.ShadowSigma >= 0 {
		model.ShadowSigma = opt.ShadowSigma
	}
	if opt.AsymSigma >= 0 {
		model.AsymSigma = opt.AsymSigma
	}
	med := medium.New(eng, model)
	if opt.ShardMedium {
		if err := med.SetSharding(medium.Sharding{Workers: opt.MediumWorkers}); err != nil {
			return nil, fmt.Errorf("testbed: %w", err)
		}
	}
	tb := &Testbed{
		Eng:     eng,
		Med:     med,
		Model:   model,
		opt:     opt,
		byID:    make(map[phys.NodeID]*liteos.Node),
		byName:  make(map[string]*liteos.Node),
		routers: make(map[byte]map[phys.NodeID]*routing.Router),
	}
	for i, pos := range positions {
		id := phys.NodeID(i + 1)
		cfg := liteos.Config{
			ID:               id,
			Name:             nodeName(i + 1),
			Dir:              fmt.Sprintf("/sn%02d", i+1),
			Pos:              pos,
			Channel:          opt.Channel,
			NeighborCapacity: opt.NeighborCapacity,
		}
		if opt.LPL {
			macCfg := mac.DefaultConfig()
			macCfg.LPL = true
			cfg.MAC = macCfg
		}
		n, err := liteos.NewNode(eng, med, cfg)
		if err != nil {
			return nil, err
		}
		if opt.BeaconPeriod > 0 {
			if err := n.Neighbors().SetPeriod(opt.BeaconPeriod); err != nil {
				return nil, err
			}
		}
		tb.Nodes = append(tb.Nodes, n)
		tb.byID[id] = n
		tb.byName[cfg.Name] = n
	}
	return tb, nil
}

// Custom builds a deployment with explicit node positions: node i
// (0-based in positions, 1-based as a NodeID) sits at positions[i].
// Topologies the canned generators cannot express — e.g. the diamond
// the recovery benchmark uses to guarantee an alternate path — are
// built this way.
func Custom(positions []phys.Position, opt Options) (*Testbed, error) {
	return build(positions, opt)
}

// Line builds n nodes in a straight line with the given spacing in
// meters: the paper's eight-hop-diameter topology is Line(9, spacing).
func Line(n int, spacing float64, opt Options) (*Testbed, error) {
	if n < 1 {
		return nil, errors.New("testbed: line needs at least one node")
	}
	positions := make([]phys.Position, n)
	for i := range positions {
		positions[i] = phys.Position{X: float64(i) * spacing}
	}
	return build(positions, opt)
}

// Grid builds rows×cols nodes with the given spacing.
func Grid(rows, cols int, spacing float64, opt Options) (*Testbed, error) {
	if rows < 1 || cols < 1 {
		return nil, errors.New("testbed: grid needs positive dimensions")
	}
	positions := make([]phys.Position, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			positions = append(positions, phys.Position{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return build(positions, opt)
}

// Random scatters n nodes uniformly over a width×height field using the
// seed, so a deployment is reproducible.
func Random(n int, width, height float64, opt Options) (*Testbed, error) {
	if n < 1 {
		return nil, errors.New("testbed: need at least one node")
	}
	rng := sim.NewRand(opt.Seed ^ 0x746f706f) // independent of engine streams
	positions := make([]phys.Position, n)
	for i := range positions {
		positions[i] = phys.Position{X: rng.Float64() * width, Y: rng.Float64() * height}
	}
	return build(positions, opt)
}

// Node returns the i-th node (0-based index).
func (tb *Testbed) Node(i int) *liteos.Node { return tb.Nodes[i] }

// ByID resolves a node by short address.
func (tb *Testbed) ByID(id phys.NodeID) (*liteos.Node, bool) {
	n, ok := tb.byID[id]
	return n, ok
}

// ByName resolves a node by its IP-convention name.
func (tb *Testbed) ByName(name string) (*liteos.Node, bool) {
	n, ok := tb.byName[name]
	return n, ok
}

// Locator returns the position oracle geographic forwarding uses.
func (tb *Testbed) Locator() routing.Locator {
	return func(id phys.NodeID) (phys.Position, bool) {
		n, ok := tb.byID[id]
		if !ok {
			return phys.Position{}, false
		}
		return n.Position(), true
	}
}

// StartBeacons starts the neighbor service on every node.
func (tb *Testbed) StartBeacons() {
	for _, n := range tb.Nodes {
		n.Neighbors().Start()
	}
}

// WarmUp starts beacons (if not already) and runs the simulation for d
// so that neighbor tables and routing gradients converge.
func (tb *Testbed) WarmUp(d sim.Time) {
	tb.StartBeacons()
	tb.Eng.RunUntil(tb.Eng.Now() + d)
}

// AttachGeographic attaches geographic forwarding to every node on its
// default port and records the instances.
func (tb *Testbed) AttachGeographic(cfg routing.Config) error {
	loc := tb.Locator()
	for _, n := range tb.Nodes {
		r, err := routing.NewGeographic(n.Engine(), n.Stack(), n.SysNeighborTable(), loc, cfg)
		if err != nil {
			return err
		}
		tb.record(r, n.ID())
	}
	return nil
}

// AttachFlooding attaches the flooding protocol to every node.
func (tb *Testbed) AttachFlooding(cfg routing.Config) error {
	for _, n := range tb.Nodes {
		r, err := routing.NewFlooding(n.Engine(), n.Stack(), n.SysNeighborTable(), cfg)
		if err != nil {
			return err
		}
		tb.record(r, n.ID())
	}
	return nil
}

// AttachOnDemand attaches the on-demand (AODV-style) protocol to every
// node.
func (tb *Testbed) AttachOnDemand(cfg routing.Config) error {
	for _, n := range tb.Nodes {
		r, err := routing.NewOnDemand(n.Engine(), n.Stack(), n.SysNeighborTable(), cfg)
		if err != nil {
			return err
		}
		tb.record(r, n.ID())
	}
	return nil
}

// AttachTree attaches a collection tree rooted at root to every node.
func (tb *Testbed) AttachTree(root phys.NodeID, cfg routing.Config) error {
	for _, n := range tb.Nodes {
		r, err := routing.NewTree(n.Engine(), n.Stack(), n.SysNeighborTable(), root, cfg)
		if err != nil {
			return err
		}
		tb.record(r, n.ID())
	}
	return nil
}

func (tb *Testbed) record(r *routing.Router, id phys.NodeID) {
	m := tb.routers[r.Port()]
	if m == nil {
		m = make(map[phys.NodeID]*routing.Router)
		tb.routers[r.Port()] = m
	}
	m[id] = r
	if tb.tel != nil {
		r.SetTelemetry(tb.tel)
	}
}

// Telemetry returns the deployment's telemetry recorder, creating and
// wiring it into every layer on first use. The recorder starts stopped:
// call Start on it to record. Wiring and recording are both
// non-perturbing — emission draws no randomness and schedules no
// events — so a run with telemetry produces the same packet trace as
// one without (see the determinism regression in internal/telemetry).
func (tb *Testbed) Telemetry() *telemetry.Recorder {
	if tb.tel == nil {
		tb.tel = telemetry.NewRecorder(tb.Eng)
		tb.Med.SetTelemetry(tb.tel)
		for _, n := range tb.Nodes {
			n.MAC().SetTelemetry(tb.tel)
			n.Stack().SetTelemetry(tb.tel)
			n.SetTelemetry(tb.tel)
		}
		// Map order is irrelevant here: wiring just sets a pointer.
		for _, byNode := range tb.routers {
			for _, r := range byNode {
				r.SetTelemetry(tb.tel)
			}
		}
		for _, c := range tb.ctls {
			c.SetTelemetry(tb.tel)
		}
		for _, ws := range tb.wss {
			ws.SetTelemetry(tb.tel)
		}
		if tb.injector != nil {
			tb.injector.SetTelemetry(tb.tel)
		}
	}
	return tb.tel
}

// Router returns the protocol instance on the given port at node id.
func (tb *Testbed) Router(port byte, id phys.NodeID) (*routing.Router, bool) {
	r, ok := tb.routers[port][id]
	return r, ok
}

// Routers returns every attached protocol instance at node id, sorted
// by port (a node may run several protocols side by side).
func (tb *Testbed) Routers(id phys.NodeID) []*routing.Router {
	var out []*routing.Router
	for port := 0; port < 256; port++ {
		if r, ok := tb.routers[byte(port)][id]; ok {
			out = append(out, r)
		}
	}
	return out
}

// FaultInjector returns the deployment's fault injector, creating it on
// first use. Faults draw from a stream derived from the deployment seed
// but independent of the engine's, so installing the injector does not
// change a fault-free run's packet trace.
func (tb *Testbed) FaultInjector() *fault.Injector {
	if tb.injector == nil {
		tb.injector = fault.New(tb.Eng, tb.Med, tb.Nodes, tb.opt.Seed)
		if tb.tel != nil {
			tb.injector.SetTelemetry(tb.tel)
		}
	}
	return tb.injector
}

// RecordTrace streams every transmission on the medium to w as CSV
// (start_us,end_us,from,channel,tx_dbm,bytes) until the returned stop
// function is called. One recorder at a time.
func (tb *Testbed) RecordTrace(w io.Writer) (stop func()) {
	fmt.Fprintln(w, "start_us,end_us,from,channel,tx_dbm,bytes")
	tb.Med.SetTap(func(r medium.TapRecord) {
		fmt.Fprintf(w, "%d,%d,%d,%d,%.1f,%d\n",
			r.Start.Microseconds(), r.End.Microseconds(), r.From, r.Channel, r.TxDBm, r.Bytes)
	})
	return func() { tb.Med.SetTap(nil) }
}

// Run advances the simulation by d.
func (tb *Testbed) Run(d sim.Time) {
	tb.Eng.RunUntil(tb.Eng.Now() + d)
}
