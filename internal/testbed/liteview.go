package testbed

import (
	"fmt"

	"liteview/internal/core"
	"liteview/internal/mac"
	"liteview/internal/phys"
	"liteview/internal/routing"
)

// LookupFor returns the runtime port→protocol resolver for node id,
// which LiteView's command engines use to select routing protocols at
// runtime.
func (tb *Testbed) LookupFor(id phys.NodeID) core.RouterLookup {
	return func(port byte) (*routing.Router, bool) {
		r, ok := tb.routers[port][id]
		return r, ok
	}
}

// InstallLiteView installs the LiteView runtime controller (and with it
// the ping and traceroute command processes) on every node. Attach the
// routing protocols first so the controllers can resolve them.
func (tb *Testbed) InstallLiteView() (map[phys.NodeID]*core.Controller, error) {
	out := make(map[phys.NodeID]*core.Controller, len(tb.Nodes))
	for _, n := range tb.Nodes {
		c, err := core.NewController(n, tb.LookupFor(n.ID()))
		if err != nil {
			return nil, fmt.Errorf("testbed: install LiteView on %s: %w", n.Name(), err)
		}
		if tb.tel != nil {
			c.SetTelemetry(tb.tel)
		}
		tb.ctls = append(tb.ctls, c)
		out[n.ID()] = c
	}
	return out, nil
}

// NewWorkstation places a management workstation at pos on this
// testbed's medium, matching the deployment's MAC mode (an LPL
// deployment needs an LPL-speaking workstation).
func (tb *Testbed) NewWorkstation(pos phys.Position) (*core.Workstation, error) {
	macCfg := mac.DefaultConfig()
	if tb.opt.LPL {
		macCfg.LPL = true
	}
	ws, err := core.NewWorkstationMAC(tb.Eng, tb.Med, pos, macCfg)
	if err != nil {
		return nil, err
	}
	if tb.tel != nil {
		ws.SetTelemetry(tb.tel)
	}
	tb.wss = append(tb.wss, ws)
	return ws, nil
}
