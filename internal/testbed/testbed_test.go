package testbed

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"liteview/internal/phys"
	"liteview/internal/routing"
)

func TestLineNamingAndGeometry(t *testing.T) {
	tb, err := Line(9, 25, DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Nodes) != 9 {
		t.Fatalf("nodes = %d", len(tb.Nodes))
	}
	n1 := tb.Node(0)
	if n1.Name() != "192.168.0.1" || n1.Path() != "/sn01/192.168.0.1" {
		t.Fatalf("naming: %q %q", n1.Name(), n1.Path())
	}
	n9 := tb.Node(8)
	if n9.Position().X != 200 {
		t.Fatalf("node 9 at %v, want x=200", n9.Position())
	}
	if n, ok := tb.ByName("192.168.0.5"); !ok || n.ID() != 5 {
		t.Fatal("ByName lookup failed")
	}
	if n, ok := tb.ByID(3); !ok || n.Name() != "192.168.0.3" {
		t.Fatal("ByID lookup failed")
	}
	if _, ok := tb.ByID(99); ok {
		t.Fatal("phantom node")
	}
}

func TestGridGeometry(t *testing.T) {
	tb, err := Grid(3, 4, 10, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Nodes) != 12 {
		t.Fatalf("nodes = %d", len(tb.Nodes))
	}
	last := tb.Node(11).Position()
	if last.X != 30 || last.Y != 20 {
		t.Fatalf("corner at %v", last)
	}
}

func TestRandomReproducible(t *testing.T) {
	a, err := Random(10, 100, 100, DefaultOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Random(10, 100, 100, DefaultOptions(7))
	for i := range a.Nodes {
		if a.Node(i).Position() != b.Node(i).Position() {
			t.Fatal("same seed produced different layouts")
		}
	}
	c, _ := Random(10, 100, 100, DefaultOptions(8))
	same := 0
	for i := range a.Nodes {
		if a.Node(i).Position() == c.Node(i).Position() {
			same++
		}
	}
	if same == 10 {
		t.Fatal("different seeds produced identical layouts")
	}
	for _, n := range a.Nodes {
		p := n.Position()
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("node outside field: %v", p)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Line(0, 10, DefaultOptions(1)); err == nil {
		t.Fatal("empty line accepted")
	}
	if _, err := Grid(0, 5, 10, DefaultOptions(1)); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := Random(0, 10, 10, DefaultOptions(1)); err == nil {
		t.Fatal("empty random accepted")
	}
	if _, err := Line(maxNodes+1, 1, DefaultOptions(1)); err == nil {
		t.Fatal("oversized testbed accepted")
	}
}

func TestWarmUpPopulatesTables(t *testing.T) {
	opt := DefaultOptions(3)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := Line(3, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	mid := tb.Node(1)
	if mid.SysNeighborTable().Len() < 2 {
		t.Fatalf("middle node knows %d neighbors, want 2", mid.SysNeighborTable().Len())
	}
}

func TestLocator(t *testing.T) {
	tb, _ := Line(2, 10, DefaultOptions(4))
	loc := tb.Locator()
	if p, ok := loc(2); !ok || p.X != 10 {
		t.Fatalf("locator(2) = %v, %v", p, ok)
	}
	if _, ok := loc(42); ok {
		t.Fatal("locator resolved a phantom node")
	}
}

func TestAttachAndRouterLookup(t *testing.T) {
	opt := DefaultOptions(5)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, _ := Line(3, 20, opt)
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachFlooding(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachTree(1, routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	for _, port := range []byte{routing.GeographicPort, routing.FloodingPort, routing.TreePort} {
		for id := phys.NodeID(1); id <= 3; id++ {
			if _, ok := tb.Router(port, id); !ok {
				t.Fatalf("router port %d missing at node %d", port, id)
			}
		}
	}
	if _, ok := tb.Router(99, 1); ok {
		t.Fatal("phantom router")
	}
}

func TestDeterministicTrace(t *testing.T) {
	run := func() (uint64, uint64) {
		opt := DefaultOptions(11)
		tb, err := Line(5, 20, opt)
		if err != nil {
			t.Fatal(err)
		}
		tb.WarmUp(30 * time.Second)
		s := tb.Med.Stats()
		return s.Transmitted, s.Delivered
	}
	t1, d1 := run()
	t2, d2 := run()
	if t1 != t2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", t1, d1, t2, d2)
	}
	if t1 == 0 {
		t.Fatal("no traffic during warm-up")
	}
}

func TestChannelOption(t *testing.T) {
	opt := DefaultOptions(6)
	opt.Channel = 20
	tb, err := Line(2, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Node(0).Radio().Channel() != 20 {
		t.Fatalf("channel = %d", tb.Node(0).Radio().Channel())
	}
}

func TestLargeDeploymentNaming(t *testing.T) {
	// 17×16 = 272 nodes rolls past the first /24.
	tb, err := Grid(17, 16, 15, DefaultOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Node(249).Name(); got != "192.168.0.250" {
		t.Fatalf("node 250 named %q", got)
	}
	if got := tb.Node(250).Name(); got != "192.168.1.1" {
		t.Fatalf("node 251 named %q", got)
	}
	if n, ok := tb.ByName("192.168.1.22"); !ok || n.ID() != 272 {
		t.Fatal("ByName lookup failed past the first subnet")
	}
	// Every name must stay unique.
	seen := make(map[string]bool, len(tb.Nodes))
	for _, n := range tb.Nodes {
		if seen[n.Name()] {
			t.Fatalf("duplicate name %q", n.Name())
		}
		seen[n.Name()] = true
	}
	if _, err := Grid(251, 250, 5, DefaultOptions(3)); err == nil {
		t.Fatal("oversized deployment accepted")
	}
}

// TestSubnetRollNaming is the regression for the /24 roll boundary: the
// 250th host of every subnet used to be emitted as host 0 of the next
// one ("192.168.2.0" for node 500 — an invalid host in the wrong /24),
// and the very last node in the address space fell outside it entirely.
func TestSubnetRollNaming(t *testing.T) {
	cases := map[int]string{
		1:        "192.168.0.1",
		250:      "192.168.0.250", // last host of the first subnet
		251:      "192.168.1.1",
		500:      "192.168.1.250", // roll boundary: was "192.168.2.0"
		501:      "192.168.2.1",
		502:      "192.168.2.2", // the doc comment's example
		750:      "192.168.2.250",
		62250:    "192.168.248.250",
		62251:    "192.168.249.1",
		maxNodes: "192.168.249.250", // was "192.168.250.0", outside the space
	}
	for x, want := range cases {
		if got := nodeName(x); got != want {
			t.Errorf("nodeName(%d) = %q, want %q", x, got, want)
		}
	}
	// No name may repeat and every host octet must stay in 1..250
	// across the whole address space.
	seen := make(map[string]bool, maxNodes)
	for x := 1; x <= maxNodes; x++ {
		name := nodeName(x)
		if seen[name] {
			t.Fatalf("duplicate name %q at node %d", name, x)
		}
		seen[name] = true
		var a, b, c, d int
		if _, err := fmt.Sscanf(name, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
			t.Fatalf("unparseable name %q", name)
		}
		if d < 1 || d > 250 || c < 0 || c > 249 {
			t.Fatalf("node %d named %q: octets outside the 250×250 space", x, name)
		}
	}
}

// TestOverCapTopologyTypedError pins the typed rejection: callers gate
// on errors.Is(err, ErrTooManyNodes).
func TestOverCapTopologyTypedError(t *testing.T) {
	_, err := Line(maxNodes+1, 1, DefaultOptions(1))
	if !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("over-cap error = %v, want errors.Is ErrTooManyNodes", err)
	}
	if _, err := Line(maxNodes, 1, DefaultOptions(1)); errors.Is(err, ErrTooManyNodes) {
		t.Fatal("exactly-at-cap deployment rejected")
	}
}

// TestShardMediumOption checks the deployment option wires sharding
// into the medium and that a sharded warm-up reproduces the unsharded
// packet trace on a single-ring deployment.
func TestShardMediumOption(t *testing.T) {
	opt := DefaultOptions(11)
	opt.ShardMedium = true
	opt.MediumWorkers = 4
	tb, err := Line(5, 20, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Med.Sharded() {
		t.Fatal("ShardMedium option did not shard the medium")
	}
	tb.WarmUp(30 * time.Second)
	s := tb.Med.Stats()
	base, err := Line(5, 20, DefaultOptions(11))
	if err != nil {
		t.Fatal(err)
	}
	base.WarmUp(30 * time.Second)
	if bs := base.Med.Stats(); s != bs {
		t.Fatalf("sharded warm-up diverged from unsharded: %+v vs %+v", s, bs)
	}
}
