// Package diagnose automates the end-user diagnosis workflow the paper
// leaves to the operator's judgement: walk the deployment with the
// workstation, interrogate every node with the LiteView commands, and
// cross-check what the nodes report about each other.
//
// The health check flags exactly the problem classes the paper's
// abstract promises the toolkit exposes:
//
//   - unreachable nodes (dead battery, wrong channel, out of position);
//   - isolated nodes (empty neighbor tables);
//   - asymmetric links, by comparing each link's LQI as seen from both
//     ends ("likely to become traffic bottlenecks");
//   - loss hotspots, from the MAC's retry/no-ack counters;
//   - exhausted batteries, from the energy meter.
package diagnose

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"liteview/internal/core"
	"liteview/internal/phys"
)

// Target names one node the health check visits.
type Target struct {
	ID   phys.NodeID
	Name string
	// Pos is where the operator walks to interrogate the node (the
	// management protocol is one-hop).
	Pos phys.Position
}

// Severity ranks findings.
type Severity int

const (
	// Info findings are observations, not problems.
	Info Severity = iota
	// Warning findings degrade the deployment.
	Warning
	// Critical findings break connectivity.
	Critical
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Finding is one diagnosed problem.
type Finding struct {
	Severity Severity
	// Kind classifies the problem ("unreachable", "isolated",
	// "asymmetric-link", "loss-hotspot", "low-battery").
	Kind string
	// Node is the primary subject.
	Node phys.NodeID
	// Peer is the other end for link findings (0 otherwise).
	Peer phys.NodeID
	// Detail is the human-readable explanation.
	Detail string
}

// NodeHealth is the raw per-node interrogation result.
type NodeHealth struct {
	Target    Target
	Reachable bool
	Radio     core.RadioInfo
	Stats     core.NodeStats
	Energy    core.EnergyStats
	Neighbors []core.NbrEntry
}

// Report is a completed health check.
type Report struct {
	Nodes    []NodeHealth
	Findings []Finding
}

// Critical reports whether any finding is critical.
func (r *Report) Critical() bool {
	for _, f := range r.Findings {
		if f.Severity == Critical {
			return true
		}
	}
	return false
}

// String renders the report for terminal output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health check: %d node(s) visited, %d finding(s)\n", len(r.Nodes), len(r.Findings))
	for _, n := range r.Nodes {
		status := "ok"
		if !n.Reachable {
			status = "UNREACHABLE"
		}
		fmt.Fprintf(&b, "  %-14s %s", n.Target.Name, status)
		if n.Reachable {
			fmt.Fprintf(&b, "  power=%d ch=%d neighbors=%d battery=%.1f%% noack=%d",
				n.Radio.Power, n.Radio.Channel, len(n.Neighbors),
				float64(n.Energy.RemainingPermille)/10, n.Stats.MACNoAck)
		}
		b.WriteByte('\n')
	}
	if len(r.Findings) == 0 {
		b.WriteString("no problems found\n")
		return b.String()
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "[%s] %s: %s\n", f.Severity, f.Kind, f.Detail)
	}
	return b.String()
}

// Options tunes the health check.
type Options struct {
	// AsymmetryLQI flags links whose two ends disagree by at least
	// this many LQI units (default 15).
	AsymmetryLQI int
	// LowBatteryPermille flags batteries at or below this level
	// (default 200 = 20%).
	LowBatteryPermille int
	// LossHotspotNoAck flags nodes whose MAC abandoned at least this
	// many frames (default 10).
	LossHotspotNoAck int
}

func (o *Options) normalize() {
	if o.AsymmetryLQI <= 0 {
		o.AsymmetryLQI = 15
	}
	if o.LowBatteryPermille <= 0 {
		o.LowBatteryPermille = 200
	}
	if o.LossHotspotNoAck <= 0 {
		o.LossHotspotNoAck = 10
	}
}

// HealthCheck walks the targets with the workstation, interrogates each
// node, and assembles the findings.
func HealthCheck(ws *core.Workstation, targets []Target, opt Options) (*Report, error) {
	if ws == nil {
		return nil, errors.New("diagnose: nil workstation")
	}
	if len(targets) == 0 {
		return nil, errors.New("diagnose: no targets")
	}
	opt.normalize()
	report := &Report{}
	for _, tgt := range targets {
		ws.MoveTo(tgt.Pos)
		h := NodeHealth{Target: tgt}
		if ri, err := ws.RadioGet(tgt.ID); err == nil {
			h.Reachable = true
			h.Radio = ri
			if st, err := ws.Stats(tgt.ID); err == nil {
				h.Stats = st.Node
			}
			if es, err := ws.Energy(tgt.ID); err == nil {
				h.Energy = es
			}
			if nl, err := ws.NeighborList(tgt.ID, true); err == nil {
				h.Neighbors = nl.Entries
			}
		}
		report.Nodes = append(report.Nodes, h)
	}
	report.Findings = analyze(report.Nodes, opt)
	return report, nil
}

// analyze derives findings from the interrogation results.
func analyze(nodes []NodeHealth, opt Options) []Finding {
	var out []Finding
	names := make(map[phys.NodeID]string, len(nodes))
	for _, n := range nodes {
		names[n.Target.ID] = n.Target.Name
	}
	// lqi[a][b] = LQI of the link b→a as estimated by a's kernel table.
	lqi := make(map[phys.NodeID]map[phys.NodeID]int)
	for _, n := range nodes {
		if !n.Reachable {
			out = append(out, Finding{
				Severity: Critical, Kind: "unreachable", Node: n.Target.ID,
				Detail: fmt.Sprintf("%s did not answer management commands (dead node, wrong channel, or moved)", n.Target.Name),
			})
			continue
		}
		if len(n.Neighbors) == 0 {
			out = append(out, Finding{
				Severity: Critical, Kind: "isolated", Node: n.Target.ID,
				Detail: fmt.Sprintf("%s has an empty neighbor table", n.Target.Name),
			})
		}
		if int(n.Energy.RemainingPermille) <= opt.LowBatteryPermille {
			out = append(out, Finding{
				Severity: Warning, Kind: "low-battery", Node: n.Target.ID,
				Detail: fmt.Sprintf("%s battery at %.1f%%", n.Target.Name, float64(n.Energy.RemainingPermille)/10),
			})
		}
		if int(n.Stats.MACNoAck) >= opt.LossHotspotNoAck {
			out = append(out, Finding{
				Severity: Warning, Kind: "loss-hotspot", Node: n.Target.ID,
				Detail: fmt.Sprintf("%s abandoned %d frames after retries (%d retransmissions)",
					n.Target.Name, n.Stats.MACNoAck, n.Stats.MACRetries),
			})
		}
		row := make(map[phys.NodeID]int, len(n.Neighbors))
		for _, e := range n.Neighbors {
			row[e.ID] = int(e.LQI)
		}
		lqi[n.Target.ID] = row
	}
	// Link symmetry: compare both ends' estimates of the same link.
	type pair struct{ a, b phys.NodeID }
	seen := make(map[pair]bool)
	for a, row := range lqi {
		for b, ab := range row { // ab: quality of b→a as seen at a
			if a == b {
				continue
			}
			key := pair{min2(a, b), max2(a, b)}
			if seen[key] {
				continue
			}
			ba, ok := lqi[b][a] // quality of a→b as seen at b
			if !ok {
				continue // b never heard a; one-way audibility is its own smell but noisy
			}
			seen[key] = true
			diff := ab - ba
			if diff < 0 {
				diff = -diff
			}
			if diff >= opt.AsymmetryLQI {
				out = append(out, Finding{
					Severity: Warning, Kind: "asymmetric-link", Node: key.a, Peer: key.b,
					Detail: fmt.Sprintf("link %s↔%s: LQI %d one way vs %d the other (Δ%d)",
						names[key.a], names[key.b], lqi[key.a][key.b], lqi[key.b][key.a], diff),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

func min2(a, b phys.NodeID) phys.NodeID {
	if a < b {
		return a
	}
	return b
}

func max2(a, b phys.NodeID) phys.NodeID {
	if a > b {
		return a
	}
	return b
}

// Pair names one source→destination RTT probe of a survey.
type Pair struct {
	// From is the node the ping command runs on; the workstation walks
	// to it first.
	From Target
	// To is the probed node.
	To phys.NodeID
}

// PairResult is one surveyed pair.
type PairResult struct {
	Pair Pair
	// MeanRTTMs averages the successful rounds.
	MeanRTTMs float64
	// MaxQueue is the largest remote queue occupancy observed.
	MaxQueue int
	Received int
	Lost     int
}

// RTTSurvey runs the abstract's hotspot workflow: ping each pair a few
// rounds and rank the pairs by mean round-trip delay, slowest first —
// elevated RTT, queue occupancy, and loss mark the congested
// neighborhoods.
func RTTSurvey(ws *core.Workstation, pairs []Pair, rounds int) ([]PairResult, error) {
	if ws == nil {
		return nil, errors.New("diagnose: nil workstation")
	}
	if len(pairs) == 0 {
		return nil, errors.New("diagnose: no pairs")
	}
	if rounds <= 0 {
		rounds = 5
	}
	out := make([]PairResult, 0, len(pairs))
	for _, pr := range pairs {
		ws.MoveTo(pr.From.Pos)
		res := PairResult{Pair: pr}
		ping, err := ws.Ping(pr.From.ID, core.PingOptions{Dst: pr.To, Rounds: rounds, Length: 32})
		if err != nil {
			return nil, fmt.Errorf("diagnose: survey %s→%d: %w", pr.From.Name, pr.To, err)
		}
		res.Lost = ping.Lost
		for _, r := range ping.Results {
			if r.Lost {
				continue
			}
			res.Received++
			res.MeanRTTMs += float64(r.RTT) / 1000
			if int(r.QFwd) > res.MaxQueue {
				res.MaxQueue = int(r.QFwd)
			}
		}
		if res.Received > 0 {
			res.MeanRTTMs /= float64(res.Received)
		}
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lost != out[j].Lost {
			return out[i].Lost > out[j].Lost
		}
		return out[i].MeanRTTMs > out[j].MeanRTTMs
	})
	return out, nil
}
