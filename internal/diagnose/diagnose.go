// Package diagnose automates the end-user diagnosis workflow the paper
// leaves to the operator's judgement: walk the deployment with the
// workstation, interrogate every node with the LiteView commands, and
// cross-check what the nodes report about each other.
//
// The health check flags exactly the problem classes the paper's
// abstract promises the toolkit exposes:
//
//   - unreachable nodes (dead battery, wrong channel, out of position);
//   - isolated nodes (empty neighbor tables);
//   - asymmetric links, by comparing each link's LQI as seen from both
//     ends ("likely to become traffic bottlenecks");
//   - loss hotspots, from the MAC's retry/no-ack counters;
//   - exhausted batteries, from the energy meter;
//   - crashed nodes, unreachable yet still present in live peers'
//     neighbor tables (a recent failure, not a removed node);
//   - partitioned segments, connected components of the live topology
//     that cannot reach the largest segment;
//   - bursty links, whose hardware LQI looks healthy while the beacon
//     delivery ratio says most frames die (interference, jamming).
//
// DiagnosePath complements the deployment-wide health check with the
// paper's path-level workflow: run a traceroute and turn its hop
// reports into findings that name the hop where the path broke.
package diagnose

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"liteview/internal/core"
	"liteview/internal/phys"
)

// Target names one node the health check visits.
type Target struct {
	ID   phys.NodeID
	Name string
	// Pos is where the operator walks to interrogate the node (the
	// management protocol is one-hop).
	Pos phys.Position
}

// Severity ranks findings.
type Severity int

const (
	// Info findings are observations, not problems.
	Info Severity = iota
	// Warning findings degrade the deployment.
	Warning
	// Critical findings break connectivity.
	Critical
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Critical:
		return "critical"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Finding is one diagnosed problem.
type Finding struct {
	Severity Severity
	// Kind classifies the problem ("unreachable", "isolated",
	// "asymmetric-link", "loss-hotspot", "low-battery").
	Kind string
	// Node is the primary subject.
	Node phys.NodeID
	// Peer is the other end for link findings (0 otherwise).
	Peer phys.NodeID
	// Detail is the human-readable explanation.
	Detail string
}

// NodeHealth is the raw per-node interrogation result.
type NodeHealth struct {
	Target    Target
	Reachable bool
	Radio     core.RadioInfo
	Stats     core.NodeStats
	Energy    core.EnergyStats
	Neighbors []core.NbrEntry
}

// Report is a completed health check.
type Report struct {
	Nodes    []NodeHealth
	Findings []Finding
}

// Critical reports whether any finding is critical.
func (r *Report) Critical() bool {
	for _, f := range r.Findings {
		if f.Severity == Critical {
			return true
		}
	}
	return false
}

// String renders the report for terminal output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health check: %d node(s) visited, %d finding(s)\n", len(r.Nodes), len(r.Findings))
	for _, n := range r.Nodes {
		status := "ok"
		if !n.Reachable {
			status = "UNREACHABLE"
		}
		fmt.Fprintf(&b, "  %-14s %s", n.Target.Name, status)
		if n.Reachable {
			fmt.Fprintf(&b, "  power=%d ch=%d neighbors=%d battery=%.1f%% noack=%d",
				n.Radio.Power, n.Radio.Channel, len(n.Neighbors),
				float64(n.Energy.RemainingPermille)/10, n.Stats.MACNoAck)
		}
		b.WriteByte('\n')
	}
	if len(r.Findings) == 0 {
		b.WriteString("no problems found\n")
		return b.String()
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "[%s] %s: %s\n", f.Severity, f.Kind, f.Detail)
	}
	return b.String()
}

// Options tunes the health check.
type Options struct {
	// AsymmetryLQI flags links whose two ends disagree by at least
	// this many LQI units (default 15).
	AsymmetryLQI int
	// LowBatteryPermille flags batteries at or below this level
	// (default 200 = 20%).
	LowBatteryPermille int
	// LossHotspotNoAck flags nodes whose MAC abandoned at least this
	// many frames (default 10).
	LossHotspotNoAck int
	// BurstyLQIMin and BurstyPRRMax bound the bursty-link detector: a
	// link is bursty when its hardware LQI is at least BurstyLQIMin
	// (the radio demodulates cleanly when it hears at all, default 90)
	// yet the beacon delivery ratio is at most BurstyPRRMax percent
	// (most frames never arrive, default 60).
	BurstyLQIMin int
	BurstyPRRMax int
}

func (o *Options) normalize() {
	if o.AsymmetryLQI <= 0 {
		o.AsymmetryLQI = 15
	}
	if o.LowBatteryPermille <= 0 {
		o.LowBatteryPermille = 200
	}
	if o.LossHotspotNoAck <= 0 {
		o.LossHotspotNoAck = 10
	}
	if o.BurstyLQIMin <= 0 {
		o.BurstyLQIMin = 90
	}
	if o.BurstyPRRMax <= 0 {
		o.BurstyPRRMax = 60
	}
}

// HealthCheck walks the targets with the workstation, interrogates each
// node, and assembles the findings.
func HealthCheck(ws *core.Workstation, targets []Target, opt Options) (*Report, error) {
	if ws == nil {
		return nil, errors.New("diagnose: nil workstation")
	}
	if len(targets) == 0 {
		return nil, errors.New("diagnose: no targets")
	}
	opt.normalize()
	report := &Report{}
	for _, tgt := range targets {
		ws.MoveTo(tgt.Pos)
		h := NodeHealth{Target: tgt}
		if ri, err := ws.RadioGet(tgt.ID); err == nil {
			h.Reachable = true
			h.Radio = ri
			if st, err := ws.Stats(tgt.ID); err == nil {
				h.Stats = st.Node
			}
			if es, err := ws.Energy(tgt.ID); err == nil {
				h.Energy = es
			}
			if nl, err := ws.NeighborList(tgt.ID, true); err == nil {
				h.Neighbors = nl.Entries
			}
		}
		report.Nodes = append(report.Nodes, h)
	}
	report.Findings = analyze(report.Nodes, opt)
	return report, nil
}

// analyze derives findings from the interrogation results.
func analyze(nodes []NodeHealth, opt Options) []Finding {
	var out []Finding
	names := make(map[phys.NodeID]string, len(nodes))
	for _, n := range nodes {
		names[n.Target.ID] = n.Target.Name
	}
	// lqi[a][b] = LQI of the link b→a as estimated by a's kernel table.
	lqi := make(map[phys.NodeID]map[phys.NodeID]int)
	// prr[a][b] = beacon delivery ratio (percent) of b→a as seen at a;
	// populated only when the neighbor list carried link info.
	prr := make(map[phys.NodeID]map[phys.NodeID]int)
	// susp[a][b] = unicast delivery percent of a→b, present only when
	// a's delivery estimator has marked the link to b suspect
	// (consecutive failed unicasts) — the self-healing layer's signal.
	susp := make(map[phys.NodeID]map[phys.NodeID]int)
	var unreachable []phys.NodeID
	for _, n := range nodes {
		if !n.Reachable {
			unreachable = append(unreachable, n.Target.ID)
			out = append(out, Finding{
				Severity: Critical, Kind: "unreachable", Node: n.Target.ID,
				Detail: fmt.Sprintf("%s did not answer management commands (dead node, wrong channel, or moved)", n.Target.Name),
			})
			continue
		}
		if len(n.Neighbors) == 0 {
			out = append(out, Finding{
				Severity: Critical, Kind: "isolated", Node: n.Target.ID,
				Detail: fmt.Sprintf("%s has an empty neighbor table", n.Target.Name),
			})
		}
		if int(n.Energy.RemainingPermille) <= opt.LowBatteryPermille {
			out = append(out, Finding{
				Severity: Warning, Kind: "low-battery", Node: n.Target.ID,
				Detail: fmt.Sprintf("%s battery at %.1f%%", n.Target.Name, float64(n.Energy.RemainingPermille)/10),
			})
		}
		if int(n.Stats.MACNoAck) >= opt.LossHotspotNoAck {
			out = append(out, Finding{
				Severity: Warning, Kind: "loss-hotspot", Node: n.Target.ID,
				Detail: fmt.Sprintf("%s abandoned %d frames after retries (%d retransmissions)",
					n.Target.Name, n.Stats.MACNoAck, n.Stats.MACRetries),
			})
		}
		row := make(map[phys.NodeID]int, len(n.Neighbors))
		prow := make(map[phys.NodeID]int, len(n.Neighbors))
		srow := make(map[phys.NodeID]int)
		for _, e := range n.Neighbors {
			row[e.ID] = int(e.LQI)
			if e.WithLink {
				prow[e.ID] = int(e.PRRPercent)
				if e.Suspect {
					srow[e.ID] = int(e.DeliveryPercent)
				}
			}
		}
		lqi[n.Target.ID] = row
		prr[n.Target.ID] = prow
		susp[n.Target.ID] = srow
	}
	// Crashed nodes: an unreachable node still listed in a live peer's
	// neighbor table failed recently — the peers have not yet aged it
	// out, so the operator is looking at a crash or reboot loop rather
	// than a node that was removed or never deployed.
	for _, dead := range unreachable {
		var witnesses, suspectWitnesses []string
		for a, row := range lqi {
			if _, heard := row[dead]; heard {
				witnesses = append(witnesses, names[a])
				if _, s := susp[a][dead]; s {
					suspectWitnesses = append(suspectWitnesses, names[a])
				}
			}
		}
		if len(witnesses) > 0 {
			sort.Strings(witnesses)
			detail := fmt.Sprintf("%s is still in the neighbor tables of %s — it was alive recently, so this looks like a crash, not a missing node",
				names[dead], strings.Join(witnesses, ", "))
			severity := Warning
			if len(suspectWitnesses) > 0 {
				// The delivery estimators corroborate: peers are actively
				// failing to deliver unicasts to it right now, not just
				// remembering old beacons. That upgrades the verdict.
				sort.Strings(suspectWitnesses)
				severity = Critical
				detail += fmt.Sprintf("; %s mark their link to it suspect (consecutive unicast failures), confirming it stopped acknowledging",
					strings.Join(suspectWitnesses, ", "))
			}
			out = append(out, Finding{
				Severity: severity, Kind: "crashed-node", Node: dead,
				Detail: detail,
			})
		}
	}
	// Partitioned segments: connected components of the live topology,
	// with an (undirected) edge wherever either end heard the other.
	// Every component outside the largest one is cut off from it.
	if comps := components(lqi); len(comps) > 1 {
		for _, comp := range comps[1:] { // comps[0] is the largest
			var members []string
			for _, id := range comp {
				members = append(members, names[id])
			}
			out = append(out, Finding{
				Severity: Critical, Kind: "partitioned-segment", Node: comp[0],
				Detail: fmt.Sprintf("segment {%s} is cut off from the main deployment (%d node(s) unreachable over multihop routes)",
					strings.Join(members, ", "), len(comp)),
			})
		}
	}
	// Bursty links: the radio reports a clean signal whenever a frame
	// does get through (high LQI) but the beacon delivery ratio says
	// most frames die in flight — classic interference or jamming, and
	// invisible to an LQI-driven routing metric.
	burstSeen := make(map[[2]phys.NodeID]bool)
	for a, prow := range prr {
		for b, p := range prow {
			if _, visited := lqi[b]; !visited {
				continue // only judge links between interrogated nodes
			}
			q, heard := lqi[a][b]
			if !heard || q < opt.BurstyLQIMin || p > opt.BurstyPRRMax {
				continue
			}
			key := [2]phys.NodeID{min2(a, b), max2(a, b)}
			if burstSeen[key] {
				continue
			}
			burstSeen[key] = true
			detail := fmt.Sprintf("link %s↔%s: LQI %d looks healthy but only %d%% of beacons arrive — bursty loss (interference or jamming)",
				names[a], names[b], q, p)
			if d, s := susp[a][b]; s {
				// Both ends are alive, so this is the link misbehaving,
				// not a crashed peer: the estimator's suspect flag plus a
				// reachable far end pins the verdict on the channel.
				detail += fmt.Sprintf("; %s's delivery estimator agrees (link suspect, unicast delivery ~%d%%) while %s itself answers commands",
					names[a], d, names[b])
			}
			out = append(out, Finding{
				Severity: Warning, Kind: "bursty-link", Node: key[0], Peer: key[1],
				Detail: detail,
			})
		}
	}
	// Suspect links between two reachable nodes that the bursty detector
	// did not already flag: the delivery estimator is seeing consecutive
	// unicast failures the beacon statistics have not caught up with —
	// the earliest visible sign of a degrading link.
	for a, srow := range susp {
		for b, d := range srow {
			if _, visited := lqi[b]; !visited {
				continue // far end not interrogated (or unreachable: crash findings own it)
			}
			key := [2]phys.NodeID{min2(a, b), max2(a, b)}
			if burstSeen[key] {
				continue
			}
			burstSeen[key] = true
			out = append(out, Finding{
				Severity: Warning, Kind: "suspect-link", Node: key[0], Peer: key[1],
				Detail: fmt.Sprintf("link %s→%s: delivery estimator marked it suspect after consecutive unicast failures (delivery ~%d%%), though %s still answers commands — watch for reroutes",
					names[a], names[b], d, names[b]),
			})
		}
	}
	// Link symmetry: compare both ends' estimates of the same link.
	type pair struct{ a, b phys.NodeID }
	seen := make(map[pair]bool)
	for a, row := range lqi {
		for b, ab := range row { // ab: quality of b→a as seen at a
			if a == b {
				continue
			}
			key := pair{min2(a, b), max2(a, b)}
			if seen[key] {
				continue
			}
			ba, ok := lqi[b][a] // quality of a→b as seen at b
			if !ok {
				continue // b never heard a; one-way audibility is its own smell but noisy
			}
			seen[key] = true
			diff := ab - ba
			if diff < 0 {
				diff = -diff
			}
			if diff >= opt.AsymmetryLQI {
				out = append(out, Finding{
					Severity: Warning, Kind: "asymmetric-link", Node: key.a, Peer: key.b,
					Detail: fmt.Sprintf("link %s↔%s: LQI %d one way vs %d the other (Δ%d)",
						names[key.a], names[key.b], lqi[key.a][key.b], lqi[key.b][key.a], diff),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

func min2(a, b phys.NodeID) phys.NodeID {
	if a < b {
		return a
	}
	return b
}

func max2(a, b phys.NodeID) phys.NodeID {
	if a > b {
		return a
	}
	return b
}

// components returns the connected components of the live topology,
// largest first (ties broken by smallest member), members ascending.
// An undirected edge exists wherever either end heard the other.
func components(lqi map[phys.NodeID]map[phys.NodeID]int) [][]phys.NodeID {
	ids := make([]phys.NodeID, 0, len(lqi))
	for id := range lqi {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	visited := make(map[phys.NodeID]bool, len(ids))
	var comps [][]phys.NodeID
	for _, start := range ids {
		if visited[start] {
			continue
		}
		var comp []phys.NodeID
		queue := []phys.NodeID{start}
		visited[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			var nbrs []phys.NodeID
			for b := range lqi[cur] {
				if _, live := lqi[b]; live {
					nbrs = append(nbrs, b)
				}
			}
			for a, row := range lqi {
				if _, heardCur := row[cur]; heardCur {
					nbrs = append(nbrs, a)
				}
			}
			sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
			for _, b := range nbrs {
				if !visited[b] {
					visited[b] = true
					queue = append(queue, b)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.SliceStable(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// PathReport is the outcome of a path diagnosis: the traceroute's raw
// output plus findings that name the failing hop.
type PathReport struct {
	Traceroute *core.TracerouteOutput
	Findings   []Finding
}

// String renders the path report for terminal output.
func (p *PathReport) String() string {
	var b strings.Builder
	if p.Traceroute != nil {
		fmt.Fprintf(&b, "path diagnosis: %d hop report(s): %s\n", len(p.Traceroute.Reports), p.Traceroute.Verdict)
	}
	if len(p.Findings) == 0 {
		b.WriteString("path healthy\n")
		return b.String()
	}
	for _, f := range p.Findings {
		fmt.Fprintf(&b, "[%s] %s: %s\n", f.Severity, f.Kind, f.Detail)
	}
	return b.String()
}

// DiagnosePath runs the paper's path-level workflow: walk to the source
// node, traceroute toward the destination, and read the hop reports
// into findings that name the failing hop. A dead destination, a
// crashed relay, or a partition each yield a distinct verdict rather
// than a silent timeout.
func DiagnosePath(ws *core.Workstation, from Target, opts core.TrOptions) (*PathReport, error) {
	if ws == nil {
		return nil, errors.New("diagnose: nil workstation")
	}
	ws.MoveTo(from.Pos)
	out, err := ws.Traceroute(from.ID, opts)
	if out == nil {
		return nil, fmt.Errorf("diagnose: traceroute from %s: %w", from.Name, err)
	}
	rep := &PathReport{Traceroute: out}
	switch {
	case err != nil && len(out.Reports) == 0:
		rep.Findings = append(rep.Findings, Finding{
			Severity: Critical, Kind: "path-unreachable", Node: from.ID,
			Detail: fmt.Sprintf("traceroute %s→%d: %s", from.Name, opts.Dst, out.Verdict),
		})
	case out.FailedHop > 0:
		// The last report names the hop that failed: either a probed
		// node that never answered, or a relay with no route onward.
		last := out.Reports[len(out.Reports)-1]
		node := last.From
		if node == 0 {
			node = from.ID
		}
		rep.Findings = append(rep.Findings, Finding{
			Severity: Critical, Kind: "path-broken", Node: node,
			Detail: fmt.Sprintf("traceroute %s→%d: %s", from.Name, opts.Dst, out.Verdict),
		})
	case err != nil:
		rep.Findings = append(rep.Findings, Finding{
			Severity: Warning, Kind: "path-partial", Node: from.ID,
			Detail: fmt.Sprintf("traceroute %s→%d: %s", from.Name, opts.Dst, out.Verdict),
		})
	}
	return rep, nil
}

// Pair names one source→destination RTT probe of a survey.
type Pair struct {
	// From is the node the ping command runs on; the workstation walks
	// to it first.
	From Target
	// To is the probed node.
	To phys.NodeID
}

// PairResult is one surveyed pair.
type PairResult struct {
	Pair Pair
	// MeanRTTMs averages the successful rounds.
	MeanRTTMs float64
	// MaxQueue is the largest remote queue occupancy observed.
	MaxQueue int
	Received int
	Lost     int
}

// RTTSurvey runs the abstract's hotspot workflow: ping each pair a few
// rounds and rank the pairs by mean round-trip delay, slowest first —
// elevated RTT, queue occupancy, and loss mark the congested
// neighborhoods.
func RTTSurvey(ws *core.Workstation, pairs []Pair, rounds int) ([]PairResult, error) {
	if ws == nil {
		return nil, errors.New("diagnose: nil workstation")
	}
	if len(pairs) == 0 {
		return nil, errors.New("diagnose: no pairs")
	}
	if rounds <= 0 {
		rounds = 5
	}
	out := make([]PairResult, 0, len(pairs))
	for _, pr := range pairs {
		ws.MoveTo(pr.From.Pos)
		res := PairResult{Pair: pr}
		ping, err := ws.Ping(pr.From.ID, core.PingOptions{Dst: pr.To, Rounds: rounds, Length: 32})
		if err != nil {
			return nil, fmt.Errorf("diagnose: survey %s→%d: %w", pr.From.Name, pr.To, err)
		}
		res.Lost = ping.Lost
		for _, r := range ping.Results {
			if r.Lost {
				continue
			}
			res.Received++
			res.MeanRTTMs += float64(r.RTT) / 1000
			if int(r.QFwd) > res.MaxQueue {
				res.MaxQueue = int(r.QFwd)
			}
		}
		if res.Received > 0 {
			res.MeanRTTMs /= float64(res.Received)
		}
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lost != out[j].Lost {
			return out[i].Lost > out[j].Lost
		}
		return out[i].MeanRTTMs > out[j].MeanRTTMs
	})
	return out, nil
}
