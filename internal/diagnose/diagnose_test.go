package diagnose_test

import (
	"strings"
	"testing"
	"time"

	"liteview/internal/core"
	"liteview/internal/fault"
	"liteview/internal/diagnose"
	"liteview/internal/radio"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

func deployDiag(t *testing.T, n int, spacing float64, seed uint64, asym float64) (*testbed.Testbed, *core.Workstation, []diagnose.Target) {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = asym
	tb, err := testbed.Line(n, spacing, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(20 * time.Second)
	ws, err := tb.NewWorkstation(tb.Node(0).Position())
	if err != nil {
		t.Fatal(err)
	}
	var targets []diagnose.Target
	for _, node := range tb.Nodes {
		targets = append(targets, diagnose.Target{ID: node.ID(), Name: node.Name(), Pos: node.Position()})
	}
	return tb, ws, targets
}

func TestHealthyDeploymentIsClean(t *testing.T) {
	_, ws, targets := deployDiag(t, 4, 20, 1, 0)
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Nodes) != 4 {
		t.Fatalf("visited %d nodes", len(rep.Nodes))
	}
	for _, n := range rep.Nodes {
		if !n.Reachable {
			t.Fatalf("healthy node %s unreachable", n.Target.Name)
		}
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("healthy deployment produced findings: %v", rep.Findings)
	}
	if rep.Critical() {
		t.Fatal("critical on a healthy deployment")
	}
	if !strings.Contains(rep.String(), "no problems found") {
		t.Fatalf("report:\n%s", rep.String())
	}
}

func TestDeadNodeFlaggedUnreachable(t *testing.T) {
	tb, ws, targets := deployDiag(t, 3, 20, 2, 0)
	tb.Node(2).Radio().SetState(radio.Off)
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Critical() {
		t.Fatal("dead node not critical")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == "unreachable" && f.Node == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("findings: %v", rep.Findings)
	}
	if !strings.Contains(rep.String(), "UNREACHABLE") {
		t.Fatalf("report:\n%s", rep.String())
	}
}

func TestAsymmetricLinksFlagged(t *testing.T) {
	// A brutally asymmetric radio map: both ends of some link should
	// disagree enough to trip the detector.
	_, ws, targets := deployDiag(t, 5, 16, 3, 6.0)
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{AsymmetryLQI: 12})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, f := range rep.Findings {
		if f.Kind == "asymmetric-link" {
			found++
			if f.Peer == 0 || f.Node == f.Peer {
				t.Fatalf("malformed link finding: %+v", f)
			}
		}
	}
	if found == 0 {
		t.Fatalf("no asymmetric links at σ=6 dB: %v", rep.Findings)
	}
}

func TestLossHotspotFlagged(t *testing.T) {
	tb, ws, targets := deployDiag(t, 3, 20, 4, 0)
	// Generate loss: node 1 pings a phantom destination repeatedly —
	// every probe dies unacked.
	for i := 0; i < 4; i++ {
		if _, err := ws.Ping(1, core.PingOptions{Dst: 99, Rounds: 3, Length: 16}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{LossHotspotNoAck: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == "loss-hotspot" && f.Node == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("loss hotspot not flagged: %v", rep.Findings)
	}
	_ = tb
}

func TestLowBatteryFlagged(t *testing.T) {
	// Tiny batteries: after warm-up the nodes are nearly drained.
	opt := testbed.DefaultOptions(5)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(2, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild nodes is impossible post-hoc; instead drain by running
	// long against the default battery? Too slow. Use liteos directly:
	// this test drains via a long virtual idle period against a small
	// battery budget configured at build time — covered in liteos
	// config; here we simulate by running far enough that the default
	// pack drops below 100% but not 20%, then use a high threshold.
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(30 * time.Minute) // ~ 100 J of listening ≈ 0.4% of the pack
	ws, _ := tb.NewWorkstation(tb.Node(0).Position())
	var targets []diagnose.Target
	for _, node := range tb.Nodes {
		targets = append(targets, diagnose.Target{ID: node.ID(), Name: node.Name(), Pos: node.Position()})
	}
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{LowBatteryPermille: 997})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, f := range rep.Findings {
		if f.Kind == "low-battery" {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("drained batteries not flagged: %v", rep.Findings)
	}
}

func TestHealthCheckValidation(t *testing.T) {
	_, ws, targets := deployDiag(t, 2, 10, 6, 0)
	if _, err := diagnose.HealthCheck(nil, targets, diagnose.Options{}); err == nil {
		t.Fatal("nil workstation accepted")
	}
	if _, err := diagnose.HealthCheck(ws, nil, diagnose.Options{}); err == nil {
		t.Fatal("no targets accepted")
	}
}

func TestSeverityOrdering(t *testing.T) {
	tb, ws, targets := deployDiag(t, 3, 20, 7, 0)
	tb.Node(2).Radio().SetState(radio.Off) // critical
	// Also force a warning (loss hotspot at node 1).
	for i := 0; i < 4; i++ {
		ws.Ping(1, core.PingOptions{Dst: 99, Rounds: 3, Length: 16})
	}
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{LossHotspotNoAck: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) < 2 {
		t.Fatalf("findings: %v", rep.Findings)
	}
	if rep.Findings[0].Severity != diagnose.Critical {
		t.Fatalf("critical not first: %v", rep.Findings)
	}
}

func TestRTTSurveyRanksCongestion(t *testing.T) {
	_, ws, targets := deployDiag(t, 4, 18, 8, 0)
	pairs := []diagnose.Pair{
		{From: targets[0], To: 2},
		{From: targets[1], To: 3},
		{From: targets[2], To: 4},
	}
	out, err := diagnose.RTTSurvey(ws, pairs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("results = %d", len(out))
	}
	for _, r := range out {
		if r.Received == 0 {
			t.Fatalf("pair %s→%d received nothing", r.Pair.From.Name, r.Pair.To)
		}
		if r.MeanRTTMs <= 0 || r.MeanRTTMs > 100 {
			t.Fatalf("RTT = %f ms", r.MeanRTTMs)
		}
	}
	// Sorted slowest-first.
	for i := 1; i < len(out); i++ {
		if out[i-1].Lost == out[i].Lost && out[i-1].MeanRTTMs < out[i].MeanRTTMs {
			t.Fatalf("not sorted: %+v", out)
		}
	}
	if _, err := diagnose.RTTSurvey(nil, pairs, 1); err == nil {
		t.Fatal("nil workstation accepted")
	}
	if _, err := diagnose.RTTSurvey(ws, nil, 1); err == nil {
		t.Fatal("empty pairs accepted")
	}
}

func TestCrashedNodeFlagged(t *testing.T) {
	// A crashed node differs from a missing one: live peers still carry
	// it in their neighbor tables, and the health check says so.
	tb, ws, targets := deployDiag(t, 3, 20, 9, 0)
	tb.Node(2).Crash()
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var unreachable, crashed bool
	for _, f := range rep.Findings {
		if f.Kind == "unreachable" && f.Node == 3 {
			unreachable = true
		}
		if f.Kind == "crashed-node" && f.Node == 3 {
			crashed = true
		}
	}
	if !unreachable || !crashed {
		t.Fatalf("unreachable=%v crashed=%v: %v", unreachable, crashed, rep.Findings)
	}
}

func TestPartitionedSegmentFlagged(t *testing.T) {
	// A blackout on the 2-3 link from before discovery: at 30 m spacing
	// only adjacent nodes hear each other, so the deployment converges
	// as two segments — while every node still answers one-hop
	// management commands.
	opt := testbed.DefaultOptions(10)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(5, 30, opt)
	if err != nil {
		t.Fatal(err)
	}
	inj := tb.FaultInjector()
	if _, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.LinkBlackout, A: 2, B: 3}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(20 * time.Second)
	ws, err := tb.NewWorkstation(tb.Node(0).Position())
	if err != nil {
		t.Fatal(err)
	}
	var targets []diagnose.Target
	for _, node := range tb.Nodes {
		targets = append(targets, diagnose.Target{ID: node.ID(), Name: node.Name(), Pos: node.Position()})
	}
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == "partitioned-segment" {
			found = true
			if f.Severity != diagnose.Critical {
				t.Fatalf("partition not critical: %+v", f)
			}
		}
	}
	if !found {
		t.Fatalf("partition not flagged: %v", rep.Findings)
	}
}

func TestBurstyLinkFlagged(t *testing.T) {
	// Burst corruption during discovery: the surviving beacons carry a
	// healthy LQI while the delivery ratio collapses. The burst window
	// closes before the walk so the node still answers management.
	opt := testbed.DefaultOptions(11)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(2, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	inj := tb.FaultInjector()
	if _, err := inj.Schedule(fault.Fault{At: inj.Now(), Kind: fault.CorruptBurst, Node: 2,
		Prob: 0.8, Duration: 19 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(20 * time.Second)
	ws, err := tb.NewWorkstation(tb.Node(0).Position())
	if err != nil {
		t.Fatal(err)
	}
	var targets []diagnose.Target
	for _, node := range tb.Nodes {
		targets = append(targets, diagnose.Target{ID: node.ID(), Name: node.Name(), Pos: node.Position()})
	}
	rep, err := diagnose.HealthCheck(ws, targets, diagnose.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == "bursty-link" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bursty link not flagged: %v", rep.Findings)
	}
}

func TestDiagnosePathNamesFailingHop(t *testing.T) {
	tb, ws, targets := deployDiag(t, 5, 20, 12, 0)
	// Healthy path first.
	rep, err := diagnose.DiagnosePath(ws, targets[0], core.TrOptions{Dst: 5, Length: 32,
		RouterPort: routing.GeographicPort})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("healthy path produced findings: %v", rep.Findings)
	}
	if !strings.Contains(rep.String(), "path healthy") {
		t.Fatalf("report:\n%s", rep.String())
	}
	// Crash the relay and diagnose again: the report names it.
	tb.Node(2).Crash()
	rep, err = diagnose.DiagnosePath(ws, targets[0], core.TrOptions{Dst: 5, Length: 32,
		RouterPort: routing.GeographicPort})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == "path-broken" && f.Node == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("failing hop not named: %v (verdict %q)", rep.Findings, rep.Traceroute.Verdict)
	}
}
