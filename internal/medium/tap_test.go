package medium

import (
	"testing"

	"liteview/internal/phys"
	"liteview/internal/radio"
)

func TestTapObservesTransmissions(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	m.Attach(a)
	m.Attach(b)
	var records []TapRecord
	m.SetTap(func(r TapRecord) { records = append(records, r) })
	m.Transmit(a, make([]byte, 10))
	eng.Run()
	if len(records) != 1 {
		t.Fatalf("tap saw %d records", len(records))
	}
	r := records[0]
	if r.From != 1 || r.Channel != 17 || r.Bytes != 10 {
		t.Fatalf("record = %+v", r)
	}
	if r.End-r.Start != radio.FrameAirtime(10) {
		t.Fatalf("airtime = %v", r.End-r.Start)
	}
	if r.TxDBm != 0 {
		t.Fatalf("tx power = %f, want 0 dBm at full PA", r.TxDBm)
	}
	m.SetTap(nil)
	m.Transmit(a, make([]byte, 10))
	eng.Run()
	if len(records) != 1 {
		t.Fatal("removed tap still firing")
	}
}

func TestLossFuncInjectsCorruption(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	m.Attach(a)
	m.Attach(b)
	m.SetLossFunc(func(from, to phys.NodeID, _ []byte) bool {
		return from == 1 && to == 2
	})
	m.Transmit(a, make([]byte, 10))
	eng.Run()
	if len(b.frames) != 1 || !b.frames[0].Corrupted {
		t.Fatalf("injected loss did not corrupt: %+v", b.frames)
	}
	// Remove the hook: traffic flows again.
	m.SetLossFunc(nil)
	b.frames = nil
	m.Transmit(a, make([]byte, 10))
	eng.Run()
	if len(b.frames) != 1 || b.frames[0].Corrupted {
		t.Fatal("hook removal failed")
	}
}
