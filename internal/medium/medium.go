// Package medium models the shared wireless broadcast medium. Every
// frame a mote transmits is broadcast: the medium computes, for each
// other attached node tuned to the same channel, the received power,
// the interference from temporally overlapping transmissions, and draws
// packet corruption from the SINR-dependent packet-reception-rate curve.
//
// The medium is also what the MAC's clear channel assessment (CCA)
// samples: EnergyDBmAt reports the strongest in-band signal at a node,
// exactly the quantity the CC2420's energy-detect CCA thresholds.
package medium

import (
	"fmt"
	"math"
	"strconv"

	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// RxInfo carries the physical-layer metadata the receiver's radio chip
// exposes for a received frame. LiteView's whole purpose is surfacing
// these numbers to the end user.
type RxInfo struct {
	// From is the transmitter.
	From phys.NodeID
	// RxPowerDBm is the received signal power.
	RxPowerDBm float64
	// RSSI is the CC2420 RSSI register value for the frame.
	RSSI int
	// LQI is the CC2420 correlation value (50..110).
	LQI int
	// SNRDB is the signal-to-interference-plus-noise ratio in dB.
	SNRDB float64
	// Corrupted reports that the frame took bit errors (the MAC's CRC
	// check will fail).
	Corrupted bool
	// At is the delivery (end-of-airtime) instant.
	At sim.Time
}

// Receiver is the contract a node's MAC layer implements to be attached
// to the medium.
type Receiver interface {
	// NodeID returns the node's 802.15.4 short address.
	NodeID() phys.NodeID
	// Position returns the node's physical location.
	Position() phys.Position
	// RadioState returns the transceiver state at the current instant.
	RadioState() radio.State
	// Channel returns the currently tuned 802.15.4 channel.
	Channel() int
	// PowerLevel returns the programmed CC2420 PA_LEVEL (3..31).
	PowerLevel() int
	// OnFrame is invoked when a frame's airtime completes while this
	// node is listening on the frame's channel.
	OnFrame(frame []byte, info RxInfo)
}

// Stats counts medium-level packet outcomes.
type Stats struct {
	// Transmitted counts frames put on the air.
	Transmitted uint64
	// Delivered counts (node, frame) deliveries that arrived intact.
	Delivered uint64
	// Corrupted counts deliveries that arrived with bit errors.
	Corrupted uint64
	// MissedNotListening counts deliveries lost because the would-be
	// receiver was transmitting or off when the frame ended.
	MissedNotListening uint64
	// BelowSensitivity counts potential deliveries under the radio
	// sensitivity floor (never detected at all).
	BelowSensitivity uint64
	// InjectedDrops counts deliveries suppressed by the fault hook
	// (blackouts and partitions swallow frames without a trace).
	InjectedDrops uint64
	// WrongChannel counts deliveries skipped because the would-be
	// receiver was tuned elsewhere.
	WrongChannel uint64
}

// DeliveryOutcome classifies what happened to one (frame, receiver)
// pair when the frame's airtime completed.
type DeliveryOutcome int

// Per-receiver delivery outcomes, from best to worst.
const (
	// OutcomeDelivered: the frame arrived intact.
	OutcomeDelivered DeliveryOutcome = iota
	// OutcomeCorrupted: the frame arrived with bit errors (the MAC's
	// CRC check will fail). TapDelivery.Cause says why.
	OutcomeCorrupted
	// OutcomeWrongChannel: the receiver was tuned to another channel.
	OutcomeWrongChannel
	// OutcomeRadioOff: the receiver was not in RX (off or transmitting)
	// when the frame ended.
	OutcomeRadioOff
	// OutcomeBelowSensitivity: the signal arrived under the radio's
	// sensitivity floor and was never detected.
	OutcomeBelowSensitivity
	// OutcomeInjectedDrop: an active fault (blackout, partition)
	// swallowed the frame.
	OutcomeInjectedDrop
)

// String returns the outcome's wire name (used in telemetry exports).
func (o DeliveryOutcome) String() string {
	switch o {
	case OutcomeDelivered:
		return "delivered"
	case OutcomeCorrupted:
		return "corrupted"
	case OutcomeWrongChannel:
		return "wrong-channel"
	case OutcomeRadioOff:
		return "radio-off"
	case OutcomeBelowSensitivity:
		return "below-sensitivity"
	case OutcomeInjectedDrop:
		return "injected-drop"
	}
	return "unknown"
}

// TapDelivery describes one per-receiver delivery outcome — the answer
// to "who actually heard this frame, and if not, why not".
type TapDelivery struct {
	// TxSeq ties the outcome back to the TapRecord with the same Seq.
	TxSeq uint64
	// From and To are the transmitter and the would-be receiver.
	From, To phys.NodeID
	// Channel is the transmission's 802.15.4 channel.
	Channel int
	// Outcome classifies the delivery.
	Outcome DeliveryOutcome
	// Cause refines OutcomeCorrupted: "capture" (lost a co-channel
	// collision), "per" (SINR packet-error draw), "jam" (jammed
	// channel), "injected" (test loss hook). Empty otherwise.
	Cause string
	// RxPowerDBm and SINRDB are the received power and
	// signal-to-interference-plus-noise ratio; only meaningful for
	// outcomes where the frame was demodulated (delivered/corrupted).
	RxPowerDBm, SINRDB float64
	// RSSI and LQI are the radio register values for demodulated frames.
	RSSI, LQI int
	// At is the delivery instant (end of airtime).
	At sim.Time
}

// FaultEffect is what an injected fault does to one delivery. Effects
// compose: a degraded link loses ExtraLossDB of signal before the
// sensitivity check, a jammed channel corrupts whatever still decodes,
// and a blackout or partition drops the frame outright.
type FaultEffect struct {
	// ExtraLossDB is additional path loss applied to this delivery.
	ExtraLossDB float64
	// Drop suppresses the delivery entirely (the receiver hears nothing).
	Drop bool
	// Corrupt forces bit errors even if the SINR draw succeeded.
	Corrupt bool
}

type transmission struct {
	from    phys.NodeID
	pos     phys.Position
	channel int
	txDBm   float64
	start   sim.Time
	end     sim.Time
	frame   []byte
}

// Medium is the shared air. It is bound to one engine and one
// propagation model.
type Medium struct {
	eng   *sim.Engine
	model *phys.Model
	rng   *sim.Rand
	nodes map[phys.NodeID]Receiver
	order []phys.NodeID // deterministic iteration order
	// active holds transmissions that may still overlap a frame in
	// flight; pruned lazily.
	active []*transmission
	stats  Stats
	// lossFn, when set, force-drops deliveries (failure injection for
	// tests: returning true corrupts the frame at the receiver).
	lossFn func(from, to phys.NodeID, frame []byte) bool
	// faultFn, when set, is consulted per delivery by the fault
	// injector (internal/fault). It is a separate slot from lossFn so
	// tests and the injector can coexist.
	faultFn func(from, to phys.NodeID, channel int) FaultEffect
	// tap, when set, observes every transmission put on the air.
	tap func(TapRecord)
	// deliveryTap, when set, observes every per-receiver delivery
	// outcome.
	deliveryTap func(TapDelivery)
	// txSeq numbers transmissions so delivery outcomes can be joined
	// back to the frame they belong to.
	txSeq uint64
	// tel, when set, receives medium-layer telemetry events.
	tel *telemetry.Recorder
}

// TapRecord describes one transmission for trace tooling.
type TapRecord struct {
	// Seq is the transmission's medium-wide sequence number; the
	// TapDelivery records for this frame carry it as TxSeq.
	Seq     uint64
	From    phys.NodeID
	Channel int
	TxDBm   float64
	Bytes   int
	Start   sim.Time
	End     sim.Time
}

// SetLossFunc installs a failure-injection hook: any delivery for which
// fn returns true arrives corrupted. Pass nil to remove.
func (m *Medium) SetLossFunc(fn func(from, to phys.NodeID, frame []byte) bool) {
	m.lossFn = fn
}

// SetFaultHook installs the fault injector's per-delivery hook: fn is
// asked what effect, if any, active faults have on a frame from one
// node to another on a channel. Pass nil to remove.
func (m *Medium) SetFaultHook(fn func(from, to phys.NodeID, channel int) FaultEffect) {
	m.faultFn = fn
}

// SetTap installs an observer of every transmission (nil removes it).
func (m *Medium) SetTap(fn func(TapRecord)) { m.tap = fn }

// SetDeliveryTap installs an observer of every per-receiver delivery
// outcome (nil removes it).
func (m *Medium) SetDeliveryTap(fn func(TapDelivery)) { m.deliveryTap = fn }

// SetTelemetry points the medium at a telemetry recorder (nil detaches).
func (m *Medium) SetTelemetry(rec *telemetry.Recorder) { m.tel = rec }

// New returns a medium running on eng with the given propagation model.
func New(eng *sim.Engine, model *phys.Model) *Medium {
	return &Medium{
		eng:   eng,
		model: model,
		rng:   eng.Rand().Fork("medium"),
		nodes: make(map[phys.NodeID]Receiver),
	}
}

// Attach registers a node. Attaching a duplicate ID is an error.
func (m *Medium) Attach(r Receiver) error {
	id := r.NodeID()
	if _, dup := m.nodes[id]; dup {
		return fmt.Errorf("medium: node %d already attached", id)
	}
	m.nodes[id] = r
	m.order = append(m.order, id)
	return nil
}

// Detach removes a node; pending deliveries to it are silently dropped.
func (m *Medium) Detach(id phys.NodeID) {
	if _, ok := m.nodes[id]; !ok {
		return
	}
	delete(m.nodes, id)
	for i, n := range m.order {
		if n == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// Nodes returns the number of attached nodes.
func (m *Medium) Nodes() int { return len(m.nodes) }

// Stats returns a snapshot of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// ResetStats zeroes the counters.
func (m *Medium) ResetStats() { m.stats = Stats{} }

// prune drops transmissions that can no longer overlap anything.
func (m *Medium) prune() {
	now := m.eng.Now()
	keep := m.active[:0]
	for _, t := range m.active {
		if t.end > now-10*radio.ByteTime {
			keep = append(keep, t)
		}
	}
	// Zero the tail so dropped transmissions can be collected.
	for i := len(keep); i < len(m.active); i++ {
		m.active[i] = nil
	}
	m.active = keep
}

// Transmit puts frame on the air from node tx. The caller (the MAC) is
// responsible for radio state management: it must have set the radio to
// TX and must return it to RX after the returned airtime. Deliveries at
// every other in-range listener are scheduled at the end of the airtime.
func (m *Medium) Transmit(tx Receiver, frame []byte) (sim.Time, error) {
	if len(frame) == 0 {
		return 0, fmt.Errorf("medium: empty frame")
	}
	if _, ok := m.nodes[tx.NodeID()]; !ok {
		return 0, fmt.Errorf("medium: node %d not attached", tx.NodeID())
	}
	m.prune()
	airtime := radio.FrameAirtime(len(frame))
	txDBm := radio.PowerDBm(tx.PowerLevel())
	t := &transmission{
		from:    tx.NodeID(),
		pos:     tx.Position(),
		channel: tx.Channel(),
		txDBm:   txDBm,
		start:   m.eng.Now(),
		end:     m.eng.Now() + airtime,
		frame:   append([]byte(nil), frame...),
	}
	m.active = append(m.active, t)
	m.stats.Transmitted++
	m.txSeq++
	seq := m.txSeq
	if m.tap != nil {
		m.tap(TapRecord{Seq: seq, From: t.from, Channel: t.channel, TxDBm: t.txDBm,
			Bytes: len(t.frame), Start: t.start, End: t.end})
	}
	if m.tel.Recording() {
		m.tel.EmitSpan(t.from, telemetry.LayerMedium, "tx", airtime,
			telemetry.Uint64("txseq", seq),
			telemetry.Int("ch", t.channel),
			telemetry.Float("dbm", t.txDBm),
			telemetry.Int("bytes", len(t.frame)))
	}
	m.eng.MustSchedule(airtime, func() { m.deliver(t, seq) })
	return airtime, nil
}

// report publishes one per-receiver delivery outcome to the stats
// counters' observers: the delivery tap and the telemetry recorder.
func (m *Medium) report(d TapDelivery) {
	if m.deliveryTap != nil {
		m.deliveryTap(d)
	}
	if !m.tel.Recording() {
		return
	}
	attrs := []telemetry.Attr{
		telemetry.Uint64("txseq", d.TxSeq),
		telemetry.Node("from", d.From),
		telemetry.String("outcome", d.Outcome.String()),
	}
	if d.Cause != "" {
		attrs = append(attrs, telemetry.String("cause", d.Cause))
	}
	if d.Outcome == OutcomeDelivered || d.Outcome == OutcomeCorrupted {
		attrs = append(attrs,
			telemetry.Float("rx_dbm", d.RxPowerDBm),
			telemetry.Float("sinr_db", d.SINRDB),
			telemetry.Int("lqi", d.LQI))
	}
	m.tel.Emit(d.To, telemetry.LayerMedium, "rx", attrs...)
	link := "link." + strconv.FormatUint(uint64(d.From), 10) + "-" +
		strconv.FormatUint(uint64(d.To), 10)
	switch d.Outcome {
	case OutcomeDelivered:
		m.tel.Metrics().Counter(link + ".delivered").Inc()
		m.tel.Metrics().Gauge(link + ".lqi").Set(float64(d.LQI))
	case OutcomeCorrupted, OutcomeRadioOff, OutcomeInjectedDrop:
		// Out-of-range and off-channel outcomes are not link losses —
		// counting them would flatten every long link's PRR to zero.
		m.tel.Metrics().Counter(link + ".lost").Inc()
	}
}

// deliver fans t out to every eligible listener at t.end.
func (m *Medium) deliver(t *transmission, seq uint64) {
	for _, id := range m.order {
		if id == t.from {
			continue
		}
		rx, ok := m.nodes[id]
		if !ok {
			continue
		}
		outcome := TapDelivery{TxSeq: seq, From: t.from, To: id,
			Channel: t.channel, At: m.eng.Now()}
		if rx.Channel() != t.channel {
			m.stats.WrongChannel++
			outcome.Outcome = OutcomeWrongChannel
			m.report(outcome)
			continue
		}
		var eff FaultEffect
		if m.faultFn != nil {
			eff = m.faultFn(t.from, id, t.channel)
		}
		if eff.Drop {
			m.stats.InjectedDrops++
			outcome.Outcome = OutcomeInjectedDrop
			m.report(outcome)
			continue
		}
		rxDBm := m.model.ReceivedPower(t.txDBm, t.from, id, t.pos, rx.Position()) - eff.ExtraLossDB
		if rxDBm < radio.SensitivityDBm {
			m.stats.BelowSensitivity++
			outcome.Outcome = OutcomeBelowSensitivity
			outcome.RxPowerDBm = rxDBm
			m.report(outcome)
			continue
		}
		if rx.RadioState() != radio.RX {
			m.stats.MissedNotListening++
			outcome.Outcome = OutcomeRadioOff
			outcome.RxPowerDBm = rxDBm
			m.report(outcome)
			continue
		}
		sinr, interfered := m.sinrAt(t, id, rx.Position(), rxDBm)
		// The analytical BER curve models interference as white noise,
		// which flatters DSSS under co-channel collisions. Real CC2420
		// receivers need the carrier a few dB above an 802.15.4
		// interferer to capture it, so frames that collided and fall
		// under the co-channel rejection threshold are lost outright.
		var ok2 bool
		cause := ""
		if interfered && sinr < CaptureThresholdDB {
			ok2 = false
			cause = "capture"
		} else {
			ok2 = m.rng.Bool(phys.PRR(sinr, len(t.frame)))
			if !ok2 {
				cause = "per"
			}
		}
		if ok2 && eff.Corrupt {
			ok2 = false // jammed channel
			cause = "jam"
		}
		if ok2 && m.lossFn != nil && m.lossFn(t.from, id, t.frame) {
			ok2 = false // injected loss
			cause = "injected"
		}
		info := RxInfo{
			From:       t.from,
			RxPowerDBm: rxDBm,
			RSSI:       radio.RSSIRegister(rxDBm),
			LQI:        radio.LQI(sinr),
			SNRDB:      sinr,
			Corrupted:  !ok2,
			At:         m.eng.Now(),
		}
		if ok2 {
			m.stats.Delivered++
			outcome.Outcome = OutcomeDelivered
		} else {
			m.stats.Corrupted++
			outcome.Outcome = OutcomeCorrupted
			outcome.Cause = cause
		}
		outcome.RxPowerDBm = rxDBm
		outcome.SINRDB = sinr
		outcome.RSSI = info.RSSI
		outcome.LQI = info.LQI
		m.report(outcome)
		rx.OnFrame(append([]byte(nil), t.frame...), info)
	}
}

// CaptureThresholdDB is the co-channel rejection of the receiver: when a
// frame overlaps another transmission, it is received only if it is at
// least this many dB above the combined interference.
const CaptureThresholdDB = 4.0

// sinrAt computes the signal-to-interference-plus-noise ratio in dB of
// transmission t at receiver id, given its received power. The second
// result reports whether any co-channel transmission overlapped t.
func (m *Medium) sinrAt(t *transmission, id phys.NodeID, pos phys.Position, rxDBm float64) (float64, bool) {
	noiseMW := dbmToMW(m.model.NoiseFloor)
	interfMW := 0.0
	interfered := false
	for _, o := range m.active {
		if o == t || o.channel != t.channel || o.from == id {
			continue
		}
		if o.start >= t.end || o.end <= t.start {
			continue // no temporal overlap
		}
		p := m.model.ReceivedPower(o.txDBm, o.from, id, o.pos, pos)
		interfMW += dbmToMW(p)
		interfered = true
	}
	return rxDBm - mwToDBm(noiseMW+interfMW), interfered
}

// EnergyDBmAt reports the strongest in-band signal currently on the air
// as heard by node r, or negative infinity when the channel is silent.
// This is what the MAC's CCA samples.
func (m *Medium) EnergyDBmAt(r Receiver) float64 {
	m.prune()
	now := m.eng.Now()
	best := math.Inf(-1)
	for _, t := range m.active {
		if t.channel != r.Channel() || t.from == r.NodeID() {
			continue
		}
		if t.start > now || t.end <= now {
			continue
		}
		p := m.model.ReceivedPower(t.txDBm, t.from, r.NodeID(), t.pos, r.Position())
		if p > best {
			best = p
		}
	}
	return best
}

// ChannelBusy reports whether node r's CCA would read "busy" at the
// given threshold.
func (m *Medium) ChannelBusy(r Receiver, thresholdDBm float64) bool {
	return m.EnergyDBmAt(r) >= thresholdDBm
}

func dbmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }
func mwToDBm(mw float64) float64  { return 10 * math.Log10(mw) }
