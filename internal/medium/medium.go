// Package medium models the shared wireless broadcast medium. Every
// frame a mote transmits is broadcast: the medium computes, for each
// other attached node tuned to the same channel, the received power,
// the interference from temporally overlapping transmissions, and draws
// packet corruption from the SINR-dependent packet-reception-rate curve.
//
// The medium is also what the MAC's clear channel assessment (CCA)
// samples: EnergyDBmAt reports the strongest in-band signal at a node,
// exactly the quantity the CC2420's energy-detect CCA thresholds.
package medium

import (
	"fmt"
	"math"
	"strconv"

	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// RxInfo carries the physical-layer metadata the receiver's radio chip
// exposes for a received frame. LiteView's whole purpose is surfacing
// these numbers to the end user.
type RxInfo struct {
	// From is the transmitter.
	From phys.NodeID
	// RxPowerDBm is the received signal power.
	RxPowerDBm float64
	// RSSI is the CC2420 RSSI register value for the frame.
	RSSI int
	// LQI is the CC2420 correlation value (50..110).
	LQI int
	// SNRDB is the signal-to-interference-plus-noise ratio in dB.
	SNRDB float64
	// Corrupted reports that the frame took bit errors (the MAC's CRC
	// check will fail).
	Corrupted bool
	// At is the delivery (end-of-airtime) instant.
	At sim.Time
}

// Receiver is the contract a node's MAC layer implements to be attached
// to the medium.
type Receiver interface {
	// NodeID returns the node's 802.15.4 short address.
	NodeID() phys.NodeID
	// Position returns the node's physical location.
	Position() phys.Position
	// RadioState returns the transceiver state at the current instant.
	RadioState() radio.State
	// Channel returns the currently tuned 802.15.4 channel.
	Channel() int
	// PowerLevel returns the programmed CC2420 PA_LEVEL (3..31).
	PowerLevel() int
	// OnFrame is invoked when a frame's airtime completes while this
	// node is listening on the frame's channel. The frame slice is a
	// read-only view shared by every receiver of the broadcast (and by
	// the medium itself): implementations must copy it before mutating
	// or retaining mutable references (the MAC copies before flipping
	// bits on corrupted frames).
	OnFrame(frame []byte, info RxInfo)
}

// Stats counts medium-level packet outcomes.
type Stats struct {
	// Transmitted counts frames put on the air.
	Transmitted uint64
	// Delivered counts (node, frame) deliveries that arrived intact.
	Delivered uint64
	// Corrupted counts deliveries that arrived with bit errors.
	Corrupted uint64
	// MissedNotListening counts deliveries lost because the would-be
	// receiver was transmitting or off when the frame ended.
	MissedNotListening uint64
	// BelowSensitivity counts potential deliveries under the radio
	// sensitivity floor (never detected at all). Nodes the reachability
	// index excludes entirely — gain so low that even full transmit
	// power stays under SensitivityDBm − FadeMarginDB — are counted
	// here in bulk, without a per-receiver delivery outcome.
	BelowSensitivity uint64
	// InjectedDrops counts deliveries suppressed by the fault hook
	// (blackouts and partitions swallow frames without a trace).
	InjectedDrops uint64
	// WrongChannel counts deliveries skipped because the would-be
	// receiver was tuned elsewhere.
	WrongChannel uint64
}

// DeliveryOutcome classifies what happened to one (frame, receiver)
// pair when the frame's airtime completed.
type DeliveryOutcome int

// Per-receiver delivery outcomes, from best to worst.
const (
	// OutcomeDelivered: the frame arrived intact.
	OutcomeDelivered DeliveryOutcome = iota
	// OutcomeCorrupted: the frame arrived with bit errors (the MAC's
	// CRC check will fail). TapDelivery.Cause says why.
	OutcomeCorrupted
	// OutcomeWrongChannel: the receiver was tuned to another channel.
	OutcomeWrongChannel
	// OutcomeRadioOff: the receiver was not in RX (off or transmitting)
	// when the frame ended.
	OutcomeRadioOff
	// OutcomeBelowSensitivity: the signal arrived under the radio's
	// sensitivity floor and was never detected.
	OutcomeBelowSensitivity
	// OutcomeInjectedDrop: an active fault (blackout, partition)
	// swallowed the frame.
	OutcomeInjectedDrop
)

// String returns the outcome's wire name (used in telemetry exports).
func (o DeliveryOutcome) String() string {
	switch o {
	case OutcomeDelivered:
		return "delivered"
	case OutcomeCorrupted:
		return "corrupted"
	case OutcomeWrongChannel:
		return "wrong-channel"
	case OutcomeRadioOff:
		return "radio-off"
	case OutcomeBelowSensitivity:
		return "below-sensitivity"
	case OutcomeInjectedDrop:
		return "injected-drop"
	}
	return "unknown"
}

// TapDelivery describes one per-receiver delivery outcome — the answer
// to "who actually heard this frame, and if not, why not".
type TapDelivery struct {
	// TxSeq ties the outcome back to the TapRecord with the same Seq.
	TxSeq uint64
	// From and To are the transmitter and the would-be receiver.
	From, To phys.NodeID
	// Channel is the transmission's 802.15.4 channel.
	Channel int
	// Outcome classifies the delivery.
	Outcome DeliveryOutcome
	// Cause refines OutcomeCorrupted: "capture" (lost a co-channel
	// collision), "per" (SINR packet-error draw), "jam" (jammed
	// channel), "injected" (test loss hook). Empty otherwise.
	Cause string
	// RxPowerDBm and SINRDB are the received power and
	// signal-to-interference-plus-noise ratio; only meaningful for
	// outcomes where the frame was demodulated (delivered/corrupted).
	RxPowerDBm, SINRDB float64
	// RSSI and LQI are the radio register values for demodulated frames.
	RSSI, LQI int
	// At is the delivery instant (end of airtime).
	At sim.Time
}

// FaultEffect is what an injected fault does to one delivery. Effects
// compose: a degraded link loses ExtraLossDB of signal before the
// sensitivity check, a jammed channel corrupts whatever still decodes,
// and a blackout or partition drops the frame outright.
type FaultEffect struct {
	// ExtraLossDB is additional path loss applied to this delivery.
	ExtraLossDB float64
	// Drop suppresses the delivery entirely (the receiver hears nothing).
	Drop bool
	// Corrupt forces bit errors even if the SINR draw succeeded.
	Corrupt bool
}

type transmission struct {
	from    phys.NodeID
	pos     phys.Position
	channel int
	txDBm   float64
	start   sim.Time
	end     sim.Time
	frame   []byte
	// cand is the reachability-index candidate set captured at transmit
	// time (shared with the index; read-only). nil when the index is
	// disabled, in which case deliver falls back to the full-order scan.
	cand []phys.NodeID
	// far is how many attached nodes were excluded as unreachable when
	// the candidate set was captured; they are bulk-counted as
	// below-sensitivity at delivery.
	far uint64
	// indexed records which fan-out mode the transmission was put on the
	// air under, so a mid-flight toggle cannot mix the two paths.
	indexed bool
	// sharded records whether the medium was spatially sharded at
	// transmit time; the candidate set was then ring-collected and the
	// delivery may assess cells concurrently.
	sharded bool
	// ocx, ocy is the origin grid cell (floor(pos / cellSize)) under the
	// sharded medium: the transmission is registered in the ledgers of
	// all cells within the detectability ring of this cell, and cells
	// created later (attach, migration) re-derive membership from it.
	ocx, ocy int
	// pruned marks a transmission prune decided to drop, so per-cell
	// ledgers can be compacted independently of slice identity.
	pruned bool
	// seq is the medium-wide transmission number, carried here so the
	// delivery event needs only the transmission pointer as its payload.
	seq uint64
}

// txPoolCap bounds the transmission free list; the live set is bounded
// by the interference-overlap window, so the pool stays small too.
const txPoolCap = 1024

// FadeMarginDB is the headroom the reachability index keeps above the
// radio sensitivity floor: a node is indexed as reachable when the link
// gain at maximum transmit power clears SensitivityDBm − FadeMarginDB.
// Fault-injected extra loss only ever weakens a signal, so nodes under
// the floor can never demodulate a frame and are skipped without a
// per-receiver outcome.
const FadeMarginDB = 6.0

// maxTxDBm is the strongest power any attached radio can transmit at;
// it bounds the received power of every link through the static gain.
var maxTxDBm = radio.PowerDBm(radio.MaxPowerLevel)

// reachability is one transmitter's precomputed fan-out: the attached
// nodes (in stable attach order) whose cached link gain at maximum
// transmit power clears the sensitivity floor minus the fade margin,
// plus the count of nodes excluded as unreachable.
type reachability struct {
	cand []phys.NodeID
	far  uint64
}

// linkKeys holds the pre-interned metric names of one directed link, so
// report does not rebuild three strings on every reception.
type linkKeys struct {
	delivered, lost, lqi string
}

// prrKey memoises the packet-reception-rate curve by exact SINR bits
// and frame length; PRR is a pure function, so a hit is bit-identical
// to recomputation.
type prrKey struct {
	sinrBits uint64
	length   int
}

// Medium is the shared air. It is bound to one engine and one
// propagation model.
type Medium struct {
	eng   *sim.Engine
	model *phys.Model
	rng   *sim.Rand
	nodes map[phys.NodeID]Receiver
	order []phys.NodeID // deterministic iteration order
	// active holds transmissions that may still overlap a frame in
	// flight; pruned lazily.
	active []*transmission
	// txPool recycles transmission structs (and their frame buffers)
	// once prune retires them: a pruned transmission's delivery has
	// fired and nothing below the medium may retain the shared frame
	// past its OnFrame callback (DESIGN §15), so the buffer is free for
	// reuse. reclaim is prune's scratch list of the cycle's casualties.
	txPool  []*transmission
	reclaim []*transmission
	// deliverCb is the delivery event callback, bound once so Transmit
	// schedules without allocating a closure.
	deliverCb func(any)
	stats     Stats
	// lossFn, when set, force-drops deliveries (failure injection for
	// tests: returning true corrupts the frame at the receiver).
	lossFn func(from, to phys.NodeID, frame []byte) bool
	// faultFn, when set, is consulted per delivery by the fault
	// injector (internal/fault). It is a separate slot from lossFn so
	// tests and the injector can coexist.
	faultFn func(from, to phys.NodeID, channel int) FaultEffect
	// tap, when set, observes every transmission put on the air.
	tap func(TapRecord)
	// deliveryTap, when set, observes every per-receiver delivery
	// outcome.
	deliveryTap func(TapDelivery)
	// txSeq numbers transmissions so delivery outcomes can be joined
	// back to the frame they belong to.
	txSeq uint64
	// tel, when set, receives medium-layer telemetry events.
	tel *telemetry.Recorder
	// indexed enables the link-gain cache and reachability index (the
	// default). Disabling it restores the legacy full-order fan-out with
	// per-pair recomputation — a pure pessimisation kept as the
	// benchmark baseline and for the index-purity regression.
	indexed bool
	// gains caches the static per-pair link budget (path loss, shadowing,
	// asymmetry), keyed from<<16|to. Valid until a position changes.
	gains map[uint32]phys.Budget
	// reach caches each transmitter's candidate set; invalidated on
	// attach/detach and topology changes.
	reach map[phys.NodeID]*reachability
	// shard, when non-nil, is the spatial partition (see cells.go):
	// per-cell interference ledgers, budget caches, and membership,
	// enabling ring-bounded candidate collection and concurrent fan-out
	// assessment.
	shard *shardState
	// links interns per-link metric names, keyed from<<16|to.
	links map[uint32]*linkKeys
	// prr memoises the PRR curve by (SINR bits, frame length).
	prr map[prrKey]float64
	// noiseFor/noiseMW cache the noise floor's mW conversion.
	noiseFor float64
	noiseMW  float64
}

// TapRecord describes one transmission for trace tooling.
type TapRecord struct {
	// Seq is the transmission's medium-wide sequence number; the
	// TapDelivery records for this frame carry it as TxSeq.
	Seq     uint64
	From    phys.NodeID
	Channel int
	TxDBm   float64
	Bytes   int
	Start   sim.Time
	End     sim.Time
}

// SetLossFunc installs a failure-injection hook: any delivery for which
// fn returns true arrives corrupted. Pass nil to remove.
func (m *Medium) SetLossFunc(fn func(from, to phys.NodeID, frame []byte) bool) {
	m.lossFn = fn
}

// SetFaultHook installs the fault injector's per-delivery hook: fn is
// asked what effect, if any, active faults have on a frame from one
// node to another on a channel. Pass nil to remove.
func (m *Medium) SetFaultHook(fn func(from, to phys.NodeID, channel int) FaultEffect) {
	m.faultFn = fn
}

// SetTap installs an observer of every transmission (nil removes it).
func (m *Medium) SetTap(fn func(TapRecord)) { m.tap = fn }

// SetDeliveryTap installs an observer of every per-receiver delivery
// outcome (nil removes it).
func (m *Medium) SetDeliveryTap(fn func(TapDelivery)) { m.deliveryTap = fn }

// SetTelemetry points the medium at a telemetry recorder (nil detaches).
func (m *Medium) SetTelemetry(rec *telemetry.Recorder) { m.tel = rec }

// New returns a medium running on eng with the given propagation model.
func New(eng *sim.Engine, model *phys.Model) *Medium {
	m := &Medium{
		eng:     eng,
		model:   model,
		rng:     eng.Rand().Fork("medium"),
		nodes:   make(map[phys.NodeID]Receiver),
		indexed: true,
		gains:   make(map[uint32]phys.Budget),
		reach:   make(map[phys.NodeID]*reachability),
		links:   make(map[uint32]*linkKeys),
		prr:     make(map[prrKey]float64),
	}
	m.deliverCb = m.deliverEvent
	return m
}

// deliverEvent is the AfterArg trampoline for scheduled deliveries.
func (m *Medium) deliverEvent(a any) {
	t := a.(*transmission)
	m.deliver(t, t.seq)
}

// SetReachabilityIndex enables or disables the link-gain cache and
// reachability index (enabled by default). The index is a pure
// optimization: with identical topology and seed, a run with the index
// off produces byte-identical deliveries, telemetry, and stats — it is
// just O(nodes) slower per transmission. Disabling it exists for the
// purity regression and as the before-side of BenchmarkMediumDeliver.
func (m *Medium) SetReachabilityIndex(enabled bool) {
	m.indexed = enabled
	clear(m.reach)
	if !enabled {
		// Sharding is the index taken spatial; it cannot outlive it.
		m.shard = nil
	}
}

// InvalidateTopology drops the cached link budgets and reachability
// sets. Call it after mutating the propagation model; channel and power
// changes need no invalidation (budgets are frequency- and
// power-independent), and a single node moving only needs NodeMoved.
func (m *Medium) InvalidateTopology() {
	clear(m.gains)
	clear(m.reach)
	clear(m.prr)
	if m.shard != nil {
		for _, c := range m.shard.cells {
			clear(c.gains)
		}
	}
}

// NodeMoved tells the medium that one attached node changed position:
// cached link budgets involving it and every candidate set are dropped.
// Motes are fixed once deployed — this is the workstation walking with
// the operator (MAC.SetPosition calls it). Frames already in flight
// keep the fan-out captured at transmit time; their link budgets are
// recomputed against the new position at delivery, as the unindexed
// scan would.
func (m *Medium) NodeMoved(id phys.NodeID) {
	if m.shard != nil {
		// The sharded medium migrates the node between cells and scopes
		// both the budget purge and the candidate-set invalidation to
		// the detectability rings around the old and new positions.
		m.shardMove(id)
		return
	}
	for k := range m.gains {
		if phys.NodeID(k>>16) == id || phys.NodeID(k&0xFFFF) == id {
			delete(m.gains, k)
		}
	}
	clear(m.reach)
}

// Attach registers a node. Attaching a duplicate ID is an error.
func (m *Medium) Attach(r Receiver) error {
	id := r.NodeID()
	if _, dup := m.nodes[id]; dup {
		return fmt.Errorf("medium: node %d already attached", id)
	}
	m.nodes[id] = r
	m.order = append(m.order, id)
	if m.shard != nil {
		m.shardAttach(id, r.Position())
	} else {
		clear(m.reach) // candidate sets must include the newcomer
	}
	return nil
}

// Detach removes a node; pending deliveries to it are silently dropped.
// A frame the node already put on the air stays there: it delivers to
// (and interferes at) the remaining nodes, exactly as a frame from a
// mote that lost power mid-transmission would.
func (m *Medium) Detach(id phys.NodeID) {
	if _, ok := m.nodes[id]; !ok {
		return
	}
	delete(m.nodes, id)
	for i, n := range m.order {
		if n == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	// In-flight transmissions keep their captured candidate sets (which
	// may still name id — deliver drops it via the nodes lookup); only
	// future transmissions need rebuilt sets.
	if m.shard != nil {
		m.shardDetach(id)
	} else {
		clear(m.reach)
	}
}

// Nodes returns the number of attached nodes.
func (m *Medium) Nodes() int { return len(m.nodes) }

// Stats returns a snapshot of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// ResetStats zeroes the counters.
func (m *Medium) ResetStats() { m.stats = Stats{} }

// prune drops transmissions that can no longer overlap anything.
// Deliveries (and their SINR scans) run at the *end* of the receiving
// frame, so an ended transmission must be retained while any frame it
// temporally overlapped is still in flight — however long ago it ended.
// The old fixed 10-byte-time horizon silently dropped interferers that
// clipped the start of a long frame, undercounting collisions; the keep
// rule is therefore anchored at the earliest start among undelivered
// transmissions, not at a fixed distance behind now.
func (m *Medium) prune() {
	now := m.eng.Now()
	// minStart is the earliest start among transmissions whose delivery
	// has not fired yet (delivery fires at t.end, so t.end >= now).
	minStart := sim.Time(math.MaxInt64)
	for _, t := range m.active {
		if t.end >= now && t.start < minStart {
			minStart = t.start
		}
	}
	keep := m.active[:0]
	reclaim := m.reclaim[:0]
	for _, t := range m.active {
		// Keep frames still awaiting delivery, and any ended frame that
		// overlapped an undelivered one (o overlaps t iff o.end > t.start,
		// since o started before it ended). Future transmissions start at
		// or after now, so nothing already ended can overlap them.
		if t.end >= now || t.end > minStart {
			keep = append(keep, t)
		} else {
			t.pruned = true
			reclaim = append(reclaim, t)
		}
	}
	// Zero the tail so dropped transmissions can be collected.
	for i := len(keep); i < len(m.active); i++ {
		m.active[i] = nil
	}
	m.active = keep
	if len(reclaim) > 0 && m.shard != nil {
		// Compact every cell ledger. The keep filter is per-transmission
		// (the pruned flag), so ledgers can be filtered independently of
		// the global list and of one another.
		for _, c := range m.shard.cells {
			kl := c.ledger[:0]
			for _, t := range c.ledger {
				if !t.pruned {
					kl = append(kl, t)
				}
			}
			for i := len(kl); i < len(c.ledger); i++ {
				c.ledger[i] = nil
			}
			c.ledger = kl
		}
	}
	// A pruned transmission's delivery has fired and every ledger
	// reference is compacted away, so its struct — and its frame buffer,
	// which nothing below the medium may retain past OnFrame — goes back
	// to the pool.
	for i, t := range reclaim {
		if len(m.txPool) < txPoolCap {
			frame := t.frame[:0]
			*t = transmission{frame: frame}
			m.txPool = append(m.txPool, t)
		}
		reclaim[i] = nil
	}
	m.reclaim = reclaim[:0]
}

// budgetBetween returns the static link budget from → to, consulting
// the per-pair cache when the index is enabled. The cached components
// are the same deterministic function of the endpoints either way, and
// Budget.Received combines them in the model's arithmetic order, so
// both paths produce bit-identical received powers. Callers must pass
// *current* positions — the cache is keyed by node pair only; for
// budgets against a position captured at transmit time, use txBudget.
func (m *Medium) budgetBetween(from, to phys.NodeID, fromPos, toPos phys.Position) phys.Budget {
	return m.txBudget(from, fromPos, to, toPos, nil)
}

// txBudget returns the static link budget from → to for a transmission
// whose origin position was captured at fromPos. The per-pair cache
// (keyed by node IDs only) always describes the transmitter's current
// position — NodeMoved purges it on every move — so when fromPos no
// longer matches (the transmitter walked away, or detached, while the
// frame was in flight) the budget is computed directly instead of
// being read from, or written into, the cache. Without this check a
// delivery after a mid-flight move would poison the cache with a
// budget computed from the stale captured position, and every later
// transmission on that link would inherit it.
//
// c, when non-nil, is the receiver's cell: its cell-scoped cache is
// used instead of the global one, which is what lets concurrent
// per-cell assessment lanes write their caches without racing.
func (m *Medium) txBudget(from phys.NodeID, fromPos phys.Position, to phys.NodeID, toPos phys.Position, c *cell) phys.Budget {
	if !m.indexed {
		return m.model.LinkBudget(from, to, fromPos, toPos)
	}
	if cur, ok := m.nodes[from]; !ok || cur.Position() != fromPos {
		return m.model.LinkBudget(from, to, fromPos, toPos)
	}
	gains := m.gains
	if c != nil {
		gains = c.gains
	}
	key := uint32(from)<<16 | uint32(to)
	if b, ok := gains[key]; ok {
		return b
	}
	b := m.model.LinkBudget(from, to, fromPos, toPos)
	gains[key] = b
	return b
}

// reachFor returns tx's candidate set, building it on first use after
// an invalidation: every attached node (in stable attach order) whose
// cached gain at maximum transmit power clears the sensitivity floor
// minus the fade margin.
func (m *Medium) reachFor(tx Receiver) *reachability {
	id := tx.NodeID()
	if r, ok := m.reach[id]; ok {
		return r
	}
	if m.shard != nil {
		r := m.shardReach(tx)
		m.reach[id] = r
		return r
	}
	r := &reachability{}
	pos := tx.Position()
	for _, other := range m.order {
		if other == id {
			continue
		}
		b := m.budgetBetween(id, other, pos, m.nodes[other].Position())
		if b.Received(maxTxDBm) < radio.SensitivityDBm-FadeMarginDB {
			r.far++
			continue
		}
		r.cand = append(r.cand, other)
	}
	m.reach[id] = r
	return r
}

// prrFor returns the packet reception rate for a frame of n bytes at
// the given SINR, memoised when the index is enabled. PRR is a pure
// function of its arguments, so the memo is bit-identical to
// recomputation (the legacy path recomputes, as the pre-index engine
// did).
func (m *Medium) prrFor(sinr float64, n int) float64 {
	if !m.indexed {
		return phys.PRR(sinr, n)
	}
	k := prrKey{math.Float64bits(sinr), n}
	if p, ok := m.prr[k]; ok {
		return p
	}
	p := phys.PRR(sinr, n)
	if len(m.prr) < 1<<16 { // bound the memo under interference churn
		m.prr[k] = p
	}
	return p
}

// linkKeysFor returns the interned metric names of the directed link
// from → to.
func (m *Medium) linkKeysFor(from, to phys.NodeID) *linkKeys {
	key := uint32(from)<<16 | uint32(to)
	if lk, ok := m.links[key]; ok {
		return lk
	}
	base := "link." + strconv.FormatUint(uint64(from), 10) + "-" +
		strconv.FormatUint(uint64(to), 10)
	lk := &linkKeys{delivered: base + ".delivered", lost: base + ".lost", lqi: base + ".lqi"}
	m.links[key] = lk
	return lk
}

// noiseFloorMW returns the model's noise floor converted to milliwatts,
// cached until the floor changes.
func (m *Medium) noiseFloorMW() float64 {
	if m.noiseFor != m.model.NoiseFloor || m.noiseMW == 0 {
		m.noiseFor = m.model.NoiseFloor
		m.noiseMW = dbmToMW(m.noiseFor)
	}
	return m.noiseMW
}

// Transmit puts frame on the air from node tx. The caller (the MAC) is
// responsible for radio state management: it must have set the radio to
// TX and must return it to RX after the returned airtime. Deliveries at
// every other in-range listener are scheduled at the end of the airtime.
func (m *Medium) Transmit(tx Receiver, frame []byte) (sim.Time, error) {
	if len(frame) == 0 {
		return 0, fmt.Errorf("medium: empty frame")
	}
	if _, ok := m.nodes[tx.NodeID()]; !ok {
		return 0, fmt.Errorf("medium: node %d not attached", tx.NodeID())
	}
	m.prune()
	airtime := radio.FrameAirtime(len(frame))
	txDBm := radio.PowerDBm(tx.PowerLevel())
	var t *transmission
	if n := len(m.txPool); n > 0 {
		t = m.txPool[n-1]
		m.txPool[n-1] = nil
		m.txPool = m.txPool[:n-1]
	} else {
		t = &transmission{}
	}
	t.from = tx.NodeID()
	t.pos = tx.Position()
	t.channel = tx.Channel()
	t.txDBm = txDBm
	t.start = m.eng.Now()
	t.end = m.eng.Now() + airtime
	t.frame = append(t.frame[:0], frame...)
	t.indexed = m.indexed
	if m.indexed {
		// Capture the fan-out now: detaching a node mid-flight must not
		// change the other receivers' outcomes (deliver re-checks
		// attachment per candidate).
		r := m.reachFor(tx)
		t.cand, t.far = r.cand, r.far
	}
	if m.shard != nil {
		t.sharded = true
		key := m.keyFor(t.pos)
		t.ocx, t.ocy = key.cx, key.cy
		m.shard.register(t)
	}
	m.active = append(m.active, t)
	m.stats.Transmitted++
	m.txSeq++
	seq := m.txSeq
	if m.tap != nil {
		m.tap(TapRecord{Seq: seq, From: t.from, Channel: t.channel, TxDBm: t.txDBm,
			Bytes: len(t.frame), Start: t.start, End: t.end})
	}
	if m.tel.Recording() {
		m.tel.EmitSpan(t.from, telemetry.LayerMedium, "tx", airtime,
			telemetry.Uint64("txseq", seq),
			telemetry.Int("ch", t.channel),
			telemetry.Float("dbm", t.txDBm),
			telemetry.Int("bytes", len(t.frame)))
	}
	t.seq = seq
	m.eng.AfterArg(airtime, m.deliverCb, t)
	return airtime, nil
}

// report publishes one per-receiver delivery outcome to the stats
// counters' observers: the delivery tap and the telemetry recorder.
func (m *Medium) report(d TapDelivery) {
	if m.deliveryTap != nil {
		m.deliveryTap(d)
	}
	if !m.tel.Recording() {
		return
	}
	attrs := []telemetry.Attr{
		telemetry.Uint64("txseq", d.TxSeq),
		telemetry.Node("from", d.From),
		telemetry.String("outcome", d.Outcome.String()),
	}
	if d.Cause != "" {
		attrs = append(attrs, telemetry.String("cause", d.Cause))
	}
	if d.Outcome == OutcomeDelivered || d.Outcome == OutcomeCorrupted {
		attrs = append(attrs,
			telemetry.Float("rx_dbm", d.RxPowerDBm),
			telemetry.Float("sinr_db", d.SINRDB),
			telemetry.Int("lqi", d.LQI))
	}
	m.tel.Emit(d.To, telemetry.LayerMedium, "rx", attrs...)
	lk := m.linkKeysFor(d.From, d.To)
	switch d.Outcome {
	case OutcomeDelivered:
		m.tel.Metrics().Counter(lk.delivered).Inc()
		m.tel.Metrics().Gauge(lk.lqi).Set(float64(d.LQI))
	case OutcomeCorrupted, OutcomeInjectedDrop:
		// Only real link losses count: out-of-range, off-channel, and
		// radio-off outcomes would flatten the link's PRR — under LPL
		// duty-cycling a sleeping radio misses most frames by design,
		// and that is a schedule property, not link quality.
		m.tel.Metrics().Counter(lk.lost).Inc()
	}
}

// deliver fans t out to every eligible listener at t.end. With the
// reachability index on, eligible listeners are the candidate set
// captured at transmit time; with it off, the full attach-order scan is
// filtered by the same reachability floor, so both modes produce the
// same outcome sequence, the same randomness draws, and byte-identical
// telemetry.
//
// The fan-out is split into a pure assessment phase (link budget and
// interference per candidate — assessOne) and a commit phase (fault
// hooks, randomness, stats, telemetry, OnFrame). Under the sharded
// medium with a worker budget above one, the assessment phase runs
// concurrently grouped by receiver cell; the commit loop below always
// walks candidates in index order, so worker count never shows in the
// output (DESIGN.md §14).
func (m *Medium) deliver(t *transmission, seq uint64) {
	// Nodes excluded by the reachability floor can never demodulate the
	// frame; they are counted in bulk, with no per-receiver outcome.
	m.stats.BelowSensitivity += t.far
	ids := t.cand
	if !t.indexed {
		ids = m.order
	}
	noiseMW := m.noiseFloorMW()
	var as []assess
	if t.sharded && m.shard != nil && m.eng.Workers() > 1 && len(ids) >= shardFanoutMin {
		as = m.assessCells(t, ids, noiseMW)
	}
	for i, id := range ids {
		if id == t.from {
			continue
		}
		var a assess
		if as != nil {
			a = as[i]
		} else {
			a = m.assessOne(t, id, noiseMW)
		}
		rx := a.rx
		if rx == nil {
			continue // detached while the frame was in flight
		}
		b := a.b
		if !t.indexed && b.Received(maxTxDBm) < radio.SensitivityDBm-FadeMarginDB {
			// The same floor the index precomputes, applied inline.
			m.stats.BelowSensitivity++
			continue
		}
		outcome := TapDelivery{TxSeq: seq, From: t.from, To: id,
			Channel: t.channel, At: m.eng.Now()}
		if rx.Channel() != t.channel {
			m.stats.WrongChannel++
			outcome.Outcome = OutcomeWrongChannel
			m.report(outcome)
			continue
		}
		var eff FaultEffect
		if m.faultFn != nil {
			eff = m.faultFn(t.from, id, t.channel)
		}
		if eff.Drop {
			m.stats.InjectedDrops++
			outcome.Outcome = OutcomeInjectedDrop
			m.report(outcome)
			continue
		}
		rxDBm := b.Received(t.txDBm) - eff.ExtraLossDB
		if rxDBm < radio.SensitivityDBm {
			m.stats.BelowSensitivity++
			outcome.Outcome = OutcomeBelowSensitivity
			outcome.RxPowerDBm = rxDBm
			m.report(outcome)
			continue
		}
		if rx.RadioState() != radio.RX {
			m.stats.MissedNotListening++
			outcome.Outcome = OutcomeRadioOff
			outcome.RxPowerDBm = rxDBm
			m.report(outcome)
			continue
		}
		sinr, interfered := rxDBm-a.inDBm, a.interfered
		// The analytical BER curve models interference as white noise,
		// which flatters DSSS under co-channel collisions. Real CC2420
		// receivers need the carrier a few dB above an 802.15.4
		// interferer to capture it, so frames that collided and fall
		// under the co-channel rejection threshold are lost outright.
		var ok2 bool
		cause := ""
		if interfered && sinr < CaptureThresholdDB {
			ok2 = false
			cause = "capture"
		} else {
			ok2 = m.rng.Bool(m.prrFor(sinr, len(t.frame)))
			if !ok2 {
				cause = "per"
			}
		}
		if ok2 && eff.Corrupt {
			ok2 = false // jammed channel
			cause = "jam"
		}
		if ok2 && m.lossFn != nil && m.lossFn(t.from, id, t.frame) {
			ok2 = false // injected loss
			cause = "injected"
		}
		info := RxInfo{
			From:       t.from,
			RxPowerDBm: rxDBm,
			RSSI:       radio.RSSIRegister(rxDBm),
			LQI:        radio.LQI(sinr),
			SNRDB:      sinr,
			Corrupted:  !ok2,
			At:         m.eng.Now(),
		}
		if ok2 {
			m.stats.Delivered++
			outcome.Outcome = OutcomeDelivered
		} else {
			m.stats.Corrupted++
			outcome.Outcome = OutcomeCorrupted
			outcome.Cause = cause
		}
		outcome.RxPowerDBm = rxDBm
		outcome.SINRDB = sinr
		outcome.RSSI = info.RSSI
		outcome.LQI = info.LQI
		m.report(outcome)
		frame := t.frame
		if !t.indexed {
			frame = append([]byte(nil), t.frame...) // legacy per-receiver copy
		}
		rx.OnFrame(frame, info)
	}
}

// CaptureThresholdDB is the co-channel rejection of the receiver: when a
// frame overlaps another transmission, it is received only if it is at
// least this many dB above the combined interference.
const CaptureThresholdDB = 4.0

// EnergyDBmAt reports the strongest in-band signal currently on the air
// as heard by node r, or negative infinity when the channel is silent.
// This is what the MAC's CCA samples. Signals under the reachability
// floor (SensitivityDBm − FadeMarginDB even at full transmit power) are
// treated as silence: the radio cannot detect them, and skipping them
// keeps the indexed and legacy fan-outs bit-identical. Under the
// sharded medium the scan covers only the receiver's cell ledger —
// everything outside it is under the floor by the ring bound, so the
// answer is bit-identical to the full scan.
func (m *Medium) EnergyDBmAt(r Receiver) float64 {
	m.prune()
	now := m.eng.Now()
	best := math.Inf(-1)
	rid := r.NodeID()
	rpos := r.Position()
	c := m.cellOf(rid)
	ledger := m.active
	if c != nil {
		ledger = c.ledger
	}
	for _, t := range ledger {
		if t.pruned || t.channel != r.Channel() || t.from == rid {
			continue
		}
		if t.start > now || t.end <= now {
			continue
		}
		b := m.txBudget(t.from, t.pos, rid, rpos, c)
		if b.Received(maxTxDBm) < radio.SensitivityDBm-FadeMarginDB {
			continue // undetectable at any power level
		}
		if p := b.Received(t.txDBm); p > best {
			best = p
		}
	}
	return best
}

// ChannelBusy reports whether node r's CCA would read "busy" at the
// given threshold.
func (m *Medium) ChannelBusy(r Receiver, thresholdDBm float64) bool {
	return m.EnergyDBmAt(r) >= thresholdDBm
}

func dbmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }
func mwToDBm(mw float64) float64  { return 10 * math.Log10(mw) }
