package medium

import (
	"fmt"
	"math"
	"sort"

	"liteview/internal/phys"
	"liteview/internal/radio"
)

// Spatial sharding: the medium partitioned into square grid cells.
//
// RF energy is local — phys.Model.DetectRange bounds the distance
// beyond which no link can clear the reachability floor even with the
// most favourable shadowing draw — so a transmission is physically
// incapable of touching nodes outside a bounded ring of cells around
// its origin. The sharded medium exploits that three ways:
//
//  1. Each cell owns the interference ledger and link-budget cache for
//     its member nodes, so a delivery's SINR scan walks only the
//     transmissions registered to the receiver's cell instead of the
//     whole deployment's active list.
//  2. A transmitter's reachability candidates are collected from the
//     cells within the detectability ring, not from a full node scan.
//  3. Because distinct cells own disjoint mutable state, the expensive
//     pure phase of a delivery fan-out — link budgets and interference
//     sums, grouped by receiver cell — runs concurrently on the
//     engine's worker lanes (sim.Engine.ForkJoin), while every
//     observable effect (randomness draws, stats, telemetry, OnFrame)
//     is committed sequentially in candidate-index order. Output is
//     therefore byte-identical at every worker count; DESIGN.md §14
//     spells out the contract.
//
// Interference accounting is the one modelled difference from the
// unsharded medium: signals from transmitters beyond the detectability
// ring — which EnergyDBmAt already treats as silence — are excluded
// from SINR sums too, instead of contributing sub-noise-floor watts.
// On deployments small enough that everything is within one ring the
// sharded medium is bit-identical to the indexed one (the purity
// regression checks exactly that).

// Sharding configures the spatially sharded medium.
type Sharding struct {
	// CellSize is the cell edge in meters. Zero derives it from the
	// propagation model: the detectability range at maximum transmit
	// power against the reachability floor, which makes the ring radius
	// exactly one cell. Any positive size is correct — the ring just
	// widens to cover the same physical radius.
	CellSize float64
	// Workers is the engine's concurrency budget for fan-out
	// assessment (sim.Engine.SetWorkers). Zero leaves the engine's
	// current budget untouched; 1 forces the sequential baseline.
	Workers int
}

// cellKey addresses one grid cell: floor(position / cellSize).
type cellKey struct{ cx, cy int }

// cell is one spatial shard: the nodes inside one grid square, the
// transmissions that can touch them, and the caches only they read.
type cell struct {
	// members holds the resident nodes in attach order (ties broken by
	// the global attach sequence, so candidate sets keep the exact
	// iteration order the unsharded index uses).
	members []phys.NodeID
	// ledger holds the active transmissions whose origin cell is
	// within the detectability ring — everything a member could
	// possibly hear or be interfered by, in transmit order.
	ledger []*transmission
	// gains caches the static budgets of directed links INTO members
	// of this cell, keyed from<<16|to. During a concurrent fan-out the
	// lane assessing this cell is the only goroutine touching it.
	gains map[uint32]phys.Budget
}

// shardState is the sharded medium's bookkeeping.
type shardState struct {
	cellSize float64
	// ring is the Chebyshev cell radius that covers DetectRange: cells
	// farther apart than ring are provably out of RF reach.
	ring   int
	cells  map[cellKey]*cell
	cellOf map[phys.NodeID]cellKey
	// seq records global attach order (monotonic, survives detaches)
	// so merged candidate lists sort back into attach order.
	seq     map[phys.NodeID]uint64
	nextSeq uint64
}

// shardFanoutMin is the candidate count under which a sharded delivery
// skips the fork-join and assesses inline: the parallel and sequential
// paths are byte-identical by construction, so the threshold is purely
// a per-event overhead knob.
const shardFanoutMin = 24

func (m *Medium) keyFor(p phys.Position) cellKey {
	s := m.shard.cellSize
	return cellKey{int(math.Floor(p.X / s)), int(math.Floor(p.Y / s))}
}

// SetSharding partitions the medium into spatial cells (replacing any
// previous partition) and optionally sets the engine's worker budget.
// It requires the reachability index: sharding is the index taken
// spatial. Attached nodes are placed immediately; in-flight
// transmissions are re-registered into the new cells.
func (m *Medium) SetSharding(s Sharding) error {
	if !m.indexed {
		return fmt.Errorf("medium: sharding requires the reachability index")
	}
	size := s.CellSize
	rangeBound := m.model.DetectRange(maxTxDBm, radio.SensitivityDBm-FadeMarginDB)
	if size <= 0 {
		size = rangeBound
	}
	sh := &shardState{
		cellSize: size,
		ring:     int(math.Ceil(rangeBound / size)),
		cells:    make(map[cellKey]*cell),
		cellOf:   make(map[phys.NodeID]cellKey),
		seq:      make(map[phys.NodeID]uint64),
	}
	m.shard = sh
	for _, id := range m.order {
		sh.place(id, m.keyFor(m.nodes[id].Position()))
	}
	// Re-register in-flight transmissions under the new partition.
	for _, t := range m.active {
		t.ocx, t.ocy = m.keyFor(t.pos).cx, m.keyFor(t.pos).cy
	}
	for key, c := range sh.cells {
		c.ledger = m.ledgerFor(key)
	}
	// Cached candidate sets and budgets predate the partition; the
	// cell-scoped caches rebuild lazily.
	clear(m.reach)
	clear(m.gains)
	if s.Workers > 0 {
		m.eng.SetWorkers(s.Workers)
	}
	return nil
}

// Sharded reports whether the medium is spatially sharded.
func (m *Medium) Sharded() bool { return m.shard != nil }

// ShardInfo reports the partition's shape: cell count, cell edge in
// meters, and the detectability ring radius in cells. Zeroes when the
// medium is unsharded.
func (m *Medium) ShardInfo() (cells int, cellSize float64, ring int) {
	if m.shard == nil {
		return 0, 0, 0
	}
	return len(m.shard.cells), m.shard.cellSize, m.shard.ring
}

// place adds id to the cell at key, creating the cell on first use,
// keeping members in attach-sequence order.
func (sh *shardState) place(id phys.NodeID, key cellKey) {
	if _, ok := sh.seq[id]; !ok {
		sh.nextSeq++
		sh.seq[id] = sh.nextSeq
	}
	c := sh.cells[key]
	if c == nil {
		c = &cell{gains: make(map[uint32]phys.Budget)}
		sh.cells[key] = c
	}
	// Insert keeping attach order: appends are the common case (fresh
	// attaches always carry the highest sequence).
	i := sort.Search(len(c.members), func(i int) bool {
		return sh.seq[c.members[i]] > sh.seq[id]
	})
	c.members = append(c.members, 0)
	copy(c.members[i+1:], c.members[i:])
	c.members[i] = id
	sh.cellOf[id] = key
}

// remove drops id from its cell's member list (the cell itself is
// retained: its ledger may still be feeding in-flight deliveries).
func (sh *shardState) remove(id phys.NodeID) {
	key, ok := sh.cellOf[id]
	if !ok {
		return
	}
	c := sh.cells[key]
	for i, n := range c.members {
		if n == id {
			c.members = append(c.members[:i], c.members[i+1:]...)
			break
		}
	}
	delete(sh.cellOf, id)
	delete(sh.seq, id)
}

// ledgerFor rebuilds the ledger of the cell at key from the global
// active list: every transmission whose origin cell is within the
// detectability ring, in transmit order. Used when a cell springs into
// existence mid-flight (attach or migration into fresh ground).
func (m *Medium) ledgerFor(key cellKey) []*transmission {
	var out []*transmission
	for _, t := range m.active {
		if t.pruned {
			continue
		}
		if chebyshev(t.ocx-key.cx, t.ocy-key.cy) <= m.shard.ring {
			out = append(out, t)
		}
	}
	return out
}

func chebyshev(dx, dy int) int {
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dy > dx {
		return dy
	}
	return dx
}

// forRing visits every existing cell within the detectability ring of
// key, in deterministic row-major order.
func (sh *shardState) forRing(key cellKey, fn func(*cell)) {
	for dy := -sh.ring; dy <= sh.ring; dy++ {
		for dx := -sh.ring; dx <= sh.ring; dx++ {
			if c, ok := sh.cells[cellKey{key.cx + dx, key.cy + dy}]; ok {
				fn(c)
			}
		}
	}
}

// register files t into the ledgers of all cells its RF energy can
// reach: those within the ring of its origin cell.
func (sh *shardState) register(t *transmission) {
	sh.forRing(cellKey{t.ocx, t.ocy}, func(c *cell) {
		c.ledger = append(c.ledger, t)
	})
}

// invalidateRing drops the cached candidate sets of every transmitter
// whose fan-out can include nodes in the ring around key — exactly the
// transmitters resident in cells within the ring (spatial symmetry:
// node X can hear node Y only if Y can be ring-reached from X's cell).
func (m *Medium) invalidateRing(key cellKey) {
	m.shard.forRing(key, func(c *cell) {
		for _, id := range c.members {
			delete(m.reach, id)
		}
	})
}

// purgeGains deletes cached budgets involving id: links INTO id live
// in id's own cell; links FROM id live in the cells of receivers
// within the detectability ring of id's cell (budgets are only ever
// cached against current positions, so nothing farther can hold one).
func (m *Medium) purgeGains(id phys.NodeID, key cellKey) {
	m.shard.forRing(key, func(c *cell) {
		for k := range c.gains {
			if phys.NodeID(k>>16) == id || phys.NodeID(k&0xFFFF) == id {
				delete(c.gains, k)
			}
		}
	})
}

// shardAttach wires a newly attached node into the partition.
func (m *Medium) shardAttach(id phys.NodeID, pos phys.Position) {
	key := m.keyFor(pos)
	fresh := m.shard.cells[key] == nil
	m.shard.place(id, key)
	if fresh {
		m.shard.cells[key].ledger = m.ledgerFor(key)
	}
	// Nearby transmitters must see the newcomer in their candidate
	// sets; distant ones provably cannot reach it.
	m.invalidateRing(key)
}

// shardDetach removes a node from the partition.
func (m *Medium) shardDetach(id phys.NodeID) {
	key, ok := m.shard.cellOf[id]
	if !ok {
		return
	}
	m.purgeGains(id, key)
	m.shard.remove(id)
	m.invalidateRing(key)
}

// shardMove migrates a node between cells after a position change and
// scopes the invalidation to the two detectability rings involved:
// every transmitter that could reach the node at either position gets
// a fresh candidate set, everyone else keeps theirs — at 10k nodes
// that is the difference between O(ring²·density) and O(N) per step
// of a walking workstation.
func (m *Medium) shardMove(id phys.NodeID) {
	sh := m.shard
	old, ok := sh.cellOf[id]
	if !ok {
		return
	}
	// Budgets involving the node are stale at both ends.
	m.purgeGains(id, old)
	m.invalidateRing(old)
	key := m.keyFor(m.nodes[id].Position())
	if key != old {
		fresh := sh.cells[key] == nil
		sh.remove(id)
		sh.place(id, key)
		if fresh {
			sh.cells[key].ledger = m.ledgerFor(key)
		}
		m.invalidateRing(key)
		m.purgeGains(id, key)
	}
}

// cellOf returns the cell id currently resides in (nil when unsharded
// or id is detached).
func (m *Medium) cellOf(id phys.NodeID) *cell {
	if m.shard == nil {
		return nil
	}
	key, ok := m.shard.cellOf[id]
	if !ok {
		return nil
	}
	return m.shard.cells[key]
}

// shardReach builds tx's candidate set from the cells within the
// detectability ring of its own cell: collect resident nodes, sort
// them back into global attach order, and apply the same reachability
// floor the unsharded index applies. Nodes outside the ring are
// provably under the floor (phys.Model.DetectRange), so the candidate
// set — and the bulk below-sensitivity count — match the unsharded
// index exactly.
func (m *Medium) shardReach(tx Receiver) *reachability {
	sh := m.shard
	id := tx.NodeID()
	pos := tx.Position()
	var near []phys.NodeID
	sh.forRing(sh.cellOf[id], func(c *cell) {
		near = append(near, c.members...)
	})
	sort.Slice(near, func(i, j int) bool { return sh.seq[near[i]] < sh.seq[near[j]] })
	r := &reachability{}
	for _, other := range near {
		if other == id {
			continue
		}
		b := m.txBudget(id, pos, other, m.nodes[other].Position(), m.cellOf(other))
		if b.Received(maxTxDBm) < radio.SensitivityDBm-FadeMarginDB {
			r.far++
			continue
		}
		r.cand = append(r.cand, other)
	}
	// Out-of-ring nodes are below the floor by construction: count
	// them in bulk so stats match the full-scan index byte for byte.
	// near contains tx itself (it resides in its own cell), which is
	// neither candidate nor far, so the arithmetic works out to
	// "attached nodes other than tx that were not collected".
	out := len(m.nodes) - len(near)
	if !containsID(near, id) {
		out--
	}
	r.far += uint64(out)
	return r
}

func containsID(ids []phys.NodeID, id phys.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// assess is one receiver's pure delivery physics, computed before any
// observable effect: the static link budget and the
// interference-plus-noise level at the delivery instant. It carries no
// randomness — the corruption draw happens at commit, in candidate
// order.
type assess struct {
	rx Receiver
	b  phys.Budget
	// inDBm is noise+interference in dBm at the receiver; interfered
	// reports whether any co-channel transmission overlapped. Only
	// meaningful when scanned (receiver listening on the right
	// channel); the commit path never reads them otherwise.
	inDBm      float64
	interfered bool
}

// assessOne computes one candidate's delivery physics. Pure with
// respect to everything outside the receiver's cell: it reads medium
// topology and writes only the cell-scoped budget cache, which is what
// makes per-cell concurrent assessment race-free.
func (m *Medium) assessOne(t *transmission, id phys.NodeID, noiseMW float64) assess {
	rx, ok := m.nodes[id]
	if !ok {
		return assess{} // detached while the frame was in flight
	}
	c := m.cellOf(id)
	pos := rx.Position()
	a := assess{rx: rx, b: m.txBudget(t.from, t.pos, id, pos, c)}
	if rx.Channel() != t.channel || rx.RadioState() != radio.RX {
		// The commit path bails out before the SINR term; skip the scan.
		return a
	}
	ledger := m.active
	if c != nil {
		ledger = c.ledger
	}
	interfMW := 0.0
	for _, o := range ledger {
		if o == t || o.pruned || o.channel != t.channel || o.from == id {
			continue
		}
		if o.start >= t.end || o.end <= t.start {
			continue // no temporal overlap
		}
		p := m.txBudget(o.from, o.pos, id, pos, c).Received(o.txDBm)
		interfMW += dbmToMW(p)
		a.interfered = true
	}
	a.inDBm = mwToDBm(noiseMW + interfMW)
	return a
}

// assessCells runs the pure assessment of every candidate, grouped by
// the receiver's current cell, across the engine's worker lanes. Cells
// are the unit of concurrency because they are the unit of state
// ownership: a lane touches only its cell's budget cache and ledger.
// Results land in candidate-index slots; the caller commits them in
// index order, so worker count is invisible in the output.
func (m *Medium) assessCells(t *transmission, ids []phys.NodeID, noiseMW float64) []assess {
	sh := m.shard
	as := make([]assess, len(ids))
	groups := make(map[cellKey][]int)
	var order []cellKey
	for i, id := range ids {
		if id == t.from {
			continue
		}
		key, ok := sh.cellOf[id]
		if !ok {
			continue // detached: zero assess, commit skips it
		}
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	m.eng.ForkJoin(len(order), func(lane int) {
		for _, i := range groups[order[lane]] {
			as[i] = m.assessOne(t, ids[i], noiseMW)
		}
	})
	return as
}
