package medium

import (
	"reflect"
	"testing"

	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
	"liteview/internal/telemetry"
)

// TestPruneRetainsOverlappingInterferers is the regression for the prune
// horizon bug: deliveries run at the *end* of the receiving frame, so an
// interferer that clipped the start of a long frame must stay in
// m.active until that frame delivers — however long ago the interferer
// ended. The old rule dropped anything ended more than 10 byte-times
// before now, so a transmit (which prunes) late in a long frame's
// airtime silently erased the collision.
func TestPruneRetainsOverlappingInterferers(t *testing.T) {
	eng, m := newTestMedium()
	a := newFake(1, 0, 0)
	b := newFake(2, 20, 0)
	c := newFake(3, 10, 0) // equidistant from a and b: SINR ≈ 0 dB
	d := newFake(4, 10, 1)
	d.channel = 18 // prune trigger only; no co-channel interference
	m.Attach(a)
	m.Attach(b)
	m.Attach(c)
	m.Attach(d)

	var deliveries []TapDelivery
	m.SetDeliveryTap(func(td TapDelivery) { deliveries = append(deliveries, td) })

	// Long frame from a (airtime 3.392 ms) overlapped at its start by a
	// short frame from b (airtime 224 µs).
	m.Transmit(a, make([]byte, 100))
	m.Transmit(b, []byte{1})
	// 2 ms in — more than 10 byte-times after b's frame ended, but well
	// before a's frame delivers — another transmit runs prune.
	eng.MustSchedule(sim.Time(2_000_000), func() { m.Transmit(d, []byte{2}) })
	eng.Run()

	for _, td := range deliveries {
		if td.From == 1 && td.To == 3 {
			if td.Outcome != OutcomeCorrupted || td.Cause != "capture" {
				t.Fatalf("long frame outcome = %v (cause %q), want corrupted by capture: pruned interferer excluded from SINR", td.Outcome, td.Cause)
			}
			return
		}
	}
	t.Fatal("no delivery outcome recorded for the long frame")
}

// TestPruneDropsNonOverlapping checks prune still reclaims transmissions
// once nothing in flight can overlap them.
func TestPruneDropsNonOverlapping(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	m.Attach(a)
	m.Attach(b)
	m.Transmit(a, []byte{1})
	eng.Run()
	// Long after the first frame delivered, a new transmit must prune it.
	eng.MustSchedule(sim.Time(10_000_000), func() { m.Transmit(a, []byte{2}) })
	eng.Run()
	if len(m.active) != 1 {
		t.Fatalf("active = %d transmissions, want 1 (old frame pruned)", len(m.active))
	}
}

// TestRadioOffNotCountedAsLinkLoss is the regression for the LPL metrics
// bug: a duty-cycled radio that sleeps through a frame is a schedule
// property, not link quality, and must not inflate link.*.lost.
func TestRadioOffNotCountedAsLinkLoss(t *testing.T) {
	eng, m := newTestMedium()
	rec := telemetry.NewRecorder(eng)
	rec.Start()
	m.SetTelemetry(rec)
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	m.Attach(a)
	m.Attach(b)

	// Sleeping receiver: no delivery, and crucially no link loss.
	b.state = radio.Off
	m.Transmit(a, []byte{1, 2})
	eng.Run()
	snap := rec.Metrics().Snapshot()
	if snap["link.1-2.lost"] != 0 {
		t.Fatalf("link.1-2.lost = %v after radio-off miss, want 0", snap["link.1-2.lost"])
	}
	if m.Stats().MissedNotListening != 1 {
		t.Fatalf("MissedNotListening = %d", m.Stats().MissedNotListening)
	}

	// Awake receiver: clean delivery counts as delivered.
	b.state = radio.RX
	m.Transmit(a, []byte{1, 2})
	eng.Run()
	snap = rec.Metrics().Snapshot()
	if snap["link.1-2.delivered"] != 1 {
		t.Fatalf("link.1-2.delivered = %v, want 1", snap["link.1-2.delivered"])
	}

	// A real loss (injected corruption) does count.
	m.SetLossFunc(func(from, to phys.NodeID, frame []byte) bool { return true })
	m.Transmit(a, []byte{1, 2})
	eng.Run()
	snap = rec.Metrics().Snapshot()
	if snap["link.1-2.lost"] != 1 {
		t.Fatalf("link.1-2.lost = %v after injected loss, want 1", snap["link.1-2.lost"])
	}
}

// detachScenario runs one 32-byte broadcast from node 1 over a fixed
// 4-node topology, optionally detaching a node mid-airtime, and returns
// node 3's receptions.
func detachScenario(t *testing.T, detach phys.NodeID) []RxInfo {
	t.Helper()
	eng, m := newTestMedium()
	a := newFake(1, 0, 0)
	b := newFake(2, 20, 0)
	c := newFake(3, 10, 0)
	x := newFake(4, 30, 0)
	m.Attach(a)
	m.Attach(b)
	m.Attach(c)
	m.Attach(x)
	if _, err := m.Transmit(a, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if detach != 0 {
		eng.MustSchedule(radio.FrameAirtime(32)/2, func() { m.Detach(detach) })
	}
	eng.Run()
	return c.frames
}

// TestDetachMidFlight audits the Detach-during-overlapping-transmission
// path (crash fault + detach): no panic, and the outcomes of receivers
// that stay attached are bit-identical whether a bystander receiver or
// even the transmitter itself detaches mid-airtime.
func TestDetachMidFlight(t *testing.T) {
	base := detachScenario(t, 0)
	if len(base) != 1 {
		t.Fatalf("baseline receptions = %d, want 1", len(base))
	}
	if got := detachScenario(t, 4); !reflect.DeepEqual(got, base) {
		t.Fatalf("detaching a bystander changed receptions: %+v vs %+v", got, base)
	}
	if got := detachScenario(t, 1); !reflect.DeepEqual(got, base) {
		t.Fatalf("detaching the transmitter mid-flight changed receptions: %+v vs %+v", got, base)
	}
}

// indexScenario drives a fixed multi-transmitter schedule over a 5×5
// grid (plus one unreachable outlier) and returns the full per-receiver
// outcome sequence, a mid-airtime CCA sample, and the final stats.
func indexScenario(t *testing.T, indexed bool) ([]TapDelivery, float64, Stats) {
	t.Helper()
	eng, m := newTestMedium()
	m.SetReachabilityIndex(indexed)
	nodes := make([]*fakeNode, 0, 26)
	for i := 0; i < 25; i++ {
		n := newFake(phys.NodeID(i+1), float64(i%5)*15, float64(i/5)*15)
		nodes = append(nodes, n)
		if err := m.Attach(n); err != nil {
			t.Fatal(err)
		}
	}
	far := newFake(26, 10000, 0) // excluded by the reachability floor
	nodes = append(nodes, far)
	m.Attach(far)

	var deliveries []TapDelivery
	m.SetDeliveryTap(func(td TapDelivery) { deliveries = append(deliveries, td) })

	var cca float64
	m.Transmit(nodes[0], make([]byte, 16))
	m.Transmit(nodes[12], make([]byte, 16)) // collides with node 1's frame
	eng.MustSchedule(radio.FrameAirtime(16)/2, func() { cca = m.EnergyDBmAt(nodes[24]) })
	eng.MustSchedule(sim.Time(5_000_000), func() { m.Transmit(nodes[24], make([]byte, 16)) })
	eng.MustSchedule(sim.Time(10_000_000), func() { m.Transmit(nodes[6], make([]byte, 16)) })
	eng.Run()
	return deliveries, cca, m.Stats()
}

// TestReachabilityIndexIsPureOptimization checks the index changes
// nothing observable: same seed, same schedule, byte-identical outcome
// sequence, CCA reading, and stats with the index on and off.
func TestReachabilityIndexIsPureOptimization(t *testing.T) {
	dOn, ccaOn, sOn := indexScenario(t, true)
	dOff, ccaOff, sOff := indexScenario(t, false)
	if len(dOn) == 0 {
		t.Fatal("scenario produced no deliveries")
	}
	if !reflect.DeepEqual(dOn, dOff) {
		if len(dOn) != len(dOff) {
			t.Fatalf("delivery counts differ: indexed %d vs fan-out %d", len(dOn), len(dOff))
		}
		for i := range dOn {
			if dOn[i] != dOff[i] {
				t.Fatalf("delivery %d differs:\nindexed %+v\nfan-out %+v", i, dOn[i], dOff[i])
			}
		}
	}
	if ccaOn != ccaOff {
		t.Fatalf("CCA reading differs: indexed %v vs fan-out %v", ccaOn, ccaOff)
	}
	if sOn != sOff {
		t.Fatalf("stats differ:\nindexed %+v\nfan-out %+v", sOn, sOff)
	}
	// The outlier at 10 km must have been bulk-counted, never reported.
	for _, td := range dOn {
		if td.To == 26 || td.From == 26 {
			t.Fatalf("unreachable outlier appeared in outcomes: %+v", td)
		}
	}
	if sOn.BelowSensitivity == 0 {
		t.Fatal("outlier was not counted below sensitivity")
	}
}

// TestNodeMovedInvalidates checks that the walking-workstation path
// (MAC.SetPosition → Medium.NodeMoved) refreshes cached budgets and
// candidate sets for the moved node.
func TestNodeMovedInvalidates(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 100000, 0) // out of range
	m.Attach(a)
	m.Attach(b)
	m.Transmit(a, []byte{1}) // builds a's candidate set without b
	eng.Run()
	if len(b.frames) != 0 {
		t.Fatal("out-of-range frame delivered")
	}
	// The operator walks next to a; both directions must now work.
	b.pos = phys.Position{X: 5, Y: 0}
	m.NodeMoved(2)
	m.Transmit(a, []byte{2})
	m.Transmit(b, []byte{3})
	eng.Run()
	if len(b.frames) != 1 || len(a.frames) != 1 {
		t.Fatalf("post-move deliveries: a=%d b=%d, want 1 and 1", len(a.frames), len(b.frames))
	}
}

// TestInvalidateTopology checks that moving a node takes effect once the
// caches are invalidated.
func TestInvalidateTopology(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	m.Attach(a)
	m.Attach(b)
	m.Transmit(a, []byte{1})
	eng.Run()
	if len(b.frames) != 1 {
		t.Fatal("close-range frame not delivered")
	}
	// Teleport b out of range; without invalidation the cached gain and
	// candidate set would still deliver.
	b.pos = phys.Position{X: 100000, Y: 0}
	m.InvalidateTopology()
	m.Transmit(a, []byte{2})
	eng.Run()
	if len(b.frames) != 1 {
		t.Fatal("stale gain cache delivered to a moved node")
	}
}
