package medium

import (
	"testing"

	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
)

// fakeNode is a minimal Receiver for medium tests.
type fakeNode struct {
	id      phys.NodeID
	pos     phys.Position
	state   radio.State
	channel int
	power   int
	frames  []RxInfo
	raw     [][]byte
}

func newFake(id phys.NodeID, x, y float64) *fakeNode {
	return &fakeNode{id: id, pos: phys.Position{X: x, Y: y}, state: radio.RX, channel: 17, power: radio.MaxPowerLevel}
}

func (f *fakeNode) NodeID() phys.NodeID     { return f.id }
func (f *fakeNode) Position() phys.Position { return f.pos }
func (f *fakeNode) RadioState() radio.State { return f.state }
func (f *fakeNode) Channel() int            { return f.channel }
func (f *fakeNode) PowerLevel() int         { return f.power }
func (f *fakeNode) OnFrame(frame []byte, info RxInfo) {
	f.frames = append(f.frames, info)
	f.raw = append(f.raw, frame)
}

func newTestMedium() (*sim.Engine, *Medium) {
	eng := sim.NewEngine(42)
	model := phys.DefaultModel(42)
	model.ShadowSigma = 0
	model.AsymSigma = 0
	return eng, New(eng, model)
}

func TestAttachDetach(t *testing.T) {
	_, m := newTestMedium()
	a := newFake(1, 0, 0)
	if err := m.Attach(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(a); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	if m.Nodes() != 1 {
		t.Fatalf("Nodes = %d", m.Nodes())
	}
	m.Detach(1)
	if m.Nodes() != 0 {
		t.Fatalf("Nodes after detach = %d", m.Nodes())
	}
	m.Detach(1) // idempotent
}

func TestTransmitDelivers(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	m.Attach(a)
	m.Attach(b)
	frame := []byte{1, 2, 3, 4}
	air, err := m.Transmit(a, frame)
	if err != nil {
		t.Fatal(err)
	}
	if air != radio.FrameAirtime(4) {
		t.Fatalf("airtime = %v", air)
	}
	eng.Run()
	if len(b.frames) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(b.frames))
	}
	info := b.frames[0]
	if info.Corrupted {
		t.Fatal("short-range full-power frame corrupted")
	}
	if info.From != 1 {
		t.Fatalf("From = %d", info.From)
	}
	if info.LQI < 100 {
		t.Fatalf("LQI at 5m full power = %d, want near 110", info.LQI)
	}
	if string(b.raw[0]) != string(frame) {
		t.Fatal("frame bytes mangled")
	}
	if len(a.frames) != 0 {
		t.Fatal("sender heard its own frame")
	}
}

func TestDeliveryAtEndOfAirtime(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	m.Attach(a)
	m.Attach(b)
	m.Transmit(a, make([]byte, 32))
	eng.Run()
	if got := b.frames[0].At; got != radio.FrameAirtime(32) {
		t.Fatalf("delivered at %v, want %v", got, radio.FrameAirtime(32))
	}
}

func TestChannelIsolation(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	b.channel = 18
	m.Attach(a)
	m.Attach(b)
	m.Transmit(a, []byte{1})
	eng.Run()
	if len(b.frames) != 0 {
		t.Fatal("frame crossed channels")
	}
}

func TestNotListeningMisses(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	b.state = radio.TX
	m.Attach(a)
	m.Attach(b)
	m.Transmit(a, []byte{1})
	eng.Run()
	if len(b.frames) != 0 {
		t.Fatal("non-listening node received a frame")
	}
	if m.Stats().MissedNotListening != 1 {
		t.Fatalf("MissedNotListening = %d", m.Stats().MissedNotListening)
	}
}

func TestBelowSensitivityNeverDetected(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 100000, 0) // 100 km
	m.Attach(a)
	m.Attach(b)
	m.Transmit(a, []byte{1})
	eng.Run()
	if len(b.frames) != 0 {
		t.Fatal("frame detected below sensitivity")
	}
	if m.Stats().BelowSensitivity != 1 {
		t.Fatalf("BelowSensitivity = %d", m.Stats().BelowSensitivity)
	}
}

func TestCollisionCorrupts(t *testing.T) {
	eng, m := newTestMedium()
	// Two senders equidistant from the receiver transmit simultaneously:
	// SINR ≈ 0 dB, so reception should essentially always fail.
	a, b, c := newFake(1, 0, 0), newFake(2, 20, 0), newFake(3, 10, 0)
	m.Attach(a)
	m.Attach(b)
	m.Attach(c)
	corrupted := 0
	trials := 50
	for i := 0; i < trials; i++ {
		c.frames = nil
		m.Transmit(a, make([]byte, 32))
		m.Transmit(b, make([]byte, 32))
		eng.Run()
		for _, f := range c.frames {
			if f.Corrupted {
				corrupted++
			}
		}
	}
	if corrupted < trials { // 2 frames per trial; expect nearly all corrupted
		t.Fatalf("only %d corrupted frames across %d colliding trials", corrupted, trials)
	}
}

func TestCaptureEffect(t *testing.T) {
	eng, m := newTestMedium()
	// Receiver is very close to a and far from b: a's frame should
	// survive b's concurrent transmission (capture).
	a, b, c := newFake(1, 0, 0), newFake(2, 60, 0), newFake(3, 2, 0)
	m.Attach(a)
	m.Attach(b)
	m.Attach(c)
	okFromA := 0
	for i := 0; i < 50; i++ {
		c.frames = nil
		m.Transmit(a, make([]byte, 32))
		m.Transmit(b, make([]byte, 32))
		eng.Run()
		for _, f := range c.frames {
			if f.From == 1 && !f.Corrupted {
				okFromA++
			}
		}
	}
	if okFromA < 45 {
		t.Fatalf("capture failed: only %d/50 strong frames survived", okFromA)
	}
}

func TestEnergyDetect(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	m.Attach(a)
	m.Attach(b)
	if m.ChannelBusy(b, radio.CCAThresholdDBm) {
		t.Fatal("channel busy before any transmission")
	}
	m.Transmit(a, make([]byte, 64))
	// Sample mid-airtime.
	var busyMid bool
	eng.MustSchedule(radio.FrameAirtime(64)/2, func() {
		busyMid = m.ChannelBusy(b, radio.CCAThresholdDBm)
	})
	eng.Run()
	if !busyMid {
		t.Fatal("CCA did not see the ongoing transmission")
	}
	if m.ChannelBusy(b, radio.CCAThresholdDBm) {
		t.Fatal("channel still busy after airtime")
	}
}

func TestEnergyDetectIgnoresOtherChannel(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	b.channel = 20
	m.Attach(a)
	m.Attach(b)
	m.Transmit(a, make([]byte, 64))
	var busyMid bool
	eng.MustSchedule(radio.FrameAirtime(64)/2, func() {
		busyMid = m.ChannelBusy(b, radio.CCAThresholdDBm)
	})
	eng.Run()
	if busyMid {
		t.Fatal("CCA heard a transmission on a different channel")
	}
}

func TestTransmitValidation(t *testing.T) {
	_, m := newTestMedium()
	a := newFake(1, 0, 0)
	if _, err := m.Transmit(a, []byte{1}); err == nil {
		t.Fatal("transmit from unattached node accepted")
	}
	m.Attach(a)
	if _, err := m.Transmit(a, nil); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestStatsCounting(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	m.Attach(a)
	m.Attach(b)
	m.Transmit(a, []byte{1, 2})
	eng.Run()
	s := m.Stats()
	if s.Transmitted != 1 || s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
	m.ResetStats()
	if m.Stats().Transmitted != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestFrameCopyIsolation(t *testing.T) {
	eng, m := newTestMedium()
	a, b := newFake(1, 0, 0), newFake(2, 5, 0)
	m.Attach(a)
	m.Attach(b)
	frame := []byte{9, 9, 9}
	m.Transmit(a, frame)
	frame[0] = 0 // mutate after transmit; receiver must see the original
	eng.Run()
	if b.raw[0][0] != 9 {
		t.Fatal("medium did not copy the frame on transmit")
	}
	// Receivers share one read-only slice (see Receiver.OnFrame); the
	// transmit-time copy is the only one the medium makes.
}
