package medium

import (
	"reflect"
	"testing"

	"liteview/internal/phys"
	"liteview/internal/radio"
	"liteview/internal/sim"
)

// shardPurityScenario replays the indexScenario schedule on a sharded
// medium. The 5×5 grid (span 60 m) fits inside one detectability ring,
// so every quantity the sharded medium computes — candidate sets, bulk
// far counts, interference sums — must be bit-identical to the
// unsharded index.
func shardPurityScenario(t *testing.T, workers int) ([]TapDelivery, float64, Stats) {
	t.Helper()
	eng, m := newTestMedium()
	nodes := make([]*fakeNode, 0, 26)
	for i := 0; i < 25; i++ {
		n := newFake(phys.NodeID(i+1), float64(i%5)*15, float64(i/5)*15)
		nodes = append(nodes, n)
		if err := m.Attach(n); err != nil {
			t.Fatal(err)
		}
	}
	far := newFake(26, 10000, 0)
	nodes = append(nodes, far)
	m.Attach(far)
	if err := m.SetSharding(Sharding{Workers: workers}); err != nil {
		t.Fatal(err)
	}

	var deliveries []TapDelivery
	m.SetDeliveryTap(func(td TapDelivery) { deliveries = append(deliveries, td) })

	var cca float64
	m.Transmit(nodes[0], make([]byte, 16))
	m.Transmit(nodes[12], make([]byte, 16))
	eng.MustSchedule(radio.FrameAirtime(16)/2, func() { cca = m.EnergyDBmAt(nodes[24]) })
	eng.MustSchedule(sim.Time(5_000_000), func() { m.Transmit(nodes[24], make([]byte, 16)) })
	eng.MustSchedule(sim.Time(10_000_000), func() { m.Transmit(nodes[6], make([]byte, 16)) })
	eng.Run()
	return deliveries, cca, m.Stats()
}

// TestShardedMatchesIndexOnCompactTopology: on a deployment that fits
// in one detectability ring the sharded medium is a pure optimization —
// byte-identical deliveries, CCA, and stats against the unsharded
// index, at sequential and concurrent worker budgets alike.
func TestShardedMatchesIndexOnCompactTopology(t *testing.T) {
	dIdx, ccaIdx, sIdx := indexScenario(t, true)
	for _, workers := range []int{1, 4} {
		d, cca, s := shardPurityScenario(t, workers)
		if !reflect.DeepEqual(d, dIdx) {
			t.Fatalf("workers=%d: deliveries diverge from the unsharded index (%d vs %d records)",
				workers, len(d), len(dIdx))
		}
		if cca != ccaIdx {
			t.Fatalf("workers=%d: CCA %v, unsharded index %v", workers, cca, ccaIdx)
		}
		if s != sIdx {
			t.Fatalf("workers=%d: stats %+v, unsharded index %+v", workers, s, sIdx)
		}
	}
}

// shardGridScenario drives a hostile schedule over an 8×8 grid spanning
// several cells: colliding transmissions, a partition fault cutting
// across a cell edge, a jammed region, a receiver migrating cells while
// a frame is in flight (including into virgin ground no cell covers
// yet), and transmissions from the migrated node and from nodes sitting
// in corner cells. Returns every observable the medium produces.
func shardGridScenario(t *testing.T, workers int) ([]TapDelivery, []float64, Stats) {
	t.Helper()
	eng, m := newTestMedium()
	nodes := make([]*fakeNode, 64)
	for i := range nodes {
		n := newFake(phys.NodeID(i+1), float64(i%8)*30, float64(i/8)*30)
		nodes[i] = n
		if err := m.Attach(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SetSharding(Sharding{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	// A partition across the x≈105 line — right through a cell edge
	// (auto cell size ≈ 108 m) — and a jammer over the top-right cell.
	m.SetFaultHook(func(from, to phys.NodeID, ch int) FaultEffect {
		fx, tx := m.nodes[from].Position().X, m.nodes[to].Position().X
		if (fx < 105) != (tx < 105) {
			return FaultEffect{Drop: true}
		}
		tp := m.nodes[to].Position()
		if tp.X > 150 && tp.Y > 150 {
			return FaultEffect{Corrupt: true}
		}
		return FaultEffect{}
	})

	var deliveries []TapDelivery
	m.SetDeliveryTap(func(td TapDelivery) { deliveries = append(deliveries, td) })
	var ccas []float64

	air := radio.FrameAirtime(48)
	m.Transmit(nodes[27], make([]byte, 48)) // interior, col 3
	m.Transmit(nodes[36], make([]byte, 48)) // interior, col 4: collides across the partition
	eng.MustSchedule(air/2, func() {
		ccas = append(ccas, m.EnergyDBmAt(nodes[0]), m.EnergyDBmAt(nodes[63]))
		// Receiver migration with the frames still in the air: node 60
		// walks across a cell boundary, node 5 lands exactly on one.
		nodes[59].pos = phys.Position{X: 250, Y: 95}
		m.NodeMoved(60)
		nodes[4].pos = phys.Position{X: 2 * 30, Y: 108} // near the y-edge
		m.NodeMoved(5)
	})
	eng.MustSchedule(sim.Time(5_000_000), func() {
		m.Transmit(nodes[59], make([]byte, 24)) // from the migrated position
		m.Transmit(nodes[4], make([]byte, 24))
	})
	eng.MustSchedule(sim.Time(8_000_000), func() {
		// Into virgin ground: no cell has ever covered (700, 700).
		nodes[62].pos = phys.Position{X: 700, Y: 700}
		m.NodeMoved(63)
		m.Transmit(nodes[62], make([]byte, 16))
	})
	eng.MustSchedule(sim.Time(12_000_000), func() {
		m.Transmit(nodes[0], make([]byte, 48))  // corner cell
		m.Transmit(nodes[63], make([]byte, 48)) // opposite corner
		ccas = append(ccas, m.EnergyDBmAt(nodes[31]))
	})
	eng.Run()
	return deliveries, ccas, m.Stats()
}

// TestShardedWorkerCountInvariance is the determinism contract of
// DESIGN.md §14: the number of concurrent medium workers is a pure
// performance knob — deliveries, CCA samples, and stats are
// byte-identical at every budget, under collisions, faults crossing
// cell edges, and mid-flight cell migrations.
func TestShardedWorkerCountInvariance(t *testing.T) {
	dBase, ccaBase, sBase := shardGridScenario(t, 1)
	if len(dBase) == 0 {
		t.Fatal("scenario produced no deliveries")
	}
	for _, workers := range []int{2, 3, 8} {
		d, cca, s := shardGridScenario(t, workers)
		if len(d) != len(dBase) {
			t.Fatalf("workers=%d: %d deliveries, sequential %d", workers, len(d), len(dBase))
		}
		for i := range d {
			if d[i] != dBase[i] {
				t.Fatalf("workers=%d: delivery %d differs:\n%+v\nsequential:\n%+v",
					workers, i, d[i], dBase[i])
			}
		}
		if !reflect.DeepEqual(cca, ccaBase) {
			t.Fatalf("workers=%d: CCA %v, sequential %v", workers, cca, ccaBase)
		}
		if s != sBase {
			t.Fatalf("workers=%d: stats %+v, sequential %+v", workers, s, sBase)
		}
	}
}

// boundaryScenario puts nodes exactly on cell-boundary coordinates
// (multiples of an explicit 50 m cell size), where floor(x/size) is one
// ULP from flipping cells, and runs a colliding schedule. The span fits
// one ring (ring = 3 at 50 m cells), so the indexed medium is the
// oracle as well as the sequential baseline.
func boundaryScenario(t *testing.T, shard bool, workers int) ([]TapDelivery, Stats) {
	t.Helper()
	eng, m := newTestMedium()
	var nodes []*fakeNode
	id := phys.NodeID(1)
	for _, x := range []float64{0, 49.999999, 50, 100, 150} {
		for _, y := range []float64{0, 50} {
			n := newFake(id, x, y)
			nodes = append(nodes, n)
			if err := m.Attach(n); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	if shard {
		if err := m.SetSharding(Sharding{CellSize: 50, Workers: workers}); err != nil {
			t.Fatal(err)
		}
	}
	var deliveries []TapDelivery
	m.SetDeliveryTap(func(td TapDelivery) { deliveries = append(deliveries, td) })
	m.Transmit(nodes[4], make([]byte, 32)) // node at exactly (50, 0)
	m.Transmit(nodes[7], make([]byte, 32)) // (100, 50): collision
	eng.MustSchedule(sim.Time(3_000_000), func() { m.Transmit(nodes[0], make([]byte, 32)) })
	eng.Run()
	return deliveries, m.Stats()
}

// TestShardedBoundaryNodes: a node whose coordinate sits exactly on a
// cell boundary belongs to exactly one cell (floor semantics) and its
// transmissions and receptions are byte-identical to the unsharded
// index at every worker count.
func TestShardedBoundaryNodes(t *testing.T) {
	dIdx, sIdx := boundaryScenario(t, false, 1)
	for _, workers := range []int{1, 4} {
		d, s := boundaryScenario(t, true, workers)
		if !reflect.DeepEqual(d, dIdx) {
			t.Fatalf("workers=%d: boundary-node deliveries diverge from the index", workers)
		}
		if s != sIdx {
			t.Fatalf("workers=%d: stats %+v, index %+v", workers, s, sIdx)
		}
	}
}

// migrationScenario has a receiver walk across a cell boundary — or
// into virgin ground — while a frame addressed to it is in flight, then
// transmit from its new position. Small enough to stay inside one ring,
// so the unsharded index is the oracle.
func migrationScenario(t *testing.T, shard bool, workers int, dest phys.Position) ([]TapDelivery, Stats) {
	t.Helper()
	eng, m := newTestMedium()
	a, b, c := newFake(1, 0, 0), newFake(2, 100, 0), newFake(3, 60, 30)
	for _, n := range []*fakeNode{a, b, c} {
		if err := m.Attach(n); err != nil {
			t.Fatal(err)
		}
	}
	if shard {
		if err := m.SetSharding(Sharding{Workers: workers}); err != nil {
			t.Fatal(err)
		}
	}
	var deliveries []TapDelivery
	m.SetDeliveryTap(func(td TapDelivery) { deliveries = append(deliveries, td) })
	m.Transmit(a, make([]byte, 100)) // long frame: 3.4 ms in the air
	eng.MustSchedule(radio.FrameAirtime(100)/2, func() {
		b.pos = dest
		m.NodeMoved(2)
	})
	eng.MustSchedule(sim.Time(5_000_000), func() { m.Transmit(b, make([]byte, 32)) })
	eng.Run()
	return deliveries, m.Stats()
}

// TestShardedReceiverMigratesMidFlight covers both migration shapes: a
// hop to an adjacent cell, and a hop into a cell that never existed
// (whose ledger must be rebuilt from the active list so the in-flight
// frame still reaches the migrated receiver's assessment).
func TestShardedReceiverMigratesMidFlight(t *testing.T) {
	for name, dest := range map[string]phys.Position{
		"adjacent-cell": {X: 215, Y: 0},
		"virgin-ground": {X: 500, Y: 500},
	} {
		dIdx, sIdx := migrationScenario(t, false, 1, dest)
		for _, workers := range []int{1, 4} {
			d, s := migrationScenario(t, true, workers, dest)
			if !reflect.DeepEqual(d, dIdx) {
				t.Fatalf("%s workers=%d: deliveries diverge from the index:\nsharded %+v\nindex   %+v",
					name, workers, d, dIdx)
			}
			if s != sIdx {
				t.Fatalf("%s workers=%d: stats %+v, index %+v", name, workers, s, sIdx)
			}
		}
	}
}

// movingTxScenario is the walking-workstation regression: the
// workstation transmits, walks away while its frame is still in the
// air, and transmits again from the new spot. The delivery of the
// in-flight frame is computed against the captured position — and
// before the txBudget fix it poisoned the (from,to) budget cache with
// that stale-position value, so the post-move transmission reused a
// budget from a spot the workstation had already left.
func movingTxScenario(t *testing.T, indexed bool) ([]TapDelivery, Stats) {
	t.Helper()
	eng, m := newTestMedium()
	m.SetReachabilityIndex(indexed)
	a, b := newFake(1, 0, 0), newFake(2, 20, 0)
	m.Attach(a)
	m.Attach(b)
	var deliveries []TapDelivery
	m.SetDeliveryTap(func(td TapDelivery) { deliveries = append(deliveries, td) })
	m.Transmit(a, make([]byte, 64))
	eng.MustSchedule(radio.FrameAirtime(64)/2, func() {
		a.pos = phys.Position{X: 100000, Y: 0} // walks out of range mid-flight
		m.NodeMoved(1)
	})
	eng.MustSchedule(sim.Time(5_000_000), func() { m.Transmit(a, make([]byte, 64)) })
	eng.Run()
	return deliveries, m.Stats()
}

// TestMovedTransmitterMidFlightPurity byte-compares the indexed and
// legacy fan-outs across a mid-flight move of the transmitter: the
// in-flight frame must deliver from the captured position, and the
// post-move frame must see the new position — in both modes.
func TestMovedTransmitterMidFlightPurity(t *testing.T) {
	dOn, sOn := movingTxScenario(t, true)
	dOff, sOff := movingTxScenario(t, false)
	if !reflect.DeepEqual(dOn, dOff) {
		t.Fatalf("indexed and legacy fan-outs diverge across a mid-flight move:\nindexed %+v\nlegacy  %+v", dOn, dOff)
	}
	if sOn != sOff {
		t.Fatalf("stats diverge: indexed %+v legacy %+v", sOn, sOff)
	}
	// The in-flight frame (captured 20 m away) must have been delivered;
	// the post-move frame (100 km away) must not have been.
	var first, second bool
	for _, d := range dOn {
		if d.TxSeq == 1 && d.Outcome == OutcomeDelivered {
			first = true
		}
		if d.TxSeq == 2 && d.Outcome == OutcomeDelivered {
			second = true
		}
	}
	if !first {
		t.Fatal("in-flight frame was not delivered from its captured position")
	}
	if second {
		t.Fatal("post-move frame delivered across 100 km: stale budget cache")
	}
}

// TestShardingRequiresIndex pins the API contract: sharding is the
// reachability index taken spatial, and disabling the index drops it.
func TestShardingRequiresIndex(t *testing.T) {
	_, m := newTestMedium()
	m.SetReachabilityIndex(false)
	if err := m.SetSharding(Sharding{}); err == nil {
		t.Fatal("SetSharding accepted with the index disabled")
	}
	m.SetReachabilityIndex(true)
	if err := m.SetSharding(Sharding{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if !m.Sharded() {
		t.Fatal("Sharded() = false after SetSharding")
	}
	if cells, size, ring := m.ShardInfo(); size <= 0 || ring < 1 || cells != 0 {
		t.Fatalf("ShardInfo = (%d, %f, %d) on an empty sharded medium", cells, size, ring)
	}
	m.SetReachabilityIndex(false)
	if m.Sharded() {
		t.Fatal("sharding survived disabling the index")
	}
}

// scaleScenario attaches a side×side grid (14 m spacing — the lvbench
// scale geometry) and fires staggered transmissions from transmitters
// scattered across it, returning every delivery outcome and the stats.
func scaleScenario(t *testing.T, side, workers int) ([]TapDelivery, Stats) {
	t.Helper()
	eng, m := newTestMedium()
	nodes := make([]*fakeNode, side*side)
	for i := range nodes {
		n := newFake(phys.NodeID(i+1), float64(i%side)*14, float64(i/side)*14)
		nodes[i] = n
		if err := m.Attach(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SetSharding(Sharding{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	var deliveries []TapDelivery
	m.SetDeliveryTap(func(td TapDelivery) { deliveries = append(deliveries, td) })
	for k := 0; k < 25; k++ {
		n := nodes[(k*(side*side/25)+side/2)%len(nodes)]
		delay := sim.Time(k) * 200_000 // 200 µs apart: plenty of overlap
		eng.MustSchedule(delay, func() { m.Transmit(n, make([]byte, 32)) })
	}
	eng.Run()
	return deliveries, m.Stats()
}

// TestShardedScaleWorkerInvariance byte-compares a many-cell
// deployment at the lvbench scale geometry across worker counts; the
// CI race job runs it with -race to catch any assessment-phase sharing
// the per-cell ownership argument missed. -short trims the grid.
func TestShardedScaleWorkerInvariance(t *testing.T) {
	side := 100 // 10,000 nodes, the scale scenario's geometry
	if testing.Short() {
		side = 45
	}
	dBase, sBase := scaleScenario(t, side, 1)
	if len(dBase) == 0 {
		t.Fatal("scale scenario produced no deliveries")
	}
	d, s := scaleScenario(t, side, 4)
	if len(d) != len(dBase) {
		t.Fatalf("workers=4: %d deliveries, sequential %d", len(d), len(dBase))
	}
	for i := range d {
		if d[i] != dBase[i] {
			t.Fatalf("workers=4: delivery %d differs:\n%+v\nsequential:\n%+v", i, d[i], dBase[i])
		}
	}
	if s != sBase {
		t.Fatalf("workers=4: stats %+v, sequential %+v", s, sBase)
	}
}
