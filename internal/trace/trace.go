// Package trace provides the measurement plumbing the benchmark harness
// uses to regenerate the paper's tables and figures: series of
// (x, y) observations, summary statistics, and fixed-width table /
// CSV rendering so every experiment prints the same rows the paper
// reports.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one observation in a series.
type Point struct {
	X float64
	Y float64
	// Label optionally annotates the point (e.g. a series name or a
	// node name).
	Label string
}

// Series is an ordered set of observations with a name.
type Series struct {
	Name   string
	Points []Point
}

// Add appends an observation.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// AddLabeled appends an annotated observation.
func (s *Series) AddLabeled(x, y float64, label string) {
	s.Points = append(s.Points, Point{X: x, Y: y, Label: label})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Ys returns the Y values in order.
func (s *Series) Ys() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y
	}
	return out
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Min, Max   float64
	Stddev           float64
	Median, P90, P99 float64
}

// Summarize computes descriptive statistics. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	variance := sumSq/float64(len(xs)) - s.Mean*s.Mean
	if variance > 0 {
		s.Stddev = math.Sqrt(variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantile(sorted, 0.5)
	s.P90 = quantile(sorted, 0.9)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile reads the q-quantile from a sorted sample (nearest rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// LinearFit returns the least-squares slope and intercept of a series,
// used to check "grows almost linearly" claims (Figure 7).
func LinearFit(points []Point) (slope, intercept float64) {
	n := float64(len(points))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// RSquared measures how well a linear fit explains a series.
func RSquared(points []Point) float64 {
	if len(points) < 2 {
		return 1
	}
	slope, intercept := LinearFit(points)
	var meanY float64
	for _, p := range points {
		meanY += p.Y
	}
	meanY /= float64(len(points))
	var ssRes, ssTot float64
	for _, p := range points {
		pred := slope*p.X + intercept
		ssRes += (p.Y - pred) * (p.Y - pred)
		ssTot += (p.Y - meanY) * (p.Y - meanY)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// Table renders fixed-width text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }
