package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Median != 3 {
		t.Fatalf("median = %f", s.Median)
	}
	if math.Abs(s.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %f", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeInvariants(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 &&
			s.Min <= s.Median && s.Median <= s.Max &&
			s.P90 >= s.Median-1e-9 && s.Stddev >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	var s Series
	for x := 1.0; x <= 8; x++ {
		s.Add(x, 3*x+2)
	}
	slope, intercept := LinearFit(s.Points)
	if math.Abs(slope-3) > 1e-9 || math.Abs(intercept-2) > 1e-9 {
		t.Fatalf("fit = %f, %f", slope, intercept)
	}
	if r2 := RSquared(s.Points); math.Abs(r2-1) > 1e-9 {
		t.Fatalf("R² = %f", r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	slope, intercept := LinearFit(nil)
	if slope != 0 || intercept != 0 {
		t.Fatal("empty fit should be zero")
	}
	// Constant series: slope 0, perfect fit.
	pts := []Point{{1, 5, ""}, {2, 5, ""}, {3, 5, ""}}
	slope, intercept = LinearFit(pts)
	if slope != 0 || intercept != 5 {
		t.Fatalf("constant fit = %f, %f", slope, intercept)
	}
	if RSquared(pts) != 1 {
		t.Fatal("constant series should have R²=1")
	}
	// Vertical stack (all same x).
	vert := []Point{{2, 1, ""}, {2, 3, ""}}
	slope, _ = LinearFit(vert)
	if slope != 0 {
		t.Fatalf("vertical fit slope = %f", slope)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "rssi"
	s.Add(1, -20)
	s.AddLabeled(2, -25, "hop2")
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	ys := s.Ys()
	if ys[0] != -20 || ys[1] != -25 {
		t.Fatalf("ys = %v", ys)
	}
	if s.Points[1].Label != "hop2" {
		t.Fatal("label lost")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("hops", "delay_ms")
	tab.AddRow(1, 12.345)
	tab.AddRow(2, 20.0)
	out := tab.String()
	if !strings.Contains(out, "hops") || !strings.Contains(out, "12.35") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if tab.Rows() != 2 {
		t.Fatalf("rows = %d", tab.Rows())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("x", 1)
	csv := tab.CSV()
	if csv != "a,b\nx,1\n" {
		t.Fatalf("csv = %q", csv)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 0.9); q != 9 {
		t.Fatalf("p90 = %f", q)
	}
	if q := quantile(sorted, 0); q != 1 {
		t.Fatalf("p0 = %f", q)
	}
	if q := quantile(sorted, 1); q != 10 {
		t.Fatalf("p100 = %f", q)
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}
