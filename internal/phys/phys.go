// Package phys models the physical world the simulated motes live in:
// node positions, RF path loss, noise, and the mapping from
// signal-to-noise ratio to packet error rate.
//
// The paper's testbed is thirty MicaZ motes whose radio environment is
// shaped by distance, antenna orientation, and enclosures. We replace
// that with a log-distance path-loss model plus static lognormal
// shadowing, and — because LiteView explicitly diagnoses *asymmetric*
// links (Figure 6 plots forward and backward RSSI separately) — a static
// per-direction asymmetry term. Shadowing and asymmetry are drawn
// deterministically from the link endpoints and the model seed, so a
// given deployment has a fixed, repeatable radio map, the way a real
// deployment does over short time scales.
package phys

import (
	"fmt"
	"math"
)

// NodeID identifies a mote on the shared medium. IDs are 16-bit to match
// the address width of 802.15.4 short addresses.
type NodeID uint16

// Broadcast is the 802.15.4 broadcast short address.
const Broadcast NodeID = 0xFFFF

// Position is a node location in meters.
type Position struct {
	X, Y float64
}

// Distance returns the Euclidean distance between two positions in
// meters.
func (p Position) Distance(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

func (p Position) String() string {
	return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y)
}

// Model holds the RF propagation parameters. The zero value is not
// usable; construct with DefaultModel and adjust fields before first
// use.
type Model struct {
	// PL0 is the path loss in dB at the reference distance of 1 m.
	PL0 float64
	// Exponent is the path-loss exponent (2 free space, 3-4 indoor).
	Exponent float64
	// ShadowSigma is the standard deviation in dB of the static
	// lognormal shadowing drawn per unordered link.
	ShadowSigma float64
	// AsymSigma is the standard deviation in dB of the static
	// per-direction offset drawn per ordered link. It is what makes
	// forward and backward RSSI differ in Figure 6.
	AsymSigma float64
	// NoiseFloor is the receiver noise floor in dBm.
	NoiseFloor float64
	// Seed fixes the shadowing/asymmetry draws of this deployment.
	Seed uint64
}

// DefaultModel returns parameters calibrated so that nodes a few meters
// apart at full CC2420 power see RSSI register readings near 0 (as in
// the paper's sample ping output) and links beyond ~40 m become
// unreliable.
func DefaultModel(seed uint64) *Model {
	return &Model{
		PL0:         45.0,
		Exponent:    3.0,
		ShadowSigma: 3.0,
		AsymSigma:   1.5,
		NoiseFloor:  -95.0,
		Seed:        seed,
	}
}

// hash64 mixes x with the model seed (splitmix64 finalizer).
func (m *Model) hash64(x uint64) uint64 {
	z := x + m.Seed*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// gauss returns a deterministic standard normal deviate keyed by k,
// using the inverse of two uniform draws via Box-Muller.
func (m *Model) gauss(k uint64) float64 {
	u1 := float64(m.hash64(k)>>11)/(1<<53) + 1e-12
	u2 := float64(m.hash64(k^0xabcdef1234567890)>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Shadowing returns the static shadowing term in dB for the unordered
// link {a, b}. It is symmetric: Shadowing(a,b) == Shadowing(b,a).
func (m *Model) Shadowing(a, b NodeID) float64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	key := uint64(lo)<<16 | uint64(hi)
	return m.ShadowSigma * m.gauss(key)
}

// Asymmetry returns the static per-direction offset in dB for the
// ordered link a→b. Asymmetry(a,b) and Asymmetry(b,a) are independent
// draws; their difference is what a LiteView user observes when
// comparing forward and backward RSSI.
func (m *Model) Asymmetry(a, b NodeID) float64 {
	key := uint64(a)<<32 | uint64(b) | 1<<48
	return m.AsymSigma * m.gauss(key)
}

// PathLoss returns the loss in dB over distance d in meters, excluding
// shadowing and asymmetry. Distances under 1 m clamp to the reference
// distance.
func (m *Model) PathLoss(d float64) float64 {
	if d < 1 {
		d = 1
	}
	return m.PL0 + 10*m.Exponent*math.Log10(d)
}

// MaxGaussDB is the largest magnitude gauss can produce. Box-Muller
// over u1 ≥ 1e-12 bounds the radius at sqrt(-2·ln 1e-12) ≈ 7.434, so
// every shadowing or asymmetry draw lies within ±MaxGaussDB standard
// deviations. The spatially sharded medium leans on this: it turns the
// model's "random" terms into a hard worst-case link budget.
const MaxGaussDB = 7.44

// MaxDeviationDB returns the largest total boost in dB the static
// shadowing and asymmetry draws can add to any directed link.
func (m *Model) MaxDeviationDB() float64 {
	return MaxGaussDB * (m.ShadowSigma + m.AsymSigma)
}

// DetectRange returns the distance in meters beyond which NO link in
// this deployment can deliver floorDBm to a receiver from a transmitter
// emitting txDBm — even with the most favourable shadowing and
// asymmetry draws the model can produce. It inverts PathLoss at the
// worst-case budget, so it is conservative: every pair farther apart
// than DetectRange is guaranteed under the floor, while pairs inside it
// must still be checked link by link. This bound is what sizes the
// sharded medium's cells: RF energy from a transmitter is provably
// confined to cells within DetectRange of it.
func (m *Model) DetectRange(txDBm, floorDBm float64) float64 {
	budget := txDBm - floorDBm + m.MaxDeviationDB() - m.PL0
	if budget <= 0 {
		return 1 // loss at the 1 m reference distance already exceeds the budget
	}
	return math.Pow(10, budget/(10*m.Exponent))
}

// Budget holds the static dB components of a directed link's budget:
// path loss, shadowing, and per-direction asymmetry. All three depend
// only on the endpoints' identities and positions and the model seed,
// so callers may cache a Budget for as long as neither node moves (the
// medium's link-gain cache does exactly that).
type Budget struct {
	PathLossDB, ShadowDB, AsymDB float64
}

// Received returns the power in dBm arriving over this link when the
// transmitter emits txDBm. The terms are combined in exactly the
// arithmetic order Model.ReceivedPower uses, so a cached Budget
// reproduces bit-identical received powers.
func (b Budget) Received(txDBm float64) float64 {
	return txDBm - b.PathLossDB + b.ShadowDB + b.AsymDB
}

// LinkBudget returns the static link budget of the directed link
// from → to.
func (m *Model) LinkBudget(from, to NodeID, fromPos, toPos Position) Budget {
	return Budget{
		PathLossDB: m.PathLoss(fromPos.Distance(toPos)),
		ShadowDB:   m.Shadowing(from, to),
		AsymDB:     m.Asymmetry(from, to),
	}
}

// ReceivedPower returns the power in dBm that node 'to' at position
// 'toPos' receives from node 'from' at 'fromPos' transmitting at txDBm.
func (m *Model) ReceivedPower(txDBm float64, from, to NodeID, fromPos, toPos Position) float64 {
	return m.LinkBudget(from, to, fromPos, toPos).Received(txDBm)
}

// SNR returns the signal-to-noise ratio in dB for a received power.
func (m *Model) SNR(rxDBm float64) float64 {
	return rxDBm - m.NoiseFloor
}

// BER returns the bit error rate of 802.15.4 O-QPSK DSSS at the given
// SNR in dB, using the standard analytical approximation (IEEE 802.15.4
// / Zuniga & Krishnamachari): for linear SNR γ,
//
//	BER = (8/15) · (1/16) · Σ_{k=2}^{16} (−1)^k C(16,k) · exp(20·γ·(1/k − 1))
func BER(snrDB float64) float64 {
	gamma := math.Pow(10, snrDB/10)
	var sum float64
	for k := 2; k <= 16; k++ {
		term := binom16[k] * math.Exp(20*gamma*(1/float64(k)-1))
		if k%2 == 0 {
			sum += term
		} else {
			sum -= term
		}
	}
	ber := (8.0 / 15.0) * (1.0 / 16.0) * sum
	if ber < 0 {
		return 0
	}
	if ber > 0.5 {
		return 0.5
	}
	return ber
}

// binom16[k] = C(16, k) for the BER series.
var binom16 = [17]float64{
	1, 16, 120, 560, 1820, 4368, 8008, 11440,
	12870, 11440, 8008, 4368, 1820, 560, 120, 16, 1,
}

// PRR returns the probability that a frame of the given length in bytes
// is received without bit errors at the given SNR in dB.
func PRR(snrDB float64, lengthBytes int) float64 {
	if lengthBytes <= 0 {
		return 1
	}
	ber := BER(snrDB)
	return math.Pow(1-ber, float64(8*lengthBytes))
}
