package phys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistance(t *testing.T) {
	a := Position{0, 0}
	b := Position{3, 4}
	if d := a.Distance(b); d != 5 {
		t.Fatalf("distance = %f, want 5", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Fatalf("self distance = %f", d)
	}
	if a.Distance(b) != b.Distance(a) {
		t.Fatal("distance not symmetric")
	}
}

func TestPathLossMonotonic(t *testing.T) {
	m := DefaultModel(1)
	f := func(a, b uint16) bool {
		d1 := 1 + float64(a%5000)/10 // 1..501 m
		d2 := d1 + 1 + float64(b%100)
		return m.PathLoss(d2) > m.PathLoss(d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathLossClampsBelowOneMeter(t *testing.T) {
	m := DefaultModel(1)
	if m.PathLoss(0.1) != m.PathLoss(1) {
		t.Fatal("sub-meter distances should clamp to the reference distance")
	}
	if m.PathLoss(1) != m.PL0 {
		t.Fatalf("PL(1m) = %f, want PL0 = %f", m.PathLoss(1), m.PL0)
	}
}

func TestShadowingSymmetricAndStable(t *testing.T) {
	m := DefaultModel(7)
	for a := NodeID(1); a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			s1 := m.Shadowing(a, b)
			s2 := m.Shadowing(b, a)
			if s1 != s2 {
				t.Fatalf("shadowing asymmetric for (%d,%d): %f vs %f", a, b, s1, s2)
			}
			if s1 != m.Shadowing(a, b) {
				t.Fatal("shadowing not stable across calls")
			}
		}
	}
}

func TestShadowingDependsOnSeed(t *testing.T) {
	m1, m2 := DefaultModel(1), DefaultModel(2)
	diff := 0
	for a := NodeID(1); a < 30; a++ {
		if m1.Shadowing(a, a+1) != m2.Shadowing(a, a+1) {
			diff++
		}
	}
	if diff < 25 {
		t.Fatalf("only %d/29 links differ across seeds", diff)
	}
}

func TestAsymmetryIsDirectional(t *testing.T) {
	m := DefaultModel(3)
	diff := 0
	for a := NodeID(1); a < 40; a++ {
		if m.Asymmetry(a, a+1) != m.Asymmetry(a+1, a) {
			diff++
		}
	}
	if diff < 35 {
		t.Fatalf("only %d/39 ordered pairs have direction-dependent offsets", diff)
	}
}

func TestShadowingMagnitude(t *testing.T) {
	m := DefaultModel(11)
	var sum, sumSq float64
	n := 0
	for a := NodeID(0); a < 100; a++ {
		for b := a + 1; b < 100; b += 7 {
			s := m.Shadowing(a, b)
			sum += s
			sumSq += s * s
			n++
		}
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 1.0 {
		t.Fatalf("shadowing mean = %f dB, want ~0", mean)
	}
	if sd < m.ShadowSigma*0.6 || sd > m.ShadowSigma*1.4 {
		t.Fatalf("shadowing sd = %f dB, want ~%f", sd, m.ShadowSigma)
	}
}

func TestReceivedPowerDecreasesWithDistance(t *testing.T) {
	m := DefaultModel(1)
	m.ShadowSigma = 0
	m.AsymSigma = 0
	from := Position{0, 0}
	prev := math.Inf(1)
	for d := 1.0; d <= 100; d += 5 {
		rx := m.ReceivedPower(0, 1, 2, from, Position{d, 0})
		if rx >= prev {
			t.Fatalf("rx power did not decrease at d=%f", d)
		}
		prev = rx
	}
}

func TestReceivedPowerScalesWithTxPower(t *testing.T) {
	m := DefaultModel(1)
	p1, p2 := Position{0, 0}, Position{10, 0}
	lo := m.ReceivedPower(-10, 1, 2, p1, p2)
	hi := m.ReceivedPower(0, 1, 2, p1, p2)
	if math.Abs((hi-lo)-10) > 1e-9 {
		t.Fatalf("tx power delta not preserved: %f", hi-lo)
	}
}

func TestBERBounds(t *testing.T) {
	f := func(s int8) bool {
		ber := BER(float64(s))
		return ber >= 0 && ber <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBERMonotoneDecreasing(t *testing.T) {
	prev := 1.0
	for snr := -10.0; snr <= 15; snr += 0.5 {
		ber := BER(snr)
		if ber > prev+1e-12 {
			t.Fatalf("BER increased at snr=%f", snr)
		}
		prev = ber
	}
}

func TestBERExtremes(t *testing.T) {
	if BER(30) > 1e-9 {
		t.Fatalf("BER at 30 dB = %g, want ~0", BER(30))
	}
	if BER(-20) < 0.2 {
		t.Fatalf("BER at -20 dB = %g, want near 0.5", BER(-20))
	}
}

func TestPRRProperties(t *testing.T) {
	// PRR decreases with length at fixed SNR.
	if PRR(3, 10) < PRR(3, 100) {
		t.Fatal("longer frames should have lower PRR")
	}
	// PRR increases with SNR at fixed length.
	if PRR(0, 50) > PRR(6, 50) {
		t.Fatal("higher SNR should have higher PRR")
	}
	if PRR(5, 0) != 1 {
		t.Fatal("zero-length frame PRR must be 1")
	}
	// Good link: near-perfect delivery.
	if PRR(15, 64) < 0.999 {
		t.Fatalf("PRR at 15 dB for 64 B = %f, want ~1", PRR(15, 64))
	}
	// Dead link.
	if PRR(-8, 64) > 0.01 {
		t.Fatalf("PRR at -8 dB for 64 B = %f, want ~0", PRR(-8, 64))
	}
}

func TestSNR(t *testing.T) {
	m := DefaultModel(1)
	if snr := m.SNR(-85); math.Abs(snr-10) > 1e-9 {
		t.Fatalf("SNR(-85 dBm) = %f, want 10 dB", snr)
	}
}

func TestDefaultModelPlausibleRange(t *testing.T) {
	// At full power (0 dBm) and 5 m, the link should be excellent; at
	// 200 m it should be dead. This pins the model to the paper's
	// testbed scale (motes meters apart, multi-hop over tens of meters).
	m := DefaultModel(1)
	m.ShadowSigma = 0
	m.AsymSigma = 0
	near := m.ReceivedPower(0, 1, 2, Position{0, 0}, Position{5, 0})
	if p := PRR(m.SNR(near), 64); p < 0.999 {
		t.Fatalf("5m full-power link PRR = %f, want ~1", p)
	}
	far := m.ReceivedPower(0, 1, 2, Position{0, 0}, Position{200, 0})
	if p := PRR(m.SNR(far), 64); p > 0.05 {
		t.Fatalf("200m link PRR = %f, want ~0", p)
	}
}

// TestMaxGaussBound verifies the documented hard bound on the model's
// deviate generator: the sharded medium's cell sizing is only sound if
// no shadowing or asymmetry draw can ever exceed MaxGaussDB sigmas.
func TestMaxGaussBound(t *testing.T) {
	m := DefaultModel(99)
	for k := uint64(0); k < 200000; k++ {
		if g := math.Abs(m.gauss(k)); g > MaxGaussDB {
			t.Fatalf("gauss(%d) = %f exceeds MaxGaussDB = %f", k, g, MaxGaussDB)
		}
	}
	// The analytic worst case: u1 is clamped at 1e-12, so the radius is
	// bounded by sqrt(-2 ln 1e-12) < 7.44.
	if worst := math.Sqrt(-2 * math.Log(1e-12)); worst > MaxGaussDB {
		t.Fatalf("analytic bound %f exceeds MaxGaussDB", worst)
	}
}

// TestDetectRangeIsConservative samples many links and checks that no
// pair separated by more than DetectRange can clear the floor.
func TestDetectRangeIsConservative(t *testing.T) {
	m := DefaultModel(5)
	const txDBm, floorDBm = 0.0, -106.0
	r := m.DetectRange(txDBm, floorDBm)
	if r <= 1 {
		t.Fatalf("DetectRange = %f, want a usable radius", r)
	}
	for a := NodeID(1); a <= 60; a++ {
		for b := a + 1; b <= 60; b++ {
			pa := Position{}
			pb := Position{X: r * 1.0000001} // just outside the bound
			if got := m.ReceivedPower(txDBm, a, b, pa, pb); got >= floorDBm {
				t.Fatalf("link %d→%d at %.1f m received %f dBm, above floor %f",
					a, b, pb.X, got, floorDBm)
			}
		}
	}
	// Inside the bound, at least some links must clear the floor
	// (otherwise the bound would be vacuous).
	ok := false
	for a := NodeID(1); a <= 60 && !ok; a++ {
		pb := Position{X: r * 0.02}
		if m.ReceivedPower(txDBm, a, a+1, Position{}, pb) >= floorDBm {
			ok = true
		}
	}
	if !ok {
		t.Fatal("no link inside DetectRange cleared the floor")
	}
}

// TestDetectRangeZeroSigma pins the closed form when shadowing and
// asymmetry are disabled: PL0 + 10·n·log10(d) = tx − floor.
func TestDetectRangeZeroSigma(t *testing.T) {
	m := DefaultModel(1)
	m.ShadowSigma = 0
	m.AsymSigma = 0
	got := m.DetectRange(0, -106)
	want := math.Pow(10, (0+106-m.PL0)/(10*m.Exponent))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("DetectRange = %f, want %f", got, want)
	}
	// A hopeless budget clamps to the reference distance.
	if m.DetectRange(-300, -106) != 1 {
		t.Fatal("negative budget should clamp to 1 m")
	}
}
