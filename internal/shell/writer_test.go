package shell

import (
	"errors"
	"strings"
	"testing"

	"liteview/internal/phys"
	"liteview/internal/testbed"
)

// failAfter is an io.Writer that accepts n bytes and then fails every
// further write — the shape of a network peer that hung up mid-output.
type failAfter struct {
	n      int
	err    error
	writes int
}

func (w *failAfter) Write(p []byte) (int, error) {
	w.writes++
	if w.n >= len(p) {
		w.n -= len(p)
		return len(p), nil
	}
	n := w.n
	w.n = 0
	return n, w.err
}

// TestExecSurfacesWriteErrors pins the session-error contract: output
// that cannot be written is a command failure (ErrWrite), not silently
// dropped text, and the session recovers once the writer is replaced.
func TestExecSurfacesWriteErrors(t *testing.T) {
	tb, err := testbed.Line(2, 18, testbed.DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		t.Fatal(err)
	}
	dead := &failAfter{n: 0, err: errors.New("connection reset by peer")}
	sh, err := NewForTestbed(tb, ws, dead)
	if err != nil {
		t.Fatal(err)
	}

	if err := sh.Exec("pwd"); !errors.Is(err, ErrWrite) {
		t.Fatalf("Exec over a dead writer: err = %v, want ErrWrite", err)
	}
	// The latch stops hammering a known-dead writer: the long help text
	// must not issue one write per printf after the first failure.
	dead.writes = 0
	if err := sh.Exec("help"); !errors.Is(err, ErrWrite) {
		t.Fatalf("help over a dead writer: err = %v, want ErrWrite", err)
	}
	if dead.writes != 1 {
		t.Fatalf("dead writer hit %d times during help, want 1", dead.writes)
	}

	// A command error and a write error surface together.
	if err := sh.Exec("cd nowhere"); err == nil || errors.Is(err, ErrWrite) {
		t.Fatalf("cd to a bad node writes nothing: err = %v, want plain command error", err)
	}

	// SetOutput is the programmatic session API: pointing the session at
	// a live buffer fully recovers it.
	var buf strings.Builder
	if err := sh.SetOutput(&buf); err != nil {
		t.Fatal(err)
	}
	if err := sh.Exec("pwd"); err != nil {
		t.Fatalf("Exec after SetOutput: %v", err)
	}
	if got := buf.String(); got != "/\n" {
		t.Fatalf("pwd output = %q, want %q", got, "/\n")
	}
	if err := sh.SetOutput(nil); err == nil {
		t.Fatal("SetOutput(nil) accepted")
	}
}

// TestExecPartialWriteLatches checks that a writer dying mid-command
// reports the write error while keeping the bytes that did make it.
func TestExecPartialWriteLatches(t *testing.T) {
	tb, err := testbed.Line(2, 18, testbed.DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		t.Fatal(err)
	}
	w := &failAfter{n: 2, err: errors.New("broken pipe")} // room for "/\n" only
	sh, err := NewForTestbed(tb, ws, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Exec("pwd"); err != nil {
		t.Fatalf("first pwd fits the writer: %v", err)
	}
	if err := sh.Exec("pwd"); !errors.Is(err, ErrWrite) {
		t.Fatalf("second pwd overruns the writer: err = %v, want ErrWrite", err)
	}
}
