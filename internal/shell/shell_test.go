package shell

import (
	"strings"
	"testing"
	"time"

	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

type fixture struct {
	tb    *testbed.Testbed
	sh    *Shell
	out   *strings.Builder
	reset func()
}

func deployShell(t *testing.T, n int, spacing float64, seed uint64) *fixture {
	t.Helper()
	opt := testbed.DefaultOptions(seed)
	opt.ShadowSigma = 0
	opt.AsymSigma = 0
	tb, err := testbed.Line(n, spacing, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.InstallLiteView(); err != nil {
		t.Fatal(err)
	}
	tb.WarmUp(15 * time.Second)
	ws, err := tb.NewWorkstation(phys.Position{X: -2})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sh, err := NewForTestbed(tb, ws, &out)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{tb: tb, sh: sh, out: &out, reset: func() { out.Reset() }}
}

func (f *fixture) run(t *testing.T, line string) string {
	t.Helper()
	f.reset()
	if err := f.sh.Exec(line); err != nil {
		t.Fatalf("%q: %v", line, err)
	}
	return f.out.String()
}

func TestPwdLsCd(t *testing.T) {
	f := deployShell(t, 2, 5, 1)
	if got := f.run(t, "pwd"); got != "/\n" {
		t.Fatalf("pwd = %q", got)
	}
	ls := f.run(t, "ls")
	if !strings.Contains(ls, "/sn01/192.168.0.1") || !strings.Contains(ls, "/sn02/192.168.0.2") {
		t.Fatalf("ls = %q", ls)
	}
	f.run(t, "cd 192.168.0.1")
	if got := f.run(t, "pwd"); got != "/sn01/192.168.0.1\n" {
		t.Fatalf("pwd after cd = %q", got)
	}
	// cd by full path too.
	f.run(t, "cd /sn02/192.168.0.2")
	if f.sh.Cwd() != "/sn02/192.168.0.2" {
		t.Fatalf("cwd = %q", f.sh.Cwd())
	}
	f.run(t, "cd /")
	if _, ok := f.sh.CurrentNode(); ok {
		t.Fatal("still logged in after cd /")
	}
	if err := f.sh.Exec("cd nowhere"); err == nil {
		t.Fatal("cd to phantom node accepted")
	}
}

func TestPingTranscriptShape(t *testing.T) {
	f := deployShell(t, 2, 5, 2)
	f.run(t, "cd 192.168.0.1")
	got := f.run(t, "ping 192.168.0.2 round=1 length=32")
	for _, want := range []string{
		"Pinging 192.168.0.2 with 1 packets with 32 bytes:",
		"RTT = ", "LQI = ", "RSSI = ", "Queue = 0/0",
		"Power = 31, Channel = 17",
		"Ping statistics:", "Packets = 1", "Received = 1", "Lost = 0",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("transcript missing %q:\n%s", want, got)
		}
	}
}

func TestTracerouteTranscriptShape(t *testing.T) {
	f := deployShell(t, 4, 20, 3)
	f.run(t, "cd 192.168.0.1")
	got := f.run(t, "traceroute 192.168.0.4 round=1 length=32 port=10")
	for _, want := range []string{
		"Reaching 192.168.0.4 with 1 packets with 32 bytes:",
		"Name of protocol: geographic forwarding",
		"Reply from 192.168.0.2",
		"Reply from 192.168.0.4",
		"Traceroute statistics:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("transcript missing %q:\n%s", want, got)
		}
	}
}

func TestNeighborCommands(t *testing.T) {
	f := deployShell(t, 3, 15, 4)
	f.run(t, "cd 192.168.0.2")
	list := f.run(t, "neighborsetup list")
	if !strings.Contains(list, "192.168.0.1") || !strings.Contains(list, "192.168.0.3") {
		t.Fatalf("list = %q", list)
	}
	if !strings.Contains(list, "LQI=") || !strings.Contains(list, "PRR=") {
		t.Fatalf("list lacks link info: %q", list)
	}
	f.run(t, "neighborsetup blacklist add 192.168.0.3")
	list = f.run(t, "neighborsetup list")
	if !strings.Contains(list, "[blacklisted]") {
		t.Fatalf("blacklist flag missing: %q", list)
	}
	f.run(t, "neighborsetup blacklist remove 192.168.0.3")
	list = f.run(t, "neighborsetup list")
	if strings.Contains(list, "[blacklisted]") {
		t.Fatalf("blacklist flag not cleared: %q", list)
	}
	f.run(t, "neighborsetup update period=750")
	node, _ := f.tb.ByName("192.168.0.2")
	if node.Neighbors().Period() != 750*time.Millisecond {
		t.Fatalf("period = %v", node.Neighbors().Period())
	}
}

func TestPowerChannelCommands(t *testing.T) {
	f := deployShell(t, 2, 5, 5)
	f.run(t, "cd 192.168.0.1")
	if got := f.run(t, "power"); !strings.Contains(got, "Power = 31") {
		t.Fatalf("power = %q", got)
	}
	f.run(t, "power 25")
	if got := f.run(t, "power"); !strings.Contains(got, "Power = 25") {
		t.Fatalf("power after set = %q", got)
	}
	if got := f.run(t, "channel"); !strings.Contains(got, "Channel = 17") {
		t.Fatalf("channel = %q", got)
	}
	f.run(t, "channel 20")
	// The session retunes itself; a follow-up query still works.
	if got := f.run(t, "channel"); !strings.Contains(got, "Channel = 20") {
		t.Fatalf("channel after set = %q", got)
	}
}

func TestErrorsAndUsage(t *testing.T) {
	f := deployShell(t, 2, 5, 6)
	if err := f.sh.Exec("ping 192.168.0.2"); err == nil {
		t.Fatal("ping without login accepted")
	}
	f.run(t, "cd 192.168.0.1")
	if err := f.sh.Exec("ping"); err == nil {
		t.Fatal("ping without target accepted")
	}
	if err := f.sh.Exec("ping 192.168.0.2 round=x"); err == nil {
		t.Fatal("bad option accepted")
	}
	if err := f.sh.Exec("frobnicate"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := f.sh.Exec("neighborsetup blacklist paint 7"); err == nil {
		t.Fatal("bad subcommand accepted")
	}
	if err := f.sh.Exec("power 99"); err == nil {
		t.Fatal("bad power accepted")
	}
	// Empty lines and help are fine.
	if err := f.sh.Exec(""); err != nil {
		t.Fatal(err)
	}
	if got := f.run(t, "help"); !strings.Contains(got, "traceroute") {
		t.Fatalf("help = %q", got)
	}
}

func TestMultiHopPingTranscript(t *testing.T) {
	f := deployShell(t, 4, 20, 7)
	f.run(t, "cd 192.168.0.1")
	got := f.run(t, "ping 192.168.0.4 round=1 length=16 port=10")
	if !strings.Contains(got, "Name of protocol: geographic forwarding") {
		t.Fatalf("protocol line missing:\n%s", got)
	}
	if !strings.Contains(got, "hop (forward)") || !strings.Contains(got, "hop (backward)") {
		t.Fatalf("per-hop padding lines missing:\n%s", got)
	}
}

func TestLsInsideNode(t *testing.T) {
	// Inside a node, ls shows the LiteOS file-tree view of the node.
	f := deployShell(t, 2, 5, 8)
	f.run(t, "cd 192.168.0.2")
	if got := f.run(t, "ls"); !strings.Contains(got, "apps/") {
		t.Fatalf("ls = %q", got)
	}
}

func TestFaultCommand(t *testing.T) {
	f := deployShell(t, 3, 18, 9)
	// Schedule a crash of node 2 starting now, lasting one second.
	out := f.run(t, "fault crash 192.168.0.2 for=1000")
	if !strings.Contains(out, "fault #1 scheduled") {
		t.Fatalf("schedule output: %q", out)
	}
	out = f.run(t, "fault list")
	if !strings.Contains(out, "node-crash") || !strings.Contains(out, "node 2") {
		t.Fatalf("list output: %q", out)
	}
	// Let the crash take effect; the node stops answering.
	f.tb.Run(100 * time.Millisecond)
	if f.tb.Node(1).Alive() {
		t.Fatal("node still alive after fault crash")
	}
	f.run(t, "cd 192.168.0.2")
	if err := f.sh.Exec("power"); err == nil {
		t.Fatal("power on crashed node succeeded")
	}
	// After the window the node reboots and answers again.
	f.tb.Run(2 * time.Second)
	out = f.run(t, "power")
	if !strings.Contains(out, "Power = ") {
		t.Fatalf("power after reboot: %q", out)
	}
	// The other fault classes and bad input parse correctly.
	for _, line := range []string{
		"fault blackout 192.168.0.1 192.168.0.2 for=500",
		"fault degrade 1 2 db=25 for=500",
		"fault corrupt 192.168.0.3 prob=70 for=500",
		"fault jam 17 for=500",
		"fault partition 192.168.0.3 for=500",
	} {
		if out := f.run(t, line); !strings.Contains(out, "scheduled") {
			t.Fatalf("%q output: %q", line, out)
		}
	}
	for _, line := range []string{
		"fault",
		"fault crash",
		"fault crash nope",
		"fault blackout 1",
		"fault jam 99",
		"fault nonsense 1",
	} {
		if err := f.sh.Exec(line); err == nil {
			t.Fatalf("%q accepted", line)
		}
	}
}
