package shell

import (
	"strings"
	"testing"
	"time"

	"liteview/internal/phys"
	"liteview/internal/routing"
	"liteview/internal/testbed"
)

// TestTranscriptDeterminism is the repository's determinism claim made
// at the highest level: an entire scripted management session — radio
// survey, pings, traceroute, neighbor management, stats — produces a
// byte-identical transcript when replayed with the same seed, and a
// different one with a different seed.
func TestTranscriptDeterminism(t *testing.T) {
	script := []string{
		"ls",
		"cd 192.168.0.1",
		"ls apps",
		"power",
		"channel",
		"ping 192.168.0.2 round=2 length=32",
		"ping 192.168.0.4 round=1 length=16 port=10",
		"traceroute 192.168.0.4 round=1 length=32 port=10",
		"neighborsetup list",
		"neighborsetup blacklist add 192.168.0.2",
		"neighborsetup list",
		"neighborsetup blacklist remove 192.168.0.2",
		"stats",
		"energy",
		"survey",
	}
	run := func(seed uint64) string {
		opt := testbed.DefaultOptions(seed)
		tb, err := testbed.Line(4, 18, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.AttachGeographic(routing.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
		if _, err := tb.InstallLiteView(); err != nil {
			t.Fatal(err)
		}
		tb.WarmUp(20 * time.Second)
		ws, err := tb.NewWorkstation(phys.Position{X: -2})
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		sh, err := NewForTestbed(tb, ws, &out)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range script {
			if err := sh.Exec(line); err != nil {
				t.Fatalf("seed %d, %q: %v", seed, line, err)
			}
		}
		return out.String()
	}
	a := run(7)
	b := run(7)
	if a != b {
		t.Fatalf("same seed produced different transcripts:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	c := run(8)
	if a == c {
		t.Fatal("different seeds produced byte-identical transcripts (randomness not wired through)")
	}
}
